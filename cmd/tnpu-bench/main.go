// Command tnpu-bench regenerates the paper's full evaluation: every table
// and figure of Sec. V, printed as aligned rows. The sweep covers
// 14 models x 2 NPU classes x 3 schemes x 1-3 NPUs; independent cells are
// fanned out across a worker pool (-parallel), with output byte-identical
// to a sequential run.
//
// Usage:
//
//	tnpu-bench                # everything
//	tnpu-bench -models df,res # restrict the workload set
//	tnpu-bench -schemes baseline,tnpu # restrict the scheme set
//	tnpu-bench -only fig14    # one artifact
//	tnpu-bench -attack        # adversarial fault-injection campaign
//	tnpu-bench -parallel 8    # worker count (0 = GOMAXPROCS)
//	tnpu-bench -v             # per-cell progress + run log on stderr
//	tnpu-bench -cpuprofile cpu.pprof  # write a CPU profile of the run
//	tnpu-bench -memprofile mem.pprof  # write an allocation profile at exit
//	tnpu-bench -perblock      # force the per-block DMA path (profiling aid)
//
// The -attack mode mounts replay, splicing, tampering, and version
// rollback faults against every scheme over real workload traces and
// checks the detection matrix; it exits non-zero if any protected scheme
// misses an injection (or an unprotected one claims a detection). The
// default workload set for -attack is df,agz,ncf; -models overrides it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"tnpu"
	"tnpu/internal/exp"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
)

func main() {
	// mainRun carries the deferred profile writers; os.Exit must happen
	// after they run.
	os.Exit(mainRun())
}

func mainRun() int {
	modelsFlag := flag.String("models", "", "comma-separated workload subset (default: all 14)")
	schemesFlag := flag.String("schemes", "", "comma-separated scheme subset for the performance artifacts (unsecure,baseline,tnpu,encrypt-only; default: all)")
	onlyFlag := flag.String("only", "", "single artifact: table3|fig4|fig5|fig14|fig15|fig16|fig17|storage|hwcost|sweeps")
	attackFlag := flag.Bool("attack", false, "run the adversarial fault-injection campaign instead of the performance artifacts")
	jsonFlag := flag.Bool("json", false, "emit the whole evaluation as JSON (for plotting scripts)")
	mdFlag := flag.String("md", "", "also write a Markdown report to this file")
	parallelFlag := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = sequential)")
	verboseFlag := flag.Bool("v", false, "log per-cell progress to stderr and print a run summary at exit")
	memoDirFlag := flag.String("memodir", "", "persistent memo-store directory: layer and whole-run memos recorded there survive the process and make later runs start warm (default: off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile at exit to this file")
	perBlockFlag := flag.Bool("perblock", false, "force the per-block DMA reference path instead of the batched fast path")
	flag.Parse()

	if *perBlockFlag {
		npu.ForcePerBlock(true)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
			}
		}()
	}

	var models []string
	if *modelsFlag != "" {
		models = strings.Split(*modelsFlag, ",")
	} else if *attackFlag {
		models = []string{"df", "agz", "ncf"}
	}
	r := tnpu.NewPaperRunner(models...)
	if *schemesFlag != "" {
		schemes, err := exp.ParseSchemes(*schemesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
			return 2
		}
		r.Schemes = schemes
	}
	r.Workers = *parallelFlag
	if *verboseFlag {
		r.Progress = os.Stderr
	}
	if err := r.SetMemoDir(*memoDirFlag); err != nil {
		fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
		return 2
	}

	var code int
	if *attackFlag {
		code = runAttack(r)
	} else {
		code = run(r, *onlyFlag, *jsonFlag, *mdFlag, *verboseFlag)
	}
	if *verboseFlag {
		fmt.Fprint(os.Stderr, r.Log().Summary())
		hits, misses := r.MemoStats()
		jhits, jmisses := r.MultiCacheStats()
		fmt.Fprintf(os.Stderr, "layer memo: %d hits, %d misses; joint-run cache: %d hits, %d misses; cell cache: %d hits\n",
			hits, misses, jhits, jmisses, r.Log().CacheHits())
		if r.MemoDir() != "" {
			lm := r.LayerMemoStats()
			st := r.CellStoreStats()
			fmt.Fprintf(os.Stderr, "memo store %s: %d layer disk hits, %d records, %d evictions; store %d/%d loads hit, %d saves, %d corrupt\n",
				r.MemoDir(), lm.DiskHits, lm.Records, lm.Evictions, st.Hits, st.Loads, st.Saves, st.Corrupt)
		}
	}
	return code
}

// schemeNames renders the valid -schemes values.
func schemeNames() string {
	names := make([]string, 0, len(memprot.AllSchemes()))
	for _, s := range memprot.AllSchemes() {
		names = append(names, s.String())
	}
	return strings.Join(names, ",")
}

// runAttack mounts the fault-injection campaign over every runner model
// and checks the paper's detection matrix. Exit code 1 means at least one
// cell violated it (a protected scheme missed an injection, or an
// unprotected scheme claimed a detection).
func runAttack(r *exp.Runner) int {
	reps, err := r.DetectionMatrix(exp.Small)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
		return 1
	}
	code := 0
	for _, rep := range reps {
		fmt.Printf("Detection matrix: %s (Small NPU)\n", rep.Model)
		fmt.Println(rep.Table())
		fmt.Println(rep.Summary())
		if err := rep.Matrix(); err != nil {
			fmt.Fprintf(os.Stderr, "tnpu-bench: %s: detection matrix violated:\n%v\n", rep.Model, err)
			code = 1
		}
	}
	if code == 0 {
		fmt.Println("detection matrix: PASS (every protected scheme detected every injection)")
	}
	return code
}

// run executes the selected artifacts and returns the process exit code.
func run(r *exp.Runner, only string, asJSON bool, mdPath string, verbose bool) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "tnpu-bench:", err)
		return 1
	}
	if asJSON {
		if err := emitJSON(r); err != nil {
			return fail(err)
		}
		return 0
	}
	if mdPath != "" {
		if err := emitMarkdown(r, mdPath); err != nil {
			return fail(err)
		}
		fmt.Println("wrote", mdPath)
		return 0
	}

	type artifact struct {
		key string
		run func() error
	}
	// The -schemes filter can drain every figure (e.g. -schemes unsecure:
	// the measured series are all filtered away, and unsecure itself is
	// only ever the normalization denominator). Emitting nothing with
	// exit 0 reads as success; count empty figures so that outcome can
	// fail loudly below instead.
	figuresRun, figuresEmpty := 0, 0
	figure := func(gen func() (exp.Figure, error)) func() error {
		return func() error {
			f, err := gen()
			if err != nil {
				return err
			}
			figuresRun++
			if len(f.Series) == 0 {
				figuresEmpty++
			}
			fmt.Println(f.String())
			return nil
		}
	}
	artifacts := []artifact{
		{"table3", func() error { fmt.Println(r.Table3()); return nil }},
		{"fig4", figure(r.Figure4)},
		{"fig5", figure(r.Figure5)},
		{"fig14", figure(r.Figure14)},
		{"fig15", figure(r.Figure15)},
		{"fig16", func() error {
			f, err := r.Figure16()
			if err != nil {
				return err
			}
			figuresRun++
			if len(f.Series) == 0 {
				figuresEmpty++
			}
			fmt.Println(f.String())
			if verbose {
				return printAttribution(r)
			}
			return nil
		}},
		{"fig17", figure(r.Figure17)},
		{"storage", func() error {
			per, avg, max, err := r.VersionStorage(exp.Small)
			if err != nil {
				return err
			}
			fmt.Printf("Sec IV-D: version-table storage (Small NPU): avg=%.0fB max=%dB (paper: ~1.3KB avg, 7.5KB max)\n", avg, max)
			for _, short := range r.Models {
				fmt.Printf("  %-5s %dB\n", short, per[short])
			}
			fmt.Println()
			return nil
		}},
		{"sweeps", func() error {
			// The sweeps plot the baseline-vs-TNPU gap, so they need
			// both schemes; -schemes filters them out otherwise.
			if !r.ImprovementAvailable() {
				return nil
			}
			for _, gen := range []func(string) (exp.Sweep, error){r.BandwidthSweep, r.SPMSweep, r.LatencySweep} {
				sw, err := gen("sent")
				if err != nil {
					return err
				}
				fmt.Println(sw.String())
			}
			return nil
		}},
		{"hwcost", func() error {
			s := r.HardwareCost()
			fmt.Println("Sec V-E hardware overhead:", s.String())
			for _, c := range s.PerComponent {
				fmt.Printf("  %dx %-28s %.5f mm^2  %5.2f mW  (%s)\n",
					c.Count, c.Name, c.TotalArea(), c.TotalPower(), c.SizeNote)
			}
			fmt.Println()
			return nil
		}},
	}

	ran := false
	for _, a := range artifacts {
		if only != "" && a.key != only {
			continue
		}
		ran = true
		if err := a.run(); err != nil {
			return fail(err)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tnpu-bench: unknown artifact %q\n", only)
		return 2
	}
	if figuresRun > 0 && figuresEmpty == figuresRun {
		fmt.Fprintf(os.Stderr, "tnpu-bench: -schemes filter left every figure empty (valid schemes: %s; measured figures need at least one of baseline, tnpu, encrypt-only)\n",
			schemeNames())
		return 2
	}

	if only == "" && r.ImprovementAvailable() {
		// Headline summary (the numbers the paper's abstract quotes);
		// needs both compared schemes, so -schemes filters it out.
		for _, class := range exp.Classes() {
			i1, err := r.Improvement(class, 1)
			if err != nil {
				return fail(err)
			}
			i3, err := r.Improvement(class, 3)
			if err != nil {
				return fail(err)
			}
			fmt.Printf("Headline (%s NPU): TNPU improves the tree-based baseline by %.1f%% (1 NPU), %.1f%% (3 NPUs)\n",
				class, 100*i1, 100*i3)
		}
		fmt.Println("Paper reference: 10.0%/13.3% (small), 7.5%/8.7% (large)")
	}
	return 0
}

// printAttribution dumps each fig16 cell's per-NPU served-work split —
// the per-tenant QoS view of the 3-NPU co-tenant runs (cells the figure
// already computed, so this reads the cache). Only measured schemes the
// -schemes filter admits are shown.
func printAttribution(r *exp.Runner) error {
	fmt.Println("Per-NPU attribution (3-NPU co-tenant runs):")
	for _, class := range exp.Classes() {
		for _, scheme := range []memprot.Scheme{memprot.Baseline, memprot.TreeLess} {
			if !r.SchemeEnabled(scheme) {
				continue
			}
			for _, short := range r.Models {
				res, err := r.Run(short, class, scheme, 3)
				if err != nil {
					return err
				}
				for i, n := range res.NPUs {
					fmt.Printf("  %-5s %-5s %-12s npu%d: cycles=%d blocks=%d rd=%.1fMB wr=%.1fMB runs=%d\n",
						class, short, scheme, i, n.Cycles, n.Blocks,
						float64(n.ReadBytes)/(1<<20), float64(n.WriteBytes)/(1<<20), n.Runs)
				}
			}
		}
	}
	fmt.Println()
	return nil
}

// figureKeys names the AllFigures results in order.
var figureKeys = []string{"fig4", "fig5", "fig14", "fig15", "fig16", "fig17"}

// jsonSeries is one plottable line.
type jsonSeries struct {
	Class  string    `json:"class"`
	Label  string    `json:"label"`
	Models []string  `json:"models"`
	Values []float64 `json:"values"`
	Mean   float64   `json:"mean"`
}

// jsonDoc is the machine-readable evaluation.
type jsonDoc struct {
	Figures        map[string][]jsonSeries `json:"figures"`
	VersionStorage map[string]int          `json:"version_storage_bytes"`
	Hardware       struct {
		AreaMM2     float64 `json:"area_mm2"`
		PowerMW     float64 `json:"power_mw"`
		SoCFraction float64 `json:"soc_fraction"`
	} `json:"hardware"`
	Improvements map[string]float64 `json:"improvements"`
}

func emitJSON(r *exp.Runner) error {
	doc := jsonDoc{Figures: map[string][]jsonSeries{}, Improvements: map[string]float64{}}
	figs, err := r.AllFigures()
	if err != nil {
		return err
	}
	for i, f := range figs {
		key := figureKeys[i]
		for _, s := range f.Series {
			doc.Figures[key] = append(doc.Figures[key], jsonSeries{
				Class: s.Class.String(), Label: s.Label,
				Models: s.Models, Values: s.Values, Mean: s.Mean(),
			})
		}
	}
	per, _, _, err := r.VersionStorage(exp.Small)
	if err != nil {
		return err
	}
	doc.VersionStorage = per
	hw := r.HardwareCost()
	doc.Hardware.AreaMM2, doc.Hardware.PowerMW, doc.Hardware.SoCFraction = hw.AreaMM2, hw.PowerMW, hw.SoCFraction
	if r.ImprovementAvailable() {
		for _, class := range exp.Classes() {
			for _, n := range []int{1, 3} {
				imp, err := r.Improvement(class, n)
				if err != nil {
					return err
				}
				doc.Improvements[fmt.Sprintf("%s-%dnpu", class, n)] = imp
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitMarkdown writes a self-contained report regenerating the paper's
// evaluation in Markdown, for dropping into docs or CI artifacts.
func emitMarkdown(r *exp.Runner, path string) error {
	var b strings.Builder
	b.WriteString("# TNPU reproduction report\n\n")
	b.WriteString("Generated by `tnpu-bench -md`. All values normalized to the unsecure run.\n\n")
	b.WriteString("## Table III\n\n```\n" + r.Table3() + "```\n\n")
	figs, err := r.AllFigures()
	if err != nil {
		return err
	}
	names := []string{"Figure 4", "Figure 5", "Figure 14", "Figure 15", "Figure 16", "Figure 17"}
	for i, fig := range figs {
		b.WriteString("## " + names[i] + "\n\n```\n" + fig.String() + "```\n\n")
	}
	per, avg, max, err := r.VersionStorage(exp.Small)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Sec IV-D version storage\n\navg %.0fB, max %dB (paper: ~1.3KB avg / 7.5KB max)\n\n", avg, max)
	for _, short := range r.Models {
		fmt.Fprintf(&b, "- %s: %dB\n", short, per[short])
	}
	fmt.Fprintf(&b, "\n## Sec V-E hardware\n\n%s\n\n", r.HardwareCost().String())
	if r.ImprovementAvailable() {
		b.WriteString("## Headline\n\n")
		for _, class := range exp.Classes() {
			i1, err := r.Improvement(class, 1)
			if err != nil {
				return err
			}
			i3, err := r.Improvement(class, 3)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "- %s NPU: TNPU improves the baseline by %.1f%% (1 NPU), %.1f%% (3 NPUs)\n", class, 100*i1, 100*i3)
		}
		b.WriteString("- paper reference: 10.0%/13.3% (small), 7.5%/8.7% (large)\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
