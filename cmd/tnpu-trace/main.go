// Command tnpu-trace compiles a workload for an NPU configuration and
// dumps the resulting instruction trace (Fig. 8-style mvin/mvout/compute
// stream with version-number operands), plus the tensor map and version
// table statistics.
//
// Usage:
//
//	tnpu-trace -model df -npu small -n 40
//	tnpu-trace -model sent -npu small -layer 0
package main

import (
	"flag"
	"fmt"
	"os"

	"tnpu/internal/compiler"
	"tnpu/internal/model"
	"tnpu/internal/npu"
	"tnpu/internal/tracecheck"
)

func main() {
	modelFlag := flag.String("model", "df", "workload short name")
	npuFlag := flag.String("npu", "small", "NPU class: small or large")
	nFlag := flag.Int("n", 50, "max instructions to print (0 = all)")
	layerFlag := flag.Int("layer", -1, "print only this layer's instructions")
	tensorsFlag := flag.Bool("tensors", false, "print the tensor map")
	checkFlag := flag.Bool("check", false, "run the version-discipline linter on the trace")
	saveFlag := flag.String("save", "", "serialize the compiled program to this file")
	loadFlag := flag.String("load", "", "load a serialized program instead of compiling")
	flag.Parse()

	cfg := npu.SmallNPU()
	if *npuFlag == "large" {
		cfg = npu.LargeNPU()
	}
	var prog *compiler.Program
	name := *modelFlag
	if *loadFlag != "" {
		f, err := os.Open(*loadFlag)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		prog, err = compiler.ReadProgram(f)
		if err != nil {
			fatal(err)
		}
		name = *loadFlag
	} else {
		m, err := model.ByShort(*modelFlag)
		if err != nil {
			fatal(err)
		}
		name = m.Name
		prog, err = compiler.Compile(m, cfg.CompilerConfig())
		if err != nil {
			fatal(err)
		}
	}
	if *saveFlag != "" {
		f, err := os.Create(*saveFlag)
		if err != nil {
			fatal(err)
		}
		if _, err := prog.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("saved program to", *saveFlag)
	}

	s := prog.Trace.Summarize()
	fmt.Printf("%s on %s NPU: %d instructions (%d mvin / %d mvout / %d compute), %d layers\n",
		name, cfg.Name, len(prog.Trace.Instrs), s.MvIns, s.MvOuts, s.Computes, s.Layers)
	fmt.Printf("traffic: in=%dB out=%dB, compute=%d cycles, memory top=%#x\n",
		s.BytesIn, s.BytesOut, s.ComputeCycles, prog.MemoryTop)
	if prog.Table != nil {
		fmt.Printf("version table: peak %dB in the fully protected region\n", prog.Table.PeakStorageBytes())
	}
	if *checkFlag {
		report := tracecheck.Check(prog)
		fmt.Println(report.String())
		for _, e := range report.Errors {
			fmt.Println("  violation:", e)
		}
		if !report.Ok() {
			os.Exit(1)
		}
	}
	fmt.Println()

	if *tensorsFlag {
		fmt.Println("tensors:")
		for _, t := range prog.Tensors {
			fmt.Printf("  id=%-4d %-24s addr=%#010x bytes=%d\n", t.ID, t.Name, t.Addr, t.Bytes)
		}
		fmt.Println()
	}

	printed := 0
	for i := range prog.Trace.Instrs {
		in := &prog.Trace.Instrs[i]
		if *layerFlag >= 0 && in.Layer != *layerFlag {
			continue
		}
		fmt.Printf("%6d: %s\n", i, in.String())
		printed++
		if *nFlag > 0 && printed >= *nFlag {
			fmt.Printf("... (%d more)\n", len(prog.Trace.Instrs)-i-1)
			break
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tnpu-trace:", err)
	os.Exit(1)
}
