package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tnpu/internal/analysis/canoncover"
	"tnpu/internal/analysis/checker"
)

// inTempModule materializes files as a throwaway module and chdirs into
// it for the duration of the test, so checker.Main's "./..." patterns
// resolve against the fixture instead of this repository.
func inTempModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files { //tnpu:orderfree (files land on disk regardless of creation order)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// TestSuiteCleanOverTree is the merge gate behind the CI tnpu-vet job:
// the full analyzer suite must run without a single diagnostic over the
// entire module, tests included. A failure here means either a real
// invariant violation crept in or a new check needs its waiver.
func TestSuiteCleanOverTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := checker.Main(&stdout, &stderr, []string{"tnpu/..."}, Suite)
	if code != 0 {
		t.Fatalf("tnpu-vet exit %d over tnpu/...:\n%s", code, stderr.String())
	}
}

// TestFlagsHandshake pins the first exchange of `go vet -vettool`: the
// tool must describe its flags as a JSON array on stdout and exit 0.
func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-flags"}, Suite); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(stdout.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output %q is not a JSON flag list: %v", stdout.String(), err)
	}
	if len(flags) != 0 {
		t.Fatalf("suite declares no flags, got %v", flags)
	}
}

// TestVersionFlag pins the -V handshake cmd/go uses to identify vet
// tools: a single stable "name version ..." line on stdout and exit 0.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-V=full"}, Suite); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "tnpu-vet version ") || strings.Contains(line, "\n") {
		t.Fatalf("-V=full output %q; want one 'tnpu-vet version ...' line", line)
	}
}

// TestRejectsFlags pins the argument contract: anything dash-prefixed
// other than the protocol handshakes is a usage error, not a pattern.
func TestRejectsFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-badflag"}, Suite); code != 1 {
		t.Fatalf("flag-looking argument: exit %d, want 1", code)
	}
}

// TestJSONOnlyAndTiming drives the standalone CLI end to end over a
// fixture module with one deliberate purity violation: -only restricts
// the suite, -json emits the machine-readable diagnostic array the CI
// problem matcher and editor integrations consume, and -v prints the
// load and per-analyzer wall times on stderr.
func TestJSONOnlyAndTiming(t *testing.T) {
	inTempModule(t, map[string]string{
		"go.mod": "module vetjson\n\ngo 1.22\n",
		"bad.go": `// Package vetjson is a tnpu-vet CLI test fixture.
package vetjson

// Bad is deliberately misannotated: it stores through its argument.
//
//tnpu:pure
func Bad(p *uint64) { *p = 1 }
`,
	})
	var stdout, stderr bytes.Buffer
	code := checker.Main(&stdout, &stderr, []string{"-json", "-v", "-only", "purity", "./..."}, Suite)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (one finding)\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Waiver   string `json:"waiver"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(diags), stdout.String())
	}
	d := diags[0]
	if filepath.Base(d.File) != "bad.go" || d.Line == 0 || d.Col == 0 {
		t.Errorf("diagnostic position %s:%d:%d; want bad.go with line and col", d.File, d.Line, d.Col)
	}
	if d.Analyzer != "purity" || !strings.Contains(d.Message, "annotated //tnpu:pure but") {
		t.Errorf("diagnostic %q from %q; want purity's misannotation message", d.Message, d.Analyzer)
	}
	if d.Waiver != "pureok" {
		t.Errorf("waiver %q; want the analyzer's default waiver pureok", d.Waiver)
	}
	if !strings.Contains(stderr.String(), "load+typecheck") || !strings.Contains(stderr.String(), "purity") {
		t.Errorf("-v stderr missing timing lines:\n%s", stderr.String())
	}
	if strings.Contains(stderr.String(), "noalloc") {
		t.Errorf("-only purity still timed other analyzers:\n%s", stderr.String())
	}
}

// TestOnlyUnknownAnalyzer pins the failure mode of a typo'd -only list:
// a usage error naming the known analyzers, not a silently empty run.
func TestOnlyUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-only", "nosuch"}, Suite); code != 1 {
		t.Fatalf("-only nosuch: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nosuch"`) ||
		!strings.Contains(stderr.String(), "purity") {
		t.Fatalf("-only error should list the known analyzers:\n%s", stderr.String())
	}
}

// TestCertifyWritesArtifact runs -certify over a minimal canon pair and
// checks the emitted artifact names the type and its covered fields —
// the mechanism that produces testdata/canoncover.json at the repo root.
func TestCertifyWritesArtifact(t *testing.T) {
	inTempModule(t, map[string]string{
		"go.mod": "module vetcert\n\ngo 1.22\n",
		"s.go": `// Package vetcert is a tnpu-vet -certify test fixture.
package vetcert

// S is a minimal canonical-state pair.
type S struct{ a uint64 }

// AppendCanon serializes s.
func (s *S) AppendCanon(b []byte) []byte { return append(b, byte(s.a)) }

// RestoreCanon rebuilds s.
func (s *S) RestoreCanon(b []byte) { s.a = uint64(b[0]) }
`,
	})
	checker.Certify = canoncover.Certify
	t.Cleanup(func() { checker.Certify = nil })
	var stdout, stderr bytes.Buffer
	out := filepath.Join(t.TempDir(), "cert.json")
	if code := checker.Main(&stdout, &stderr, []string{"-certify", out, "./..."}, Suite); code != 0 {
		t.Fatalf("-certify exit %d:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var certs []struct {
		Type    string   `json:"type"`
		Covered []string `json:"covered"`
	}
	if err := json.Unmarshal(data, &certs); err != nil {
		t.Fatalf("certify artifact is not JSON: %v\n%s", err, data)
	}
	if len(certs) != 1 || certs[0].Type != "vetcert.S" ||
		len(certs[0].Covered) != 1 || certs[0].Covered[0] != "a" {
		t.Fatalf("certify artifact %s; want one vetcert.S entry covering [a]", data)
	}
}
