package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tnpu/internal/analysis/checker"
)

// TestSuiteCleanOverTree is the merge gate behind the CI tnpu-vet job:
// the full analyzer suite must run without a single diagnostic over the
// entire module, tests included. A failure here means either a real
// invariant violation crept in or a new check needs its waiver.
func TestSuiteCleanOverTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := checker.Main(&stdout, &stderr, []string{"tnpu/..."}, Suite)
	if code != 0 {
		t.Fatalf("tnpu-vet exit %d over tnpu/...:\n%s", code, stderr.String())
	}
}

// TestFlagsHandshake pins the first exchange of `go vet -vettool`: the
// tool must describe its flags as a JSON array on stdout and exit 0.
func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-flags"}, Suite); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(stdout.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output %q is not a JSON flag list: %v", stdout.String(), err)
	}
	if len(flags) != 0 {
		t.Fatalf("suite declares no flags, got %v", flags)
	}
}

// TestVersionFlag pins the -V handshake cmd/go uses to identify vet
// tools: a single stable "name version ..." line on stdout and exit 0.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-V=full"}, Suite); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "tnpu-vet version ") || strings.Contains(line, "\n") {
		t.Fatalf("-V=full output %q; want one 'tnpu-vet version ...' line", line)
	}
}

// TestRejectsFlags pins the argument contract: anything dash-prefixed
// other than the protocol handshakes is a usage error, not a pattern.
func TestRejectsFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := checker.Main(&stdout, &stderr, []string{"-badflag"}, Suite); code != 1 {
		t.Fatalf("flag-looking argument: exit %d, want 1", code)
	}
}
