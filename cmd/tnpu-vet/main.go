// tnpu-vet is the multichecker for this repository's invariant suite
// (DESIGN.md §7c): five stdlib-only go/analysis-style passes that
// mechanically enforce the simulator's correctness contracts —
// determinism of emitted output (detmap), consumption of verification
// errors (secerr), the zero-allocation batched hot path (noalloc),
// per-goroutine engine ownership (goroutinesafe), and cycle/byte unit
// discipline (cycleunits).
//
// Usage:
//
//	tnpu-vet [packages]            # standalone, e.g. tnpu-vet ./...
//	go vet -vettool=$(which tnpu-vet) ./...
//
// Both modes exit non-zero on any diagnostic. scripts/lint.sh runs it
// alongside gofmt/vet/staticcheck, and the CI lint job gates merges on
// a clean run.
package main

import (
	"os"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/checker"
	"tnpu/internal/analysis/cycleunits"
	"tnpu/internal/analysis/detmap"
	"tnpu/internal/analysis/goroutinesafe"
	"tnpu/internal/analysis/noalloc"
	"tnpu/internal/analysis/secerr"
)

// Suite is the full analyzer set, in diagnostic-priority order.
var Suite = []*analysis.Analyzer{
	detmap.Analyzer,
	secerr.Analyzer,
	noalloc.Analyzer,
	goroutinesafe.Analyzer,
	cycleunits.Analyzer,
}

func main() {
	os.Exit(checker.Main(os.Stdout, os.Stderr, os.Args[1:], Suite))
}
