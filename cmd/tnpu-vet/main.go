// tnpu-vet is the multichecker for this repository's invariant suite
// (DESIGN.md §7c): eight stdlib-only go/analysis-style passes that
// mechanically enforce the simulator's correctness contracts —
// determinism of emitted output (detmap), consumption of verification
// errors (secerr), the zero-allocation batched hot path (noalloc),
// per-goroutine engine ownership (goroutinesafe), cycle/byte unit
// discipline (cycleunits), canonical-state serialization coverage
// (canoncover), side-effect-free closed-form bounds (purity), and
// guarded fast paths with reference fallbacks (boundsound). The last
// three are interprocedural: they compose across packages through the
// facts store (internal/analysis/facts).
//
// Usage:
//
//	tnpu-vet [flags] [packages]    # standalone, e.g. tnpu-vet ./...
//	go vet -vettool=$(which tnpu-vet) ./...
//
// Standalone flags: -json (machine-readable diagnostics on stdout),
// -v (per-analyzer wall time), -only a1,a2 (restrict the suite),
// -certify out.json (write canoncover's certified field sets, the
// source of testdata/canoncover.json backing the runtime reflection
// cross-checks).
//
// Both modes exit non-zero on any diagnostic. scripts/lint.sh runs it
// alongside gofmt/vet/staticcheck, and the CI lint job gates merges on
// a clean run.
package main

import (
	"os"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/boundsound"
	"tnpu/internal/analysis/canoncover"
	"tnpu/internal/analysis/checker"
	"tnpu/internal/analysis/cycleunits"
	"tnpu/internal/analysis/detmap"
	"tnpu/internal/analysis/goroutinesafe"
	"tnpu/internal/analysis/noalloc"
	"tnpu/internal/analysis/purity"
	"tnpu/internal/analysis/secerr"
)

// Suite is the full analyzer set, in diagnostic-priority order.
var Suite = []*analysis.Analyzer{
	detmap.Analyzer,
	secerr.Analyzer,
	noalloc.Analyzer,
	goroutinesafe.Analyzer,
	cycleunits.Analyzer,
	canoncover.Analyzer,
	purity.Analyzer,
	boundsound.Analyzer,
}

func main() {
	checker.Certify = canoncover.Certify
	os.Exit(checker.Main(os.Stdout, os.Stderr, os.Args[1:], Suite))
}
