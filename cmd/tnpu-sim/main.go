// Command tnpu-sim runs one workload on the TNPU simulator and prints the
// execution summary for each protection scheme.
//
// Usage:
//
//	tnpu-sim -model res -npu small -npus 1
//	tnpu-sim -model sent -npu large -npus 3 -e2e
package main

import (
	"flag"
	"fmt"
	"os"

	"tnpu"
	"tnpu/internal/exp"
	"tnpu/internal/hwcost"
)

func main() {
	modelFlag := flag.String("model", "res", "workload short name (see -list)")
	npuFlag := flag.String("npu", "small", "NPU class: small (Exynos 990) or large (Ethos N77)")
	npusFlag := flag.Int("npus", 1, "number of NPUs sharing the memory system (1-3)")
	e2eFlag := flag.Bool("e2e", false, "run the end-to-end flow (init + inference + output)")
	listFlag := flag.Bool("list", false, "list workloads and exit")
	layersFlag := flag.Bool("layers", false, "print the per-layer breakdown across schemes")
	flag.Parse()

	if *listFlag {
		fmt.Println("Table III workloads:")
		for _, short := range tnpu.Models() {
			info, _ := tnpu.Describe(short)
			emb := ""
			if info.HasEmbedding {
				emb = " [embedding]"
			}
			fmt.Printf("  %-5s %-28s %6.1fMB (paper %5.1fMB), %d layers%s\n",
				short, info.Name, info.FootprintMB, info.PaperFootprintMB, info.Layers, emb)
		}
		return
	}

	var class tnpu.Class
	switch *npuFlag {
	case "small":
		class = tnpu.Small
	case "large":
		class = tnpu.Large
	default:
		fmt.Fprintf(os.Stderr, "tnpu-sim: unknown NPU class %q (want small|large)\n", *npuFlag)
		os.Exit(2)
	}

	if *layersFlag {
		class := tnpu.Small
		if *npuFlag == "large" {
			class = tnpu.Large
		}
		shares, err := exp.LayerBreakdown(*modelFlag, class)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s per-layer cycles on %s NPU:\n", *modelFlag, class)
		fmt.Printf("%-16s %12s %12s %12s %8s\n", "layer", "unsecure", "baseline", "tnpu", "base-ovh")
		for _, sh := range shares {
			ovh := "-"
			if sh.Unsecure > 0 {
				ovh = fmt.Sprintf("%.2fx", float64(sh.Baseline)/float64(sh.Unsecure))
			}
			fmt.Printf("%-16s %12d %12d %12d %8s\n", sh.Layer, sh.Unsecure, sh.Baseline, sh.TNPU, ovh)
		}
		return
	}

	schemes := []tnpu.Scheme{tnpu.Unsecure, tnpu.Baseline, tnpu.TreeLess}
	if *e2eFlag {
		fmt.Printf("%s on %s NPU, end-to-end (Sec. V-D):\n", *modelFlag, class)
		var ref uint64
		for _, s := range schemes {
			r, err := tnpu.SimulateEndToEnd(*modelFlag, class, s)
			if err != nil {
				fatal(err)
			}
			if s == tnpu.Unsecure {
				ref = r.Cycles
			}
			fmt.Printf("  %-9s total=%12d cycles (%.3fms)  norm=%.3f  init=%d run=%d out=%d\n",
				s, r.Cycles, r.Milliseconds, float64(r.Cycles)/float64(ref),
				r.InitCycles, r.RunCycles, r.OutputCycles)
		}
		return
	}

	fmt.Printf("%s on %d x %s NPU:\n", *modelFlag, *npusFlag, class)
	var ref uint64
	for _, s := range schemes {
		r, err := tnpu.SimulateMulti(*modelFlag, class, s, *npusFlag)
		if err != nil {
			fatal(err)
		}
		if s == tnpu.Unsecure {
			ref = r.Cycles
		}
		fmt.Printf("  %-9s %12d cycles (%.3fms)  norm=%.3f  traffic=%dB (metadata %dB)",
			s, r.Cycles, r.Milliseconds, float64(r.Cycles)/float64(ref),
			r.TrafficBytes, r.MetadataBytes)
		if s == tnpu.Baseline {
			fmt.Printf("  ctr-miss=%.1f%%", 100*r.CounterMissRate)
		}
		if s == tnpu.TreeLess {
			fmt.Printf("  vtable-peak=%dB", r.VersionTablePeakBytes)
		}
		freq := uint64(2_750_000_000)
		if *npuFlag == "large" {
			freq = 1_000_000_000
		}
		fmt.Printf("  energy=%.2fmJ", hwcost.InferenceEnergy(r.TrafficBytes, r.Cycles, freq, hwcost.Summarize(hwcost.TNPUEngine())))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tnpu-sim:", err)
	os.Exit(1)
}
