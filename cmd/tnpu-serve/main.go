// Command tnpu-serve runs the TNPU simulation service: the experiment
// harness behind every paper figure (exp.Runner), wrapped in an HTTP
// server with a bounded worker pool, a job queue, and a disk-backed
// content-addressed result cache. Identical requests are computed once —
// across concurrent clients (singleflight) and across process restarts
// (the disk cache) — and every figure is served as a JSON or SVG
// artifact.
//
// Usage:
//
//	tnpu-serve                         # all 14 workloads on :8080
//	tnpu-serve -addr 127.0.0.1:0       # ephemeral port (printed at boot)
//	tnpu-serve -cache /var/tnpu-cache  # persistent result cache
//	tnpu-serve -models df,res          # restrict the served workload set
//	tnpu-serve -parallel 8 -queue 512  # worker pool and admission bound
//
// Endpoints (see GET / for the live index):
//
//	/api/cell     one simulation cell as JSON
//	/api/figure/  paper figures as JSON or SVG
//	/api/sweep/   sensitivity sweeps as JSON
//	/stats        cache, memo, queue, and runtime counters
//	/events       SSE stream of completed-cell progress
//	/healthz      liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tnpu/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addrFlag := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	cacheFlag := flag.String("cache", "", "result cache directory (default: a tnpu-serve dir under the user cache dir)")
	modelsFlag := flag.String("models", "", "comma-separated workload subset (default: all 14)")
	parallelFlag := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS)")
	queueFlag := flag.Int("queue", 0, "max admitted jobs before load shedding with 503 (0 = 1024)")
	memoDirFlag := flag.String("memodir", "", `persistent memo-store directory for layer and whole-run memos (default: "memo" beside the result cache; "off" disables)`)
	flag.Parse()

	cacheDir := *cacheFlag
	if cacheDir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnpu-serve: no -cache and no user cache dir:", err)
			return 2
		}
		cacheDir = filepath.Join(base, "tnpu-serve")
	}
	var models []string
	if *modelsFlag != "" {
		models = strings.Split(*modelsFlag, ",")
	}

	srv, err := serve.New(serve.Options{
		Models:   models,
		CacheDir: cacheDir,
		Workers:  *parallelFlag,
		Queue:    *queueFlag,
		MemoDir:  *memoDirFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnpu-serve:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnpu-serve:", err)
		return 1
	}
	// The boot line is machine-parsed (scripts/serve_smoke.sh,
	// scripts/bench.sh) — keep its shape stable.
	fmt.Printf("tnpu-serve: listening on http://%s (cache %s)\n", ln.Addr(), cacheDir)
	if dir := srv.Runner().MemoDir(); dir != "" {
		fmt.Printf("tnpu-serve: memo store %s\n", dir)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "tnpu-serve:", err)
			return 1
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tnpu-serve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "tnpu-serve: shutdown:", err)
			return 1
		}
	}
	return 0
}
