// Command tnpu-plot regenerates the paper's figures and writes them as
// SVG bar charts, one file per figure, for visual comparison with the
// paper's plots.
//
// Usage:
//
//	tnpu-plot -out ./figures            # all figures, full workload set
//	tnpu-plot -out ./figures -models df,res,sent
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tnpu"
	"tnpu/internal/exp"
	"tnpu/internal/plot"
)

func main() {
	outFlag := flag.String("out", "figures", "output directory for SVG files")
	modelsFlag := flag.String("models", "", "comma-separated workload subset")
	flag.Parse()

	var models []string
	if *modelsFlag != "" {
		models = strings.Split(*modelsFlag, ",")
	}
	r := tnpu.NewPaperRunner(models...)
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fatal(err)
	}

	figs := []struct {
		name    string
		gen     func() (exp.Figure, error)
		refLine float64
		ylabel  string
	}{
		{"figure4", r.Figure4, 1, "normalized execution time"},
		{"figure5", r.Figure5, 0, "counter cache miss rate"},
		{"figure14", r.Figure14, 1, "normalized execution time"},
		{"figure15", r.Figure15, 1, "normalized memory traffic"},
		{"figure16", r.Figure16, 1, "normalized execution time"},
		{"figure17", r.Figure17, 1, "normalized end-to-end latency"},
	}
	for _, f := range figs {
		fig, err := f.gen()
		if err != nil {
			fatal(err)
		}
		series := make([]plot.ClassSeries, 0, len(fig.Series))
		for _, s := range fig.Series {
			series = append(series, plot.ClassSeries{Class: s.Class.String(), Label: s.Label, Values: s.Values})
		}
		// One chart per NPU class keeps the figures readable; the split
		// is shared with tnpu-serve's SVG endpoint (plot.ClassCharts).
		for _, cc := range plot.ClassCharts(fig.ID, fig.Title, fig.Series[0].Models, series, f.refLine, f.ylabel) {
			svg, err := cc.Chart.SVG()
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*outFlag, fmt.Sprintf("%s-%s.svg", f.name, cc.Class))
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tnpu-plot:", err)
	os.Exit(1)
}
