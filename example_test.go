package tnpu_test

import (
	"fmt"

	"tnpu"
)

// Simulate one workload under the tree-less scheme and inspect the
// protection cost.
func ExampleSimulate() {
	report, err := tnpu.Simulate("df", tnpu.Small, tnpu.TreeLess)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Model, report.Scheme, report.NPUs)
	fmt.Println(report.Cycles > 0, report.MetadataBytes > 0)
	// Output:
	// df tnpu 1
	// true true
}

// Compare the schemes the paper plots in Figure 14.
func ExampleOverhead() {
	base, _ := tnpu.Overhead("df", tnpu.Small, tnpu.Baseline, 1)
	treeless, _ := tnpu.Overhead("df", tnpu.Small, tnpu.TreeLess, 1)
	fmt.Println(treeless < base, base > 1)
	// Output: true true
}

// Work with the functional protected memory: a replayed block is caught
// by the version-keyed MAC.
func ExampleNewSecureContext() {
	ctx, err := tnpu.NewSecureContext(
		[]byte("0123456789abcdef0123456789abcdef"),
		[]byte("0123456789abcdef"))
	if err != nil {
		panic(err)
	}
	weights, _ := ctx.Alloc("weights", 128)
	_ = ctx.WriteTensor(weights.ID, make([]byte, 128))

	// A physical attacker snapshots and later replays the DRAM content.
	ct, mac, _ := ctx.Memory().Snapshot(weights.Addr)
	_ = ctx.WriteTensor(weights.ID, make([]byte, 128)) // legitimate update
	ctx.Memory().Restore(weights.Addr, ct, mac)

	_, err = ctx.ReadTensor(weights.ID)
	fmt.Println(err != nil)
	// Output: true
}

// Enumerate the Table III workload suite.
func ExampleModels() {
	models := tnpu.Models()
	fmt.Println(len(models), models[0], models[len(models)-1])
	// Output: 14 goo ncf
}
