package tnpu

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's experiment index), plus ablations over the design choices
// the architecture fixes: metadata cache capacities, tree arity, MAC size,
// version granularity, and weight layout. The first iteration of each
// figure benchmark prints the regenerated rows; subsequent iterations hit
// the runner cache, so the reported ns/op measures the harness, while the
// printed tables and ReportMetric values carry the reproduction results.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/exp"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/npu"
	"tnpu/internal/stats"
	"tnpu/internal/systolic"
)

var (
	benchOnce   sync.Once
	benchRunner *exp.Runner
	printedOnce sync.Map
)

func runner() *exp.Runner {
	benchOnce.Do(func() { benchRunner = exp.NewRunner() })
	return benchRunner
}

// printOnce emits a regenerated table exactly once per benchmark name.
func printOnce(name, text string) {
	if _, loaded := printedOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func benchFigure(b *testing.B, name string, gen func() (exp.Figure, error)) exp.Figure {
	b.Helper()
	var fig exp.Figure
	for i := 0; i < b.N; i++ {
		f, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	printOnce(name, fig.String())
	return fig
}

func BenchmarkTable3Footprints(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = runner().Table3()
	}
	printOnce("table3", out)
}

func BenchmarkFigure4(b *testing.B) {
	fig := benchFigure(b, "fig4", runner().Figure4)
	// Paper: baseline overhead 21.1% (Small) / 17.3% (Large).
	b.ReportMetric(fig.Series[0].Mean(), "small-baseline-norm")
	b.ReportMetric(fig.Series[1].Mean(), "large-baseline-norm")
}

func BenchmarkFigure5(b *testing.B) {
	fig := benchFigure(b, "fig5", runner().Figure5)
	b.ReportMetric(fig.Series[0].Mean(), "small-ctr-missrate")
	b.ReportMetric(fig.Series[1].Mean(), "large-ctr-missrate")
}

func BenchmarkFigure14(b *testing.B) {
	fig := benchFigure(b, "fig14", runner().Figure14)
	// Paper: TNPU improves the baseline by 10.0% (Small) / 7.5% (Large).
	impS, err := runner().Improvement(exp.Small, 1)
	if err != nil {
		b.Fatal(err)
	}
	impL, _ := runner().Improvement(exp.Large, 1)
	b.ReportMetric(impS, "small-improvement")
	b.ReportMetric(impL, "large-improvement")
	_ = fig
}

func BenchmarkFigure15(b *testing.B) {
	fig := benchFigure(b, "fig15", runner().Figure15)
	b.ReportMetric(fig.Series[0].Mean()-1, "small-baseline-extra-traffic")
	b.ReportMetric(fig.Series[1].Mean()-1, "small-tnpu-extra-traffic")
}

func BenchmarkFigure16(b *testing.B) {
	fig := benchFigure(b, "fig16", runner().Figure16)
	// Paper: the improvement grows to 13.3% (Small) / 8.7% (Large) at 3 NPUs.
	imp3S, err := runner().Improvement(exp.Small, 3)
	if err != nil {
		b.Fatal(err)
	}
	imp3L, _ := runner().Improvement(exp.Large, 3)
	b.ReportMetric(imp3S, "small-improvement-3npu")
	b.ReportMetric(imp3L, "large-improvement-3npu")
	_ = fig
}

func BenchmarkFigure17(b *testing.B) {
	fig := benchFigure(b, "fig17", runner().Figure17)
	b.ReportMetric(fig.Series[0].Mean(), "small-baseline-e2e-norm")
	b.ReportMetric(fig.Series[1].Mean(), "small-tnpu-e2e-norm")
}

func BenchmarkVersionTableStorage(b *testing.B) {
	var avg float64
	var peak int
	for i := 0; i < b.N; i++ {
		var err error
		_, avg, peak, err = runner().VersionStorage(exp.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("s4d", fmt.Sprintf("Sec IV-D: version table storage avg=%.0fB max=%dB (paper: ~1.3KB avg, 7.5KB max)", avg, peak))
	b.ReportMetric(avg, "avg-bytes")
	b.ReportMetric(float64(peak), "max-bytes")
}

func BenchmarkHardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runner().HardwareCost()
		if i == 0 {
			printOnce("s5e", "Sec V-E: "+s.String())
			b.ReportMetric(s.AreaMM2, "mm2")
			b.ReportMetric(s.PowerMW, "mW")
		}
	}
}

// BenchmarkEncryptionOnlyBound quantifies the integrity premium: TNPU's
// cost over the scalable-SGX-like encryption-only scheme is the price of
// replay protection (Sec. II-B's trade-off, which TNPU makes affordable).
func BenchmarkEncryptionOnlyBound(b *testing.B) {
	var enc, tnpuC, baseC uint64
	for i := 0; i < b.N; i++ {
		enc = runAblation(b, "res", memprot.EncryptOnly, compiler.Config{}, nil)
		tnpuC = runAblation(b, "res", memprot.TreeLess, compiler.Config{}, nil)
		baseC = runAblation(b, "res", memprot.Baseline, compiler.Config{}, nil)
	}
	printOnce("enc-bound", fmt.Sprintf(
		"Integrity premium (res, Small): encrypt-only=%d, tnpu=%d (+%.1f%%), baseline=%d (+%.1f%%)",
		enc, tnpuC, 100*(float64(tnpuC)/float64(enc)-1), baseC, 100*(float64(baseC)/float64(enc)-1)))
	b.ReportMetric(float64(tnpuC)/float64(enc), "tnpu-vs-encrypt-only")
}

// BenchmarkSensitivitySweeps runs the beyond-paper sensitivity studies:
// bandwidth, scratchpad, and DRAM-latency scaling on the most
// protection-hostile workload.
func BenchmarkSensitivitySweeps(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var sb []string
		for _, gen := range []func(string) (exp.Sweep, error){exp.BandwidthSweep, exp.SPMSweep, exp.LatencySweep} {
			sw, err := gen("sent")
			if err != nil {
				b.Fatal(err)
			}
			sb = append(sb, sw.String())
		}
		out = strings.Join(sb, "\n")
	}
	printOnce("sweeps", out)
}

// --- Ablations ---

// runAblation simulates one model under a mutated protection config.
func runAblation(b *testing.B, short string, scheme memprot.Scheme, compCfg compiler.Config, mutate func(*memprot.Config)) uint64 {
	b.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		b.Fatal(err)
	}
	cfg := npu.SmallNPU()
	if compCfg.SPM.CapacityBytes == 0 {
		compCfg = cfg.CompilerConfig()
	}
	prog, err := compiler.Compile(m, compCfg)
	if err != nil {
		b.Fatal(err)
	}
	bus := dram.NewBus(cfg.Mem)
	mcfg := memprot.DefaultConfig(bus)
	if mutate != nil {
		mutate(&mcfg)
	}
	eng, err := memprot.New(scheme, mcfg)
	if err != nil {
		b.Fatal(err)
	}
	mach := npu.NewMachine(prog, eng)
	mach.Run()
	return mach.Cycles()
}

func BenchmarkAblationCounterCache(b *testing.B) {
	// How much counter-cache capacity would fix the baseline: sweep the
	// 4KB default on the most counter-hostile workload.
	sizes := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10}
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("counter$", "sent-baseline-cycles")
		for _, sz := range sizes {
			sz := sz
			c := runAblation(b, "sent", memprot.Baseline, compiler.Config{}, func(m *memprot.Config) {
				m.CounterCacheBytes = sz
			})
			tb.AddRow(fmt.Sprintf("%dKB", sz>>10), fmt.Sprintf("%d", c))
		}
		out = tb.String()
	}
	printOnce("abl-ctr", "Ablation: counter-cache capacity (baseline, sent)\n"+out)
}

func BenchmarkAblationCounterPrefetch(b *testing.B) {
	// Would next-line counter prefetching rescue the baseline? It helps
	// streams (goo) but cannot help scattered gathers (sent).
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("workload", "baseline", "baseline+prefetch")
		for _, short := range []string{"goo", "sent"} {
			short := short
			plain := runAblation(b, short, memprot.Baseline, compiler.Config{}, nil)
			pf := runAblation(b, short, memprot.Baseline, compiler.Config{}, func(m *memprot.Config) {
				m.CounterPrefetch = true
			})
			tb.AddRow(short, fmt.Sprintf("%d", plain), fmt.Sprintf("%d", pf))
		}
		out = tb.String()
	}
	printOnce("abl-prefetch", "Ablation: next-line counter prefetch (baseline)\n"+out)
}

func BenchmarkAblationMACCache(b *testing.B) {
	sizes := []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("mac$", "res-tnpu-cycles")
		for _, sz := range sizes {
			sz := sz
			c := runAblation(b, "res", memprot.TreeLess, compiler.Config{}, func(m *memprot.Config) {
				m.MACCacheBytes = sz
			})
			tb.AddRow(fmt.Sprintf("%dKB", sz>>10), fmt.Sprintf("%d", c))
		}
		out = tb.String()
	}
	printOnce("abl-mac", "Ablation: MAC-cache capacity (TNPU, res)\n"+out)
}

func BenchmarkAblationTreeArity(b *testing.B) {
	// SC-64 vs an SGX-MEE-like arity-8 tree: lower arity = deeper tree =
	// costlier walks.
	var a8, a64 uint64
	for i := 0; i < b.N; i++ {
		a64 = runAblation(b, "sent", memprot.Baseline, compiler.Config{}, nil)
		a8 = runAblation(b, "sent", memprot.Baseline, compiler.Config{}, func(m *memprot.Config) {
			m.TreeArity = 8
		})
	}
	printOnce("abl-arity", fmt.Sprintf("Ablation: tree arity (baseline, sent): arity64=%d cycles, arity8=%d cycles (%.2fx)",
		a64, a8, float64(a8)/float64(a64)))
	b.ReportMetric(float64(a8)/float64(a64), "arity8-vs-64")
}

func BenchmarkAblationMACSize(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("mac-size", "res-tnpu-cycles")
		for _, sz := range []uint64{4, 8, 16} {
			sz := sz
			c := runAblation(b, "res", memprot.TreeLess, compiler.Config{}, func(m *memprot.Config) {
				m.MACSlotBytes = sz
			})
			tb.AddRow(fmt.Sprintf("%dB", sz), fmt.Sprintf("%d", c))
		}
		out = tb.String()
	}
	printOnce("abl-macsz", "Ablation: per-block MAC size (TNPU, res)\n"+out)
}

func BenchmarkAblationVersionGranularity(b *testing.B) {
	// Per-tile (paper default) vs per-tensor version numbers: identical
	// timing on this trace shape, differing fully-protected storage.
	cfg := npu.SmallNPU().CompilerConfig()
	perTensor := cfg
	perTensor.PerTensorVersions = true
	var cTile, cTensor uint64
	for i := 0; i < b.N; i++ {
		cTile = runAblation(b, "res", memprot.TreeLess, cfg, nil)
		cTensor = runAblation(b, "res", memprot.TreeLess, perTensor, nil)
	}
	printOnce("abl-gran", fmt.Sprintf("Ablation: version granularity (TNPU, res): per-tile=%d cycles, per-tensor=%d cycles", cTile, cTensor))
	b.ReportMetric(float64(cTensor)/float64(cTile), "per-tensor-vs-per-tile")
}

func BenchmarkAblationWeightLayout(b *testing.B) {
	// Row-major (default, SCALE-Sim-style) vs pre-tiled contiguous weight
	// tiles: counter-line spatial locality is what pre-tiling buys.
	cfg := npu.SmallNPU().CompilerConfig()
	pretiled := cfg
	pretiled.PretiledWeights = true
	var pre, rm uint64
	for i := 0; i < b.N; i++ {
		rm = runAblation(b, "med", memprot.Baseline, cfg, nil)
		pre = runAblation(b, "med", memprot.Baseline, pretiled, nil)
	}
	printOnce("abl-layout", fmt.Sprintf("Ablation: weight layout (baseline, med): row-major=%d cycles, pre-tiled=%d cycles (%.2fx)",
		rm, pre, float64(rm)/float64(pre)))
	b.ReportMetric(float64(rm)/float64(pre), "rowmajor-vs-pretiled")
}

func BenchmarkAblationChannels(b *testing.B) {
	// Table II lists 4 memory channels; the default model aggregates them
	// into one bus. With explicit channels, metadata fetches overlap data
	// beats on other channels, softening the baseline's walk stalls.
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("workload/scheme", "1-channel", "4-channel")
		for _, short := range []string{"res", "sent"} {
			for _, scheme := range []memprot.Scheme{memprot.Baseline, memprot.TreeLess} {
				short, scheme := short, scheme
				c1 := runAblationMem(b, short, scheme, 1)
				c4 := runAblationMem(b, short, scheme, 4)
				tb.AddRow(fmt.Sprintf("%s/%s", short, scheme), fmt.Sprintf("%d", c1), fmt.Sprintf("%d", c4))
			}
		}
		out = tb.String()
	}
	printOnce("abl-channels", "Ablation: memory channel count\n"+out)
}

// runAblationMem runs with a custom channel count on the Small NPU.
func runAblationMem(b *testing.B, short string, scheme memprot.Scheme, channels int) uint64 {
	b.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		b.Fatal(err)
	}
	cfg := npu.SmallNPU()
	cfg.Mem.Channels = channels
	prog, err := compiler.Compile(m, cfg.CompilerConfig())
	if err != nil {
		b.Fatal(err)
	}
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
	if err != nil {
		b.Fatal(err)
	}
	mach := npu.NewMachine(prog, eng)
	mach.Run()
	return mach.Cycles()
}

func BenchmarkAblationDataflow(b *testing.B) {
	// Output-stationary (default, the commercial designs') vs
	// weight-stationary mapping: compute-time sensitivity of the
	// protection story — the overheads are memory-side, so the scheme
	// ranking must survive a dataflow change.
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("workload/scheme", "output-stationary", "weight-stationary")
		for _, short := range []string{"res", "med"} {
			for _, scheme := range []memprot.Scheme{memprot.Baseline, memprot.TreeLess} {
				short, scheme := short, scheme
				osCfg := npu.SmallNPU().CompilerConfig()
				wsCfg := osCfg
				wsCfg.Array.Flow = systolic.WeightStationary
				osC := runAblation(b, short, scheme, osCfg, nil)
				wsC := runAblation(b, short, scheme, wsCfg, nil)
				tb.AddRow(fmt.Sprintf("%s/%s", short, scheme), fmt.Sprintf("%d", osC), fmt.Sprintf("%d", wsC))
			}
		}
		out = tb.String()
	}
	printOnce("abl-dataflow", "Ablation: systolic dataflow\n"+out)
}

func BenchmarkAblationIOMMU(b *testing.B) {
	// Translation cost (Fig. 11): per-instruction IOMMU lookups with
	// EEPCM-validated page walks, versus the default where the paper's
	// 100-cycle DRAM figure subsumes translation (NeuMMU).
	var out string
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("config", "res-tnpu-cycles", "tlb-misses")
		for _, entries := range []int{0, 32, 256} {
			entries := entries
			m, err := model.ByShort("res")
			if err != nil {
				b.Fatal(err)
			}
			cfg := npu.SmallNPU()
			prog, err := compiler.Compile(m, cfg.CompilerConfig())
			if err != nil {
				b.Fatal(err)
			}
			bus := dram.NewBus(cfg.Mem)
			eng, err := memprot.New(memprot.TreeLess, memprot.DefaultConfig(bus))
			if err != nil {
				b.Fatal(err)
			}
			mach := npu.NewMachine(prog, eng)
			label := "disabled"
			if entries > 0 {
				mach.EnableTranslation(entries, 300)
				label = fmt.Sprintf("%d-entry TLB", entries)
			}
			mach.Run()
			tb.AddRow(label, fmt.Sprintf("%d", mach.Cycles()), fmt.Sprintf("%d", mach.TLBMisses))
		}
		out = tb.String()
	}
	printOnce("abl-iommu", "Ablation: IOMMU translation (TNPU, res, 300-cycle walks)\n"+out)
}
