// Package tnpu is the public API of the TNPU reproduction — the trusted
// NPU architecture with tree-less integrity protection from "TNPU:
// Supporting Trusted Execution with Tree-less Integrity Protection for
// Neural Processing Unit" (HPCA 2022).
//
// Two complementary layers are exposed:
//
//   - Simulation: Simulate / SimulateMulti / SimulateEndToEnd run the 14
//     benchmark workloads (Table III) on the cycle-accounting NPU
//     simulator under the three protection schemes the paper compares
//     (Unsecure, tree-based Baseline, tree-less TNPU), on the Small
//     (Exynos 990-class) or Large (Ethos N77-class) NPU of Table II.
//
//   - Functional security: NewSecureContext builds a context whose NPU
//     memory really is AES-XTS encrypted and MAC-verified with software
//     version numbers, for demonstrating tamper/replay/splice detection
//     end to end (see the examples directory).
//
// The experiment harness behind every paper figure is reachable through
// NewPaperRunner; cmd/tnpu-bench regenerates the full evaluation.
package tnpu

import (
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/core"
	"tnpu/internal/e2e"
	"tnpu/internal/exp"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/multinpu"
)

// Scheme selects a memory-protection scheme.
type Scheme = memprot.Scheme

// The three schemes of the evaluation.
const (
	// Unsecure applies no memory protection (normalization baseline).
	Unsecure = memprot.Unsecure
	// Baseline is the conventional counter-tree protection (SC-64).
	Baseline = memprot.Baseline
	// TreeLess is the paper's TNPU scheme.
	TreeLess = memprot.TreeLess
	// EncryptOnly is the scalable-SGX-like confidentiality-only bound
	// (Sec. II-B): AES-XTS full-memory encryption, no integrity.
	EncryptOnly = memprot.EncryptOnly
)

// Class selects an NPU configuration from Table II.
type Class = exp.Class

// The two NPU classes.
const (
	// Small is the Samsung Exynos 990-class NPU (32x32 PEs, 11 GB/s).
	Small = exp.Small
	// Large is the ARM Ethos N77-class NPU (45x45 PEs, 22 GB/s).
	Large = exp.Large
)

// Models returns the Table III workload abbreviations in paper order.
func Models() []string { return model.ShortNames() }

// ModelInfo describes one benchmark workload.
type ModelInfo struct {
	Short       string
	Name        string
	FootprintMB float64
	// PaperFootprintMB is Table III's reported value.
	PaperFootprintMB float64
	Layers           int
	HasEmbedding     bool
}

// Describe returns metadata for a workload.
func Describe(short string) (ModelInfo, error) {
	m, err := model.ByShort(short)
	if err != nil {
		return ModelInfo{}, err
	}
	return ModelInfo{
		Short:            m.Short,
		Name:             m.Name,
		FootprintMB:      float64(m.Footprint()) / (1 << 20),
		PaperFootprintMB: model.PaperFootprintsMB[m.Short],
		Layers:           len(m.Layers),
		HasEmbedding:     m.HasEmbedding(),
	}, nil
}

// Report summarizes one simulation.
type Report struct {
	Model  string
	Class  Class
	Scheme Scheme
	NPUs   int

	// Cycles is the execution time (slowest NPU for multi-NPU runs).
	Cycles uint64
	// Milliseconds converts cycles at the class's clock.
	Milliseconds float64

	// TrafficBytes is total bus traffic; MetadataBytes the security
	// metadata share of it.
	TrafficBytes  uint64
	MetadataBytes uint64

	// CounterMissRate is the counter-cache miss rate (baseline only).
	CounterMissRate float64
	// MACMissRate is the MAC-cache miss rate (protected schemes).
	MACMissRate float64
	// VersionTablePeakBytes is the Sec. IV-D software storage cost
	// (tree-less only).
	VersionTablePeakBytes int
}

func report(short string, class Class, scheme Scheme, count int, res multinpu.Result, prog *compiler.Program) Report {
	return Report{
		Model:                 short,
		Class:                 class,
		Scheme:                scheme,
		NPUs:                  count,
		Cycles:                res.Cycles,
		Milliseconds:          1e3 * float64(res.Cycles) / float64(class.Config().Mem.FreqHz),
		TrafficBytes:          res.Traffic.Total(),
		MetadataBytes:         res.Traffic.Metadata(),
		CounterMissRate:       res.Counter.MissRate(),
		MACMissRate:           res.MAC.MissRate(),
		VersionTablePeakBytes: prog.Table.PeakStorageBytes(),
	}
}

// Simulate runs one workload on one NPU under one protection scheme.
func Simulate(short string, class Class, scheme Scheme) (Report, error) {
	return SimulateMulti(short, class, scheme, 1)
}

// SimulateMulti runs the workload on count NPUs sharing the memory
// controller and security engine (the Sec. V-C configuration).
func SimulateMulti(short string, class Class, scheme Scheme, count int) (Report, error) {
	m, err := model.ByShort(short)
	if err != nil {
		return Report{}, err
	}
	prog, err := compiler.Compile(m, class.Config().CompilerConfig())
	if err != nil {
		return Report{}, err
	}
	res, err := multinpu.Run(prog, scheme, class.Config(), count)
	if err != nil {
		return Report{}, err
	}
	return report(short, class, scheme, count, res, prog), nil
}

// EndToEndReport extends Report with the Sec. V-D phase breakdown.
type EndToEndReport struct {
	Report
	InitCycles, RunCycles, OutputCycles uint64
	// AmortizedCycles is the per-request latency once the parameters are
	// resident.
	AmortizedCycles uint64
}

// SimulateEndToEnd runs the full sensor-to-result flow of Sec. V-D.
func SimulateEndToEnd(short string, class Class, scheme Scheme) (EndToEndReport, error) {
	m, err := model.ByShort(short)
	if err != nil {
		return EndToEndReport{}, err
	}
	prog, err := compiler.Compile(m, class.Config().CompilerConfig())
	if err != nil {
		return EndToEndReport{}, err
	}
	res, err := e2e.Run(prog, scheme, class.Config())
	if err != nil {
		return EndToEndReport{}, err
	}
	out := EndToEndReport{
		Report: Report{
			Model: short, Class: class, Scheme: scheme, NPUs: 1,
			Cycles:                res.Total,
			Milliseconds:          1e3 * float64(res.Total) / float64(class.Config().Mem.FreqHz),
			TrafficBytes:          res.Traffic.Total(),
			MetadataBytes:         res.Traffic.Metadata(),
			VersionTablePeakBytes: prog.Table.PeakStorageBytes(),
		},
		InitCycles:      res.InitCycles,
		RunCycles:       res.RunCycles,
		OutputCycles:    res.OutputCycles,
		AmortizedCycles: res.Amortized(),
	}
	return out, nil
}

// Overhead runs a scheme and the unsecure reference, returning the
// normalized execution time (the y-axis of Figs. 4/14/16).
func Overhead(short string, class Class, scheme Scheme, count int) (float64, error) {
	ref, err := SimulateMulti(short, class, Unsecure, count)
	if err != nil {
		return 0, err
	}
	run, err := SimulateMulti(short, class, scheme, count)
	if err != nil {
		return 0, err
	}
	if ref.Cycles == 0 {
		return 0, fmt.Errorf("tnpu: empty reference run for %s", short)
	}
	return float64(run.Cycles) / float64(ref.Cycles), nil
}

// NewPaperRunner returns the experiment harness that regenerates every
// table and figure of the paper's evaluation (optionally restricted to a
// subset of workloads).
//
// The runner is safe for concurrent use: each (model, class, scheme,
// count) cell is simulated exactly once no matter how many goroutines
// ask, and figure/sweep generators fan independent cells across a
// bounded worker pool with output byte-identical to a sequential run.
// Set Workers (0 = GOMAXPROCS, 1 = sequential) and Progress (e.g.
// os.Stderr for per-cell status lines) before the first call; Log()
// exposes the RunLog instrumentation afterwards.
func NewPaperRunner(models ...string) *exp.Runner { return exp.NewRunner(models...) }

// RunLog is the experiment harness's observability record: per-cell wall
// times, completion counts, and compile-vs-simulate totals. Obtain one
// via NewPaperRunner().Log().
type RunLog = exp.RunLog

// SecureContext is the functional trusted-NPU runtime (real encryption,
// MACs, and version bookkeeping over real bytes).
type SecureContext = core.Context

// NewSecureContext creates a functional protected NPU context from the
// session keys established at enclave/NPU-context initialization.
func NewSecureContext(xtsKey, macKey []byte) (*SecureContext, error) {
	return core.NewContext(xtsKey, macKey)
}
