#!/usr/bin/env bash
# Boot-and-hammer smoke test for tnpu-serve.
#
# Builds the server binary, boots it against a fresh disk cache, and
# drives it with the in-repo load-test client
# (TestLoadAgainstExternalServer): hundreds of concurrent requests, zero
# 5xx tolerated, cross-request cache hits required. Then the server is
# restarted over the same cache directory and hammered again with
# TNPU_SERVE_EXPECT_WARM=1, proving the disk cache survives a process
# restart and the warm process computes nothing.
#
# A third leg then wipes only the result-cache entries (keeping the
# persistent memo store) and restarts: the server must regenerate every
# artifact, but from whole-run memos rather than simulation, so the leg
# must beat the cold leg's wall time and /stats must show memo-store
# hits.
#
# Usage:
#   scripts/serve_smoke.sh            # default 300 requests per leg
#   SERVE_SMOKE_LOAD=2000 scripts/serve_smoke.sh
#
# Set SERVE_SMOKE_OUTDIR to keep the server logs in that directory (CI
# uploads them as an artifact on failure); by default everything lands in
# a temp directory removed at exit.
set -euo pipefail
cd "$(dirname "$0")/.."

load="${SERVE_SMOKE_LOAD:-300}"
work="$(mktemp -d)"
bin="$work/tnpu-serve"
cache="$work/cache"
if [ -n "${SERVE_SMOKE_OUTDIR:-}" ]; then
  mkdir -p "$SERVE_SMOKE_OUTDIR"
  logdir="$SERVE_SMOKE_OUTDIR"
else
  logdir="$work"
fi
server_pid=""

cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/tnpu-serve

# boot starts the server on an ephemeral port and extracts the bound
# address from its boot line:
#   tnpu-serve: listening on http://127.0.0.1:NNNNN (cache DIR)
# Sets $server_pid and $server_url (no subshell — the pid must survive
# into the cleanup trap).
server_url=""
boot() {
  local log="$1"
  # The memo store lives under the log directory so a CI failure uploads
  # its contents alongside the server logs.
  "$bin" -addr 127.0.0.1:0 -cache "$cache" -memodir "$logdir/memo" -models df >"$log" 2>&1 &
  server_pid=$!
  server_url=""
  for _ in $(seq 1 100); do
    server_url="$(sed -n 's/^tnpu-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$log")"
    [ -n "$server_url" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "serve_smoke: server died during boot:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$server_url" ]; then
    echo "serve_smoke: no boot line after 10s:" >&2
    cat "$log" >&2
    exit 1
  fi
}

stop() {
  kill "$server_pid"
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

now_ms() { date +%s%3N; }

echo "== cold leg: $load requests against a fresh cache =="
boot "$logdir/cold.log"
cold_start="$(now_ms)"
TNPU_SERVE_URL="$server_url" TNPU_SERVE_LOAD="$load" \
  go test ./internal/serve -run TestLoadAgainstExternalServer -count=1 -v
cold_ms="$(( $(now_ms) - cold_start ))"
stop

echo "== warm leg: $load requests after a restart, zero computes allowed =="
boot "$logdir/warm.log"
TNPU_SERVE_URL="$server_url" TNPU_SERVE_LOAD="$load" TNPU_SERVE_EXPECT_WARM=1 \
  go test ./internal/serve -run TestLoadAgainstExternalServer -count=1 -v
stop

echo "== memo-warm leg: result cache wiped, memo store intact =="
rm -f "$cache"/*.entry
boot "$logdir/memowarm.log"
memowarm_start="$(now_ms)"
TNPU_SERVE_URL="$server_url" TNPU_SERVE_LOAD="$load" \
  go test ./internal/serve -run TestLoadAgainstExternalServer -count=1 -v
memowarm_ms="$(( $(now_ms) - memowarm_start ))"
stats="$(curl -fsS "$server_url/stats")"
stop

echo "cold leg ${cold_ms}ms, memo-warm regeneration ${memowarm_ms}ms"
if [ "$memowarm_ms" -ge "$cold_ms" ]; then
  echo "serve_smoke: memo-warm regeneration (${memowarm_ms}ms) did not beat the cold leg (${cold_ms}ms)" >&2
  exit 1
fi
memo_hits="$(printf '%s' "$stats" | sed -n 's/.*"memo_store":{[^}]*"hits":\([0-9]*\).*/\1/p')"
if [ -z "$memo_hits" ] || [ "$memo_hits" -eq 0 ]; then
  echo "serve_smoke: memo-warm leg reported no memo-store hits; /stats was:" >&2
  printf '%s\n' "$stats" >&2
  exit 1
fi
echo "serve_smoke: all three legs clean (memo store served $memo_hits hits)"
