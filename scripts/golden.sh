#!/usr/bin/env bash
# Golden-output regression for tnpu-bench.
#
# The evaluation pipeline promises byte-identical output regardless of
# worker scheduling, so the full text artifacts are directly diffable.
# Fixtures live in testdata/golden/, one file per pinned invocation.
#
# Usage:
#   scripts/golden.sh check      # diff current output against fixtures (CI)
#   scripts/golden.sh generate   # regenerate fixtures after an intended change
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
golden=testdata/golden

# name|tnpu-bench arguments
cases=(
  "bench-df-agz-ncf.txt|-models df,agz,ncf"
  "attack-df-agz-ncf.txt|-attack"
  "hwcost.txt|-only hwcost"
)

bin="$(mktemp -d)/tnpu-bench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/tnpu-bench

status=0
for c in "${cases[@]}"; do
  name="${c%%|*}"
  args="${c#*|}"
  out="$(dirname "$bin")/$name"
  # shellcheck disable=SC2086  # word splitting of $args is intended
  "$bin" $args >"$out"
  case "$mode" in
    generate)
      mkdir -p "$golden"
      cp "$out" "$golden/$name"
      echo "wrote $golden/$name"
      ;;
    check)
      if ! diff -u "$golden/$name" "$out"; then
        echo "golden mismatch: $name (tnpu-bench $args)" >&2
        echo "if the change is intended, run: scripts/golden.sh generate" >&2
        status=1
      else
        echo "ok: $name"
      fi
      ;;
    *)
      echo "usage: scripts/golden.sh [check|generate]" >&2
      exit 2
      ;;
  esac
done
exit $status
