#!/usr/bin/env bash
# Golden-output regression for tnpu-bench.
#
# The evaluation pipeline promises byte-identical output regardless of
# worker scheduling, so the full text artifacts are directly diffable.
# Fixtures live in testdata/golden/, one file per pinned invocation.
#
# Usage:
#   scripts/golden.sh check      # diff current output against fixtures (CI)
#   scripts/golden.sh generate   # regenerate fixtures after an intended change
#
# Set GOLDEN_OUTDIR to keep the generated outputs in that directory
# (CI uploads them as an artifact when the diff fails); by default they
# land in a temp directory removed at exit.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
golden=testdata/golden

# name|tnpu-bench arguments
cases=(
  "bench-df-agz-ncf.txt|-models df,agz,ncf"
  "attack-df-agz-ncf.txt|-attack"
  "hwcost.txt|-only hwcost"
)

if [ -n "${GOLDEN_OUTDIR:-}" ]; then
  mkdir -p "$GOLDEN_OUTDIR"
  outdir="$GOLDEN_OUTDIR"
  bindir="$(mktemp -d)"
  trap 'rm -rf "$bindir"' EXIT
else
  outdir="$(mktemp -d)"
  bindir="$outdir"
  trap 'rm -rf "$outdir"' EXIT
fi
bin="$bindir/tnpu-bench"
go build -o "$bin" ./cmd/tnpu-bench

status=0
for c in "${cases[@]}"; do
  name="${c%%|*}"
  args="${c#*|}"
  out="$outdir/$name"
  # shellcheck disable=SC2086  # word splitting of $args is intended
  "$bin" $args >"$out"
  case "$mode" in
    generate)
      mkdir -p "$golden"
      cp "$out" "$golden/$name"
      echo "wrote $golden/$name"
      ;;
    check)
      if ! diff -u "$golden/$name" "$out"; then
        echo "golden mismatch: $name (tnpu-bench $args)" >&2
        echo "if the change is intended, run: scripts/golden.sh generate" >&2
        status=1
      else
        echo "ok: $name"
      fi
      ;;
    *)
      echo "usage: scripts/golden.sh [check|generate]" >&2
      exit 2
      ;;
  esac
done
exit $status
