#!/usr/bin/env bash
# bench.sh — measure the run-length batched DMA fast path against the
# retained per-block reference and emit BENCH_PR4.json.
#
# Both execution paths live in the same binary (the per-block model is the
# semantic reference the batched path is pinned to), so before/after is a
# single build: "before" = -perblock / the perblock sub-benchmarks,
# "after" = the default batched path.
#
# After writing the output, the batched machine-run times are compared
# against the previous checked-in bench file (PREV, default
# BENCH_PR3.json): any scheme more than 10% slower fails the script, so a
# streak-layer regression cannot be checked in silently.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR4.json}"
PREV="${PREV:-BENCH_PR3.json}"
# The engine microbenchmarks run in ~100us/op, so they need many
# iterations to settle; one full machine run takes tens of ms.
MICRO_BENCHTIME="${MICRO_BENCHTIME:-200x}"
BENCHTIME="${BENCHTIME:-5x}"

echo "engine microbenchmarks (ReadBlock vs ReadRun, 4096-block dense stream)..." >&2
# Exact-match the two comparison benchmarks: ReadRunHot/WriteRunHot (the
# allocation-pinned steady-state variants) share the ReadRun prefix and
# must not overwrite its numbers.
MICRO=$(go test ./internal/memprot -run '^$' -bench '^(BenchmarkReadBlock|BenchmarkReadRun)$' -benchtime "$MICRO_BENCHTIME" -count=1 | grep '^Benchmark')

echo "machine benchmarks (full npu.Run on res, per scheme x path)..." >&2
MACHINE=$(go test ./internal/npu -run '^$' -bench 'BenchmarkMachineRun' -benchtime "$BENCHTIME" -count=1 | grep '^Benchmark')

echo "full regeneration wall time (tnpu-bench -parallel 1, df/res subset)..." >&2
go build -o /tmp/tnpu-bench-pr4 ./cmd/tnpu-bench
t0=$(date +%s.%N)
/tmp/tnpu-bench-pr4 -parallel 1 -models df,res >/dev/null
t1=$(date +%s.%N)
BATCHED_S=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')
t0=$(date +%s.%N)
/tmp/tnpu-bench-pr4 -parallel 1 -perblock -models df,res >/dev/null
t1=$(date +%s.%N)
PERBLOCK_S=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')

{
	echo "{"
	echo '  "description": "Run-length batched DMA fast path with metadata-line streaks vs per-block reference (same binary, cycle-identical results). ns/op from go test -bench; wall seconds from tnpu-bench -parallel 1 -models df,res.",'
	echo '  "benchtime": {"micro": "'"$MICRO_BENCHTIME"'", "machine": "'"$BENCHTIME"'"},'

	echo '  "engine_micro_ns_per_op": {'
	echo "$MICRO" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[2])
			key = (index(p[1], "ReadRun") ? "readrun" : "readblock")
			ns[p[2] "." key] = $3
			if (!(p[2] in seen)) { seen[p[2]] = 1; order[++n] = p[2] }
		}
		END {
			for (i = 1; i <= n; i++) {
				s = order[i]
				rb = ns[s ".readblock"]; rr = ns[s ".readrun"]
				printf "    \"%s\": {\"perblock\": %s, \"batched\": %s, \"speedup\": %.2f}%s\n",
					s, rb, rr, rb / rr, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "machine_run_ns_per_op": {'
	echo "$MACHINE" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[5])
			key = p[2] "/" p[3] "/" p[4]
			ns[key "." p[5]] = $3
			if (!(key in seen)) { seen[key] = 1; order[++n] = key }
		}
		END {
			for (i = 1; i <= n; i++) {
				c = order[i]
				pb = ns[c ".perblock"]; bt = ns[c ".batched"]
				printf "    \"%s\": {\"perblock\": %s, \"batched\": %s, \"speedup\": %.2f}%s\n",
					c, pb, bt, pb / bt, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "full_regeneration_wall_s": {'
	echo '    "perblock": '"$PERBLOCK_S"','
	echo '    "batched": '"$BATCHED_S"','
	echo '    "speedup": '"$(echo "$PERBLOCK_S $BATCHED_S" | awk '{printf "%.2f", $1/$2}')"
	echo '  }'
	echo "}"
} >"$OUT"

echo "wrote $OUT" >&2

# --- regression gate -------------------------------------------------------
# Compare the batched machine-run times (ms-scale with -benchtime 5x, so
# stable enough for a 10% gate; the sub-microsecond engine micro numbers
# for the trivial schemes are harness-noise-bound and excluded) against the
# previous checked-in results.
if [ -f "$PREV" ] && [ "$PREV" != "$OUT" ]; then
	echo "checking batched machine-run times against $PREV (>10% slower fails)..." >&2
	extract_batched() {
		awk '
			/"machine_run_ns_per_op"/ { inblk = 1; next }
			inblk && /^  \}/ { inblk = 0 }
			inblk && /"batched":/ {
				split($0, q, "\"")
				v = $0; sub(/.*"batched": /, "", v); sub(/[,}].*/, "", v)
				print q[2], v
			}
		' "$1"
	}
	fail=0
	while read -r key old; do
		new=$(extract_batched "$OUT" | awk -v k="$key" '$1 == k {print $2}')
		if [ -z "$new" ]; then
			echo "  missing in $OUT: $key" >&2
			fail=1
			continue
		fi
		if echo "$old $new" | awk '{exit !($2 > $1 * 1.10)}'; then
			echo "  REGRESSION: $key batched $old -> $new ns/op (>10% slower)" >&2
			fail=1
		else
			echo "  ok: $key batched $old -> $new ns/op" >&2
		fi
	done < <(extract_batched "$PREV")
	if [ "$fail" != 0 ]; then
		echo "batched path regressed vs $PREV" >&2
		exit 1
	fi
fi
