#!/usr/bin/env bash
# bench.sh — measure the run-length batched DMA fast path against the
# retained per-block reference and emit BENCH_PR3.json.
#
# Both execution paths live in the same binary (the per-block model is the
# semantic reference the batched path is pinned to), so before/after is a
# single build: "before" = -perblock / the perblock sub-benchmarks,
# "after" = the default batched path.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR3.json}"
# The engine microbenchmarks run in ~100us/op, so they need many
# iterations to settle; one full machine run takes tens of ms.
MICRO_BENCHTIME="${MICRO_BENCHTIME:-200x}"
BENCHTIME="${BENCHTIME:-5x}"

echo "engine microbenchmarks (ReadBlock vs ReadRun, 4096-block dense stream)..." >&2
MICRO=$(go test ./internal/memprot -run '^$' -bench 'BenchmarkReadBlock|BenchmarkReadRun' -benchtime "$MICRO_BENCHTIME" -count=1 | grep '^Benchmark')

echo "machine benchmarks (full npu.Run on res, per scheme x path)..." >&2
MACHINE=$(go test ./internal/npu -run '^$' -bench 'BenchmarkMachineRun' -benchtime "$BENCHTIME" -count=1 | grep '^Benchmark')

echo "full regeneration wall time (tnpu-bench -parallel 1, df/res subset)..." >&2
go build -o /tmp/tnpu-bench-pr3 ./cmd/tnpu-bench
t0=$(date +%s.%N)
/tmp/tnpu-bench-pr3 -parallel 1 -models df,res >/dev/null
t1=$(date +%s.%N)
BATCHED_S=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')
t0=$(date +%s.%N)
/tmp/tnpu-bench-pr3 -parallel 1 -perblock -models df,res >/dev/null
t1=$(date +%s.%N)
PERBLOCK_S=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')

{
	echo "{"
	echo '  "description": "Run-length batched DMA fast path vs per-block reference (same binary, cycle-identical results). ns/op from go test -bench; wall seconds from tnpu-bench -parallel 1 -models df,res.",'
	echo '  "benchtime": {"micro": "'"$MICRO_BENCHTIME"'", "machine": "'"$BENCHTIME"'"},'

	echo '  "engine_micro_ns_per_op": {'
	echo "$MICRO" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[2])
			key = (index(p[1], "ReadRun") ? "readrun" : "readblock")
			ns[p[2] "." key] = $3
			if (!(p[2] in seen)) { seen[p[2]] = 1; order[++n] = p[2] }
		}
		END {
			for (i = 1; i <= n; i++) {
				s = order[i]
				rb = ns[s ".readblock"]; rr = ns[s ".readrun"]
				printf "    \"%s\": {\"perblock\": %s, \"batched\": %s, \"speedup\": %.2f}%s\n",
					s, rb, rr, rb / rr, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "machine_run_ns_per_op": {'
	echo "$MACHINE" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[5])
			key = p[2] "/" p[3] "/" p[4]
			ns[key "." p[5]] = $3
			if (!(key in seen)) { seen[key] = 1; order[++n] = key }
		}
		END {
			for (i = 1; i <= n; i++) {
				c = order[i]
				pb = ns[c ".perblock"]; bt = ns[c ".batched"]
				printf "    \"%s\": {\"perblock\": %s, \"batched\": %s, \"speedup\": %.2f}%s\n",
					c, pb, bt, pb / bt, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "full_regeneration_wall_s": {'
	echo '    "perblock": '"$PERBLOCK_S"','
	echo '    "batched": '"$BATCHED_S"','
	echo '    "speedup": '"$(echo "$PERBLOCK_S $BATCHED_S" | awk '{printf "%.2f", $1/$2}')"
	echo '  }'
	echo "}"
} >"$OUT"

echo "wrote $OUT" >&2
