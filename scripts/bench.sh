#!/usr/bin/env bash
# bench.sh — measure the batched DMA fast path and the layer-memoized
# production path against the retained per-block reference, and emit the
# next BENCH_PR<n>.json.
#
# All execution paths live in the same binary (the per-block model is the
# semantic reference the faster paths are pinned to), so before/after is a
# single build: "perblock" = the reference, "streak" = the batched
# run-length path without memoization, "batched" = the production path
# (batched + layer memo, which replays recurring layer signatures from
# cache — the harness's steady state).
#
# PREV defaults to the newest *checked-in* BENCH_PR<n>.json by numeric
# suffix; OUT defaults to BENCH_PR<n+1>.json (or takes $1) and the script
# refuses to overwrite an existing file, so stale hard-coded names can't
# silently clobber recorded results. After writing the output, the batched
# machine-run times are compared against PREV: any scheme more than 10%
# slower fails the script, so a fast-path regression cannot be checked in
# silently.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

# Newest checked-in bench file by numeric suffix (git ls-files, so a
# freshly written but uncommitted OUT never becomes its own baseline).
newest_checked_in() {
	git ls-files 'BENCH_PR*.json' |
		awk '{ n = $0; gsub(/[^0-9]/, "", n); print n + 0, $0 }' |
		sort -n | awk 'END { print $2 }'
}

PREV="${PREV:-$(newest_checked_in)}"
if [ -z "$PREV" ]; then
	echo "bench.sh: no checked-in BENCH_PR*.json to compare against (set PREV= explicitly)" >&2
	exit 1
fi

if [ -n "${1:-}" ]; then
	OUT="$1"
else
	maxn=$(basename "$PREV" | tr -dc '0-9')
	OUT="BENCH_PR$((maxn + 1)).json"
fi
if [ -e "$OUT" ]; then
	echo "bench.sh: refusing to overwrite existing $OUT (pass a fresh filename or remove it first)" >&2
	exit 1
fi
echo "baseline $PREV -> output $OUT" >&2

# The engine microbenchmarks run in ~100us/op, so they need many
# iterations to settle; one full machine run takes tens of ms. The machine
# count must be high enough that the memoized path's one-time recording
# pass (first iteration of each sub-benchmark) amortizes into the replay
# steady state it is meant to measure: at 20x the ~25ms recording pass
# still contributed ~40% of the ms-scale batched cells (and its
# scheduling noise with it); 100x caps it below a few percent, so the
# recorded number is the replay time the production harness actually
# pays.
MICRO_BENCHTIME="${MICRO_BENCHTIME:-200x}"
BENCHTIME="${BENCHTIME:-100x}"
# Multi-NPU block-interleave legs run 100-300ms each on large/res, so a
# modest iteration count already dominates scheduling noise.
MULTI_BENCHTIME="${MULTI_BENCHTIME:-10x}"

echo "engine microbenchmarks (ReadBlock vs ReadRun, 4096-block dense stream)..." >&2
# Exact-match the two comparison benchmarks: ReadRunHot/WriteRunHot (the
# allocation-pinned steady-state variants) share the ReadRun prefix and
# must not overwrite its numbers.
MICRO=$(go test ./internal/memprot -run '^$' -bench '^(BenchmarkReadBlock|BenchmarkReadRun)$' -benchtime "$MICRO_BENCHTIME" -count=1 | grep '^Benchmark')

echo "machine benchmarks (full npu.Run on res, per scheme x path)..." >&2
MACHINE=$(go test ./internal/npu -run '^$' -bench 'BenchmarkMachineRun' -benchtime "$BENCHTIME" -count=1 | grep '^Benchmark')

echo "multi-NPU benchmarks (2-3 co-tenant NPUs on res, per scheme x path)..." >&2
MULTI=$(go test ./internal/multinpu -run '^$' -bench 'BenchmarkMultiNPU' -benchtime "$MULTI_BENCHTIME" -count=1 | grep '^Benchmark')

echo "full regeneration wall time (tnpu-bench -parallel 1, df/res subset)..." >&2
go build -o /tmp/tnpu-bench-run ./cmd/tnpu-bench
t0=$(date +%s.%N)
/tmp/tnpu-bench-run -parallel 1 -models df,res >/dev/null
t1=$(date +%s.%N)
BATCHED_S=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')
t0=$(date +%s.%N)
/tmp/tnpu-bench-run -parallel 1 -perblock -models df,res >/dev/null
t1=$(date +%s.%N)
PERBLOCK_S=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')

# --- served regeneration: cold vs warm disk cache --------------------------
# The same artifact set (all figures + sensitivity sweeps) fetched through
# tnpu-serve, once against a fresh cache directory (every artifact
# simulated and persisted) and once after a process restart over the same
# directory (every artifact read back, zero simulation) — the
# service-level win the disk cache buys for full regeneration.
echo "served regeneration wall time (tnpu-serve, cold vs warm disk cache)..." >&2
go build -o /tmp/tnpu-serve-run ./cmd/tnpu-serve
SERVE_CACHE=$(mktemp -d)
SERVE_LOG=$(mktemp)
SERVE_PID=""
serve_boot() {
	/tmp/tnpu-serve-run -addr 127.0.0.1:0 -cache "$SERVE_CACHE" -models df,res >"$SERVE_LOG" 2>&1 &
	SERVE_PID=$!
	SERVE_URL=""
	for _ in $(seq 1 100); do
		SERVE_URL=$(sed -n 's/^tnpu-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$SERVE_LOG")
		[ -n "$SERVE_URL" ] && break
		sleep 0.1
	done
	if [ -z "$SERVE_URL" ]; then
		echo "bench.sh: tnpu-serve failed to boot:" >&2
		cat "$SERVE_LOG" >&2
		exit 1
	fi
}
serve_fetch_all() {
	local id
	for id in fig4 fig5 fig14 fig15 fig16 fig17; do
		curl -fsS "$SERVE_URL/api/figure/$id" >/dev/null
	done
	for id in bandwidth spm latency; do
		curl -fsS "$SERVE_URL/api/sweep/$id?model=df" >/dev/null
	done
}
serve_stop() {
	kill "$SERVE_PID"
	wait "$SERVE_PID" 2>/dev/null || true
	SERVE_PID=""
}
serve_boot
t0=$(date +%s.%N)
serve_fetch_all
t1=$(date +%s.%N)
SERVED_COLD_S=$(echo "$t1 $t0" | awk '{printf "%.3f", $1-$2}')
serve_stop
serve_boot
t0=$(date +%s.%N)
serve_fetch_all
t1=$(date +%s.%N)
SERVED_WARM_S=$(echo "$t1 $t0" | awk '{printf "%.3f", $1-$2}')
serve_stop
# Memo-warm: wipe only the result-cache entries, keep the persistent memo
# store (at its default location under the cache directory), and restart.
# The server must regenerate every artifact, but whole-run memos replace
# simulation — this is the cold-process regeneration cost after PR9.
rm -f "$SERVE_CACHE"/*.entry
serve_boot
t0=$(date +%s.%N)
serve_fetch_all
t1=$(date +%s.%N)
SERVED_MEMOWARM_S=$(echo "$t1 $t0" | awk '{printf "%.3f", $1-$2}')
serve_stop
rm -rf "$SERVE_CACHE" "$SERVE_LOG"

# The tentpole guarantee: with the memo store intact, cold-process
# regeneration must be at least 5x faster than fully cold. A miss here
# means whole-run memos stopped covering the artifact set.
if ! echo "$SERVED_COLD_S $SERVED_MEMOWARM_S" | awk '{exit !($2 > 0 && $1 / $2 >= 5)}'; then
	echo "bench.sh: memo-warm regeneration ${SERVED_MEMOWARM_S}s is not >=5x faster than cold ${SERVED_COLD_S}s" >&2
	exit 1
fi

{
	echo "{"
	echo '  "description": "Batched DMA fast path (streak) and layer-memoized production path (batched) vs per-block reference (same binary, cycle-identical results). multi_npu compares 2-3 co-tenant NPUs on the block-granular interleave (block), live horizon-bounded streak arbitration (arbitrated), and the joint-run-cache steady state (batched). ns/op from go test -bench; wall seconds from tnpu-bench -parallel 1 -models df,res. served_cold/served_warm time the same artifact set (all figures + sweeps) through tnpu-serve against a fresh vs restart-surviving disk cache; served_cold_memowarm re-times the cold case (result cache wiped, every artifact regenerated) with the persistent whole-run memo store intact — regeneration replays memos instead of simulating. memowarm_speedup gates at >=5x.",'
	echo '  "benchtime": {"micro": "'"$MICRO_BENCHTIME"'", "machine": "'"$BENCHTIME"'", "multi": "'"$MULTI_BENCHTIME"'"},'

	echo '  "engine_micro_ns_per_op": {'
	echo "$MICRO" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[2])
			key = (index(p[1], "ReadRun") ? "readrun" : "readblock")
			ns[p[2] "." key] = $3
			if (!(p[2] in seen)) { seen[p[2]] = 1; order[++n] = p[2] }
		}
		END {
			for (i = 1; i <= n; i++) {
				s = order[i]
				rb = ns[s ".readblock"]; rr = ns[s ".readrun"]
				printf "    \"%s\": {\"perblock\": %s, \"batched\": %s, \"speedup\": %.2f}%s\n",
					s, rb, rr, rb / rr, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "machine_run_ns_per_op": {'
	echo "$MACHINE" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[5])
			key = p[2] "/" p[3] "/" p[4]
			ns[key "." p[5]] = $3
			if (!(key in seen)) { seen[key] = 1; order[++n] = key }
		}
		END {
			for (i = 1; i <= n; i++) {
				c = order[i]
				pb = ns[c ".perblock"]; st = ns[c ".streak"]; bt = ns[c ".batched"]
				printf "    \"%s\": {\"perblock\": %s, \"streak\": %s, \"batched\": %s, \"speedup_streak\": %.2f, \"speedup\": %.2f}%s\n",
					c, pb, st, bt, pb / st, pb / bt, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "multi_npu_ns_per_op": {'
	echo "$MULTI" | awk '
		{
			split($1, p, "/"); sub(/-[0-9]+$/, "", p[6])
			key = p[2] "/" p[3] "/" p[4] "/" p[5]
			ns[key "." p[6]] = $3
			if (!(key in seen)) { seen[key] = 1; order[++n] = key }
		}
		END {
			for (i = 1; i <= n; i++) {
				c = order[i]
				bl = ns[c ".block"]; ar = ns[c ".arbitrated"]; bt = ns[c ".batched"]
				printf "    \"%s\": {\"block\": %s, \"arbitrated\": %s, \"batched\": %s, \"speedup_arbitrated\": %.2f, \"speedup\": %.2f}%s\n",
					c, bl, ar, bt, bl / ar, bl / bt, (i < n ? "," : "")
			}
		}'
	echo '  },'

	echo '  "full_regeneration_wall_s": {'
	echo '    "perblock": '"$PERBLOCK_S"','
	echo '    "batched": '"$BATCHED_S"','
	echo '    "speedup": '"$(echo "$PERBLOCK_S $BATCHED_S" | awk '{printf "%.2f", $1/$2}')"','
	echo '    "served_cold": '"$SERVED_COLD_S"','
	echo '    "served_warm": '"$SERVED_WARM_S"','
	echo '    "served_speedup": '"$(echo "$SERVED_COLD_S $SERVED_WARM_S" | awk '{if ($2 > 0) printf "%.2f", $1/$2; else print "null"}')"','
	echo '    "served_cold_memowarm": '"$SERVED_MEMOWARM_S"','
	echo '    "memowarm_speedup": '"$(echo "$SERVED_COLD_S $SERVED_MEMOWARM_S" | awk '{if ($2 > 0) printf "%.2f", $1/$2; else print "null"}')"
	echo '  }'
	echo "}"
} >"$OUT"

echo "wrote $OUT" >&2

# --- regression gate -------------------------------------------------------
# Compare the batched machine-run times against the previous checked-in
# results. A cell fails only if it is BOTH >10% slower AND >100us slower
# in absolute terms: the protected-scheme cells are ms-scale and get an
# effective 10% gate, while the unprotected cells run in tens of
# microseconds where session-to-session scheduling drift on shared
# hardware routinely exceeds 10% (reproducible on an unmodified checkout)
# and a pure relative gate just measures machine load. The sub-microsecond
# engine micro numbers are excluded entirely for the same reason. Keys
# present only in OUT (new sub-benchmarks like "streak") are not gated;
# keys missing from OUT fail.
if [ -f "$PREV" ] && [ "$PREV" != "$OUT" ]; then
	echo "checking batched machine-run and multi-NPU times against $PREV (>10% slower fails)..." >&2
	extract_batched() {
		awk -v blk="$2" '
			index($0, "\"" blk "\"") { inblk = 1; next }
			inblk && /^  \}/ { inblk = 0 }
			inblk && /"batched":/ {
				split($0, q, "\"")
				v = $0; sub(/.*"batched": /, "", v); sub(/[,}].*/, "", v)
				print q[2], v
			}
		' "$1"
	}
	fail=0
	for section in machine_run_ns_per_op multi_npu_ns_per_op; do
		while read -r key old; do
			new=$(extract_batched "$OUT" "$section" | awk -v k="$key" '$1 == k {print $2}')
			if [ -z "$new" ]; then
				echo "  missing in $OUT: $section $key" >&2
				fail=1
				continue
			fi
			if echo "$old $new" | awk '{exit !($2 > $1 * 1.10 && $2 > $1 + 100000)}'; then
				echo "  REGRESSION: $section $key batched $old -> $new ns/op (>10% and >100us slower)" >&2
				fail=1
			else
				echo "  ok: $section $key batched $old -> $new ns/op" >&2
			fi
		done < <(extract_batched "$PREV" "$section")
	done
	if [ "$fail" != 0 ]; then
		echo "batched path regressed vs $PREV" >&2
		exit 1
	fi
fi
