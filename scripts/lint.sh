#!/usr/bin/env bash
# One-shot local lint runner: the same checks the CI lint job gates
# merges on, in the same order. Runs gofmt, go vet, and the repo's own
# invariant suite (cmd/tnpu-vet, DESIGN.md §7c) unconditionally;
# staticcheck and govulncheck run only if already installed, since this
# tree builds offline with no module dependencies.
#
# Usage:
#   scripts/lint.sh                     # everything
#   scripts/lint.sh --only <analyzer>   # one tnpu-vet analyzer (e.g.
#                                       # --only canoncover), skipping
#                                       # the other linters — the fast
#                                       # loop while fixing one class of
#                                       # finding
set -euo pipefail
cd "$(dirname "$0")/.."

only=""
if [ "${1:-}" = "--only" ]; then
  if [ $# -lt 2 ]; then
    echo "usage: scripts/lint.sh [--only <analyzer>]" >&2
    exit 1
  fi
  only="$2"
fi

status=0

bin="$(mktemp -d)/tnpu-vet"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/tnpu-vet

if [ -n "$only" ]; then
  echo "== tnpu-vet -only $only"
  "$bin" -only "$only" ./... || status=1
  if [ "$status" -ne 0 ]; then
    echo "lint: FAIL" >&2
  else
    echo "lint: ok"
  fi
  exit $status
fi

echo "== gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  status=1
fi

echo "== go vet"
go vet ./... || status=1

echo "== tnpu-vet (invariant suite)"
# Run it both ways: standalone over every package, and through cmd/go's
# -vettool plumbing so the vet.cfg protocol path stays exercised.
"$bin" ./... || status=1
go vet -vettool="$bin" ./... || status=1

echo "== tnpu-vet -certify (artifact freshness)"
# The committed certification artifact backs the runtime reflection
# cross-checks (internal/certcheck); regenerate and diff so it cannot
# drift from the analyzed tree.
fresh="$(dirname "$bin")/canoncover.json"
"$bin" -only canoncover -certify "$fresh" ./... >/dev/null || status=1
if ! diff -u testdata/canoncover.json "$fresh"; then
  echo "testdata/canoncover.json is stale: run 'go run ./cmd/tnpu-vet -certify testdata/canoncover.json ./...' and commit it" >&2
  status=1
fi

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck ./... || status=1
else
  echo "== staticcheck (not installed; skipped — CI runs the pinned version)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./... || status=1
else
  echo "== govulncheck (not installed; skipped — CI runs the pinned version)"
fi

if [ "$status" -ne 0 ]; then
  echo "lint: FAIL" >&2
else
  echo "lint: ok"
fi
exit $status
