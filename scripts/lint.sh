#!/usr/bin/env bash
# One-shot local lint runner: the same checks the CI lint job gates
# merges on, in the same order. Runs gofmt, go vet, and the repo's own
# invariant suite (cmd/tnpu-vet, DESIGN.md §7c) unconditionally;
# staticcheck and govulncheck run only if already installed, since this
# tree builds offline with no module dependencies.
#
# Usage:
#   scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  status=1
fi

echo "== go vet"
go vet ./... || status=1

echo "== tnpu-vet (invariant suite)"
bin="$(mktemp -d)/tnpu-vet"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/tnpu-vet
# Run it both ways: standalone over every package, and through cmd/go's
# -vettool plumbing so the vet.cfg protocol path stays exercised.
"$bin" ./... || status=1
go vet -vettool="$bin" ./... || status=1

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck ./... || status=1
else
  echo "== staticcheck (not installed; skipped — CI runs the pinned version)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./... || status=1
else
  echo "== govulncheck (not installed; skipped — CI runs the pinned version)"
fi

if [ "$status" -ne 0 ]; then
  echo "lint: FAIL" >&2
else
  echo "lint: ok"
fi
exit $status
