package tnpu

import (
	"errors"
	"strings"
	"testing"

	"tnpu/internal/secmem"
)

func TestModelsList(t *testing.T) {
	ms := Models()
	if len(ms) != 14 {
		t.Fatalf("Models() returned %d entries, want 14", len(ms))
	}
	if ms[0] != "goo" || ms[13] != "ncf" {
		t.Fatalf("paper order broken: %v", ms)
	}
}

func TestDescribe(t *testing.T) {
	info, err := Describe("sent")
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasEmbedding || info.FootprintMB < 40 {
		t.Errorf("sent metadata implausible: %+v", info)
	}
	if !strings.Contains(info.Name, "Sentimental") {
		t.Errorf("name = %q", info.Name)
	}
	if _, err := Describe("bogus"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestSimulateBasics(t *testing.T) {
	r, err := Simulate("df", Small, TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Milliseconds <= 0 || r.TrafficBytes == 0 {
		t.Fatalf("empty report: %+v", r)
	}
	if r.MetadataBytes == 0 || r.VersionTablePeakBytes == 0 {
		t.Errorf("tree-less run missing metadata accounting: %+v", r)
	}
	if r.NPUs != 1 || r.Scheme != TreeLess || r.Class != Small {
		t.Errorf("report identity wrong: %+v", r)
	}
}

func TestSimulateUnknownModel(t *testing.T) {
	if _, err := Simulate("bogus", Small, Unsecure); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestOverheadOrdering(t *testing.T) {
	base, err := Overhead("df", Small, Baseline, 1)
	if err != nil {
		t.Fatal(err)
	}
	tnpu, err := Overhead("df", Small, TreeLess, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(1 < tnpu && tnpu < base) {
		t.Errorf("overhead ordering violated: tnpu=%.3f baseline=%.3f", tnpu, base)
	}
}

func TestSimulateMulti(t *testing.T) {
	r, err := SimulateMulti("agz", Small, Baseline, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.NPUs != 3 {
		t.Errorf("NPUs = %d", r.NPUs)
	}
	single, _ := Simulate("agz", Small, Baseline)
	if r.Cycles <= single.Cycles {
		t.Error("3 contending NPUs should take longer than 1")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	r, err := SimulateEndToEnd("df", Large, TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	if r.InitCycles == 0 || r.RunCycles == 0 || r.OutputCycles == 0 {
		t.Fatalf("missing phase: %+v", r)
	}
	if r.Cycles != r.InitCycles+r.RunCycles+r.OutputCycles {
		t.Error("phase sum mismatch")
	}
	if r.AmortizedCycles >= r.Cycles {
		t.Error("amortized latency should drop the init phase")
	}
}

func TestSecureContextFacade(t *testing.T) {
	ctx, err := NewSecureContext(
		[]byte("0123456789abcdef0123456789abcdef"),
		[]byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	ten, err := ctx.Alloc("x", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.WriteTensor(ten.ID, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Memory().Corrupt(ten.Addr, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.ReadTensor(ten.ID); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("tamper undetected through facade: %v", err)
	}
}

func TestPaperRunnerSubset(t *testing.T) {
	r := NewPaperRunner("df")
	f, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 || len(f.Series[0].Values) != 1 {
		t.Fatalf("unexpected figure shape: %+v", f)
	}
}
