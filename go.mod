module tnpu

go 1.22
