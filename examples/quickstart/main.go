// Quickstart: simulate one DNN inference (ResNet50, Table III) on the
// Small NPU (Exynos 990-class, Table II) under the three memory-protection
// schemes the paper compares, and print the Fig. 14-style normalized
// execution times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tnpu"
)

func main() {
	const workload = "res"
	info, err := tnpu.Describe(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Workload: %s (%s), %.1fMB footprint, %d layers\n\n",
		info.Name, workload, info.FootprintMB, info.Layers)

	var unsecure uint64
	for _, scheme := range []tnpu.Scheme{tnpu.Unsecure, tnpu.Baseline, tnpu.TreeLess} {
		r, err := tnpu.Simulate(workload, tnpu.Small, scheme)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == tnpu.Unsecure {
			unsecure = r.Cycles
		}
		fmt.Printf("%-9s  %12d cycles  %.3f ms  normalized %.3f\n",
			scheme, r.Cycles, r.Milliseconds, float64(r.Cycles)/float64(unsecure))
		switch scheme {
		case tnpu.Baseline:
			fmt.Printf("           counter-cache miss rate %.1f%%, metadata traffic %d bytes\n",
				100*r.CounterMissRate, r.MetadataBytes)
		case tnpu.TreeLess:
			fmt.Printf("           no counter tree; version table peaks at %d bytes in the enclave\n",
				r.VersionTablePeakBytes)
		}
	}

	base, _ := tnpu.Overhead(workload, tnpu.Small, tnpu.Baseline, 1)
	tl, _ := tnpu.Overhead(workload, tnpu.Small, tnpu.TreeLess, 1)
	fmt.Printf("\nTNPU's tree-less protection cuts the overhead from %.1f%% to %.1f%%\n",
		100*(base-1), 100*(tl-1))
}
