// Attack demonstrations: every physical attack of the paper's threat
// model (Sec. II-E) mounted against real protected memory, and detected.
//
//   - Tampering: flip a DRAM bit under the ciphertext.
//
//   - Replay: capture a (ciphertext, MAC) snapshot from the bus and
//     restore it after a legitimate update.
//
//   - Splicing: relocate a valid block to a different address.
//
//   - Stale tile: replay one tile of a partially updated tensor.
//
//   - Counter replay against the tree-based baseline's counter tree.
//
//   - Malicious OS page-table remap against the EEPCM.
//
//     go run ./examples/attacks
package main

import (
	"fmt"
	"log"

	"tnpu"
	"tnpu/internal/enclave"
	"tnpu/internal/integrity"
	"tnpu/internal/tensor"
)

func main() {
	sc, err := tnpu.NewSecureContext(
		[]byte("attack-demo-xts-0123456789abcdef"),
		[]byte("attack-demo-mac0"))
	if err != nil {
		log.Fatal(err)
	}

	ten, _ := sc.Alloc("activations", 256)
	must(sc.WriteTensor(ten.ID, pattern(256, 1)))

	// 1. Tampering.
	must(sc.Memory().Corrupt(ten.Addr, 17))
	report("tampering (bit flip in DRAM)", read(sc, ten.ID))
	must(sc.WriteTensor(ten.ID, pattern(256, 2))) // heal

	// 2. Replay: snapshot v2, update to v3, restore the stale snapshot.
	ct, mac, _ := sc.Memory().Snapshot(ten.Addr)
	must(sc.WriteTensor(ten.ID, pattern(256, 3)))
	sc.Memory().Restore(ten.Addr, ct, mac)
	report("replay (stale ciphertext+MAC restored)", read(sc, ten.ID))
	must(sc.WriteTensor(ten.ID, pattern(256, 4)))

	// 3. Splicing: copy block 0 over block 1 (both currently valid).
	must(sc.Memory().Relocate(ten.Addr, ten.Addr+64))
	report("splicing (valid block moved to another address)", read(sc, ten.ID))
	must(sc.WriteTensor(ten.ID, pattern(256, 5)))

	// 4. Stale tile: expand into tiles, update both twice, replay one.
	must(sc.ExpandTiles(ten.ID, 2))
	must(sc.WriteTile(ten.ID, 0, pattern(128, 6)))
	must(sc.WriteTile(ten.ID, 1, pattern(128, 6)))
	tileCT, tileMAC, _ := sc.Memory().Snapshot(ten.Addr + 128)
	must(sc.WriteTile(ten.ID, 0, pattern(128, 7)))
	must(sc.WriteTile(ten.ID, 1, pattern(128, 7)))
	sc.Memory().Restore(ten.Addr+128, tileCT, tileMAC)
	_, tileErr := sc.ReadTile(ten.ID, 1)
	report("stale-tile replay (per-tile version numbers)", tileErr)

	// 5. Counter replay against the tree-based baseline.
	tree := integrity.NewCounterTree(1<<20, []byte("baseline-tree-mac-key-0123456789"))
	raw, nodeMAC := tree.SnapshotNode(0, 0)
	if _, _, err := tree.Increment(0); err != nil {
		log.Fatal(err)
	}
	tree.RestoreNode(0, 0, raw, nodeMAC)
	_, ctrErr := tree.Counter(0)
	report("counter-line replay (baseline integrity tree)", ctrErr)

	// 6. Malicious OS remap: map the victim's NPU page into an attacker
	// context; the IOMMU's EEPCM validation rejects the fill.
	eepcm := enclave.NewEEPCM()
	must(eepcm.Assign(0x300, enclave.EEPCMEntry{Owner: 2, VirtPage: 0x1000, Perm: enclave.PermRead | enclave.PermWrite}))
	attackerPT := enclave.NewPageTable()
	attackerPT.Map(0x1000, 0x300) // OS rewrites the attacker's table
	iommu := enclave.NewTLB(3, attackerPT, eepcm)
	_, remapErr := iommu.Translate(0x1000*enclave.PageBytes, enclave.PermRead)
	report("malicious OS page-table remap (EEPCM validation)", remapErr)
}

// read attempts a verified whole-tensor read and returns its error.
func read(sc *tnpu.SecureContext, id tensor.ID) error {
	_, err := sc.ReadTensor(id)
	return err
}

// report prints whether an attack was caught; an undetected attack is a
// fatal reproduction failure.
func report(attack string, err error) {
	if err == nil {
		log.Fatalf("UNDETECTED: %s", attack)
	}
	fmt.Printf("detected  %-50s -> %v\n", attack, err)
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*13)
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
