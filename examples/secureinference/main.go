// Secure inference end to end, functionally, covering the paper's whole
// Fig. 3 flow: a sensor captures data and seals it over the untrusted
// transport (Sec. III-A); the CPU enclave attests itself, obtains an NPU
// context through the protected driver enclave, unseals the sensor data,
// loads it and a small two-layer MLP into tree-less protected memory
// through the ts_write_block path (Sec. IV-C), runs the layers as secure
// tiled matmuls with per-tile version numbers (Fig. 9), and reads the
// verified result — with every byte really encrypted and MAC-checked.
//
//	go run ./examples/secureinference
package main

import (
	"fmt"
	"log"

	"tnpu"
	"tnpu/internal/core"
	"tnpu/internal/enclave"
	"tnpu/internal/sensor"
)

func main() {
	// --- Access-control setup (Sec. IV-A/B/E) ---
	mgr := enclave.NewManager(1)
	device := enclave.NewDevice([]byte("device-fused-key-0123456789abcd"))

	driver, err := mgr.CreateEnclave(1)
	check(err)
	check(mgr.AddPage(driver, 0x10, 0x100, enclave.PermRead|enclave.PermExec,
		enclave.RegionFullyProtected, []byte("npu driver binary")))
	check(mgr.InstallDriver(driver, driver.Measurement().Digest()))

	app, err := mgr.CreateEnclave(2)
	check(err)
	check(mgr.AddPage(app, 0x20, 0x200, enclave.PermRead|enclave.PermExec,
		enclave.RegionFullyProtected, []byte("ml application binary")))
	quote := device.Sign(app.Measurement().Digest(), [32]byte{})
	ctx, err := mgr.RequestNPU(app, quote, device, 0x1000, 256)
	check(err)
	fmt.Printf("NPU %d granted to enclave %d via attested driver request\n", ctx.NPU, ctx.Owner)

	// Map the NPU context's protected pages inside NELRANGE.
	for p := uint64(0); p < 8; p++ {
		check(mgr.AddNPUPage(app, 0x1000+p, 0x300+p, enclave.PermRead|enclave.PermWrite))
	}
	if _, err := ctx.IOMMU.Translate(0x1000*enclave.PageBytes, enclave.PermWrite); err != nil {
		log.Fatal("IOMMU rejected a legal translation: ", err)
	}
	fmt.Println("IOMMU validated the NPU context's translations against the EEPCM")

	// --- Protected data path (Sec. IV-C/D) ---
	sc, err := tnpu.NewSecureContext(
		[]byte("session-xts-key-0123456789abcdef"),
		[]byte("session-mac-key0"))
	check(err)

	const (
		batch  = 8
		inDim  = 16
		hidden = 12
		outDim = 4
	)
	x, _ := sc.Alloc("input", 2*batch*inDim)
	w1, _ := sc.Alloc("fc1.w", 2*inDim*hidden)
	h, _ := sc.Alloc("fc1.out", 2*batch*hidden)
	w2, _ := sc.Alloc("fc2.w", 2*hidden*outDim)
	y, _ := sc.Alloc("fc2.out", 2*batch*outDim)

	// --- Secure sensor channel (Sec. III-A) ---
	provisioning := []byte("factory-provisioning-secret-0123")
	camera, err := sensor.NewSensor(42, sensor.DeriveKey(provisioning, 42))
	check(err)
	receiver := sensor.NewReceiver(provisioning)
	input := ramp(batch*inDim, 3)
	packet := camera.Capture(core.EncodeInt16(input))
	sample, err := receiver.Accept(packet)
	check(err)
	fmt.Printf("sensor frame (seq %d) authenticated and decrypted inside the enclave\n", packet.Seq)
	// A replayed sensor packet is rejected before it ever reaches the NPU.
	if _, err := receiver.Accept(packet); err != nil {
		fmt.Println("replayed sensor packet rejected:", err)
	}

	weights1 := ramp(inDim*hidden, 5)
	weights2 := ramp(hidden*outDim, 7)

	// The enclave streams data in through the uncached ts_write path.
	check(sc.InitTensor(x.ID, sample))
	check(sc.InitTensor(w1.ID, core.EncodeInt16(weights1)))
	check(sc.InitTensor(w2.ID, core.EncodeInt16(weights2)))
	fmt.Println("input and parameters initialized through ts_write_block under fresh versions")

	// Two secure tiled matmuls: each expands the output's version entry
	// into tiles, writes tile by tile, and merges (Fig. 9).
	check(core.SecureMatMul(sc, x.ID, w1.ID, h.ID, batch, inDim, hidden, 3))
	check(core.SecureMatMul(sc, h.ID, w2.ID, y.ID, batch, hidden, outDim, 1))

	got, err := sc.FetchTensor(y.ID)
	check(err)
	want := core.MatMulInt16(core.MatMulInt16(input, weights1, batch, inDim, hidden),
		weights2, batch, hidden, outDim)
	for i, w := range core.EncodeInt16(want) {
		if got[i] != w {
			log.Fatalf("secure inference result mismatch at byte %d", i)
		}
	}
	fmt.Println("inference result read back through ts_read_block and verified against the plaintext reference")

	// A foreign enclave cannot even translate into the NPU pages.
	intruder, _ := mgr.CreateEnclave(3)
	intruder.PageTable().Map(0x1000, 0x300)
	if _, err := intruder.TLB().Translate(0x1000*enclave.PageBytes, enclave.PermRead); err != nil {
		fmt.Println("intruder enclave blocked by EEPCM validation:", err)
	}
	mgr.Destroy(app)
	fmt.Println("enclave destroyed; NPU and pages reclaimed")
}

func ramp(n int, step int) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16((i*step)%23 - 11)
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
