// Multi-NPU scalability (the Fig. 16 experiment): run the same inference
// on 1-3 NPUs that share the memory controller and security engine, and
// watch the tree-based baseline degrade as its counter/hash caches and
// walk bandwidth are shared, while TNPU's tree-less protection stays flat.
//
//	go run ./examples/multinpu
package main

import (
	"fmt"
	"log"

	"tnpu"
)

func main() {
	const workload = "sent" // the paper's most protection-hostile model
	fmt.Printf("Scalability on %q, Small NPU (execution normalized to the unsecure run with the same NPU count):\n\n", workload)
	fmt.Printf("%-6s %-12s %-12s %-10s\n", "NPUs", "baseline", "tnpu", "gap")
	for npus := 1; npus <= 3; npus++ {
		base, err := tnpu.Overhead(workload, tnpu.Small, tnpu.Baseline, npus)
		if err != nil {
			log.Fatal(err)
		}
		tl, err := tnpu.Overhead(workload, tnpu.Small, tnpu.TreeLess, npus)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-12.3f %-12.3f %-10.3f\n", npus, base, tl, base-tl)
	}

	fmt.Println("\nWhy: the baseline's counter-cache miss rate under sharing —")
	for npus := 1; npus <= 3; npus++ {
		r, err := tnpu.SimulateMulti(workload, tnpu.Small, tnpu.Baseline, npus)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d NPU(s): counter miss rate %.2f%%, metadata traffic %.1fMB\n",
			npus, 100*r.CounterMissRate, float64(r.MetadataBytes)/(1<<20))
	}
	fmt.Println("\nTNPU has no counter tree to thrash: its only shared metadata is the MAC cache.")
}
