package enclave

import (
	"errors"
	"fmt"
)

// Errors from lifecycle operations.
var (
	ErrNoDriver     = errors.New("enclave: NPU driver enclave not running")
	ErrNotAttested  = errors.New("enclave: driver refuses unattested requester")
	ErrNPUsBusy     = errors.New("enclave: all NPUs assigned")
	ErrTornDown     = errors.New("enclave: operation on destroyed enclave")
	ErrDoubleCreate = errors.New("enclave: id already exists")
)

// Enclave is one CPU enclave, possibly owning an NPU context.
type Enclave struct {
	ID ID
	// NELBase/NELPages delimit the protected virtual range (NELRANGE,
	// Sec. IV-B) of the attached NPU context.
	NELBase, NELPages uint64
	pt                *PageTable
	tlb               *TLB
	meas              *Measurement
	pages             []uint64 // owned physical pages, for teardown
	dead              bool
}

// PageTable exposes the enclave's (OS-controlled) page table.
func (e *Enclave) PageTable() *PageTable { return e.pt }

// TLB exposes the enclave's MMU.
func (e *Enclave) TLB() *TLB { return e.tlb }

// Measurement exposes the enclave's build measurement.
func (e *Enclave) Measurement() *Measurement { return e.meas }

// NPUContext is an NPU execution context bound to a CPU enclave; it has
// its own IOMMU validating against the same EEPCM (Fig. 11).
type NPUContext struct {
	Owner ID
	NPU   int
	IOMMU *TLB
}

// Manager owns the EEPCM and enclave lifecycle; it stands in for the
// microcode/secure-monitor layer.
type Manager struct {
	eepcm    *EEPCM
	enclaves map[ID]*Enclave
	// driver is the protected NPU driver enclave (Sec. IV-A): the OS can
	// only submit NPU requests through it.
	driver   *Enclave
	npusFree []int
	contexts map[ID]*NPUContext
}

// NewManager creates a manager controlling npus NPUs.
func NewManager(npus int) *Manager {
	m := &Manager{
		eepcm:    NewEEPCM(),
		enclaves: make(map[ID]*Enclave),
		contexts: make(map[ID]*NPUContext),
	}
	for i := 0; i < npus; i++ {
		m.npusFree = append(m.npusFree, i)
	}
	return m
}

// EEPCM exposes the inverse map (tests inject attacks through it).
func (m *Manager) EEPCM() *EEPCM { return m.eepcm }

// CreateEnclave builds an enclave with a fresh measurement.
func (m *Manager) CreateEnclave(id ID) (*Enclave, error) {
	if id == 0 {
		return nil, fmt.Errorf("enclave: id 0 is reserved")
	}
	if _, ok := m.enclaves[id]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDoubleCreate, id)
	}
	e := &Enclave{ID: id, pt: NewPageTable(), meas: NewMeasurement()}
	e.tlb = NewTLB(id, e.pt, m.eepcm)
	m.enclaves[id] = e
	return e, nil
}

// InstallDriver marks an enclave as the protected NPU driver after
// verifying its measurement against the expected driver binary.
func (m *Manager) InstallDriver(e *Enclave, expected [32]byte) error {
	if e.meas.Digest() != expected {
		return fmt.Errorf("enclave: driver measurement mismatch")
	}
	m.driver = e
	return nil
}

// AddPage assigns a physical page to the enclave at the given virtual
// page: the EEPCM records ownership, the OS page table gets the forward
// mapping, and the content hash extends the measurement (load-time pages).
func (m *Manager) AddPage(e *Enclave, virtPage, physPage uint64, perm Perm, region Region, content []byte) error {
	if e.dead {
		return ErrTornDown
	}
	if err := m.eepcm.Assign(physPage, EEPCMEntry{
		Owner: e.ID, VirtPage: virtPage, Perm: perm, Region: region,
	}); err != nil {
		return err
	}
	e.pt.Map(virtPage, physPage)
	e.pages = append(e.pages, physPage)
	e.meas.ExtendPage(virtPage, perm, content)
	return nil
}

// RequestNPU is the OS-visible entry point: the request is forwarded to
// the driver enclave, which checks the requester's attestation quote and
// assigns a free NPU. The NPU context's IOMMU validates against the same
// EEPCM as CPU MMUs.
func (m *Manager) RequestNPU(e *Enclave, quote Quote, dev *Device, nelBase, nelPages uint64) (*NPUContext, error) {
	if m.driver == nil {
		return nil, ErrNoDriver
	}
	if e.dead {
		return nil, ErrTornDown
	}
	if !dev.VerifyQuote(quote) || quote.Measurement != e.meas.Digest() {
		return nil, ErrNotAttested
	}
	if len(m.npusFree) == 0 {
		return nil, ErrNPUsBusy
	}
	id := m.npusFree[0]
	m.npusFree = m.npusFree[1:]
	e.NELBase, e.NELPages = nelBase, nelPages
	ctx := &NPUContext{Owner: e.ID, NPU: id, IOMMU: NewTLB(e.ID, e.pt, m.eepcm)}
	m.contexts[e.ID] = ctx
	return ctx, nil
}

// AddNPUPage maps a tree-less-protected page into the NPU context's
// NELRANGE; pages outside the range are rejected (Sec. IV-B).
func (m *Manager) AddNPUPage(e *Enclave, virtPage, physPage uint64, perm Perm) error {
	if virtPage < e.NELBase || virtPage >= e.NELBase+e.NELPages {
		return fmt.Errorf("%w: virt page %#x not in [%#x,%#x)", ErrOutsideRange, virtPage, e.NELBase, e.NELBase+e.NELPages)
	}
	return m.AddPage(e, virtPage, physPage, perm, RegionTreeLess, nil)
}

// Destroy tears an enclave down: its NPU is released, every owned page is
// reclaimed, and cached translations are shot down everywhere so stale
// mappings cannot outlive ownership.
func (m *Manager) Destroy(e *Enclave) {
	if e.dead {
		return
	}
	e.dead = true
	if ctx, ok := m.contexts[e.ID]; ok {
		m.npusFree = append(m.npusFree, ctx.NPU)
		delete(m.contexts, e.ID)
		ctx.IOMMU.Flush()
	}
	for _, pp := range e.pages {
		if entry, ok := m.eepcm.Lookup(pp); ok {
			e.tlb.Shootdown(entry.VirtPage)
		}
		m.eepcm.Reclaim(pp)
	}
	e.tlb.Flush()
	delete(m.enclaves, e.ID)
}
