package enclave

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// Measurement is the SGX-style enclave build measurement: a running
// SHA-256 over every page added at load time (address, permission,
// content). The NPU instructions are part of the CPU enclave binary, so
// measuring the enclave covers the NPU program too (Sec. IV-E).
type Measurement struct {
	state [32]byte
}

// NewMeasurement starts an empty measurement.
func NewMeasurement() *Measurement { return &Measurement{} }

// ExtendPage folds one loaded page into the measurement.
func (m *Measurement) ExtendPage(virtPage uint64, perm Perm, content []byte) {
	h := sha256.New()
	h.Write(m.state[:])
	var meta [9]byte
	binary.LittleEndian.PutUint64(meta[:8], virtPage)
	meta[8] = byte(perm)
	h.Write(meta[:])
	h.Write(content)
	copy(m.state[:], h.Sum(nil))
}

// Digest returns the current measurement value.
func (m *Measurement) Digest() [32]byte { return m.state }

// Quote is a local attestation report: the enclave measurement bound to
// user data (e.g. a channel key), authenticated by the device key.
type Quote struct {
	Measurement [32]byte
	UserData    [32]byte
	mac         [32]byte
}

// Device models the processor's attestation identity: a device-unique key
// fused at manufacturing, never exported. Both CPU and NPU sit inside the
// same package, so one device quote covers the whole SoC (Sec. IV-E).
type Device struct {
	key []byte
}

// NewDevice creates a device with the given fused key.
func NewDevice(fusedKey []byte) *Device {
	k := make([]byte, len(fusedKey))
	copy(k, fusedKey)
	return &Device{key: k}
}

// Sign produces a quote for an enclave measurement.
func (d *Device) Sign(meas, userData [32]byte) Quote {
	q := Quote{Measurement: meas, UserData: userData}
	q.mac = d.mac(q)
	return q
}

// VerifyQuote checks a quote's authenticity.
func (d *Device) VerifyQuote(q Quote) bool {
	want := d.mac(q)
	return hmac.Equal(want[:], q.mac[:])
}

func (d *Device) mac(q Quote) [32]byte {
	h := hmac.New(sha256.New, d.key)
	h.Write(q.Measurement[:])
	h.Write(q.UserData[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
