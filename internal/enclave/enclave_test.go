package enclave

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEEPCMAssignLookupReclaim(t *testing.T) {
	m := NewEEPCM()
	if err := m.Assign(5, EEPCMEntry{Owner: 1, VirtPage: 9, Perm: PermRead}); err != nil {
		t.Fatal(err)
	}
	e, ok := m.Lookup(5)
	if !ok || e.Owner != 1 || e.VirtPage != 9 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	if err := m.Assign(5, EEPCMEntry{Owner: 2}); !errors.Is(err, ErrPageInUse) {
		t.Fatalf("double assign: %v", err)
	}
	m.Reclaim(5)
	if _, ok := m.Lookup(5); ok {
		t.Fatal("entry survived reclaim")
	}
	if err := m.Assign(5, EEPCMEntry{Owner: 2, VirtPage: 9, Perm: PermRead}); err != nil {
		t.Fatalf("reassign after reclaim: %v", err)
	}
}

func TestEEPCMValidate(t *testing.T) {
	m := NewEEPCM()
	m.Assign(5, EEPCMEntry{Owner: 1, VirtPage: 9, Perm: PermRead | PermWrite})
	if err := m.Validate(1, 9, 5, PermRead); err != nil {
		t.Errorf("valid translation rejected: %v", err)
	}
	if err := m.Validate(2, 9, 5, PermRead); !errors.Is(err, ErrNotOwner) {
		t.Errorf("foreign owner accepted: %v", err)
	}
	if err := m.Validate(1, 8, 5, PermRead); !errors.Is(err, ErrBadMapping) {
		t.Errorf("wrong virt page accepted: %v", err)
	}
	if err := m.Validate(1, 9, 5, PermExec); !errors.Is(err, ErrNoPerm) {
		t.Errorf("missing perm accepted: %v", err)
	}
	if err := m.Validate(1, 9, 6, PermRead); !errors.Is(err, ErrNotOwner) {
		t.Errorf("unassigned page accepted: %v", err)
	}
}

func setupTLB(t *testing.T) (*TLB, *PageTable, *EEPCM) {
	t.Helper()
	eepcm := NewEEPCM()
	pt := NewPageTable()
	if err := eepcm.Assign(100, EEPCMEntry{Owner: 1, VirtPage: 10, Perm: PermRead | PermWrite}); err != nil {
		t.Fatal(err)
	}
	pt.Map(10, 100)
	return NewTLB(1, pt, eepcm), pt, eepcm
}

func TestTLBTranslate(t *testing.T) {
	tlb, _, _ := setupTLB(t)
	pa, err := tlb.Translate(10*PageBytes+123, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 100*PageBytes+123 {
		t.Fatalf("pa = %#x", pa)
	}
	// Second access hits.
	tlb.Translate(10*PageBytes, PermRead)
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBRejectsOSRemapAttack(t *testing.T) {
	// The OS remaps the victim's virtual page onto an attacker-owned
	// physical page: EEPCM validation must reject the fill.
	tlb, pt, eepcm := setupTLB(t)
	eepcm.Assign(200, EEPCMEntry{Owner: 2, VirtPage: 10, Perm: PermRead | PermWrite})
	pt.Map(10, 200) // malicious rewrite before first access
	if _, err := tlb.Translate(10*PageBytes, PermRead); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("remap attack not rejected: %v", err)
	}
	if tlb.Rejections != 1 {
		t.Fatalf("rejections = %d", tlb.Rejections)
	}
}

func TestTLBRejectsAliasAttack(t *testing.T) {
	// The OS maps a DIFFERENT virtual page onto the victim's physical
	// page (aliasing): the EEPCM's recorded virtual page disagrees.
	tlb, pt, _ := setupTLB(t)
	pt.Map(11, 100)
	if _, err := tlb.Translate(11*PageBytes, PermRead); !errors.Is(err, ErrBadMapping) {
		t.Fatalf("alias attack not rejected: %v", err)
	}
}

func TestTLBUnmapped(t *testing.T) {
	tlb, _, _ := setupTLB(t)
	if _, err := tlb.Translate(99*PageBytes, PermRead); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped va: %v", err)
	}
}

func TestTLBShootdown(t *testing.T) {
	tlb, pt, eepcm := setupTLB(t)
	tlb.Translate(10*PageBytes, PermRead) // cache it
	// Page reclaimed and reassigned to another enclave; without a
	// shootdown the stale entry would leak access.
	eepcm.Reclaim(100)
	eepcm.Assign(100, EEPCMEntry{Owner: 2, VirtPage: 10, Perm: PermRead})
	tlb.Shootdown(10)
	pt.Map(10, 100)
	if _, err := tlb.Translate(10*PageBytes, PermRead); err == nil {
		t.Fatal("stale access allowed after ownership change")
	}
}

func TestManagerLifecycle(t *testing.T) {
	mgr := NewManager(2)
	dev := NewDevice([]byte("fused-device-key"))

	// Driver enclave: measured and installed.
	drv, err := mgr.CreateEnclave(1)
	if err != nil {
		t.Fatal(err)
	}
	mgr.AddPage(drv, 1, 1000, PermRead|PermExec, RegionFullyProtected, []byte("driver code"))
	if err := mgr.InstallDriver(drv, drv.Measurement().Digest()); err != nil {
		t.Fatal(err)
	}

	// Application enclave with a valid quote gets an NPU context.
	app, err := mgr.CreateEnclave(2)
	if err != nil {
		t.Fatal(err)
	}
	mgr.AddPage(app, 1, 2000, PermRead|PermExec, RegionFullyProtected, []byte("app code"))
	quote := dev.Sign(app.Measurement().Digest(), [32]byte{1})
	ctx, err := mgr.RequestNPU(app, quote, dev, 0x100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Owner != app.ID {
		t.Fatal("context owner wrong")
	}

	// NPU pages inside NELRANGE map fine; outside rejected.
	if err := mgr.AddNPUPage(app, 0x100, 3000, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddNPUPage(app, 0x99, 3001, PermRead); !errors.Is(err, ErrOutsideRange) {
		t.Fatalf("out-of-NELRANGE accepted: %v", err)
	}

	// IOMMU translates the NPU page; a foreign enclave's MMU cannot.
	if _, err := ctx.IOMMU.Translate(0x100*PageBytes, PermWrite); err != nil {
		t.Fatalf("IOMMU rejected legal access: %v", err)
	}
	intruder, _ := mgr.CreateEnclave(3)
	intruder.PageTable().Map(0x100, 3000)
	if _, err := intruder.TLB().Translate(0x100*PageBytes, PermRead); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign enclave reached NPU page: %v", err)
	}

	// Teardown frees the NPU and the pages.
	mgr.Destroy(app)
	if err := mgr.AddNPUPage(app, 0x100, 4000, PermRead); !errors.Is(err, ErrTornDown) {
		t.Fatalf("dead enclave usable: %v", err)
	}
	app2, _ := mgr.CreateEnclave(4)
	mgr.AddPage(app2, 1, 2000, PermRead, RegionFullyProtected, nil) // page 2000 reclaimed
	q2 := dev.Sign(app2.Measurement().Digest(), [32]byte{})
	if _, err := mgr.RequestNPU(app2, q2, dev, 0, 16); err != nil {
		t.Fatalf("freed NPU not reusable: %v", err)
	}
}

func TestDriverGate(t *testing.T) {
	mgr := NewManager(1)
	dev := NewDevice([]byte("k"))
	app, _ := mgr.CreateEnclave(2)
	q := dev.Sign(app.Measurement().Digest(), [32]byte{})
	if _, err := mgr.RequestNPU(app, q, dev, 0, 1); !errors.Is(err, ErrNoDriver) {
		t.Fatalf("NPU granted without driver enclave: %v", err)
	}
}

func TestForgedQuoteRejected(t *testing.T) {
	mgr := NewManager(1)
	dev := NewDevice([]byte("real-key"))
	evil := NewDevice([]byte("evil-key"))
	drv, _ := mgr.CreateEnclave(1)
	mgr.InstallDriver(drv, drv.Measurement().Digest())
	app, _ := mgr.CreateEnclave(2)
	forged := evil.Sign(app.Measurement().Digest(), [32]byte{})
	if _, err := mgr.RequestNPU(app, forged, dev, 0, 1); !errors.Is(err, ErrNotAttested) {
		t.Fatalf("forged quote accepted: %v", err)
	}
	// Quote for a DIFFERENT (tampered) measurement also rejected.
	other := dev.Sign([32]byte{0xFF}, [32]byte{})
	if _, err := mgr.RequestNPU(app, other, dev, 0, 1); !errors.Is(err, ErrNotAttested) {
		t.Fatalf("mismatched measurement accepted: %v", err)
	}
}

func TestNPUExhaustion(t *testing.T) {
	mgr := NewManager(1)
	dev := NewDevice([]byte("k"))
	drv, _ := mgr.CreateEnclave(1)
	mgr.InstallDriver(drv, drv.Measurement().Digest())
	a, _ := mgr.CreateEnclave(2)
	b, _ := mgr.CreateEnclave(3)
	qa := dev.Sign(a.Measurement().Digest(), [32]byte{})
	qb := dev.Sign(b.Measurement().Digest(), [32]byte{})
	if _, err := mgr.RequestNPU(a, qa, dev, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.RequestNPU(b, qb, dev, 0, 1); !errors.Is(err, ErrNPUsBusy) {
		t.Fatalf("second NPU granted from pool of 1: %v", err)
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	base := NewMeasurement()
	base.ExtendPage(1, PermRead, []byte("code"))
	d1 := base.Digest()

	m2 := NewMeasurement()
	m2.ExtendPage(1, PermRead, []byte("codf")) // content changed
	if m2.Digest() == d1 {
		t.Error("content change not reflected")
	}
	m3 := NewMeasurement()
	m3.ExtendPage(2, PermRead, []byte("code")) // address changed
	if m3.Digest() == d1 {
		t.Error("address change not reflected")
	}
	m4 := NewMeasurement()
	m4.ExtendPage(1, PermWrite, []byte("code")) // perm changed
	if m4.Digest() == d1 {
		t.Error("permission change not reflected")
	}
}

func TestQuoteRoundTrip(t *testing.T) {
	dev := NewDevice([]byte("fused"))
	q := dev.Sign([32]byte{1, 2, 3}, [32]byte{9})
	if !dev.VerifyQuote(q) {
		t.Fatal("genuine quote rejected")
	}
	q.UserData[0] ^= 1
	if dev.VerifyQuote(q) {
		t.Fatal("tampered quote accepted")
	}
}

func TestCreateEnclaveErrors(t *testing.T) {
	mgr := NewManager(0)
	if _, err := mgr.CreateEnclave(0); err == nil {
		t.Error("id 0 accepted")
	}
	mgr.CreateEnclave(7)
	if _, err := mgr.CreateEnclave(7); !errors.Is(err, ErrDoubleCreate) {
		t.Error("duplicate id accepted")
	}
}

// Property: a translation only succeeds when owner, virtual page, and
// permissions all line up with the EEPCM.
func TestValidateProperty(t *testing.T) {
	f := func(owner uint8, vp, pp uint16, perm, need uint8) bool {
		m := NewEEPCM()
		realOwner := ID(owner%3 + 1)
		m.Assign(uint64(pp), EEPCMEntry{
			Owner: realOwner, VirtPage: uint64(vp), Perm: Perm(perm & 7),
		})
		tryOwner := ID(owner%3 + 1)
		if owner%2 == 0 {
			tryOwner++
		}
		err := m.Validate(tryOwner, uint64(vp), uint64(pp), Perm(need&7))
		want := tryOwner == realOwner && Perm(perm&7)&Perm(need&7) == Perm(need&7)
		return (err == nil) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
