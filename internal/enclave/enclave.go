// Package enclave implements TNPU's access-control layer (Sec. IV-A/B):
// the Extended EPCM (EEPCM) — a flat inverse page map covering the entire
// physical memory, held in the fully protected region — plus OS-controlled
// page tables, MMU/IOMMU models that validate every TLB fill against the
// EEPCM, NPU contexts with their NELRANGE, the protected NPU driver
// enclave, and SGX-style measurement/attestation (Sec. IV-E).
//
// The security invariant is the SGX one: the TLB/IOTLB only ever holds
// translations the EEPCM has validated, so a malicious OS rewriting page
// tables cannot map one enclave's pages into another context.
package enclave

import (
	"errors"
	"fmt"
)

// PageBytes is the page granularity of the EEPCM.
const PageBytes = 4096

// ID identifies an enclave (0 is reserved for "no owner").
type ID uint32

// Perm is a page-permission bitmask.
type Perm uint8

// Page permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Region classifies which protection scheme covers a physical page
// (Fig. 10).
type Region uint8

const (
	// RegionUnprotected pages get no integrity protection (non-enclave
	// memory; still encrypted by TME-style full-memory encryption).
	RegionUnprotected Region = iota
	// RegionFullyProtected pages live in the 128MB tree-protected region
	// (EPC, security metadata, version tables).
	RegionFullyProtected
	// RegionTreeLess pages are NPU-context memory under versioned MACs.
	RegionTreeLess
)

// Errors returned by validation.
var (
	ErrNotOwner     = errors.New("enclave: page not owned by requesting context")
	ErrBadMapping   = errors.New("enclave: page-table mapping disagrees with EEPCM")
	ErrNoPerm       = errors.New("enclave: permission denied")
	ErrUnmapped     = errors.New("enclave: no translation for virtual page")
	ErrPageInUse    = errors.New("enclave: physical page already assigned")
	ErrOutsideRange = errors.New("enclave: virtual address outside NELRANGE")
)

// EEPCMEntry is the per-physical-page security metadata (Sec. IV-B: owner
// enclave ID, virtual page number, permission, protection status).
type EEPCMEntry struct {
	Valid    bool
	Owner    ID
	VirtPage uint64
	Perm     Perm
	Region   Region
}

// EEPCM is the flat inverse map indexed by physical page number. It lives
// in the fully protected region, so neither the OS nor a physical attacker
// can alter it undetected.
type EEPCM struct {
	entries map[uint64]EEPCMEntry
}

// NewEEPCM creates an empty map.
func NewEEPCM() *EEPCM { return &EEPCM{entries: make(map[uint64]EEPCMEntry)} }

// Assign records ownership of a physical page. Assigning an owned page
// fails: pages must be reclaimed first.
func (m *EEPCM) Assign(physPage uint64, e EEPCMEntry) error {
	if old, ok := m.entries[physPage]; ok && old.Valid {
		return fmt.Errorf("%w: phys page %#x owned by enclave %d", ErrPageInUse, physPage, old.Owner)
	}
	e.Valid = true
	m.entries[physPage] = e
	return nil
}

// Reclaim invalidates a physical page's entry (enclave teardown).
func (m *EEPCM) Reclaim(physPage uint64) {
	delete(m.entries, physPage)
}

// Lookup returns the entry for a physical page.
func (m *EEPCM) Lookup(physPage uint64) (EEPCMEntry, bool) {
	e, ok := m.entries[physPage]
	return e, ok && e.Valid
}

// Validate checks a proposed translation (virtPage→physPage by owner with
// the needed permission) against the inverse map — the Fig. 11 step.
func (m *EEPCM) Validate(owner ID, virtPage, physPage uint64, need Perm) error {
	e, ok := m.Lookup(physPage)
	if !ok || e.Owner != owner {
		return fmt.Errorf("%w: phys page %#x", ErrNotOwner, physPage)
	}
	if e.VirtPage != virtPage {
		return fmt.Errorf("%w: phys %#x maps virt %#x, OS claims %#x", ErrBadMapping, physPage, e.VirtPage, virtPage)
	}
	if e.Perm&need != need {
		return fmt.Errorf("%w: page %#x lacks %b", ErrNoPerm, physPage, need)
	}
	return nil
}

// PageTable is the OS-maintained forward map. The OS may rewrite it at any
// time — it is untrusted input to the MMU/IOMMU.
type PageTable struct {
	m map[uint64]uint64 // virtPage -> physPage
}

// NewPageTable creates an empty table.
func NewPageTable() *PageTable { return &PageTable{m: make(map[uint64]uint64)} }

// Map installs (or maliciously rewrites) a translation.
func (p *PageTable) Map(virtPage, physPage uint64) { p.m[virtPage] = physPage }

// Unmap removes a translation.
func (p *PageTable) Unmap(virtPage uint64) { delete(p.m, virtPage) }

// Walk resolves a virtual page, as the hardware page walker would.
func (p *PageTable) Walk(virtPage uint64) (uint64, bool) {
	pa, ok := p.m[virtPage]
	return pa, ok
}

// TLB caches validated translations for one context (an MMU for a CPU
// enclave, an IOMMU for an NPU context — Fig. 11). Every miss re-validates
// against the EEPCM; hits are trusted because invalidations shoot entries
// down.
type TLB struct {
	owner ID
	pt    *PageTable
	eepcm *EEPCM
	e     map[uint64]uint64 // virtPage -> physPage

	Hits, Misses, Rejections uint64
}

// NewTLB builds a TLB for a context owned by owner over the OS page table.
func NewTLB(owner ID, pt *PageTable, eepcm *EEPCM) *TLB {
	return &TLB{owner: owner, pt: pt, eepcm: eepcm, e: make(map[uint64]uint64)}
}

// Translate resolves a virtual address with the given permission need.
func (t *TLB) Translate(va uint64, need Perm) (pa uint64, err error) {
	vp, off := va/PageBytes, va%PageBytes
	if pp, ok := t.e[vp]; ok {
		t.Hits++
		return pp*PageBytes + off, nil
	}
	t.Misses++
	pp, ok := t.pt.Walk(vp)
	if !ok {
		return 0, fmt.Errorf("%w: va %#x", ErrUnmapped, va)
	}
	if err := t.eepcm.Validate(t.owner, vp, pp, need); err != nil {
		t.Rejections++
		return 0, err
	}
	t.e[vp] = pp
	return pp*PageBytes + off, nil
}

// Shootdown removes a cached translation (issued when the EEPCM entry is
// reclaimed, preserving the invariant that the TLB holds only validated
// mappings).
func (t *TLB) Shootdown(virtPage uint64) { delete(t.e, virtPage) }

// Flush clears every entry.
func (t *TLB) Flush() { t.e = make(map[uint64]uint64) }
