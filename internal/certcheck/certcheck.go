// Package certcheck is the runtime half of the canoncover contract: it
// loads the certification artifact that `tnpu-vet -certify` writes
// (testdata/canoncover.json at the repository root) and cross-checks it
// against the live types via reflection. The static analyzer proves the
// Append*/Restore* methods and digest functions cover the certified
// field sets; these helpers prove the certified sets still describe the
// compiled structs. Together they close the loop: adding a field
// without re-running certification (scripts/lint.sh regenerates and
// diffs the artifact) fails the package's cross-check test, and
// re-running certification on an uncovered field fails tnpu-vet.
package certcheck

import (
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"
)

// Entry mirrors one canoncover.CertFact in the artifact.
type Entry struct {
	Type    string   `json:"type"`
	Covered []string `json:"covered"`
	Waived  []string `json:"waived"`
}

// Load reads a certification artifact and indexes it by qualified type
// name (e.g. "tnpu/internal/memprot.baseline").
func Load(t *testing.T, path string) map[string]Entry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read certification artifact: %v (regenerate with scripts/lint.sh or `go run ./cmd/tnpu-vet -certify testdata/canoncover.json ./...`)", err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	certs := make(map[string]Entry, len(entries))
	for _, e := range entries {
		certs[e.Type] = e
	}
	return certs
}

// FieldsMatch asserts that the certified covered∪waived field names for
// typeName are exactly the struct fields of v's type. It backs the
// canonical-state pairs, whose certificates list direct fields.
func FieldsMatch(t *testing.T, certs map[string]Entry, typeName string, v any) {
	t.Helper()
	rt := reflect.TypeOf(v)
	var live []string
	for i := 0; i < rt.NumField(); i++ {
		live = append(live, rt.Field(i).Name)
	}
	compare(t, certs, typeName, rt, live)
}

// LeafPathsMatch asserts that the certified covered∪waived entries for
// typeName are exactly the dot-joined scalar leaf paths of v's type,
// with waived paths pruning their subtree. It backs the digest
// certificates, which list leaves (e.g. "Mem.FreqHz").
func LeafPathsMatch(t *testing.T, certs map[string]Entry, typeName string, v any) {
	t.Helper()
	rt := reflect.TypeOf(v)
	waived := make(map[string]bool)
	if cert, ok := certs[typeName]; ok {
		for _, w := range cert.Waived {
			waived[w] = true
		}
	}
	var live []string
	var walk func(rt reflect.Type, prefix string)
	walk = func(rt reflect.Type, prefix string) {
		if waived[prefix] || rt.Kind() != reflect.Struct {
			live = append(live, prefix)
			return
		}
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			path := f.Name
			if prefix != "" {
				path = prefix + "." + f.Name
			}
			walk(f.Type, path)
		}
	}
	walk(rt, "")
	compare(t, certs, typeName, rt, live)
}

// compare diffs the live field/path set against the certificate in both
// directions so the failure names the exact drift.
func compare(t *testing.T, certs map[string]Entry, typeName string, rt reflect.Type, live []string) {
	t.Helper()
	cert, ok := certs[typeName]
	if !ok {
		t.Fatalf("no certificate for %s: re-run `go run ./cmd/tnpu-vet -certify testdata/canoncover.json ./...` and commit the artifact", typeName)
	}
	certified := make(map[string]bool, len(cert.Covered)+len(cert.Waived))
	for _, f := range cert.Covered {
		certified[f] = true
	}
	for _, f := range cert.Waived {
		certified[f] = true
	}
	sort.Strings(live)
	for _, f := range live {
		if !certified[f] {
			t.Errorf("%s (%s) has field %q with no certificate entry: the committed testdata/canoncover.json is stale — regenerate it, and cover or //tnpu:canonskip the field", rt, typeName, f)
		}
		delete(certified, f)
	}
	for f := range certified { //tnpu:orderfree (each leftover reported independently)
		t.Errorf("certificate for %s names field %q which %s no longer has: regenerate testdata/canoncover.json", typeName, f, rt)
	}
}
