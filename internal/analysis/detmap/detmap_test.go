package detmap_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata", detmap.Analyzer, "detmap")
}
