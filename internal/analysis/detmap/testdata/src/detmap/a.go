// Fixtures for the detmap analyzer: map ranges whose iteration order can
// leak into output, next to every accepted order-free form.
package fixtures

import "fmt"

// positive: the loop body prints in iteration order.
func positive(m map[string]int) {
	for k, v := range m { // want "randomized iteration order"
		fmt.Println(k, v)
	}
}

// negative: the sorted-key extraction idiom.
func sortedExtraction(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// negative: commutative numeric accumulation.
func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// positive: string += concatenates in iteration order.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want "randomized iteration order"
		s += k
	}
	return s
}

// negative: writes keyed by the iteration key land in fixed slots.
func keyWrite(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// negative: existence probe with literal-only returns.
func probe(m map[string]bool, want string) bool {
	for k := range m {
		if k == want {
			return true
		}
	}
	return false
}

// negative: removal keyed by the iteration key commutes.
func clear2(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// negative: binding neither key nor value makes every iteration identical.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// waiver: the caller sorts the emitted lines before use.
func waived(m map[string]int) {
	for k, v := range m { //tnpu:orderfree
		fmt.Println(k, v)
	}
}
