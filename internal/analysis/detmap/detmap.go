// Package detmap enforces the determinism contract behind the repo's
// byte-identical outputs (DESIGN.md §7c): Go map iteration order is
// randomized per run, so a `range` over a map anywhere in the tree —
// figure generators, golden-output tables, the RunLog, even subtest
// spawning — is a latent nondeterminism bug unless the body provably
// cannot observe the order.
//
// A map range is accepted when every statement in its body is
// order-insensitive:
//
//   - commutative numeric accumulation (x++, x--, x += e, x -= e, and
//     the bitwise |=, &=, ^= forms; string += is order-dependent and
//     stays flagged),
//   - writes keyed by the iteration key itself (m2[k] = v, delete(m, k),
//     s[k] accumulation forms),
//   - the sorted-key extraction idiom: a lone `keys = append(keys, k)`
//     whose only appended value is the key (the caller then sorts),
//   - existence probes: `if cond { return <literals> }` / break /
//     continue, which yield the same result no matter which iteration
//     fires first,
//   - ranges binding neither key nor value (every iteration is
//     identical, so ordering cannot leak).
//
// Anything else needs the explicit //tnpu:orderfree waiver on the range
// line (or the line above), asserting that downstream consumers sort or
// otherwise erase the order.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"tnpu/internal/analysis"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flag range-over-map loops whose iteration order can leak into output",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				return true // order cannot be observed
			}
			if pass.WaivedAt(rs.Pos(), "orderfree") {
				return true
			}
			if orderFreeBody(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s has randomized iteration order that can reach output; extract and sort the keys, or annotate //tnpu:orderfree if consumers erase the order", types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// orderFreeBody reports whether every statement of the range body is one
// of the order-insensitive forms.
func orderFreeBody(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	for _, stmt := range rs.Body.List {
		if !orderFreeStmt(pass, stmt, key) {
			return false
		}
	}
	return true
}

func orderFreeStmt(pass *analysis.Pass, stmt ast.Stmt, key *ast.Ident) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return orderFreeAssign(pass, s, key)
	case *ast.ExprStmt:
		// delete(m, k) — removal keyed by the iteration key commutes.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
				return isIdent(call.Args[1], key)
			}
		}
		return false
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE
	case *ast.IfStmt:
		// Existence probe: all branches order-insensitive, with returns
		// restricted to literal results (same value whichever iteration
		// matches first).
		if s.Init != nil {
			return false
		}
		if !orderFreeProbeBody(pass, s.Body.List, key) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderFreeProbeBody(pass, e.List, key)
		case *ast.IfStmt:
			return orderFreeStmt(pass, e, key)
		default:
			return false
		}
	default:
		return false
	}
}

// orderFreeProbeBody accepts statement lists inside an if: the usual
// order-free forms plus constant-result returns.
func orderFreeProbeBody(pass *analysis.Pass, stmts []ast.Stmt, key *ast.Ident) bool {
	for _, stmt := range stmts {
		if ret, ok := stmt.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if !isLiteral(res) {
					return false
				}
			}
			continue
		}
		if !orderFreeStmt(pass, stmt, key) {
			return false
		}
	}
	return true
}

// orderFreeAssign accepts the commutative and key-addressed assignment
// forms.
func orderFreeAssign(pass *analysis.Pass, s *ast.AssignStmt, key *ast.Ident) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Numeric accumulation commutes; string += concatenates in
		// iteration order and stays flagged.
		for _, lhs := range s.Lhs {
			if !numericNonString(pass, lhs) {
				return false
			}
			if !keyAddressedOrPlain(lhs, key) {
				return false
			}
		}
		return true
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range s.Lhs {
			if !keyAddressedOrPlain(lhs, key) {
				return false
			}
		}
		return true
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs := s.Lhs[0]
		// m2[k] = v: each key writes its own slot exactly once.
		if idx, ok := lhs.(*ast.IndexExpr); ok && isIdent(idx.Index, key) {
			return true
		}
		// keys = append(keys, k): the sorted-extraction idiom; the
		// collected slice carries no order guarantee until sorted, and
		// collecting only the keys keeps the pattern recognizable.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) == 2 &&
				isIdent(call.Args[1], key) && sameExpr(lhs, call.Args[0]) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// keyAddressedOrPlain accepts a plain identifier/selector target or an
// index expression addressed by the iteration key.
func keyAddressedOrPlain(lhs ast.Expr, key *ast.Ident) bool {
	switch l := lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return isIdent(l.Index, key)
	default:
		return false
	}
}

func numericNonString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isIdent(e ast.Expr, id *ast.Ident) bool {
	if id == nil || id.Name == "_" {
		return false
	}
	got, ok := e.(*ast.Ident)
	return ok && got.Name == id.Name
}

// sameExpr reports whether two expressions are the same identifier or
// selector chain (enough for the append idiom).
func sameExpr(a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameExpr(av.X, bv.X)
	default:
		return false
	}
}

func isLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return v.Name == "true" || v.Name == "false" || v.Name == "nil"
	case *ast.UnaryExpr:
		return isLiteral(v.X)
	default:
		return false
	}
}
