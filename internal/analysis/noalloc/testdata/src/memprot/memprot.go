// Fixtures for the noalloc analyzer: the package base name matches the
// real hot-path package, so ReadRun/WriteRun methods must carry the
// //tnpu:noalloc annotation, and annotated bodies must not allocate.
package memprot

import "fmt"

type engine struct {
	buf   []byte
	lines map[uint64]*[64]uint8
}

// positive: a hot-path entry point missing the annotation.
func (e *engine) ReadRun(n int) int { // want "must be annotated"
	return n
}

// WriteRun is annotated, so its body is checked. //tnpu:noalloc
func (e *engine) WriteRun(n int) int {
	e.buf = append(e.buf, byte(n)) // want "append"
	s := fmt.Sprintf("%d", n)      // want "fmt.Sprintf"
	go e.drain()                   // want "go statement"
	f := func() int { return n }   // want "function literal"
	line := e.lines[0]
	if line == nil {
		line = new([64]uint8) //tnpu:allocok (first touch; steady state reuses it)
		e.lines[0] = line
	}
	line[0]++
	return n + len(s) + f()
}

// drain is unannotated, so its allocations are its own business.
func (e *engine) drain() {
	e.buf = append(e.buf, 0)
}

// hot is annotated and clean: indexing, arithmetic, and calls through
// concrete types do not allocate. //tnpu:noalloc
func (e *engine) hot(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += int(e.buf[i%len(e.buf)])
	}
	return total
}

// sink has an interface parameter; concrete non-pointer arguments box.
func sink(v interface{}) { _ = v }

// boxes is annotated and passes an int to an interface parameter.
// //tnpu:noalloc
func (e *engine) boxes(n int) {
	sink(n) // want "interface boxing"
	sink(e) // pointer-shaped: fits the interface word, no boxing
}
