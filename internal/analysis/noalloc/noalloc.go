// Package noalloc guards the zero-allocation contract of the batched
// simulation hot path (DESIGN.md §7c). TestBatchedRunNoAllocs pins
// 0 allocs/op on steady-state ReadRun/WriteRun at runtime; this analyzer
// moves the first line of defense to compile time:
//
//   - Every ReadRun/WriteRun method in the memprot package (the
//     RunEngine fast-path entry points the test pins) must carry the
//     //tnpu:noalloc annotation in its doc comment.
//   - Inside any function annotated //tnpu:noalloc, the obvious
//     allocation constructs are flagged: append, make, new, taking the
//     address of a composite literal, slice/map/pointer-kinded composite
//     literals, string concatenation and []byte/string conversions,
//     fmt.* calls, function literals (closure environments), go
//     statements, and implicit interface boxing at call arguments.
//
// The check is intra-procedural by design: annotate each function on the
// hot path rather than relying on transitive analysis. A construct that
// provably does not allocate in steady state (append into a presized
// buffer, a first-touch lazily allocated line) carries the
// //tnpu:allocok waiver with a justification comment.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"tnpu/internal/analysis"
)

// Marker is the annotation that opts a function into the check.
const Marker = "noalloc"

// RequiredMethods maps package base name to method names that MUST carry
// the annotation: the batched RunEngine entry points whose allocation
// behavior TestBatchedRunNoAllocs pins.
var RequiredMethods = map[string]map[string]bool{
	"memprot": {"ReadRun": true, "WriteRun": true},
}

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation constructs inside //tnpu:noalloc functions and require the annotation on the batched hot path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	required := RequiredMethods[analysis.PkgBase(pass.Pkg.Path())]
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			annotated := analysis.DocHasMarker(fd.Doc, Marker)
			if !annotated && required != nil && fd.Recv != nil && required[fd.Name.Name] {
				pass.Reportf(fd.Pos(), "%s is a batched hot-path entry point (pinned by TestBatchedRunNoAllocs) and must be annotated //tnpu:%s", fd.Name.Name, Marker)
				continue
			}
			if annotated && fd.Body != nil {
				checkBody(pass, fd)
			}
		}
	}
	return nil
}

// checkBody walks one annotated function and flags allocation
// constructs.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, what string) {
		if pass.WaivedAt(pos, "allocok") {
			return
		}
		pass.Reportf(pos, "%s inside //tnpu:%s function %s; remove it or annotate //tnpu:allocok with a justification", what, Marker, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), "function literal (closure environment may allocate)")
			return false // inner body judged with the closure
		case *ast.GoStmt:
			report(e.Pos(), "go statement (new goroutine allocates)")
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					report(e.Pos(), "address of composite literal")
				}
			}
		case *ast.CompositeLit:
			if allocatingLiteral(pass, e) {
				report(e.Pos(), "slice or map composite literal")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(pass, e.X) {
				report(e.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			checkCall(pass, e, report)
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, allocating
// conversions, and implicit interface boxing of arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "append":
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				report(call.Pos(), "append (grows the backing array unless capacity is proven)")
				return
			}
		case "make", "new":
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				report(call.Pos(), fun.Name)
				return
			}
		}
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "fmt."+fun.Sel.Name+" call")
				return
			}
		}
	}
	// Conversions: string(b)/[]byte(s)/[]rune(s) copy their operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := pass.TypesInfo.Types[call.Args[0]].Type
		if src != nil {
			switch d := dst.(type) {
			case *types.Basic:
				if d.Info()&types.IsString != 0 && !isStringType(src) {
					report(call.Pos(), "conversion to string")
				}
			case *types.Slice:
				if isStringType(src) {
					report(call.Pos(), "conversion from string to slice")
				}
			case *types.Interface:
				if _, ok := src.Underlying().(*types.Interface); !ok && !pointerShaped(src) {
					report(call.Pos(), "conversion to interface (boxes the value)")
				}
			}
		}
		return
	}
	// Implicit boxing: a concrete argument passed for an interface
	// parameter allocates unless the value is pointer-shaped and escapes
	// analysis-friendly; flag it and let the author waive proven cases.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		report(arg.Pos(), "interface boxing of argument")
	}
}

// callSignature resolves the signature of a (non-conversion) call.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// allocatingLiteral reports whether a composite literal's own kind
// allocates (slices and maps; arrays and plain structs are stack
// values).
func allocatingLiteral(pass *analysis.Pass, e *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// pointerShaped reports whether a value of type t fits the interface
// data word directly (pointers, channels, maps, funcs, unsafe pointers):
// storing one in an interface copies the word without heap boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
