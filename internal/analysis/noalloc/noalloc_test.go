package noalloc_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "memprot")
}
