// Package dep provides callees for the cross-package purity fixtures:
// Now exports a purity fact, Bump does not.
package dep

// Now returns a constant clock reading.
//
//tnpu:pure
func Now() uint64 { return 42 }

// Bump mutates through its parameter and carries no marker.
func Bump(p *uint64) { *p++ }
