// Package memprot mirrors the contract package's base name: RunBounder
// closed forms here must carry the //tnpu:pure marker.
package memprot

type engine struct{ n uint64 }

// RunBoundBase lacks the mandatory marker.
func (e *engine) RunBoundBase() uint64 { return e.n } // want "must carry //tnpu:pure"

// RunBoundIncr carries it and verifies.
//
//tnpu:pure
func (e *engine) RunBoundIncr(addr uint64, n int, write bool) (uint64, bool) {
	return e.n + uint64(n), true
}

// RunBurstSafe carries it and verifies.
//
//tnpu:pure
func (e *engine) RunBurstSafe(addr uint64, n int, write bool) bool { return e.n == 0 }
