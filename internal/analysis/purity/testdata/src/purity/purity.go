// Package purity exercises the //tnpu:pure proof: receiver reads are
// fine, receiver and package-state writes are witnesses, impurity
// propagates through same-package calls, scratch fields and pureok
// sites are exempt, and cross-package calls resolve through facts.
package purity

import "testdata/dep"

type engine struct {
	n   uint64
	buf []uint64 //tnpu:scratch reused probe buffer, contents dead between calls
}

// Add is pure arithmetic over the receiver.
//
//tnpu:pure
func (e *engine) Add(x uint64) uint64 { return e.n + x }

// Stamp stores through the receiver.
//
//tnpu:pure
func (e *engine) Stamp(x uint64) uint64 {
	e.n = x // want "annotated //tnpu:pure but stores through e.n"
	return e.n
}

// bump is impure; Tick inherits the verdict interprocedurally.
func (e *engine) bump() { e.n++ }

// Tick calls an impure same-package helper.
//
//tnpu:pure
func (e *engine) Tick() uint64 {
	e.bump() // want "calls engine.bump, which is impure"
	return e.n
}

// Probe fills the declared-scratch buffer; no witness.
//
//tnpu:pure
func (e *engine) Probe(x uint64) uint64 {
	e.buf = append(e.buf[:0], x)
	return e.buf[0]
}

var clock uint64

// Reset documents a deliberate exception at the witness site.
//
//tnpu:pure
func Reset() uint64 {
	clock = 0 //tnpu:pureok fixture-only reset, documented exception
	return clock
}

// FromDep is pure through dep.Now's exported fact.
//
//tnpu:pure
func FromDep() uint64 { return dep.Now() }

// ViaDep calls a dependency function with no purity fact.
//
//tnpu:pure
func ViaDep(p *uint64) {
	dep.Bump(p) // want "calls Bump, whose purity is unknown"
}

// helper is verified pure by the fixpoint without a marker, so callers
// may rely on it.
func helper(x uint64) uint64 { return x * 3 }

// Chained calls an unmarked but provably pure same-package helper.
//
//tnpu:pure
func Chained(x uint64) uint64 { return helper(x) }
