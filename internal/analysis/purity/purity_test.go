package purity_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/purity"
)

func TestPurity(t *testing.T) {
	analysistest.Run(t, "testdata", purity.Analyzer, "purity")
}

func TestRequiredMethods(t *testing.T) {
	analysistest.Run(t, "testdata", purity.Analyzer, "memprot")
}
