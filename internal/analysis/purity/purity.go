// Package purity defines an Analyzer that proves //tnpu:pure functions
// free of side effects, interprocedurally.
//
// The closed-form run bounds (memprot.RunBounder: RunBoundBase,
// RunBoundIncr, RunBurstSafe) and the streak-probe predicates (ctr*,
// chunkStretch, overflowPending) are consulted on the arbitration and
// batching hot paths under the assumption that asking is free: a bound
// or probe that mutated engine state would make `plan then decide`
// diverge from `decide by simulating`, the exact bug class the
// differential fuzzers hunt. The contract is opt-in via a //tnpu:pure
// doc marker, mandatory for the RunBounder methods in memprot, and
// checked against the summary fixpoint of internal/analysis/summary:
// a pure function may mutate nothing reachable from its receiver,
// parameters, or package state, and may only call functions that are
// themselves provably pure (same-package by summary, cross-package by
// an exported //tnpu:pure fact, plus a tiny read-only stdlib whitelist).
//
// Escapes: //tnpu:pureok on the offending line waives one witness
// (documented false positives, e.g. mutation of a frame-owned buffer
// through an impure-looking callee); //tnpu:scratch on a receiver field
// declaration exempts writes through that field (declared scratch
// space). Verified pure functions are exported as facts so dependent
// packages can call them from their own pure code.
package purity

import (
	"go/ast"
	"go/token"
	"go/types"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/summary"
)

// Marker is the doc-comment opt-in annotation.
const Marker = "pure"

// WaiverMarker waives one impurity witness at its site.
const WaiverMarker = "pureok"

// ScratchMarker on a field declaration exempts writes through the field.
const ScratchMarker = "scratch"

// FactName keys the cross-package purity facts.
const FactName = "purity.pure"

// RequiredMethods lists methods that must carry the marker, by contract
// package base name: the RunBounder closed forms are load-bearing for
// multi-NPU horizon arbitration and may not silently lose the contract.
var RequiredMethods = map[string]map[string]bool{
	"memprot": {
		"RunBoundBase": true,
		"RunBoundIncr": true,
		"RunBurstSafe": true,
	},
}

// pureFact marks one function proven side-effect free.
type pureFact struct {
	Pure bool `json:"pure"`
}

var Analyzer = &analysis.Analyzer{
	Name:          "purity",
	Doc:           "check that //tnpu:pure functions (and the RunBounder closed forms) mutate nothing reachable from their receiver, parameters, or package state",
	Run:           run,
	UsesFacts:     true,
	DefaultWaiver: WaiverMarker,
}

func run(pass *analysis.Pass) error {
	scratch := collectScratchFields(pass)
	set := summary.Compute(pass, summary.Options{
		CalleePure: func(fn *types.Func) summary.Purity {
			pkg := fn.Pkg()
			if pkg == nil {
				return summary.Unknown
			}
			var f pureFact
			if pass.Facts.Import(pkg.Path(), summary.ObjName(fn), FactName, &f) && f.Pure {
				return summary.Pure
			}
			return summary.Unknown
		},
		WaiverOK: func(pos token.Pos) bool {
			return pass.WaivedAt(pos, WaiverMarker)
		},
		ScratchField: func(typeName, fieldName string) bool {
			return scratch[typeName][fieldName]
		},
	})

	required := RequiredMethods[analysis.PkgBase(pass.Pkg.Path())]
	for _, name := range set.Names() {
		info := set.Lookup(name)
		marked := analysis.DocHasMarker(info.Decl.Doc, Marker)
		if !marked && required != nil && info.RecvNamed != nil &&
			required[info.Obj.Name()] && !analysis.IsTestFile(pass.Fset, info.Decl.Pos()) {
			pass.Reportf(info.Decl.Pos(),
				"%s is a RunBounder closed form and must carry //tnpu:pure in its doc comment (horizon-arbitration contract, DESIGN.md §7c)",
				name)
			continue
		}
		if !marked {
			continue
		}
		if !info.Pure {
			pass.Reportf(info.ImpurePos,
				"%s is annotated //tnpu:pure but %s; remove the side effect or waive this line with //tnpu:pureok <reason>",
				name, info.ImpureWhat)
			continue
		}
		// Proven: export so dependents' pure code may call it.
		if err := pass.Facts.Export(pass.Pkg.Path(), name, FactName, pureFact{Pure: true}); err != nil {
			return err
		}
	}
	return nil
}

func collectScratchFields(pass *analysis.Pass) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !pass.WaivedAt(field.Pos(), ScratchMarker) {
						continue
					}
					m := out[ts.Name.Name]
					if m == nil {
						m = make(map[string]bool)
						out[ts.Name.Name] = m
					}
					for _, name := range field.Names {
						m[name.Name] = true
					}
				}
			}
		}
	}
	return out
}
