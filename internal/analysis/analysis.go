// Package analysis is a dependency-free re-implementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs. The
// module is deliberately stdlib-only (DESIGN.md §2), so the invariant
// checkers under internal/analysis/* and the cmd/tnpu-vet driver cannot
// import the x/tools framework; this package supplies the same shape —
// an Analyzer runs over one type-checked package and reports positioned
// Diagnostics — plus the repo-wide waiver-comment convention.
//
// Waivers: every analyzer that enforces a contract accepts an explicit,
// greppable escape hatch written as a //tnpu:<marker> comment on the
// flagged line or on the line directly above it. Deliberate exceptions
// are annotated at the violation site instead of weakening the analyzer
// (see DESIGN.md §7c for the catalogue of markers).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tnpu/internal/analysis/facts"
)

// Analyzer describes one invariant checker: a named pass over a single
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph contract statement shown by tnpu-vet help.
	Doc string

	// Run applies the analyzer to one package. Findings are delivered
	// through pass.Report; the error return is reserved for analyzer
	// malfunction (it aborts the whole run, it is not a finding).
	Run func(pass *Pass) error

	// UsesFacts marks analyzers that export or import cross-package
	// facts. The checker runs them over dependency packages too (with
	// reporting disabled) so facts flow bottom-up through the import
	// graph, and cmd/go's VetxOnly invocations run exactly this subset.
	UsesFacts bool

	// DefaultWaiver names the //tnpu:<marker> that waives this
	// analyzer's findings; it annotates diagnostics (e.g. in -json
	// output) that do not set an explicit Waiver of their own.
	DefaultWaiver string
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-package fact store for this run. Analyzers with
	// UsesFacts set may Export facts about objects of this package and
	// Import facts recorded for dependencies (already analyzed — the
	// checker visits packages in dependency order). Never nil.
	Facts *facts.Store

	// Report delivers one finding.
	Report func(Diagnostic)

	// comments indexes every comment line per file, built lazily by
	// WaivedAt so analyzers that never consult waivers pay nothing.
	comments map[string]map[int]string
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Waiver optionally names the //tnpu:<marker> that would suppress
	// this specific finding, when it differs from the analyzer's
	// DefaultWaiver.
	Waiver string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// WaivedAt reports whether a //tnpu:<marker> waiver comment covers pos:
// the marker appears in a comment on the same source line or on the line
// directly above. The marker is matched as a whole word so "orderfree"
// does not also waive "orderfreeze".
func (p *Pass) WaivedAt(pos token.Pos, marker string) bool {
	if p.comments == nil {
		p.comments = make(map[string]map[int]string)
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					cp := p.Fset.Position(c.Pos())
					byLine := p.comments[cp.Filename]
					if byLine == nil {
						byLine = make(map[int]string)
						p.comments[cp.Filename] = byLine
					}
					// A /* */ comment can span lines; index it at every
					// line it covers so a trailing waiver still lands.
					end := p.Fset.Position(c.End()).Line
					for line := cp.Line; line <= end; line++ {
						byLine[line] += " " + c.Text
					}
				}
			}
		}
	}
	want := "tnpu:" + marker
	at := p.Fset.Position(pos)
	byLine := p.comments[at.Filename]
	for _, line := range []int{at.Line, at.Line - 1} {
		if hasMarkerWord(byLine[line], want) {
			return true
		}
	}
	return false
}

// WaivedSameLine is WaivedAt restricted to a comment on pos's own source
// line. Per-field waivers in struct declarations use it to keep one
// field's trailing waiver from bleeding onto the field declared on the
// next line (whose "line above" it would otherwise be).
func (p *Pass) WaivedSameLine(pos token.Pos, marker string) bool {
	p.WaivedAt(pos, marker) // force the lazy comment index
	at := p.Fset.Position(pos)
	return hasMarkerWord(p.comments[at.Filename][at.Line], "tnpu:"+marker)
}

// hasMarkerWord reports whether text contains want as a whole marker
// token (terminated by a non-marker character or end of text).
func hasMarkerWord(text, want string) bool {
	for i := 0; ; {
		j := strings.Index(text[i:], want)
		if j < 0 {
			return false
		}
		end := i + j + len(want)
		if end == len(text) || !isMarkerChar(text[end]) {
			return true
		}
		i = end
	}
}

func isMarkerChar(b byte) bool {
	return b == '-' || b == '_' ||
		'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9'
}

// DocHasMarker reports whether a doc comment group contains the
// //tnpu:<marker> annotation.
func DocHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	want := "tnpu:" + marker
	for _, c := range doc.List {
		if hasMarkerWord(c.Text, want) {
			return true
		}
	}
	return false
}

// DocMarkerArg finds //tnpu:<marker> in a doc comment group and returns
// the rest of that line after the marker (trimmed) — the argument of
// parameterized markers (digestcover takes the target type name). ok
// reports whether the marker is present at all.
func DocMarkerArg(doc *ast.CommentGroup, marker string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	want := "tnpu:" + marker
	for _, c := range doc.List {
		text := c.Text
		for i := 0; ; {
			j := strings.Index(text[i:], want)
			if j < 0 {
				break
			}
			end := i + j + len(want)
			if end < len(text) && isMarkerChar(text[end]) {
				i = end
				continue
			}
			rest := text[end:]
			if k := strings.IndexByte(rest, '\n'); k >= 0 {
				rest = rest[:k]
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// IsTestFile reports whether pos lies in a _test.go file. Analyzers whose
// contract only concerns shipped simulator output (detmap, noalloc,
// cycleunits) skip test files; secerr and goroutinesafe check them too.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgBase returns the last element of a package path: analyzers match
// contract packages ("secmem", "memprot", "attack", …) by base name so
// the same registry covers both the real tree (tnpu/internal/secmem) and
// the analysistest fixtures (testdata/secmem).
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
