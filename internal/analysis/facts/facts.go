// Package facts is the cross-package side channel of the analysis
// framework: a store of named, JSON-serialized facts keyed by (package
// path, object, fact name). Analyzers that need to see across package
// boundaries — canoncover reading npu.Config's waiver markers from
// internal/exp, purity trusting dram.Bus.Now from internal/memprot —
// export facts while analyzing the declaring package and import them
// while analyzing dependents, the same composition model as
// golang.org/x/tools/go/analysis facts but without gob type registries:
// payloads are plain JSON decoded into caller-supplied values.
//
// In standalone mode one Store is threaded through the whole run in
// dependency order. In `go vet -vettool` mode the store round-trips
// through the .vetx files cmd/go passes between per-package tool
// invocations (vetConfig.PackageVetx in, VetxOutput out); each written
// file carries the full transitive store so indirect dependencies'
// facts survive the relay.
package facts

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Store holds serialized facts. The zero value is not usable; call New.
type Store struct {
	m map[key]json.RawMessage
}

type key struct {
	pkg  string // canonical import path of the declaring package
	obj  string // "Func", "Type" or "Type.Method"; "" for package-level facts
	fact string // fact name, conventionally "<analyzer>.<kind>"
}

// New returns an empty store.
func New() *Store {
	return &Store{m: make(map[key]json.RawMessage)}
}

// Export records a fact about obj in pkg, overwriting any previous value
// under the same (pkg, obj, fact) key.
func (s *Store) Export(pkg, obj, fact string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("facts: marshal %s %s.%s: %v", fact, pkg, obj, err)
	}
	s.m[key{pkg, obj, fact}] = data
	return nil
}

// Import decodes the fact recorded for (pkg, obj, fact) into v and
// reports whether one existed. A decode failure is treated as absence:
// facts are advisory, and a shape mismatch between analyzer versions
// must degrade to "unknown", not abort the run.
func (s *Store) Import(pkg, obj, fact string, v any) bool {
	data, ok := s.m[key{pkg, obj, fact}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// Has reports whether a fact exists without decoding it.
func (s *Store) Has(pkg, obj, fact string) bool {
	_, ok := s.m[key{pkg, obj, fact}]
	return ok
}

// Objects returns the objects in pkg carrying the named fact, sorted.
func (s *Store) Objects(pkg, fact string) []string {
	var out []string
	for k := range s.m { //tnpu:orderfree (sorted before return)
		if k.pkg == pkg && k.fact == fact {
			out = append(out, k.obj)
		}
	}
	sort.Strings(out)
	return out
}

// Packages returns every package path carrying the named fact, sorted.
func (s *Store) Packages(fact string) []string {
	seen := make(map[string]bool)
	for k := range s.m { //tnpu:orderfree (sorted before return)
		if k.fact == fact {
			seen[k.pkg] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// entry is the wire form of one fact in an encoded store.
type entry struct {
	Pkg  string          `json:"pkg"`
	Obj  string          `json:"obj,omitempty"`
	Fact string          `json:"fact"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes the whole store (sorted, so the output is
// deterministic and cacheable byte-for-byte by cmd/go).
func (s *Store) Encode() []byte {
	entries := make([]entry, 0, len(s.m))
	for k, v := range s.m { //tnpu:orderfree (sorted before marshal)
		entries = append(entries, entry{Pkg: k.pkg, Obj: k.obj, Fact: k.fact, Data: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Fact < b.Fact
	})
	data, err := json.Marshal(entries)
	if err != nil {
		// Entries hold pre-marshaled RawMessages; re-marshaling cannot
		// fail short of memory corruption.
		panic(fmt.Sprintf("facts: encode: %v", err))
	}
	return data
}

// Decode merges an Encode output into the store. Empty input (the vetx
// file of a facts-free package, or a file written by an older tool
// version) merges nothing and is not an error.
func (s *Store) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("facts: decode: %v", err)
	}
	for _, e := range entries {
		s.m[key{e.Pkg, e.Obj, e.Fact}] = e.Data
	}
	return nil
}

// Len returns the number of facts held.
func (s *Store) Len() int { return len(s.m) }
