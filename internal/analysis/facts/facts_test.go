package facts

import (
	"bytes"
	"testing"
)

type purityFact struct {
	Pure   bool   `json:"pure"`
	Reason string `json:"reason,omitempty"`
}

func TestExportImportRoundTrip(t *testing.T) {
	s := New()
	if err := s.Export("tnpu/internal/dram", "Bus.Now", "purity.pure", purityFact{Pure: true}); err != nil {
		t.Fatal(err)
	}
	var got purityFact
	if !s.Import("tnpu/internal/dram", "Bus.Now", "purity.pure", &got) {
		t.Fatal("fact not found after Export")
	}
	if !got.Pure {
		t.Fatalf("got %+v, want Pure=true", got)
	}
	if s.Import("tnpu/internal/dram", "Bus.Latency", "purity.pure", &got) {
		t.Fatal("Import returned true for an absent fact")
	}
	if !s.Has("tnpu/internal/dram", "Bus.Now", "purity.pure") {
		t.Fatal("Has returned false for a present fact")
	}
}

func TestObjectsAndPackagesSorted(t *testing.T) {
	s := New()
	for _, obj := range []string{"Zeta", "Alpha", "Mid"} {
		if err := s.Export("p", obj, "f", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Export("q", "Other", "f", 2); err != nil {
		t.Fatal(err)
	}
	got := s.Objects("p", "f")
	want := []string{"Alpha", "Mid", "Zeta"}
	if len(got) != len(want) {
		t.Fatalf("Objects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Objects = %v, want %v", got, want)
		}
	}
	pkgs := s.Packages("f")
	if len(pkgs) != 2 || pkgs[0] != "p" || pkgs[1] != "q" {
		t.Fatalf("Packages = %v, want [p q]", pkgs)
	}
}

func TestEncodeDecodeMerge(t *testing.T) {
	a := New()
	if err := a.Export("p", "T", "shape", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	b := New()
	if err := b.Export("q", "U.M", "pure", true); err != nil {
		t.Fatal(err)
	}
	if err := b.Decode(a.Encode()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("merged store has %d facts, want 2", b.Len())
	}
	var fields []string
	if !b.Import("p", "T", "shape", &fields) || len(fields) != 2 {
		t.Fatalf("merged fact missing or wrong: %v", fields)
	}
	// Decoding an empty payload (facts-free vetx file) is a no-op.
	if err := b.Decode(nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("empty decode changed store to %d facts", b.Len())
	}
}

func TestEncodeDeterministic(t *testing.T) {
	build := func() *Store {
		s := New()
		for _, k := range []string{"c", "a", "b"} {
			if err := s.Export("pkg"+k, "Obj"+k, "fact", k); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	if !bytes.Equal(build().Encode(), build().Encode()) {
		t.Fatal("Encode output is not deterministic across identical stores")
	}
}

func TestImportShapeMismatchDegradesToAbsent(t *testing.T) {
	s := New()
	if err := s.Export("p", "T", "f", "a string"); err != nil {
		t.Fatal(err)
	}
	var wrong struct{ N int }
	if s.Import("p", "T", "f", &wrong) {
		t.Fatal("Import succeeded decoding a string into a struct")
	}
}
