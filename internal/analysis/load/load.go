// Package load turns Go package patterns into parsed, type-checked
// packages using only the go toolchain and the standard library: a
// `go list -deps -export -json` invocation supplies the file sets and
// compiler export data, go/parser supplies syntax, and go/types with an
// importer.ForCompiler lookup over the export files supplies types. It
// is the engine behind both the standalone tnpu-vet driver and the
// analysistest harness (x/tools' go/packages is not available to this
// stdlib-only module).
//
// Standard-library dependencies contribute export data only. In-module
// dependencies are parsed and type-checked from source even when they
// are not roots, so fact-producing analyzers (canoncover, purity,
// boundsound) can walk their ASTs and export cross-package facts; such
// packages are returned with Root=false and contribute no diagnostics.
//
// One Load call serves every analyzer in a run: packages are listed,
// parsed, and type-checked exactly once, and a process-wide parse cache
// (keyed by path+mtime+size over a shared FileSet) additionally
// deduplicates the re-parse of non-test sources that `go list -test`
// triggers for each "pkg [pkg.test]" variant.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// ImportPath is the go list package ID; test variants carry the
	// " [pkg.test]" suffix go list gives them.
	ImportPath string
	Dir        string
	GoFiles    []string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// ForTest is the import path of the package under test when this is
	// a test variant ("a [a.test]" or "a_test [a.test]"), else "".
	ForTest string

	// Root reports whether the package matched the load patterns
	// directly. Non-root packages are in-module dependencies loaded from
	// source only so analyzers can compute facts over them; the checker
	// suppresses their diagnostics.
	Root bool
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

// Config parameterizes a Load call.
type Config struct {
	// Dir is the working directory for the go list invocation (the
	// module being analyzed). Empty means the current directory.
	Dir string
	// Tests includes _test.go files by listing test variants too.
	Tests bool
	// Env overrides the environment for go list (nil keeps os.Environ).
	Env []string
}

// Load lists, parses, and type-checks the packages matching patterns
// plus their in-module dependency closure. `go list -deps` emits
// dependencies before dependents, and Load preserves that order, so a
// caller that walks the slice front to back sees every package after
// all of its in-module imports — the property the facts store needs.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-deps", "-export", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = cfg.Env
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var listed []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Name == "" {
			continue
		}
		// Standard-library deps are consumed as export data; synthesized
		// test mains ("pkg.test") carry no contracts of ours.
		if p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		listed = append(listed, p)
	}

	var pkgs []*Package
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, which this loader does not support", p.ImportPath)
		}
		pkg, err := check(p, exports)
		if err != nil {
			return nil, err
		}
		pkg.Root = !p.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Every Load shares one FileSet so cached ASTs stay position-valid
// across calls; cache entries are invalidated by mtime+size so edited
// files re-parse. Parse errors are cached too (the file will not parse
// differently until it changes).
var (
	parseMu    sync.Mutex
	sharedFset = token.NewFileSet()
	parseCache = make(map[string]*parseEntry)
)

type parseEntry struct {
	mtime time.Time
	size  int64
	file  *ast.File
	err   error
}

func parseCached(path string) (*ast.File, error) {
	fi, statErr := os.Stat(path)
	parseMu.Lock()
	defer parseMu.Unlock()
	if e, ok := parseCache[path]; ok && statErr == nil &&
		e.mtime.Equal(fi.ModTime()) && e.size == fi.Size() {
		return e.file, e.err
	}
	file, err := parser.ParseFile(sharedFset, path, nil, parser.ParseComments)
	if statErr == nil {
		parseCache[path] = &parseEntry{mtime: fi.ModTime(), size: fi.Size(), file: file, err: err}
	}
	return file, err
}

// check parses and type-checks one listed package against the export
// data of its dependency closure.
func check(p *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, f := range p.GoFiles {
		path := f
		if !strings.HasPrefix(path, "/") && p.Dir != "" {
			path = p.Dir + "/" + f
		}
		parsed, err := parseCached(path)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, parsed)
		names = append(names, path)
	}
	pkg, info, err := Check(p.ImportPath, sharedFset, files, p.ImportMap, exports)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		GoFiles:    names,
		Fset:       sharedFset,
		Syntax:     files,
		Types:      pkg,
		TypesInfo:  info,
		ForTest:    p.ForTest,
	}, nil
}

// Check type-checks already-parsed files against dependency export data.
// importMap translates source import paths to canonical package IDs (go
// list's ImportMap / vet.cfg's ImportMap); exports maps canonical IDs to
// compiler export files. It is shared by Load and the vettool's
// unitchecker mode.
func Check(path string, fset *token.FileSet, files []*ast.File, importMap, exports map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(imp string) (io.ReadCloser, error) {
		if mapped, ok := importMap[imp]; ok && mapped != "" {
			imp = mapped
		}
		exp, ok := exports[imp]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", imp)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// The ID of a test variant ("a [a.test]") is not a valid types
	// package path; strip the suffix for type identity.
	typePath := path
	if i := strings.IndexByte(typePath, ' '); i >= 0 {
		typePath = typePath[:i]
	}
	pkg, err := conf.Check(typePath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return pkg, info, nil
}
