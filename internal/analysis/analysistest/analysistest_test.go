package analysistest

import (
	"go/ast"
	"strings"
	"testing"

	"tnpu/internal/analysis"
)

// boomAnalyzer flags every call to a function named boom — the smallest
// possible analyzer, used to test the harness rather than any contract.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boom",
	Doc:  "reports calls to functions named boom",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "call to boom is forbidden")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestSelfTestBrokenWants runs the harness over a fixture whose want
// comments are wrong in both directions and asserts the failure strings
// are the readable diff a fixture author needs: the unmet expectation
// with its quoted substring, and the unexpected diagnostic with its
// message, both prefixed file:line.
func TestSelfTestBrokenWants(t *testing.T) {
	failures, err := Check(t.TempDir(), "testdata/selftest", boomAnalyzer, "selftest")
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 2 {
		t.Fatalf("expected exactly 2 failures, got %d:\n%s",
			len(failures), strings.Join(failures, "\n"))
	}
	// Unmet wants are reported first, in position order.
	if !strings.Contains(failures[0], `expected diagnostic containing "never fires", got none`) ||
		!strings.HasPrefix(failures[0], "selftest/selftest.go:") {
		t.Errorf("unmet-want failure not readable: %q", failures[0])
	}
	if !strings.Contains(failures[1], "unexpected diagnostic: call to boom is forbidden") ||
		!strings.HasPrefix(failures[1], "selftest/selftest.go:") {
		t.Errorf("unexpected-diagnostic failure not readable: %q", failures[1])
	}
}

// TestSelfTestCleanFixture is the positive control: matching wants
// produce zero failures.
func TestSelfTestCleanFixture(t *testing.T) {
	failures, err := Check(t.TempDir(), "testdata/selftest", boomAnalyzer, "okpkg")
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("expected clean fixture, got:\n%s", strings.Join(failures, "\n"))
	}
}
