// Package selftest is a deliberately broken fixture: its want
// expectations disagree with the boom analyzer's diagnostics in both
// directions, so the framework's own failure rendering can be asserted.
package selftest

func boom() {}

func use() {
	boom() // fires a diagnostic with no want comment
	_ = 1  // want "never fires"
}
