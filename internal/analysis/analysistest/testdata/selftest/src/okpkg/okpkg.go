// Package okpkg is the matching positive control: one diagnostic, one
// want, zero failures.
package okpkg

func boom() {}

func use() {
	boom() // want "call to boom is forbidden"
}
