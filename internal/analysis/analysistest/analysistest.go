// Package analysistest is a stdlib-only re-implementation of
// golang.org/x/tools/go/analysis/analysistest, sized for this repo's
// analyzers: it materializes a testdata package tree as a throwaway
// module, loads it through internal/analysis/load (so fixtures
// type-check against real export data), runs one analyzer, and matches
// its diagnostics against `// want "substring"` expectations written on
// the offending lines.
//
// Expectation syntax (a deliberate subset of x/tools'):
//
//	x := onlyBad() // want "is discarded"
//
// Each `// want` comment holds one double-quoted substring that must
// occur in the message of a diagnostic reported on that line. Every
// diagnostic must be wanted and every want must fire, or the test
// fails. Lines without a want comment must stay clean — including
// waiver-carrying lines, which is how the waiver cases are expressed.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/checker"
)

// wantRE extracts the quoted expectation from a // want comment.
var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// Run materializes testdata (a directory containing src/<pkg>/...),
// loads the named package patterns, applies the analyzer, and checks
// diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	failures, err := Check(t.TempDir(), testdata, a, patterns...)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, f := range failures {
		t.Error(f)
	}
}

// Check is Run's engine, decoupled from *testing.T so the framework can
// test itself: it materializes the fixture tree into scratch (an empty
// directory the caller owns), runs the analyzer, and returns one
// human-readable failure string per mismatch between diagnostics and
// // want expectations — unmet wants first (in file/line order), then
// unexpected diagnostics. An empty slice means the fixture passed.
func Check(scratch, testdata string, a *analysis.Analyzer, patterns ...string) ([]string, error) {
	src := filepath.Join(testdata, "src")
	if err := copyTree(scratch, src); err != nil {
		return nil, fmt.Errorf("copy testdata: %v", err)
	}
	gomod := filepath.Join(scratch, "go.mod")
	if err := os.WriteFile(gomod, []byte("module testdata\n\ngo 1.22\n"), 0o666); err != nil {
		return nil, err
	}
	var qualified []string
	for _, p := range patterns {
		qualified = append(qualified, "testdata/"+p)
	}
	diags, err := checker.RunPatterns(scratch, []*analysis.Analyzer{a}, qualified...)
	if err != nil {
		return nil, err
	}

	// Only the requested packages' wants apply: testdata trees hold
	// several independent fixture suites, and a want in a package this
	// invocation does not analyze must not count as unmet.
	wants := make(map[posKey][]string)
	for _, p := range patterns {
		if err := collectWants(src, filepath.Join(src, p), wants); err != nil {
			return nil, err
		}
	}
	// Index diagnostics by file-relative position; testdata files were
	// copied, so strip the temp dir to compare against the source tree.
	var failures []string
	matched := make([]bool, len(diags))
	var keys []posKey
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for _, want := range wants[key] {
			found := false
			for i, d := range diags {
				if matched[i] {
					continue
				}
				rel, rErr := filepath.Rel(scratch, d.Position.Filename)
				if rErr != nil {
					continue
				}
				if (posKey{rel, d.Position.Line}) == key && strings.Contains(d.Message, want) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				failures = append(failures,
					fmt.Sprintf("%s:%d: expected diagnostic containing %q, got none", key.file, key.line, want))
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			rel, _ := filepath.Rel(scratch, d.Position.Filename)
			failures = append(failures,
				fmt.Sprintf("%s:%d: unexpected diagnostic: %s", rel, d.Position.Line, d.Message))
		}
	}
	return failures, nil
}

type posKey struct {
	file string // path relative to the temp module root
	line int
}

// collectWants scans one fixture package directory for // want comments,
// keyed by position relative to the testdata src root.
func collectWants(root, dir string, wants map[posKey][]string) error {
	return filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				unq := strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(m[1])
				key := posKey{rel, i + 1}
				wants[key] = append(wants[key], unq)
			}
		}
		return nil
	})
}

// copyTree copies the package tree under src into dst, flattening the
// leading "src/" so testdata/src/foo becomes <module>/foo.
func copyTree(dst, src string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
}

// must is a tiny helper for fixtures that need to ignore unrelated
// errors without tripping analyzers under test.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

var _ = must
var _ = fmt.Sprintf
