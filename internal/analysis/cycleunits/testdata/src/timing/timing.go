// Fixtures for the cycleunits analyzer: additive/comparison mixing of
// cycle and byte quantities, lossy float64 round-trips, and the rate
// conversions that stay legal.
package timing

// positive: comparing cycles against bytes.
func compare(readyCycles, blockBytes uint64) bool {
	return readyCycles > blockBytes // want "mixes"
}

// positive: adding cycles to bytes.
func add(readyCycles, blockBytes uint64) uint64 {
	return readyCycles + blockBytes // want "mixes"
}

// negative: multiplication is how rates convert between units.
func rate(blockBytes, cyclesPerByte uint64) uint64 {
	return blockBytes * cyclesPerByte
}

// negative: unitless operands never conflict.
func scale(latency uint64, n int) uint64 {
	return latency + uint64(n)
}

// negative: same unit on both sides.
func sum(busCycles, macCycles uint64) uint64 {
	return busCycles + macCycles
}

// positive: integer round-trip of float arithmetic over a cycle count.
func roundTrip(busCycles uint64, mult float64) uint64 {
	return uint64(float64(busCycles) * mult) // want "integer conversion of float"
}

// waiver: a deliberate float step in sweep configuration.
func waived(busCycles uint64, mult float64) uint64 {
	return uint64(float64(busCycles) * mult) //tnpu:unitok
}
