// Package cycleunits is a lightweight unit checker for the simulator's
// two load-bearing integer quantities: cycles and bytes (DESIGN.md §7c).
// Both flow through the timing model as raw uint64s, and the
// bandwidth/latency arithmetic in dram and npu mixes them only through
// explicit rate conversions — so an additive or comparison expression
// with a cycle quantity on one side and a byte quantity on the other is
// almost certainly a unit-confusion bug (the class behind PR 3's
// CyclesForBytes multi-channel fix).
//
// Units are inferred from names, the only signal a raw-uint64 codebase
// offers: an identifier, selector, or call whose camel-case name
// mentions bytes carries the byte unit; cycles or latency carries the
// cycle unit. Multiplication and division are exempt — they are how
// rates legitimately convert one unit into the other.
//
// The analyzer also flags lossy float64 round-trips: an integer
// conversion applied to floating-point arithmetic over a cycle or byte
// quantity silently reintroduces platform- and order-dependent rounding
// into exact integer accounting (determinism hazard). Rational integer
// arithmetic (num/den pairs, as dram.Bus does) is the fix; a deliberate
// float step carries the //tnpu:unitok waiver.
package cycleunits

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tnpu/internal/analysis"
)

// unit is the inferred dimension of an expression.
type unit int

const (
	unitNone unit = iota
	unitCycles
	unitBytes
)

func (u unit) String() string {
	switch u {
	case unitCycles:
		return "cycles"
	case unitBytes:
		return "bytes"
	}
	return "unitless"
}

// Analyzer is the cycleunits pass.
var Analyzer = &analysis.Analyzer{
	Name: "cycleunits",
	Doc:  "flag cycle/byte unit mixing and lossy float64 round-trips in timing accounting",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkMix(pass, e)
			case *ast.CallExpr:
				checkRoundTrip(pass, e)
			}
			return true
		})
	}
	return nil
}

// mixOps are the operators that require both operands in the same unit.
var mixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// checkMix flags additive/comparison expressions whose operands infer
// conflicting units.
func checkMix(pass *analysis.Pass, e *ast.BinaryExpr) {
	if !mixOps[e.Op] {
		return
	}
	lu, ru := inferUnit(e.X), inferUnit(e.Y)
	if lu == unitNone || ru == unitNone || lu == ru {
		return
	}
	if pass.WaivedAt(e.Pos(), "unitok") {
		return
	}
	pass.Reportf(e.Pos(), "%s mixes %s (%s) with %s (%s); convert through an explicit rate or annotate //tnpu:unitok", e.Op, types.ExprString(e.X), lu, types.ExprString(e.Y), ru)
}

// checkRoundTrip flags integer conversions of float arithmetic over a
// united quantity.
func checkRoundTrip(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Info()&types.IsInteger == 0 {
		return
	}
	arg := call.Args[0]
	at := pass.TypesInfo.Types[arg].Type
	if at == nil {
		return
	}
	ab, ok := at.Underlying().(*types.Basic)
	if !ok || ab.Info()&types.IsFloat == 0 {
		return
	}
	u := floatOperandUnit(arg)
	if u == unitNone {
		return
	}
	if pass.WaivedAt(call.Pos(), "unitok") {
		return
	}
	pass.Reportf(call.Pos(), "integer conversion of float arithmetic over a %s quantity loses exactness; use rational integer arithmetic (num/den) or annotate //tnpu:unitok", u)
}

// floatOperandUnit scans a float expression tree for a united operand.
func floatOperandUnit(e ast.Expr) unit {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return floatOperandUnit(v.X)
	case *ast.BinaryExpr:
		if u := floatOperandUnit(v.X); u != unitNone {
			return u
		}
		return floatOperandUnit(v.Y)
	case *ast.CallExpr:
		// float64(cycles): the conversion operand carries the unit.
		if len(v.Args) == 1 {
			if u := inferUnit(v.Args[0]); u != unitNone {
				return u
			}
		}
		return inferUnit(v)
	default:
		return inferUnit(e)
	}
}

// inferUnit derives an expression's unit from its name structure.
func inferUnit(e ast.Expr) unit {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return inferUnit(v.X)
	case *ast.Ident:
		return nameUnit(v.Name)
	case *ast.SelectorExpr:
		return nameUnit(v.Sel.Name)
	case *ast.CallExpr:
		// A call's unit is its callee's: Latency(), BytesMoved(), …
		switch fun := v.Fun.(type) {
		case *ast.Ident:
			return nameUnit(fun.Name)
		case *ast.SelectorExpr:
			return nameUnit(fun.Sel.Name)
		}
		return unitNone
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB:
			lu, ru := inferUnit(v.X), inferUnit(v.Y)
			switch {
			case lu == ru:
				return lu
			case lu == unitNone:
				return ru
			case ru == unitNone:
				return lu
			}
			return unitNone // conflicting: flagged at its own node
		case token.MUL:
			// rate conversions: unit * unitless keeps the unit; a
			// two-unit product is a rate application whose result the
			// names no longer describe.
			lu, ru := inferUnit(v.X), inferUnit(v.Y)
			switch {
			case lu == unitNone:
				return ru
			case ru == unitNone:
				return lu
			}
			return unitNone
		}
		return unitNone
	case *ast.UnaryExpr:
		return inferUnit(v.X)
	default:
		return unitNone
	}
}

// nameUnit classifies a camel-case name by its first unit keyword.
func nameUnit(name string) unit {
	lower := strings.ToLower(name)
	bi := firstIndexAny(lower, "bytes")
	ci := firstIndexAny(lower, "cycle", "latency")
	switch {
	case bi < 0 && ci < 0:
		return unitNone
	case ci < 0 || (bi >= 0 && bi < ci):
		return unitBytes
	default:
		return unitCycles
	}
}

// firstIndexAny returns the earliest index of any keyword in s, or -1.
func firstIndexAny(s string, keywords ...string) int {
	best := -1
	for _, k := range keywords {
		if i := strings.Index(s, k); i >= 0 && (best < 0 || i < best) {
			best = i
		}
	}
	return best
}
