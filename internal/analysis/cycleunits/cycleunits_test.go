package cycleunits_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/cycleunits"
)

func TestCycleunits(t *testing.T) {
	analysistest.Run(t, "testdata", cycleunits.Analyzer, "timing")
}
