// Package canoncover defines an Analyzer that proves canonical-state
// serialization covers every stored field.
//
// Layer memoization (DESIGN.md §6d/§6e) replays recorded engine state
// across layers — and, via the persistent memo store, across processes —
// keyed by the canonical byte rendering a memprot.LayerState produces.
// A behavioral field missing from that rendering silently serves stale
// cycles: the canon of two genuinely different states collides and the
// replay installs the wrong one (the PR 6 chunk-stretch bug, found only
// by differential fuzzing). This analyzer makes the invariant static:
//
//   - For every named struct type with both AppendCanon and RestoreCanon
//     methods, each stored field must be reachable from the append-side
//     serialization channels (AppendCanon/AppendAccum/AppendDelta) AND
//     the restore-side ones (RestoreCanon/AddAccum/ApplyDelta), where
//     reachability is a field mention in the method body or, transitively,
//     in another method of the same type called on the receiver.
//     Genuinely non-behavioral fields (derived geometry, scratch
//     cursors, journal indexes) are waived field-by-field with
//     //tnpu:canonskip <reason> at the declaration; a waiver on a field
//     that both sides in fact cover is reported as stale.
//
//   - The same discipline for content-addressing digests: a function
//     whose doc comment carries //tnpu:digestcover <pkg.Type> must
//     mention every unwaived leaf field of that struct (nested structs
//     flattened; mentioning a whole sub-struct covers its subtree).
//     Waivers live on the field declarations in the type's own package
//     and travel here as facts — exp.ConfigDigest is checked against
//     npu.Config without either package importing the other's AST.
//
// Every checked type's field disposition is also exported as a
// "canoncover.certified" fact; `tnpu-vet -certify` serializes the
// harvest so a committed JSON copy can back the runtime reflection
// cross-checks (belt and suspenders for builds that never run vet).
package canoncover

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/facts"
	"tnpu/internal/analysis/summary"
)

// WaiverMarker waives one stored field out of the coverage contract.
const WaiverMarker = "canonskip"

// DigestMarker opts a function into leaf-coverage checking against the
// struct type named in its argument.
const DigestMarker = "digestcover"

// CertFactName keys the per-type certification facts -certify harvests.
const CertFactName = "canoncover.certified"

// SkipFactName keys the per-type waived-field lists (needed by digest
// checks in other packages).
const SkipFactName = "canoncover.skipfields"

// RequiredDigests lists functions that must carry the digest marker, by
// contract package base name: the content-address of every cached
// simulation result flows through exp.ConfigDigest, so it may not
// silently lose the coverage proof.
var RequiredDigests = map[string]map[string]string{
	"exp": {"ConfigDigest": "npu.Config"},
}

var appendChannels = []string{"AppendCanon", "AppendAccum", "AppendDelta"}
var restoreChannels = []string{"RestoreCanon", "AddAccum", "ApplyDelta"}

// CertFact is one type's certified field disposition.
type CertFact struct {
	// Type is the fully qualified type name ("tnpu/internal/memprot.baseline").
	Type string `json:"type"`
	// Covered fields are proven serialized on both sides (for digest
	// targets: leaf paths proven mentioned).
	Covered []string `json:"covered"`
	// Waived fields carry //tnpu:canonskip.
	Waived []string `json:"waived,omitempty"`
}

type skipFact struct {
	Fields []string `json:"fields"`
}

var Analyzer = &analysis.Analyzer{
	Name:          "canoncover",
	Doc:           "check that AppendCanon/RestoreCanon serialization and //tnpu:digestcover digests cover every stored field not waived by //tnpu:canonskip",
	Run:           run,
	UsesFacts:     true,
	DefaultWaiver: WaiverMarker,
}

func run(pass *analysis.Pass) error {
	set := summary.Compute(pass, summary.Options{})
	structs := collectStructDecls(pass)

	// Export waived-field facts for every declared struct so digest
	// checks in dependent packages see the declaration-site waivers.
	names := make([]string, 0, len(structs))
	for name := range structs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var waived []string
		for _, field := range structs[name].Fields.List {
			if fieldWaived(pass, structs[name], field) {
				for _, id := range field.Names {
					waived = append(waived, id.Name)
				}
			}
		}
		if len(waived) > 0 {
			err := pass.Facts.Export(pass.Pkg.Path(), name, SkipFactName, skipFact{Fields: waived})
			if err != nil {
				return err
			}
		}
	}

	for _, name := range names {
		if err := checkCanonPair(pass, set, name, structs[name]); err != nil {
			return err
		}
	}
	if err := checkDigestFuncs(pass, set); err != nil {
		return err
	}
	checkRequiredDigests(pass, set)
	return nil
}

// collectStructDecls maps declared type names to their struct AST nodes.
func collectStructDecls(pass *analysis.Pass) map[string]*ast.StructType {
	out := make(map[string]*ast.StructType)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					if st, ok := ts.Type.(*ast.StructType); ok {
						out[ts.Name.Name] = st
					}
				}
			}
		}
	}
	return out
}

// checkCanonPair enforces two-sided coverage for one struct type that
// implements the canon pair.
func checkCanonPair(pass *analysis.Pass, set *summary.Set, typeName string, st *ast.StructType) error {
	if set.Lookup(typeName+".AppendCanon") == nil || set.Lookup(typeName+".RestoreCanon") == nil {
		return nil
	}
	coveredBy := func(channels []string) map[string]bool {
		out := make(map[string]bool)
		for _, ch := range channels {
			if info := set.Lookup(typeName + "." + ch); info != nil {
				for f := range set.FieldsClosure(info) {
					out[f] = true
				}
			}
		}
		return out
	}
	appendCov := coveredBy(appendChannels)
	restoreCov := coveredBy(restoreChannels)

	cert := CertFact{Type: pass.Pkg.Path() + "." + typeName}
	for _, field := range st.Fields.List {
		waived := fieldWaived(pass, st, field)
		fieldNames := make([]string, 0, len(field.Names))
		for _, id := range field.Names {
			fieldNames = append(fieldNames, id.Name)
		}
		if len(field.Names) == 0 {
			// Embedded field: coverage tracks the root name.
			fieldNames = append(fieldNames, embeddedName(field.Type))
		}
		for _, fname := range fieldNames {
			if fname == "" || fname == "_" {
				continue
			}
			app, res := appendCov[fname], restoreCov[fname]
			switch {
			case waived && app && res:
				pass.Reportf(field.Pos(),
					"stale //tnpu:canonskip: field %s.%s is serialized by both Append* and Restore* channels; drop the waiver",
					typeName, fname)
				cert.Waived = append(cert.Waived, fname)
			case waived:
				cert.Waived = append(cert.Waived, fname)
			case app && res:
				cert.Covered = append(cert.Covered, fname)
			case !app:
				pass.Reportf(field.Pos(),
					"memo-unsafe: field %s.%s is never written by AppendCanon/AppendAccum/AppendDelta; serialize it or annotate //tnpu:canonskip <reason>",
					typeName, fname)
			default:
				pass.Reportf(field.Pos(),
					"memo-unsafe: field %s.%s is written by the Append* channels but never restored by RestoreCanon/AddAccum/ApplyDelta; restore it or annotate //tnpu:canonskip <reason>",
					typeName, fname)
			}
		}
	}
	sort.Strings(cert.Covered)
	sort.Strings(cert.Waived)
	return pass.Facts.Export(pass.Pkg.Path(), typeName, CertFactName, cert)
}

// fieldWaived reports whether a struct field carries a canonskip waiver:
// a trailing comment on its own line, or a dedicated comment line directly
// above. A previous field's trailing waiver does not bleed down onto the
// next field even though it sits on that field's "line above".
func fieldWaived(pass *analysis.Pass, st *ast.StructType, field *ast.Field) bool {
	if pass.WaivedSameLine(field.Pos(), WaiverMarker) {
		return true
	}
	if !pass.WaivedAt(field.Pos(), WaiverMarker) {
		return false
	}
	line := pass.Fset.Position(field.Pos()).Line
	for _, other := range st.Fields.List {
		if other != field && pass.Fset.Position(other.End()).Line == line-1 {
			return false
		}
	}
	return true
}

// embeddedName returns the root name an embedded field is known by.
func embeddedName(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return embeddedName(x.X)
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// checkDigestFuncs verifies every //tnpu:digestcover-marked function.
func checkDigestFuncs(pass *analysis.Pass, set *summary.Set) error {
	for _, name := range set.Names() {
		info := set.Lookup(name)
		arg, ok := analysis.DocMarkerArg(info.Decl.Doc, DigestMarker)
		if !ok {
			continue
		}
		if err := checkDigest(pass, info, arg); err != nil {
			return err
		}
	}
	return nil
}

// checkRequiredDigests reports contract functions missing the marker.
func checkRequiredDigests(pass *analysis.Pass, set *summary.Set) {
	required := RequiredDigests[analysis.PkgBase(pass.Pkg.Path())]
	fnames := make([]string, 0, len(required))
	for fname := range required {
		fnames = append(fnames, fname)
	}
	sort.Strings(fnames)
	for _, fname := range fnames {
		target := required[fname]
		info := set.Lookup(fname)
		if info == nil || analysis.IsTestFile(pass.Fset, info.Decl.Pos()) {
			continue
		}
		if _, ok := analysis.DocMarkerArg(info.Decl.Doc, DigestMarker); !ok {
			pass.Reportf(info.Decl.Pos(),
				"%s content-addresses cached results and must carry //tnpu:digestcover %s in its doc comment (DESIGN.md §7c)",
				fname, target)
		}
	}
}

// checkDigest proves one digest function mentions every unwaived leaf of
// its target struct.
func checkDigest(pass *analysis.Pass, info *summary.FuncInfo, target string) error {
	named, err := resolveNamed(pass, target)
	if err != nil {
		pass.Reportf(info.Decl.Pos(), "//tnpu:digestcover %s: %v", target, err)
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		pass.Reportf(info.Decl.Pos(), "//tnpu:digestcover %s: not a struct type", target)
		return nil
	}
	// The parameter(s) of the target type are the digest's roots.
	var roots []types.Object
	if info.Decl.Type.Params != nil {
		for _, field := range info.Decl.Type.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if p, okP := t.(*types.Pointer); okP {
				t = p.Elem()
			}
			if n, okN := t.(*types.Named); okN && n.Obj() == named.Obj() {
				for _, id := range field.Names {
					roots = append(roots, pass.TypesInfo.Defs[id])
				}
			}
		}
	}
	if len(roots) == 0 {
		pass.Reportf(info.Decl.Pos(), "//tnpu:digestcover %s: no parameter of that type", target)
		return nil
	}
	mentioned := collectMaximalPaths(pass, info.Decl.Body, roots)
	leaves, waivedLeaves := leafPaths(pass, named, "", nil)

	cert := CertFact{Type: named.Obj().Pkg().Path() + "." + named.Obj().Name()}
	cert.Waived = waivedLeaves
	for _, leaf := range leaves {
		if pathCovered(leaf, mentioned) {
			cert.Covered = append(cert.Covered, leaf)
			continue
		}
		pass.Reportf(info.Decl.Pos(),
			"digest-unsafe: %s does not cover %s field %s; render it explicitly or waive the field with //tnpu:canonskip at its declaration",
			info.Obj.Name(), target, leaf)
	}
	sort.Strings(cert.Covered)
	sort.Strings(cert.Waived)
	return pass.Facts.Export(pass.Pkg.Path(), summary.ObjName(info.Obj), CertFactName, cert)
}

// resolveNamed turns "pkgname.Type" (or a bare same-package "Type") into
// the named type, looking pkgname up among the package's imports.
func resolveNamed(pass *analysis.Pass, target string) (*types.Named, error) {
	scope := pass.Pkg.Scope()
	typeName := target
	if i := strings.LastIndexByte(target, '.'); i >= 0 {
		pkgName, rest := target[:i], target[i+1:]
		typeName = rest
		scope = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName || analysis.PkgBase(imp.Path()) == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil, fmt.Errorf("package %q is not imported here", pkgName)
		}
	}
	obj := scope.Lookup(typeName)
	if obj == nil {
		return nil, fmt.Errorf("type %q not found", typeName)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, fmt.Errorf("%q is not a named type", typeName)
	}
	return named, nil
}

// leafPaths flattens a struct type into dotted leaf paths, honoring
// //tnpu:canonskip waivers recorded as facts by the declaring packages.
func leafPaths(pass *analysis.Pass, named *types.Named, prefix string, seen []*types.Named) (leaves, waived []string) {
	for _, s := range seen {
		if s.Obj() == named.Obj() {
			return nil, nil // recursive type: cut off
		}
	}
	seen = append(seen, named)
	st, isStruct := named.Underlying().(*types.Struct)
	if !isStruct {
		return []string{strings.TrimSuffix(prefix, ".")}, nil
	}
	var skip skipFact
	if pkg := named.Obj().Pkg(); pkg != nil {
		pass.Facts.Import(pkg.Path(), named.Obj().Name(), SkipFactName, &skip)
	}
	skipped := make(map[string]bool, len(skip.Fields))
	for _, f := range skip.Fields {
		skipped[f] = true
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path := prefix + f.Name()
		if skipped[f.Name()] {
			waived = append(waived, path)
			continue
		}
		ft := f.Type()
		if p, isPtr := ft.(*types.Pointer); isPtr {
			ft = p.Elem()
		}
		if sub, isNamed := ft.(*types.Named); isNamed {
			if _, isStruct := sub.Underlying().(*types.Struct); isStruct {
				subLeaves, subWaived := leafPaths(pass, sub, path+".", seen)
				leaves = append(leaves, subLeaves...)
				waived = append(waived, subWaived...)
				continue
			}
		}
		leaves = append(leaves, path)
	}
	return leaves, waived
}

// collectMaximalPaths gathers the dotted field paths of every maximal
// selector chain rooted at one of the root objects. Sub-chains are not
// recorded separately: mentioning cfg.Mem.FreqHz covers exactly that
// leaf, while passing cfg.Mem somewhere covers the whole Mem subtree.
func collectMaximalPaths(pass *analysis.Pass, body *ast.BlockStmt, roots []types.Object) map[string]bool {
	isRoot := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		for _, r := range roots {
			if obj == r {
				return true
			}
		}
		return false
	}
	out := make(map[string]bool)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Try to read the whole chain down to a root.
		var parts []string
		e := ast.Expr(sel)
		for {
			s, okSel := ast.Unparen(e).(*ast.SelectorExpr)
			if !okSel {
				break
			}
			parts = append([]string{s.Sel.Name}, parts...)
			e = s.X
		}
		if isRoot(e) && len(parts) > 0 {
			out[strings.Join(parts, ".")] = true
			return false // sub-selectors are prefixes, not separate mentions
		}
		return true
	}
	ast.Inspect(body, visit)
	return out
}

// pathCovered reports whether a leaf path is covered by any mentioned
// path: an exact mention, or a mention of one of its ancestors.
func pathCovered(leaf string, mentioned map[string]bool) bool {
	if mentioned[leaf] {
		return true
	}
	for p := leaf; ; {
		i := strings.LastIndexByte(p, '.')
		if i < 0 {
			return false
		}
		p = p[:i]
		if mentioned[p] {
			return true
		}
	}
}

// Certify renders the certification artifact from a finished run's fact
// store: every certified type's field disposition, sorted, as indented
// JSON. cmd/tnpu-vet wires this into `-certify`, and the committed copy
// backs the runtime reflection cross-checks in memprot and exp.
func Certify(store *facts.Store) ([]byte, error) {
	var out []CertFact
	for _, pkg := range store.Packages(CertFactName) {
		for _, obj := range store.Objects(pkg, CertFactName) {
			var c CertFact
			if store.Import(pkg, obj, CertFactName, &c) {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
