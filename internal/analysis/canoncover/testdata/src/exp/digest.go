// Package exp exercises the //tnpu:digestcover proof: every unwaived
// leaf of the target struct must be mentioned (directly or via an
// ancestor path) in the digest function's body.
package exp

import "testdata/npu"

// ConfigDigest renders every result-affecting leaf.
//
//tnpu:digestcover npu.Config
func ConfigDigest(cfg npu.Config) uint64 {
	return cfg.Mem.Freq + cfg.Mem.BW + uint64(cfg.TLB)
}

// SubtreeDigest covers the Mem leaves by passing the whole subtree.
//
//tnpu:digestcover npu.Config
func SubtreeDigest(cfg npu.Config) uint64 {
	return render(cfg.Mem) + uint64(cfg.TLB)
}

func render(m npu.Mem) uint64 { return m.Freq + m.BW }

// BadDigest forgets the TLB leaf.
//
//tnpu:digestcover npu.Config
func BadDigest(cfg npu.Config) uint64 { // want "does not cover npu.Config field TLB"
	return cfg.Mem.Freq + cfg.Mem.BW
}
