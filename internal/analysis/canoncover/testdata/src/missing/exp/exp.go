// Package exp (under missing/) drops the mandatory digestcover marker
// from its ConfigDigest, tripping the required-digest registry.
package exp

// ConfigDigest lacks the marker the contract demands.
func ConfigDigest(x uint64) uint64 { return x } // want "must carry //tnpu:digestcover npu.Config"
