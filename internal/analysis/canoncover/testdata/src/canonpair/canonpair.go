// Package canonpair exercises the two-sided coverage rule over types
// implementing the AppendCanon/RestoreCanon pair, including the accum
// and delta side channels, helper indirection, embedded fields, and the
// canonskip waiver (fresh and stale).
package canonpair

// good covers every field on both sides.
type good struct {
	a uint64
	b []byte
}

func (g *good) AppendCanon(dst []byte) []byte {
	dst = append(dst, byte(g.a))
	return append(dst, g.b...)
}

func (g *good) RestoreCanon(src []byte) []byte {
	g.a = uint64(src[0])
	g.b = append(g.b[:0], src[1:]...)
	return src[len(src):]
}

// badappend restores x but never serializes it.
type badappend struct {
	x uint64 // want "never written by Append"
	y uint64
}

func (b *badappend) AppendCanon(dst []byte) []byte { return append(dst, byte(b.y)) }

func (b *badappend) RestoreCanon(src []byte) []byte {
	b.x = 0
	b.y = uint64(src[0])
	return src[1:]
}

// badrestore serializes z but never restores it.
type badrestore struct {
	z uint64 // want "never restored"
}

func (b *badrestore) AppendCanon(dst []byte) []byte  { return append(dst, byte(b.z)) }
func (b *badrestore) RestoreCanon(src []byte) []byte { return src }

// waived declares memo as rebuild-on-demand state.
type waived struct {
	hot  uint64
	memo uint64 //tnpu:canonskip derived cache, rebuilt lazily on first use
}

func (w *waived) AppendCanon(dst []byte) []byte  { return append(dst, byte(w.hot)) }
func (w *waived) RestoreCanon(src []byte) []byte { w.hot = uint64(src[0]); return src[1:] }

// stale carries a waiver on a field that is in fact fully serialized.
type stale struct {
	k uint64 //tnpu:canonskip obsolete reason // want "stale //tnpu:canonskip"
}

func (s *stale) AppendCanon(dst []byte) []byte  { return append(dst, byte(s.k)) }
func (s *stale) RestoreCanon(src []byte) []byte { s.k = uint64(src[0]); return src[1:] }

// accum covers state through the canon pair, total through the accum
// channel, and journal through the delta channel.
type accum struct {
	state   uint64
	total   uint64
	journal []uint64
}

func (a *accum) AppendCanon(dst []byte) []byte  { return append(dst, byte(a.state)) }
func (a *accum) RestoreCanon(src []byte) []byte { a.state = uint64(src[0]); return src[1:] }
func (a *accum) AppendAccum(dst []byte) []byte  { return append(dst, byte(a.total)) }
func (a *accum) AddAccum(src []byte) []byte     { a.total += uint64(src[0]); return src[1:] }

func (a *accum) AppendDelta(dst []byte) []byte {
	for _, j := range a.journal {
		dst = append(dst, byte(j))
	}
	return dst
}

func (a *accum) ApplyDelta(src []byte) []byte {
	a.journal = append(a.journal[:0], uint64(src[0]))
	return src[1:]
}

// viaHelper reaches its fields through a same-receiver helper method.
type viaHelper struct {
	p uint64
	q uint64
}

func (v *viaHelper) appendAll(dst []byte) []byte {
	return append(dst, byte(v.p), byte(v.q))
}

func (v *viaHelper) AppendCanon(dst []byte) []byte { return v.appendAll(dst) }

func (v *viaHelper) RestoreCanon(src []byte) []byte {
	v.p = uint64(src[0])
	v.q = uint64(src[1])
	return src[2:]
}

// core is embedded below; its promoted field counts as coverage of the
// embedded root.
type core struct{ val uint64 }

type emb struct {
	core
	extra uint64
}

func (e *emb) AppendCanon(dst []byte) []byte {
	return append(dst, byte(e.val), byte(e.extra))
}

func (e *emb) RestoreCanon(src []byte) []byte {
	e.val = uint64(src[0])
	e.extra = uint64(src[1])
	return src[2:]
}

// onesided has no RestoreCanon, so the pair rule does not apply.
type onesided struct {
	ignored uint64
}

func (o *onesided) AppendCanon(dst []byte) []byte { return dst }
