// Package npu mirrors the real npu.Config shape for the digest fixtures:
// a nested config struct with one display-only field waived at its
// declaration. The waiver travels to dependent packages as a fact.
package npu

// Mem is a nested configuration subtree.
type Mem struct {
	Freq uint64
	BW   uint64
}

// Config is the digest target.
type Config struct {
	Name string //tnpu:canonskip display label, never read by the timing model
	Mem  Mem
	TLB  int
}
