package canoncover_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/canoncover"
)

func TestCanonPair(t *testing.T) {
	analysistest.Run(t, "testdata", canoncover.Analyzer, "canonpair")
}

func TestDigestCover(t *testing.T) {
	analysistest.Run(t, "testdata", canoncover.Analyzer, "npu", "exp", "missing/exp")
}
