// Package goroutinesafe polices the per-goroutine ownership contract of
// the stateful crypto engines (DESIGN.md §7c). secmem.MACEngine reuses
// one resettable HMAC state for speed (PR 3), which makes it — and every
// structure that embeds one, like secmem.TreelessMemory and the
// integrity-tree memories — single-goroutine state: the parallel
// experiment runner and the attack campaign must clone per worker, never
// share.
//
// A type is per-goroutine when its declaration doc carries
// //tnpu:per-goroutine, or when it appears in Registry (the
// cross-package list; analyzers see only one package's syntax, so
// markers on types in other packages are mirrored there).
//
// Flagged shapes:
//
//   - a go statement whose function literal captures a per-goroutine
//     value declared outside the literal (the engine escapes into a
//     concurrent context),
//   - a struct field whose type is per-goroutine while the struct's own
//     doc carries neither //tnpu:per-goroutine (ownership propagates to
//     the holder) nor the //tnpu:sharedok field waiver (the holder
//     synchronizes access itself),
//   - a struct documented "safe for concurrent use" that nevertheless
//     holds a per-goroutine field — a doc/ownership contradiction.
package goroutinesafe

import (
	"go/ast"
	"go/types"
	"strings"

	"tnpu/internal/analysis"
)

// Marker is the doc annotation declaring per-goroutine ownership.
const Marker = "per-goroutine"

// Registry lists per-goroutine types from other packages as
// "pkgbase.TypeName". The in-tree entries mirror the //tnpu:per-goroutine
// markers on the declarations themselves.
var Registry = map[string]bool{
	"secmem.MACEngine":      true,
	"secmem.TreelessMemory": true,
	"integrity.CounterTree": true,
	"integrity.TreeMemory":  true,
	"core.Context":          true,
	"core.TraceExecutor":    true,
}

// Analyzer is the goroutinesafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinesafe",
	Doc:  "flag per-goroutine engine state escaping into goroutines or unmarked holder structs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	local := localMarked(pass)
	for _, f := range pass.Files {
		checkStructs(pass, f, local)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs, local)
			return true
		})
	}
	return nil
}

// localMarked collects this package's //tnpu:per-goroutine types.
func localMarked(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if analysis.DocHasMarker(doc, Marker) {
					if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// perGoroutine reports whether t (possibly behind pointers) is a marked
// per-goroutine named type.
func perGoroutine(t types.Type, local map[types.Object]bool) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if local[obj] {
		return obj.Name(), true
	}
	if obj.Pkg() != nil {
		q := analysis.PkgBase(obj.Pkg().Path()) + "." + obj.Name()
		if Registry[q] {
			return q, true
		}
	}
	return "", false
}

// checkStructs enforces the holder rules on struct declarations.
func checkStructs(pass *analysis.Pass, f *ast.File, local map[types.Object]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			doc := ts.Doc
			if doc == nil {
				doc = gd.Doc
			}
			holderMarked := analysis.DocHasMarker(doc, Marker)
			holderClaimsSafe := docClaimsConcurrencySafe(doc)
			for _, field := range st.Fields.List {
				tv, ok := pass.TypesInfo.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				name, marked := perGoroutine(tv.Type, local)
				if !marked {
					continue
				}
				if holderClaimsSafe {
					pass.Reportf(field.Pos(), "%s documents itself safe for concurrent use but holds per-goroutine %s; clone per worker or fix the doc", ts.Name.Name, name)
					continue
				}
				if holderMarked || pass.WaivedAt(field.Pos(), "sharedok") {
					continue
				}
				pass.Reportf(field.Pos(), "%s holds per-goroutine %s; mark %s //tnpu:per-goroutine (ownership propagates) or annotate the field //tnpu:sharedok if access is synchronized", ts.Name.Name, name, ts.Name.Name)
			}
		}
	}
}

// checkGoStmt flags per-goroutine values captured by a goroutine's
// function literal from an enclosing scope.
func checkGoStmt(pass *analysis.Pass, gs *ast.GoStmt, local map[types.Object]bool) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		// `go eng.Method()` evaluates the receiver here, then runs the
		// method concurrently: the same escape.
		if sel, ok := gs.Call.Fun.(*ast.SelectorExpr); ok {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil {
				if name, marked := perGoroutine(tv.Type, local); marked && !pass.WaivedAt(gs.Pos(), "sharedok") {
					pass.Reportf(gs.Pos(), "per-goroutine %s used as receiver of a go statement; clone one per goroutine or annotate //tnpu:sharedok", name)
				}
			}
		}
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		name, marked := perGoroutine(v.Type(), local)
		if !marked {
			return true
		}
		// Captured only when declared outside the literal.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if pass.WaivedAt(id.Pos(), "sharedok") || pass.WaivedAt(gs.Pos(), "sharedok") {
			return true
		}
		pass.Reportf(id.Pos(), "per-goroutine %s (%s) captured by a goroutine; construct one inside the goroutine or clone per worker (//tnpu:sharedok to waive)", name, id.Name)
		return true
	})
}

// docClaimsConcurrencySafe detects the documentation idiom promising
// concurrent safety ("safe for concurrent use").
func docClaimsConcurrencySafe(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(doc.Text()), "safe for concurrent use")
}
