package goroutinesafe_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/goroutinesafe"
)

func TestGoroutinesafe(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinesafe.Analyzer, "secmem", "app")
}
