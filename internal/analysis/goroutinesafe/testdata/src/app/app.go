// Fixtures for the goroutinesafe analyzer: per-goroutine engine state
// escaping into goroutines and unmarked holder structs.
package app

import "testdata/secmem"

// holder keeps an engine without declaring ownership.
type holder struct {
	mac *secmem.MACEngine // want "holds per-goroutine"
}

// owner is itself per-goroutine, so ownership propagates cleanly.
//
//tnpu:per-goroutine
type owner struct {
	mac *secmem.MACEngine
}

// guarded synchronizes access to the engine itself.
type guarded struct {
	mac *secmem.MACEngine //tnpu:sharedok (all access under mu)
}

// pool claims concurrency safety while holding single-goroutine state.
// All methods are safe for concurrent use.
type pool struct {
	mac *secmem.MACEngine // want "documents itself safe for concurrent use"
}

// scratch is a locally declared per-goroutine type: the doc marker is
// read from this package's own syntax, no registry entry needed.
//
//tnpu:per-goroutine
type scratch struct {
	buf [64]byte
}

// badHolder keeps a locally marked type without declaring ownership.
type badHolder struct {
	s *scratch // want "holds per-goroutine"
}

func leak(m *secmem.MACEngine) {
	go func() {
		m.Sum(nil) // want "captured by a goroutine"
	}()
	go m.Sum(nil) // want "receiver of a go statement"
	go func() {
		local := secmem.NewMACEngine()
		local.Sum(nil) // constructed inside the goroutine: owned here
	}()
}

func use(h *holder, o *owner, g *guarded, p *pool, b *badHolder) {
	_ = h.mac
	_ = o.mac
	_ = g.mac
	_ = p.mac
	_ = b.s
}
