// Package secmem is a registry stand-in: its base name and type name
// match an entry in goroutinesafe.Registry, exercising the cross-package
// path (markers on foreign declarations are invisible to the analyzer).
package secmem

// MACEngine mirrors the real per-goroutine engine.
type MACEngine struct {
	state [64]byte
}

// NewMACEngine creates an engine.
func NewMACEngine() *MACEngine { return &MACEngine{} }

// Sum models a stateful MAC computation.
func (m *MACEngine) Sum(b []byte) []byte {
	m.state[0]++
	return b
}
