// Package boundsound defines an Analyzer that keeps every closed-form
// fast path anchored to the per-block reference.
//
// The batched run service (memprot.RunEngine.ReadRun/WriteRun) and the
// multi-NPU horizon arbitration both rest on the same discipline: a
// scheme may serve a run with closed-form arithmetic only while a guard
// predicate proves the closed form applies, and must otherwise fall
// back to the per-block reference path whose every cycle is simulated
// (the npu.Machine additionally re-checks the RunBounder bound after
// each burst and panics on overrun). A new scheme that ships an
// unguarded closed form silently diverges from the reference — the
// differential fuzzers would eventually catch it, but only per seed.
// This analyzer enforces the shape statically, in two rules:
//
//  1. Fallback reachability: each ReadRun/WriteRun method of a type
//     that has both must transitively reach (through same-package
//     static calls) the per-block reference — a function named
//     runPerBlock, a //tnpu:reference-marked helper, or the type's own
//     ReadBlock/WriteBlock — or carry a //tnpu:exactform <reason> doc
//     waiver asserting the closed form is exact by construction (the
//     unsecure/encrypt-only stream forms, pinned by differential tests).
//
//  2. Guarded fast paths: every call to a //tnpu:fastpath-marked
//     function must sit under an if-condition that invokes a
//     //tnpu:guard-marked predicate, directly or through a local
//     variable derived from one (the `inStreak := ... && BeginSpanRun(...)`
//     idiom). Markers cross packages as facts, so dram.Bus.BeginSpanRun
//     guards memprot's streak bodies. //tnpu:guardok waives one site.
package boundsound

import (
	"go/ast"
	"go/types"
	"sort"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/summary"
)

// Markers.
const (
	FastpathMarker  = "fastpath"  // doc: closed-form body needing a guard at call sites
	GuardMarker     = "guard"     // doc: predicate licensing a fast path
	ReferenceMarker = "reference" // doc: per-block reference fallback
	ExactWaiver     = "exactform" // doc: closed form exact by construction
	SiteWaiver      = "guardok"   // site: waives one unguarded call
)

// Fact names (value is always true; presence is the signal).
const (
	FastpathFact = "boundsound.fastpath"
	GuardFact    = "boundsound.guard"
)

var Analyzer = &analysis.Analyzer{
	Name:          "boundsound",
	Doc:           "check that closed-form run fast paths are guarded by //tnpu:guard predicates and that ReadRun/WriteRun retain a reachable per-block reference fallback",
	Run:           run,
	UsesFacts:     true,
	DefaultWaiver: SiteWaiver,
}

func run(pass *analysis.Pass) error {
	set := summary.Compute(pass, summary.Options{})

	// Index this package's markers and re-export them as facts for
	// dependents (dram's BeginSpanRun guards memprot's streak bodies).
	fastpath := make(map[*types.Func]bool)
	guard := make(map[*types.Func]bool)
	for _, name := range set.Names() {
		info := set.Lookup(name)
		if analysis.DocHasMarker(info.Decl.Doc, FastpathMarker) {
			fastpath[info.Obj] = true
			if err := pass.Facts.Export(pass.Pkg.Path(), name, FastpathFact, true); err != nil {
				return err
			}
		}
		if analysis.DocHasMarker(info.Decl.Doc, GuardMarker) {
			guard[info.Obj] = true
			if err := pass.Facts.Export(pass.Pkg.Path(), name, GuardFact, true); err != nil {
				return err
			}
		}
	}
	isMarked := func(fn *types.Func, local map[*types.Func]bool, fact string) bool {
		if fn == nil {
			return false
		}
		if local[fn] {
			return true
		}
		pkg := fn.Pkg()
		return pkg != nil && pass.Facts.Has(pkg.Path(), summary.ObjName(fn), fact)
	}

	checkFallback(pass, set)

	for _, name := range set.Names() {
		info := set.Lookup(name)
		checkGuards(pass, info,
			func(fn *types.Func) bool { return isMarked(fn, fastpath, FastpathFact) },
			func(fn *types.Func) bool { return isMarked(fn, guard, GuardFact) })
	}
	return nil
}

// checkFallback enforces rule 1 over every RunEngine-shaped type.
func checkFallback(pass *analysis.Pass, set *summary.Set) {
	// Group methods by receiver type name.
	types_ := make(map[string]bool)
	for _, name := range set.Names() {
		info := set.Lookup(name)
		if info.RecvNamed != nil {
			types_[info.RecvNamed.Obj().Name()] = true
		}
	}
	var typeNames []string
	for t := range types_ {
		typeNames = append(typeNames, t)
	}
	sort.Strings(typeNames)
	for _, t := range typeNames {
		read := set.Lookup(t + ".ReadRun")
		write := set.Lookup(t + ".WriteRun")
		if read == nil || write == nil {
			continue
		}
		for _, m := range []struct {
			info  *summary.FuncInfo
			block string
		}{{read, "ReadBlock"}, {write, "WriteBlock"}} {
			if analysis.DocHasMarker(m.info.Decl.Doc, ExactWaiver) {
				continue
			}
			if reachesReference(set, m.info, t, m.block) {
				continue
			}
			pass.Reportf(m.info.Decl.Pos(),
				"unsound fast path: %s.%s reaches no per-block reference (runPerBlock, %s.%s, or a //tnpu:reference helper); add a fallback branch or waive with //tnpu:exactform <reason> if the closed form is exact",
				t, m.info.Obj.Name(), t, m.block)
		}
	}
}

// reachesReference walks the same-package static call graph from start,
// looking for the per-block reference.
func reachesReference(set *summary.Set, start *summary.FuncInfo, typeName, blockMethod string) bool {
	seen := make(map[*types.Func]bool)
	queue := []*summary.FuncInfo{start}
	for len(queue) > 0 {
		info := queue[0]
		queue = queue[1:]
		for _, call := range info.Calls {
			if call.Callee == nil || seen[call.Callee] {
				continue
			}
			seen[call.Callee] = true
			name := summary.ObjName(call.Callee)
			if call.Callee.Name() == "runPerBlock" || name == typeName+"."+blockMethod {
				return true
			}
			callee, ok := set.Funcs[call.Callee]
			if !ok {
				continue
			}
			if analysis.DocHasMarker(callee.Decl.Doc, ReferenceMarker) {
				return true
			}
			queue = append(queue, callee)
		}
	}
	return false
}

// checkGuards enforces rule 2 inside one function body: every call to a
// fast-path function must be dominated by an if-condition derived from a
// guard predicate.
func checkGuards(pass *analysis.Pass, info *summary.FuncInfo, isFastpath, isGuard func(*types.Func) bool) {
	body := info.Decl.Body

	// condHasGuard reports whether an expression invokes a guard
	// predicate or mentions a guard-derived local.
	guardDerived := collectGuardDerived(pass, body, isGuard)
	exprGuarded := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := staticCallee(pass, x); isGuard(fn) {
					found = true
					return false
				}
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[x]; obj != nil && guardDerived[obj] {
					found = true
					return false
				}
			}
			return !found
		})
		return found
	}

	// Walk with an explicit ancestor stack so each fast-path call can
	// look up its enclosing if-statements.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := staticCallee(pass, call); isFastpath(fn) {
				guarded := false
				for i := len(stack) - 1; i >= 0 && !guarded; i-- {
					ifStmt, isIf := stack[i].(*ast.IfStmt)
					if !isIf {
						continue
					}
					// The call must be in the body, not the condition
					// itself (a guard's argument is not guarded by it).
					if within(ifStmt.Cond, call) {
						continue
					}
					if exprGuarded(ifStmt.Cond) {
						guarded = true
					}
				}
				if !guarded && !pass.WaivedAt(call.Pos(), SiteWaiver) {
					pass.Reportf(call.Pos(),
						"unsound fast path: call to //tnpu:fastpath %s is not under an if-condition derived from a //tnpu:guard predicate; guard it or waive with //tnpu:guardok <reason>",
						summary.ObjName(fn))
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(body, visit)
}

// collectGuardDerived finds locals whose value is derived from a guard
// call: v := ... guard(...) ..., transitively through other derived
// locals, to a fixpoint.
func collectGuardDerived(pass *analysis.Pass, body *ast.BlockStmt, isGuard func(*types.Func) bool) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isGuard(staticCallee(pass, x)) {
					found = true
				}
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[x]; obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, okID := ast.Unparen(lhs).(*ast.Ident)
				if !okID {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || derived[obj] {
					continue
				}
				if mentions(as.Rhs[i]) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// staticCallee resolves a call's static target, nil for dynamic calls.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// within reports whether needle lies inside hay's extent.
func within(hay ast.Node, needle ast.Node) bool {
	return hay.Pos() <= needle.Pos() && needle.End() <= hay.End()
}
