// Package boundsound exercises both rules: fallback reachability for
// ReadRun/WriteRun pairs (own block methods, a runPerBlock loop, a
// reference-marked helper, or an exactform waiver) and guard coverage
// for fastpath call sites (direct conditions, guard-derived locals,
// cross-package guard facts, and the guardok waiver).
package boundsound

import "testdata/guarddep"

// blockDev has guarded fast paths and per-block fallbacks.
type blockDev struct{ n uint64 }

func (d *blockDev) ReadBlock(a uint64) uint64  { d.n++; return a }
func (d *blockDev) WriteBlock(a uint64) uint64 { d.n++; return a }

// canStreak reports whether the closed form applies.
//
//tnpu:guard
func (d *blockDev) canStreak(n int) bool { return n > 4 }

// readStreak is the closed form.
//
//tnpu:fastpath
func (d *blockDev) readStreak(a uint64, n int) uint64 { return a + uint64(n) }

// writeStreak is the closed form.
//
//tnpu:fastpath
func (d *blockDev) writeStreak(a uint64, n int) uint64 { return a * uint64(n) }

// ReadRun guards the fast path directly and falls back per block.
func (d *blockDev) ReadRun(a uint64, n int) uint64 {
	if n > 2 && d.canStreak(n) {
		return d.readStreak(a, n)
	}
	var out uint64
	for i := 0; i < n; i++ {
		out = d.ReadBlock(a + uint64(i))
	}
	return out
}

// WriteRun reaches the fast path through a guard-derived local.
func (d *blockDev) WriteRun(a uint64, n int) uint64 {
	fast := n > 2 && d.canStreak(n)
	if fast {
		return d.writeStreak(a, n)
	}
	var out uint64
	for i := 0; i < n; i++ {
		out = d.WriteBlock(a + uint64(i))
	}
	return out
}

// Sum calls the fast path with no guard anywhere.
func (d *blockDev) Sum(a uint64, n int) uint64 {
	return d.readStreak(a, n) // want "not under an if-condition"
}

// Avg guards with a condition unrelated to any guard predicate.
func (d *blockDev) Avg(a uint64, n int) uint64 {
	if n > 0 {
		return d.readStreak(a, n) // want "not under an if-condition"
	}
	return 0
}

// Max documents a deliberate unguarded call.
func (d *blockDev) Max(a uint64, n int) uint64 {
	return d.writeStreak(a, n) //tnpu:guardok fixture probe, bound re-checked by caller
}

// Tail is licensed by a cross-package guard fact.
func (d *blockDev) Tail(a uint64, n int) uint64 {
	if guarddep.Begin(n) {
		return d.readStreak(a, n)
	}
	return d.ReadBlock(a)
}

// flatDev ships closed forms with no reachable reference.
type flatDev struct{ n uint64 }

func (d *flatDev) ReadBlock(a uint64) uint64  { return a }
func (d *flatDev) WriteBlock(a uint64) uint64 { return a }

// ReadRun has no fallback branch and no waiver.
func (d *flatDev) ReadRun(a uint64, n int) uint64 { return a + uint64(n) } // want "reaches no per-block reference"

// WriteRun asserts exactness instead.
//
//tnpu:exactform pure arithmetic over the run length, pinned by fixture
func (d *flatDev) WriteRun(a uint64, n int) uint64 { return a * uint64(n) }

// loopDev reaches the reference through runPerBlock and a marked helper.
type loopDev struct{ n uint64 }

func (d *loopDev) ReadBlock(a uint64) uint64  { return a }
func (d *loopDev) WriteBlock(a uint64) uint64 { return a }

func runPerBlock(n int) uint64 { return uint64(n) }

// helperRef replays the per-block path. //tnpu:reference
func helperRef(n int) uint64 { return uint64(n) }

func (d *loopDev) ReadRun(a uint64, n int) uint64  { return a + runPerBlock(n) }
func (d *loopDev) WriteRun(a uint64, n int) uint64 { return a + helperRef(n) }
