// Package guarddep exports a guard predicate as a fact, mirroring
// dram.Bus.BeginSpanRun guarding memprot's streak bodies.
package guarddep

// Begin reports whether the closed form applies.
//
//tnpu:guard
func Begin(n int) bool { return n > 8 }
