package boundsound_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/boundsound"
)

func TestBoundsound(t *testing.T) {
	analysistest.Run(t, "testdata", boundsound.Analyzer, "boundsound")
}
