// Package checker drives analysis.Analyzers in the two modes cmd/tnpu-vet
// supports:
//
//   - Standalone: load packages by pattern through internal/analysis/load
//     and run every analyzer over each (RunPatterns) — `tnpu-vet ./...`.
//   - Vet tool: speak cmd/go's vet.cfg protocol (RunVetCfg) so the same
//     binary plugs into `go vet -vettool=$(which tnpu-vet)`. cmd/go hands
//     the tool a JSON config per package naming the source files and the
//     export data of the dependency closure, expects diagnostics on
//     stderr with a non-zero exit, and requires the VetxOutput facts file
//     to be written (this suite keeps no cross-package facts, so the file
//     is always empty).
//
// In both modes a package's test variant ("pkg [pkg.test]") re-lists the
// non-test sources, so diagnostics from variants are filtered to
// _test.go files to keep every finding single-shot.
package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/load"
)

// Diagnostic is one rendered finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// runPackage applies every analyzer to one loaded package. testOnly
// restricts reported findings to _test.go files (set for test variants
// whose non-test files were already analyzed as the base package).
func runPackage(pkg *load.Package, analyzers []*analysis.Analyzer, testOnly bool) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if testOnly && !strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			out = append(out, Diagnostic{Position: pos, Analyzer: name, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Offset != b.Position.Offset {
			return a.Position.Offset < b.Position.Offset
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// isTestVariant reports whether a loaded package is the in-package test
// variant whose non-test files are also listed as a plain package (the
// external test package, named *_test, has only _test.go files).
func isTestVariant(pkg *load.Package) bool {
	return pkg.ForTest != "" && !strings.HasSuffix(pkg.Types.Name(), "_test")
}

// RunPatterns loads patterns (tests included) in dir and runs the suite,
// returning every finding in deterministic order.
func RunPatterns(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := load.Load(load.Config{Dir: dir, Tests: true}, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers, isTestVariant(pkg))
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	return out, nil
}

// vetConfig mirrors cmd/go's internal vetConfig (the vet.cfg JSON payload
// handed to -vettool binaries); unused fields are omitted.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunVetCfg implements the vet-tool side of the protocol for one vet.cfg
// file. It returns the diagnostics to print and the process exit code.
func RunVetCfg(cfgPath string, analyzers []*analysis.Analyzer) ([]Diagnostic, int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, 1, fmt.Errorf("parse %s: %v", cfgPath, err)
	}
	// This suite exports no facts, but cmd/go caches the vetx output
	// file, so one must exist before any exit path.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, 1, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: facts would be computed here, and
		// this suite has none.
		return nil, 0, nil
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, f := range cfg.GoFiles {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, 0, nil
			}
			return nil, 1, err
		}
		files = append(files, parsed)
	}
	typesPkg, info, err := load.Check(cfg.ImportPath, fset, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0, nil
		}
		return nil, 1, err
	}
	pkg := &load.Package{
		ImportPath: cfg.ID,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Fset:       fset,
		Syntax:     files,
		Types:      typesPkg,
		TypesInfo:  info,
	}
	// cmd/go vets both "pkg" and "pkg [pkg.test]"; report test-file
	// findings only from the variant.
	testOnly := strings.Contains(cfg.ID, " [") && !strings.HasSuffix(typesPkg.Name(), "_test")
	ds, err := runPackage(pkg, analyzers, testOnly)
	if err != nil {
		return nil, 1, err
	}
	if len(ds) > 0 {
		return ds, 2, nil
	}
	return nil, 0, nil
}

// Main is the shared entry point of cmd/tnpu-vet: it dispatches between
// the cmd/go handshakes (-flags, -V=full), vet.cfg mode, and the
// standalone pattern mode. Protocol responses go to stdout (where cmd/go
// reads them), diagnostics to stderr, and the return value is the
// process exit code.
func Main(stdout, stderr io.Writer, args []string, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 && args[0] == "-flags" {
		// `go vet -vettool` first asks the tool to describe its flags as
		// a JSON array on stdout; this suite takes none.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// cmd/go identifies tools by `-V=full`; any stable single line
		// of the form "<name> version <stuff>" serves.
		fmt.Fprintln(stdout, "tnpu-vet version v1 (stdlib go/analysis suite)")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		ds, code, err := RunVetCfg(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "tnpu-vet: %v\n", err)
			return 1
		}
		for _, d := range ds {
			fmt.Fprintf(stderr, "%s: %s\n", d.Position, d.Message)
		}
		return code
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(stderr, "tnpu-vet: unknown flag %s\nusage: tnpu-vet [packages] | tnpu-vet <vet.cfg>\n", p)
			return 1
		}
	}
	ds, err := RunPatterns("", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "tnpu-vet: %v\n", err)
		return 1
	}
	for _, d := range ds {
		fmt.Fprintf(stderr, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(ds) > 0 {
		return 2
	}
	return 0
}
