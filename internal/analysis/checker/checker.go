// Package checker drives analysis.Analyzers in the two modes cmd/tnpu-vet
// supports:
//
//   - Standalone: load packages by pattern through internal/analysis/load
//     and run every analyzer over each (Run / RunPatterns) —
//     `tnpu-vet ./...`. One load serves the whole analyzer suite, and
//     in-module dependency packages are visited first (facts-producing
//     analyzers only, diagnostics suppressed) so cross-package facts are
//     always available before their consumers run.
//   - Vet tool: speak cmd/go's vet.cfg protocol (RunVetCfg) so the same
//     binary plugs into `go vet -vettool=$(which tnpu-vet)`. cmd/go hands
//     the tool a JSON config per package naming the source files, the
//     export data of the dependency closure, and the .vetx facts files of
//     already-vetted dependencies; it expects diagnostics on stderr with
//     a non-zero exit and requires the VetxOutput facts file to be
//     written. The facts store round-trips through those files: each
//     written vetx carries the full transitive store, so indirect
//     dependencies' facts survive the per-package relay.
//
// In both modes a package's test variant ("pkg [pkg.test]") re-lists the
// non-test sources, so diagnostics from variants are filtered to
// _test.go files to keep every finding single-shot.
package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tnpu/internal/analysis"
	"tnpu/internal/analysis/facts"
	"tnpu/internal/analysis/load"
)

// Diagnostic is one rendered finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string

	// Waiver names the //tnpu:<marker> that would suppress this finding
	// (the diagnostic's own, falling back to the analyzer's default).
	Waiver string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Result carries everything a full standalone run produced.
type Result struct {
	Diagnostics []Diagnostic
	// Facts is the cross-package fact store accumulated over the run
	// (certification output is harvested from here).
	Facts *facts.Store
	// LoadTime is the wall time of listing, parsing, and type-checking —
	// paid once for the whole suite.
	LoadTime time.Duration
	// AnalyzerTime is cumulative wall time per analyzer across packages.
	AnalyzerTime map[string]time.Duration
}

// runPackage applies analyzers to one loaded package. testOnly restricts
// reported findings to _test.go files (set for test variants whose
// non-test files were already analyzed as the base package). report=false
// runs only fact-producing analyzers and discards their diagnostics —
// the dependency-package mode. times, when non-nil, accumulates per-
// analyzer wall time.
func runPackage(pkg *load.Package, analyzers []*analysis.Analyzer, store *facts.Store, testOnly, report bool, times map[string]time.Duration) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		if !report && !a.UsesFacts {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     store,
		}
		name, waiver := a.Name, a.DefaultWaiver
		pass.Report = func(d analysis.Diagnostic) {
			if !report {
				return
			}
			pos := pkg.Fset.Position(d.Pos)
			if testOnly && !strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			w := d.Waiver
			if w == "" {
				w = waiver
			}
			out = append(out, Diagnostic{Position: pos, Analyzer: name, Message: d.Message, Waiver: w})
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
		if times != nil {
			times[a.Name] += time.Since(start)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Offset != b.Position.Offset {
			return a.Position.Offset < b.Position.Offset
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// isTestVariant reports whether a loaded package is the in-package test
// variant whose non-test files are also listed as a plain package (the
// external test package, named *_test, has only _test.go files).
func isTestVariant(pkg *load.Package) bool {
	return pkg.ForTest != "" && !strings.HasSuffix(pkg.Types.Name(), "_test")
}

// Run loads patterns (tests included) in dir once, applies the suite in
// dependency order with a shared facts store, and returns diagnostics
// (deterministically ordered), the store, and timing.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) (*Result, error) {
	start := time.Now()
	pkgs, err := load.Load(load.Config{Dir: dir, Tests: true}, patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Facts:        facts.New(),
		LoadTime:     time.Since(start),
		AnalyzerTime: make(map[string]time.Duration),
	}
	// load.Load preserves go list -deps order: dependencies precede
	// dependents, so facts are complete before any consumer runs.
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers, res.Facts, isTestVariant(pkg), pkg.Root, res.AnalyzerTime)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = append(res.Diagnostics, ds...)
	}
	return res, nil
}

// RunPatterns is the diagnostics-only form of Run, kept for callers that
// need neither facts nor timing (the analysistest harness).
func RunPatterns(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	res, err := Run(dir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// vetConfig mirrors cmd/go's internal vetConfig (the vet.cfg JSON payload
// handed to -vettool binaries); unused fields are omitted.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// moduleName walks up from dir to the nearest go.mod and returns its
// module path ("" when none is found). It distinguishes this module's
// packages from GOROOT ones (module "std"/"cmd") in VetxOnly mode, where
// re-type-checking the standard library from source for facts it cannot
// carry would be pure waste.
func moduleName(dir string) string {
	for dir != "" {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return strings.Trim(strings.TrimSpace(rest), `"`)
				}
			}
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return ""
}

// RunVetCfg implements the vet-tool side of the protocol for one vet.cfg
// file. It returns the diagnostics to print and the process exit code.
func RunVetCfg(cfgPath string, analyzers []*analysis.Analyzer) ([]Diagnostic, int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, 1, fmt.Errorf("parse %s: %v", cfgPath, err)
	}
	// cmd/go caches the vetx output file, so one must exist on every
	// exit path; start empty and overwrite with real facts on success.
	writeVetx := func(store *facts.Store) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		var payload []byte
		if store != nil && store.Len() > 0 {
			payload = store.Encode()
		}
		return os.WriteFile(cfg.VetxOutput, payload, 0o666)
	}
	if err := writeVetx(nil); err != nil {
		return nil, 1, err
	}
	factual := false
	for _, a := range analyzers {
		if a.UsesFacts {
			factual = true
		}
	}
	if cfg.VetxOnly && (!factual || isToolchainModule(moduleName(cfg.Dir))) {
		// Dependency-only invocation of a package that cannot carry our
		// facts (or a suite that keeps none): the empty vetx stands.
		return nil, 0, nil
	}
	store := facts.New()
	for _, vetx := range sortedValues(cfg.PackageVetx) {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// A missing dep vetx degrades to missing facts, not failure.
			continue
		}
		if err := store.Decode(data); err != nil {
			return nil, 1, err
		}
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, f := range cfg.GoFiles {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, 0, nil
			}
			return nil, 1, err
		}
		files = append(files, parsed)
	}
	typesPkg, info, err := load.Check(cfg.ImportPath, fset, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0, nil
		}
		return nil, 1, err
	}
	pkg := &load.Package{
		ImportPath: cfg.ID,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Fset:       fset,
		Syntax:     files,
		Types:      typesPkg,
		TypesInfo:  info,
	}
	// cmd/go vets both "pkg" and "pkg [pkg.test]"; report test-file
	// findings only from the variant.
	testOnly := strings.Contains(cfg.ID, " [") && !strings.HasSuffix(typesPkg.Name(), "_test")
	ds, err := runPackage(pkg, analyzers, store, testOnly, !cfg.VetxOnly, nil)
	if err != nil {
		return nil, 1, err
	}
	if err := writeVetx(store); err != nil {
		return nil, 1, err
	}
	if len(ds) > 0 {
		return ds, 2, nil
	}
	return nil, 0, nil
}

// isToolchainModule reports whether a module path names the Go toolchain
// itself (GOROOT's std or cmd trees).
func isToolchainModule(mod string) bool {
	return mod == "std" || mod == "cmd"
}

// sortedValues returns m's values ordered by key, for deterministic
// iteration over go list / vet.cfg string maps.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Certify, when set by the driver, renders the certification artifact
// for `tnpu-vet -certify <path>` from the facts a full run accumulated
// (cmd/tnpu-vet points it at canoncover's harvest so this package stays
// analyzer-agnostic).
var Certify func(*facts.Store) ([]byte, error)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Waiver   string `json:"waiver,omitempty"`
}

const usage = "usage: tnpu-vet [-json] [-v] [-only a1,a2] [-certify out.json] [packages] | tnpu-vet <vet.cfg>"

// Main is the shared entry point of cmd/tnpu-vet: it dispatches between
// the cmd/go handshakes (-flags, -V=full), vet.cfg mode, and the
// standalone pattern mode. Protocol responses go to stdout (where cmd/go
// reads them), diagnostics to stderr (or stdout for -json), and the
// return value is the process exit code.
func Main(stdout, stderr io.Writer, args []string, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 && args[0] == "-flags" {
		// `go vet -vettool` first asks the tool to describe its flags as
		// a JSON array on stdout; the vet-tool protocol side takes none
		// (-json and friends are standalone-only).
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// cmd/go identifies tools by `-V=full`; any stable single line
		// of the form "<name> version <stuff>" serves.
		fmt.Fprintln(stdout, "tnpu-vet version v1 (stdlib go/analysis suite)")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		ds, code, err := RunVetCfg(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "tnpu-vet: %v\n", err)
			return 1
		}
		for _, d := range ds {
			fmt.Fprintf(stderr, "%s: %s\n", d.Position, d.Message)
		}
		return code
	}

	var (
		jsonOut  bool
		verbose  bool
		only     string
		certify  string
		patterns []string
	)
	for i := 0; i < len(args); i++ {
		arg := args[i]
		flagVal := func(name string) (string, bool) {
			if v, ok := strings.CutPrefix(arg, "-"+name+"="); ok {
				return v, true
			}
			if arg == "-"+name && i+1 < len(args) {
				i++
				return args[i], true
			}
			return "", false
		}
		switch {
		case arg == "-json":
			jsonOut = true
		case arg == "-v":
			verbose = true
		default:
			if v, ok := flagVal("only"); ok {
				only = v
				break
			}
			if v, ok := flagVal("certify"); ok {
				certify = v
				break
			}
			if strings.HasPrefix(arg, "-") {
				fmt.Fprintf(stderr, "tnpu-vet: unknown flag %s\n%s\n", arg, usage)
				return 1
			}
			patterns = append(patterns, arg)
		}
	}
	if only != "" {
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(only, ",") {
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					selected = append(selected, a)
					found = true
				}
			}
			if !found {
				var known []string
				for _, a := range analyzers {
					known = append(known, a.Name)
				}
				fmt.Fprintf(stderr, "tnpu-vet: -only: unknown analyzer %q (have %s)\n", name, strings.Join(known, ", "))
				return 1
			}
		}
		analyzers = selected
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := Run("", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "tnpu-vet: %v\n", err)
		return 1
	}
	if verbose {
		fmt.Fprintf(stderr, "tnpu-vet: load+typecheck %v\n", res.LoadTime.Round(time.Millisecond))
		names := make([]string, 0, len(res.AnalyzerTime))
		for name := range res.AnalyzerTime {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stderr, "tnpu-vet: %-14s %v\n", name, res.AnalyzerTime[name].Round(time.Millisecond))
		}
	}
	if certify != "" {
		if Certify == nil {
			fmt.Fprintf(stderr, "tnpu-vet: -certify is not supported by this driver\n")
			return 1
		}
		data, err := Certify(res.Facts)
		if err != nil {
			fmt.Fprintf(stderr, "tnpu-vet: certify: %v\n", err)
			return 1
		}
		if err := os.WriteFile(certify, data, 0o666); err != nil {
			fmt.Fprintf(stderr, "tnpu-vet: %v\n", err)
			return 1
		}
	}
	if jsonOut {
		out := make([]jsonDiagnostic, 0, len(res.Diagnostics))
		for _, d := range res.Diagnostics {
			out = append(out, jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Waiver:   d.Waiver,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "tnpu-vet: %v\n", err)
			return 1
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintf(stderr, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}
