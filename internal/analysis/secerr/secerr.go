// Package secerr enforces the typed-error contract of the security
// layer (DESIGN.md §7c): every error produced by the verification and
// attacker-surface packages — secmem, memprot, attack, integrity — is a
// detection signal (secmem.ErrIntegrity, secmem.ErrAbsentBlock) that the
// adversarial detection matrix counts on. Dropping one silently converts
// a detected tampering into a miss.
//
// The analyzer flags three shapes at every call whose callee lives in a
// contract package and returns an error:
//
//   - the call result discarded outright (a bare expression statement),
//   - the error result assigned to the blank identifier,
//   - the error bound with := to a variable that is never read again
//     (a shadowed or forgotten check).
//
// Deliberate drops (e.g. asserting that an attack primitive fails) carry
// the //tnpu:errok waiver on the call line or the line above.
package secerr

import (
	"go/ast"
	"go/types"

	"tnpu/internal/analysis"
)

// ContractPackages lists the package base names whose returned errors
// must be consumed. Base names keep the registry valid for both the real
// tree (tnpu/internal/secmem) and analysistest fixtures
// (testdata/secmem).
var ContractPackages = map[string]bool{
	"secmem":    true,
	"memprot":   true,
	"attack":    true,
	"integrity": true,
}

// Analyzer is the secerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "secerr",
	Doc:  "flag ignored or unchecked errors from the security verification packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, errIdx := contractError(pass, call)
				if errIdx < 0 || pass.WaivedAt(call.Pos(), "errok") {
					return true
				}
				pass.Reportf(call.Pos(), "result of %s contains a verification error that is discarded; handle it or annotate //tnpu:errok", name)
				return true
			case *ast.AssignStmt:
				checkAssign(pass, s)
				return true
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blank-discarded and never-read error results of
// contract calls on the right-hand side of an assignment.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	// Only the multi-value form `a, err := f()` maps result indices to
	// LHS positions; tuple-unpacking across several calls cannot occur.
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, errIdx := contractError(pass, call)
	if errIdx < 0 || errIdx >= len(s.Lhs) {
		return
	}
	if pass.WaivedAt(call.Pos(), "errok") {
		return
	}
	target, ok := s.Lhs[errIdx].(*ast.Ident)
	if !ok {
		return
	}
	if target.Name == "_" {
		pass.Reportf(target.Pos(), "verification error from %s assigned to the blank identifier; handle it or annotate //tnpu:errok", name)
		return
	}
	// A := definition that is never read is a dropped check (commonly a
	// shadowing bug inside a narrower scope).
	obj := pass.TypesInfo.Defs[target]
	if obj == nil {
		return // plain assignment to an existing variable: assume checked
	}
	if !objUsed(pass, obj) {
		pass.Reportf(target.Pos(), "verification error from %s is assigned to %s but never checked", name, target.Name)
	}
}

// objUsed reports whether obj is read anywhere in the package.
func objUsed(pass *analysis.Pass, obj types.Object) bool {
	for _, o := range pass.TypesInfo.Uses {
		if o == obj {
			return true
		}
	}
	return false
}

// contractError resolves a call's callee; when the callee belongs to a
// contract package and its results include an error, it returns the
// callee's name and the index of the (last) error result, else -1.
func contractError(pass *analysis.Pass, call *ast.CallExpr) (string, int) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", -1
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || !ContractPackages[analysis.PkgBase(obj.Pkg().Path())] {
		return "", -1
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return obj.Name(), i
		}
	}
	return "", -1
}

var universeError = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, universeError)
}
