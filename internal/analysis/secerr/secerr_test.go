package secerr_test

import (
	"testing"

	"tnpu/internal/analysis/analysistest"
	"tnpu/internal/analysis/secerr"
)

func TestSecerr(t *testing.T) {
	analysistest.Run(t, "testdata", secerr.Analyzer, "secmem", "client")
}
