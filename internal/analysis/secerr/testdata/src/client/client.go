// Fixtures for the secerr analyzer: dropped and blank-discarded errors
// from a contract package, next to the accepted forms.
package client

import "testdata/secmem"

// positive: the verification error is discarded outright.
func drops() {
	secmem.Verify(0) // want "is discarded"
}

// positive: the error result lands in the blank identifier.
func blank() []byte {
	b, _ := secmem.Read(0) // want "blank identifier"
	return b
}

// negative: the error is checked.
func checked() error {
	if err := secmem.Verify(0); err != nil {
		return err
	}
	b, err := secmem.Read(0)
	if err != nil {
		return err
	}
	_ = b
	return nil
}

// negative: errorless results need no handling.
func counts() int {
	return secmem.Blocks()
}

// waiver: a deliberate drop (the test asserts failure elsewhere).
func waivedDrop() {
	secmem.Verify(0) //tnpu:errok
}

// waiver: comment on the line above also applies.
func waivedBlank() []byte {
	//tnpu:errok
	b, _ := secmem.Read(0)
	return b
}
