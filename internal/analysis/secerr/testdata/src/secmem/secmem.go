// Package secmem is a contract-package stand-in: its base name matches
// the real verification package, so errors it returns must be consumed.
package secmem

import "errors"

// ErrIntegrity mirrors the real detection sentinel.
var ErrIntegrity = errors.New("integrity violation")

// Verify models a verification call site.
func Verify(addr uint64) error { return nil }

// Read models a read returning data plus a verification error.
func Read(addr uint64) ([]byte, error) { return nil, nil }

// Blocks returns a count with no error: calls to it are never flagged.
func Blocks() int { return 0 }
