// Package summary computes lightweight per-function summaries over one
// type-checked package: which receiver fields a method touches, which
// functions it calls, and whether it is pure (mutates nothing reachable
// from its receiver, parameters, or package state). The three
// interprocedural analyzers (canoncover, purity, boundsound) all build
// on the same summaries — canoncover closes field mentions over
// same-receiver helper calls, purity runs a worklist fixpoint over the
// intra-package call graph and consults cross-package facts at the
// boundary, boundsound walks the call edges for fallback reachability.
//
// The purity model is a conservative taint analysis, not an alias
// analysis: a local variable is "owned" only while every value flowing
// into it is a fresh allocation (make/new/pointer-free literal); writes
// that dereference anything else — receiver, parameter, global, call
// result, tainted local — count as side effects. Calls to callees whose
// purity cannot be established (dynamic calls, unmarked cross-package
// functions) are impure by default. False positives are waived at the
// site with //tnpu:pureok, never by weakening the model.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"tnpu/internal/analysis"
)

// Purity is a three-valued purity verdict for cross-package callees.
type Purity int

const (
	Unknown Purity = iota
	Pure
	Impure
)

// CallSite is one resolved static call edge.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
	// OnRecv marks calls of another method of the same named type on
	// this method's own receiver (the edges field-mention closure
	// follows).
	OnRecv bool
}

// FuncInfo is the summary of one function or method declaration.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	// RecvNamed is the receiver's named type (pointer stripped), nil for
	// plain functions.
	RecvNamed *types.Named
	// Fields holds the root receiver struct fields this method mentions
	// directly (embedded promotions resolve to the embedded field).
	Fields map[string]bool
	Calls  []CallSite

	// Pure is the fixpoint purity verdict; when false, ImpurePos and
	// ImpureWhat hold the first witness (a mutation in this body, or the
	// call that reached an impure callee).
	Pure       bool
	ImpurePos  token.Pos
	ImpureWhat string
}

// Options parameterizes a Compute call.
type Options struct {
	// CalleePure resolves the purity of a callee declared outside the
	// package (typically from //tnpu:pure facts). Nil means Unknown.
	CalleePure func(fn *types.Func) Purity
	// WaiverOK reports whether an impurity witness at pos is waived
	// (//tnpu:pureok); waived sites do not poison the summary.
	WaiverOK func(pos token.Pos) bool
	// ScratchField reports whether writes to the named field of the
	// named receiver type are declared scratch (//tnpu:scratch) and
	// therefore exempt from the purity contract.
	ScratchField func(typeName, fieldName string) bool
}

// Set holds the summaries of one package.
type Set struct {
	Funcs  map[*types.Func]*FuncInfo
	byName map[string]*FuncInfo

	closure map[*types.Func]map[string]bool
}

// ObjName renders a *types.Func the way facts keys and Set.Lookup expect:
// "Func" for package-level functions, "Type.Method" for methods (pointer
// receivers stripped).
func ObjName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Lookup finds a summary by ObjName form.
func (s *Set) Lookup(name string) *FuncInfo { return s.byName[name] }

// Names returns every summarized function name, sorted, for
// deterministic iteration.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.byName))
	for name := range s.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FieldsClosure returns the receiver fields fn mentions directly or
// through same-receiver method calls, transitively.
func (s *Set) FieldsClosure(fn *FuncInfo) map[string]bool {
	if s.closure == nil {
		s.closure = make(map[*types.Func]map[string]bool)
	}
	if c, ok := s.closure[fn.Obj]; ok {
		return c
	}
	out := make(map[string]bool)
	s.closure[fn.Obj] = out // breaks recursion cycles
	for f := range fn.Fields {
		out[f] = true
	}
	for _, call := range fn.Calls {
		if !call.OnRecv {
			continue
		}
		if callee, ok := s.Funcs[call.Callee]; ok {
			for f := range s.FieldsClosure(callee) {
				out[f] = true
			}
		}
	}
	return out
}

// Compute builds summaries for every function declared in the package
// and closes purity over the intra-package call graph.
func Compute(pass *analysis.Pass, opt Options) *Set {
	s := &Set{
		Funcs:  make(map[*types.Func]*FuncInfo),
		byName: make(map[string]*FuncInfo),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := summarize(pass, opt, fd, obj)
			s.Funcs[obj] = info
			s.byName[ObjName(obj)] = info
		}
	}

	// Purity fixpoint: impurity propagates along intra-package call
	// edges; cross-package callees resolve through opt.CalleePure
	// (their verdicts are fixed by facts). Iteration is by sorted name
	// so the first recorded witness is deterministic.
	for changed := true; changed; {
		changed = false
		for _, name := range s.Names() {
			info := s.byName[name]
			if !info.Pure {
				continue
			}
			for _, call := range info.Calls {
				verdict, what := s.calleeVerdict(pass, opt, call)
				if verdict == Pure {
					continue
				}
				if opt.WaiverOK != nil && opt.WaiverOK(call.Pos) {
					continue
				}
				info.Pure = false
				info.ImpurePos = call.Pos
				info.ImpureWhat = what
				changed = true
				break
			}
		}
	}
	return s
}

// calleeVerdict resolves one call edge's purity: same-package callees by
// summary, cross-package ones by facts/whitelist, unresolvable ones as
// Unknown.
func (s *Set) calleeVerdict(pass *analysis.Pass, opt Options, call CallSite) (Purity, string) {
	if call.Callee == nil {
		return Unknown, "calls through a dynamic target (interface or function value)"
	}
	if callee, ok := s.Funcs[call.Callee]; ok {
		if callee.Pure {
			return Pure, ""
		}
		return Impure, fmt.Sprintf("calls %s, which is impure (%s at %s)",
			ObjName(call.Callee), callee.ImpureWhat, pass.Fset.Position(callee.ImpurePos))
	}
	if p := stdlibPurity(call.Callee); p != Unknown {
		if p == Pure {
			return Pure, ""
		}
		return Impure, fmt.Sprintf("calls impure %s", ObjName(call.Callee))
	}
	if opt.CalleePure != nil {
		if p := opt.CalleePure(call.Callee); p != Unknown {
			if p == Pure {
				return Pure, ""
			}
			return Impure, fmt.Sprintf("calls %s, declared impure", ObjName(call.Callee))
		}
	}
	return Unknown, fmt.Sprintf("calls %s, whose purity is unknown (no //tnpu:pure fact)", ObjName(call.Callee))
}

// stdlibPurity whitelists the few standard-library helpers the tree's
// pure functions legitimately reach (all read-only over their
// arguments). Everything else in the standard library is Unknown.
func stdlibPurity(fn *types.Func) Purity {
	pkg := fn.Pkg()
	if pkg == nil {
		return Unknown
	}
	switch pkg.Path() + "." + fn.Name() {
	case "fmt.Sprintf", "fmt.Errorf", "errors.New", "strconv.Itoa",
		"strconv.FormatInt", "strconv.FormatUint", "strings.Contains",
		"strings.HasPrefix", "strings.HasSuffix":
		return Pure
	}
	return Unknown
}

// summarize walks one function body.
func summarize(pass *analysis.Pass, opt Options, fd *ast.FuncDecl, obj *types.Func) *FuncInfo {
	info := &FuncInfo{
		Decl:   fd,
		Obj:    obj,
		Fields: make(map[string]bool),
		Pure:   true,
	}
	w := &walker{pass: pass, opt: opt, info: info}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			info.RecvNamed = n
		}
		if names := fd.Recv.List[0].Names; len(names) == 1 {
			w.recvObj = pass.TypesInfo.Defs[names[0]]
		}
	}
	w.collectOwnership(fd.Body)
	w.walk(fd.Body)
	return info
}

// walker accumulates one function's summary.
type walker struct {
	pass    *analysis.Pass
	opt     Options
	info    *FuncInfo
	recvObj types.Object

	// owned holds the function's locals still considered fresh-allocated
	// (writes through them are not side effects).
	owned map[types.Object]bool
}

// collectOwnership decides which locals are owned: seed every local
// defined in the body as owned, then repeatedly revoke ownership of any
// local that receives a non-fresh value (directly or into one of its
// fields) until stable. The loop is monotone — ownership is only ever
// revoked — so it terminates.
func (w *walker) collectOwnership(body *ast.BlockStmt) {
	w.owned = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					w.owned[obj] = true
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0] // multi-value call: not fresh
					}
					if w.revokeIfContaminated(lhs, rhs) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				// Range vars hold views into the ranged value.
				for _, lhs := range []ast.Expr{st.Key, st.Value} {
					if lhs != nil && w.revokeIfContaminated(lhs, st.X) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					var rhs ast.Expr
					if i < len(st.Values) {
						rhs = st.Values[i]
					}
					if rhs != nil && w.revokeIfContaminated(name, rhs) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// revokeIfContaminated revokes ownership of lhs's root local when rhs is
// not fresh, reporting whether anything changed.
func (w *walker) revokeIfContaminated(lhs, rhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return false
	}
	obj := w.objOf(root)
	if obj == nil || !w.owned[obj] {
		return false
	}
	if rhs != nil && w.fresh(rhs) {
		return false
	}
	if rhs == nil {
		return false // var declaration without value: zero value is fresh
	}
	delete(w.owned, obj)
	return true
}

// fresh reports whether expr yields a value that carries no references
// into caller-visible memory: a new allocation, a pointer-free value, or
// a view of an owned local.
func (w *walker) fresh(e ast.Expr) bool {
	e = ast.Unparen(e)
	if t := w.pass.TypesInfo.TypeOf(e); t != nil && pointerFree(t, nil) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		return w.owned[w.objOf(x)]
	case *ast.CallExpr:
		if b, ok := w.builtinName(x); ok {
			return b == "make" || b == "new" || b == "append" && len(x.Args) > 0 && w.fresh(x.Args[0])
		}
		return false
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if !w.fresh(el) {
				return false
			}
		}
		return true
	case *ast.UnaryExpr:
		return x.Op == token.AND && w.fresh(x.X)
	case *ast.IndexExpr:
		return w.fresh(x.X)
	case *ast.SliceExpr:
		return w.fresh(x.X)
	case *ast.SelectorExpr:
		// A field of an owned struct value is owned.
		return w.fresh(x.X)
	case *ast.StarExpr:
		return w.fresh(x.X)
	}
	return false
}

// walk is the main pass: field mentions, call edges, and impurity
// witnesses.
func (w *walker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			w.recordFieldMention(x)
		case *ast.CallExpr:
			w.recordCall(x)
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				break // fresh locals; contamination handled by ownership
			}
			for _, lhs := range x.Lhs {
				w.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			w.checkWrite(x.X)
		case *ast.SendStmt:
			if !w.fresh(x.Chan) {
				w.recordImpure(x.Arrow, "sends on a shared channel")
			}
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				for _, lhs := range []ast.Expr{x.Key, x.Value} {
					if lhs != nil {
						w.checkWrite(lhs)
					}
				}
			}
		}
		return true
	})
}

// recordFieldMention notes receiver struct fields referenced through the
// receiver identifier; embedded promotions resolve to the embedded root
// field.
func (w *walker) recordFieldMention(sel *ast.SelectorExpr) {
	if w.recvObj == nil || w.info.RecvNamed == nil {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || w.objOf(base) != w.recvObj {
		return
	}
	selection := w.pass.TypesInfo.Selections[sel]
	if selection == nil {
		return
	}
	idx := selection.Index()
	switch selection.Kind() {
	case types.FieldVal:
		// idx[0] is a field of the receiver struct.
	case types.MethodVal, types.MethodExpr:
		if len(idx) < 2 {
			return // direct method: a call edge, not a field mention
		}
		// Promoted method: idx[0] is the embedded field it came through.
	default:
		return
	}
	st, ok := w.info.RecvNamed.Underlying().(*types.Struct)
	if !ok || idx[0] >= st.NumFields() {
		return
	}
	w.info.Fields[st.Field(idx[0]).Name()] = true
}

// recordCall resolves one call expression into a CallSite and checks the
// mutating builtins.
func (w *walker) recordCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return // conversion
	}
	if b, ok := w.builtinName(call); ok {
		switch b {
		case "append", "copy":
			if len(call.Args) > 0 && !w.fresh(call.Args[0]) && !w.scratchArg(call.Args[0]) {
				w.recordImpure(call.Pos(), fmt.Sprintf("%s may write through a shared slice", b))
			}
		case "delete":
			if len(call.Args) > 0 && !w.fresh(call.Args[0]) && !w.scratchArg(call.Args[0]) {
				w.recordImpure(call.Pos(), "deletes from a shared map")
			}
		case "close":
			if len(call.Args) > 0 && !w.fresh(call.Args[0]) {
				w.recordImpure(call.Pos(), "closes a shared channel")
			}
		case "print", "println":
			w.recordImpure(call.Pos(), "calls "+b)
		}
		return
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := w.pass.TypesInfo.Uses[f].(*types.Func); ok {
			w.info.Calls = append(w.info.Calls, CallSite{Callee: fn, Pos: call.Pos()})
			return
		}
	case *ast.SelectorExpr:
		if selection := w.pass.TypesInfo.Selections[f]; selection != nil && selection.Kind() == types.MethodVal {
			if types.IsInterface(selection.Recv()) {
				break // dynamic dispatch
			}
			fn, _ := selection.Obj().(*types.Func)
			onRecv := false
			if base, ok := ast.Unparen(f.X).(*ast.Ident); ok && w.recvObj != nil {
				onRecv = w.objOf(base) == w.recvObj && len(selection.Index()) == 1
			}
			w.info.Calls = append(w.info.Calls, CallSite{Callee: fn, Pos: call.Pos(), OnRecv: onRecv})
			return
		}
		if fn, ok := w.pass.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			// Package-qualified call.
			w.info.Calls = append(w.info.Calls, CallSite{Callee: fn, Pos: call.Pos()})
			return
		}
	}
	// Function values, method values, interface calls: dynamic.
	w.info.Calls = append(w.info.Calls, CallSite{Callee: nil, Pos: call.Pos()})
}

// checkWrite records an impurity witness when the written lvalue reaches
// memory not owned by this call frame.
func (w *walker) checkWrite(lhs ast.Expr) {
	if what, bad := w.writeViolation(lhs); bad {
		w.recordImpure(lhs.Pos(), what)
	}
}

// writeViolation walks an lvalue from the outside in: a write is a side
// effect exactly when the path dereferences a pointer, slice, or map that
// is not owned by this frame. Writing into value-typed locals and
// parameters (including their struct fields) stays pure — their storage
// is the frame's own.
func (w *walker) writeViolation(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.objOf(x)
		if obj == nil || x.Name == "_" {
			return "", false
		}
		if isPackageLevel(obj) {
			return "writes package-level " + x.Name, true
		}
		return "", false // rebinding a local or parameter
	case *ast.SelectorExpr:
		if t := w.pass.TypesInfo.TypeOf(x.X); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				if w.scratchThrough(x) {
					return "", false
				}
				if w.fresh(x.X) {
					return "", false
				}
				return "stores through " + renderExpr(x), true
			}
		}
		if w.scratchThrough(x) {
			return "", false
		}
		return w.writeViolation(x.X)
	case *ast.IndexExpr:
		t := w.pass.TypesInfo.TypeOf(x.X)
		if t == nil {
			return "stores through an index expression", true
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			if w.fresh(x.X) || w.scratchArg(x.X) {
				return "", false
			}
			return "stores into " + renderExpr(x), true
		default: // array value
			return w.writeViolation(x.X)
		}
	case *ast.StarExpr:
		if w.fresh(x.X) {
			return "", false
		}
		return "stores through " + renderExpr(x), true
	}
	return "stores through an unanalyzed lvalue", true
}

// scratchArg reports whether an expression is (a view of) a declared
// scratch field of the receiver — the `append(e.buf[:0], ...)` reuse
// idiom — which pure code may mutate.
func (w *walker) scratchArg(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return w.scratchThrough(x)
		default:
			return false
		}
	}
}

// scratchThrough reports whether sel is a declared-scratch field of this
// method's receiver (writes through it are exempt).
func (w *walker) scratchThrough(sel *ast.SelectorExpr) bool {
	if w.opt.ScratchField == nil || w.recvObj == nil || w.info.RecvNamed == nil {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || w.objOf(base) != w.recvObj {
		return false
	}
	return w.opt.ScratchField(w.info.RecvNamed.Obj().Name(), sel.Sel.Name)
}

// recordImpure notes the first unwaived impurity witness.
func (w *walker) recordImpure(pos token.Pos, what string) {
	if !w.info.Pure {
		return
	}
	if w.opt.WaiverOK != nil && w.opt.WaiverOK(pos) {
		return
	}
	w.info.Pure = false
	w.info.ImpurePos = pos
	w.info.ImpureWhat = what
}

// objOf resolves an identifier to its object (use or def).
func (w *walker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Defs[id]
}

// builtinName reports the builtin a call invokes, if any.
func (w *walker) builtinName(call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := w.objOf(id).(*types.Builtin); ok {
		return id.Name, true
	}
	return "", false
}

// rootIdent unwraps an lvalue to its innermost identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// pointerFree reports whether values of t can carry no references to
// other memory (so copies are always frame-local).
func pointerFree(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Array:
		return pointerFree(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !pointerFree(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	}
	return false
}

// renderExpr prints a short lvalue description for diagnostics.
func renderExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "(...)"
	}
	return "expression"
}
