// Package compiler lowers a DNN layer graph into the tiled NPU instruction
// trace of Fig. 8/13: per-layer GEMM tiling sized to the scratchpad with
// double buffering, mvin/mvout instructions annotated with software-managed
// version numbers (tile-expanded for outputs, merged after each layer —
// exactly the Fig. 9 discipline), and embedding layers lowered to
// fine-grained row gathers at table-dependent addresses.
package compiler

import (
	"fmt"
	"strings"

	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/spm"
	"tnpu/internal/systolic"
	"tnpu/internal/tensor"
)

// IsWeight reports whether a tensor name denotes a layer's weights (the
// compiler names them "<layer>.w").
func IsWeight(name string) bool { return strings.HasSuffix(name, ".w") }

// IsParameter reports whether a tensor is initialization-written data —
// the model input or a layer's weights — i.e. the tensors the CPU enclave
// streams into the NPU region before inference (Sec. V-D phase 1).
func IsParameter(name string) bool { return name == "input" || IsWeight(name) }

// Config selects the target NPU and versioning policy.
type Config struct {
	Array systolic.Array
	SPM   spm.SPM
	// PerTensorVersions disables tile expansion (ablation): outputs are
	// written tile by tile but share one tensor version, which forces
	// whole-tensor version semantics. The default (false) is the paper's
	// per-tile scheme of Fig. 9.
	PerTensorVersions bool
	// PretiledWeights lays each weight tile out contiguously in DRAM
	// (an ablation quantifying how much counter-line spatial locality an
	// NPU toolchain's weight pre-tiling would restore). The default is
	// the plain row-major operand layout the paper's SCALE-Sim-based
	// simulator models, whose strided tile reads are part of the
	// low-spatial-locality behaviour of Sec. V-B.
	PretiledWeights bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Array.Validate(); err != nil {
		return err
	}
	return c.SPM.Validate()
}

// Program is a compiled NPU workload.
type Program struct {
	Model   *model.Model
	Trace   isa.Trace
	Tensors []tensor.Tensor // indexed by tensor.ID
	// Table holds the version numbers after compile-time simulation of
	// the software's bookkeeping; mvin/mvout instructions embed the
	// values the software would pass at runtime.
	Table *tensor.Table
	// MemoryTop is the highest NPU-region address allocated.
	MemoryTop uint64
	// LayerFirst/LayerLast delimit each layer's instruction range.
	LayerFirst, LayerLast []int32
}

// TensorByName finds a tensor descriptor (weights are named
// "<layer>.w", activations "<layer>.out", the input "input").
func (p *Program) TensorByName(name string) (tensor.Tensor, bool) {
	for _, t := range p.Tensors {
		if t.Name == name {
			return t, true
		}
	}
	return tensor.Tensor{}, false
}

// compileState carries per-compilation bookkeeping.
type compileState struct {
	cfg   Config
	m     *model.Model
	prog  *Program
	table *tensor.Table

	nextAddr uint64
	nextID   tensor.ID

	layerOut  []tensor.ID // output tensor per layer
	layerLast []int32     // final instruction index per layer
	refs      map[tensor.ID]int
	rng       uint64
}

const pageAlign = 4096

// Compile lowers m for the given NPU configuration.
func Compile(m *model.Model, cfg Config) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	st := &compileState{
		cfg:   cfg,
		m:     m,
		prog:  &Program{Model: m},
		table: tensor.NewTable(),
		refs:  make(map[tensor.ID]int),
		rng:   0x9e3779b97f4a7c15,
	}
	st.prog.Table = st.table

	input := st.alloc("input", m.InputBytes)
	st.table.Bump(input.ID) // initialization wrote the input once

	// Count activation consumers so dead feature maps can be dropped
	// from the version table (buffer reuse, Sec. IV-D storage sizing).
	consumers := make([]int, len(m.Layers))
	inputConsumers := 0
	for i := range m.Layers {
		for _, p := range m.Layers[i].Inputs {
			if p == -1 {
				inputConsumers++
			} else {
				consumers[p]++
			}
		}
	}
	st.refs[input.ID] = inputConsumers

	for li := range m.Layers {
		st.prog.LayerFirst = append(st.prog.LayerFirst, int32(len(st.prog.Trace.Instrs)))
		if err := st.compileLayer(li); err != nil {
			return nil, fmt.Errorf("compiler: %s layer %d (%s): %w", m.Short, li, m.Layers[li].Name, err)
		}
		st.prog.LayerLast = append(st.prog.LayerLast, int32(len(st.prog.Trace.Instrs)-1))
		st.layerLast = append(st.layerLast, int32(len(st.prog.Trace.Instrs)-1))

		// Release producers whose last consumer just ran.
		for _, p := range m.Layers[li].Inputs {
			id := input.ID
			if p >= 0 {
				id = st.layerOut[p]
				consumers[p]--
				if consumers[p] == 0 && st.table.Registered(id) {
					st.table.Drop(id)
				}
			} else {
				st.refs[id]--
				if st.refs[id] == 0 {
					st.table.Drop(id)
				}
			}
		}
	}
	st.prog.MemoryTop = st.nextAddr
	if err := st.prog.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: internal trace error: %w", err)
	}
	return st.prog, nil
}

// alloc creates a page-aligned tensor in the NPU region and registers it.
func (st *compileState) alloc(name string, bytes uint64) tensor.Tensor {
	t := tensor.Tensor{ID: st.nextID, Name: name, Addr: st.nextAddr, Bytes: bytes}
	st.nextID++
	st.nextAddr += (bytes + pageAlign - 1) &^ (pageAlign - 1)
	st.prog.Tensors = append(st.prog.Tensors, t)
	st.table.Register(t.ID)
	return t
}

// producerTensor resolves a layer input index to its tensor.
func (st *compileState) producerTensor(p int) tensor.Tensor {
	if p == -1 {
		return st.prog.Tensors[0]
	}
	return st.prog.Tensors[st.layerOut[p]]
}

// producerDep returns the instruction the consuming layer must wait on.
func (st *compileState) producerDep(p int) []int32 {
	if p == -1 {
		return nil // input initialized before the run starts
	}
	return []int32{st.layerLast[p]}
}

// readVersion is the version the software passes for an mvin of a merged
// tensor.
func (st *compileState) readVersion(id tensor.ID) uint64 {
	return st.table.TileVersion(id, 0)
}

func (st *compileState) compileLayer(li int) error {
	l := &st.m.Layers[li]
	switch l.Kind {
	case model.KindGEMM:
		return st.compileGEMM(li, l)
	case model.KindGather:
		return st.compileGather(li, l)
	case model.KindEltwise:
		return st.compileEltwise(li, l)
	case model.KindPool:
		return st.compilePool(li, l)
	}
	return fmt.Errorf("unknown layer kind %v", l.Kind)
}

// expandOutput registers the layer output and expands its version entry
// into tiles per the configured granularity, returning a bump function.
func (st *compileState) expandOutput(out tensor.Tensor, tiles int) func(tile int) (version uint64, vtile int) {
	if st.cfg.PerTensorVersions || tiles == 1 || tiles > tensor.MaxTiles {
		// Whole-tensor versioning: one bump covers the whole layer; each
		// tile mvout carries the same new version.
		v := st.table.Bump(out.ID)
		return func(int) (uint64, int) { return v, 0 }
	}
	st.table.Expand(out.ID, tiles)
	return func(tile int) (uint64, int) { return st.table.BumpTile(out.ID, tile), tile }
}

// mergeOutput collapses the output back to a single version number.
func (st *compileState) mergeOutput(out tensor.Tensor, tiles int) error {
	if st.cfg.PerTensorVersions || tiles == 1 || tiles > tensor.MaxTiles {
		return nil
	}
	return st.table.Merge(out.ID)
}
