package compiler

import (
	"bytes"
	"testing"

	"tnpu/internal/model"
)

func TestProgramSerializationRoundTrip(t *testing.T) {
	for _, short := range []string{"df", "sent"} {
		orig := compileShort(t, short, smallCfg())
		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadProgram(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.MemoryTop != orig.MemoryTop {
			t.Fatalf("%s: memory top %d != %d", short, got.MemoryTop, orig.MemoryTop)
		}
		if len(got.Tensors) != len(orig.Tensors) {
			t.Fatalf("%s: tensor count %d != %d", short, len(got.Tensors), len(orig.Tensors))
		}
		for i := range got.Tensors {
			if got.Tensors[i] != orig.Tensors[i] {
				t.Fatalf("%s: tensor %d differs: %+v vs %+v", short, i, got.Tensors[i], orig.Tensors[i])
			}
		}
		if len(got.Trace.Instrs) != len(orig.Trace.Instrs) {
			t.Fatalf("%s: instr count differs", short)
		}
		for i := range got.Trace.Instrs {
			a, b := &got.Trace.Instrs[i], &orig.Trace.Instrs[i]
			if a.Op != b.Op || a.Tensor != b.Tensor || a.Tile != b.Tile ||
				a.Version != b.Version || a.Cycles != b.Cycles || a.Layer != b.Layer ||
				len(a.Segments) != len(b.Segments) || len(a.Deps) != len(b.Deps) {
				t.Fatalf("%s: instr %d differs:\n%v\n%v", short, i, a, b)
			}
			for s := range a.Segments {
				if a.Segments[s] != b.Segments[s] {
					t.Fatalf("%s: instr %d segment %d differs", short, i, s)
				}
			}
			for d := range a.Deps {
				if a.Deps[d] != b.Deps[d] {
					t.Fatalf("%s: instr %d dep %d differs", short, i, d)
				}
			}
		}
		if len(got.LayerFirst) != len(orig.LayerFirst) {
			t.Fatalf("%s: layer ranges differ", short)
		}
	}
}

func TestReadProgramRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		append([]byte{0x55, 0x50, 0x4E, 0x54}, bytes.Repeat([]byte{0xFF}, 32)...), // right magic, garbage after
		bytes.Repeat([]byte{0}, 64), // wrong magic
	}
	for i, c := range cases {
		if _, err := ReadProgram(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadProgramTruncation(t *testing.T) {
	orig := compileShort(t, "df", smallCfg())
	var buf bytes.Buffer
	orig.WriteTo(&buf)
	full := buf.Bytes()
	for _, cut := range []int{8, len(full) / 2, len(full) - 1} {
		if _, err := ReadProgram(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	_ = model.ShortNames // keep model import meaningful if helpers change
}
