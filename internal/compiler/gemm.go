package compiler

import (
	"fmt"

	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/tensor"
)

// tiling holds the chosen GEMM tile shape.
type tiling struct {
	Tm, Tk, Tn int
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// fits checks the double-buffered SPM footprint of a candidate tile: A
// (Tm×Tk), B (Tk×Tn) and C (Tm×Tn) each need two buffers so transfers
// overlap compute.
func (st *compileState) fits(tm, tk, tn int) bool {
	elems := uint64(tm)*uint64(tk) + uint64(tk)*uint64(tn) + uint64(tm)*uint64(tn)
	return 2*elems*model.ElemBytes <= st.cfg.SPM.CapacityBytes
}

// chooseTiling picks the tile shape: grow Tm/Tn alternately (they divide
// the number of re-read passes over B/A respectively, so they dominate
// traffic), then deepen Tk (which only improves array-fill amortization).
func (st *compileState) chooseTiling(m, k, n int) (tiling, error) {
	t := tiling{
		Tm: min(m, st.cfg.Array.Rows),
		Tk: min(k, 64),
		Tn: min(n, st.cfg.Array.Cols),
	}
	if !st.fits(t.Tm, t.Tk, t.Tn) {
		// Shrink Tk as far as needed; tiles of one array pass must fit.
		for t.Tk > 1 && !st.fits(t.Tm, t.Tk, t.Tn) {
			t.Tk /= 2
		}
		if !st.fits(t.Tm, t.Tk, t.Tn) {
			return t, fmt.Errorf("SPM too small for a single %dx%dx%d array tile", t.Tm, t.Tk, t.Tn)
		}
	}
	for grew := true; grew; {
		grew = false
		if t.Tm < m && st.fits(min(2*t.Tm, m), t.Tk, t.Tn) {
			t.Tm = min(2*t.Tm, m)
			grew = true
		}
		if t.Tn < n && st.fits(t.Tm, t.Tk, min(2*t.Tn, n)) {
			t.Tn = min(2*t.Tn, n)
			grew = true
		}
	}
	for t.Tk < k && st.fits(t.Tm, min(2*t.Tk, k), t.Tn) {
		t.Tk = min(2*t.Tk, k)
	}
	return t, nil
}

// bTileSegments returns the DRAM segments of weight tile (ki,ni). By
// default weights sit in row-major order, so a Tk×Tn tile is Tk strided
// row slices; the PretiledWeights ablation stores each tile contiguously,
// restoring counter-line spatial locality.
func (st *compileState) bTileSegments(bTen tensor.Tensor, l *model.Layer, t tiling, nT, ki, ni, tk, tn int) []isa.Segment {
	bBytes := uint64(tk) * uint64(tn) * model.ElemBytes
	if st.cfg.PretiledWeights || nT == 1 {
		// Contiguous tile (explicitly pre-tiled, or full-width rows).
		addr := bTen.Addr + (uint64(ki)*uint64(nT)+uint64(ni))*uint64(t.Tk)*uint64(t.Tn)*model.ElemBytes
		if addr+bBytes > bTen.End() {
			if bBytes > bTen.Bytes {
				bBytes = bTen.Bytes
			}
			addr = bTen.End() - bBytes
		}
		return []isa.Segment{{Addr: addr, Bytes: bBytes}}
	}
	segs := make([]isa.Segment, 0, tk)
	rowBytes := uint64(l.N) * model.ElemBytes
	segBytes := uint64(tn) * model.ElemBytes
	for r := 0; r < tk; r++ {
		off := (uint64(ki*t.Tk)+uint64(r))*rowBytes + uint64(ni*t.Tn)*model.ElemBytes
		segs = append(segs, clampSeg(bTen, off, segBytes))
	}
	return segs
}

// compileGEMM lowers one GEMM layer with loop order (mi, ni, ki): the C
// tile accumulates in the scratchpad across the k loop and is written out
// once. B tiles are re-streamed per mi pass unless the whole weight tensor
// fits on-chip (bResident); the A row strip is re-read per ni pass.
func (st *compileState) compileGEMM(li int, l *model.Layer) error {
	t, err := st.chooseTiling(l.M, l.K, l.N)
	if err != nil {
		return err
	}
	mT, nT, kT := ceilDiv(l.M, t.Tm), ceilDiv(l.N, t.Tn), ceilDiv(l.K, t.Tk)

	aTen := st.producerTensor(l.Inputs[0])
	aDep := st.producerDep(l.Inputs[0])
	aVer := st.readVersion(aTen.ID)
	// aRowBytes is the effective DRAM bytes per output row of the im2col
	// view: conv layers re-read each input element once per full pass
	// thanks to the hardware im2col block. It is capped by the producer
	// tensor itself (activation×activation GEMMs count both operands in
	// IfmapBytes, but the strip reads only the first).
	effIn := l.IfmapBytes
	if effIn == 0 || effIn > aTen.Bytes {
		effIn = aTen.Bytes
	}
	aRowBytes := effIn / uint64(l.M)
	if aRowBytes == 0 {
		aRowBytes = 1
	}

	var bTen tensor.Tensor
	var bVer uint64
	hasB := l.WeightBytes > 0
	if hasB {
		bTen = st.alloc(l.Name+".w", l.WeightBytes)
		bVer = st.table.Bump(bTen.ID) // initialization wrote the weights
	} else {
		// Activation×activation GEMM (attention): B is the second input.
		if len(l.Inputs) < 2 {
			// Self-product of a single producer (scores over one tensor).
			bTen = aTen
			bVer = aVer
		} else {
			bTen = st.producerTensor(l.Inputs[1])
			bVer = st.readVersion(bTen.ID)
			aDep = append(aDep, st.producerDep(l.Inputs[1])...)
		}
	}
	// bResident: the whole weight tensor plus double-buffered A/C tiles
	// fit on-chip, so B is loaded once instead of once per mi pass.
	bResident := hasB && st.cfg.SPM.Fits(
		bTen.Bytes,
		2*uint64(t.Tm)*uint64(t.Tk)*model.ElemBytes,
		2*uint64(t.Tm)*uint64(t.Tn)*model.ElemBytes)

	out := st.alloc(l.Name+".out", l.OfmapBytes)
	bump := st.expandOutput(out, mT*nT)
	outRowBytes := l.OfmapBytes / uint64(l.M)
	if outRowBytes == 0 {
		outRowBytes = 1
	}

	tr := &st.prog.Trace
	var bLoad int32 = -1
	if bResident {
		bLoad = tr.Append(isa.Instr{
			Op: isa.OpMvIn, Tensor: bTen.ID, Version: bVer, Layer: li,
			Segments: []isa.Segment{{Addr: bTen.Addr, Bytes: bTen.Bytes}},
			Deps:     aDep,
		})
	}
	// bTileBytes uses the pre-tiled weight layout: the compiler stores
	// each (ki,ni) weight tile contiguously in DRAM (standard practice),
	// so a tile is one segment.
	//
	// iterComputes paces the DMA: the mvins of iteration j depend on the
	// compute of iteration j-2, so the DMA prefetches exactly one tile
	// ahead — the double-buffering discipline of Sec. II-C.
	var iterComputes []int32
	for mi := 0; mi < mT; mi++ {
		tm := min(t.Tm, l.M-mi*t.Tm)
		stripBase := aTen.Addr + uint64(mi*t.Tm)*aRowBytes
		stripBytes := uint64(tm) * aRowBytes
		for ni := 0; ni < nT; ni++ {
			tn := min(t.Tn, l.N-ni*t.Tn)
			var lastCompute int32 = -1
			for ki := 0; ki < kT; ki++ {
				tk := min(t.Tk, l.K-ki*t.Tk)
				computeDeps := make([]int32, 0, 2)
				iterDeps := aDep
				if len(iterComputes) >= 2 {
					iterDeps = append(append([]int32{}, aDep...), iterComputes[len(iterComputes)-2])
				}

				// A slice: the k-th horizontal slice of this row strip.
				aBytes := stripBytes * uint64(tk) / uint64(l.K)
				if aBytes == 0 {
					aBytes = 1
				}
				aOff := stripBase - aTen.Addr + stripBytes*uint64(ki*t.Tk)/uint64(l.K)
				aIn := tr.Append(isa.Instr{
					Op: isa.OpMvIn, Tensor: aTen.ID, Version: aVer, Layer: li,
					Segments: []isa.Segment{clampSeg(aTen, aOff, aBytes)},
					Deps:     iterDeps,
				})
				computeDeps = append(computeDeps, aIn)

				if bResident {
					computeDeps = append(computeDeps, bLoad)
				} else {
					bIn := tr.Append(isa.Instr{
						Op: isa.OpMvIn, Tensor: bTen.ID, Version: bVer, Layer: li,
						Segments: st.bTileSegments(bTen, l, t, nT, ki, ni, tk, tn),
						Deps:     iterDeps,
					})
					computeDeps = append(computeDeps, bIn)
				}

				lastCompute = tr.Append(isa.Instr{
					Op: isa.OpCompute, Layer: li,
					Cycles: st.cfg.Array.TileCycles(tm, tk, tn),
					Deps:   computeDeps,
				})
				iterComputes = append(iterComputes, lastCompute)
			}

			// Write the finished C tile: tm rows of tn columns, strided
			// across the row-major ofmap.
			// The tile's output slice: layers whose DRAM ofmap is smaller
			// than the GEMM M×N surface (LSTM/GRU gate reductions) write
			// proportionally less; conv/FC write the exact tile.
			ver, vtile := bump(mi*nT + ni)
			var segs []isa.Segment
			rowSeg := outRowBytes * uint64(tn) / uint64(l.N)
			if rowSeg == 0 {
				rowSeg = 1
			}
			if nT == 1 {
				// Full-width tile: the rows are contiguous in the ofmap.
				addr := out.Addr + uint64(mi*t.Tm)*outRowBytes
				bytes := uint64(tm) * outRowBytes
				if addr+bytes > out.End() {
					addr = out.End() - bytes
				}
				segs = []isa.Segment{{Addr: addr, Bytes: bytes}}
			} else {
				segs = make([]isa.Segment, 0, tm)
				colOff := outRowBytes * uint64(ni*t.Tn) / uint64(l.N)
				for r := 0; r < tm; r++ {
					addr := out.Addr + uint64(mi*t.Tm+r)*outRowBytes + colOff
					if addr+rowSeg > out.End() {
						addr = out.End() - rowSeg
					}
					segs = append(segs, isa.Segment{Addr: addr, Bytes: rowSeg})
				}
			}
			tr.Append(isa.Instr{
				Op: isa.OpMvOut, Tensor: out.ID, Tile: vtile, Version: ver, Layer: li,
				Segments: segs,
				Deps:     []int32{lastCompute},
			})
		}
	}
	st.layerOut = append(st.layerOut, out.ID)
	return st.mergeOutput(out, mT*nT)
}
