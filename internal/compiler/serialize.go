package compiler

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tnpu/internal/isa"
	"tnpu/internal/tensor"
)

// Binary program format: a compiled trace is a stable artifact worth
// shipping between tools (compile once with tnpu-trace -save, replay in
// external simulators or tests). The encoding is little-endian with a
// magic/version header; strings are length-prefixed.

const (
	programMagic   = 0x54_4E_50_55 // "TNPU"
	programVersion = 1
)

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) u8(v uint8) { c.w.WriteByte(v); c.n++ }
func (c *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.w.Write(b[:])
	c.n += 4
}
func (c *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.w.Write(b[:])
	c.n += 8
}
func (c *countingWriter) str(s string) {
	c.u32(uint32(len(s)))
	c.w.WriteString(s)
	c.n += int64(len(s))
}

// WriteTo serializes the program (trace, tensors, layer ranges). The
// version table is not serialized: version numbers are already embedded
// in the instructions; the table's peak-storage statistic is stored as a
// scalar. Implements io.WriterTo.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	c := &countingWriter{w: bw}
	c.u32(programMagic)
	c.u32(programVersion)
	c.u64(p.MemoryTop)
	peak := 0
	if p.Table != nil {
		peak = p.Table.PeakStorageBytes()
	}
	c.u64(uint64(peak))

	c.u32(uint32(len(p.Tensors)))
	for _, t := range p.Tensors {
		c.u32(uint32(t.ID))
		c.str(t.Name)
		c.u64(t.Addr)
		c.u64(t.Bytes)
	}

	c.u32(uint32(len(p.LayerFirst)))
	for i := range p.LayerFirst {
		c.u32(uint32(p.LayerFirst[i]))
		c.u32(uint32(p.LayerLast[i]))
	}

	c.u32(uint32(len(p.Trace.Instrs)))
	for i := range p.Trace.Instrs {
		in := &p.Trace.Instrs[i]
		c.u8(uint8(in.Op))
		c.u32(uint32(in.Tensor))
		c.u32(uint32(in.Tile))
		c.u64(in.Version)
		c.u64(in.Cycles)
		c.u32(uint32(in.Layer))
		c.u32(uint32(len(in.Segments)))
		for _, s := range in.Segments {
			c.u64(s.Addr)
			c.u64(s.Bytes)
		}
		c.u32(uint32(len(in.Deps)))
		for _, d := range in.Deps {
			c.u32(uint32(d))
		}
	}
	if err := bw.Flush(); err != nil {
		return c.n, err
	}
	return c.n, nil
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) read(b []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, b)
}
func (r *reader) u8() uint8 { var b [1]byte; r.read(b[:]); return b[0] }
func (r *reader) u32() uint32 {
	var b [4]byte
	r.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}
func (r *reader) u64() uint64 {
	var b [8]byte
	r.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}
func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n > 1<<20 {
		if r.err == nil {
			r.err = fmt.Errorf("compiler: implausible string length %d", n)
		}
		return ""
	}
	b := make([]byte, n)
	r.read(b)
	return string(b)
}

// ReadProgram deserializes a program written by WriteTo. The returned
// program has no Model or Table attached (its trace is self-contained);
// Trace.Validate is run before returning.
func ReadProgram(src io.Reader) (*Program, error) {
	r := &reader{r: bufio.NewReader(src)}
	if magic := r.u32(); r.err == nil && magic != programMagic {
		return nil, fmt.Errorf("compiler: bad magic %#x", magic)
	}
	if v := r.u32(); r.err == nil && v != programVersion {
		return nil, fmt.Errorf("compiler: unsupported program version %d", v)
	}
	p := &Program{Table: tensor.NewTable()}
	p.MemoryTop = r.u64()
	_ = r.u64() // peak storage statistic (informational)

	nT := r.u32()
	if r.err == nil && nT > 1<<20 {
		return nil, fmt.Errorf("compiler: implausible tensor count %d", nT)
	}
	for i := uint32(0); i < nT && r.err == nil; i++ {
		t := tensor.Tensor{ID: tensor.ID(r.u32()), Name: r.str(), Addr: r.u64(), Bytes: r.u64()}
		p.Tensors = append(p.Tensors, t)
	}

	nL := r.u32()
	if r.err == nil && nL > 1<<20 {
		return nil, fmt.Errorf("compiler: implausible layer count %d", nL)
	}
	for i := uint32(0); i < nL && r.err == nil; i++ {
		p.LayerFirst = append(p.LayerFirst, int32(r.u32()))
		p.LayerLast = append(p.LayerLast, int32(r.u32()))
	}

	nI := r.u32()
	if r.err == nil && nI > 1<<26 {
		return nil, fmt.Errorf("compiler: implausible instruction count %d", nI)
	}
	for i := uint32(0); i < nI && r.err == nil; i++ {
		in := isa.Instr{
			Op:      isa.Op(r.u8()),
			Tensor:  tensor.ID(r.u32()),
			Tile:    int(r.u32()),
			Version: r.u64(),
			Cycles:  r.u64(),
			Layer:   int(r.u32()),
		}
		nS := r.u32()
		if r.err == nil && nS > 1<<22 {
			return nil, fmt.Errorf("compiler: implausible segment count %d", nS)
		}
		for s := uint32(0); s < nS && r.err == nil; s++ {
			in.Segments = append(in.Segments, isa.Segment{Addr: r.u64(), Bytes: r.u64()})
		}
		nD := r.u32()
		if r.err == nil && nD > 1<<22 {
			return nil, fmt.Errorf("compiler: implausible dep count %d", nD)
		}
		for d := uint32(0); d < nD && r.err == nil; d++ {
			in.Deps = append(in.Deps, int32(r.u32()))
		}
		p.Trace.Instrs = append(p.Trace.Instrs, in)
	}
	if r.err != nil {
		return nil, fmt.Errorf("compiler: truncated program: %w", r.err)
	}
	if err := p.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: loaded program invalid: %w", err)
	}
	return p, nil
}
