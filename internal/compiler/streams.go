package compiler

import (
	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/tensor"
)

// nextRand steps the compile-time PRNG used for embedding row indices
// (token ids are data-dependent at runtime; a fixed-seed LCG keeps the
// simulation deterministic while preserving the scattered access pattern).
func (st *compileState) nextRand() uint64 {
	st.rng = st.rng*6364136223846793005 + 1442695040888963407
	return st.rng >> 11
}

// compileGather lowers an embedding lookup: each of l.Rows tokens reads a
// RowBytes row at a pseudo-random offset in the table — many small mvins
// with low spatial locality, the access pattern that defeats counter
// caching in sent/tf (Sec. III-B). Gathered rows are staged in the
// scratchpad and written out in contiguous chunks.
func (st *compileState) compileGather(li int, l *model.Layer) error {
	table := st.alloc(l.Name+".w", l.WeightBytes)
	tableVer := st.table.Bump(table.ID) // initialization loaded the table
	out := st.alloc(l.Name+".out", l.OfmapBytes)

	vocab := l.WeightBytes / uint64(l.RowBytes)
	chunkBytes := st.cfg.SPM.TileBudget(2)
	rowsPerChunk := int(chunkBytes) / l.RowBytes
	if rowsPerChunk < 1 {
		rowsPerChunk = 1
	}
	chunks := ceilDiv(l.Rows, rowsPerChunk)
	bump := st.expandOutput(out, chunks)

	dep := st.producerDep(l.Inputs[0]) // token ids from the producer
	tr := &st.prog.Trace
	row := 0
	var chunkOuts []int32
	for c := 0; c < chunks; c++ {
		chunkDeps := dep
		if len(chunkOuts) >= 2 {
			chunkDeps = append(append([]int32{}, dep...), chunkOuts[len(chunkOuts)-2])
		}
		var lastIn int32 = -1
		chunkRows := min(rowsPerChunk, l.Rows-row)
		for r := 0; r < chunkRows; r++ {
			idx := st.nextRand() % vocab
			lastIn = tr.Append(isa.Instr{
				Op: isa.OpMvIn, Tensor: table.ID, Version: tableVer, Layer: li,
				Segments: []isa.Segment{{Addr: table.Addr + idx*uint64(l.RowBytes), Bytes: uint64(l.RowBytes)}},
				Deps:     chunkDeps,
			})
		}
		// Output offsets are proportional to the ofmap: sampled gathers
		// (decode-time lookups) keep only a fraction of the fetched rows.
		ver, vtile := bump(c)
		outAddr := out.Addr + l.OfmapBytes*uint64(c)/uint64(chunks)
		outBytes := out.Addr + l.OfmapBytes*uint64(c+1)/uint64(chunks) - outAddr
		if outBytes == 0 {
			outBytes = 1
		}
		chunkOuts = append(chunkOuts, tr.Append(isa.Instr{
			Op: isa.OpMvOut, Tensor: out.ID, Tile: vtile, Version: ver, Layer: li,
			Segments: []isa.Segment{{Addr: outAddr, Bytes: outBytes}},
			Deps:     []int32{lastIn},
		}))
		row += chunkRows
	}
	st.layerOut = append(st.layerOut, out.ID)
	return st.mergeOutput(out, chunks)
}

// compileEltwise lowers a residual add: stream matching chunks of both
// inputs through the scratchpad, one vector op per chunk.
func (st *compileState) compileEltwise(li int, l *model.Layer) error {
	aTen := st.producerTensor(l.Inputs[0])
	bTen := aTen
	deps := st.producerDep(l.Inputs[0])
	if len(l.Inputs) > 1 {
		bTen = st.producerTensor(l.Inputs[1])
		deps = append(deps, st.producerDep(l.Inputs[1])...)
	}
	aVer := st.readVersion(aTen.ID)
	bVer := st.readVersion(bTen.ID)
	out := st.alloc(l.Name+".out", l.OfmapBytes)

	chunk := st.cfg.SPM.TileBudget(3)
	chunks := int((l.OfmapBytes + chunk - 1) / chunk)
	bump := st.expandOutput(out, chunks)
	tr := &st.prog.Trace
	var chunkComputes []int32
	for c := 0; c < chunks; c++ {
		off := uint64(c) * chunk
		bytes := chunk
		if off+bytes > l.OfmapBytes {
			bytes = l.OfmapBytes - off
		}
		chunkDeps := deps
		if len(chunkComputes) >= 2 {
			chunkDeps = append(append([]int32{}, deps...), chunkComputes[len(chunkComputes)-2])
		}
		aIn := tr.Append(isa.Instr{
			Op: isa.OpMvIn, Tensor: aTen.ID, Version: aVer, Layer: li,
			Segments: []isa.Segment{clampSeg(aTen, off, bytes)},
			Deps:     chunkDeps,
		})
		bIn := tr.Append(isa.Instr{
			Op: isa.OpMvIn, Tensor: bTen.ID, Version: bVer, Layer: li,
			Segments: []isa.Segment{clampSeg(bTen, off, bytes)},
			Deps:     chunkDeps,
		})
		comp := tr.Append(isa.Instr{
			Op: isa.OpCompute, Layer: li,
			Cycles: st.cfg.Array.VectorCycles(int(bytes / model.ElemBytes)),
			Deps:   []int32{aIn, bIn},
		})
		chunkComputes = append(chunkComputes, comp)
		ver, vtile := bump(c)
		tr.Append(isa.Instr{
			Op: isa.OpMvOut, Tensor: out.ID, Tile: vtile, Version: ver, Layer: li,
			Segments: []isa.Segment{{Addr: out.Addr + off, Bytes: bytes}},
			Deps:     []int32{comp},
		})
	}
	st.layerOut = append(st.layerOut, out.ID)
	return st.mergeOutput(out, chunks)
}

// clampSeg builds a segment of (off, bytes) within t, sliding or shrinking
// it to stay inside the tensor when a consumer's chunking overruns a
// smaller producer.
func clampSeg(t tensor.Tensor, off, bytes uint64) isa.Segment {
	if bytes > t.Bytes {
		bytes = t.Bytes
	}
	addr := t.Addr + off
	if addr+bytes > t.End() {
		addr = t.End() - bytes
	}
	return isa.Segment{Addr: addr, Bytes: bytes}
}

// compilePool lowers pooling: stream the input, write the reduced output.
func (st *compileState) compilePool(li int, l *model.Layer) error {
	in := st.producerTensor(l.Inputs[0])
	inVer := st.readVersion(in.ID)
	deps := st.producerDep(l.Inputs[0])
	out := st.alloc(l.Name+".out", l.OfmapBytes)

	chunk := st.cfg.SPM.TileBudget(2)
	chunks := int((l.IfmapBytes + chunk - 1) / chunk)
	bump := st.expandOutput(out, chunks)
	outChunk := l.OfmapBytes / uint64(chunks)
	if outChunk == 0 {
		outChunk = l.OfmapBytes
	}
	tr := &st.prog.Trace
	var poolComputes []int32
	for c := 0; c < chunks; c++ {
		off := uint64(c) * chunk
		bytes := chunk
		if off+bytes > l.IfmapBytes {
			bytes = l.IfmapBytes - off
		}
		chunkDeps := deps
		if len(poolComputes) >= 2 {
			chunkDeps = append(append([]int32{}, deps...), poolComputes[len(poolComputes)-2])
		}
		aIn := tr.Append(isa.Instr{
			Op: isa.OpMvIn, Tensor: in.ID, Version: inVer, Layer: li,
			Segments: []isa.Segment{clampSeg(in, off, bytes)},
			Deps:     chunkDeps,
		})
		comp := tr.Append(isa.Instr{
			Op: isa.OpCompute, Layer: li,
			Cycles: st.cfg.Array.VectorCycles(int(bytes / model.ElemBytes)),
			Deps:   []int32{aIn},
		})
		poolComputes = append(poolComputes, comp)
		ver, vtile := bump(c)
		oOff := uint64(c) * outChunk
		oBytes := outChunk
		if c == chunks-1 {
			oBytes = l.OfmapBytes - oOff
		}
		tr.Append(isa.Instr{
			Op: isa.OpMvOut, Tensor: out.ID, Tile: vtile, Version: ver, Layer: li,
			Segments: []isa.Segment{{Addr: out.Addr + oOff, Bytes: oBytes}},
			Deps:     []int32{comp},
		})
	}
	st.layerOut = append(st.layerOut, out.ID)
	return st.mergeOutput(out, chunks)
}
