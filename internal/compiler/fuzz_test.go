package compiler

import (
	"testing"

	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/spm"
	"tnpu/internal/systolic"
)

// FuzzCompileRandomGraphs builds arbitrary (but well-formed) layer graphs
// from fuzz input and requires compilation to succeed and produce a trace
// whose version discipline is internally consistent: every read of a
// produced block carries the producing mvout's version (checked here
// without importing tracecheck, which would create an import cycle in
// reverse — the standalone linter covers compiled zoo models).
func FuzzCompileRandomGraphs(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{10, 0, 200, 40, 9, 100, 3, 7})
	f.Add([]byte{255, 255, 255})

	f.Fuzz(func(t *testing.T, spec []byte) {
		m := graphFromSpec(spec)
		if m == nil {
			return
		}
		cfg := Config{Array: systolic.Array{Rows: 16, Cols: 16}, SPM: spm.SPM{CapacityBytes: 64 << 10}}
		prog, err := Compile(m, cfg)
		if err != nil {
			t.Fatalf("compile of valid graph failed: %v\nmodel: %+v", err, m.Layers)
		}
		if err := prog.Trace.Validate(); err != nil {
			t.Fatalf("invalid trace: %v", err)
		}
		// Version discipline: replay the trace's writes per block; every
		// mvin of a non-initialization tensor must see its writer's
		// version on the vast majority of blocks.
		written := make(map[uint64]uint64)
		for _, ten := range prog.Tensors {
			if ten.Name == "input" || (len(ten.Name) > 2 && ten.Name[len(ten.Name)-2:] == ".w") {
				for blk := uint64(0); blk < ten.Blocks(); blk++ {
					written[ten.Addr+blk*64] = 1
				}
			}
		}
		var aligned, boundary, unwritten int
		for i := range prog.Trace.Instrs {
			in := &prog.Trace.Instrs[i]
			for _, seg := range in.Segments {
				for addr := seg.Addr &^ 63; addr < seg.Addr+seg.Bytes; addr += 64 {
					switch in.Op {
					case isa.OpMvOut:
						written[addr] = in.Version
					case isa.OpMvIn:
						v, ok := written[addr]
						switch {
						case !ok:
							unwritten++
						case v == in.Version:
							aligned++
						default:
							boundary++
						}
					}
				}
			}
		}
		if unwritten > 0 {
			t.Fatalf("%d reads of never-written blocks", unwritten)
		}
		if aligned == 0 || boundary > aligned/4 {
			t.Fatalf("version discipline degenerate: aligned=%d boundary=%d", aligned, boundary)
		}
	})
}

// graphFromSpec deterministically derives a small valid layer graph from
// fuzz bytes. Returns nil for unusable specs.
func graphFromSpec(spec []byte) *model.Model {
	if len(spec) < 2 {
		return nil
	}
	m := &model.Model{Name: "fuzz", Short: "fz", InputBytes: 2 * (uint64(spec[0]) + 1) * 8}
	prev := -1
	layers := int(spec[1]%4) + 1
	for li := 0; li < layers; li++ {
		b := func(i int) int {
			if i < len(spec) {
				return int(spec[i])
			}
			return li*7 + i
		}
		base := 2 + li*3
		switch b(base) % 4 {
		case 0:
			m.Layers = append(m.Layers, model.FC("fc", b(base+1)%32+1, b(base+2)%64+1, b(base+1)%48+1, prev))
		case 1:
			h := b(base+1)%12 + 4
			c := b(base+2)%8 + 1
			m.Layers = append(m.Layers, model.Conv("conv", h, h, c, 3, 3, b(base+1)%16+1, 1, true, prev))
		case 2:
			m.Layers = append(m.Layers, model.Embedding("emb", b(base+1)%500+64, (b(base+2)%8+1)*16, b(base+1)%20+1, prev))
		case 3:
			elems := (b(base+1)%64 + 1) * 32
			m.Layers = append(m.Layers, model.Pool("pool", elems, elems/2+1, prev))
		}
		prev = li
	}
	if m.Validate() != nil {
		return nil
	}
	return m
}
