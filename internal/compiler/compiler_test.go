package compiler

import (
	"testing"

	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/spm"
	"tnpu/internal/systolic"
)

// smallCfg is the paper's Small NPU (Exynos 990-class).
func smallCfg() Config {
	return Config{Array: systolic.Array{Rows: 32, Cols: 32}, SPM: spm.SPM{CapacityBytes: 480 << 10}}
}

// largeCfg is the Large NPU (Ethos-N77-class).
func largeCfg() Config {
	return Config{Array: systolic.Array{Rows: 45, Cols: 45}, SPM: spm.SPM{CapacityBytes: 1 << 20}}
}

func compileShort(t *testing.T, short string, cfg Config) *Program {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileAllModelsBothConfigs(t *testing.T) {
	for _, cfg := range []Config{smallCfg(), largeCfg()} {
		for _, m := range model.All() {
			p, err := Compile(m, cfg)
			if err != nil {
				t.Errorf("%s: %v", m.Short, err)
				continue
			}
			if err := p.Trace.Validate(); err != nil {
				t.Errorf("%s: invalid trace: %v", m.Short, err)
			}
			s := p.Trace.Summarize()
			if s.MvIns == 0 || s.MvOuts == 0 {
				t.Errorf("%s: empty trace summary %+v", m.Short, s)
			}
			if s.Layers != len(m.Layers) {
				t.Errorf("%s: trace covers %d layers, want %d", m.Short, s.Layers, len(m.Layers))
			}
			// Output traffic must cover every layer's ofmap exactly once.
			var ofmap uint64
			for i := range m.Layers {
				ofmap += m.Layers[i].OfmapBytes
			}
			if s.BytesOut < ofmap-ofmap/50 || s.BytesOut > ofmap+ofmap/8 {
				t.Errorf("%s: mvout bytes %d vs total ofmap %d", m.Short, s.BytesOut, ofmap)
			}
			// Input traffic at least reads each GEMM weight once (plus
			// reuse); embedding tables are only sampled by gathers.
			var gemmWeights uint64
			for i := range m.Layers {
				if m.Layers[i].Kind == model.KindGEMM {
					gemmWeights += m.Layers[i].WeightBytes
				}
			}
			if s.BytesIn < gemmWeights {
				t.Errorf("%s: mvin bytes %d below GEMM weights %d", m.Short, s.BytesIn, gemmWeights)
			}
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := compileShort(t, "sent", smallCfg())
	b := compileShort(t, "sent", smallCfg())
	if len(a.Trace.Instrs) != len(b.Trace.Instrs) {
		t.Fatal("non-deterministic instruction count")
	}
	for i := range a.Trace.Instrs {
		x, y := &a.Trace.Instrs[i], &b.Trace.Instrs[i]
		if x.Op != y.Op || x.Version != y.Version || x.TotalBytes() != y.TotalBytes() ||
			len(x.Segments) != len(y.Segments) ||
			(len(x.Segments) > 0 && x.Segments[0] != y.Segments[0]) {
			t.Fatalf("instr %d differs: %v vs %v", i, x, y)
		}
	}
}

func TestVersionsMergeAfterEachLayer(t *testing.T) {
	p := compileShort(t, "alex", smallCfg())
	// After compilation every surviving tensor must be merged (version
	// table back in tensor-unit state) — the Fig. 9 end state.
	for _, ten := range p.Tensors {
		if p.Table.Registered(ten.ID) && p.Table.Expanded(ten.ID) {
			t.Errorf("tensor %s left tile-expanded", ten.Name)
		}
	}
}

func TestWeightsVersionOne(t *testing.T) {
	p := compileShort(t, "alex", smallCfg())
	for i := range p.Trace.Instrs {
		in := &p.Trace.Instrs[i]
		if in.Op != isa.OpMvIn {
			continue
		}
		name := p.Tensors[in.Tensor].Name
		if len(name) > 2 && name[len(name)-2:] == ".w" && in.Version != 1 {
			t.Errorf("weight mvin of %s has version %d, want 1 (written once at init)", name, in.Version)
		}
	}
}

func TestActivationVersionsAreFresh(t *testing.T) {
	// Every mvin of an activation must carry the version its producer's
	// mvouts assigned — replay protection depends on this equality.
	p := compileShort(t, "res", smallCfg())
	lastWritten := map[uint32]uint64{}
	for i := range p.Trace.Instrs {
		in := &p.Trace.Instrs[i]
		switch in.Op {
		case isa.OpMvOut:
			lastWritten[uint32(in.Tensor)] = in.Version
		case isa.OpMvIn:
			if want, ok := lastWritten[uint32(in.Tensor)]; ok && in.Version != want {
				t.Fatalf("instr %d reads tensor %d at version %d, last written %d", i, in.Tensor, in.Version, want)
			}
		}
	}
}

func TestGatherIsFineGrained(t *testing.T) {
	p := compileShort(t, "sent", smallCfg())
	emb, ok := p.TensorByName("embed.w")
	if !ok {
		t.Fatal("embedding table tensor missing")
	}
	var rows int
	addrs := map[uint64]bool{}
	for i := range p.Trace.Instrs {
		in := &p.Trace.Instrs[i]
		if in.Op == isa.OpMvIn && in.Tensor == emb.ID {
			rows++
			if in.TotalBytes() != 256 {
				t.Fatalf("gather row of %d bytes, want 256", in.TotalBytes())
			}
			addrs[in.Segments[0].Addr] = true
		}
	}
	if rows != 12288 {
		t.Errorf("gather rows = %d, want 12288", rows)
	}
	// The rows must be scattered, not a handful of hot lines.
	if len(addrs) < 2800 {
		t.Errorf("only %d distinct row addresses; gathers not scattered", len(addrs))
	}
}

func TestPerTensorVersionAblation(t *testing.T) {
	cfg := smallCfg()
	cfg.PerTensorVersions = true
	p := compileShort(t, "alex", cfg)
	for i := range p.Trace.Instrs {
		if in := &p.Trace.Instrs[i]; in.Op == isa.OpMvOut && in.Tile != 0 {
			t.Fatalf("per-tensor mode emitted tile %d", in.Tile)
		}
	}
	if p.Table.PeakStorageBytes() > compileShort(t, "alex", smallCfg()).Table.PeakStorageBytes() {
		t.Error("per-tensor mode must not use more version storage than per-tile")
	}
	// On a tile-heavy model the difference is strict.
	cfgPT := smallCfg()
	cfgPT.PerTensorVersions = true
	if compileShort(t, "res", cfgPT).Table.PeakStorageBytes() >= compileShort(t, "res", smallCfg()).Table.PeakStorageBytes() {
		t.Error("per-tile expansion should dominate peak storage on res")
	}
}

func TestVersionTableStorageScale(t *testing.T) {
	// Sec. IV-D: version storage is KB-scale — ~1.3KB on average, 7.5KB
	// max (tf). Our reconstruction must stay in the same regime.
	var peaks []int
	for _, m := range model.All() {
		p, err := Compile(m, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, p.Table.PeakStorageBytes())
		if p.Table.PeakStorageBytes() > 64<<10 {
			t.Errorf("%s: version table peak %dB is not KB-scale", m.Short, p.Table.PeakStorageBytes())
		}
	}
	sum := 0
	for _, p := range peaks {
		sum += p
	}
	if avg := sum / len(peaks); avg > 16<<10 {
		t.Errorf("average version-table peak %dB far above the paper's ~1.3KB", avg)
	}
}

func TestTilingFitsSPM(t *testing.T) {
	st := &compileState{cfg: smallCfg()}
	cases := []struct{ m, k, n int }{
		{3136, 4608, 512}, {1, 9216, 192}, {401408, 9, 1}, {256, 1377, 3456}, {64, 128, 256},
	}
	for _, c := range cases {
		tl, err := st.chooseTiling(c.m, c.k, c.n)
		if err != nil {
			t.Errorf("chooseTiling(%v): %v", c, err)
			continue
		}
		if !st.fits(tl.Tm, tl.Tk, tl.Tn) {
			t.Errorf("chooseTiling(%v) = %+v does not fit", c, tl)
		}
		if tl.Tm > c.m || tl.Tk > c.k || tl.Tn > c.n {
			t.Errorf("chooseTiling(%v) = %+v exceeds dims", c, tl)
		}
	}
}

func TestLargerSPMBiggerTiles(t *testing.T) {
	small := &compileState{cfg: smallCfg()}
	large := &compileState{cfg: largeCfg()}
	ts, _ := small.chooseTiling(3136, 4608, 512)
	tl, _ := large.chooseTiling(3136, 4608, 512)
	if uint64(tl.Tm)*uint64(tl.Tn) < uint64(ts.Tm)*uint64(ts.Tn) {
		t.Errorf("large SPM chose smaller tiles: %+v vs %+v", tl, ts)
	}
}

func TestLayerRanges(t *testing.T) {
	p := compileShort(t, "df", smallCfg())
	m, _ := model.ByShort("df")
	if len(p.LayerFirst) != len(m.Layers) || len(p.LayerLast) != len(m.Layers) {
		t.Fatal("layer ranges incomplete")
	}
	for li := range m.Layers {
		if p.LayerFirst[li] > p.LayerLast[li] {
			t.Errorf("layer %d empty range", li)
		}
		for idx := p.LayerFirst[li]; idx <= p.LayerLast[li]; idx++ {
			if p.Trace.Instrs[idx].Layer != li {
				t.Errorf("instr %d tagged layer %d inside range of %d", idx, p.Trace.Instrs[idx].Layer, li)
			}
		}
	}
}

func TestBadConfigRejected(t *testing.T) {
	m, _ := model.ByShort("df")
	if _, err := Compile(m, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	tiny := Config{Array: systolic.Array{Rows: 64, Cols: 64}, SPM: spm.SPM{CapacityBytes: 1024}}
	if _, err := Compile(m, tiny); err == nil {
		t.Error("SPM smaller than one array tile accepted")
	}
}

func TestMemoryLayoutDisjoint(t *testing.T) {
	p := compileShort(t, "goo", smallCfg())
	for i, a := range p.Tensors {
		for _, b := range p.Tensors[i+1:] {
			if a.Addr < b.End() && b.Addr < a.End() {
				t.Fatalf("tensors %s and %s overlap", a.Name, b.Name)
			}
		}
		if a.End() > p.MemoryTop {
			t.Fatalf("tensor %s beyond MemoryTop", a.Name)
		}
	}
}

func TestSegmentsWithinTensors(t *testing.T) {
	for _, short := range []string{"res", "sent", "tf", "mob"} {
		p := compileShort(t, short, smallCfg())
		for i := range p.Trace.Instrs {
			in := &p.Trace.Instrs[i]
			if !in.IsDMA() {
				continue
			}
			ten := p.Tensors[in.Tensor]
			for _, seg := range in.Segments {
				if seg.Addr < ten.Addr || seg.Addr+seg.Bytes > ten.End() {
					t.Fatalf("%s instr %d segment [%#x,%#x) outside tensor %s [%#x,%#x)",
						short, i, seg.Addr, seg.Addr+seg.Bytes, ten.Name, ten.Addr, ten.End())
				}
			}
		}
	}
}
