package hwcost

import (
	"math"
	"strings"
	"testing"
)

func TestTNPUMatchesPaper(t *testing.T) {
	s := Summarize(TNPUEngine())
	// Sec. V-E: 0.03632 mm^2, 0.035% of Exynos 990, 17.73 mW.
	if math.Abs(s.AreaMM2-0.03632) > 0.0005 {
		t.Errorf("area = %.5f mm^2, paper reports 0.03632", s.AreaMM2)
	}
	if math.Abs(100*s.SoCFraction-0.035) > 0.002 {
		t.Errorf("SoC fraction = %.4f%%, paper reports 0.035%%", 100*s.SoCFraction)
	}
	if math.Abs(s.PowerMW-17.73) > 0.3 {
		t.Errorf("power = %.2f mW, paper reports 17.73", s.PowerMW)
	}
}

func TestComponentTotals(t *testing.T) {
	c := Component{Count: 3, AreaMM2: 0.01, PowerMW: 2}
	if math.Abs(c.TotalArea()-0.03) > 1e-12 || math.Abs(c.TotalPower()-6) > 1e-12 {
		t.Error("component totals wrong")
	}
}

func TestBaselineCarriesMoreSRAM(t *testing.T) {
	var tnpuSRAM, baseSRAM float64
	for _, c := range TNPUEngine() {
		if strings.Contains(c.Name, "cache") {
			tnpuSRAM += c.TotalArea()
		}
	}
	for _, c := range BaselineEngine() {
		if strings.Contains(c.Name, "cache") {
			baseSRAM += c.TotalArea()
		}
	}
	// Tree-less drops the 4KB counter + 4KB hash caches.
	if baseSRAM <= tnpuSRAM {
		t.Errorf("baseline SRAM %.5f not above tree-less %.5f", baseSRAM, tnpuSRAM)
	}
	if math.Abs((baseSRAM-tnpuSRAM)-8*sramAreaPerKB) > 1e-9 {
		t.Errorf("SRAM delta should be exactly 8KB worth")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize(TNPUEngine())
	out := s.String()
	for _, want := range []string{"mm^2", "mW", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}

func TestInferenceEnergy(t *testing.T) {
	s := Summarize(TNPUEngine())
	// 100MB of traffic at 20pJ/B = 2mJ; engine at ~18mW for 10ms = 0.18mJ.
	mj := InferenceEnergy(100<<20, 27_500_000, 2_750_000_000, s)
	if mj < 1.5 || mj > 3.5 {
		t.Errorf("energy %.3f mJ outside sanity band", mj)
	}
	// More traffic means more energy, monotonically.
	if InferenceEnergy(200<<20, 27_500_000, 2_750_000_000, s) <= mj {
		t.Error("energy not monotone in traffic")
	}
	if InferenceEnergy(0, 0, 1, s) != 0 {
		t.Error("zero run should cost zero")
	}
}
