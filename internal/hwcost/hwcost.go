// Package hwcost reproduces the Sec. V-E hardware-overhead arithmetic: the
// area and power of the tree-less memory-protection engine — three AES
// engines (two for XTS, one spare lane), 512B of tweak/intermediate
// storage, the HMAC unit, and the 8KB MAC cache. Per-component constants
// are calibrated to the paper's published totals (0.03632 mm² and 17.73 mW
// at 40nm-class technology, 0.035% of an Exynos 990 die), with the cache
// numbers in CACTI's regime and the AES numbers in the regime of the
// 446 Gbps/W mobile AES accelerator the paper cites.
package hwcost

import "fmt"

// Component is one hardware block with its unit cost.
type Component struct {
	Name     string
	Count    int
	AreaMM2  float64 // per instance
	PowerMW  float64 // per instance at the highest performance point
	SizeNote string
}

// TotalArea returns Count * AreaMM2.
func (c Component) TotalArea() float64 { return float64(c.Count) * c.AreaMM2 }

// TotalPower returns Count * PowerMW.
func (c Component) TotalPower() float64 { return float64(c.Count) * c.PowerMW }

// ExynosAreaMM2 is the host SoC die area used for the percentage claim.
const ExynosAreaMM2 = 103.8

// sramAreaPerKB is the CACTI-style SRAM area (mm^2/KB) used for the
// metadata caches.
const sramAreaPerKB = 0.0018125

// sramPowerPerKB is the corresponding dynamic+leakage power (mW/KB).
const sramPowerPerKB = 0.4125

// TNPUEngine returns the tree-less engine's bill of materials.
func TNPUEngine() []Component {
	return []Component{
		{Name: "AES engine", Count: 3, AreaMM2: 0.0062, PowerMW: 4.4,
			SizeNote: "two XTS lanes + one for key/tweak refresh"},
		{Name: "tweak/intermediate storage", Count: 1, AreaMM2: 0.0009, PowerMW: 0.33,
			SizeNote: "512B registers"},
		{Name: "HMAC unit", Count: 1, AreaMM2: 0.00222, PowerMW: 1.1,
			SizeNote: "per-block MAC generate/verify"},
		{Name: "MAC cache", Count: 1, AreaMM2: 8 * sramAreaPerKB, PowerMW: 8 * sramPowerPerKB,
			SizeNote: "8KB"},
	}
}

// BaselineEngine returns the tree-based engine's extra metadata hardware
// for comparison: the counter and hash caches plus the tree-walk unit, on
// top of an AES-CTR datapath and the same MAC cache.
func BaselineEngine() []Component {
	return []Component{
		{Name: "AES engine", Count: 2, AreaMM2: 0.0062, PowerMW: 4.4,
			SizeNote: "OTP generation lanes"},
		{Name: "counter cache", Count: 1, AreaMM2: 4 * sramAreaPerKB, PowerMW: 4 * sramPowerPerKB,
			SizeNote: "4KB"},
		{Name: "hash cache", Count: 1, AreaMM2: 4 * sramAreaPerKB, PowerMW: 4 * sramPowerPerKB,
			SizeNote: "4KB"},
		{Name: "tree-walk unit", Count: 1, AreaMM2: 0.0031, PowerMW: 1.9,
			SizeNote: "SC-64 verify/update state machine"},
		{Name: "MAC cache", Count: 1, AreaMM2: 8 * sramAreaPerKB, PowerMW: 8 * sramPowerPerKB,
			SizeNote: "8KB"},
	}
}

// Summary aggregates a bill of materials.
type Summary struct {
	AreaMM2      float64
	PowerMW      float64
	SoCFraction  float64
	PerComponent []Component
}

// Summarize totals a component list against the Exynos die.
func Summarize(parts []Component) Summary {
	s := Summary{PerComponent: parts}
	for _, c := range parts {
		s.AreaMM2 += c.TotalArea()
		s.PowerMW += c.TotalPower()
	}
	s.SoCFraction = s.AreaMM2 / ExynosAreaMM2
	return s
}

// String renders the summary like the paper's prose.
func (s Summary) String() string {
	return fmt.Sprintf("area %.5f mm^2 (%.3f%% of Exynos 990), power %.2f mW",
		s.AreaMM2, 100*s.SoCFraction, s.PowerMW)
}

// DRAMPicojoulePerByte is the LPDDR4-class external-memory energy cost
// (I/O + array) per byte moved — the term security metadata traffic
// directly inflates.
const DRAMPicojoulePerByte = 20.0

// InferenceEnergy estimates the energy one inference spends on the memory
// system and the protection engine: DRAM traffic at DRAMPicojoulePerByte
// plus the engine's power integrated over the run. Returned in
// millijoules. Protection schemes pay twice — extra bytes AND extra
// cycles under the same engine power.
func InferenceEnergy(trafficBytes, cycles, freqHz uint64, engine Summary) float64 {
	dram := float64(trafficBytes) * DRAMPicojoulePerByte * 1e-12
	eng := engine.PowerMW * 1e-3 * float64(cycles) / float64(freqHz)
	return (dram + eng) * 1e3
}
