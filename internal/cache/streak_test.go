package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// cloneCache duplicates a cache's full tag state so a streak call can be
// checked against the per-line reference on a twin.
func cloneCache(c *Cache) *Cache {
	d := New(c.name, c.SizeBytes(), int(c.lineBytes), c.ways)
	for s := range c.lines {
		d.lines[s] = append(d.lines[s][:0], c.lines[s]...)
	}
	d.stats = c.stats
	return d
}

func sameState(t *testing.T, label string, a, b *Cache) {
	t.Helper()
	if !reflect.DeepEqual(a.lines, b.lines) {
		t.Fatalf("%s: line state diverged:\n%v\nvs\n%v", label, a.lines, b.lines)
	}
	if a.stats != b.stats {
		t.Fatalf("%s: stats diverged: %+v vs %+v", label, a.stats, b.stats)
	}
}

// TestAccessStreakMatchesAccess drives random streaks against the per-line
// reference on a twin cache: outcomes, tag state, LRU order, dirty bits,
// and statistics must match exactly. The tiny geometry (2 sets x 2 ways)
// forces every edge case — streaks that wrap the set array many times,
// aliasing within one streak, and eviction of a line the same streak
// touched earlier.
func TestAccessStreakMatchesAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New("streak", 256, 64, 2) // 2 sets, 2 ways
	ref := cloneCache(c)
	var out []Result
	for step := 0; step < 500; step++ {
		base := uint64(rng.Intn(16)) * 64
		n := 1 + rng.Intn(12) // up to 3x the whole cache: guaranteed aliasing
		write := rng.Intn(2) == 0
		out = c.AccessStreak(base, n, write, out[:0])
		for i := 0; i < n; i++ {
			want := ref.Access(base+uint64(i)*64, write)
			if out[i] != want {
				t.Fatalf("step %d line %d: streak result %+v, reference %+v", step, i, out[i], want)
			}
		}
		sameState(t, "after streak", c, ref)
		// Interleave individual accesses so streaks start from varied state.
		a := uint64(rng.Intn(16)) * 64
		if r1, r2 := c.Access(a, false), ref.Access(a, false); r1 != r2 {
			t.Fatalf("step %d: interleaved access diverged", step)
		}
	}
}

// TestAccessStreakEvictsEarlierLine pins the nastiest in-streak alias: a
// streak long enough to wrap the set array evicts — with writeback — a
// dirty line the same streak installed a few iterations earlier.
func TestAccessStreakEvictsEarlierLine(t *testing.T) {
	c := New("alias", 256, 64, 2) // 2 sets x 2 ways: lines 0,2 -> set 0
	out := c.AccessStreak(0, 6, true, nil)
	// Lines 0..5: set0 gets 0,2,4 and set1 gets 1,3,5. Line 4 must evict
	// line 0 (LRU of set 0), which this same streak dirtied.
	for i, want := range []Result{
		{}, {},
		{}, {},
		{Writeback: true, WritebackAddr: 0 * 64},
		{Writeback: true, WritebackAddr: 1 * 64},
	} {
		if out[i] != want {
			t.Fatalf("line %d: got %+v, want %+v", i, out[i], want)
		}
	}
	if c.Probe(0) || c.Probe(64) {
		t.Fatal("streak-evicted lines still resident")
	}
	if !c.Probe(4*64) || !c.Probe(5*64) {
		t.Fatal("streak tail not resident")
	}
	if s := c.Stats(); s.Lookups != 6 || s.Misses != 6 || s.Writebacks != 2 {
		t.Fatalf("stats = %+v, want 6 lookups / 6 misses / 2 writebacks", *s)
	}
}

// TestPeekVictimPredictsAccess checks PeekVictim against the Access that
// follows it, over random traffic: residency must predict the hit, the
// dirty-victim report must predict the writeback, and the peek itself must
// move no state and no counters.
func TestPeekVictimPredictsAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := New("peek", 256, 64, 2)
	for step := 0; step < 300; step++ {
		addr := uint64(rng.Intn(16)) * 64
		twin := cloneCache(c)
		resident, dirtyVictim, victim := c.PeekVictim(addr)
		sameState(t, "after peek", c, twin)
		res := c.Access(addr, rng.Intn(2) == 0)
		if res.Hit != resident {
			t.Fatalf("step %d: peek resident=%v but access hit=%v", step, resident, res.Hit)
		}
		if res.Writeback != dirtyVictim || (dirtyVictim && res.WritebackAddr != victim) {
			t.Fatalf("step %d: peek victim (%v,%#x) but access writeback (%v,%#x)",
				step, dirtyVictim, victim, res.Writeback, res.WritebackAddr)
		}
	}
}

// TestAddRunHits pins the closed-form covered-block accounting: only the
// demand lookup counter moves, by exactly the requested amount.
func TestAddRunHits(t *testing.T) {
	c := New("hits", 256, 64, 2)
	c.Access(0, false)
	before := *c.Stats()
	twin := cloneCache(c)
	c.AddRunHits(41)
	if got := *c.Stats(); got.Lookups != before.Lookups+41 || got.Misses != before.Misses ||
		got.Evictions != before.Evictions || got.Writebacks != before.Writebacks {
		t.Fatalf("stats after AddRunHits = %+v, before %+v", got, before)
	}
	if !reflect.DeepEqual(c.lines, twin.lines) {
		t.Fatal("AddRunHits moved line state")
	}
}
