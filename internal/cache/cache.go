// Package cache implements a set-associative, write-back, LRU cache timing
// model. It tracks tags only (no data payload): the simulator uses it for
// the security-metadata caches — counter cache, hash cache, and MAC cache —
// whose hit/miss behaviour drives the memory-protection overhead in TNPU.
package cache

import (
	"fmt"

	"tnpu/internal/stats"
)

// Cache is a tag-only set-associative cache with true-LRU replacement and
// write-back, write-allocate policy.
type Cache struct {
	name      string //tnpu:canonskip immutable identity label, fixed at construction
	lineBytes uint64
	sets      int
	ways      int
	lineShift uint //tnpu:canonskip derived from lineBytes at construction, immutable
	// setMask replaces the modulo in set selection when the set count is a
	// power of two (every realistic geometry); maskOK gates it so odd set
	// counts still work.
	setMask uint64 //tnpu:canonskip derived from sets at construction, immutable
	maskOK  bool   //tnpu:canonskip derived from sets at construction, immutable
	// lines[set][way]; way order is LRU order: index 0 is most recent.
	lines [][]line
	stats stats.CacheStats //tnpu:canonskip accumulator; owners carry it via Stats().AppendAccum/AddAccum
}

// setIndex maps a line tag to its set.
func (c *Cache) setIndex(tag uint64) uint64 {
	if c.maskOK {
		return tag & c.setMask
	}
	return tag % uint64(c.sets)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64 // full line address (byte address >> lineShift)
}

// Result describes the outcome of a single cache access.
type Result struct {
	Hit bool
	// Writeback is true when the allocation evicted a dirty line; the
	// evicted line's byte address is in WritebackAddr.
	Writeback     bool
	WritebackAddr uint64
}

// New constructs a cache of sizeBytes capacity with the given line size and
// associativity. sizeBytes must be a multiple of lineBytes*ways, and
// lineBytes must be a power of two. The name is used in error messages only.
func New(name string, sizeBytes, lineBytes, ways int) *Cache {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d is not a power of two", name, lineBytes))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", name))
	}
	total := sizeBytes / lineBytes
	if total == 0 || sizeBytes%lineBytes != 0 {
		panic(fmt.Sprintf("cache %s: size %d not a positive multiple of line %d", name, sizeBytes, lineBytes))
	}
	if ways > total {
		ways = total // fully associative when capacity is tiny
	}
	sets := total / ways
	if sets*ways != total {
		panic(fmt.Sprintf("cache %s: %d lines not divisible into %d ways", name, total, ways))
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	c := &Cache{
		name:      name,
		lineBytes: uint64(lineBytes),
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		maskOK:    sets&(sets-1) == 0,
		lines:     make([][]line, sets),
	}
	for i := range c.lines {
		c.lines[i] = make([]line, 0, ways)
	}
	return c
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() uint64 { return c.lineBytes }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * int(c.lineBytes) }

// Access looks up the line containing byte address addr, allocating it on a
// miss. write marks the line dirty. The returned Result reports whether the
// access hit and whether a dirty victim must be written back.
func (c *Cache) Access(addr uint64, write bool) Result {
	tag := addr >> c.lineShift
	set := c.lines[c.setIndex(tag)]
	c.stats.Lookups++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			hit := set[i]
			if write {
				hit.dirty = true
			}
			// Move to front (most-recently-used).
			copy(set[1:i+1], set[:i])
			set[0] = hit
			return Result{Hit: true}
		}
	}

	c.stats.Misses++
	return c.allocate(tag, write)
}

// allocate installs tag's line at the MRU position, evicting the LRU way
// when the set is full and reporting a dirty victim for writeback.
func (c *Cache) allocate(tag uint64, write bool) Result {
	set := c.lines[c.setIndex(tag)]
	res := Result{}
	if len(set) == c.ways {
		victim := set[len(set)-1]
		c.stats.Evictions++
		if victim.dirty {
			c.stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = victim.tag << c.lineShift
		}
		set = set[:len(set)-1]
	}
	set = append(set, line{})
	copy(set[1:], set[:len(set)-1])
	set[0] = line{valid: true, dirty: write, tag: tag}
	c.lines[c.setIndex(tag)] = set
	return res
}

// AccessRun performs count consecutive demand accesses to the line holding
// addr — equivalent to calling Access(addr, write) count times with no
// intervening access to this cache. The first access runs the full
// hit/allocate path; the remaining count-1 are then guaranteed hits on the
// MRU line, which change no LRU or dirty state and only bump the Lookups
// counter. The batched protection engines use this to charge a whole
// metadata line's worth of covered blocks in one call.
func (c *Cache) AccessRun(addr, count uint64, write bool) Result {
	if count == 0 {
		return Result{Hit: true}
	}
	res := c.Access(addr, write)
	c.stats.Lookups += count - 1
	return res
}

// AccessStreak resolves n consecutive line accesses in one walk: the
// outcome of Access(addr + i*LineBytes, write) for i in [0, n) is appended
// to out, in order, with exactly the state transitions and statistics the
// n individual calls would produce (demand counters are applied in bulk).
// The batched protection engines use it to classify a whole metadata-line
// streak up front and then replay the charges in closed form. out is
// returned to allow an allocation-free caller-owned buffer.
func (c *Cache) AccessStreak(addr uint64, n int, write bool, out []Result) []Result {
	var misses uint64
	for i := 0; i < n; i++ {
		tag := (addr + uint64(i)*c.lineBytes) >> c.lineShift
		set := c.lines[c.setIndex(tag)]
		hit := false
		for j := range set {
			if set[j].valid && set[j].tag == tag {
				h := set[j]
				if write {
					h.dirty = true
				}
				copy(set[1:j+1], set[:j])
				set[0] = h
				out = append(out, Result{Hit: true})
				hit = true
				break
			}
		}
		if !hit {
			misses++
			out = append(out, c.allocate(tag, write))
		}
	}
	c.stats.Lookups += uint64(n)
	c.stats.Misses += misses
	return out
}

// AddRunHits records count guaranteed-hit lookups on a just-accessed MRU
// line in closed form: such hits change no LRU or dirty state, so only the
// Lookups counter moves. This is the streak-wide bulk equivalent of the
// covered-block accounting AccessRun does per line.
func (c *Cache) AddRunHits(count uint64) { c.stats.Lookups += count }

// PeekVictim reports, without touching cache state or statistics, what an
// Access(addr, ...) would do right now: whether addr's line is resident,
// and — if it is not and the set is full — whether the would-be victim is
// dirty and at what address. The streaked baseline engine uses it to
// decide before any mutation whether a counter miss stays inside the
// closed-form charge model.
func (c *Cache) PeekVictim(addr uint64) (resident, dirtyVictim bool, victimAddr uint64) {
	tag := addr >> c.lineShift
	set := c.lines[c.setIndex(tag)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true, false, 0
		}
	}
	if len(set) == c.ways {
		if v := set[len(set)-1]; v.dirty {
			return false, true, v.tag << c.lineShift
		}
	}
	return false, false, 0
}

// Prefetch brings addr's line into the cache speculatively. Unlike Access
// it leaves the demand counters (Lookups/Misses) untouched, recording the
// fill under Prefetches instead, so a prefetcher ablation cannot move the
// demand miss rate. A resident line is left where it is (no LRU
// promotion, no counter change); eviction of a dirty victim is reported
// for writeback exactly as in Access.
func (c *Cache) Prefetch(addr uint64) Result {
	tag := addr >> c.lineShift
	for _, l := range c.lines[c.setIndex(tag)] {
		if l.valid && l.tag == tag {
			return Result{Hit: true}
		}
	}
	c.stats.Prefetches++
	return c.allocate(tag, false)
}

// Probe reports whether addr's line is resident without touching LRU state
// or statistics.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	for _, l := range c.lines[c.setIndex(tag)] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's line if present, reporting whether the dropped
// line was dirty — in which case the caller must write its contents back
// (the line's address is the caller's addr rounded down to LineBytes).
func (c *Cache) Invalidate(addr uint64) (dirty bool) {
	tag := addr >> c.lineShift
	set := c.lines[c.setIndex(tag)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			dirty = set[i].dirty
			c.lines[c.setIndex(tag)] = append(set[:i], set[i+1:]...)
			return dirty
		}
	}
	return false
}

// Flush evicts every resident line and returns the byte addresses of all
// dirty lines in deterministic set order. Statistics count the writebacks.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for s := range c.lines {
		for _, l := range c.lines[s] {
			if l.valid && l.dirty {
				dirty = append(dirty, l.tag<<c.lineShift)
				c.stats.Writebacks++
			}
		}
		c.lines[s] = c.lines[s][:0]
	}
	return dirty
}

// Stats exposes the accumulated counters.
func (c *Cache) Stats() *stats.CacheStats { return &c.stats }

// ResetStats zeroes the counters without disturbing cache contents, so a
// warm-up phase can be excluded from measurement.
func (c *Cache) ResetStats() { c.stats = stats.CacheStats{} }
