package cache

import (
	"math/rand"
	"testing"
)

// TestSweepMatchesAccessStreak drives random consecutive-line sweeps
// against the sequential AccessStreak reference on a twin cache: the
// classification must be truthful (hot = all resident, cold = none), every
// Outcome must equal the reference's per-line result, and CommitPrefix
// must leave tag state, LRU order, dirty bits, and statistics identical to
// the reference serving the same prefix. Small geometries force aliasing,
// self-eviction, and dirty-victim cases.
func TestSweepMatchesAccessStreak(t *testing.T) {
	for _, geom := range []struct {
		name  string
		size  int
		ways  int
		lines int // address space in lines to draw from
	}{
		{"2x2", 256, 2, 16},
		{"4x4", 1024, 4, 40},
		{"1set", 256, 4, 12},  // fully associative: one set takes all lines
		{"3sets", 576, 3, 24}, // non-power-of-two set count: modulo indexing
	} {
		t.Run(geom.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(geom.size)))
			c := New("sweep", geom.size, 64, geom.ways)
			ref := cloneCache(c)
			var s Sweep
			var out []Result
			hot, cold := 0, 0
			for step := 0; step < 600; step++ {
				base := uint64(rng.Intn(geom.lines)) * 64
				n := 1 + rng.Intn(geom.lines)
				write := rng.Intn(2) == 0

				// Reference classification: count resident in-range lines.
				resident := 0
				for i := 0; i < n; i++ {
					if ref.Probe(base + uint64(i)*64) {
						resident++
					}
				}
				kind := c.BeginSweep(&s, base, n, write)
				switch {
				case resident == n && kind != SweepHot:
					t.Fatalf("step %d: all %d lines resident but kind=%v", step, n, kind)
				case resident == 0 && kind != SweepCold:
					t.Fatalf("step %d: no lines resident but kind=%v", step, n)
				case resident > 0 && resident < n && kind != SweepMixed:
					t.Fatalf("step %d: %d/%d resident but kind=%v", step, resident, n, kind)
				}

				if kind == SweepMixed {
					// Caller contract: serve through AccessStreak on both.
					out = c.AccessStreak(base, n, write, out[:0])
					ref.AccessStreak(base, n, write, out[len(out):])
					sameState(t, "after mixed fallback", c, ref)
					continue
				}
				if kind == SweepHot {
					hot++
				} else {
					cold++
				}

				// Commit a random prefix (full commit most of the time) and
				// serve the same prefix on the reference.
				k := n
				if rng.Intn(4) == 0 {
					k = rng.Intn(n + 1)
				}
				for i := 0; i < k; i++ {
					got := s.Outcome(i)
					want := ref.Access(base+uint64(i)*64, write)
					if got != want {
						t.Fatalf("step %d line %d/%d (%v, write=%v): outcome %+v, reference %+v",
							step, i, n, kind, write, got, want)
					}
				}
				s.CommitPrefix(k)
				sameState(t, "after commit", c, ref)

				// Perturb: a few individual accesses so sweeps start from
				// varied dirty/LRU state.
				for p := 0; p < 3; p++ {
					a := uint64(rng.Intn(geom.lines)) * 64
					wr := rng.Intn(2) == 0
					if r1, r2 := c.Access(a, wr), ref.Access(a, wr); r1 != r2 {
						t.Fatalf("step %d: interleaved access diverged", step)
					}
				}
			}
			if hot == 0 || cold == 0 {
				t.Fatalf("sweep kinds not exercised: hot=%d cold=%d", hot, cold)
			}
		})
	}
}

// TestSweepUniformFrom pins the cold steady-state boundary: from capacity
// lines onward every outcome is a miss with a self-eviction victim exactly
// capacity lines back, dirty exactly when the sweep writes.
func TestSweepUniformFrom(t *testing.T) {
	c := New("uniform", 1024, 64, 4) // 4 sets x 4 ways = 16 lines capacity
	// Pre-warm with scattered dirty lines so the prefix is genuinely varied.
	for i := 0; i < 7; i++ {
		c.Access(uint64(1000+i*3)*64, i%2 == 0)
	}
	var s Sweep
	n := 40
	if kind := c.BeginSweep(&s, 0, n, true); kind != SweepCold {
		t.Fatalf("expected cold sweep, got %v", kind)
	}
	uf := s.UniformFrom()
	if uf != 16 {
		t.Fatalf("UniformFrom = %d, want capacity 16", uf)
	}
	for i := uf; i < n; i++ {
		want := Result{Writeback: true, WritebackAddr: uint64(i-uf) * 64}
		if got := s.Outcome(i); got != want {
			t.Fatalf("line %d: got %+v, want %+v", i, got, want)
		}
	}
	s.CommitPrefix(n)
	// Read sweep over fresh range: self-evictions clean.
	if kind := c.BeginSweep(&s, 1<<20, n, false); kind != SweepCold {
		t.Fatal("expected cold sweep")
	}
	for i := s.UniformFrom(); i < n; i++ {
		if got := s.Outcome(i); got != (Result{}) {
			t.Fatalf("read line %d: got %+v, want clean miss", i, got)
		}
	}
}
