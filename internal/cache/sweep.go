package cache

// This file resolves a whole consecutive-line sweep against the cache in
// closed form. The batched protection engines touch metadata lines in
// strictly ascending address order — one access per line — which makes the
// per-line outcome of the sequential walk a pure function of the pre-sweep
// set states: consecutive tags stripe round-robin across sets, so the j-th
// in-range line landing in a set meets exactly j earlier in-range lines
// there, and true-LRU eviction order within the set is the old lines from
// LRU position upward followed by the in-range lines in insertion order.
//
// BeginSweep prescans the touched sets once and classifies the sweep:
//
//	SweepHot   — every line resident: each access is a hit, no state
//	             change beyond LRU promotion and write-dirtying.
//	SweepCold  — no line resident: each access misses; the victim (if
//	             any) is computable per line in O(1).
//	SweepMixed — anything else: the caller must fall back to the exact
//	             sequential walk (AccessStreak).
//
// Outcome(i) answers the i-th access in O(1) without touching state;
// CommitPrefix(k) applies the final state and statistics of the first k
// accesses in O(sets×ways) — prefix commit because the baseline engine can
// abandon a streak mid-run and hand the remaining lines to the reference
// path, which must then see exactly the state the first k accesses left.

// SweepKind classifies a sweep; see the file comment.
type SweepKind int

const (
	// SweepMixed: some lines resident, some not — no closed form.
	SweepMixed SweepKind = iota
	// SweepCold: no line of the range is resident.
	SweepCold
	// SweepHot: every line of the range is resident.
	SweepHot
)

// Sweep holds the prescanned per-set state of one consecutive-line range.
// A Sweep is owned (and reused) by its caller; all storage is retained
// across BeginSweep calls.
type Sweep struct {
	c        *Cache
	firstTag uint64
	n        int
	write    bool
	kind     SweepKind
	// Per touched set offset o (the set of line o, i.e. set
	// (setIndex(firstTag)+o) mod sets), recorded at BeginSweep:
	oldLen   []int32  // valid lines before the sweep
	oldDirty []uint64 // dirty bitmask by LRU position (bit p = position p)
	oldTags  []uint64 // old tags row-major [o*ways+pos], MRU first
}

// Kind returns the sweep's classification.
func (s *Sweep) Kind() SweepKind { return s.kind }

// UniformFrom returns the line index from which every outcome of a cold
// sweep is identical — miss, eviction, and a self-eviction victim (an
// earlier in-range line), which is dirty exactly when the sweep writes.
// From capacity lines onward the incoming line's set holds only in-range
// lines, regardless of how full each set was before. Callers collapse
// [UniformFrom, n) to bulk arithmetic and walk only the prefix per line.
func (s *Sweep) UniformFrom() int { return s.c.sets * s.c.ways }

// BeginSweep prescans the n consecutive lines starting at the line holding
// addr and classifies the sweep. write marks the would-be accesses as
// writes (dirtying on hit, dirty allocation on miss). No cache state or
// statistics are touched; a SweepMixed result means the caller must serve
// the range through AccessStreak instead.
func (c *Cache) BeginSweep(s *Sweep, addr uint64, n int, write bool) SweepKind {
	if n <= 0 || c.ways > 64 {
		s.kind = SweepMixed
		return SweepMixed
	}
	firstTag := addr >> c.lineShift
	touched := n
	if touched > c.sets {
		touched = c.sets
	}
	if cap(s.oldLen) < touched {
		s.oldLen = make([]int32, touched)      //tnpu:allocok
		s.oldDirty = make([]uint64, touched)   //tnpu:allocok
		s.oldTags = make([]uint64, 0, touched) // grown below //tnpu:allocok
	}
	s.oldLen = s.oldLen[:touched]
	s.oldDirty = s.oldDirty[:touched]
	if cap(s.oldTags) < touched*c.ways {
		s.oldTags = make([]uint64, touched*c.ways) //tnpu:allocok
	}
	s.oldTags = s.oldTags[:touched*c.ways]

	firstSet := c.setIndex(firstTag)
	resident := 0
	for o := 0; o < touched; o++ {
		set := c.lines[(firstSet+uint64(o))%uint64(c.sets)]
		s.oldLen[o] = int32(len(set))
		var dirtyMask uint64
		for p := range set {
			s.oldTags[o*c.ways+p] = set[p].tag
			if set[p].dirty {
				dirtyMask |= 1 << uint(p)
			}
			if set[p].valid && set[p].tag-firstTag < uint64(n) {
				resident++
			}
		}
		s.oldDirty[o] = dirtyMask
	}
	s.c = c
	s.firstTag = firstTag
	s.n = n
	s.write = write
	switch resident {
	case 0:
		s.kind = SweepCold
	case n:
		s.kind = SweepHot
	default:
		s.kind = SweepMixed
	}
	return s.kind
}

// Outcome returns what the i-th access of the sweep (0-indexed) observes —
// exactly the Result Access would return at that point of the sequential
// walk. Pure: no state or statistics move. Valid for SweepHot and
// SweepCold only.
func (s *Sweep) Outcome(i int) Result {
	if s.kind == SweepHot {
		return Result{Hit: true}
	}
	c := s.c
	o := i % c.sets
	j := int32(i / c.sets) // earlier in-range lines in this set
	e := s.oldLen[o] + j - int32(c.ways)
	if e < 0 {
		return Result{} // miss, set not yet full
	}
	if e < s.oldLen[o] {
		// Victim is an old line, evicted from the LRU end upward.
		pos := s.oldLen[o] - 1 - e
		if s.oldDirty[o]&(1<<uint(pos)) != 0 {
			return Result{Writeback: true, WritebackAddr: s.oldTags[o*c.ways+int(pos)] << c.lineShift}
		}
		return Result{}
	}
	// Self-eviction: the victim is the (e-oldLen)-th in-range line this set
	// received, dirty exactly when the sweep writes.
	if s.write {
		victim := uint64(o) + uint64(e-s.oldLen[o])*uint64(c.sets)
		return Result{Writeback: true, WritebackAddr: (s.firstTag + victim) << c.lineShift}
	}
	return Result{}
}

// CommitPrefix applies the final cache state and statistics of the first k
// accesses of the sweep, identically to k sequential Access calls. The
// remaining lines are untouched (the caller re-classifies them if it needs
// to continue). Commit the full sweep with k == n.
func (s *Sweep) CommitPrefix(k int) {
	if k <= 0 {
		return
	}
	if k > s.n {
		k = s.n
	}
	c := s.c
	firstSet := c.setIndex(s.firstTag)
	c.stats.Lookups += uint64(k)
	if s.kind == SweepHot {
		// Promote the touched in-range lines to MRU (last touched first),
		// dirtying on write; untouched lines keep their relative order.
		for o := 0; o < s.touchedFor(k); o++ {
			set := c.lines[(firstSet+uint64(o))%uint64(c.sets)]
			ks := countIncoming(o, k, c.sets)
			// In-range lines with index < k, descending index (last touched is
			// MRU), then the rest of the old order with those removed. Rebuild
			// via a fixed-size local buffer (ways <= 64 checked at BeginSweep).
			var buf [64]line
			bn := 0
			for j := ks - 1; j >= 0; j-- {
				tag := s.firstTag + uint64(o) + uint64(j)*uint64(c.sets)
				buf[bn] = line{valid: true, dirty: s.write || s.oldDirtyOf(o, tag), tag: tag}
				bn++
			}
			for p := 0; p < len(set); p++ {
				if set[p].valid && set[p].tag-s.firstTag < uint64(k) {
					continue // promoted above
				}
				buf[bn] = set[p]
				bn++
			}
			set = set[:bn]
			copy(set, buf[:bn])
			c.lines[(firstSet+uint64(o))%uint64(c.sets)] = set
		}
		return
	}
	// Cold: every access misses; per set the survivors are the last
	// min(ways, oldLen+ks) lines by recency.
	c.stats.Misses += uint64(k)
	var evictions, writebacks uint64
	for o := 0; o < s.touchedFor(k); o++ {
		ks := int32(countIncoming(o, k, c.sets))
		oldLen := s.oldLen[o]
		ways := int32(c.ways)
		// Evictions: accesses j with oldLen+j >= ways.
		if ev := ks - maxI32(0, ways-oldLen); ev > 0 {
			evictions += uint64(ev)
		}
		// Old-line writebacks: victims at LRU positions oldLen-1-e for
		// e in [0, min(oldLen, ks-(ways-oldLen))).
		if eMax := minI32(oldLen, ks-(ways-oldLen)); eMax > 0 {
			// Positions oldLen-eMax .. oldLen-1.
			mask := s.oldDirty[o] >> uint(oldLen-eMax)
			mask &= (1 << uint(eMax)) - 1
			writebacks += uint64(popcount64(mask))
		}
		// Self-eviction writebacks: accesses j >= ways, dirty iff writing.
		if s.write {
			if sv := ks - ways; sv > 0 {
				writebacks += uint64(sv)
			}
		}
		// Final content: in-range lines j in [max(0, ks-ways), ks)
		// descending (MRU first), then surviving old lines in order.
		var buf [64]line
		bn := 0
		lo := maxI32(0, ks-ways)
		for j := ks - 1; j >= lo; j-- {
			tag := s.firstTag + uint64(o) + uint64(j)*uint64(c.sets)
			buf[bn] = line{valid: true, dirty: s.write, tag: tag}
			bn++
		}
		keepOld := minI32(oldLen, ways-ks)
		set := c.lines[(firstSet+uint64(o))%uint64(c.sets)]
		for p := int32(0); p < keepOld; p++ {
			buf[bn] = set[p]
			bn++
		}
		set = set[:bn]
		copy(set, buf[:bn])
		c.lines[(firstSet+uint64(o))%uint64(c.sets)] = set
	}
	c.stats.Evictions += evictions
	c.stats.Writebacks += writebacks
}

// touchedFor returns how many set offsets the first k lines reach.
func (s *Sweep) touchedFor(k int) int {
	if k < s.c.sets {
		return k
	}
	return s.c.sets
}

// countIncoming returns how many of the first k lines land in set offset o.
func countIncoming(o, k, sets int) int {
	if o >= k {
		return 0
	}
	return (k-o-1)/sets + 1
}

// oldDirtyOf reports whether tag was dirty in set offset o before the sweep.
func (s *Sweep) oldDirtyOf(o int, tag uint64) bool {
	base := o * s.c.ways
	for p := int32(0); p < s.oldLen[o]; p++ {
		if s.oldTags[base+int(p)] == tag {
			return s.oldDirty[o]&(1<<uint(p)) != 0
		}
	}
	return false
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
