package cache

import (
	"testing"
	"testing/quick"

	"tnpu/internal/stats"
)

func TestBasicHitMiss(t *testing.T) {
	c := New("test", 4096, 64, 8)
	if r := c.Access(0, false); r.Hit {
		t.Fatal("first access should miss")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("second access to same line should hit")
	}
	if r := c.Access(63, false); !r.Hit {
		t.Fatal("access within same 64B line should hit")
	}
	if r := c.Access(64, false); r.Hit {
		t.Fatal("access to next line should miss")
	}
	s := c.Stats()
	if s.Lookups != 4 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 lookups / 2 misses", *s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, single set: 2 lines of 64B = 128B, ways=2 -> 1 set.
	c := New("test", 128, 64, 2)
	c.Access(0*64, false)
	c.Access(1*64, false)
	c.Access(0*64, false) // line 0 now MRU
	r := c.Access(2*64, false)
	if r.Hit {
		t.Fatal("third distinct line must miss")
	}
	if c.Probe(1 * 64) {
		t.Fatal("line 1 (LRU) should have been evicted")
	}
	if !c.Probe(0 * 64) {
		t.Fatal("line 0 (MRU) should survive")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New("test", 128, 64, 2)
	c.Access(0*64, true) // dirty
	c.Access(1*64, false)
	r := c.Access(2*64, false) // evicts line 0 (LRU, dirty)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Fatalf("expected writeback of addr 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New("test", 128, 64, 2)
	c.Access(0*64, false) // clean allocate
	c.Access(0*64, true)  // write hit -> dirty
	c.Access(1*64, false)
	r := c.Access(2*64, false)
	if !r.Writeback {
		t.Fatal("write-hit line should be written back on eviction")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("test", 4096, 64, 8)
	c.Access(0, true)
	if dirty := c.Invalidate(0); !dirty {
		t.Fatal("invalidate of dirty line should report dirty")
	}
	if c.Probe(0) {
		t.Fatal("line should be gone after invalidate")
	}
	if dirty := c.Invalidate(0); dirty {
		t.Fatal("invalidate of absent line should report clean")
	}
}

func TestFlush(t *testing.T) {
	c := New("test", 4096, 64, 8)
	c.Access(0*64, true)
	c.Access(1*64, false)
	c.Access(2*64, true)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("flush returned %d dirty lines, want 2", len(dirty))
	}
	if c.Probe(0) || c.Probe(64) || c.Probe(128) {
		t.Fatal("cache should be empty after flush")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New("test", 128, 64, 2)
	c.Access(0*64, false)
	c.Access(1*64, false) // line 1 MRU, line 0 LRU
	c.Probe(0 * 64)       // must NOT promote line 0
	c.Access(2*64, false) // evicts LRU
	if c.Probe(0 * 64) {
		t.Fatal("probe must not update LRU order")
	}
	before := c.Stats().Lookups
	c.Probe(1 * 64)
	if c.Stats().Lookups != before {
		t.Fatal("probe must not count as lookup")
	}
}

func TestResetStats(t *testing.T) {
	c := New("test", 4096, 64, 8)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Lookups != 0 {
		t.Fatal("stats should be zero after reset")
	}
	if !c.Probe(0) {
		t.Fatal("contents must survive ResetStats")
	}
}

func TestFullyAssociativeClamp(t *testing.T) {
	// Request 16 ways but only 2 lines fit: becomes fully associative.
	c := New("tiny", 128, 64, 16)
	c.Access(0*64, false)
	c.Access(1*64, false)
	if !c.Probe(0*64) || !c.Probe(1*64) {
		t.Fatal("both lines should fit")
	}
	c.Access(2*64, false)
	if c.Probe(0 * 64) {
		t.Fatal("LRU line should be evicted in fully-associative mode")
	}
}

func TestSizeAccessors(t *testing.T) {
	c := New("test", 8192, 64, 8)
	if c.SizeBytes() != 8192 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
	if c.LineBytes() != 64 {
		t.Errorf("LineBytes = %d", c.LineBytes())
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New("x", 4096, 63, 8) }, // non power-of-two line
		func() { New("x", 100, 64, 8) },  // size not multiple of line
		func() { New("x", 4096, 64, 0) }, // zero ways
		func() { New("x", 0, 64, 8) },    // zero size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad config")
				}
			}()
			fn()
		}()
	}
}

// Property: the cache never holds more distinct resident lines than its
// capacity, and an immediate re-access of any address always hits.
func TestCapacityAndReaccessProperty(t *testing.T) {
	c := New("prop", 1024, 64, 4) // 16 lines
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a) * 64
			c.Access(addr, a%2 == 0)
			if r := c.Access(addr, false); !r.Hit {
				return false
			}
		}
		resident := 0
		for a := uint64(0); a < 1<<16; a++ {
			if c.Probe(a * 64) {
				resident++
			}
		}
		return resident <= 16
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: lookups == hits + misses (misses counted), and evictions never
// exceed misses.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New("prop", 512, 64, 2)
		for _, a := range addrs {
			c.Access(uint64(a)*64, a%3 == 0)
		}
		s := c.Stats()
		return s.Lookups == uint64(len(addrs)) &&
			s.Misses <= s.Lookups &&
			s.Evictions <= s.Misses &&
			s.Writebacks <= s.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := New("test", 4096, 64, 8) // 64 lines
	// Stream 128 distinct lines twice: second pass must still miss
	// because the working set is 2x capacity (LRU streaming pattern).
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 128; i++ {
			c.Access(i*64, false)
		}
	}
	s := c.Stats()
	if s.Misses != s.Lookups {
		t.Fatalf("cyclic stream over 2x capacity should always miss under LRU: %d misses of %d", s.Misses, s.Lookups)
	}
}

func TestInvalidateReportsDirty(t *testing.T) {
	c := New("test", 4096, 64, 8)
	c.Access(0, true)   // dirty line
	c.Access(64, false) // clean line
	if !c.Invalidate(0) {
		t.Error("invalidating a dirty line must report dirty")
	}
	if c.Probe(0) {
		t.Error("invalidated line still resident")
	}
	if c.Invalidate(64) {
		t.Error("invalidating a clean line must not report dirty")
	}
	if c.Invalidate(128) {
		t.Error("invalidating an absent line must not report dirty")
	}
}

func TestPrefetchLeavesDemandStatsAlone(t *testing.T) {
	c := New("test", 4096, 64, 8)
	c.Access(0, false)
	before := *c.Stats()
	if r := c.Prefetch(64); r.Hit {
		t.Error("prefetch of an absent line reported resident")
	}
	if r := c.Prefetch(64); !r.Hit {
		t.Error("prefetch of a resident line reported absent")
	}
	s := c.Stats()
	if s.Lookups != before.Lookups || s.Misses != before.Misses {
		t.Errorf("prefetch moved demand counters: %+v -> %+v", before, *s)
	}
	if s.Prefetches != 1 {
		t.Errorf("prefetch fills = %d, want 1 (resident re-prefetch must not count)", s.Prefetches)
	}
	if r := c.Access(64, false); !r.Hit {
		t.Error("prefetched line missed on demand access")
	}
}

func TestPrefetchWritesBackDirtyVictim(t *testing.T) {
	// 2-way, single set.
	c := New("test", 128, 64, 2)
	c.Access(0*64, true) // dirty
	c.Access(1*64, false)
	c.Access(1*64, false) // line 0 is now LRU
	r := c.Prefetch(2 * 64)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Errorf("prefetch eviction of dirty LRU not reported: %+v", r)
	}
	if c.Stats().Writebacks != 1 || c.Stats().Evictions != 1 {
		t.Errorf("eviction accounting off: %+v", *c.Stats())
	}
}

// TestAccessRunMatchesRepeatedAccess pins AccessRun's contract: it must be
// observably identical — result, statistics, LRU order, dirty bits — to
// calling Access count times back to back.
func TestAccessRunMatchesRepeatedAccess(t *testing.T) {
	for _, write := range []bool{false, true} {
		batched := New("batched", 256, 64, 2)
		ref := New("ref", 256, 64, 2)
		// Shared warm-up: a dirty line, a clean line, then thrash one set.
		for _, c := range []*Cache{batched, ref} {
			c.Access(0, true)
			c.Access(256, false)
			c.Access(512, false)
		}
		res := batched.AccessRun(512, 5, write)
		var want Result
		for i := 0; i < 5; i++ {
			want = ref.Access(512, write)
		}
		if res != want {
			t.Errorf("write=%v: AccessRun = %+v, repeated Access = %+v", write, res, want)
		}
		if *batched.Stats() != *ref.Stats() {
			t.Errorf("write=%v: stats diverged: %+v vs %+v", write, *batched.Stats(), *ref.Stats())
		}
		// Follow-up eviction pressure must see identical LRU/dirty state.
		rb := batched.Access(768, false)
		rr := ref.Access(768, false)
		if rb != rr {
			t.Errorf("write=%v: post-run eviction diverged: %+v vs %+v", write, rb, rr)
		}
	}
}

// TestAccessRunZeroCount: a zero-length run is a no-op reporting a hit.
func TestAccessRunZeroCount(t *testing.T) {
	c := New("test", 256, 64, 2)
	if r := c.AccessRun(0, 0, true); !r.Hit || r.Writeback {
		t.Errorf("zero-count run = %+v, want pure hit", r)
	}
	if s := c.Stats(); *s != (stats.CacheStats{}) {
		t.Errorf("zero-count run touched stats: %+v", *s)
	}
}
