package cache

import (
	"path/filepath"
	"testing"

	"tnpu/internal/certcheck"
)

// TestCanonCertificateMatchesCache cross-checks the committed
// canoncover certification artifact against the live Cache struct: new
// fields must be serialized by AppendCanon/RestoreCanon or carry a
// //tnpu:canonskip waiver, and the artifact must be regenerated.
func TestCanonCertificateMatchesCache(t *testing.T) {
	certs := certcheck.Load(t, filepath.Join("..", "..", "testdata", "canoncover.json"))
	certcheck.FieldsMatch(t, certs, "tnpu/internal/cache.Cache", Cache{})
}
