package cache

import (
	"fmt"

	"tnpu/internal/canon"
)

// AppendCanon appends the cache's full behavioural state — geometry header
// plus every resident line with its dirty bit, in MRU→LRU order per set —
// to dst. Two caches with equal canon bytes behave identically under every
// future access sequence (see DESIGN.md §6e). Statistics are accumulators
// and are handled separately by AppendAccum/AddAccum.
func (c *Cache) AppendCanon(dst []byte) []byte {
	dst = canon.AppendU64(dst, uint64(c.sets))
	dst = canon.AppendU64(dst, uint64(c.ways))
	dst = canon.AppendU64(dst, c.lineBytes)
	for s := range c.lines {
		set := c.lines[s]
		dst = canon.AppendU64(dst, uint64(len(set)))
		for _, l := range set {
			v := l.tag << 1
			if l.dirty {
				v |= 1
			}
			dst = canon.AppendU64(dst, v)
		}
	}
	return dst
}

// RestoreCanon rebuilds the cache's behavioural state from an AppendCanon
// blob and returns the remaining bytes. The receiver's geometry must match
// the blob's header; set slices are reused so a restore allocates nothing
// in steady state. Statistics are left untouched.
func (c *Cache) RestoreCanon(src []byte) []byte {
	var sets, ways, lineBytes uint64
	sets, src = canon.U64(src)
	ways, src = canon.U64(src)
	lineBytes, src = canon.U64(src)
	if int(sets) != c.sets || int(ways) != c.ways || lineBytes != c.lineBytes {
		panic(fmt.Sprintf("cache %s: canon geometry %dx%dx%d does not match %dx%dx%d",
			c.name, sets, ways, lineBytes, c.sets, c.ways, c.lineBytes))
	}
	for s := range c.lines {
		var n uint64
		n, src = canon.U64(src)
		set := c.lines[s][:0]
		for i := uint64(0); i < n; i++ {
			var v uint64
			v, src = canon.U64(src)
			set = append(set, line{valid: true, dirty: v&1 != 0, tag: v >> 1})
		}
		c.lines[s] = set
	}
	return src
}
