// Package model describes DNN inference workloads as layer graphs, the way
// the paper's simulator consumes them (SCALE-Sim style, extended with
// inter-layer connections). Every layer carries both its GEMM view (what
// the systolic array executes — convolutions are im2col'd on the fly by
// the NPU's hardware im2col block) and its true DRAM tensor sizes (what
// the protection schemes see as traffic). The package defines the 14
// benchmark models of Table III with footprints calibrated to the paper.
package model

import (
	"fmt"
)

// ElemBytes is the data precision: Float16, 2 bytes per element (Table II).
const ElemBytes = 2

// Kind classifies how a layer executes on the NPU.
type Kind uint8

const (
	// KindGEMM runs on the systolic array (conv / FC / matmul / LSTM-step
	// GEMMs). Convolutions are expressed through their im2col GEMM dims.
	KindGEMM Kind = iota
	// KindGather is an embedding-table lookup: many small row reads at
	// data-dependent offsets — the fine-grained, low-spatial-locality
	// pattern that makes sent and tf memory-intensive (Sec. III-B).
	KindGather
	// KindEltwise is an element-wise op over two inputs (residual add).
	KindEltwise
	// KindPool reads one tensor and writes a smaller one (pooling,
	// activation-only reshapes).
	KindPool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGEMM:
		return "gemm"
	case KindGather:
		return "gather"
	case KindEltwise:
		return "eltwise"
	case KindPool:
		return "pool"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Layer is one node of the model graph.
type Layer struct {
	Name string
	Kind Kind

	// GEMM view (KindGEMM): output M×N with reduction K.
	M, K, N int

	// DRAM tensor sizes.
	IfmapBytes  uint64 // activation input resident in NPU memory
	WeightBytes uint64 // parameters (or embedding table)
	OfmapBytes  uint64 // activation output

	// Gather view (KindGather): Rows lookups of RowBytes each from the
	// WeightBytes-sized table.
	Rows     int
	RowBytes int

	// Inputs are indices of producer layers; -1 denotes the model input.
	Inputs []int
}

// MACs returns multiply-accumulate count for GEMM layers (0 otherwise).
func (l *Layer) MACs() uint64 {
	if l.Kind != KindGEMM {
		return 0
	}
	return uint64(l.M) * uint64(l.K) * uint64(l.N)
}

// outPixels computes conv output extent with "same"-style padding when
// pad=true, valid otherwise.
func outPixels(in, kernel, stride int, pad bool) int {
	if pad {
		return (in + stride - 1) / stride
	}
	return (in-kernel)/stride + 1
}

// Conv builds a convolution layer: input h×w×cin, kernel r×s, cout output
// channels. The GEMM view is M=oh*ow, K=r*s*cin, N=cout.
func Conv(name string, h, w, cin, r, s, cout, stride int, pad bool, inputs ...int) Layer {
	oh := outPixels(h, r, stride, pad)
	ow := outPixels(w, s, stride, pad)
	return Layer{
		Name: name, Kind: KindGEMM,
		M: oh * ow, K: r * s * cin, N: cout,
		IfmapBytes:  uint64(h*w*cin) * ElemBytes,
		WeightBytes: uint64(r*s*cin*cout) * ElemBytes,
		OfmapBytes:  uint64(oh*ow*cout) * ElemBytes,
		Inputs:      inputs,
	}
}

// DWConv builds a depthwise convolution: each channel convolved with its
// own r×s filter. GEMM view folds channels into M (PE utilization is lower
// in reality; the fill/drain model captures the small-K cost).
func DWConv(name string, h, w, c, r, s, stride int, pad bool, inputs ...int) Layer {
	oh := outPixels(h, r, stride, pad)
	ow := outPixels(w, s, stride, pad)
	return Layer{
		Name: name, Kind: KindGEMM,
		M: oh * ow * c, K: r * s, N: 1,
		IfmapBytes:  uint64(h*w*c) * ElemBytes,
		WeightBytes: uint64(r*s*c) * ElemBytes,
		OfmapBytes:  uint64(oh*ow*c) * ElemBytes,
		Inputs:      inputs,
	}
}

// FC builds a fully connected layer mapping in → out features for a batch
// of m rows.
func FC(name string, m, in, out int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindGEMM,
		M: m, K: in, N: out,
		IfmapBytes:  uint64(m*in) * ElemBytes,
		WeightBytes: uint64(in*out) * ElemBytes,
		OfmapBytes:  uint64(m*out) * ElemBytes,
		Inputs:      inputs,
	}
}

// MatMul builds an activation×activation GEMM (attention scores etc.):
// both operands are feature maps, no weights.
func MatMul(name string, m, k, n int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindGEMM,
		M: m, K: k, N: n,
		IfmapBytes: uint64(m*k+k*n) * ElemBytes,
		OfmapBytes: uint64(m*n) * ElemBytes,
		Inputs:     inputs,
	}
}

// LSTM builds one LSTM stack pass over seq steps: GEMM M=seq,
// K=inDim+hidden, N=4*hidden, with the recurrent weight matrix as
// parameters.
func LSTM(name string, seq, inDim, hidden int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindGEMM,
		M: seq, K: inDim + hidden, N: 4 * hidden,
		IfmapBytes:  uint64(seq*inDim) * ElemBytes,
		WeightBytes: uint64((inDim+hidden)*4*hidden) * ElemBytes,
		OfmapBytes:  uint64(seq*hidden) * ElemBytes,
		Inputs:      inputs,
	}
}

// GRU builds one GRU stack pass (3 gates instead of 4).
func GRU(name string, seq, inDim, hidden int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindGEMM,
		M: seq, K: inDim + hidden, N: 3 * hidden,
		IfmapBytes:  uint64(seq*inDim) * ElemBytes,
		WeightBytes: uint64((inDim+hidden)*3*hidden) * ElemBytes,
		OfmapBytes:  uint64(seq*hidden) * ElemBytes,
		Inputs:      inputs,
	}
}

// Embedding builds a table-lookup layer: rows lookups of dim features from
// a vocab×dim table.
func Embedding(name string, vocab, dim, rows int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindGather,
		Rows: rows, RowBytes: dim * ElemBytes,
		WeightBytes: uint64(vocab*dim) * ElemBytes,
		OfmapBytes:  uint64(rows*dim) * ElemBytes,
		Inputs:      inputs,
	}
}

// EmbeddingSampled builds a table-lookup layer that fetches rows lookups
// but keeps only kept rows in the output — the decode-time pattern where
// beam search probes tied output embeddings for many candidate tokens and
// emits one per step.
func EmbeddingSampled(name string, vocab, dim, rows, kept int, inputs ...int) Layer {
	l := Embedding(name, vocab, dim, rows, inputs...)
	l.Name = name
	l.OfmapBytes = uint64(kept*dim) * ElemBytes
	return l
}

// Add builds a residual element-wise addition over elems elements.
func Add(name string, elems int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindEltwise,
		IfmapBytes: uint64(2*elems) * ElemBytes,
		OfmapBytes: uint64(elems) * ElemBytes,
		Inputs:     inputs,
	}
}

// Pool builds a pooling layer shrinking inElems to outElems.
func Pool(name string, inElems, outElems int, inputs ...int) Layer {
	return Layer{
		Name: name, Kind: KindPool,
		IfmapBytes: uint64(inElems) * ElemBytes,
		OfmapBytes: uint64(outElems) * ElemBytes,
		Inputs:     inputs,
	}
}
