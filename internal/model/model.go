package model

import (
	"fmt"
)

// Model is a complete inference workload: a DAG of layers.
type Model struct {
	// Name is the full model name, Short the paper's abbreviation
	// (Table III): goo, mob, yt, alex, rcnn, df, res, med, tx, agz,
	// sent, ds2, tf, ncf.
	Name  string
	Short string
	// InputBytes is the model input tensor (sensor data) size.
	InputBytes uint64
	Layers     []Layer
}

// Validate checks the layer graph is a well-formed DAG whose edges point
// backwards and whose layers have sensible dimensions.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %s: no layers", m.Short)
	}
	if m.InputBytes == 0 {
		return fmt.Errorf("model %s: empty input tensor", m.Short)
	}
	for i := range m.Layers {
		l := &m.Layers[i]
		if len(l.Inputs) == 0 {
			return fmt.Errorf("model %s layer %d (%s): no inputs", m.Short, i, l.Name)
		}
		for _, in := range l.Inputs {
			if in < -1 || in >= i {
				return fmt.Errorf("model %s layer %d (%s): input %d not earlier in graph", m.Short, i, l.Name, in)
			}
		}
		switch l.Kind {
		case KindGEMM:
			if l.M <= 0 || l.K <= 0 || l.N <= 0 {
				return fmt.Errorf("model %s layer %d (%s): bad GEMM dims %dx%dx%d", m.Short, i, l.Name, l.M, l.K, l.N)
			}
		case KindGather:
			if l.Rows <= 0 || l.RowBytes <= 0 || l.WeightBytes == 0 {
				return fmt.Errorf("model %s layer %d (%s): bad gather", m.Short, i, l.Name)
			}
		case KindEltwise, KindPool:
			if l.IfmapBytes == 0 || l.OfmapBytes == 0 {
				return fmt.Errorf("model %s layer %d (%s): empty tensors", m.Short, i, l.Name)
			}
		default:
			return fmt.Errorf("model %s layer %d (%s): unknown kind", m.Short, i, l.Name)
		}
		if l.OfmapBytes == 0 {
			return fmt.Errorf("model %s layer %d (%s): no output", m.Short, i, l.Name)
		}
	}
	return nil
}

// Footprint returns the Table III memory requirement: model parameters,
// the model input, and the peak concurrent activation footprint (the
// runtime reuses feature-map buffers between layers, so the live set is
// the largest single layer's ifmap+ofmap, not the sum over layers).
func (m *Model) Footprint() uint64 {
	total := m.InputBytes + m.WeightBytes()
	var peak uint64
	for i := range m.Layers {
		if act := m.Layers[i].IfmapBytes + m.Layers[i].OfmapBytes; act > peak {
			peak = act
		}
	}
	return total + peak
}

// WeightBytes returns total parameter bytes.
func (m *Model) WeightBytes() uint64 {
	var total uint64
	for i := range m.Layers {
		total += m.Layers[i].WeightBytes
	}
	return total
}

// MACs returns the total multiply-accumulate operations.
func (m *Model) MACs() uint64 {
	var total uint64
	for i := range m.Layers {
		total += m.Layers[i].MACs()
	}
	return total
}

// HasEmbedding reports whether any layer is a gather — the models the
// paper singles out as memory-intensive (sent, tf, ncf).
func (m *Model) HasEmbedding() bool {
	for i := range m.Layers {
		if m.Layers[i].Kind == KindGather {
			return true
		}
	}
	return false
}

// ByShort returns the model with the given Table III abbreviation.
func ByShort(short string) (*Model, error) {
	for _, m := range All() {
		if m.Short == short {
			return m, nil
		}
	}
	return nil, fmt.Errorf("model: unknown short name %q (want one of %v)", short, ShortNames())
}

// ShortNames lists the Table III abbreviations in paper order.
func ShortNames() []string {
	names := make([]string, 0, len(All()))
	for _, m := range All() {
		names = append(names, m.Short)
	}
	return names
}
