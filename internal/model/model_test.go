package model

import (
	"math"
	"testing"
)

func TestAllModelsValidate(t *testing.T) {
	models := All()
	if len(models) != 14 {
		t.Fatalf("zoo has %d models, want 14 (Table III)", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Short, err)
		}
	}
}

func TestPaperOrder(t *testing.T) {
	want := []string{"goo", "mob", "yt", "alex", "rcnn", "df", "res", "med", "tx", "agz", "sent", "ds2", "tf", "ncf"}
	got := ShortNames()
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("model order: got %v, want %v", got, want)
		}
	}
}

// TestFootprintsMatchTableIII is the Table III reproduction: every model's
// computed footprint must land within 20% of the paper's reported value
// (our graphs are reconstructions; see DESIGN.md calibration notes).
func TestFootprintsMatchTableIII(t *testing.T) {
	for _, m := range All() {
		paper, ok := PaperFootprintsMB[m.Short]
		if !ok {
			t.Errorf("%s: no paper footprint recorded", m.Short)
			continue
		}
		ours := float64(m.Footprint()) / (1 << 20)
		ratio := ours / paper
		if math.Abs(ratio-1) > 0.20 {
			t.Errorf("%s: footprint %.1fMB vs paper %.1fMB (ratio %.2f)", m.Short, ours, paper, ratio)
		}
	}
}

func TestByShort(t *testing.T) {
	m, err := ByShort("res")
	if err != nil || m.Name != "Resnet50" {
		t.Fatalf("ByShort(res) = %v, %v", m, err)
	}
	if _, err := ByShort("nope"); err == nil {
		t.Fatal("unknown short name accepted")
	}
}

func TestEmbeddingModels(t *testing.T) {
	// The paper's memory-intensive workloads are exactly those with
	// embedding layers: sent, tf, ncf (Sec. V-A).
	want := map[string]bool{"sent": true, "tf": true, "ncf": true}
	for _, m := range All() {
		if m.HasEmbedding() != want[m.Short] {
			t.Errorf("%s: HasEmbedding = %v, want %v", m.Short, m.HasEmbedding(), want[m.Short])
		}
	}
}

func TestConvDims(t *testing.T) {
	l := Conv("c", 224, 224, 3, 7, 7, 64, 2, true)
	if l.M != 112*112 || l.K != 7*7*3 || l.N != 64 {
		t.Errorf("conv GEMM dims = %dx%dx%d", l.M, l.K, l.N)
	}
	if l.IfmapBytes != 224*224*3*2 || l.OfmapBytes != 112*112*64*2 {
		t.Errorf("conv tensor sizes = %d/%d", l.IfmapBytes, l.OfmapBytes)
	}
	if l.WeightBytes != 7*7*3*64*2 {
		t.Errorf("conv weights = %d", l.WeightBytes)
	}
	// Valid padding.
	v := Conv("v", 227, 227, 3, 11, 11, 96, 4, false)
	if v.M != 55*55 {
		t.Errorf("valid-pad conv M = %d, want %d", v.M, 55*55)
	}
}

func TestDWConvDims(t *testing.T) {
	l := DWConv("dw", 112, 112, 32, 3, 3, 1, true)
	if l.M != 112*112*32 || l.K != 9 || l.N != 1 {
		t.Errorf("dwconv GEMM dims = %dx%dx%d", l.M, l.K, l.N)
	}
	if l.WeightBytes != 3*3*32*2 {
		t.Errorf("dwconv weights = %d", l.WeightBytes)
	}
}

func TestLSTMDims(t *testing.T) {
	l := LSTM("l", 256, 513, 864)
	if l.M != 256 || l.K != 513+864 || l.N != 4*864 {
		t.Errorf("lstm GEMM dims = %dx%dx%d", l.M, l.K, l.N)
	}
	g := GRU("g", 75, 440, 440)
	if g.N != 3*440 {
		t.Errorf("gru N = %d", g.N)
	}
}

func TestEmbeddingDims(t *testing.T) {
	l := Embedding("e", 30000, 960, 1024)
	if l.Kind != KindGather || l.Rows != 1024 || l.RowBytes != 1920 {
		t.Errorf("embedding = %+v", l)
	}
	if l.WeightBytes != 30000*960*2 {
		t.Errorf("table bytes = %d", l.WeightBytes)
	}
	if l.MACs() != 0 {
		t.Error("gather has no MACs")
	}
}

func TestMACs(t *testing.T) {
	l := FC("f", 4, 10, 20)
	if l.MACs() != 800 {
		t.Errorf("FC MACs = %d, want 800", l.MACs())
	}
	m := &Model{Short: "x", Layers: []Layer{l, Add("a", 100, 0)}}
	if m.MACs() != 800 {
		t.Errorf("model MACs = %d", m.MACs())
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name string
		m    Model
	}{
		{"empty", Model{Short: "x"}},
		{"zero input", Model{Short: "x", Layers: []Layer{
			{Kind: KindGEMM, M: 1, K: 1, N: 1, OfmapBytes: 2, Inputs: []int{-1}},
		}}},
		{"no inputs", Model{Short: "x", Layers: []Layer{{Kind: KindGEMM, M: 1, K: 1, N: 1, OfmapBytes: 2}}}},
		{"forward edge", Model{Short: "x", Layers: []Layer{
			{Kind: KindGEMM, M: 1, K: 1, N: 1, OfmapBytes: 2, Inputs: []int{0}},
		}}},
		{"bad gemm", Model{Short: "x", Layers: []Layer{
			{Kind: KindGEMM, M: 0, K: 1, N: 1, OfmapBytes: 2, Inputs: []int{-1}},
		}}},
		{"bad gather", Model{Short: "x", Layers: []Layer{
			{Kind: KindGather, Rows: 0, OfmapBytes: 2, Inputs: []int{-1}},
		}}},
		{"empty eltwise", Model{Short: "x", Layers: []Layer{
			{Kind: KindEltwise, Inputs: []int{-1}},
		}}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestKindString(t *testing.T) {
	// Each iteration asserts independently; order never reaches output.
	for k, s := range map[Kind]string{KindGEMM: "gemm", KindGather: "gather", KindEltwise: "eltwise", KindPool: "pool"} { //tnpu:orderfree
		if k.String() != s {
			t.Errorf("kind %d = %q", int(k), k.String())
		}
	}
}

func TestFootprintComposition(t *testing.T) {
	m := Model{
		Short:      "x",
		InputBytes: 100,
		Layers: []Layer{
			{Kind: KindGEMM, M: 1, K: 1, N: 1, WeightBytes: 1000, IfmapBytes: 100, OfmapBytes: 50, Inputs: []int{-1}},
			{Kind: KindGEMM, M: 1, K: 1, N: 1, WeightBytes: 500, IfmapBytes: 50, OfmapBytes: 700, Inputs: []int{0}},
		},
	}
	// weights 1500 + input 100 + peak act (50+700).
	if got := m.Footprint(); got != 1500+100+750 {
		t.Errorf("Footprint = %d, want %d", got, 1500+100+750)
	}
}
