package model

import "sync"

// builder assembles sequential-with-branches layer graphs.
type builder struct {
	m    Model
	last int
}

func newBuilder(name, short string, inputBytes uint64) *builder {
	return &builder{m: Model{Name: name, Short: short, InputBytes: inputBytes}, last: -1}
}

// add appends a layer consuming the previous one (or the model input).
func (b *builder) add(l Layer) int {
	return b.addFrom([]int{b.last}, l)
}

// addFrom appends a layer with explicit producer indices.
func (b *builder) addFrom(inputs []int, l Layer) int {
	l.Inputs = inputs
	b.m.Layers = append(b.m.Layers, l)
	b.last = len(b.m.Layers) - 1
	return b.last
}

func (b *builder) build() *Model {
	m := b.m
	if err := m.Validate(); err != nil {
		panic(err) // zoo definitions are compile-time constants
	}
	return &m
}

// inception adds one GoogLeNet inception module at h×w spatial size with
// cin input channels and the six standard branch widths; returns the
// output channel count.
func (b *builder) inception(prefix string, h, cin, c1, c3r, c3, c5r, c5, cp int) int {
	in := b.last
	b.addFrom([]int{in}, Conv(prefix+"/1x1", h, h, cin, 1, 1, c1, 1, true))
	r3 := b.addFrom([]int{in}, Conv(prefix+"/3x3r", h, h, cin, 1, 1, c3r, 1, true))
	b.addFrom([]int{r3}, Conv(prefix+"/3x3", h, h, c3r, 3, 3, c3, 1, true))
	r5 := b.addFrom([]int{in}, Conv(prefix+"/5x5r", h, h, cin, 1, 1, c5r, 1, true))
	b.addFrom([]int{r5}, Conv(prefix+"/5x5", h, h, c5r, 5, 5, c5, 1, true))
	pp := b.addFrom([]int{in}, Pool(prefix+"/pool", h*h*cin, h*h*cin))
	b.addFrom([]int{pp}, Conv(prefix+"/poolproj", h, h, cin, 1, 1, cp, 1, true))
	// Concatenation is a no-op in memory terms (branches write adjacent
	// regions); downstream layers consume the last branch index with the
	// concatenated channel count.
	return c1 + c3 + c5 + cp
}

// bottleneck adds one ResNet bottleneck (1x1-3x3-1x1 + residual add).
func (b *builder) bottleneck(prefix string, h, cin, mid, cout, stride int, project bool) {
	in := b.last
	oh := h / stride
	b.addFrom([]int{in}, Conv(prefix+"/a", h, h, cin, 1, 1, mid, stride, true))
	b.add(Conv(prefix+"/b", oh, oh, mid, 3, 3, mid, 1, true))
	main := b.add(Conv(prefix+"/c", oh, oh, mid, 1, 1, cout, 1, true))
	short := in
	if project {
		short = b.addFrom([]int{in}, Conv(prefix+"/proj", h, h, cin, 1, 1, cout, stride, true))
	}
	b.addFrom([]int{main, short}, Add(prefix+"/add", oh*oh*cout))
}

func buildGooglenet() *Model {
	b := newBuilder("GoogleNet", "goo", 224*224*3*ElemBytes)
	b.add(Conv("conv1", 224, 224, 3, 7, 7, 64, 2, true))
	p1 := b.add(Pool("pool1", 112*112*64, 56*56*64))
	b.addFrom([]int{p1}, Conv("conv2r", 56, 56, 64, 1, 1, 64, 1, true))
	b.add(Conv("conv2", 56, 56, 64, 3, 3, 192, 1, true))
	b.add(Pool("pool2", 56*56*192, 28*28*192))
	c := b.inception("3a", 28, 192, 64, 96, 128, 16, 32, 32)
	c = b.inception("3b", 28, c, 128, 128, 192, 32, 96, 64)
	b.add(Pool("pool3", 28*28*c, 14*14*c))
	c = b.inception("4a", 14, c, 192, 96, 208, 16, 48, 64)
	c = b.inception("4b", 14, c, 160, 112, 224, 24, 64, 64)
	c = b.inception("4c", 14, c, 128, 128, 256, 24, 64, 64)
	c = b.inception("4d", 14, c, 112, 144, 288, 32, 64, 64)
	c = b.inception("4e", 14, c, 256, 160, 320, 32, 128, 128)
	b.add(Pool("pool4", 14*14*c, 7*7*c))
	c = b.inception("5a", 7, c, 256, 160, 320, 32, 128, 128)
	c = b.inception("5b", 7, c, 384, 192, 384, 48, 128, 128)
	b.add(Pool("gap", 7*7*c, c))
	b.add(FC("fc", 1, c, 1000))
	return b.build()
}

func buildMobilenet() *Model {
	b := newBuilder("MobileNet", "mob", 224*224*3*ElemBytes)
	b.add(Conv("conv1", 224, 224, 3, 3, 3, 32, 2, true))
	// (channels, stride) pairs of the 13 depthwise-separable blocks.
	specs := []struct{ c, s int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	h, cin := 112, 32
	for i, sp := range specs {
		b.add(DWConv(dwName("dw", i), h, h, cin, 3, 3, sp.s, true))
		h /= sp.s
		b.add(Conv(dwName("pw", i), h, h, cin, 1, 1, sp.c, 1, true))
		cin = sp.c
	}
	b.add(Pool("gap", 7*7*1024, 1024))
	b.add(FC("fc", 1, 1024, 1000))
	return b.build()
}

func dwName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

func buildYoloTiny() *Model {
	b := newBuilder("Yolo-tiny", "yt", 416*416*3*ElemBytes)
	h, cin := 416, 3
	for i, c := range []int{16, 32, 64, 128, 256, 512} {
		b.add(Conv(dwName("conv", i), h, h, cin, 3, 3, c, 1, true))
		b.add(Pool(dwName("pool", i), h*h*c, (h/2)*(h/2)*c))
		h /= 2
		cin = c
	}
	b.add(Conv("conv7", h, h, 512, 3, 3, 512, 1, true))
	b.add(Conv("conv8", h, h, 512, 3, 3, 512, 1, true))
	b.add(Conv("det", h, h, 512, 1, 1, 125, 1, true))
	return b.build()
}

func buildAlexnet() *Model {
	b := newBuilder("Alexnet", "alex", 227*227*3*ElemBytes)
	b.add(Conv("conv1", 227, 227, 3, 11, 11, 96, 4, false))
	b.add(Pool("pool1", 55*55*96, 27*27*96))
	b.add(Conv("conv2", 27, 27, 96, 5, 5, 256, 1, true))
	b.add(Pool("pool2", 27*27*256, 13*13*256))
	b.add(Conv("conv3", 13, 13, 256, 3, 3, 384, 1, true))
	b.add(Conv("conv4", 13, 13, 384, 3, 3, 384, 1, true))
	b.add(Conv("conv5", 13, 13, 384, 3, 3, 256, 1, true))
	b.add(Pool("pool5", 13*13*256, 6*6*256))
	b.add(FC("fc6", 1, 9216, 192))
	b.add(FC("fc7", 1, 192, 128))
	b.add(FC("fc8", 1, 128, 10))
	return b.build()
}

func buildFasterRCNN() *Model {
	// Truncated-VGG backbone + RPN + detection head, sized to the paper's
	// 29.3MB footprint.
	b := newBuilder("FasterRCNN", "rcnn", 160*160*3*ElemBytes)
	b.add(Conv("conv1_1", 160, 160, 3, 3, 3, 64, 1, true))
	b.add(Conv("conv1_2", 160, 160, 64, 3, 3, 64, 1, true))
	b.add(Pool("pool1", 160*160*64, 80*80*64))
	b.add(Conv("conv2_1", 80, 80, 64, 3, 3, 128, 1, true))
	b.add(Conv("conv2_2", 80, 80, 128, 3, 3, 128, 1, true))
	b.add(Pool("pool2", 80*80*128, 40*40*128))
	b.add(Conv("conv3_1", 40, 40, 128, 3, 3, 256, 1, true))
	b.add(Conv("conv3_2", 40, 40, 256, 3, 3, 256, 1, true))
	b.add(Conv("conv3_3", 40, 40, 256, 3, 3, 256, 1, true))
	b.add(Pool("pool3", 40*40*256, 20*20*256))
	b.add(Conv("conv4_1", 20, 20, 256, 3, 3, 512, 1, true))
	b.add(Conv("conv4_2", 20, 20, 512, 3, 3, 512, 1, true))
	b.add(Conv("conv4_3", 20, 20, 512, 3, 3, 512, 1, true))
	feat := b.last
	// Region proposal network.
	rpn := b.addFrom([]int{feat}, Conv("rpn", 20, 20, 512, 3, 3, 512, 1, true))
	b.addFrom([]int{rpn}, Conv("rpn_cls", 20, 20, 512, 1, 1, 18, 1, true))
	b.addFrom([]int{rpn}, Conv("rpn_reg", 20, 20, 512, 1, 1, 36, 1, true))
	// RoI head over 64 proposals of 7x7x512.
	roi := b.addFrom([]int{feat}, Pool("roi_pool", 20*20*512, 64*7*7*512))
	f := b.addFrom([]int{roi}, FC("head_fc", 64, 7*7*512, 64))
	b.addFrom([]int{f}, FC("cls", 64, 64, 21))
	b.addFrom([]int{f}, FC("reg", 64, 64, 84))
	return b.build()
}

func buildDeepFace() *Model {
	b := newBuilder("DeepFace", "df", 152*152*3*ElemBytes)
	b.add(Conv("c1", 152, 152, 3, 11, 11, 24, 1, true))
	b.add(Pool("pool1", 152*152*24, 71*71*24))
	b.add(Conv("c3", 71, 71, 24, 9, 9, 16, 1, false))
	b.add(Conv("l4", 63, 63, 16, 9, 9, 16, 2, false))
	b.add(Conv("l5", 28, 28, 16, 7, 7, 16, 2, false))
	b.add(Conv("l6", 11, 11, 16, 5, 5, 16, 1, false))
	b.add(FC("f7", 1, 7*7*16, 512))
	b.add(FC("f8", 1, 512, 256))
	return b.build()
}

func buildResnet50() *Model {
	// ResNet50 structure with base width 56 (7/8 of canonical 64), which
	// lands the fp16 footprint at the paper's 41.4MB (Table III); the
	// canonical width would be 51MB+.
	b := newBuilder("Resnet50", "res", 224*224*3*ElemBytes)
	b.add(Conv("conv1", 224, 224, 3, 7, 7, 56, 2, true))
	b.add(Pool("pool1", 112*112*56, 56*56*56))
	type stage struct{ blocks, mid, out, stride, h int }
	stages := []stage{
		{3, 56, 224, 1, 56},
		{4, 112, 448, 2, 56},
		{6, 224, 896, 2, 28},
		{3, 448, 1792, 2, 14},
	}
	cin := 56
	for si, st := range stages {
		h := st.h
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			b.bottleneck(resName(si, bi), h, cin, st.mid, st.out, stride, bi == 0)
			if bi == 0 {
				h /= st.stride
			}
			cin = st.out
		}
	}
	b.add(Pool("gap", 7*7*1792, 1792))
	b.add(FC("fc", 1, 1792, 1000))
	return b.build()
}

func resName(stage, block int) string {
	return "res" + string(rune('2'+stage)) + string(rune('a'+block))
}

func buildMED() *Model {
	// Melody extraction/detection LSTM-RNN over 512 spectrogram frames:
	// enough recurrence depth that the systolic array stays as busy as
	// the DMA, the compute-bound balance the paper reports for med.
	b := newBuilder("MelodyExtractionDetection", "med", 512*513*ElemBytes)
	b.add(LSTM("lstm1", 512, 513, 864))
	b.add(LSTM("lstm2", 512, 864, 864))
	b.add(LSTM("lstm3", 512, 864, 864))
	b.add(FC("out", 512, 864, 722))
	return b.build()
}

func buildTextGen() *Model {
	// Graves-style character LSTM, 3 stacked layers over 512 steps.
	b := newBuilder("Text-generation", "tx", 512*256*ElemBytes)
	b.add(LSTM("lstm1", 512, 256, 700))
	b.add(LSTM("lstm2", 512, 700, 700))
	b.add(LSTM("lstm3", 512, 700, 700))
	b.add(FC("out", 512, 700, 256))
	return b.build()
}

func buildAlphaGoZero() *Model {
	b := newBuilder("AlphaGoZero", "agz", 19*19*17*ElemBytes)
	b.add(Conv("stem", 19, 19, 17, 3, 3, 128, 1, true))
	for i := 0; i < 2; i++ {
		in := b.last
		b.add(Conv(dwName("rb_a", i), 19, 19, 128, 3, 3, 128, 1, true))
		main := b.add(Conv(dwName("rb_b", i), 19, 19, 128, 3, 3, 128, 1, true))
		b.addFrom([]int{main, in}, Add(dwName("rb_add", i), 19*19*128))
	}
	trunk := b.last
	p := b.addFrom([]int{trunk}, Conv("policy_conv", 19, 19, 128, 1, 1, 2, 1, true))
	b.addFrom([]int{p}, FC("policy_fc", 1, 19*19*2, 362))
	v := b.addFrom([]int{trunk}, Conv("value_conv", 19, 19, 128, 1, 1, 1, 1, true))
	vf := b.addFrom([]int{v}, FC("value_fc1", 1, 19*19, 128))
	b.addFrom([]int{vf}, FC("value_fc2", 1, 128, 1))
	return b.build()
}

func buildSentCNN() *Model {
	// Sentiment seq-CNN over 1024 tokens with region (n-gram) embeddings:
	// a 57.6MB table of 225k short 256B rows, with 12 candidate n-gram
	// probes per position feeding three kept region views. The flood of
	// fine-grained scattered row reads is what makes sent the most
	// protection-hostile workload in the paper (Fig. 4/5).
	b := newBuilder("Sentimental-seqCNN", "sent", 1024*4)
	b.add(EmbeddingSampled("embed", 225000, 128, 12*1024, 3*1024))
	b.add(Conv("conv3", 1024, 1, 384, 3, 1, 128, 1, true))
	b.add(Pool("maxpool", 1024*128, 128))
	b.add(FC("fc", 1, 128, 2))
	return b.build()
}

func buildDeepSpeech2() *Model {
	b := newBuilder("DeepSpeech2", "ds2", 300*161*ElemBytes)
	b.add(Conv("conv1", 300, 161, 1, 11, 41, 32, 2, true))
	b.add(Conv("conv2", 150, 81, 32, 11, 21, 32, 2, true))
	seq, feat := 75, 41*32
	b.add(GRU("gru1", seq, feat, 440))
	for i := 0; i < 4; i++ {
		b.add(GRU(dwName("gru", i+2), seq, 440, 440))
	}
	b.add(FC("out", seq, 440, 29))
	return b.build()
}

func buildTransformer() *Model {
	// Transformer with d_model=384, d_ff=1536, 6 encoder + 6 decoder
	// layers, 32k shared vocabulary, 64+64 token sequences — sized to the
	// paper's 75.6MB, the largest footprint in Table III.
	const (
		d     = 384
		dff   = 1536
		seq   = 128
		vocab = 32000
	)
	b := newBuilder("Transformer", "tf", seq*2*4)
	// The shared factorized embedding table (ALBERT-style: vocab x d/2,
	// projected to d_model) serves encoder/decoder token lookups plus the
	// decode-time beam-search probes of the tied output embedding — the
	// "multiple large one-hot vectors" fine-grained access pattern that
	// makes tf protection-hostile (Sec. III-B, V-B): 2*seq token rows and
	// seq steps x beam 4 x 64 candidate probes, keeping 2*seq rows.
	b.add(EmbeddingSampled("embed", 2*vocab, d/2, 2*seq+seq*4*64, 2*seq))
	addBlock := func(prefix string, cross bool) {
		// Q/K/V/O projections folded into one GEMM of 4 d×d matrices.
		b.add(FC(prefix+"/qkvo", seq, d, 4*d))
		b.add(MatMul(prefix+"/scores", seq, d, seq))
		b.add(MatMul(prefix+"/context", seq, seq, d))
		if cross {
			b.add(FC(prefix+"/xqkvo", seq, d, 4*d))
			b.add(MatMul(prefix+"/xscores", seq, d, seq))
			b.add(MatMul(prefix+"/xcontext", seq, seq, d))
		}
		b.add(FC(prefix+"/ffn1", seq, d, dff))
		b.add(FC(prefix+"/ffn2", seq, dff, d))
	}
	for i := 0; i < 6; i++ {
		addBlock("enc"+string(rune('0'+i)), false)
	}
	for i := 0; i < 6; i++ {
		addBlock("dec"+string(rune('0'+i)), true)
	}
	b.add(FC("logits", seq, d, vocab/10)) // factored output projection
	return b.build()
}

func buildNCF() *Model {
	// Neural collaborative filtering: one user scored against a batch of
	// 256 candidate items through user/item embeddings + MLP.
	b := newBuilder("NCF-recommendation", "ncf", 256*8)
	u := b.add(Embedding("user_embed", 45000, 64, 1))
	it := b.add(Embedding("item_embed", 45000, 64, 256))
	b.addFrom([]int{u, it}, FC("mlp1", 256, 128, 256))
	b.add(FC("mlp2", 256, 256, 128))
	b.add(FC("mlp3", 256, 128, 64))
	b.add(FC("out", 256, 64, 1))
	return b.build()
}

var (
	allOnce sync.Once
	all     []*Model
)

// All returns the 14 Table III models in paper order. The slice and models
// are shared; callers must not mutate them.
func All() []*Model {
	allOnce.Do(func() {
		all = []*Model{
			buildGooglenet(), buildMobilenet(), buildYoloTiny(), buildAlexnet(),
			buildFasterRCNN(), buildDeepFace(), buildResnet50(), buildMED(),
			buildTextGen(), buildAlphaGoZero(), buildSentCNN(), buildDeepSpeech2(),
			buildTransformer(), buildNCF(),
		}
	})
	return all
}

// PaperFootprintsMB records Table III's memory footprints for comparison.
var PaperFootprintsMB = map[string]float64{
	"goo": 15.2, "mob": 11.4, "yt": 18.9, "alex": 11.7,
	"rcnn": 29.3, "df": 2.2, "res": 41.4, "med": 34.8,
	"tx": 21.7, "agz": 2.2, "sent": 58.8, "ds2": 15.6,
	"tf": 75.6, "ncf": 11.6,
}
