package spm

import "testing"

func TestValidate(t *testing.T) {
	if err := (SPM{480 << 10}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (SPM{}).Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestFits(t *testing.T) {
	s := SPM{1000}
	if !s.Fits(400, 600) {
		t.Error("exact fit rejected")
	}
	if s.Fits(400, 601) {
		t.Error("overflow accepted")
	}
	if !s.Fits() {
		t.Error("empty set rejected")
	}
}

func TestTileBudget(t *testing.T) {
	s := SPM{480 << 10}
	// Three double-buffered operands (A, B, C): capacity / 6.
	if got := s.TileBudget(3); got != (480<<10)/6 {
		t.Errorf("TileBudget(3) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero buffers")
		}
	}()
	s.TileBudget(0)
}

func TestStreamChunk(t *testing.T) {
	if got := (SPM{1 << 20}).StreamChunk(); got != 512<<10 {
		t.Errorf("StreamChunk = %d", got)
	}
}
