// Package spm models the NPU scratchpad memory: a software-managed on-chip
// buffer (480KB Small / 1MB Large, Table II) whose capacity bounds tile
// sizes and whose double buffering lets mvin/mvout overlap compute
// (Sec. II-C).
package spm

import "fmt"

// SPM is a scratchpad capacity model.
type SPM struct {
	CapacityBytes uint64
}

// Validate reports configuration errors.
func (s SPM) Validate() error {
	if s.CapacityBytes == 0 {
		return fmt.Errorf("spm: zero capacity")
	}
	return nil
}

// Fits reports whether buffers of the given sizes co-reside.
func (s SPM) Fits(sizes ...uint64) bool {
	var total uint64
	for _, sz := range sizes {
		total += sz
	}
	return total <= s.CapacityBytes
}

// TileBudget returns the per-buffer byte budget when all listed buffers
// are double-buffered: each logical buffer needs two copies so the DMA can
// fill the next tile while the PEs consume the current one.
func (s SPM) TileBudget(buffers int) uint64 {
	if buffers <= 0 {
		panic(fmt.Sprintf("spm: non-positive buffer count %d", buffers))
	}
	return s.CapacityBytes / uint64(2*buffers)
}

// StreamChunk returns the transfer chunk size for streaming layers
// (eltwise/pool/gather staging): half the scratchpad, double buffered.
func (s SPM) StreamChunk() uint64 { return s.CapacityBytes / 2 }
