// Package isa defines the NPU instruction trace the compiler emits and the
// simulator executes. The instruction set follows the Gemmini-style
// CPU-driven execution model of Fig. 8 — mvin/mvout move data between
// external memory and the scratchpad, preload stages weights into the
// systolic array, compute runs it — extended with the version-number
// operand the tree-less scheme adds to every mvin/mvout (Sec. IV-C).
package isa

import (
	"fmt"
	"strings"

	"tnpu/internal/tensor"
)

// Op enumerates NPU operations.
type Op uint8

const (
	// OpMvIn loads tensor data from external memory into the scratchpad,
	// MAC-verifying each 64B block against the supplied version.
	OpMvIn Op = iota
	// OpMvOut writes scratchpad data to external memory, generating MACs
	// with the supplied version.
	OpMvOut
	// OpPreload stages a weight tile from scratchpad into the PE array.
	OpPreload
	// OpCompute runs the systolic array for a precomputed cycle count.
	OpCompute
)

// String returns the mnemonic.
func (o Op) String() string {
	switch o {
	case OpMvIn:
		return "mvin"
	case OpMvOut:
		return "mvout"
	case OpPreload:
		return "preload"
	case OpCompute:
		return "compute"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Segment is one contiguous piece of a transfer. Dense tensor tiles are a
// single segment; embedding-table gathers are many small ones, which is
// what gives sent/tf their low-spatial-locality access pattern (Sec. III-B).
type Segment struct {
	Addr  uint64
	Bytes uint64
}

// Instr is one trace entry. Memory ops carry the tensor/tile identity and
// version number; compute ops carry their systolic cycle count.
type Instr struct {
	Op Op

	// Tensor/Tile identify the data for memory ops.
	Tensor tensor.ID
	Tile   int

	// Segments lists the memory ranges a mvin/mvout touches.
	Segments []Segment

	// Version is the version-number operand (tree-less scheme). The
	// baseline and unsecure schemes ignore it.
	Version uint64

	// Cycles is the PE-array busy time for OpCompute/OpPreload.
	Cycles uint64

	// Layer tags the originating model layer for per-layer statistics.
	Layer int

	// Deps lists trace indices this instruction must wait for, beyond the
	// implicit in-order execution of its own functional unit. The
	// compiler uses it to express tile dataflow (compute waits for its
	// mvins, mvout waits for its compute, layers wait for producers).
	Deps []int32
}

// TotalBytes sums the instruction's segment sizes.
func (in *Instr) TotalBytes() uint64 {
	var sum uint64
	for _, s := range in.Segments {
		sum += s.Bytes
	}
	return sum
}

// IsDMA reports whether the instruction occupies the DMA engine.
func (in *Instr) IsDMA() bool { return in.Op == OpMvIn || in.Op == OpMvOut }

// String renders a compact human-readable form for trace dumps.
func (in *Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s L%d", in.Op, in.Layer)
	switch in.Op {
	case OpMvIn, OpMvOut:
		fmt.Fprintf(&b, " t%d.%d v%d %dB/%dseg", in.Tensor, in.Tile, in.Version, in.TotalBytes(), len(in.Segments))
	case OpCompute, OpPreload:
		fmt.Fprintf(&b, " %d cycles", in.Cycles)
	}
	if len(in.Deps) > 0 {
		fmt.Fprintf(&b, " deps=%v", in.Deps)
	}
	return b.String()
}

// Trace is a complete NPU program.
type Trace struct {
	Instrs []Instr
}

// Append adds an instruction and returns its index for dependency wiring.
func (t *Trace) Append(in Instr) int32 {
	t.Instrs = append(t.Instrs, in)
	return int32(len(t.Instrs) - 1)
}

// Validate checks structural invariants: deps point backwards, DMA ops have
// segments, compute ops have cycles. The simulator trusts a validated trace.
func (t *Trace) Validate() error {
	for i := range t.Instrs {
		in := &t.Instrs[i]
		for _, d := range in.Deps {
			if d < 0 || int(d) >= i {
				return fmt.Errorf("isa: instr %d dep %d not strictly earlier", i, d)
			}
		}
		switch in.Op {
		case OpMvIn, OpMvOut:
			if len(in.Segments) == 0 || in.TotalBytes() == 0 {
				return fmt.Errorf("isa: instr %d (%s) has no data", i, in.Op)
			}
		case OpCompute:
			if in.Cycles == 0 {
				return fmt.Errorf("isa: instr %d compute with zero cycles", i)
			}
		case OpPreload:
			// zero-cycle preloads are legal (folded into compute).
		default:
			return fmt.Errorf("isa: instr %d has unknown op %d", i, in.Op)
		}
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	MvIns, MvOuts, Computes int
	BytesIn, BytesOut       uint64
	ComputeCycles           uint64
	Layers                  int
}

// Summarize computes aggregate statistics.
func (t *Trace) Summarize() Stats {
	var s Stats
	maxLayer := -1
	for i := range t.Instrs {
		in := &t.Instrs[i]
		switch in.Op {
		case OpMvIn:
			s.MvIns++
			s.BytesIn += in.TotalBytes()
		case OpMvOut:
			s.MvOuts++
			s.BytesOut += in.TotalBytes()
		case OpCompute:
			s.Computes++
			s.ComputeCycles += in.Cycles
		}
		if in.Layer > maxLayer {
			maxLayer = in.Layer
		}
	}
	s.Layers = maxLayer + 1
	return s
}
