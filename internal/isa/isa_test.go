package isa

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	want := map[Op]string{OpMvIn: "mvin", OpMvOut: "mvout", OpPreload: "preload", OpCompute: "compute"}
	// Each iteration asserts independently; order never reaches output.
	for op, s := range want { //tnpu:orderfree
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), s)
		}
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Error("unknown op string")
	}
}

func TestTotalBytes(t *testing.T) {
	in := Instr{Op: OpMvIn, Segments: []Segment{{0, 100}, {4096, 28}}}
	if in.TotalBytes() != 128 {
		t.Errorf("TotalBytes = %d, want 128", in.TotalBytes())
	}
	if !in.IsDMA() {
		t.Error("mvin should be DMA")
	}
	if (&Instr{Op: OpCompute}).IsDMA() {
		t.Error("compute is not DMA")
	}
}

func TestAppendReturnsIndex(t *testing.T) {
	var tr Trace
	i0 := tr.Append(Instr{Op: OpMvIn, Segments: []Segment{{0, 64}}})
	i1 := tr.Append(Instr{Op: OpCompute, Cycles: 10, Deps: []int32{i0}})
	if i0 != 0 || i1 != 1 {
		t.Fatalf("indices = %d,%d", i0, i1)
	}
}

func TestValidateGood(t *testing.T) {
	var tr Trace
	a := tr.Append(Instr{Op: OpMvIn, Segments: []Segment{{0, 64}}})
	c := tr.Append(Instr{Op: OpCompute, Cycles: 5, Deps: []int32{a}})
	tr.Append(Instr{Op: OpMvOut, Segments: []Segment{{64, 64}}, Deps: []int32{c}})
	tr.Append(Instr{Op: OpPreload})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
	}{
		{"forward dep", Trace{Instrs: []Instr{{Op: OpCompute, Cycles: 1, Deps: []int32{0}}}}},
		{"future dep", Trace{Instrs: []Instr{{Op: OpCompute, Cycles: 1, Deps: []int32{5}}}}},
		{"empty mvin", Trace{Instrs: []Instr{{Op: OpMvIn}}}},
		{"zero-byte mvout", Trace{Instrs: []Instr{{Op: OpMvOut, Segments: []Segment{{0, 0}}}}}},
		{"zero-cycle compute", Trace{Instrs: []Instr{{Op: OpCompute}}}},
		{"unknown op", Trace{Instrs: []Instr{{Op: Op(99)}}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSummarize(t *testing.T) {
	var tr Trace
	tr.Append(Instr{Op: OpMvIn, Layer: 0, Segments: []Segment{{0, 128}}})
	tr.Append(Instr{Op: OpCompute, Layer: 0, Cycles: 100})
	tr.Append(Instr{Op: OpMvOut, Layer: 1, Segments: []Segment{{0, 64}}})
	s := tr.Summarize()
	if s.MvIns != 1 || s.MvOuts != 1 || s.Computes != 1 {
		t.Errorf("op counts wrong: %+v", s)
	}
	if s.BytesIn != 128 || s.BytesOut != 64 || s.ComputeCycles != 100 {
		t.Errorf("byte/cycle sums wrong: %+v", s)
	}
	if s.Layers != 2 {
		t.Errorf("layers = %d, want 2", s.Layers)
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpMvIn, Tensor: 3, Tile: 1, Version: 7, Layer: 2, Segments: []Segment{{0, 64}}}
	s := in.String()
	for _, want := range []string{"mvin", "t3.1", "v7", "64B"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	c := Instr{Op: OpCompute, Cycles: 42, Deps: []int32{1}}
	if !strings.Contains(c.String(), "42 cycles") || !strings.Contains(c.String(), "deps") {
		t.Errorf("compute String() = %q", c.String())
	}
}
