package core

import (
	"fmt"

	"tnpu/internal/dram"
	"tnpu/internal/tensor"
)

// BlockBuffer is the per-core 64-byte staging buffer behind the new CPU
// tensor-access instructions (Sec. IV-C): CPU caches cannot carry version
// numbers, so tensor pages are uncacheable and the CPU moves data through
// two small block buffers. ts_write_byte fills the write buffer, which
// ts_write_block flushes to memory under a version number; ts_read_block
// fills the read buffer, which ts_read_byte picks apart.
type BlockBuffer struct {
	data  [dram.BlockBytes]byte
	valid bool
}

// TsWriteByte stores one byte into the write buffer (ts_write_byte).
func (b *BlockBuffer) TsWriteByte(i int, v byte) {
	if i < 0 || i >= dram.BlockBytes {
		panic(fmt.Sprintf("core: ts_write_byte index %d out of block", i))
	}
	b.data[i] = v
	b.valid = true
}

// TsReadByte returns one byte of the read buffer (ts_read_byte). Reading
// an unfilled buffer panics: the software must ts_read_block first.
func (b *BlockBuffer) TsReadByte(i int) byte {
	if !b.valid {
		panic("core: ts_read_byte before ts_read_block")
	}
	if i < 0 || i >= dram.BlockBytes {
		panic(fmt.Sprintf("core: ts_read_byte index %d out of block", i))
	}
	return b.data[i]
}

// TsWriteBlock flushes the write buffer to block index blockIdx of the
// tensor, MACed under the supplied version (ts_write_block). The version
// is an explicit operand, exactly as in the extended ISA: during
// initialization the software writes every block of a tensor under the
// same fresh version and only then publishes it in the table.
func (c *Context) TsWriteBlock(buf *BlockBuffer, id tensor.ID, blockIdx uint64, version uint64) error {
	t, err := c.get(id)
	if err != nil {
		return err
	}
	if blockIdx >= t.Blocks() {
		return fmt.Errorf("core: block %d beyond tensor %s (%d blocks)", blockIdx, t.Name, t.Blocks())
	}
	c.mem.WriteBlock(t.Addr+blockIdx*dram.BlockBytes, buf.data[:], version)
	return nil
}

// TsReadBlock fetches and verifies one tensor block into the read buffer
// (ts_read_block).
func (c *Context) TsReadBlock(buf *BlockBuffer, id tensor.ID, blockIdx uint64, version uint64) error {
	t, err := c.get(id)
	if err != nil {
		return err
	}
	if blockIdx >= t.Blocks() {
		return fmt.Errorf("core: block %d beyond tensor %s (%d blocks)", blockIdx, t.Name, t.Blocks())
	}
	data, err := c.mem.ReadBlock(t.Addr+blockIdx*dram.BlockBytes, version)
	if err != nil {
		return err
	}
	copy(buf.data[:], data)
	buf.valid = true
	return nil
}

// InitTensor is the full initialization flow of Fig. 13a: the CPU streams
// data into the tensor through the ts_write path block by block under a
// fresh version, then publishes the version by bumping the table entry.
// The bump-then-write order matters: readers use the table's value, which
// must match what the blocks were MACed with.
func (c *Context) InitTensor(id tensor.ID, data []byte) error {
	t, err := c.get(id)
	if err != nil {
		return err
	}
	if uint64(len(data)) != t.Bytes {
		return fmt.Errorf("core: tensor %s is %d bytes, got %d", t.Name, t.Bytes, len(data))
	}
	version := c.table.Bump(id)
	var buf BlockBuffer
	for blk := uint64(0); blk < t.Blocks(); blk++ {
		for i := 0; i < dram.BlockBytes; i++ {
			off := blk*dram.BlockBytes + uint64(i)
			if off < uint64(len(data)) {
				buf.TsWriteByte(i, data[off])
			} else {
				buf.TsWriteByte(i, 0)
			}
		}
		if err := c.TsWriteBlock(&buf, id, blk, version); err != nil {
			return err
		}
	}
	return nil
}

// FetchTensor is the inverse flow: the CPU reads the tensor back through
// the ts_read path, verifying every block against the table's version.
func (c *Context) FetchTensor(id tensor.ID) ([]byte, error) {
	t, err := c.get(id)
	if err != nil {
		return nil, err
	}
	version := c.table.Version(id)
	out := make([]byte, 0, t.Bytes)
	var buf BlockBuffer
	for blk := uint64(0); blk < t.Blocks(); blk++ {
		if err := c.TsReadBlock(&buf, id, blk, version); err != nil {
			return nil, err
		}
		for i := 0; i < dram.BlockBytes && uint64(len(out)) < t.Bytes; i++ {
			out = append(out, buf.TsReadByte(i))
		}
	}
	return out, nil
}
