// Package core is the functional TNPU runtime: it wires the paper's
// mechanisms together over real bytes. A Context owns an NPU memory region
// protected by the tree-less scheme (AES-XTS + versioned MACs, package
// secmem), the software version table of Sec. IV-D (package tensor), and
// the CPU-side tensor-access instructions of Sec. IV-C (ts_read_byte /
// ts_write_byte / ts_read_block / ts_write_block with their 64-byte block
// buffers). Every transfer is really encrypted, really MACed, and really
// verified, so tampering, replay, and splicing are detected exactly where
// the hardware would detect them.
//
// The cycle-accurate performance story lives in internal/npu and
// internal/exp; this package is the correctness/security side.
package core

import (
	"fmt"

	"tnpu/internal/dram"
	"tnpu/internal/secmem"
	"tnpu/internal/tensor"
)

// Context is one trusted NPU context: a protected memory region, its
// version table (held in the fully protected enclave region), and the
// tensor allocator. It owns its protected memory, so a context is
// single-goroutine state like the engines underneath it.
//
//tnpu:per-goroutine
type Context struct {
	mem     *secmem.TreelessMemory
	table   *tensor.Table
	tensors map[tensor.ID]tensor.Tensor
	byName  map[string]tensor.ID
	nextID  tensor.ID
	top     uint64
}

// NewContext creates a context keyed by the session keys the enclave
// negotiated at NPU-context initialization (Sec. IV-E).
func NewContext(xtsKey, macKey []byte) (*Context, error) {
	mem, err := secmem.NewTreelessMemory(xtsKey, macKey)
	if err != nil {
		return nil, err
	}
	return &Context{
		mem:     mem,
		table:   tensor.NewTable(),
		tensors: make(map[tensor.ID]tensor.Tensor),
		byName:  make(map[string]tensor.ID),
	}, nil
}

// Memory exposes the raw protected memory — the physical-attack surface
// used by security tests and the attacks example.
func (c *Context) Memory() *secmem.TreelessMemory { return c.mem }

// Table exposes the version table (read-only use expected).
func (c *Context) Table() *tensor.Table { return c.table }

// Alloc reserves a block-aligned tensor in the context's region.
func (c *Context) Alloc(name string, bytes uint64) (tensor.Tensor, error) {
	if bytes == 0 {
		return tensor.Tensor{}, fmt.Errorf("core: empty tensor %q", name)
	}
	if _, dup := c.byName[name]; dup {
		return tensor.Tensor{}, fmt.Errorf("core: duplicate tensor name %q", name)
	}
	t := tensor.Tensor{ID: c.nextID, Name: name, Addr: c.top, Bytes: bytes}
	c.nextID++
	c.top += (bytes + dram.BlockBytes - 1) &^ (dram.BlockBytes - 1)
	c.tensors[t.ID] = t
	c.byName[name] = t.ID
	c.table.Register(t.ID)
	return t, nil
}

// Lookup resolves a tensor by name.
func (c *Context) Lookup(name string) (tensor.Tensor, bool) {
	id, ok := c.byName[name]
	if !ok {
		return tensor.Tensor{}, false
	}
	return c.tensors[id], true
}

func (c *Context) get(id tensor.ID) (tensor.Tensor, error) {
	t, ok := c.tensors[id]
	if !ok {
		return tensor.Tensor{}, fmt.Errorf("core: unknown tensor id %d", id)
	}
	return t, nil
}

// WriteTensor writes a whole tensor as one versioned unit: the software
// bumps the tensor's version number and every covered block is encrypted
// and MACed under it — the mvout / initialization path.
func (c *Context) WriteTensor(id tensor.ID, data []byte) error {
	t, err := c.get(id)
	if err != nil {
		return err
	}
	if uint64(len(data)) != t.Bytes {
		return fmt.Errorf("core: tensor %s is %d bytes, got %d", t.Name, t.Bytes, len(data))
	}
	v := c.table.Bump(id)
	c.mem.Write(t.Addr, data, v)
	return nil
}

// ReadTensor fetches and verifies a whole tensor against its current
// version — the mvin path. Stale, tampered, or relocated data surfaces as
// secmem.ErrIntegrity.
func (c *Context) ReadTensor(id tensor.ID) ([]byte, error) {
	t, err := c.get(id)
	if err != nil {
		return nil, err
	}
	v := c.table.Version(id)
	return c.mem.Read(t.Addr, int(t.Bytes), v)
}

// tileSpan returns the byte range of one of n equal block-aligned tiles.
func tileSpan(t tensor.Tensor, tile, n int) (off, size uint64, err error) {
	if n <= 0 || tile < 0 || tile >= n {
		return 0, 0, fmt.Errorf("core: tile %d of %d invalid", tile, n)
	}
	blocks := t.Blocks()
	lo := blocks * uint64(tile) / uint64(n) * dram.BlockBytes
	hi := blocks * uint64(tile+1) / uint64(n) * dram.BlockBytes
	if hi > t.Bytes {
		hi = t.Bytes
	}
	if hi <= lo {
		return 0, 0, fmt.Errorf("core: tensor %s too small for %d tiles", t.Name, n)
	}
	return lo, hi - lo, nil
}

// ExpandTiles splits the tensor's version entry for tiled updates (Fig. 9
// step 1). Tiles are equal block-aligned spans.
func (c *Context) ExpandTiles(id tensor.ID, tiles int) error {
	if tiles > tensor.MaxTiles {
		return fmt.Errorf("core: %d tiles exceeds the version-table layout (%d)", tiles, tensor.MaxTiles)
	}
	if _, err := c.get(id); err != nil {
		return err
	}
	c.table.Expand(id, tiles)
	return nil
}

// WriteTile writes one tile, bumping only that tile's version.
func (c *Context) WriteTile(id tensor.ID, tile int, data []byte) error {
	t, err := c.get(id)
	if err != nil {
		return err
	}
	n := c.table.Tiles(id)
	if n == 0 {
		return fmt.Errorf("core: tensor %s not tile-expanded", t.Name)
	}
	off, size, err := tileSpan(t, tile, n)
	if err != nil {
		return err
	}
	if uint64(len(data)) != size {
		return fmt.Errorf("core: tile %d of %s is %d bytes, got %d", tile, t.Name, size, len(data))
	}
	v := c.table.BumpTile(id, tile)
	c.mem.Write(t.Addr+off, data, v)
	return nil
}

// ReadTile fetches one tile under its tile version.
func (c *Context) ReadTile(id tensor.ID, tile int) ([]byte, error) {
	t, err := c.get(id)
	if err != nil {
		return nil, err
	}
	n := c.table.Tiles(id)
	if n == 0 {
		return nil, fmt.Errorf("core: tensor %s not tile-expanded", t.Name)
	}
	off, size, err := tileSpan(t, tile, n)
	if err != nil {
		return nil, err
	}
	v := c.table.TileVersion(id, tile)
	return c.mem.Read(t.Addr+off, int(size), v)
}

// MergeTiles collapses the tile versions after a completed layer (Fig. 9
// step 9); it fails if the tiles were updated unevenly.
func (c *Context) MergeTiles(id tensor.ID) error {
	return c.table.Merge(id)
}

// Free drops a tensor whose lifetime ended, reclaiming its version entry.
func (c *Context) Free(id tensor.ID) error {
	t, err := c.get(id)
	if err != nil {
		return err
	}
	c.table.Drop(id)
	delete(c.tensors, id)
	delete(c.byName, t.Name)
	return nil
}
