package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"tnpu/internal/secmem"
	"tnpu/internal/tensor"
)

var (
	xtsKey = []byte("0123456789abcdef0123456789abcdef")
	macKey = []byte("fedcba9876543210")
)

func newCtx(t *testing.T) *Context {
	t.Helper()
	c, err := NewContext(xtsKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func TestAllocAndLookup(t *testing.T) {
	c := newCtx(t)
	a, err := c.Alloc("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc("b", 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr%64 != 0 || b.Addr%64 != 0 {
		t.Error("tensors not block aligned")
	}
	if b.Addr < a.End() {
		t.Error("tensors overlap")
	}
	if got, ok := c.Lookup("a"); !ok || got.ID != a.ID {
		t.Error("lookup failed")
	}
	if _, err := c.Alloc("a", 10); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.Alloc("z", 0); err == nil {
		t.Error("empty tensor accepted")
	}
}

func TestWriteReadTensor(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("x", 300)
	data := fill(300, 5)
	if err := c.WriteTensor(ten.ID, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadTensor(ten.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := c.WriteTensor(ten.ID, fill(10, 0)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestReplayDetectedThroughContext(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("x", 64)
	c.WriteTensor(ten.ID, fill(64, 1))
	ct, mac, _ := c.Memory().Snapshot(ten.Addr)
	c.WriteTensor(ten.ID, fill(64, 2)) // version 2 now current
	c.Memory().Restore(ten.Addr, ct, mac)
	if _, err := c.ReadTensor(ten.ID); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("replayed tensor block undetected: %v", err)
	}
}

func TestTileFlow(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("out", 256) // 4 blocks
	c.WriteTensor(ten.ID, fill(256, 0))
	if err := c.ExpandTiles(ten.ID, 4); err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < 4; tile++ {
		if err := c.WriteTile(ten.ID, tile, fill(64, byte(tile))); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadTile(ten.ID, tile)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(64, byte(tile))) {
			t.Fatalf("tile %d mismatch", tile)
		}
	}
	if err := c.MergeTiles(ten.ID); err != nil {
		t.Fatal(err)
	}
	// After the merge the whole tensor reads under one version.
	whole, err := c.ReadTensor(ten.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole[64:128], fill(64, 1)) {
		t.Fatal("merged tensor content wrong")
	}
}

func TestUnevenTileMergeRejected(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("out", 128)
	c.WriteTensor(ten.ID, fill(128, 0))
	c.ExpandTiles(ten.ID, 2)
	c.WriteTile(ten.ID, 0, fill(64, 1))
	if err := c.MergeTiles(ten.ID); err == nil {
		t.Fatal("merge with uneven tile updates accepted")
	}
}

func TestStaleTileReplay(t *testing.T) {
	// A tile-granular replay: attacker restores tile 1's old content
	// after it was updated; the tile version catches it.
	c := newCtx(t)
	ten, _ := c.Alloc("out", 128)
	c.WriteTensor(ten.ID, fill(128, 0))
	c.ExpandTiles(ten.ID, 2)
	c.WriteTile(ten.ID, 1, fill(64, 7))
	ct, mac, _ := c.Memory().Snapshot(ten.Addr + 64)
	c.WriteTile(ten.ID, 0, fill(64, 7))
	c.WriteTile(ten.ID, 1, fill(64, 8)) // second update
	c.WriteTile(ten.ID, 0, fill(64, 8))
	c.Memory().Restore(ten.Addr+64, ct, mac)
	if _, err := c.ReadTile(ten.ID, 1); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("stale tile accepted: %v", err)
	}
}

func TestExpandLimits(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("x", 64)
	if err := c.ExpandTiles(ten.ID, tensor.MaxTiles+1); err == nil {
		t.Error("oversized expansion accepted")
	}
	if err := c.ExpandTiles(ten.ID, 2); err != nil {
		t.Fatal(err)
	}
	// One block cannot be split into two tiles.
	if _, err := c.ReadTile(ten.ID, 1); err == nil {
		t.Error("tile beyond block count accepted")
	}
}

func TestTsBufferFlow(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("x", 128)
	version := c.Table().Bump(ten.ID)
	var w BlockBuffer
	for blk := uint64(0); blk < 2; blk++ {
		for i := 0; i < 64; i++ {
			w.TsWriteByte(i, byte(blk*64)+byte(i))
		}
		if err := c.TsWriteBlock(&w, ten.ID, blk, version); err != nil {
			t.Fatal(err)
		}
	}
	var r BlockBuffer
	if err := c.TsReadBlock(&r, ten.ID, 1, version); err != nil {
		t.Fatal(err)
	}
	if r.TsReadByte(3) != 64+3 {
		t.Fatalf("ts_read_byte = %d", r.TsReadByte(3))
	}
	if err := c.TsReadBlock(&r, ten.ID, 5, version); err == nil {
		t.Error("out-of-tensor block accepted")
	}
	if err := c.TsWriteBlock(&w, ten.ID, 5, version); err == nil {
		t.Error("out-of-tensor write accepted")
	}
}

func TestTsBufferPanics(t *testing.T) {
	var b BlockBuffer
	assertPanic(t, func() { b.TsReadByte(0) }) // unfilled
	assertPanic(t, func() { b.TsWriteByte(64, 0) })
	b.TsWriteByte(0, 1)
	assertPanic(t, func() { b.TsReadByte(-1) })
}

func assertPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestInitFetchTensor(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("w", 200) // unaligned tail exercises padding
	data := fill(200, 9)
	if err := c.InitTensor(ten.ID, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchTensor(ten.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ts round trip mismatch")
	}
	// The init published version 1; ReadTensor agrees.
	if _, err := c.ReadTensor(ten.ID); err != nil {
		t.Fatalf("ReadTensor after ts init: %v", err)
	}
}

func TestSecureMatMul(t *testing.T) {
	c := newCtx(t)
	const m, k, n = 8, 16, 12
	a := make([]int16, m*k)
	b := make([]int16, k*n)
	for i := range a {
		a[i] = int16(i%7 - 3)
	}
	for i := range b {
		b[i] = int16(i%5 - 2)
	}
	at, _ := c.Alloc("A", uint64(2*m*k))
	bt, _ := c.Alloc("B", uint64(2*k*n))
	ct, _ := c.Alloc("C", uint64(2*m*n))
	c.InitTensor(at.ID, EncodeInt16(a))
	c.InitTensor(bt.ID, EncodeInt16(b))

	if err := SecureMatMul(c, at.ID, bt.ID, ct.ID, m, k, n, 3); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadTensor(ct.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeInt16(MatMulInt16(a, b, m, k, n))
	if !bytes.Equal(got, want) {
		t.Fatal("secure matmul result differs from reference")
	}
}

func TestSecureMatMulDetectsWeightTamper(t *testing.T) {
	c := newCtx(t)
	const m, k, n = 4, 4, 4
	at, _ := c.Alloc("A", 2*m*k)
	bt, _ := c.Alloc("B", 2*k*n)
	ct, _ := c.Alloc("C", 2*m*n)
	c.InitTensor(at.ID, make([]byte, 2*m*k))
	c.InitTensor(bt.ID, make([]byte, 2*k*n))
	if err := c.Memory().Corrupt(bt.Addr, 3); err != nil { // physical attack on the weights
		t.Fatal(err)
	}
	if err := SecureMatMul(c, at.ID, bt.ID, ct.ID, m, k, n, 1); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("tampered weights undetected: %v", err)
	}
}

func TestFree(t *testing.T) {
	c := newCtx(t)
	ten, _ := c.Alloc("x", 64)
	if err := c.Free(ten.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(ten.ID); err == nil {
		t.Error("double free accepted")
	}
	if _, ok := c.Lookup("x"); ok {
		t.Error("freed tensor still visible")
	}
	// Name reusable after free.
	if _, err := c.Alloc("x", 64); err != nil {
		t.Error(err)
	}
}

// Property: SecureMatMul equals the reference product for random shapes
// and data, for any legal tile count.
func TestSecureMatMulProperty(t *testing.T) {
	f := func(mr, kr, nr uint8, tilesR uint8, seed int64) bool {
		m, k, n := int(mr%6)+1, int(kr%6)+1, int(nr%6)+2
		c, err := NewContext(xtsKey, macKey)
		if err != nil {
			return false
		}
		a := make([]int16, m*k)
		b := make([]int16, k*n)
		s := seed
		next := func() int16 { s = s*6364136223846793005 + 1; return int16(s >> 48) }
		for i := range a {
			a[i] = next()
		}
		for i := range b {
			b[i] = next()
		}
		at, _ := c.Alloc("A", uint64(2*m*k))
		bt, _ := c.Alloc("B", uint64(2*k*n))
		ct, _ := c.Alloc("C", uint64(2*m*n))
		c.InitTensor(at.ID, EncodeInt16(a))
		c.InitTensor(bt.ID, EncodeInt16(b))
		tiles := int(tilesR%3) + 1
		if tiles > (2*m*n+63)/64 {
			tiles = 1
		}
		if err := SecureMatMul(c, at.ID, bt.ID, ct.ID, m, k, n, tiles); err != nil {
			return false
		}
		got, err := c.ReadTensor(ct.ID)
		if err != nil {
			return false
		}
		return bytes.Equal(got, EncodeInt16(MatMulInt16(a, b, m, k, n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeInt16(t *testing.T) {
	vals := []int16{0, 1, -1, 32767, -32768, 1234}
	got := DecodeInt16(EncodeInt16(vals))
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("round trip [%d] = %d, want %d", i, got[i], v)
		}
	}
}

func TestCrossContextIsolation(t *testing.T) {
	// Two NPU contexts hold distinct session keys (established at their
	// respective initializations, Sec. IV-E): data lifted from one
	// context's DRAM cannot be injected into the other.
	a := newCtx(t)
	b, err := NewContext(xtsKey, []byte("other-context-ke"))
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Alloc("x", 64)
	tb, _ := b.Alloc("x", 64)
	a.WriteTensor(ta.ID, fill(64, 1))
	b.WriteTensor(tb.ID, fill(64, 2))
	ct, mac, _ := a.Memory().Snapshot(ta.Addr)
	b.Memory().Restore(tb.Addr, ct, mac)
	if _, err := b.ReadTensor(tb.ID); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("foreign-context block accepted: %v", err)
	}
}
