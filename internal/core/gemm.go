package core

import (
	"encoding/binary"
	"fmt"

	"tnpu/internal/tensor"
)

// EncodeInt16 packs int16 values little-endian (the 2-byte elements of
// Table II's fp16 precision; integer arithmetic keeps the functional demo
// exact).
func EncodeInt16(vals []int16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

// DecodeInt16 unpacks little-endian int16 values.
func DecodeInt16(data []byte) []int16 {
	out := make([]int16, len(data)/2)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(data[2*i:]))
	}
	return out
}

// MatMulInt16 is the reference m×k × k×n product with wrapping int16
// accumulation.
func MatMulInt16(a, b []int16, m, k, n int) []int16 {
	c := make([]int16, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int16
			for x := 0; x < k; x++ {
				acc += a[i*k+x] * b[x*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// SecureMatMul runs C = A×B through the protected context with the Fig. 9
// discipline: A and B stream in under their tensor versions (every block
// MAC-verified), the output tensor's version entry expands into tiles,
// each tile is written under its own bumped version as it completes, and
// the entry merges back once all tiles carry the same count. Any physical
// attack between the writes and later reads of C is detected by the next
// consumer.
func SecureMatMul(ctx *Context, aID, bID, cID tensor.ID, m, k, n, tiles int) error {
	aBytes, err := ctx.ReadTensor(aID)
	if err != nil {
		return fmt.Errorf("core: matmul input A: %w", err)
	}
	bBytes, err := ctx.ReadTensor(bID)
	if err != nil {
		return fmt.Errorf("core: matmul input B: %w", err)
	}
	a, b := DecodeInt16(aBytes), DecodeInt16(bBytes)
	if len(a) < m*k || len(b) < k*n {
		return fmt.Errorf("core: matmul dims %dx%dx%d exceed tensors (%d, %d elems)", m, k, n, len(a), len(b))
	}
	c := EncodeInt16(MatMulInt16(a[:m*k], b[:k*n], m, k, n))

	if tiles <= 1 {
		return ctx.WriteTensor(cID, c)
	}
	if err := ctx.ExpandTiles(cID, tiles); err != nil {
		return err
	}
	t, err := ctx.get(cID)
	if err != nil {
		return err
	}
	if uint64(len(c)) != t.Bytes {
		return fmt.Errorf("core: output tensor %s is %d bytes, product is %d", t.Name, t.Bytes, len(c))
	}
	for tile := 0; tile < tiles; tile++ {
		off, size, err := tileSpan(t, tile, tiles)
		if err != nil {
			return err
		}
		if err := ctx.WriteTile(cID, tile, c[off:off+size]); err != nil {
			return err
		}
	}
	return ctx.MergeTiles(cID)
}
