package core

import (
	"encoding/binary"
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
	"tnpu/internal/secmem"
)

// TraceExecutor functionally executes a compiled NPU trace against real
// tree-less protected memory: every mvout encrypts and MACs its blocks
// under the instruction's version number, and every mvin fetches and
// verifies them. It is the integration proof that the compiler's version
// bookkeeping (expand/bump/merge, Fig. 9/13) is consistent end to end
// over entire models — and that a physical attack mounted anywhere in the
// run surfaces as secmem.ErrIntegrity at the next consuming mvin.
//
// Block contents are deterministic writer tags rather than real layer
// math (the protection layer is agnostic to values); the executor checks
// the tag on every verified read, so any silent data substitution that
// somehow passed the MAC would still be caught.
//
// The executor owns its protected memory; run each executor on one
// goroutine (the parallel harnesses construct one per worker).
//
//tnpu:per-goroutine
type TraceExecutor struct {
	prog *compiler.Program
	mem  *secmem.TreelessMemory

	// written records, per block, the version it was last MACed with —
	// the statically known data-flow information the CPU software holds.
	written map[uint64]uint64
	// tag records the writer instruction per block for content checks.
	tag map[uint64]uint64

	BlocksWritten, BlocksVerified uint64
}

// NewTraceExecutor prepares an executor over fresh protected memory.
func NewTraceExecutor(prog *compiler.Program, xtsKey, macKey []byte) (*TraceExecutor, error) {
	mem, err := secmem.NewTreelessMemory(xtsKey, macKey)
	if err != nil {
		return nil, err
	}
	return &TraceExecutor{
		prog:    prog,
		mem:     mem,
		written: make(map[uint64]uint64),
		tag:     make(map[uint64]uint64),
	}, nil
}

// Memory exposes the protected memory (the attack surface for tests).
func (x *TraceExecutor) Memory() *secmem.TreelessMemory { return x.mem }

// blocksOf enumerates the 64B-aligned blocks a segment covers.
func blocksOf(seg isa.Segment, fn func(addr uint64) error) error {
	first := seg.Addr &^ (dram.BlockBytes - 1)
	for addr := first; addr < seg.Addr+seg.Bytes; addr += dram.BlockBytes {
		if err := fn(addr); err != nil {
			return err
		}
	}
	return nil
}

// payload builds the deterministic plaintext tag for (block, writer).
func payload(addr, writer uint64) []byte {
	var b [dram.BlockBytes]byte
	binary.LittleEndian.PutUint64(b[0:8], addr)
	binary.LittleEndian.PutUint64(b[8:16], writer)
	for i := 16; i < dram.BlockBytes; i++ {
		b[i] = byte(addr>>3) ^ byte(writer*31+uint64(i))
	}
	return b[:]
}

// Init loads the initialization-written tensors (input and weights): the
// blocks a trace reads before any mvout produced them. They carry version
// 1, matching the compiler's assumption that initialization wrote each
// parameter tensor exactly once.
func (x *TraceExecutor) Init() {
	for _, ten := range x.prog.Tensors {
		if !compiler.IsParameter(ten.Name) {
			continue
		}
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			addr := ten.Addr + blk*dram.BlockBytes
			x.mem.WriteBlock(addr, payload(addr, 0), 1)
			x.written[addr] = 1
			x.tag[addr] = 0
			x.BlocksWritten++
		}
	}
}

// Run executes the whole trace, stopping at the first integrity failure.
// stopAt (< 0 for all) bounds the executed instruction count so attack
// tests can interpose mid-run.
func (x *TraceExecutor) Run(stopAt int) error {
	for i := range x.prog.Trace.Instrs {
		if stopAt >= 0 && i >= stopAt {
			return nil
		}
		if err := x.Step(i); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, x.prog.Trace.Instrs[i].String(), err)
		}
	}
	return nil
}

// Step executes one instruction.
func (x *TraceExecutor) Step(i int) error {
	in := &x.prog.Trace.Instrs[i]
	switch in.Op {
	case isa.OpCompute, isa.OpPreload:
		return nil
	case isa.OpMvOut:
		writer := uint64(i) + 1
		for _, seg := range in.Segments {
			if err := blocksOf(seg, func(addr uint64) error {
				x.mem.WriteBlock(addr, payload(addr, writer), in.Version)
				x.written[addr] = in.Version
				x.tag[addr] = writer
				x.BlocksWritten++
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	case isa.OpMvIn:
		for _, seg := range in.Segments {
			if err := blocksOf(seg, func(addr uint64) error {
				expect, ok := x.written[addr]
				if !ok {
					return fmt.Errorf("core: mvin of never-written block %#x", addr)
				}
				data, err := x.mem.ReadBlock(addr, expect)
				if err != nil {
					return err
				}
				if want := payload(addr, x.tag[addr]); string(data) != string(want) {
					return fmt.Errorf("core: block %#x verified but content differs", addr)
				}
				x.BlocksVerified++
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("core: unknown op %v", in.Op)
}

// VersionConsistency cross-checks the trace's version operands against
// the executor's per-block view: an mvin's version operand must equal the
// recorded version of every aligned block it covers (boundary blocks
// shared by adjacent strided tiles legitimately carry the neighbouring
// tile's version — the software tracks those at block granularity, which
// is why the executor verifies with its recorded map).
func (x *TraceExecutor) VersionConsistency() (aligned, boundary uint64) {
	seen := make(map[uint64]uint64)
	for i := range x.prog.Trace.Instrs {
		in := &x.prog.Trace.Instrs[i]
		if in.Op == isa.OpMvOut {
			for _, seg := range in.Segments {
				blocksOf(seg, func(addr uint64) error {
					seen[addr] = in.Version
					return nil
				})
			}
		}
		if in.Op != isa.OpMvIn {
			continue
		}
		for _, seg := range in.Segments {
			blocksOf(seg, func(addr uint64) error {
				if v, ok := seen[addr]; ok {
					if v == in.Version {
						aligned++
					} else {
						boundary++
					}
				}
				return nil
			})
		}
	}
	return aligned, boundary
}
