package core

import (
	"encoding/binary"
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/isa"
)

// BaselineTraceExecutor is the tree-based counterpart of TraceExecutor:
// the same compiled trace executed against integrity.TreeMemory, where
// freshness comes from the hardware counter tree instead of software
// version numbers (the trace's version operands are simply ignored, as
// the baseline hardware would). Running both executors over the same
// models demonstrates that the two schemes are functionally equivalent in
// what they protect — the paper's "same security level" claim — differing
// only in who tracks freshness.
//
// Like TraceExecutor, it owns its protected memory; run each executor on
// one goroutine.
//
//tnpu:per-goroutine
type BaselineTraceExecutor struct {
	prog *compiler.Program
	mem  *integrity.TreeMemory
	tag  map[uint64]uint64

	BlocksWritten, BlocksVerified uint64
}

// NewBaselineTraceExecutor builds an executor over a tree-protected region
// sized to the program.
func NewBaselineTraceExecutor(prog *compiler.Program, encKey, macKey []byte) (*BaselineTraceExecutor, error) {
	size := prog.MemoryTop
	if size == 0 {
		return nil, fmt.Errorf("core: empty program")
	}
	mem, err := integrity.NewTreeMemory(size, encKey, macKey)
	if err != nil {
		return nil, err
	}
	return &BaselineTraceExecutor{prog: prog, mem: mem, tag: make(map[uint64]uint64)}, nil
}

// Memory exposes the tree-protected memory (attack surface).
func (x *BaselineTraceExecutor) Memory() *integrity.TreeMemory { return x.mem }

// Init loads input and parameter tensors.
func (x *BaselineTraceExecutor) Init() error {
	for _, ten := range x.prog.Tensors {
		if !compiler.IsParameter(ten.Name) {
			continue
		}
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			addr := ten.Addr + blk*dram.BlockBytes
			if err := x.mem.WriteBlock(addr, basePayload(addr, 0)); err != nil {
				return err
			}
			x.tag[addr] = 0
			x.BlocksWritten++
		}
	}
	return nil
}

// Run executes the whole trace.
func (x *BaselineTraceExecutor) Run() error {
	for i := range x.prog.Trace.Instrs {
		in := &x.prog.Trace.Instrs[i]
		switch in.Op {
		case isa.OpMvOut:
			writer := uint64(i) + 1
			for _, seg := range in.Segments {
				if err := blocksOf(seg, func(addr uint64) error {
					if err := x.mem.WriteBlock(addr, basePayload(addr, writer)); err != nil {
						return err
					}
					x.tag[addr] = writer
					x.BlocksWritten++
					return nil
				}); err != nil {
					return fmt.Errorf("instr %d: %w", i, err)
				}
			}
		case isa.OpMvIn:
			for _, seg := range in.Segments {
				if err := blocksOf(seg, func(addr uint64) error {
					data, err := x.mem.ReadBlock(addr)
					if err != nil {
						return err
					}
					if want := basePayload(addr, x.tag[addr]); string(data) != string(want) {
						return fmt.Errorf("core: block %#x verified but content differs", addr)
					}
					x.BlocksVerified++
					return nil
				}); err != nil {
					return fmt.Errorf("instr %d: %w", i, err)
				}
			}
		}
	}
	return nil
}

// basePayload is the deterministic writer tag for the baseline executor
// (distinct domain from the tree-less executor's payload).
func basePayload(addr, writer uint64) []byte {
	var b [dram.BlockBytes]byte
	binary.LittleEndian.PutUint64(b[0:8], ^addr)
	binary.LittleEndian.PutUint64(b[8:16], writer)
	for i := 16; i < dram.BlockBytes; i++ {
		b[i] = byte(addr>>5) ^ byte(writer*17+uint64(i))
	}
	return b[:]
}
