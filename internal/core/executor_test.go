package core

import (
	"errors"
	"strings"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/secmem"
	"tnpu/internal/spm"
	"tnpu/internal/systolic"
)

func smallCompilerCfg() compiler.Config {
	return compiler.Config{Array: systolic.Array{Rows: 32, Cols: 32}, SPM: spm.SPM{CapacityBytes: 480 << 10}}
}

func newExecutor(t *testing.T, short string) *TraceExecutor {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(m, smallCompilerCfg())
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewTraceExecutor(prog, xtsKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	x.Init()
	return x
}

// TestFullModelsExecuteFunctionally is the end-to-end integration proof:
// entire compiled models run against real encrypted, MAC-verified memory
// with the compiler's version bookkeeping, and every block verifies.
func TestFullModelsExecuteFunctionally(t *testing.T) {
	for _, short := range []string{"df", "agz", "ncf", "alex"} {
		x := newExecutor(t, short)
		if err := x.Run(-1); err != nil {
			t.Fatalf("%s: %v", short, err)
		}
		if x.BlocksVerified == 0 || x.BlocksWritten == 0 {
			t.Fatalf("%s: trivial execution (%d written, %d verified)", short, x.BlocksWritten, x.BlocksVerified)
		}
	}
}

func TestBigModelExecutesFunctionally(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second full-model execution")
	}
	x := newExecutor(t, "res")
	if err := x.Run(-1); err != nil {
		t.Fatal(err)
	}
	t.Logf("res: %d blocks written, %d verified", x.BlocksWritten, x.BlocksVerified)
}

func TestMidRunTamperDetected(t *testing.T) {
	x := newExecutor(t, "df")
	// Run half the trace, corrupt a block that was produced, continue.
	half := len(x.prog.Trace.Instrs) / 2
	if err := x.Run(half); err != nil {
		t.Fatal(err)
	}
	var victim uint64
	found := false
	for i := half - 1; i >= 0 && !found; i-- {
		in := &x.prog.Trace.Instrs[i]
		if in.Op == isa.OpMvOut {
			victim = in.Segments[0].Addr &^ 63
			found = true
		}
	}
	if !found {
		t.Skip("no mvout in first half")
	}
	if err := x.Memory().Corrupt(victim, 5); err != nil {
		t.Fatal(err)
	}
	err := runFrom(x, half)
	if err == nil {
		// The corrupted block may never be re-read if its consumer
		// already ran; corrupt the final output instead.
		t.Skip("victim not re-read in second half")
	}
	if !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("expected integrity violation, got %v", err)
	}
}

func TestMidRunReplayDetected(t *testing.T) {
	x := newExecutor(t, "agz")
	// Find a tensor written twice... activations are written once per
	// inference, so replay the INPUT against a later version: snapshot an
	// input block, overwrite the input (a second request would), replay.
	input := x.prog.Tensors[0]
	ct, mac, ok := x.Memory().Snapshot(input.Addr)
	if !ok {
		t.Fatal("input not initialized")
	}
	// Legitimate re-initialization for a new request bumps to version 2.
	x.Memory().WriteBlock(input.Addr, payload(input.Addr, 99), 2)
	x.written[input.Addr] = 2
	x.tag[input.Addr] = 99
	// Attacker replays the version-1 snapshot.
	x.Memory().Restore(input.Addr, ct, mac)
	err := x.Run(-1)
	if !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("replayed input block undetected: %v", err)
	}
	if !strings.Contains(err.Error(), "mvin") && !strings.Contains(err.Error(), "instr") {
		t.Fatalf("error lost instruction context: %v", err)
	}
}

func TestExecutorStatsMatchTrace(t *testing.T) {
	x := newExecutor(t, "df")
	if err := x.Run(-1); err != nil {
		t.Fatal(err)
	}
	// Every mvin block must have been verified; count them independently.
	var want uint64
	for i := range x.prog.Trace.Instrs {
		in := &x.prog.Trace.Instrs[i]
		if in.Op != isa.OpMvIn {
			continue
		}
		for _, seg := range in.Segments {
			first := seg.Addr &^ 63
			for a := first; a < seg.Addr+seg.Bytes; a += 64 {
				want++
			}
		}
	}
	if x.BlocksVerified != want {
		t.Fatalf("verified %d blocks, trace demands %d", x.BlocksVerified, want)
	}
}

func TestVersionConsistency(t *testing.T) {
	// The overwhelming majority of mvin blocks must carry exactly the
	// version operand of their producing mvout; only strided-tile
	// boundary blocks may differ (tracked per block by the software).
	for _, short := range []string{"df", "alex", "agz"} {
		x := newExecutor(t, short)
		aligned, boundary := x.VersionConsistency()
		if aligned == 0 {
			t.Fatalf("%s: no aligned version matches", short)
		}
		if boundary > aligned/10 {
			t.Errorf("%s: boundary blocks (%d) exceed 10%% of aligned (%d)", short, boundary, aligned)
		}
	}
}

func runFrom(x *TraceExecutor, from int) error {
	for i := from; i < len(x.prog.Trace.Instrs); i++ {
		if err := x.Step(i); err != nil {
			return err
		}
	}
	return nil
}

func TestBaselineExecutorFullModel(t *testing.T) {
	// The same trace executes under the hardware counter-tree scheme:
	// functional equivalence of the two protection designs.
	m, _ := model.ByShort("df")
	prog, err := compiler.Compile(m, smallCompilerCfg())
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewBaselineTraceExecutor(prog, []byte("0123456789abcdef"), macKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(); err != nil {
		t.Fatal(err)
	}
	if err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if x.BlocksVerified == 0 {
		t.Fatal("nothing verified")
	}
}

func TestBaselineExecutorDetectsReplay(t *testing.T) {
	m, _ := model.ByShort("agz")
	prog, err := compiler.Compile(m, smallCompilerCfg())
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewBaselineTraceExecutor(prog, []byte("0123456789abcdef"), macKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(); err != nil {
		t.Fatal(err)
	}
	// Snapshot an input block, overwrite it (new request), replay: the
	// counter tree catches it because the block's counter advanced.
	input := prog.Tensors[0]
	ct, mac, ok := x.Memory().SnapshotBlock(input.Addr)
	if !ok {
		t.Fatal("input missing")
	}
	if err := x.Memory().WriteBlock(input.Addr, basePayload(input.Addr, 0)); err != nil {
		t.Fatal(err)
	}
	x.Memory().RestoreBlock(input.Addr, ct, mac)
	err = x.Run()
	if !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("baseline executor missed the replay: %v", err)
	}
}
