// Package tensor models tensors as the unit of NPU data flow and
// implements the software-managed version-number table at the heart of the
// tree-less scheme (Sec. III-C, IV-D): one version number per tensor,
// expanded to per-tile numbers while a layer updates the tensor tile by
// tile (Fig. 9), then merged back to a single number once every tile has
// been written the same number of times (Fig. 13b). The table lives in the
// fully protected enclave region; its storage footprint and access count
// feed the timing model.
package tensor

import (
	"fmt"

	"tnpu/internal/dram"
)

// ID identifies a tensor within one NPU context.
type ID uint32

// Tensor describes one tensor resident in the NPU memory region.
type Tensor struct {
	ID    ID
	Name  string
	Addr  uint64 // base physical address, 64B aligned
	Bytes uint64
}

// Blocks returns the number of 64B memory blocks the tensor occupies.
func (t Tensor) Blocks() uint64 {
	return (t.Bytes + dram.BlockBytes - 1) / dram.BlockBytes
}

// End returns the first address past the tensor.
func (t Tensor) End() uint64 { return t.Addr + t.Bytes }

// MaxTiles bounds the tile expansion of one tensor: the version-table
// address layout reserves this many 8-byte slots per tensor, and the
// compiler falls back to tensor-unit versioning for layers that would
// exceed it.
const MaxTiles = 256

// entry is one version-table row. A nil tiles slice means the tensor is in
// tensor-unit (merged) state; otherwise each tile tracks its own version.
type entry struct {
	version uint64
	tiles   []uint64
}

// entryHeaderBytes models the fully-protected-region storage of one table
// row: a 4-byte tensor id plus an 8-byte tensor-unit version number.
const entryHeaderBytes = 12

// tileEntryBytes is the storage per expanded tile version number.
const tileEntryBytes = 8

// Table is the version-number table kept in the fully protected region by
// the CPU-side software. It is not safe for concurrent use: the paper's
// model has a single CPU enclave thread driving each NPU context.
type Table struct {
	entries map[ID]*entry

	// reads/writes count table accesses; the timing model converts them
	// into fully-protected-region memory traffic.
	reads  uint64
	writes uint64

	peakBytes int
}

// NewTable creates an empty version table.
func NewTable() *Table {
	return &Table{entries: make(map[ID]*entry)}
}

// Register adds a tensor with version 0 (freshly allocated, never written).
// Registering an existing id panics: tensor ids are compiler-assigned and
// unique.
func (t *Table) Register(id ID) {
	if _, ok := t.entries[id]; ok {
		panic(fmt.Sprintf("tensor: duplicate registration of id %d", id))
	}
	t.entries[id] = &entry{}
	t.writes++
	t.notePeak()
}

// Registered reports whether id exists.
func (t *Table) Registered(id ID) bool {
	_, ok := t.entries[id]
	return ok
}

func (t *Table) get(id ID) *entry {
	e, ok := t.entries[id]
	if !ok {
		panic(fmt.Sprintf("tensor: unknown tensor id %d", id))
	}
	return e
}

// Version returns the tensor-unit version for an mvin of the whole tensor.
// It panics while the tensor is expanded: the software must address tiles
// individually during tiled computation.
func (t *Table) Version(id ID) uint64 {
	e := t.get(id)
	if e.tiles != nil {
		panic(fmt.Sprintf("tensor: id %d is tile-expanded; use TileVersion", id))
	}
	t.reads++
	return e.version
}

// Bump increments the tensor-unit version for an mvout of the whole tensor
// and returns the new value.
func (t *Table) Bump(id ID) uint64 {
	e := t.get(id)
	if e.tiles != nil {
		panic(fmt.Sprintf("tensor: id %d is tile-expanded; use BumpTile", id))
	}
	e.version++
	t.writes++
	return e.version
}

// Expand splits the tensor's version into tiles per-tile version numbers,
// all starting at the current tensor-unit version (Fig. 9 step 1).
func (t *Table) Expand(id ID, tiles int) {
	if tiles <= 0 {
		panic(fmt.Sprintf("tensor: expand to %d tiles", tiles))
	}
	e := t.get(id)
	if e.tiles != nil {
		panic(fmt.Sprintf("tensor: id %d already expanded", id))
	}
	e.tiles = make([]uint64, tiles)
	for i := range e.tiles {
		e.tiles[i] = e.version
	}
	t.writes++
	t.notePeak()
}

// Expanded reports whether the tensor is in tile-expanded state.
func (t *Table) Expanded(id ID) bool { return t.get(id).tiles != nil }

// Tiles returns the tile count of an expanded tensor.
func (t *Table) Tiles(id ID) int {
	e := t.get(id)
	if e.tiles == nil {
		return 0
	}
	return len(e.tiles)
}

// TileVersion returns the expected version for an mvin of one tile.
func (t *Table) TileVersion(id ID, tile int) uint64 {
	e := t.get(id)
	if e.tiles == nil {
		// Reading a tile of a merged tensor uses the tensor version: the
		// whole tensor was last written as a unit.
		t.reads++
		return e.version
	}
	if tile < 0 || tile >= len(e.tiles) {
		panic(fmt.Sprintf("tensor: tile %d out of range [0,%d)", tile, len(e.tiles)))
	}
	t.reads++
	return e.tiles[tile]
}

// BumpTile increments one tile's version for an mvout and returns it. The
// tensor must be expanded first.
func (t *Table) BumpTile(id ID, tile int) uint64 {
	e := t.get(id)
	if e.tiles == nil {
		panic(fmt.Sprintf("tensor: id %d not expanded; use Bump for tensor-unit writes", id))
	}
	if tile < 0 || tile >= len(e.tiles) {
		panic(fmt.Sprintf("tensor: tile %d out of range [0,%d)", tile, len(e.tiles)))
	}
	e.tiles[tile]++
	t.writes++
	return e.tiles[tile]
}

// Merge collapses an expanded tensor back to one version number. All tile
// versions must be equal (they are after a complete layer: every tile was
// updated the same number of times — Fig. 9 step 9); unequal versions mean
// the software tried to merge mid-layer, which is a compiler bug.
func (t *Table) Merge(id ID) error {
	e := t.get(id)
	if e.tiles == nil {
		return fmt.Errorf("tensor: id %d not expanded", id)
	}
	v := e.tiles[0]
	for i, tv := range e.tiles {
		if tv != v {
			return fmt.Errorf("tensor: merge of id %d with unequal tile versions (tile 0 = %d, tile %d = %d)", id, v, i, tv)
		}
	}
	e.version = v
	e.tiles = nil
	t.writes++
	return nil
}

// Drop removes a tensor whose lifetime ended (intermediate feature map
// freed by the runtime), shrinking table storage.
func (t *Table) Drop(id ID) {
	if _, ok := t.entries[id]; !ok {
		panic(fmt.Sprintf("tensor: drop of unknown id %d", id))
	}
	delete(t.entries, id)
	t.writes++
}

// StorageBytes returns the current fully-protected-region footprint of the
// table: 12 bytes per tensor row plus 8 bytes per expanded tile version.
func (t *Table) StorageBytes() int {
	total := 0
	for _, e := range t.entries {
		total += entryHeaderBytes
		total += len(e.tiles) * tileEntryBytes
	}
	return total
}

// PeakStorageBytes returns the high-water mark of StorageBytes, the number
// Sec. IV-D reports (1.3KB average, 7.5KB max for tf).
func (t *Table) PeakStorageBytes() int { return t.peakBytes }

func (t *Table) notePeak() {
	if s := t.StorageBytes(); s > t.peakBytes {
		t.peakBytes = s
	}
}

// Accesses returns (reads, writes) performed on the table; each is an
// access to the fully protected region in the timing model.
func (t *Table) Accesses() (reads, writes uint64) { return t.reads, t.writes }
