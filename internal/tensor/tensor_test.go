package tensor

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTensorBlocks(t *testing.T) {
	cases := []struct {
		bytes  uint64
		blocks uint64
	}{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {4096, 64},
	}
	for _, c := range cases {
		ten := Tensor{Bytes: c.bytes}
		if got := ten.Blocks(); got != c.blocks {
			t.Errorf("Blocks(%d) = %d, want %d", c.bytes, got, c.blocks)
		}
	}
	ten := Tensor{Addr: 0x1000, Bytes: 256}
	if ten.End() != 0x1100 {
		t.Errorf("End = %#x", ten.End())
	}
}

func TestRegisterAndVersion(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	if !tb.Registered(1) || tb.Registered(2) {
		t.Fatal("registration state wrong")
	}
	if v := tb.Version(1); v != 0 {
		t.Fatalf("fresh version = %d", v)
	}
	if v := tb.Bump(1); v != 1 {
		t.Fatalf("bumped version = %d", v)
	}
	if v := tb.Version(1); v != 1 {
		t.Fatalf("version after bump = %d", v)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	assertPanics(t, "duplicate", func() { tb.Register(1) })
}

func TestUnknownIDPanics(t *testing.T) {
	tb := NewTable()
	assertPanics(t, "unknown", func() { tb.Version(9) })
	assertPanics(t, "unknown", func() { tb.Bump(9) })
	assertPanics(t, "unknown", func() { tb.Drop(9) })
}

func TestExpandBumpMerge(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	tb.Bump(1) // version 1
	tb.Expand(1, 4)
	if !tb.Expanded(1) || tb.Tiles(1) != 4 {
		t.Fatal("expand state wrong")
	}
	// All tiles inherit the tensor version.
	for i := 0; i < 4; i++ {
		if v := tb.TileVersion(1, i); v != 1 {
			t.Fatalf("tile %d version = %d, want 1", i, v)
		}
	}
	// Mid-layer merge must fail while versions are unequal.
	tb.BumpTile(1, 0)
	if err := tb.Merge(1); err == nil {
		t.Fatal("merge with unequal tile versions accepted")
	}
	for i := 1; i < 4; i++ {
		tb.BumpTile(1, i)
	}
	if err := tb.Merge(1); err != nil {
		t.Fatalf("merge after uniform updates: %v", err)
	}
	if tb.Expanded(1) {
		t.Fatal("still expanded after merge")
	}
	if v := tb.Version(1); v != 2 {
		t.Fatalf("merged version = %d, want 2", v)
	}
}

func TestMatrixMultiplyScenario(t *testing.T) {
	// The Fig. 9 walk-through: 2x2 tiled matmul. Inputs A, B are read-only
	// (stay merged); output C is expanded into 4 tiles, each written once,
	// then merged to a single version.
	tb := NewTable()
	for id := ID(1); id <= 3; id++ {
		tb.Register(id)
	}
	tb.Expand(3, 4)
	for tile := 0; tile < 4; tile++ {
		// Each output tile: read A tiles and B tiles with tensor version.
		_ = tb.TileVersion(1, tile%2)
		_ = tb.TileVersion(2, tile/2)
		if v := tb.BumpTile(3, tile); v != 1 {
			t.Fatalf("output tile %d version = %d, want 1", tile, v)
		}
	}
	if err := tb.Merge(3); err != nil {
		t.Fatal(err)
	}
	if tb.Version(3) != 1 {
		t.Fatal("output tensor version should be 1 after one full update")
	}
}

func TestTileVersionOfMergedTensor(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	tb.Bump(1)
	// Reading any tile of a merged (whole-written) tensor uses the tensor
	// version — e.g. input tensors in Fig. 9.
	if v := tb.TileVersion(1, 7); v != 1 {
		t.Fatalf("tile read of merged tensor = %d, want 1", v)
	}
}

func TestBumpTileRequiresExpansion(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	assertPanics(t, "not expanded", func() { tb.BumpTile(1, 0) })
}

func TestExpandedTensorUnitAccessPanics(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	tb.Expand(1, 2)
	assertPanics(t, "expanded", func() { tb.Version(1) })
	assertPanics(t, "expanded", func() { tb.Bump(1) })
	assertPanics(t, "already expanded", func() { tb.Expand(1, 2) })
}

func TestTileRangePanics(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	tb.Expand(1, 2)
	assertPanics(t, "out of range", func() { tb.TileVersion(1, 2) })
	assertPanics(t, "out of range", func() { tb.BumpTile(1, -1) })
}

func TestMergeUnexpanded(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	if err := tb.Merge(1); err == nil {
		t.Fatal("merge of unexpanded tensor accepted")
	}
}

func TestStorageAccounting(t *testing.T) {
	tb := NewTable()
	tb.Register(1)
	if got := tb.StorageBytes(); got != 12 {
		t.Fatalf("one merged entry = %d bytes, want 12", got)
	}
	tb.Expand(1, 10)
	if got := tb.StorageBytes(); got != 12+80 {
		t.Fatalf("expanded entry = %d bytes, want 92", got)
	}
	if tb.PeakStorageBytes() != 92 {
		t.Fatalf("peak = %d, want 92", tb.PeakStorageBytes())
	}
	for i := 0; i < 10; i++ {
		tb.BumpTile(1, i)
	}
	if err := tb.Merge(1); err != nil {
		t.Fatal(err)
	}
	if got := tb.StorageBytes(); got != 12 {
		t.Fatalf("merged back = %d bytes, want 12", got)
	}
	// Peak survives the merge.
	if tb.PeakStorageBytes() != 92 {
		t.Fatalf("peak after merge = %d, want 92", tb.PeakStorageBytes())
	}
	tb.Drop(1)
	if tb.StorageBytes() != 0 {
		t.Fatal("storage after drop should be 0")
	}
}

func TestAccessCounting(t *testing.T) {
	tb := NewTable()
	tb.Register(1)       // 1 write
	tb.Version(1)        // 1 read
	tb.Bump(1)           // 1 write
	tb.Expand(1, 2)      // 1 write
	tb.TileVersion(1, 0) // 1 read
	tb.BumpTile(1, 0)    // 1 write
	tb.BumpTile(1, 1)    // 1 write
	_ = tb.Merge(1)      // 1 write
	r, w := tb.Accesses()
	if r != 2 || w != 6 {
		t.Fatalf("accesses = (%d,%d), want (2,6)", r, w)
	}
}

// Property: after expanding and bumping every tile k times, merge succeeds
// and yields initial version + k.
func TestUniformUpdateMergeProperty(t *testing.T) {
	f := func(tilesRaw, bumpsRaw uint8, initRaw uint8) bool {
		tiles := int(tilesRaw%16) + 1
		bumps := int(bumpsRaw % 8)
		tb := NewTable()
		tb.Register(1)
		for i := 0; i < int(initRaw%4); i++ {
			tb.Bump(1)
		}
		init := tb.Version(1)
		tb.Expand(1, tiles)
		for b := 0; b < bumps; b++ {
			for tl := 0; tl < tiles; tl++ {
				tb.BumpTile(1, tl)
			}
		}
		if err := tb.Merge(1); err != nil {
			return false
		}
		return tb.Version(1) == init+uint64(bumps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: merge fails if and only if some tile differs.
func TestMergeIffUniformProperty(t *testing.T) {
	f := func(bumpSet []uint8) bool {
		const tiles = 8
		tb := NewTable()
		tb.Register(1)
		tb.Expand(1, tiles)
		counts := [tiles]int{}
		for _, b := range bumpSet {
			tl := int(b) % tiles
			tb.BumpTile(1, tl)
			counts[tl]++
		}
		uniform := true
		for _, c := range counts {
			if c != counts[0] {
				uniform = false
			}
		}
		err := tb.Merge(1)
		return (err == nil) == uniform
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); ok && substr != "" && !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	fn()
}
