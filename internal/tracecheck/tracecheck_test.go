package tracecheck

import (
	"strings"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/isa"
	"tnpu/internal/model"
	"tnpu/internal/spm"
	"tnpu/internal/systolic"
	"tnpu/internal/tensor"
)

func compileShort(t *testing.T, short string) *compiler.Program {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(m, compiler.Config{
		Array: systolic.Array{Rows: 32, Cols: 32},
		SPM:   spm.SPM{CapacityBytes: 480 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllCompiledModelsPass is the compiler's version-discipline gate: the
// checker must find zero violations on every workload.
func TestAllCompiledModelsPass(t *testing.T) {
	for _, short := range model.ShortNames() {
		p := compileShort(t, short)
		r := Check(p)
		if !r.Ok() {
			t.Errorf("%s: %v", short, r.Errors)
		}
		if r.MvIns == 0 || r.MvOuts == 0 || r.AlignedReads == 0 {
			t.Errorf("%s: degenerate report %+v", short, r)
		}
	}
}

// synthetic builds a minimal program for violation injection.
func synthetic() *compiler.Program {
	p := &compiler.Program{Table: tensor.NewTable()}
	p.Tensors = []tensor.Tensor{
		{ID: 0, Name: "input", Addr: 0, Bytes: 128},
		{ID: 1, Name: "l.out", Addr: 4096, Bytes: 128},
	}
	p.Trace.Append(isa.Instr{Op: isa.OpMvIn, Tensor: 0, Version: 1,
		Segments: []isa.Segment{{Addr: 0, Bytes: 128}}})
	p.Trace.Append(isa.Instr{Op: isa.OpCompute, Cycles: 10, Deps: []int32{0}})
	p.Trace.Append(isa.Instr{Op: isa.OpMvOut, Tensor: 1, Version: 1,
		Segments: []isa.Segment{{Addr: 4096, Bytes: 128}}, Deps: []int32{1}})
	p.Trace.Append(isa.Instr{Op: isa.OpMvIn, Tensor: 1, Version: 1,
		Segments: []isa.Segment{{Addr: 4096, Bytes: 128}}, Deps: []int32{2}})
	p.MemoryTop = 8192
	return p
}

func TestSyntheticClean(t *testing.T) {
	r := Check(synthetic())
	if !r.Ok() {
		t.Fatalf("clean trace flagged: %v", r.Errors)
	}
	if r.AlignedReads != 4 { // 2 input blocks + 2 activation blocks
		t.Fatalf("aligned reads = %d, want 4", r.AlignedReads)
	}
}

func TestDetectsNeverWrittenRead(t *testing.T) {
	p := synthetic()
	p.Trace.Instrs[3].Segments[0].Addr = 1 << 20 // read of unwritten space
	r := Check(p)
	if r.Ok() || !strings.Contains(r.Errors[0], "never-written") {
		t.Fatalf("missing violation: %+v", r)
	}
}

func TestDetectsStaleReadVersion(t *testing.T) {
	p := synthetic()
	p.Trace.Instrs[3].Version = 9 // reader disagrees with the writer
	r := Check(p)
	if r.Ok() {
		t.Fatalf("stale-version read not flagged: %+v", r)
	}
}

func TestDetectsNonMonotoneVersions(t *testing.T) {
	p := synthetic()
	// A second mvout of the same tile at the SAME version: replayable.
	p.Trace.Append(isa.Instr{Op: isa.OpMvOut, Tensor: 1, Version: 1,
		Segments: []isa.Segment{{Addr: 4096, Bytes: 128}}})
	r := Check(p)
	if r.Ok() || !strings.Contains(strings.Join(r.Errors, " "), "replayable") {
		t.Fatalf("duplicate version not flagged: %+v", r)
	}
}

func TestDetectsBadDeps(t *testing.T) {
	p := synthetic()
	p.Trace.Instrs[1].Deps = []int32{5}
	r := Check(p)
	if r.Ok() {
		t.Fatal("forward dep not flagged")
	}
}

func TestReportString(t *testing.T) {
	r := Check(synthetic())
	s := r.String()
	if !strings.Contains(s, "OK") || !strings.Contains(s, "mvin") {
		t.Errorf("report string %q", s)
	}
	var bad Report
	bad.errf("x")
	if !strings.Contains(bad.String(), "violations") {
		t.Error("violation count missing from string")
	}
}

func TestErrorCap(t *testing.T) {
	var r Report
	for i := 0; i < 100; i++ {
		r.errf("violation %d", i)
	}
	if len(r.Errors) != maxErrors {
		t.Fatalf("error cap broken: %d", len(r.Errors))
	}
}
