// Package tracecheck statically verifies the version discipline of a
// compiled NPU program — the linter a compiler team would gate on. It
// re-derives, from the trace alone, the invariants the tree-less scheme
// depends on (Sec. III-C/IV-D):
//
//  1. every mvin reads blocks that initialization or an earlier mvout
//     produced (no reads of never-written protected memory);
//  2. an mvin's version operand matches the last writer's version for the
//     blocks it covers (strided-tile boundary blocks, which legitimately
//     carry the adjacent tile's version, are counted separately);
//  3. versions per (tensor, tile) only move forward, and no (tensor,
//     tile, version) is written twice — replayable states never exist;
//  4. dependency edges are sound (backward-pointing, in range).
package tracecheck

import (
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
)

// Report summarizes one check run.
type Report struct {
	Instrs, MvIns, MvOuts int

	// AlignedReads are mvin blocks whose version operand matched the
	// recorded writer version; BoundaryReads carried a neighbouring
	// tile's version (tracked per block by the software).
	AlignedReads, BoundaryReads uint64

	// Errors are hard violations; a clean trace has none.
	Errors []string
}

// Ok reports whether the trace passed.
func (r *Report) Ok() bool { return len(r.Errors) == 0 }

// String renders a one-line summary.
func (r *Report) String() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("%d violations", len(r.Errors))
	}
	return fmt.Sprintf("tracecheck: %s — %d instrs (%d mvin / %d mvout), %d aligned reads, %d boundary reads",
		status, r.Instrs, r.MvIns, r.MvOuts, r.AlignedReads, r.BoundaryReads)
}

const maxErrors = 20

func (r *Report) errf(format string, args ...interface{}) {
	if len(r.Errors) < maxErrors {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
}

// isInitTensor reports whether a tensor is initialization-written (input
// or parameters, at version 1) before the trace starts.
func isInitTensor(name string) bool {
	return name == "input" || (len(name) > 2 && name[len(name)-2:] == ".w")
}

// Check runs all static validations over the program.
func Check(prog *compiler.Program) Report {
	var r Report
	r.Instrs = len(prog.Trace.Instrs)

	// Per-block last-written version, seeded by initialization.
	written := make(map[uint64]uint64)
	for _, ten := range prog.Tensors {
		if !isInitTensor(ten.Name) {
			continue
		}
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			written[ten.Addr+blk*dram.BlockBytes] = 1
		}
	}

	// Per-(tensor,tile): last version written and the set of (version)
	// values seen — forward motion and no duplicates.
	type tileKey struct {
		tensor uint32
		tile   int
	}
	lastVer := make(map[tileKey]uint64)

	for i := range prog.Trace.Instrs {
		in := &prog.Trace.Instrs[i]
		for _, d := range in.Deps {
			if d < 0 || int(d) >= i {
				r.errf("instr %d: dep %d not strictly earlier", i, d)
			}
		}
		switch in.Op {
		case isa.OpMvOut:
			r.MvOuts++
			k := tileKey{uint32(in.Tensor), in.Tile}
			if prev, ok := lastVer[k]; ok && in.Version <= prev {
				r.errf("instr %d: tensor %d tile %d version %d not above previous %d (replayable state)",
					i, in.Tensor, in.Tile, in.Version, prev)
			}
			lastVer[k] = in.Version
			forBlocks(in, func(addr uint64) {
				written[addr] = in.Version
			})
		case isa.OpMvIn:
			r.MvIns++
			forBlocks(in, func(addr uint64) {
				v, ok := written[addr]
				switch {
				case !ok:
					r.errf("instr %d: reads never-written block %#x", i, addr)
				case v == in.Version:
					r.AlignedReads++
				default:
					r.BoundaryReads++
				}
			})
		}
	}

	// Boundary reads must be the rare exception, not the rule.
	if r.AlignedReads > 0 && r.BoundaryReads > r.AlignedReads/5 {
		r.errf("boundary reads (%d) exceed 20%% of aligned reads (%d)", r.BoundaryReads, r.AlignedReads)
	}
	return r
}

func forBlocks(in *isa.Instr, fn func(addr uint64)) {
	for _, seg := range in.Segments {
		first := seg.Addr &^ (dram.BlockBytes - 1)
		for addr := first; addr < seg.Addr+seg.Bytes; addr += dram.BlockBytes {
			fn(addr)
		}
	}
}
