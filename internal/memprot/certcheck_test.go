package memprot

import (
	"path/filepath"
	"testing"

	"tnpu/internal/certcheck"
)

// TestCanonCertificatesMatchEngines cross-checks the committed
// canoncover certification artifact against the live engine structs:
// every field must appear in the certificate as covered (serialized by
// the Append*/Restore* channels, statically proven by tnpu-vet) or
// waived (//tnpu:canonskip). Adding a field to an engine without
// updating its canonical-state methods and regenerating the artifact
// fails here at runtime and in tnpu-vet statically.
func TestCanonCertificatesMatchEngines(t *testing.T) {
	certs := certcheck.Load(t, filepath.Join("..", "..", "testdata", "canoncover.json"))
	certcheck.FieldsMatch(t, certs, "tnpu/internal/memprot.unsecure", unsecure{})
	certcheck.FieldsMatch(t, certs, "tnpu/internal/memprot.encryptOnly", encryptOnly{})
	certcheck.FieldsMatch(t, certs, "tnpu/internal/memprot.treeless", treeless{})
	certcheck.FieldsMatch(t, certs, "tnpu/internal/memprot.baseline", baseline{})
}
