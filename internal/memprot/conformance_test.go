package memprot

import (
	"fmt"
	"sort"
	"testing"

	"tnpu/internal/stats"
)

// TestEngineConformance runs every protection engine through the same
// behavioural contract: the invariants the simulator depends on regardless
// of scheme.
func TestEngineConformance(t *testing.T) {
	for _, scheme := range AllSchemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			e := newEngine(t, scheme)

			// 1. busFree and dataAt never precede the request.
			var issue uint64
			for i := 0; i < 2000; i++ {
				addr := uint64(i) * 64
				busFree, dataAt := e.ReadBlock(issue, addr, 1)
				if busFree < issue {
					t.Fatalf("read busFree %d before ready %d", busFree, issue)
				}
				if dataAt < busFree {
					t.Fatalf("read dataAt %d before busFree %d", dataAt, busFree)
				}
				issue = busFree
			}
			for i := 0; i < 2000; i++ {
				addr := uint64(i) * 64
				busFree, dataAt := e.WriteBlock(issue, addr, 2)
				if busFree < issue || dataAt < issue {
					t.Fatal("write completed before its ready time")
				}
				issue = busFree
			}

			// 2. Data traffic is exact: one block per call.
			if got := e.Traffic().Read(stats.Data); got != 2000*64 {
				t.Fatalf("data read traffic = %d, want %d", got, 2000*64)
			}
			if got := e.Traffic().Write(stats.Data); got != 2000*64 {
				t.Fatalf("data write traffic = %d, want %d", got, 2000*64)
			}

			// 3. VersionFetch never travels back in time.
			if at := e.VersionFetch(1234, VTableSlot(1, 0), false); at < 1234 {
				t.Fatalf("version fetch at %d before ready", at)
			}

			// 4. Flush only adds traffic, never removes.
			before := e.Traffic().Total()
			e.Flush(issue)
			if e.Traffic().Total() < before {
				t.Fatal("flush reduced traffic")
			}

			// 5. Stats accessors never return nil.
			if e.CounterStats() == nil || e.HashStats() == nil || e.MACStats() == nil {
				t.Fatal("nil stats accessor")
			}
		})
	}
}

// TestEngineDeterminismConformance: identical call sequences produce
// identical timings and traffic for every scheme.
func TestEngineDeterminismConformance(t *testing.T) {
	run := func(scheme Scheme) (uint64, uint64) {
		e := newEngine(t, scheme)
		var issue, last uint64
		for i := 0; i < 3000; i++ {
			addr := (uint64(i*2654435761) % (1 << 20)) &^ 63
			var dataAt uint64
			if i%3 == 0 {
				issue, dataAt = e.WriteBlock(issue, addr, uint64(i))
			} else {
				issue, dataAt = e.ReadBlock(issue, addr, uint64(i))
			}
			if dataAt > last {
				last = dataAt
			}
		}
		return last, e.Traffic().Total()
	}
	for _, scheme := range AllSchemes() {
		a1, t1 := run(scheme)
		a2, t2 := run(scheme)
		if a1 != a2 || t1 != t2 {
			t.Errorf("%s: non-deterministic (%d/%d vs %d/%d)", scheme, a1, t1, a2, t2)
		}
	}
}

// TestSchemeTrafficOrderConformance: for any access pattern, metadata
// traffic obeys unsecure <= encrypt-only <= tnpu <= baseline.
func TestSchemeTrafficOrderConformance(t *testing.T) {
	patterns := map[string]func(i int) (addr uint64, write bool){
		"sequential": func(i int) (uint64, bool) { return uint64(i) * 64, false },
		"strided":    func(i int) (uint64, bool) { return uint64(i) * 4096, false },
		"writes":     func(i int) (uint64, bool) { return uint64(i) * 64, true },
		"mixed": func(i int) (uint64, bool) {
			return (uint64(i*131) % (1 << 22)) &^ 63, i%4 == 0
		},
	}
	patNames := make([]string, 0, len(patterns))
	for name := range patterns {
		patNames = append(patNames, name)
	}
	sort.Strings(patNames)
	for _, name := range patNames {
		pat := patterns[name]
		totals := map[Scheme]uint64{}
		for _, scheme := range AllSchemes() {
			e := newEngine(t, scheme)
			var issue uint64
			for i := 0; i < 4000; i++ {
				addr, write := pat(i)
				if write {
					issue, _ = e.WriteBlock(issue, addr, 1)
				} else {
					issue, _ = e.ReadBlock(issue, addr, 1)
				}
			}
			e.Flush(issue)
			totals[scheme] = e.Traffic().Total()
		}
		if !(totals[Unsecure] <= totals[EncryptOnly] &&
			totals[EncryptOnly] <= totals[TreeLess] &&
			totals[TreeLess] <= totals[Baseline]) {
			t.Errorf("%s: traffic order violated: %v", name, fmt.Sprint(totals))
		}
	}
}
