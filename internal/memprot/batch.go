package memprot

import (
	"tnpu/internal/cache"
	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/stats"
)

// RunEngine is the optional batched fast path of a protection engine:
// serve nBlocks consecutive data blocks in one call, gated by the caller's
// DMA issue window, with bus state, cache state, statistics, and returned
// times identical to pushing the same blocks through ReadBlock/WriteBlock
// one at a time:
//
//	for i := 0; i < nBlocks; i++ {
//	    busFree, dataAt := e.ReadBlock(ready, addr+uint64(i)*dram.BlockBytes, version)
//	    maxDataAt = max(maxDataAt, dataAt)
//	    if gate := w.Note(busFree); gate > ready+1 { ready = gate } else { ready++ }
//	}
//
// The batching exploits the same regularity TNPU's hardware does: a
// streaming DMA touches each metadata line once and then hits it for every
// remaining covered block, so only line-boundary blocks need the full
// model. It is an optional interface so engine wrappers (e.g. the attack
// harness) transparently keep the per-block path.
type RunEngine interface {
	ReadRun(ready, addr, version uint64, nBlocks int, w *dram.IssueWindow) (nextReady, maxDataAt uint64)
	WriteRun(ready, addr, version uint64, nBlocks int, w *dram.IssueWindow) (nextReady, maxDataAt uint64)
}

// issueNext applies the DMA issue-window gating one block at a time — the
// exact update the npu.Machine reference loop performs.
func issueNext(w *dram.IssueWindow, busFree, ready uint64) uint64 {
	gate := w.Note(busFree)
	if gate > ready+1 {
		return gate
	}
	return ready + 1
}

// runPerBlock is the reference fallback: the per-block engine path under
// the caller's issue window, used whenever a scheme cannot batch safely.
func runPerBlock(e Engine, read bool, ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	r := ready
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*dram.BlockBytes
		var busFree, dataAt uint64
		if read {
			busFree, dataAt = e.ReadBlock(r, a, version)
		} else {
			busFree, dataAt = e.WriteBlock(r, a, version)
		}
		if dataAt > maxDataAt {
			maxDataAt = dataAt
		}
		r = issueNext(w, busFree, r)
	}
	return r, maxDataAt
}

// macRunLen returns how many consecutive blocks starting at addr share
// addr's MAC line: with slotBytes of MAC per block, block i's slot lives in
// line (i*slotBytes)/64, a non-decreasing step function of i. Works for
// any slot size, including ones that do not divide the line.
func macRunLen(addr, slotBytes uint64) int {
	blockIdx := addr / dram.BlockBytes
	off := blockIdx * slotBytes
	lineEnd := (off/dram.BlockBytes + 1) * dram.BlockBytes
	return int((lineEnd - off + slotBytes - 1) / slotBytes)
}

// macAccessRun is macAccess for count consecutive blocks under one MAC
// line: the boundary block runs the full hit/miss path; the remaining
// count-1 per-block accesses would be guaranteed hits on the just-touched
// line (nothing else touches the MAC cache in between), so they are
// charged through cache.AccessRun without re-walking the model. This is
// the per-block reference of the treeless fallback loop. //tnpu:reference
func macAccessRun(c *cache.Cache, cfg *Config, traffic *stats.Traffic, ready, addr, count uint64, write, writeValidate bool) uint64 {
	at := macAccess(c, cfg, traffic, ready, addr, write, writeValidate)
	if count > 1 {
		c.AccessRun(macLineAddr(addr, cfg.MACSlotBytes), count-1, write)
	}
	return at
}

// counterAccessRun is counterAccess for count consecutive blocks under one
// counter line. The embedded real access of cache.AccessRun re-promotes
// the demand line over a next-line prefetch fill, exactly as the first
// per-block hit after a prefetching miss would.
func (b *baseline) counterAccessRun(ready, addr, count uint64, write bool) uint64 {
	at := b.counterAccess(ready, addr, write)
	if count > 1 {
		b.counter.AccessRun(b.counterLineAddr(addr), count-1, write)
	}
	return at
}

// batchSafe reports whether the guaranteed-hit reasoning holds for the
// baseline's counter cache: a next-line prefetch into a single-line cache
// evicts the demand line itself, breaking the "covered blocks hit" chunk
// invariant. Every realistic configuration is safe.
//
//tnpu:pure
func (b *baseline) batchSafe() bool {
	return !b.cfg.CounterPrefetch || b.cfg.CounterCacheBytes > dram.BlockBytes
}

// --- unsecure / encrypt-only: pure bandwidth arithmetic ---

// ReadRun serves a read run as one bus stream. //tnpu:noalloc
// //tnpu:exactform one StreamRun is the model itself, not an approximation of a per-block loop
func (u *unsecure) ReadRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	u.traffic.AddRead(stats.Data, uint64(n)*dram.BlockBytes)
	next, maxFree, _ := u.cfg.Bus.StreamRun(ready, addr, n, w)
	return next, maxFree + u.cfg.Bus.Latency()
}

// WriteRun serves a write run as one bus stream. //tnpu:noalloc
// //tnpu:exactform one StreamRun is the model itself, not an approximation of a per-block loop
func (u *unsecure) WriteRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	u.traffic.AddWrite(stats.Data, uint64(n)*dram.BlockBytes)
	next, maxFree, _ := u.cfg.Bus.StreamRun(ready, addr, n, w)
	return next, maxFree
}

// ReadRun streams the run and tacks the XTS pipe onto arrival. //tnpu:noalloc
// //tnpu:exactform stream plus fixed XTS latency is the model itself, exact for every run
func (e *encryptOnly) ReadRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	e.traffic.AddRead(stats.Data, uint64(n)*dram.BlockBytes)
	next, maxFree, _ := e.cfg.Bus.StreamRun(ready, addr, n, w)
	return next, maxFree + e.cfg.Bus.Latency() + e.cfg.XTSCycles
}

// WriteRun streams the run; encryption overlaps issue. //tnpu:noalloc
// //tnpu:exactform stream with overlapped encryption is the model itself, exact for every run
func (e *encryptOnly) WriteRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	e.traffic.AddWrite(stats.Data, uint64(n)*dram.BlockBytes)
	next, maxFree, _ := e.cfg.Bus.StreamRun(ready, addr, n, w)
	return next, maxFree
}

// --- tree-less (TNPU): batches whole MAC-line streaks ---

// Long runs on a single channel are served as one streak (streak.go):
// every MAC-line outcome is resolved in one cache walk and the reference
// charge sequence replays through a RunCursor in closed form. The per-line
// loop below remains as the fallback for short runs, multi-channel buses,
// and configurations where the append invariant is unprovable.

// ReadRun batches MAC-line streaks of the read run. //tnpu:noalloc
func (t *treeless) ReadRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	if n >= streakMinBlocks && t.cfg.Bus.BeginSpanRun(&t.cur, w, ready, 3*n+16) {
		return t.readStreak(ready, addr, n, w)
	}
	r := ready
	lat := t.cfg.Bus.Latency()
	for i := 0; i < n; {
		// A rejected run usually failed on a remembered idle gap; gaps are
		// consumed (or overtaken) as the run's own blocks land, so retry
		// the streak for the remaining lines.
		if i > 0 && n-i >= streakMinBlocks && t.cfg.Bus.BeginSpanRun(&t.cur, w, r, 3*(n-i)+16) {
			nr, d := t.readStreak(r, addr+uint64(i)*dram.BlockBytes, n-i, w)
			if d > maxDataAt {
				maxDataAt = d
			}
			return nr, maxDataAt
		}
		a := addr + uint64(i)*dram.BlockBytes
		m := macRunLen(a, t.cfg.MACSlotBytes)
		if m > n-i {
			m = n - i
		}
		// Line-boundary block: full ReadBlock path, charging the MAC line
		// for every block it covers in this run.
		t.traffic.AddRead(stats.Data, dram.BlockBytes)
		busFree := t.cfg.Bus.TransferAt(r, a, dram.BlockBytes)
		macAt := macAccessRun(t.mac, &t.cfg, &t.traffic, r, a, uint64(m), false, true)
		dataAt := max64(busFree+lat+t.cfg.XTSCycles, macAt) + t.cfg.MACCycles
		if dataAt > maxDataAt {
			maxDataAt = dataAt
		}
		r = issueNext(w, busFree, r)
		// Covered blocks: the MAC hit resolves at the issue time, which the
		// data-arrival term always dominates, leaving pure bus arithmetic.
		if m > 1 {
			t.traffic.AddRead(stats.Data, uint64(m-1)*dram.BlockBytes)
			nr, maxFree, _ := t.cfg.Bus.StreamRun(r, a+dram.BlockBytes, m-1, w)
			r = nr
			if d := maxFree + lat + t.cfg.XTSCycles + t.cfg.MACCycles; d > maxDataAt {
				maxDataAt = d
			}
		}
		i += m
	}
	return r, maxDataAt
}

// WriteRun batches MAC-line streaks of the write run. //tnpu:noalloc
func (t *treeless) WriteRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	if n >= streakMinBlocks && t.cfg.Bus.BeginSpanRun(&t.cur, w, ready, 3*n+16) {
		return t.writeStreak(ready, addr, n, w)
	}
	r := ready
	for i := 0; i < n; {
		// See ReadRun: retry the streak once the rejecting gap is behind.
		if i > 0 && n-i >= streakMinBlocks && t.cfg.Bus.BeginSpanRun(&t.cur, w, r, 3*(n-i)+16) {
			nr, d := t.writeStreak(r, addr+uint64(i)*dram.BlockBytes, n-i, w)
			if d > maxDataAt {
				maxDataAt = d
			}
			return nr, maxDataAt
		}
		a := addr + uint64(i)*dram.BlockBytes
		m := macRunLen(a, t.cfg.MACSlotBytes)
		if m > n-i {
			m = n - i
		}
		macAccessRun(t.mac, &t.cfg, &t.traffic, r, a, uint64(m), true, true)
		t.traffic.AddWrite(stats.Data, dram.BlockBytes)
		busFree := t.cfg.Bus.TransferAt(r, a, dram.BlockBytes)
		if busFree > maxDataAt {
			maxDataAt = busFree
		}
		r = issueNext(w, busFree, r)
		if m > 1 {
			t.traffic.AddWrite(stats.Data, uint64(m-1)*dram.BlockBytes)
			nr, maxFree, _ := t.cfg.Bus.StreamRun(r, a+dram.BlockBytes, m-1, w)
			r = nr
			if maxFree > maxDataAt {
				maxDataAt = maxFree
			}
		}
		i += m
	}
	return r, maxDataAt
}

// --- baseline (tree-based): batches at counter-line granularity, with
// MAC-line boundaries as sub-events (the two need not nest for ablation
// arity/slot combinations, so the loop walks boundary events generically).
// Long single-channel runs additionally stream chunk sequences through a
// RunCursor (streak.go): chunks whose counter access ctrSimple can prove
// append-safe replay in closed form, and any other chunk drops out of the
// streak — before touching state — onto the reference body below, rejoining
// afterwards when enough blocks remain.

// ReadRun batches counter-line chunks of the read run. //tnpu:noalloc
func (b *baseline) ReadRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	if !b.batchSafe() {
		return runPerBlock(b, true, ready, addr, version, n, w)
	}
	arity := b.cfg.TreeArity
	lat := b.cfg.Bus.Latency()
	r := ready
	nextCtr, nextMac := 0, 0
	var ctrCount, macCount uint64
	cur := &b.cur
	inStreak := n >= streakMinBlocks && b.cfg.Bus.BeginSpanRun(cur, w, r, 5*n+16)
	macSwept := inStreak && b.beginMacSweep(addr, 0, n, false)
	sweepLi := 0 // MAC-line outcomes consumed from the active sweep
	pending := 0 // deferred data blocks awaiting one streak span charge
	// Chunk-stretch collapse is valid when the MAC slot tiles the line and
	// counter boundaries land on chunk starts (see chunkStretch).
	mFull := 0
	if dram.BlockBytes%b.cfg.MACSlotBytes == 0 {
		if m := int(dram.BlockBytes / b.cfg.MACSlotBytes); arity%uint64(m) == 0 {
			mFull = m
		}
	}
	for i := 0; i < n; {
		a := addr + uint64(i)*dram.BlockBytes
		blockIdx := a / dram.BlockBytes
		isCtr := i == nextCtr
		isMac := i == nextMac
		if isCtr {
			cm := int(arity - blockIdx%arity)
			ctrCount = uint64(minInt(cm, n-i))
			nextCtr = i + cm
		}
		if isMac {
			mm := macRunLen(a, b.cfg.MACSlotBytes)
			macCount = uint64(minInt(mm, n-i))
			nextMac = i + mm
		}
		chunkEnd := minInt(minInt(nextCtr, nextMac), n)
		if inStreak && isCtr && !b.ctrSimple(a, r) {
			// A counter access the closed form cannot serve (multi-level
			// walk, busy MSHRs, prefetch fill, or an unsafe eviction
			// cascade): flush the pending span, commit the consumed sweep
			// prefix, and fall back to the reference path for this chunk —
			// no state was touched yet.
			if macSwept {
				b.sweep.CommitPrefix(sweepLi)
				macSwept = false
			}
			if pending > 0 {
				lastFree, lastIssue, nr := cur.Data(r, pending)
				r = nr
				if d := max64(lastFree+lat, lastIssue+b.cfg.OTPCycles) + b.cfg.XORCycles + b.cfg.MACCycles; d > maxDataAt {
					maxDataAt = d
				}
				pending = 0
			}
			cur.Commit()
			inStreak = false
		}
		if inStreak && macSwept && mFull > 0 && isMac && pending == mFull-1 && chunkEnd == i+mFull &&
			b.ctrStretchEntryOK(blockIdx, isCtr) {
			// Stretch of full chunks in one MAC outcome class with resident
			// counters: every chunk charges [span(mFull), MAC metadata] with
			// the counter access free, so the whole stretch is one periodic
			// span (or one plain span when the class is hit). Arrival, issue,
			// and MAC-fetch terms all grow per chunk, so the final chunk
			// dominates the stretch's dataAt.
			out0 := b.sweep.Outcome(sweepLi)
			if p := b.chunkStretch(addr, i, n, sweepLi, mFull, out0, false); p >= 2 {
				trail := 0
				if out0.Writeback {
					trail++
				}
				if !out0.Hit {
					trail++
				}
				var lastFree, lastIssue, nr uint64
				ok := true
				if trail == 0 {
					lastFree, lastIssue, nr = cur.Data(r, p*mFull)
				} else {
					lastFree, lastIssue, nr, ok = cur.DataPeriodic(r, p, mFull, 0, trail)
				}
				if ok {
					b.traffic.AddRead(stats.Data, uint64(p*mFull)*dram.BlockBytes)
					if out0.Writeback {
						b.traffic.AddWrite(stats.MAC, uint64(p)*dram.BlockBytes)
					}
					macAt := lastIssue
					if !out0.Hit {
						b.traffic.AddRead(stats.MAC, uint64(p)*dram.BlockBytes)
						// The fetch is each period's last charge, so the final
						// macAt is the horizon plus the bus latency.
						macAt = cur.Horizon() + lat
					}
					b.mac.AddRunHits(uint64(p) * uint64(mFull-1))
					if isCtr && blockIdx%arity != 0 {
						b.ctrPartialHit(blockIdx, ctrCount, false)
					}
					b.ctrStretchHits(addr, i, p, mFull, n, false)
					dataAt := max64(lastFree+lat, lastIssue+b.cfg.OTPCycles)
					dataAt = max64(dataAt+b.cfg.XORCycles, macAt) + b.cfg.MACCycles
					if dataAt > maxDataAt {
						maxDataAt = dataAt
					}
					r = nr
					sweepLi += p
					i += p * mFull
					nextMac = i
					for nextCtr < i {
						nextCtr += int(arity)
					}
					continue
				}
			}
		}
		if inStreak {
			// Streak chunk: ReadBlock's charge order is data first, so the
			// pending span plus this boundary flush before the metadata.
			b.traffic.AddRead(stats.Data, uint64(chunkEnd-i)*dram.BlockBytes)
			lastFree, lastIssue, nr := cur.Data(r, pending+1)
			r = nr
			counterAt := lastIssue
			if isCtr {
				counterAt = b.ctrStreakAccess(cur, lastIssue, a, ctrCount, false)
			}
			macAt := lastIssue
			if isMac {
				if macSwept {
					macAt = b.macSweepAccess(cur, lastIssue, macCount, b.sweep.Outcome(sweepLi), false)
					sweepLi++
				} else {
					macAt = b.macStreakAccess(cur, lastIssue, a, macCount, false)
				}
			}
			dataAt := max64(lastFree+lat, counterAt+b.cfg.OTPCycles)
			dataAt = max64(dataAt+b.cfg.XORCycles, macAt) + b.cfg.MACCycles
			if dataAt > maxDataAt {
				maxDataAt = dataAt
			}
			pending = chunkEnd - (i + 1)
			i = chunkEnd
			continue
		}
		// Boundary block: ReadBlock's operation order (data transfer,
		// counter access + walk, MAC access), with each line-opening access
		// charged for every block it covers in this run.
		b.traffic.AddRead(stats.Data, dram.BlockBytes)
		busFree := b.cfg.Bus.TransferAt(r, a, dram.BlockBytes)
		counterAt := r
		if isCtr {
			counterAt = b.counterAccessRun(r, a, ctrCount, false)
		}
		macAt := r
		if isMac {
			macAt = macAccessRun(b.mac, &b.cfg, &b.traffic, r, a, macCount, false, false)
		}
		dataAt := max64(busFree+lat, counterAt+b.cfg.OTPCycles)
		dataAt = max64(dataAt+b.cfg.XORCycles, macAt) + b.cfg.MACCycles
		if dataAt > maxDataAt {
			maxDataAt = dataAt
		}
		r = issueNext(w, busFree, r)
		// Covered blocks: counter and MAC hits resolve at the issue time,
		// which the OTP term strictly dominates, so the per-block max
		// collapses to bus arrival vs. last-issue OTP.
		if pure := chunkEnd - (i + 1); pure > 0 {
			b.traffic.AddRead(stats.Data, uint64(pure)*dram.BlockBytes)
			nr, maxFree, lastIssue := b.cfg.Bus.StreamRun(r, a+dram.BlockBytes, pure, w)
			r = nr
			d := max64(maxFree+lat, lastIssue+b.cfg.OTPCycles) + b.cfg.XORCycles + b.cfg.MACCycles
			if d > maxDataAt {
				maxDataAt = d
			}
		}
		i = chunkEnd
		// Rejoin the streak for the remaining chunks when possible.
		inStreak = n-i >= streakMinBlocks && b.cfg.Bus.BeginSpanRun(cur, w, r, 5*(n-i)+16)
		if inStreak {
			macSwept = b.beginMacSweep(addr, nextMac, n, false)
			sweepLi = 0
		}
	}
	if inStreak {
		if macSwept {
			b.sweep.CommitPrefix(sweepLi)
		}
		if pending > 0 {
			lastFree, lastIssue, nr := cur.Data(r, pending)
			r = nr
			if d := max64(lastFree+lat, lastIssue+b.cfg.OTPCycles) + b.cfg.XORCycles + b.cfg.MACCycles; d > maxDataAt {
				maxDataAt = d
			}
		}
		cur.Commit()
	}
	return r, maxDataAt
}

// WriteRun batches counter-line chunks of the write run. //tnpu:noalloc
func (b *baseline) WriteRun(ready, addr, version uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	// A minor-counter overflow mid-run emits a re-encryption burst between
	// two data blocks; runs about to overflow (at most one write-run in 128
	// to any line) take the reference path so the burst lands exactly where
	// the per-block model puts it.
	if !b.batchSafe() || b.overflowPending(addr, n) {
		return runPerBlock(b, false, ready, addr, version, n, w)
	}
	arity := b.cfg.TreeArity
	r := ready
	nextCtr, nextMac := 0, 0
	var ctrCount, macCount uint64
	var minorLine *[integrity.Arity]uint8
	cur := &b.cur
	inStreak := n >= streakMinBlocks && b.cfg.Bus.BeginSpanRun(cur, w, r, 5*n+16)
	macSwept := inStreak && b.beginMacSweep(addr, 0, n, true)
	sweepLi := 0 // MAC-line outcomes consumed from the active sweep
	pending := 0 // deferred data blocks awaiting one streak span charge
	// Chunk-stretch collapse precondition; see ReadRun.
	mFull := 0
	if dram.BlockBytes%b.cfg.MACSlotBytes == 0 {
		if m := int(dram.BlockBytes / b.cfg.MACSlotBytes); arity%uint64(m) == 0 {
			mFull = m
		}
	}
	for i := 0; i < n; {
		a := addr + uint64(i)*dram.BlockBytes
		blockIdx := a / dram.BlockBytes
		isCtr := i == nextCtr
		isMac := i == nextMac
		if isCtr {
			cm := int(arity - blockIdx%arity)
			ctrCount = uint64(minInt(cm, n-i))
			nextCtr = i + cm
		}
		if isMac {
			mm := macRunLen(a, b.cfg.MACSlotBytes)
			macCount = uint64(minInt(mm, n-i))
			nextMac = i + mm
		}
		chunkEnd := minInt(minInt(nextCtr, nextMac), n)
		lineIdx, slot := b.geo.CounterIndex(blockIdx)
		if inStreak && isCtr && !b.ctrSimple(a, r) {
			// See ReadRun: hand this chunk to the reference path untouched.
			if macSwept {
				b.sweep.CommitPrefix(sweepLi)
				macSwept = false
			}
			if pending > 0 {
				lastFree, _, nr := cur.Data(r, pending)
				r = nr
				if lastFree > maxDataAt {
					maxDataAt = lastFree
				}
				pending = 0
			}
			cur.Commit()
			inStreak = false
		}
		if inStreak && macSwept && mFull > 0 && isMac && chunkEnd == i+mFull &&
			b.ctrStretchEntryOK(blockIdx, isCtr) {
			// Stretch of full chunks in one MAC outcome class with resident
			// counters (see ReadRun): hit chunks charge nothing on the
			// write-validated path and fold into the pending span; miss
			// chunks each flush the deferred previous chunk and append the
			// victim writeback and RMW fetch — one period DataPeriodic
			// repeats when pending is exactly mFull.
			out0 := b.sweep.Outcome(sweepLi)
			if p := b.chunkStretch(addr, i, n, sweepLi, mFull, out0, true); p >= 2 {
				if out0.Hit {
					b.traffic.AddWrite(stats.Data, uint64(p*mFull)*dram.BlockBytes)
					b.mac.AddRunHits(uint64(p) * uint64(mFull-1))
					if isCtr && blockIdx%arity != 0 {
						b.ctrPartialHit(blockIdx, ctrCount, true)
					}
					b.ctrStretchHits(addr, i, p, mFull, n, true)
					b.minorStretchBump(addr, i, p*mFull)
					pending += p * mFull
					sweepLi += p
					i += p * mFull
					nextMac = i
					for nextCtr < i {
						nextCtr += int(arity)
					}
					// Keep minorLine current for a mid-line successor chunk.
					li2, _ := b.geo.CounterIndex(addr/dram.BlockBytes + uint64(i))
					minorLine = b.minors[li2]
					continue
				}
				if pending == mFull {
					trail := 1
					if out0.Writeback {
						trail = 2 // victim writeback precedes the RMW fetch
					}
					if lastFree, _, nr, ok := cur.DataPeriodic(r, p, mFull, 0, trail); ok {
						b.traffic.AddWrite(stats.Data, uint64(p*mFull)*dram.BlockBytes)
						b.traffic.AddRead(stats.MAC, uint64(p)*dram.BlockBytes)
						if out0.Writeback {
							b.traffic.AddWrite(stats.MAC, uint64(p)*dram.BlockBytes)
						}
						b.mac.AddRunHits(uint64(p) * uint64(mFull-1))
						if isCtr && blockIdx%arity != 0 {
							b.ctrPartialHit(blockIdx, ctrCount, true)
						}
						b.ctrStretchHits(addr, i, p, mFull, n, true)
						b.minorStretchBump(addr, i, p*mFull)
						if lastFree > maxDataAt {
							maxDataAt = lastFree
						}
						r = nr
						sweepLi += p
						i += p * mFull
						nextMac = i
						for nextCtr < i {
							nextCtr += int(arity)
						}
						// pending stays mFull: the final chunk's data is the
						// deferred span the next flush charges.
						li2, _ := b.geo.CounterIndex(addr/dram.BlockBytes + uint64(i))
						minorLine = b.minors[li2]
						continue
					}
				}
			}
		}
		if inStreak {
			// WriteBlock charges metadata before data, so a chunk whose
			// lines are both resident (hence chargeless) folds straight into
			// the pending span; otherwise the deferred data of earlier
			// chunks lands first, then the metadata charges, then this
			// chunk's data joins a fresh span. With an active sweep the MAC
			// residency question is answered by the outcome (the cache
			// itself is stale until CommitPrefix).
			var macRes cache.Result
			macHit := true
			if isMac {
				if macSwept {
					macRes = b.sweep.Outcome(sweepLi)
					macHit = macRes.Hit
				} else {
					macHit = b.mac.Probe(macLineAddr(a, b.cfg.MACSlotBytes))
				}
			}
			clean := (!isCtr || b.counter.Probe(b.geo.NodeAddr(0, lineIdx))) && macHit
			if !clean && pending > 0 {
				lastFree, _, nr := cur.Data(r, pending)
				r = nr
				if lastFree > maxDataAt {
					maxDataAt = lastFree
				}
				pending = 0
			}
			if isCtr {
				if clean {
					b.counter.Access(b.geo.NodeAddr(0, lineIdx), true)
					b.counter.AddRunHits(ctrCount - 1)
				} else {
					// A walk's completion can outlast the run's final bus
					// clear, so it feeds maxDataAt directly.
					if counterAt := b.ctrStreakAccess(cur, r, a, ctrCount, true); counterAt > maxDataAt {
						maxDataAt = counterAt
					}
				}
				minorLine = b.minors[lineIdx]
				if minorLine == nil {
					// First touch of this counter line; every later run
					// reuses it, so steady state stays at 0 allocs/op.
					minorLine = new([integrity.Arity]uint8) //tnpu:allocok
					b.minors[lineIdx] = minorLine
				}
				b.minorMark(lineIdx)
			}
			b.minorDigAdd(lineIdx, slot, chunkEnd-i)
			for k := 0; k < chunkEnd-i; k++ {
				minorLine[slot+k]++
			}
			if isMac {
				if macSwept {
					if clean {
						// Hit: CommitPrefix applies the lookup, promotion,
						// and dirtying of the sweep's write access.
						b.mac.AddRunHits(macCount - 1)
					} else {
						b.macSweepAccess(cur, r, macCount, macRes, true)
					}
					sweepLi++
				} else if clean {
					b.mac.Access(macLineAddr(a, b.cfg.MACSlotBytes), true)
					b.mac.AddRunHits(macCount - 1)
				} else {
					b.macStreakAccess(cur, r, a, macCount, true)
				}
			}
			b.traffic.AddWrite(stats.Data, uint64(chunkEnd-i)*dram.BlockBytes)
			pending += chunkEnd - i
			i = chunkEnd
			continue
		}
		// Boundary block: WriteBlock's operation order (counter RMW, minor
		// bump, MAC update, data transfer).
		counterAt := r
		if isCtr {
			counterAt = b.counterAccessRun(r, a, ctrCount, true)
			minorLine = b.minors[lineIdx]
			if minorLine == nil {
				// First touch of this counter line; every later run
				// reuses it, so steady state stays at 0 allocs/op.
				minorLine = new([integrity.Arity]uint8) //tnpu:allocok
				b.minors[lineIdx] = minorLine
			}
			b.minorMark(lineIdx)
		}
		b.minorDigAdd(lineIdx, slot, 1)
		minorLine[slot]++
		if isMac {
			macAccessRun(b.mac, &b.cfg, &b.traffic, r, a, macCount, true, false)
		}
		b.traffic.AddWrite(stats.Data, dram.BlockBytes)
		busFree := b.cfg.Bus.TransferAt(r, a, dram.BlockBytes)
		if d := max64(busFree, counterAt); d > maxDataAt {
			maxDataAt = d
		}
		r = issueNext(w, busFree, r)
		// Covered blocks: cache hits and overflow-free minor bumps; the
		// write path completes at each block's bus-clear time.
		if pure := chunkEnd - (i + 1); pure > 0 {
			b.minorDigAdd(lineIdx, slot+1, pure)
			for k := 1; k <= pure; k++ {
				minorLine[slot+k]++
			}
			b.traffic.AddWrite(stats.Data, uint64(pure)*dram.BlockBytes)
			nr, maxFree, _ := b.cfg.Bus.StreamRun(r, a+dram.BlockBytes, pure, w)
			r = nr
			if maxFree > maxDataAt {
				maxDataAt = maxFree
			}
		}
		i = chunkEnd
		// Rejoin the streak for the remaining chunks when possible.
		inStreak = n-i >= streakMinBlocks && b.cfg.Bus.BeginSpanRun(cur, w, r, 5*(n-i)+16)
		if inStreak {
			macSwept = b.beginMacSweep(addr, nextMac, n, true)
			sweepLi = 0
		}
	}
	if inStreak {
		if macSwept {
			b.sweep.CommitPrefix(sweepLi)
		}
		if pending > 0 {
			lastFree, _, nr := cur.Data(r, pending)
			r = nr
			if lastFree > maxDataAt {
				maxDataAt = lastFree
			}
		}
		cur.Commit()
	}
	return r, maxDataAt
}

// overflowPending reports whether writing blocks [addr, addr+n*64) would
// wrap any 7-bit minor counter (pre-increment value 127): each block in a
// run bumps a distinct slot, so a scan of the covered slots decides it.
//
//tnpu:pure
func (b *baseline) overflowPending(addr uint64, n int) bool {
	blockIdx := addr / dram.BlockBytes
	for i := 0; i < n; {
		lineIdx, slot := b.geo.CounterIndex(blockIdx + uint64(i))
		span := int(b.cfg.TreeArity) - slot
		if span > n-i {
			span = n - i
		}
		if line := b.minors[lineIdx]; line != nil {
			for s := slot; s < slot+span; s++ {
				if line[s] == 1<<7-1 {
					return true
				}
			}
		}
		i += span
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
