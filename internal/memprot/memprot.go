// Package memprot implements the timing and traffic models of the three
// memory-protection schemes the paper evaluates (Sec. V-A):
//
//   - Unsecure: raw transfers, bandwidth + DRAM latency only.
//   - Baseline: counter-mode encryption with an SC-64 split-counter
//     integrity tree over the whole DRAM, counter cache + hash cache +
//     MAC cache (the conventional CPU-style protection of Fig. 1).
//   - TreeLess (TNPU): AES-XTS encryption + per-block versioned MACs,
//     MAC cache only; version numbers are fetched from the small fully
//     protected region (Sec. IV-C).
//
// Engines operate at 64-byte block granularity on a shared dram.Bus, so
// security-metadata traffic competes with tensor data for bandwidth — the
// effect that separates the schemes. All engines are deterministic and not
// safe for concurrent use (the simulator serializes block events).
package memprot

import (
	"fmt"

	"tnpu/internal/dram"
	"tnpu/internal/stats"
)

// Scheme selects a protection engine.
type Scheme int

const (
	// Unsecure applies no protection (the normalization baseline).
	Unsecure Scheme = iota
	// Baseline is the conventional tree-based protection.
	Baseline
	// TreeLess is the TNPU scheme.
	TreeLess
	// EncryptOnly models scalable SGX / Intel TME (Sec. II-B): AES-XTS
	// full-memory encryption with NO integrity protection — the
	// confidentiality-only lower bound TNPU is contrasted against. Not
	// part of the paper's three plotted schemes.
	EncryptOnly
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Unsecure:
		return "unsecure"
	case Baseline:
		return "baseline"
	case TreeLess:
		return "tnpu"
	case EncryptOnly:
		return "encrypt-only"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Engine is the per-block protection timing model. ReadBlock/WriteBlock
// return two times: busFree is when the block's data beat has cleared the
// bus (the DMA may issue its next block), dataAt is when the decrypted,
// verified data is available to the scratchpad (reads) or accepted by the
// write path (writes).
type Engine interface {
	Scheme() Scheme
	ReadBlock(ready, addr, version uint64) (busFree, dataAt uint64)
	WriteBlock(ready, addr, version uint64) (busFree, dataAt uint64)
	// VersionFetch models the software's version-table access in the
	// fully protected region before an mvin/mvout (one per instruction,
	// not per block): the 8-byte slot at slotAddr is read (mvin) or
	// updated (mvout). It returns when the version number is available.
	// Schemes without software versioning return ready unchanged.
	VersionFetch(ready, slotAddr uint64, write bool) uint64
	// Flush drains dirty metadata (end-of-run accounting).
	Flush(now uint64)
	Traffic() *stats.Traffic
	// CounterStats/HashStats/MACStats return cache statistics; engines
	// without a given cache return a zero-valued struct.
	CounterStats() *stats.CacheStats
	HashStats() *stats.CacheStats
	MACStats() *stats.CacheStats
}

// Config carries the protection parameters of Sec. V-A.
type Config struct {
	// Bus is the shared memory interface (may be shared among NPUs).
	Bus *dram.Bus
	// DRAMBytes is the size of the protected physical memory the baseline
	// tree covers ("the entire DRAM space", Sec. III-B).
	DRAMBytes uint64
	// FullyProtectedBytes is the SGX-PRM-like region holding security
	// metadata and version tables (128MB, Sec. IV-A).
	FullyProtectedBytes uint64

	// Cache capacities (bytes): 4KB counter, 4KB hash, 8KB MAC (Sec. V-A).
	CounterCacheBytes int
	HashCacheBytes    int
	MACCacheBytes     int
	// CacheWays is the associativity of all metadata caches.
	CacheWays int

	// Crypto latencies in cycles (Sec. V-A): OTP = 10 + 1 XOR for
	// counter mode; 13 for AES-XTS.
	OTPCycles uint64
	XORCycles uint64
	XTSCycles uint64
	// MACCycles is the MAC check/generate pipeline latency.
	MACCycles uint64

	// TreeArity is the counter-tree fan-out (64 = SC-64 default; 8 =
	// SGX-MEE-like). Ablation knob for the baseline engine.
	TreeArity uint64
	// WalkMSHRs is how many counter-tree walks the security engine can
	// have in flight. Dense streams (one miss per 4KB) overlap their
	// walks within this window; bursty fine-grained misses saturate it
	// and serialize — the behaviour behind sent/tf in Fig. 4.
	WalkMSHRs int
	// CounterPrefetch makes the baseline engine fetch the next counter
	// line on every miss (next-line prefetch): an ablation probing
	// whether simple prefetching could rescue the tree-based design for
	// streaming tensors.
	CounterPrefetch bool
	// MACSlotBytes is the per-block MAC size (8B default; trading
	// collision resistance against the 12.5% MAC traffic). Ablation knob.
	MACSlotBytes uint64
}

// DefaultConfig returns the paper's parameters over the given shared bus.
func DefaultConfig(bus *dram.Bus) Config {
	return Config{
		Bus:                 bus,
		DRAMBytes:           4 << 30,
		FullyProtectedBytes: 128 << 20,
		CounterCacheBytes:   4 << 10,
		HashCacheBytes:      4 << 10,
		MACCacheBytes:       8 << 10,
		CacheWays:           8,
		OTPCycles:           10,
		XORCycles:           1,
		XTSCycles:           13,
		MACCycles:           20,
		TreeArity:           64,
		WalkMSHRs:           2,
		MACSlotBytes:        8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Bus == nil {
		return fmt.Errorf("memprot: nil bus")
	}
	if c.DRAMBytes == 0 || c.FullyProtectedBytes == 0 {
		return fmt.Errorf("memprot: zero memory sizes")
	}
	if c.CounterCacheBytes <= 0 || c.HashCacheBytes <= 0 || c.MACCacheBytes <= 0 || c.CacheWays <= 0 {
		return fmt.Errorf("memprot: non-positive cache parameters")
	}
	if c.TreeArity < 2 {
		return fmt.Errorf("memprot: tree arity %d too small", c.TreeArity)
	}
	if c.WalkMSHRs <= 0 {
		return fmt.Errorf("memprot: need at least one walk MSHR")
	}
	if c.MACSlotBytes == 0 || c.MACSlotBytes > dram.BlockBytes {
		return fmt.Errorf("memprot: MAC slot of %d bytes invalid", c.MACSlotBytes)
	}
	return nil
}

// New constructs the engine for a scheme.
func New(s Scheme, cfg Config) (Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch s {
	case Unsecure:
		return newUnsecure(cfg), nil
	case Baseline:
		return newBaseline(cfg), nil
	case TreeLess:
		return newTreeless(cfg), nil
	case EncryptOnly:
		return newEncryptOnly(cfg), nil
	}
	return nil, fmt.Errorf("memprot: unknown scheme %d", int(s))
}

// Schemes lists the paper's three plotted schemes in figure order.
func Schemes() []Scheme { return []Scheme{Unsecure, Baseline, TreeLess} }

// AllSchemes adds the encryption-only (scalable-SGX-like) bound.
func AllSchemes() []Scheme { return []Scheme{Unsecure, Baseline, TreeLess, EncryptOnly} }

var zeroCacheStats stats.CacheStats

// unsecure is the no-protection engine.
type unsecure struct {
	cfg     Config
	traffic stats.Traffic
}

func newUnsecure(cfg Config) *unsecure { return &unsecure{cfg: cfg} }

func (u *unsecure) Scheme() Scheme { return Unsecure }

func (u *unsecure) ReadBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	u.traffic.AddRead(stats.Data, dram.BlockBytes)
	busFree = u.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	return busFree, busFree + u.cfg.Bus.Latency()
}

func (u *unsecure) WriteBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	u.traffic.AddWrite(stats.Data, dram.BlockBytes)
	busFree = u.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	return busFree, busFree
}

func (u *unsecure) VersionFetch(ready, slotAddr uint64, write bool) uint64 { return ready }
func (u *unsecure) Flush(now uint64)                                       {}
func (u *unsecure) Traffic() *stats.Traffic                                { return &u.traffic }
func (u *unsecure) CounterStats() *stats.CacheStats                        { return &zeroCacheStats }
func (u *unsecure) HashStats() *stats.CacheStats                           { return &zeroCacheStats }
func (u *unsecure) MACStats() *stats.CacheStats                            { return &zeroCacheStats }

// encryptOnly is the scalable-SGX-like engine: counter-less AES-XTS over
// the whole memory, no MACs, no freshness. Confidentiality against
// physical attacks, zero integrity — its cost is the XTS pipeline latency
// alone, which bounds how cheap any integrity-adding scheme could get.
type encryptOnly struct {
	cfg     Config
	traffic stats.Traffic
}

func newEncryptOnly(cfg Config) *encryptOnly { return &encryptOnly{cfg: cfg} }

func (e *encryptOnly) Scheme() Scheme { return EncryptOnly }

func (e *encryptOnly) ReadBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	e.traffic.AddRead(stats.Data, dram.BlockBytes)
	busFree = e.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	return busFree, busFree + e.cfg.Bus.Latency() + e.cfg.XTSCycles
}

func (e *encryptOnly) WriteBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	e.traffic.AddWrite(stats.Data, dram.BlockBytes)
	busFree = e.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	return busFree, busFree
}

func (e *encryptOnly) VersionFetch(ready, slotAddr uint64, write bool) uint64 { return ready }
func (e *encryptOnly) Flush(now uint64)                                       {}
func (e *encryptOnly) Traffic() *stats.Traffic                                { return &e.traffic }
func (e *encryptOnly) CounterStats() *stats.CacheStats                        { return &zeroCacheStats }
func (e *encryptOnly) HashStats() *stats.CacheStats                           { return &zeroCacheStats }
func (e *encryptOnly) MACStats() *stats.CacheStats                            { return &zeroCacheStats }
