package memprot

import (
	"fmt"

	"tnpu/internal/cache"
	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/stats"
	"tnpu/internal/tensor"
)

// VTableBase is the synthetic address of the version-number table inside
// the fully protected region. Version-table slots are 8 bytes (Sec. IV-D);
// the NPU driver computes a slot address per (tensor, tile).
const VTableBase uint64 = 1 << 45

// VTableSlot returns the fully-protected-region address of the version
// slot for (tensorID, tile). Slots of one tensor pack 8 bytes apart, so a
// tensor's expanded tile versions share cache lines the way the packed
// software table of Sec. IV-D does.
func VTableSlot(tensorID uint32, tile int) uint64 {
	if tile < 0 || tile >= tensor.MaxTiles {
		panic(fmt.Sprintf("memprot: tile %d outside version-table layout (max %d)", tile, tensor.MaxTiles))
	}
	return VTableBase + (uint64(tensorID)*tensor.MaxTiles+uint64(tile))*8
}

// treeless is the TNPU protection engine (Sec. IV-C): AES-XTS encryption
// (no counters, no counter/hash caches) plus an 8-byte versioned MAC per
// block. Replay freshness comes from version numbers the software fetches
// from the fully protected region; that small region keeps a conventional
// tree, modelled here by a miniature tree walker with its own tiny caches
// (the MEE protecting the PRM is separate hardware from the NPU path).
type treeless struct {
	cfg     Config
	mac     *cache.Cache
	traffic stats.Traffic

	// Streak scratch state (see streak.go): the span cursor accumulates a
	// whole run's bus charges with O(1)-per-span window bookkeeping, sweep
	// resolves whole MAC-line ranges in closed form, and macOut is the
	// reused per-line outcome buffer for the mixed fallback. Engine-owned
	// so the batched hot path allocates nothing.
	cur    dram.SpanCursor //tnpu:canonskip per-call scratch cursor, no state across calls
	sweep  cache.Sweep     //tnpu:canonskip per-call scratch resolver, no state across calls
	macOut []cache.Result  //tnpu:canonskip reused per-call outcome buffer, contents dead between calls

	// Version-table path: the table is CPU-enclave data, so accesses hit
	// the CPU cache hierarchy; vcache models that residency (the tables
	// are KB-scale — Sec. IV-D — so even several contexts' tables stay
	// resident in a CPU L2). Misses become fully-protected-region DRAM
	// accesses verified by fpGeo's tree through the small
	// fpCounter/fpHash caches.
	vcache    *cache.Cache
	fpGeo     integrity.Geometry //tnpu:canonskip derived from cfg at construction, immutable
	fpCounter *cache.Cache
	fpHash    *cache.Cache
}

func newTreeless(cfg Config) *treeless {
	return &treeless{
		cfg:       cfg,
		mac:       cache.New("mac", cfg.MACCacheBytes, dram.BlockBytes, cfg.CacheWays),
		vcache:    cache.New("vtable", 64<<10, dram.BlockBytes, cfg.CacheWays),
		fpGeo:     integrity.NewGeometry(cfg.FullyProtectedBytes),
		fpCounter: cache.New("fp-counter", 1<<10, dram.BlockBytes, cfg.CacheWays),
		fpHash:    cache.New("fp-hash", 1<<10, dram.BlockBytes, cfg.CacheWays),
	}
}

func (t *treeless) Scheme() Scheme { return TreeLess }

func (t *treeless) ReadBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	// Data and MAC fetches overlap; XTS decryption starts once the
	// ciphertext arrives (no precomputable OTP — the 13-cycle cost of
	// counter-less encryption), and the version-keyed MAC check pipelines
	// after both.
	t.traffic.AddRead(stats.Data, dram.BlockBytes)
	busFree = t.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	dataFetched := busFree + t.cfg.Bus.Latency()

	macAt := macAccess(t.mac, &t.cfg, &t.traffic, ready, addr, false, true)
	dataAt = max64(dataFetched+t.cfg.XTSCycles, macAt) + t.cfg.MACCycles
	return busFree, dataAt
}

func (t *treeless) WriteBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	// XTS encryption and MAC generation happen behind the write buffer;
	// the MAC slot is updated in the MAC cache (write-validate).
	macAccess(t.mac, &t.cfg, &t.traffic, ready, addr, true, true)
	t.traffic.AddWrite(stats.Data, dram.BlockBytes)
	busFree = t.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	return busFree, busFree
}

// VersionFetch models the software reading (mvin) or updating (mvout) the
// 8-byte version slot at slotAddr in the fully protected region. The table
// is a few KB (Sec. IV-D) so it stays resident in vcache; misses generate
// real protected-region traffic including the region's own tree metadata.
// The accesses consume bus bandwidth but do not gate the instruction: the
// CPU reads the table ahead of issue and posts updates asynchronously, so
// only their "access requests to the fully protected memory" (Sec. V-A)
// compete with the NPU's transfers.
func (t *treeless) versionFetch(ready, slotAddr uint64, write bool) uint64 {
	line := slotAddr &^ (dram.BlockBytes - 1)
	res := t.vcache.Access(line, write)
	if res.Writeback {
		t.traffic.AddWrite(stats.Version, dram.BlockBytes)
		t.cfg.Bus.TransferAt(ready, res.WritebackAddr, dram.BlockBytes)
		t.fpMetadata(ready, res.WritebackAddr, true)
	}
	if res.Hit {
		return ready
	}
	t.traffic.AddRead(stats.Version, dram.BlockBytes)
	at := t.cfg.Bus.ReadAt(ready, line, dram.BlockBytes)
	t.fpMetadata(at, line, false)
	return ready
}

// fpMetadata walks the fully-protected region's own counter tree for one
// version-table block access.
func (t *treeless) fpMetadata(ready, addr uint64, write bool) uint64 {
	lineIdx, _ := t.fpGeo.CounterIndex((addr - VTableBase) / dram.BlockBytes)
	ctrAddr := t.fpGeo.NodeAddr(0, lineIdx)
	res := t.fpCounter.Access(ctrAddr, write)
	if res.Writeback {
		t.traffic.AddWrite(stats.Counter, dram.BlockBytes)
		t.cfg.Bus.TransferAt(ready, res.WritebackAddr, dram.BlockBytes)
	}
	if res.Hit {
		return ready
	}
	t.traffic.AddRead(stats.Counter, dram.BlockBytes)
	at := t.cfg.Bus.ReadAt(ready, ctrAddr, dram.BlockBytes)
	idx := lineIdx
	for level := 1; level < t.fpGeo.Levels(); level++ {
		pIdx, _ := t.fpGeo.Parent(idx)
		pAddr := t.fpGeo.NodeAddr(level, pIdx)
		res := t.fpHash.Access(pAddr, false)
		if res.Writeback {
			t.traffic.AddWrite(stats.Hash, dram.BlockBytes)
			t.cfg.Bus.TransferAt(at, res.WritebackAddr, dram.BlockBytes)
		}
		if res.Hit {
			return at
		}
		t.traffic.AddRead(stats.Hash, dram.BlockBytes)
		at = t.cfg.Bus.ReadAt(at, pAddr, dram.BlockBytes)
		idx = pIdx
	}
	return at
}

func (t *treeless) VersionFetch(ready, slotAddr uint64, write bool) uint64 {
	return t.versionFetch(ready, slotAddr, write)
}

func (t *treeless) Flush(now uint64) {
	for _, victim := range t.mac.Flush() {
		t.traffic.AddWrite(stats.MAC, dram.BlockBytes)
		t.cfg.Bus.TransferAt(now, victim, dram.BlockBytes)
	}
	for _, victim := range t.vcache.Flush() {
		t.traffic.AddWrite(stats.Version, dram.BlockBytes)
		t.cfg.Bus.TransferAt(now, victim, dram.BlockBytes)
		t.fpMetadata(now, victim, true)
	}
	for _, victim := range t.fpCounter.Flush() {
		t.traffic.AddWrite(stats.Counter, dram.BlockBytes)
		t.cfg.Bus.TransferAt(now, victim, dram.BlockBytes)
	}
	for _, victim := range t.fpHash.Flush() {
		t.traffic.AddWrite(stats.Hash, dram.BlockBytes)
		t.cfg.Bus.TransferAt(now, victim, dram.BlockBytes)
	}
}

func (t *treeless) Traffic() *stats.Traffic         { return &t.traffic }
func (t *treeless) CounterStats() *stats.CacheStats { return &zeroCacheStats }
func (t *treeless) HashStats() *stats.CacheStats    { return &zeroCacheStats }
func (t *treeless) MACStats() *stats.CacheStats     { return t.mac.Stats() }

// VersionStats exposes the version-table cache statistics.
func (t *treeless) VersionStats() *stats.CacheStats { return t.vcache.Stats() }
