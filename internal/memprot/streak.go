package memprot

import (
	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/stats"
)

// This file serves whole metadata-line streaks through a dram.RunCursor:
// instead of splitting a run at every counter/MAC-line boundary and paying
// a full bus transfer plus a StreamRun prologue per line, the secure
// schemes classify each line (or chunk) up front and replay the reference
// path's exact charge sequence in closed form — data spans collapse to one
// aggregate charge, metadata charges append at the horizon, and the issue
// window stays live throughout. Every value the per-block model returns
// (boundary dataAt, covered-block dataAt, issue times, cache outcomes,
// traffic) is either reproduced exactly or replaced by a term proven to
// dominate it; anything the closed form cannot prove safe leaves the
// streak before touching state and is served by the retained reference
// code. DESIGN.md section 6d spells out the equivalence argument.

// streakMinBlocks gates streak entry: below it the per-line path's fixed
// costs are already small and BeginRun's window scan wouldn't pay for
// itself.
const streakMinBlocks = 24

// --- tree-less (TNPU): the whole run is one streak ---

// macLineCount returns how many MAC lines the run [addr, addr+n*64) covers.
// Consecutive covered MAC lines are 64B-adjacent for every slot size, so
// the count plus the first line address describe the whole streak. Block i
// maps to line (blockIdx+i)*slotBytes/64, a non-decreasing step function,
// so the count is the index gap between the run's last and first blocks.
func macLineCount(addr, slotBytes uint64, n int) int {
	blockIdx := addr / dram.BlockBytes
	first := blockIdx * slotBytes / dram.BlockBytes
	last := (blockIdx + uint64(n) - 1) * slotBytes / dram.BlockBytes
	return int(last-first) + 1
}

// readStreak is the treeless ReadRun fast path. The caller has primed
// t.cur via BeginRun; every charge of a treeless read appends (data at
// issue times, MAC writebacks and fetches at the current boundary's issue
// time), so no mid-streak exit can occur.
func (t *treeless) readStreak(ready, addr uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	cur := &t.cur
	lat := t.cfg.Bus.Latency()
	slot := t.cfg.MACSlotBytes
	nLines := macLineCount(addr, slot, n)
	t.macOut = t.mac.AccessStreak(macLineAddr(addr, slot), nLines, false, t.macOut[:0])
	t.mac.AddRunHits(uint64(n - nLines))
	t.traffic.AddRead(stats.Data, uint64(n)*dram.BlockBytes)

	r := ready
	pending := 0 // contiguous data blocks awaiting one span charge
	li := 0
	for i := 0; i < n; li++ {
		a := addr + uint64(i)*dram.BlockBytes
		m := macRunLen(a, slot)
		if m > n-i {
			m = n - i
		}
		res := t.macOut[li]
		if res.Hit && !res.Writeback {
			// Pure line: its MAC resolves at the issue time, dominated by the
			// data-arrival term, so the whole line is deferred data.
			pending += m
			i += m
			continue
		}
		// Charge order matches ReadBlock: boundary data, MAC writeback, MAC
		// fetch, covered data — so the pending span plus this boundary flush
		// first.
		lastFree, lastIssue, nr := cur.ChargeDataSpan(w, r, pending+1)
		r = nr
		macAt := lastIssue // hit-with-writeback: MAC available at issue time
		if res.Writeback {
			t.traffic.AddWrite(stats.MAC, dram.BlockBytes)
			cur.Charge(1)
		}
		if !res.Hit {
			t.traffic.AddRead(stats.MAC, dram.BlockBytes)
			macAt = cur.Charge(1) + lat
		}
		if d := max64(lastFree+lat+t.cfg.XTSCycles, macAt) + t.cfg.MACCycles; d > maxDataAt {
			maxDataAt = d
		}
		pending = m - 1
		i += m
	}
	if pending > 0 {
		lastFree, _, nr := cur.ChargeDataSpan(w, r, pending)
		r = nr
		if d := lastFree + lat + t.cfg.XTSCycles + t.cfg.MACCycles; d > maxDataAt {
			maxDataAt = d
		}
	}
	cur.Commit()
	return r, maxDataAt
}

// writeStreak is the treeless WriteRun fast path: MAC updates are
// write-validated (no fetch), so the only metadata charges are dirty MAC
// writebacks, each preceding its line's boundary data block.
func (t *treeless) writeStreak(ready, addr uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	cur := &t.cur
	slot := t.cfg.MACSlotBytes
	nLines := macLineCount(addr, slot, n)
	t.macOut = t.mac.AccessStreak(macLineAddr(addr, slot), nLines, true, t.macOut[:0])
	t.mac.AddRunHits(uint64(n - nLines))
	t.traffic.AddWrite(stats.Data, uint64(n)*dram.BlockBytes)

	r := ready
	pending := 0
	li := 0
	for i := 0; i < n; li++ {
		a := addr + uint64(i)*dram.BlockBytes
		m := macRunLen(a, slot)
		if m > n-i {
			m = n - i
		}
		if t.macOut[li].Writeback {
			if pending > 0 {
				_, _, r = cur.ChargeDataSpan(w, r, pending)
			}
			t.traffic.AddWrite(stats.MAC, dram.BlockBytes)
			cur.Charge(1)
			pending = m
		} else {
			pending += m
		}
		i += m
	}
	// Writes complete at their bus-clear time; the run's last charge is
	// always a data block, so its clear dominates every earlier one.
	lastFree, _, nr := cur.ChargeDataSpan(w, r, pending)
	cur.Commit()
	return nr, lastFree
}

// --- baseline (tree-based): chunk-wise streaks with reference fallback ---

// ctrSimple reports whether serving the counter access for the block at
// addr can stay inside the streak: every bus charge it triggers must
// append at the horizon and every cache mutation must be one the streak
// model predicts. Probes only — a false verdict leaves all state untouched
// and hands the chunk to the reference path. rLow is a lower bound on the
// boundary's issue time (MSHR gating only gets easier as it grows).
func (b *baseline) ctrSimple(addr, rLow uint64) bool {
	lineIdx, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	resident, dirtyVictim, victim := b.counter.PeekVictim(b.geo.NodeAddr(0, lineIdx))
	if resident {
		return true
	}
	if b.cfg.CounterPrefetch {
		// The next-line prefetch fill lands at walk completion — past the
		// horizon, where the reference opens an idle gap.
		return false
	}
	minFree := b.walkFree[0]
	for _, f := range b.walkFree[1:] {
		if f < minFree {
			minFree = f
		}
	}
	if minFree > rLow {
		// All MSHRs busy: the walk would start after the boundary issues.
		return false
	}
	if b.geo.Levels() > 1 {
		// The walk must end at a resident level-1 ancestor, and a dirty
		// victim's lazy version bump must hit its parent in the hash cache —
		// a miss there could allocate over the ancestor just probed.
		pIdx, _ := b.geo.Parent(lineIdx)
		if !b.hash.Probe(b.geo.NodeAddr(1, pIdx)) {
			return false
		}
		if dirtyVictim {
			vIdx := (victim - integrity.CounterBase) / integrity.NodeBytes
			vp, _ := b.geo.Parent(vIdx)
			if !b.hash.Probe(b.geo.NodeAddr(1, vp)) {
				return false
			}
		}
	}
	return true
}

// ctrStreakAccess is counterAccessRun inside a streak. The chunk was
// pre-classified by ctrSimple, so a miss's walk is exactly one counter
// fetch verified against a resident level-1 ancestor, on a free MSHR,
// with any dirty-victim writeback absorbed by a resident hash parent.
func (b *baseline) ctrStreakAccess(cur *dram.RunCursor, rB, addr, count uint64, write bool) uint64 {
	lineIdx, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	res := b.counter.Access(b.geo.NodeAddr(0, lineIdx), write)
	b.counter.AddRunHits(count - 1)
	if res.Writeback {
		b.traffic.AddWrite(stats.Counter, dram.BlockBytes)
		cur.Charge(1)
		b.touchParent(rB, res.WritebackAddr, 0) // hash-cache hit: no charge
	}
	if res.Hit {
		return rB
	}
	slot := 0
	for i, f := range b.walkFree {
		if f < b.walkFree[slot] {
			slot = i
		}
	}
	b.traffic.AddRead(stats.Counter, dram.BlockBytes)
	done := cur.Charge(1) + b.cfg.Bus.Latency()
	if b.geo.Levels() > 1 {
		pIdx, _ := b.geo.Parent(lineIdx)
		b.hash.Access(b.geo.NodeAddr(1, pIdx), false) // resident: hit, no writeback
	}
	b.walkFree[slot] = done
	return done
}

// macStreakAccess is macAccessRun inside a streak. Every MAC outcome is
// append-safe (writeback and fetch both charge at the boundary's issue
// time, and the MAC cache never cascades), so no pre-classification is
// needed.
func (b *baseline) macStreakAccess(cur *dram.RunCursor, rB, addr, count uint64, write bool) uint64 {
	res := b.mac.Access(macLineAddr(addr, b.cfg.MACSlotBytes), write)
	b.mac.AddRunHits(count - 1)
	if res.Writeback {
		b.traffic.AddWrite(stats.MAC, dram.BlockBytes)
		cur.Charge(1)
	}
	if res.Hit {
		return rB
	}
	b.traffic.AddRead(stats.MAC, dram.BlockBytes)
	at := cur.Charge(1)
	if write {
		return rB // RMW fill behind the store buffer
	}
	return at + b.cfg.Bus.Latency()
}
