package memprot

import (
	"tnpu/internal/cache"
	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/stats"
)

// This file serves whole metadata-line streaks through a dram.RunCursor:
// instead of splitting a run at every counter/MAC-line boundary and paying
// a full bus transfer plus a StreamRun prologue per line, the secure
// schemes classify each line (or chunk) up front and replay the reference
// path's exact charge sequence in closed form — data spans collapse to one
// aggregate charge, metadata charges append at the horizon, and the issue
// window stays live throughout. Every value the per-block model returns
// (boundary dataAt, covered-block dataAt, issue times, cache outcomes,
// traffic) is either reproduced exactly or replaced by a term proven to
// dominate it; anything the closed form cannot prove safe leaves the
// streak before touching state and is served by the retained reference
// code. DESIGN.md section 6d spells out the equivalence argument.

// streakMinBlocks gates streak entry: below it the per-line path's fixed
// costs are already small and BeginRun's window scan wouldn't pay for
// itself.
const streakMinBlocks = 24

// --- tree-less (TNPU): the whole run is one streak ---

// macLineCount returns how many MAC lines the run [addr, addr+n*64) covers.
// Consecutive covered MAC lines are 64B-adjacent for every slot size, so
// the count plus the first line address describe the whole streak. Block i
// maps to line (blockIdx+i)*slotBytes/64, a non-decreasing step function,
// so the count is the index gap between the run's last and first blocks.
// //tnpu:noalloc //tnpu:pure
func macLineCount(addr, slotBytes uint64, n int) int {
	blockIdx := addr / dram.BlockBytes
	first := blockIdx * slotBytes / dram.BlockBytes
	last := (blockIdx + uint64(n) - 1) * slotBytes / dram.BlockBytes
	return int(last-first) + 1
}

// readStreak is the treeless ReadRun fast path. The caller has primed
// t.cur via BeginSpanRun; every charge of a treeless read appends (data at
// issue times, MAC writebacks and fetches at the current boundary's issue
// time), so no mid-streak exit can occur. MAC-line outcomes come from a
// cache sweep when the range is uniformly resident or absent — a hot sweep
// collapses the whole run to one span charge, a cold sweep walks the
// capacity prefix per line and collapses the steady-state tail to one
// periodic charge — with the exact sequential walk as the mixed fallback.
// //tnpu:noalloc //tnpu:fastpath
func (t *treeless) readStreak(ready, addr uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	cur := &t.cur
	lat := t.cfg.Bus.Latency()
	slot := t.cfg.MACSlotBytes
	nLines := macLineCount(addr, slot, n)
	lineAddr := macLineAddr(addr, slot)
	kind := t.mac.BeginSweep(&t.sweep, lineAddr, nLines, false)
	mixed := kind == cache.SweepMixed
	if mixed {
		t.macOut = t.mac.AccessStreak(lineAddr, nLines, false, t.macOut[:0])
	}
	t.mac.AddRunHits(uint64(n - nLines))
	t.traffic.AddRead(stats.Data, uint64(n)*dram.BlockBytes)

	if kind == cache.SweepHot {
		// Every line hits clean: the entire run is one deferred data span,
		// and the final block's arrival dominates every per-line term.
		lastFree, _, nr := cur.Data(ready, n)
		t.sweep.CommitPrefix(nLines)
		cur.Commit()
		return nr, lastFree + lat + t.cfg.XTSCycles + t.cfg.MACCycles
	}

	// Cold runs: every line misses, so a line's whole charge pattern is
	// [span(mFull), writeback?, fetch] — determined by its victim's dirty
	// bit alone. Consecutive full-coverage lines of one writeback class
	// repeat that pattern verbatim and collapse through DataPeriodic.
	// Only meaningful when the slot size tiles the line (full lines then
	// all cover mFull blocks and start block-aligned); past the sweep's
	// uniform boundary the class is known to be clean without scanning.
	mFull, uniform := 0, nLines
	if kind == cache.SweepCold && dram.BlockBytes%slot == 0 {
		mFull = int(dram.BlockBytes / slot)
		uniform = t.sweep.UniformFrom()
	}

	r := ready
	pending := 0 // contiguous data blocks awaiting one span charge
	li := 0
	for i := 0; i < n; li++ {
		// pending == mFull-1 certifies the previous line was a full miss
		// (cold runs have no pure lines), so this line starts aligned and
		// each period's span is exactly mFull blocks.
		if mFull > 0 && pending == mFull-1 {
			if P := (n - i) / mFull; P >= 2 {
				wb := t.sweep.Outcome(li).Writeback
				p := 1
				for p < P {
					if !wb && li+p >= uniform {
						p = P // self-evicting tail: clean for the whole run
						break
					}
					if t.sweep.Outcome(li+p).Writeback != wb {
						break
					}
					p++
				}
				trail := 1
				if wb {
					trail = 2 // victim writeback precedes the fetch
				}
				if p >= 2 {
					if lastFree, _, nr, ok := cur.DataPeriodic(r, p, mFull, 0, trail); ok {
						t.traffic.AddRead(stats.MAC, uint64(p)*dram.BlockBytes)
						if wb {
							t.traffic.AddWrite(stats.MAC, uint64(p)*dram.BlockBytes)
						}
						// Arrival and MAC-fetch terms both grow per period,
						// so the final line dominates the stretch; the fetch
						// is each period's last charge, so the final macAt
						// is the horizon plus the bus latency.
						macAt := cur.Horizon() + lat
						if d := max64(lastFree+lat+t.cfg.XTSCycles, macAt) + t.cfg.MACCycles; d > maxDataAt {
							maxDataAt = d
						}
						r = nr
						i += p * mFull
						li += p - 1
						continue
					}
				}
			}
		}
		a := addr + uint64(i)*dram.BlockBytes
		m := macRunLen(a, slot)
		if m > n-i {
			m = n - i
		}
		var res cache.Result
		if mixed {
			res = t.macOut[li]
		} else {
			res = t.sweep.Outcome(li)
		}
		if res.Hit && !res.Writeback {
			// Pure line: its MAC resolves at the issue time, dominated by the
			// data-arrival term, so the whole line is deferred data.
			pending += m
			i += m
			continue
		}
		// Charge order matches ReadBlock: boundary data, MAC writeback, MAC
		// fetch, covered data — so the pending span plus this boundary flush
		// first.
		lastFree, lastIssue, nr := cur.Data(r, pending+1)
		r = nr
		macAt := lastIssue // hit-with-writeback: MAC available at issue time
		if res.Writeback {
			t.traffic.AddWrite(stats.MAC, dram.BlockBytes)
			cur.Meta(1)
		}
		if !res.Hit {
			t.traffic.AddRead(stats.MAC, dram.BlockBytes)
			macAt = cur.Meta(1) + lat
		}
		if d := max64(lastFree+lat+t.cfg.XTSCycles, macAt) + t.cfg.MACCycles; d > maxDataAt {
			maxDataAt = d
		}
		pending = m - 1
		i += m
	}
	if pending > 0 {
		lastFree, _, nr := cur.Data(r, pending)
		r = nr
		if d := lastFree + lat + t.cfg.XTSCycles + t.cfg.MACCycles; d > maxDataAt {
			maxDataAt = d
		}
	}
	if !mixed {
		t.sweep.CommitPrefix(nLines)
	}
	cur.Commit()
	return r, maxDataAt
}

// writeStreak is the treeless WriteRun fast path: MAC updates are
// write-validated (no fetch), so the only metadata charges are dirty MAC
// writebacks, each preceding its line's boundary data block.
// //tnpu:noalloc //tnpu:fastpath
func (t *treeless) writeStreak(ready, addr uint64, n int, w *dram.IssueWindow) (nextReady, maxDataAt uint64) {
	cur := &t.cur
	slot := t.cfg.MACSlotBytes
	nLines := macLineCount(addr, slot, n)
	lineAddr := macLineAddr(addr, slot)
	kind := t.mac.BeginSweep(&t.sweep, lineAddr, nLines, true)
	mixed := kind == cache.SweepMixed
	if mixed {
		t.macOut = t.mac.AccessStreak(lineAddr, nLines, true, t.macOut[:0])
	}
	t.mac.AddRunHits(uint64(n - nLines))
	t.traffic.AddWrite(stats.Data, uint64(n)*dram.BlockBytes)

	if kind == cache.SweepHot {
		// Every line hits (MAC updated in place): one deferred data span.
		lastFree, _, nr := cur.Data(ready, n)
		t.sweep.CommitPrefix(nLines)
		cur.Commit()
		return nr, lastFree
	}

	// Cold runs (see readStreak): every line misses, and on the write path
	// a miss charges only its victim's writeback — so a stretch of clean
	// misses folds into the pending span for free, and a stretch of dirty
	// misses repeats [span(mFull), writeback] and collapses through
	// DataPeriodic. Lines after the first are always block-aligned when
	// the slot size tiles the line.
	mFull, uniform := 0, nLines
	if kind == cache.SweepCold && dram.BlockBytes%slot == 0 {
		mFull = int(dram.BlockBytes / slot)
		uniform = t.sweep.UniformFrom()
	}

	r := ready
	pending := 0
	li := 0
	for i := 0; i < n; li++ {
		if mFull > 0 {
			if P := (n - i) / mFull; P >= 2 && (addr/dram.BlockBytes+uint64(i))%uint64(mFull) == 0 {
				wb := t.sweep.Outcome(li).Writeback
				p := 1
				for p < P {
					if wb && li+p >= uniform {
						p = P // self-evicting tail: dirty for the whole write run
						break
					}
					if t.sweep.Outcome(li+p).Writeback != wb {
						break
					}
					p++
				}
				if !wb {
					// Clean misses charge nothing on the write-validated
					// path: the whole stretch folds into the pending span.
					pending += p * mFull
					i += p * mFull
					li += p - 1
					continue
				}
				// pending == mFull makes each period's span exactly mFull
				// blocks, the shape DataPeriodic repeats.
				if p >= 2 && pending == mFull {
					if _, _, nr, ok := cur.DataPeriodic(r, p, mFull, 0, 1); ok {
						t.traffic.AddWrite(stats.MAC, uint64(p)*dram.BlockBytes)
						r = nr
						i += p * mFull
						li += p - 1
						continue
					}
				}
			}
		}
		a := addr + uint64(i)*dram.BlockBytes
		m := macRunLen(a, slot)
		if m > n-i {
			m = n - i
		}
		var res cache.Result
		if mixed {
			res = t.macOut[li]
		} else {
			res = t.sweep.Outcome(li)
		}
		if res.Writeback {
			if pending > 0 {
				_, _, r = cur.Data(r, pending)
			}
			t.traffic.AddWrite(stats.MAC, dram.BlockBytes)
			cur.Meta(1)
			pending = m
		} else {
			pending += m
		}
		i += m
	}
	// Writes complete at their bus-clear time; the run's last charge is
	// always a data block, so its clear dominates every earlier one.
	lastFree, _, nr := cur.Data(r, pending)
	if !mixed {
		t.sweep.CommitPrefix(nLines)
	}
	cur.Commit()
	return nr, lastFree
}

// --- baseline (tree-based): chunk-wise streaks with reference fallback ---

// ctrSimple reports whether serving the counter access for the block at
// addr can stay inside the streak: every bus charge it triggers must
// append at the horizon and every cache mutation must be one the streak
// model predicts. Probes only — a false verdict leaves all state untouched
// and hands the chunk to the reference path. rLow is a lower bound on the
// boundary's issue time (MSHR gating only gets easier as it grows). //tnpu:noalloc
func (b *baseline) ctrSimple(addr, rLow uint64) bool {
	lineIdx, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	resident, dirtyVictim, victim := b.counter.PeekVictim(b.geo.NodeAddr(0, lineIdx))
	if resident {
		return true
	}
	if b.cfg.CounterPrefetch {
		// The next-line prefetch fill lands at walk completion — past the
		// horizon, where the reference opens an idle gap.
		return false
	}
	minFree := b.walkFree[0]
	for _, f := range b.walkFree[1:] {
		if f < minFree {
			minFree = f
		}
	}
	if minFree > rLow {
		// All MSHRs busy: the walk would start after the boundary issues.
		return false
	}
	if b.geo.Levels() > 1 {
		// The walk must end at a resident level-1 ancestor, and a dirty
		// victim's lazy version bump must hit its parent in the hash cache —
		// a miss there could allocate over the ancestor just probed.
		pIdx, _ := b.geo.Parent(lineIdx)
		if !b.hash.Probe(b.geo.NodeAddr(1, pIdx)) {
			return false
		}
		if dirtyVictim {
			vIdx := (victim - integrity.CounterBase) / integrity.NodeBytes
			vp, _ := b.geo.Parent(vIdx)
			if !b.hash.Probe(b.geo.NodeAddr(1, vp)) {
				return false
			}
		}
	}
	return true
}

// ctrStreakAccess is counterAccessRun inside a streak. The chunk was
// pre-classified by ctrSimple, so a miss's walk is exactly one counter
// fetch verified against a resident level-1 ancestor, on a free MSHR,
// with any dirty-victim writeback absorbed by a resident hash parent. //tnpu:noalloc
func (b *baseline) ctrStreakAccess(cur *dram.SpanCursor, rB, addr, count uint64, write bool) uint64 {
	lineIdx, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	res := b.counter.Access(b.geo.NodeAddr(0, lineIdx), write)
	b.counter.AddRunHits(count - 1)
	if res.Writeback {
		b.traffic.AddWrite(stats.Counter, dram.BlockBytes)
		cur.Meta(1)
		b.touchParent(rB, res.WritebackAddr, 0) // hash-cache hit: no charge
	}
	if res.Hit {
		return rB
	}
	slot := 0
	for i, f := range b.walkFree {
		if f < b.walkFree[slot] {
			slot = i
		}
	}
	b.traffic.AddRead(stats.Counter, dram.BlockBytes)
	done := cur.Meta(1) + b.cfg.Bus.Latency()
	if b.geo.Levels() > 1 {
		pIdx, _ := b.geo.Parent(lineIdx)
		b.hash.Access(b.geo.NodeAddr(1, pIdx), false) // resident: hit, no writeback
	}
	b.walkFree[slot] = done
	return done
}

// macStreakAccess is macAccessRun inside a streak. Every MAC outcome is
// append-safe (writeback and fetch both charge at the boundary's issue
// time, and the MAC cache never cascades), so no pre-classification is
// needed. //tnpu:noalloc
func (b *baseline) macStreakAccess(cur *dram.SpanCursor, rB, addr, count uint64, write bool) uint64 {
	res := b.mac.Access(macLineAddr(addr, b.cfg.MACSlotBytes), write)
	b.mac.AddRunHits(count - 1)
	return b.macStreakCharge(cur, rB, count, res, write)
}

// beginMacSweep classifies the MAC lines a baseline streak will touch from
// block `from` (a MAC-line boundary) to the end of the run. When the range
// is uniformly resident or absent, every remaining boundary's outcome is
// served from the sweep in consumption order (macSweepAccess) and applied
// in bulk when the streak commits or exits; a mixed range reports false
// and the streak keeps the live macStreakAccess path. Nothing else touches
// the MAC cache while a baseline streak is active, so the sweep's
// untouched-between invariant holds. //tnpu:noalloc
func (b *baseline) beginMacSweep(addr uint64, from, n int, write bool) bool {
	if from >= n {
		return false
	}
	a := addr + uint64(from)*dram.BlockBytes
	lines := macLineCount(a, b.cfg.MACSlotBytes, n-from)
	return b.mac.BeginSweep(&b.sweep, macLineAddr(a, b.cfg.MACSlotBytes), lines, write) != cache.SweepMixed
}

// macSweepAccess is macStreakAccess with the line's outcome supplied by an
// active cache.Sweep instead of a live access: the sweep's CommitPrefix
// applies the lookup, allocation, promotion, and dirtying in bulk later,
// so only the charges and traffic happen here. //tnpu:noalloc
func (b *baseline) macSweepAccess(cur *dram.SpanCursor, rB, count uint64, res cache.Result, write bool) uint64 {
	b.mac.AddRunHits(count - 1)
	return b.macStreakCharge(cur, rB, count, res, write)
}

// macStreakCharge applies one MAC-line outcome's traffic and charges. //tnpu:noalloc
func (b *baseline) macStreakCharge(cur *dram.SpanCursor, rB, count uint64, res cache.Result, write bool) uint64 {
	if res.Writeback {
		b.traffic.AddWrite(stats.MAC, dram.BlockBytes)
		cur.Meta(1)
	}
	if res.Hit {
		return rB
	}
	b.traffic.AddRead(stats.MAC, dram.BlockBytes)
	at := cur.Meta(1)
	if write {
		return rB // RMW fill behind the store buffer
	}
	return at + b.cfg.Bus.Latency()
}

// chunkStretch scans forward from chunk start i (a MAC-aligned, fully
// covered chunk) for consecutive full chunks whose MAC sweep outcomes all
// share out0's (hit, writeback) class and whose counter-line boundaries are
// all resident — a stretch whose charge sequence repeats one period and
// collapses through DataPeriodic. Probes only: a result below 2 leaves all
// state untouched and the caller proceeds chunk-by-chunk. Requires the
// counter arity to be a whole number of chunks so every boundary lands on
// a chunk start. //tnpu:noalloc
func (b *baseline) chunkStretch(addr uint64, i, n, sweepLi, mFull int, out0 cache.Result, write bool) int {
	arity := b.cfg.TreeArity
	blockIdx := addr/dram.BlockBytes + uint64(i)
	limit := (n - i) / mFull
	// Chunk index (relative to the stretch) where the cold sweep turns into
	// pure self-evicting turnover; beyond it outcomes need no scanning.
	uniform := limit
	if b.sweep.Kind() == cache.SweepCold {
		if u := b.sweep.UniformFrom() - sweepLi; u < limit {
			if u < 0 {
				u = 0
			}
			uniform = u
		}
	}
	p := 0
	for p < uniform { // varied prefix: check every chunk's outcome
		bi := blockIdx + uint64(p*mFull)
		if bi%arity == 0 && !b.ctrResident(bi) {
			return p
		}
		if o := b.sweep.Outcome(sweepLi + p); o.Hit != out0.Hit || o.Writeback != out0.Writeback {
			return p
		}
		p++
	}
	if out0.Hit || out0.Writeback != write {
		// The steady-state class is a self-evicting miss, dirty exactly when
		// the sweep writes; a different class ends at the boundary.
		return p
	}
	for p < limit { // uniform tail: only counter boundaries need probing
		bi := blockIdx + uint64(p*mFull)
		if bi%arity == 0 && !b.ctrResident(bi) {
			return p
		}
		hop := int(arity-bi%arity) / mFull // chunks to the next counter boundary
		if p+hop > limit {
			return limit
		}
		p += hop
	}
	return p
}

// ctrResident probes (without touching) the level-0 counter line covering
// block bi. //tnpu:noalloc
func (b *baseline) ctrResident(bi uint64) bool {
	lineIdx, _ := b.geo.CounterIndex(bi)
	return b.counter.Probe(b.geo.NodeAddr(0, lineIdx))
}

// ctrStretchEntryOK reports whether a chunk-stretch may begin at this
// chunk. A run that starts mid-counter-line (misaligned addr, so only the
// run's first chunk can be both isCtr and unaligned) has a partial first
// line that chunkStretch's aligned-boundary probes never see: it must be
// resident for the stretch's charge-free counter model to hold — a miss
// keeps the chunk on the live path, which prices the walk. //tnpu:noalloc
func (b *baseline) ctrStretchEntryOK(blockIdx uint64, isCtr bool) bool {
	if !isCtr || blockIdx%b.cfg.TreeArity == 0 {
		return true
	}
	return b.ctrResident(blockIdx)
}

// ctrPartialHit charges the run-initial partial counter line a committed
// stretch covers (ctrStretchEntryOK proved it resident): the same lookup
// accounting the plain streak-hit chunk applies — one access serving
// ctrCount blocks. //tnpu:noalloc
func (b *baseline) ctrPartialHit(blockIdx, ctrCount uint64, write bool) {
	lineIdx, _ := b.geo.CounterIndex(blockIdx)
	b.counter.Access(b.geo.NodeAddr(0, lineIdx), write)
	b.counter.AddRunHits(ctrCount - 1)
}

// ctrStretchHits replays the counter accesses a collapsed stretch covers:
// chunkStretch proved every boundary resident, so each is a plain hit
// serving min(arity, n-ci) blocks, charge-free on the bus. //tnpu:noalloc
func (b *baseline) ctrStretchHits(addr uint64, i, p, mFull, n int, write bool) {
	arity := b.cfg.TreeArity
	blockIdx := addr/dram.BlockBytes + uint64(i)
	for q := 0; q < p; q++ {
		bi := blockIdx + uint64(q*mFull)
		if bi%arity != 0 {
			continue
		}
		lineIdx, _ := b.geo.CounterIndex(bi)
		b.counter.Access(b.geo.NodeAddr(0, lineIdx), write)
		b.counter.AddRunHits(uint64(minInt(int(arity), n-(i+q*mFull))) - 1)
	}
}

// minorStretchBump applies the per-block minor-counter increments of a
// collapsed write stretch; overflowPending already certified no wraps.
func (b *baseline) minorStretchBump(addr uint64, i, blocks int) {
	blockIdx := addr/dram.BlockBytes + uint64(i)
	for k := 0; k < blocks; {
		lineIdx, slot := b.geo.CounterIndex(blockIdx + uint64(k))
		minorLine := b.minors[lineIdx]
		if minorLine == nil {
			// First touch of this counter line; every later run reuses it,
			// so steady state stays at 0 allocs/op.
			minorLine = new([integrity.Arity]uint8) //tnpu:allocok
			b.minors[lineIdx] = minorLine
		}
		b.minorMark(lineIdx)
		cnt := minInt(blocks-k, int(b.cfg.TreeArity)-slot)
		b.minorDigAdd(lineIdx, slot, cnt)
		for j := 0; j < cnt; j++ {
			minorLine[slot+j]++
		}
		k += cnt
	}
}
