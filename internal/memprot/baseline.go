package memprot

import (
	"tnpu/internal/cache"
	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/stats"
)

// baseline models the conventional tree-based protection: counter-mode
// encryption whose per-block counters are verified by the SC-64 counter
// tree (Fig. 1). A counter-cache miss triggers a serialized walk up the
// tree — fetching each missing node from DRAM — until a cached (hence
// verified) node or the on-chip root is reached. This walk is the
// performance bottleneck the paper measures in Fig. 4/5.
type baseline struct {
	cfg     Config
	geo     integrity.Geometry //tnpu:canonskip derived from cfg at construction, immutable
	counter *cache.Cache
	hash    *cache.Cache
	mac     *cache.Cache
	traffic stats.Traffic
	// walkFree holds the completion times of the engine's in-flight tree
	// walks (one per MSHR). A counter miss claims the earliest-free slot;
	// when every slot is busy the walk — and the block depending on it —
	// queues behind the oldest. The MSHRs are shared by all NPUs
	// (Sec. V-C: one security engine), which is what makes baseline
	// metadata handling degrade as NPU count grows.
	walkFree []uint64

	// minors tracks the SC-64 7-bit minor counters of touched lines so
	// minor overflow triggers the split-counter maintenance cost: the
	// major bumps and all 64 covered blocks are re-encrypted under fresh
	// counters (Yan et al.) — a 64-block read+write burst.
	minors    map[uint64]*[integrity.Arity]uint8
	Overflows uint64

	// Layer-memoization bookkeeping (canon.go): minorsDig is the 128-bit
	// wrapping-sum digest standing in for the minors map inside layer
	// canons, and touched/touchedLi journal the counter lines mutated in
	// the current layer for O(touched) post-state deltas. All three are
	// maintained only once BeginLayer arms memoOn, so un-memoized runs pay
	// a predicted-not-taken branch per counter-line touch and nothing more.
	memoOn    bool //tnpu:canonskip memo-harness arming flag, managed by BeginLayer outside replay
	minorsDig [2]uint64
	touched   map[uint64]struct{} //tnpu:canonskip per-layer journal index, reset by BeginLayer
	touchedLi []uint64            //tnpu:canonskip per-layer journal consumed by AppendDelta, reset by BeginLayer

	// cur is the streak charge cursor and sweep the MAC-line range
	// resolver (see streak.go), engine-owned so the batched hot path
	// allocates nothing.
	cur   dram.SpanCursor //tnpu:canonskip per-call scratch cursor, no state across calls
	sweep cache.Sweep     //tnpu:canonskip per-call scratch resolver, no state across calls
}

func newBaseline(cfg Config) *baseline {
	return &baseline{
		cfg:      cfg,
		geo:      integrity.NewGeometryWithArity(cfg.DRAMBytes, cfg.TreeArity),
		counter:  cache.New("counter", cfg.CounterCacheBytes, dram.BlockBytes, cfg.CacheWays),
		hash:     cache.New("hash", cfg.HashCacheBytes, dram.BlockBytes, cfg.CacheWays),
		mac:      cache.New("mac", cfg.MACCacheBytes, dram.BlockBytes, cfg.CacheWays),
		walkFree: make([]uint64, cfg.WalkMSHRs),
		minors:   make(map[uint64]*[integrity.Arity]uint8),
	}
}

// bumpMinor advances a block's 7-bit minor counter; a wrap re-encrypts
// the whole covered 4KB region (reads + writes of 64 data blocks plus the
// refreshed counter line), charged as a bus burst.
func (b *baseline) bumpMinor(ready, addr uint64) {
	lineIdx, slot := b.geo.CounterIndex(addr / dram.BlockBytes)
	line := b.minors[lineIdx]
	if line == nil {
		line = new([integrity.Arity]uint8)
		b.minors[lineIdx] = line
	}
	b.minorMark(lineIdx)
	b.minorDigAdd(lineIdx, slot, 1)
	line[slot]++
	if line[slot] < 1<<7 {
		return
	}
	b.minorDigReset(lineIdx, line)
	*line = [integrity.Arity]uint8{}
	b.Overflows++
	burst := uint64(integrity.Arity) * 2 * dram.BlockBytes
	b.traffic.AddRead(stats.Data, burst/2)
	b.traffic.AddWrite(stats.Data, burst/2)
	b.traffic.AddWrite(stats.Counter, dram.BlockBytes)
	b.cfg.Bus.TransferAt(ready, addr, burst+dram.BlockBytes)
}

func (b *baseline) Scheme() Scheme { return Baseline }

// macLineAddr returns the 64B-aligned MAC-region line covering blockAddr,
// with slotBytes of MAC per 64B data block.
func macLineAddr(addr, slotBytes uint64) uint64 {
	return (integrity.MACBase + (addr/dram.BlockBytes)*slotBytes) &^ (dram.BlockBytes - 1)
}

// macAccess simulates the MAC cache for one data block. Reads need the MAC
// line resident (fetch on miss). Write-miss handling differs by engine:
// the tree-less DMA writes whole tensor tiles under one version, so it
// write-combines complete MAC lines and allocates without fetching
// (writeValidate). The baseline MEE is block-oriented — it has no tile
// semantics — so a write miss must read-modify-write the MAC line. This
// is part of the traffic gap between the schemes (Fig. 15). Returns when
// the MAC is available for a read.
func macAccess(c *cache.Cache, cfg *Config, traffic *stats.Traffic, ready, addr uint64, write, writeValidate bool) uint64 {
	line := macLineAddr(addr, cfg.MACSlotBytes)
	res := c.Access(line, write)
	if res.Writeback {
		traffic.AddWrite(stats.MAC, dram.BlockBytes)
		cfg.Bus.TransferAt(ready, res.WritebackAddr, dram.BlockBytes)
	}
	if res.Hit || (write && writeValidate) {
		return ready
	}
	traffic.AddRead(stats.MAC, dram.BlockBytes)
	if write {
		// RMW fill happens behind the store buffer.
		cfg.Bus.TransferAt(ready, line, dram.BlockBytes)
		return ready
	}
	return cfg.Bus.ReadAt(ready, line, dram.BlockBytes)
}

// counterLineAddr returns the level-0 node address covering a data block.
func (b *baseline) counterLineAddr(addr uint64) uint64 {
	lineIdx, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	return b.geo.NodeAddr(0, lineIdx)
}

// evictCounter handles a dirty counter-line writeback: the line goes to
// DRAM and its parent tree node must absorb the version bump (lazy,
// Bonsai-style: the parent is dirtied in the hash cache; deeper
// propagation happens when that line is in turn evicted).
func (b *baseline) evictCounter(now, victimAddr uint64) {
	b.traffic.AddWrite(stats.Counter, dram.BlockBytes)
	b.cfg.Bus.TransferAt(now, victimAddr, dram.BlockBytes)
	b.touchParent(now, victimAddr, 0)
}

// touchParent dirties the parent node of the metadata line at (level,
// addr) in the hash cache, cascading evicted dirty hash lines upward.
func (b *baseline) touchParent(now, childAddr uint64, childLevel int) {
	if childLevel+1 >= b.geo.Levels() {
		return // parent is the on-chip root
	}
	childIdx := (childAddr - integrity.CounterBase - uint64(childLevel)*integrity.LevelStride) / integrity.NodeBytes
	pIdx, _ := b.geo.Parent(childIdx)
	pAddr := b.geo.NodeAddr(childLevel+1, pIdx)
	res := b.hash.Access(pAddr, true)
	if res.Writeback {
		b.traffic.AddWrite(stats.Hash, dram.BlockBytes)
		b.cfg.Bus.TransferAt(now, res.WritebackAddr, dram.BlockBytes)
		b.touchParent(now, res.WritebackAddr, b.levelOf(res.WritebackAddr))
	}
}

// levelOf recovers a metadata node's tree level from its synthetic address.
func (b *baseline) levelOf(nodeAddr uint64) int {
	return int((nodeAddr - integrity.CounterBase) / integrity.LevelStride)
}

// counterAccess simulates the counter fetch for one data block. On a miss
// the counter line is fetched and verified by walking up the tree: each
// level's node is looked up in the hash cache; a miss fetches it from DRAM
// (serialized — the child cannot be verified before the parent arrives)
// and the walk continues until a hit or the root. Returns when a verified
// counter value is available.
func (b *baseline) counterAccess(ready, addr uint64, write bool) uint64 {
	lineIdx, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	res := b.counter.Access(b.geo.NodeAddr(0, lineIdx), write)
	if res.Writeback {
		b.evictCounter(ready, res.WritebackAddr)
	}
	if res.Hit {
		return ready
	}
	// Claim a walk MSHR: the walk starts once a slot frees up, so a burst
	// of misses beyond the MSHR count serializes.
	slot := 0
	for i, f := range b.walkFree {
		if f < b.walkFree[slot] {
			slot = i
		}
	}
	if b.walkFree[slot] > ready {
		ready = b.walkFree[slot]
	}
	done := b.walk(ready, lineIdx)
	b.walkFree[slot] = done
	if b.cfg.CounterPrefetch {
		b.prefetchCounter(done, lineIdx+1)
	}
	return done
}

// prefetchCounter pulls the next counter line into the cache off the
// critical path (its verification rides the same ancestors the demand
// walk just warmed). The fill goes through Cache.Prefetch, which counts
// it under Prefetches rather than Lookups/Misses, so the Figure 5 demand
// miss rate is identical with and without the ablation.
func (b *baseline) prefetchCounter(now, lineIdx uint64) {
	if lineIdx >= b.geo.NodesAt(0) {
		return
	}
	res := b.counter.Prefetch(b.geo.NodeAddr(0, lineIdx))
	if res.Hit {
		return // already resident: nothing to fetch
	}
	if res.Writeback {
		b.evictCounter(now, res.WritebackAddr)
	}
	b.traffic.AddRead(stats.Counter, dram.BlockBytes)
	b.cfg.Bus.TransferAt(now, b.geo.NodeAddr(0, lineIdx), dram.BlockBytes)
}

// walk fetches the counter line and verifies it against each ancestor
// until a cached (verified) node or the on-chip root, serialized: a child
// cannot be checked before its parent arrives.
func (b *baseline) walk(ready uint64, lineIdx uint64) uint64 {
	b.traffic.AddRead(stats.Counter, dram.BlockBytes)
	t := b.cfg.Bus.ReadAt(ready, b.geo.NodeAddr(0, lineIdx), dram.BlockBytes)
	idx := lineIdx
	for level := 1; level < b.geo.Levels(); level++ {
		pIdx, _ := b.geo.Parent(idx)
		pAddr := b.geo.NodeAddr(level, pIdx)
		res := b.hash.Access(pAddr, false)
		if res.Writeback {
			b.traffic.AddWrite(stats.Hash, dram.BlockBytes)
			b.cfg.Bus.TransferAt(t, res.WritebackAddr, dram.BlockBytes)
			b.touchParent(t, res.WritebackAddr, b.levelOf(res.WritebackAddr))
		}
		if res.Hit {
			return t // ancestor verified; chain trusted from here
		}
		b.traffic.AddRead(stats.Hash, dram.BlockBytes)
		t = b.cfg.Bus.ReadAt(t, pAddr, dram.BlockBytes)
		idx = pIdx
	}
	return t // verified against the on-chip root
}

func (b *baseline) ReadBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	// Data fetch, counter fetch, and MAC fetch proceed in parallel; the
	// decrypted data is usable once all three have resolved, plus the
	// OTP XOR and MAC-check pipeline latency. Crucially, the memory
	// encryption engine handles counter misses IN ORDER: the recursive
	// tree verification blocks the engine pipeline, so subsequent blocks
	// cannot issue until the walk completes — the counter-cache-miss
	// stall the paper identifies as the key bottleneck (Sec. III-B).
	b.traffic.AddRead(stats.Data, dram.BlockBytes)
	busFree = b.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	dataFetched := busFree + b.cfg.Bus.Latency()

	counterAt := b.counterAccess(ready, addr, false)
	otpAt := counterAt + b.cfg.OTPCycles
	macAt := macAccess(b.mac, &b.cfg, &b.traffic, ready, addr, false, false)

	dataAt = max64(dataFetched, otpAt)
	dataAt = max64(dataAt+b.cfg.XORCycles, macAt) + b.cfg.MACCycles
	return busFree, dataAt
}

func (b *baseline) WriteBlock(ready, addr, version uint64) (busFree, dataAt uint64) {
	// The counter increments (read-modify-write in the counter cache; a
	// miss implies a verified fetch first, blocking the engine as on the
	// read path), the block is re-encrypted with the new counter (behind
	// the write buffer), and the MAC slot is regenerated.
	counterAt := b.counterAccess(ready, addr, true)
	b.bumpMinor(ready, addr)
	macAccess(b.mac, &b.cfg, &b.traffic, ready, addr, true, false)
	b.traffic.AddWrite(stats.Data, dram.BlockBytes)
	busFree = b.cfg.Bus.TransferAt(ready, addr, dram.BlockBytes)
	return busFree, max64(busFree, counterAt)
}

func (b *baseline) VersionFetch(ready, slotAddr uint64, write bool) uint64 { return ready }

func (b *baseline) Flush(now uint64) {
	for _, victim := range b.counter.Flush() {
		b.evictCounter(now, victim)
	}
	for _, victim := range b.hash.Flush() {
		b.traffic.AddWrite(stats.Hash, dram.BlockBytes)
		b.cfg.Bus.TransferAt(now, victim, dram.BlockBytes)
	}
	for _, victim := range b.mac.Flush() {
		b.traffic.AddWrite(stats.MAC, dram.BlockBytes)
		b.cfg.Bus.TransferAt(now, victim, dram.BlockBytes)
	}
}

func (b *baseline) Traffic() *stats.Traffic         { return &b.traffic }
func (b *baseline) CounterStats() *stats.CacheStats { return b.counter.Stats() }
func (b *baseline) HashStats() *stats.CacheStats    { return b.hash.Stats() }
func (b *baseline) MACStats() *stats.CacheStats     { return b.mac.Stats() }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
