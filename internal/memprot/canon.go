package memprot

import (
	"fmt"

	"tnpu/internal/canon"
	"tnpu/internal/integrity"
)

// This file implements layer-signature canonicalization for the four
// protection engines (DESIGN.md §6e). A canon blob captures everything that
// influences the engine's future behaviour — cache tags/dirty bits/LRU
// order, bus horizons and gaps, tree-walk MSHR times, minor-counter
// contents — relative to a time base, so a layer executed once can be
// replayed in O(1) whenever the same (program layer, engine state) pair
// recurs. Monotone accumulators (traffic, cache statistics, overflow
// counts, bus byte/cycle totals) are kept out of the behavioural canon and
// transported as wrapping deltas instead.

// LayerState is implemented by engines that support layer memoization.
// Blob layouts are private to each engine; callers only concatenate and
// compare them. All times inside canon blobs are encoded relative to the
// caller's base with wrapping subtraction (the models are time-shift
// invariant).
type LayerState interface {
	// BeginLayer marks a layer boundary: it arms memoization bookkeeping
	// (which must happen before the engine has served any traffic) and
	// resets the per-layer delta journal.
	BeginLayer()
	// AppendCanon appends the engine's behavioural state to dst.
	AppendCanon(dst []byte, base uint64) []byte
	// RestoreCanon rebuilds behavioural state from an AppendCanon blob,
	// returning the remaining bytes. Configuration must match the blob's.
	RestoreCanon(src []byte, base uint64) []byte
	// AppendAccum appends the engine's monotone accumulators.
	AppendAccum(dst []byte) []byte
	// AddAccum adds an accumulator delta blob (the wrapping difference of
	// two AppendAccum snapshots) into the engine's counters.
	AddAccum(src []byte) []byte
	// AppendDelta appends the layer's journaled state delta — content an
	// O(full-state) RestoreCanon would be too slow to carry (the baseline
	// minors map). Engines without such state append nothing.
	AppendDelta(dst []byte) []byte
	// ApplyDelta applies an AppendDelta blob recorded at the end of a
	// layer whose pre-state matched this engine's.
	ApplyDelta(src []byte) []byte
}

// sig returns an FNV-1a digest over every scalar protection parameter.
// Layer canons start with it so memo entries recorded under one
// configuration can never match an engine built from another — sweeps
// share compiled programs across configurations, making this the only
// thing separating their layer-0 keys.
func (c *Config) sig() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(c.DRAMBytes)
	mix(c.FullyProtectedBytes)
	mix(uint64(c.CounterCacheBytes))
	mix(uint64(c.HashCacheBytes))
	mix(uint64(c.MACCacheBytes))
	mix(uint64(c.CacheWays))
	mix(c.OTPCycles)
	mix(c.XORCycles)
	mix(c.XTSCycles)
	mix(c.MACCycles)
	mix(c.TreeArity)
	mix(uint64(c.WalkMSHRs))
	if c.CounterPrefetch {
		mix(1)
	} else {
		mix(0)
	}
	mix(c.MACSlotBytes)
	return h
}

// checkHeader consumes and verifies the scheme/config prefix every engine
// canon starts with.
func checkHeader(src []byte, scheme Scheme, sig uint64) []byte {
	s, src := canon.U64(src)
	g, src := canon.U64(src)
	if Scheme(s) != scheme || g != sig {
		panic(fmt.Sprintf("memprot: canon for scheme %v (cfg %#x) restored into %v (cfg %#x)",
			Scheme(s), g, scheme, sig))
	}
	return src
}

// --- unsecure ---

func (u *unsecure) BeginLayer() {}

func (u *unsecure) AppendCanon(dst []byte, base uint64) []byte {
	dst = canon.AppendU64(dst, uint64(Unsecure))
	dst = canon.AppendU64(dst, u.cfg.sig())
	return u.cfg.Bus.AppendCanon(dst, base)
}

func (u *unsecure) RestoreCanon(src []byte, base uint64) []byte {
	src = checkHeader(src, Unsecure, u.cfg.sig())
	return u.cfg.Bus.RestoreCanon(src, base)
}

func (u *unsecure) AppendAccum(dst []byte) []byte {
	dst = u.traffic.AppendAccum(dst)
	return u.cfg.Bus.AppendAccum(dst)
}

func (u *unsecure) AddAccum(src []byte) []byte {
	src = u.traffic.AddAccum(src)
	return u.cfg.Bus.AddAccum(src)
}

func (u *unsecure) AppendDelta(dst []byte) []byte { return dst }
func (u *unsecure) ApplyDelta(src []byte) []byte  { return src }

// --- encryptOnly ---

func (e *encryptOnly) BeginLayer() {}

func (e *encryptOnly) AppendCanon(dst []byte, base uint64) []byte {
	dst = canon.AppendU64(dst, uint64(EncryptOnly))
	dst = canon.AppendU64(dst, e.cfg.sig())
	return e.cfg.Bus.AppendCanon(dst, base)
}

func (e *encryptOnly) RestoreCanon(src []byte, base uint64) []byte {
	src = checkHeader(src, EncryptOnly, e.cfg.sig())
	return e.cfg.Bus.RestoreCanon(src, base)
}

func (e *encryptOnly) AppendAccum(dst []byte) []byte {
	dst = e.traffic.AppendAccum(dst)
	return e.cfg.Bus.AppendAccum(dst)
}

func (e *encryptOnly) AddAccum(src []byte) []byte {
	src = e.traffic.AddAccum(src)
	return e.cfg.Bus.AddAccum(src)
}

func (e *encryptOnly) AppendDelta(dst []byte) []byte { return dst }
func (e *encryptOnly) ApplyDelta(src []byte) []byte  { return src }

// --- treeless ---

func (t *treeless) BeginLayer() {}

func (t *treeless) AppendCanon(dst []byte, base uint64) []byte {
	dst = canon.AppendU64(dst, uint64(TreeLess))
	dst = canon.AppendU64(dst, t.cfg.sig())
	dst = t.mac.AppendCanon(dst)
	dst = t.vcache.AppendCanon(dst)
	dst = t.fpCounter.AppendCanon(dst)
	dst = t.fpHash.AppendCanon(dst)
	return t.cfg.Bus.AppendCanon(dst, base)
}

func (t *treeless) RestoreCanon(src []byte, base uint64) []byte {
	src = checkHeader(src, TreeLess, t.cfg.sig())
	src = t.mac.RestoreCanon(src)
	src = t.vcache.RestoreCanon(src)
	src = t.fpCounter.RestoreCanon(src)
	src = t.fpHash.RestoreCanon(src)
	return t.cfg.Bus.RestoreCanon(src, base)
}

func (t *treeless) AppendAccum(dst []byte) []byte {
	dst = t.traffic.AppendAccum(dst)
	dst = t.mac.Stats().AppendAccum(dst)
	dst = t.vcache.Stats().AppendAccum(dst)
	dst = t.fpCounter.Stats().AppendAccum(dst)
	dst = t.fpHash.Stats().AppendAccum(dst)
	return t.cfg.Bus.AppendAccum(dst)
}

func (t *treeless) AddAccum(src []byte) []byte {
	src = t.traffic.AddAccum(src)
	src = t.mac.Stats().AddAccum(src)
	src = t.vcache.Stats().AddAccum(src)
	src = t.fpCounter.Stats().AddAccum(src)
	src = t.fpHash.Stats().AddAccum(src)
	return t.cfg.Bus.AddAccum(src)
}

func (t *treeless) AppendDelta(dst []byte) []byte { return dst }
func (t *treeless) ApplyDelta(src []byte) []byte  { return src }

// --- baseline ---

// The baseline's minors map is the one piece of behavioural state too
// large to serialize at every layer boundary (thousands of touched counter
// lines on large models). It is represented in the canon by a 128-bit
// wrapping-sum digest maintained incrementally on every count transition,
//
//	dig = sum over nonzero (line, slot) of count * minorHash(line, slot),
//
// so an all-zero line contributes nothing — exactly matching its
// behavioural equivalence to an absent line — and a single bump is one
// hash-and-add. Restoring minors content on a memo hit uses the per-layer
// journal of touched lines (AppendDelta/ApplyDelta) instead.

// minorHash derives the two digest words contributed by one increment of
// the minor counter at (lineIdx, slot). splitmix64 finalizer plus an
// independent second mix; collisions require a nonzero integer combination
// of these pairs to vanish mod 2^128.
func minorHash(lineIdx uint64, slot int) (h1, h2 uint64) {
	z := lineIdx*integrity.Arity + uint64(slot) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h2 = (z ^ 0x6a09e667f3bcc909) * 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	return z, h2
}

// minorMark journals lineIdx as touched this layer. Called wherever a
// minors line pointer is fetched for mutation; no-op unless memoized.
func (b *baseline) minorMark(lineIdx uint64) {
	if !b.memoOn {
		return
	}
	if _, ok := b.touched[lineIdx]; !ok {
		b.touched[lineIdx] = struct{}{}
		b.touchedLi = append(b.touchedLi, lineIdx)
	}
}

// minorDigAdd folds one increment of each of cnt consecutive slots into
// the digest; no-op unless memoized.
func (b *baseline) minorDigAdd(lineIdx uint64, slot, cnt int) {
	if !b.memoOn {
		return
	}
	for k := 0; k < cnt; k++ {
		h1, h2 := minorHash(lineIdx, slot+k)
		b.minorsDig[0] += h1
		b.minorsDig[1] += h2
	}
}

// minorDigReset removes a wrapping line's entire contents from the digest
// just before the line is zeroed.
func (b *baseline) minorDigReset(lineIdx uint64, line *[integrity.Arity]uint8) {
	if !b.memoOn {
		return
	}
	for s, c := range line {
		if c == 0 {
			continue
		}
		h1, h2 := minorHash(lineIdx, s)
		b.minorsDig[0] -= uint64(c) * h1
		b.minorsDig[1] -= uint64(c) * h2
	}
}

// BeginLayer arms minors digest/journal maintenance and resets the layer
// journal. The digest starts from the empty map, so arming an engine that
// has already served writes would leave it permanently wrong — hence the
// freshness check.
func (b *baseline) BeginLayer() {
	if !b.memoOn {
		if len(b.minors) != 0 {
			panic("memprot: layer memoization armed on an engine that already served writes")
		}
		b.memoOn = true
		b.touched = make(map[uint64]struct{})
	}
	for _, li := range b.touchedLi {
		delete(b.touched, li)
	}
	b.touchedLi = b.touchedLi[:0]
}

func (b *baseline) AppendCanon(dst []byte, base uint64) []byte {
	dst = canon.AppendU64(dst, uint64(Baseline))
	dst = canon.AppendU64(dst, b.cfg.sig())
	dst = b.counter.AppendCanon(dst)
	dst = b.hash.AppendCanon(dst)
	dst = b.mac.AppendCanon(dst)
	// The engine always claims the earliest-free walk MSHR, so the slots
	// are a multiset: canonicalize sorted (the in-place reorder is
	// behaviourally invisible for the same reason).
	sortU64(b.walkFree)
	dst = canon.AppendU64(dst, uint64(len(b.walkFree)))
	for _, v := range b.walkFree {
		dst = canon.AppendU64(dst, v-base)
	}
	dst = canon.AppendU64(dst, b.minorsDig[0])
	dst = canon.AppendU64(dst, b.minorsDig[1])
	return b.cfg.Bus.AppendCanon(dst, base)
}

func (b *baseline) RestoreCanon(src []byte, base uint64) []byte {
	src = checkHeader(src, Baseline, b.cfg.sig())
	src = b.counter.RestoreCanon(src)
	src = b.hash.RestoreCanon(src)
	src = b.mac.RestoreCanon(src)
	var n uint64
	n, src = canon.U64(src)
	if int(n) != len(b.walkFree) {
		panic(fmt.Sprintf("memprot: canon has %d walk MSHRs, engine has %d", n, len(b.walkFree)))
	}
	for i := range b.walkFree {
		var v uint64
		v, src = canon.U64(src)
		b.walkFree[i] = v + base
	}
	b.minorsDig[0], src = canon.U64(src)
	b.minorsDig[1], src = canon.U64(src)
	return b.cfg.Bus.RestoreCanon(src, base)
}

func (b *baseline) AppendAccum(dst []byte) []byte {
	dst = b.traffic.AppendAccum(dst)
	dst = b.counter.Stats().AppendAccum(dst)
	dst = b.hash.Stats().AppendAccum(dst)
	dst = b.mac.Stats().AppendAccum(dst)
	dst = canon.AppendU64(dst, b.Overflows)
	return b.cfg.Bus.AppendAccum(dst)
}

func (b *baseline) AddAccum(src []byte) []byte {
	src = b.traffic.AddAccum(src)
	src = b.counter.Stats().AddAccum(src)
	src = b.hash.Stats().AddAccum(src)
	src = b.mac.Stats().AddAccum(src)
	var v uint64
	v, src = canon.U64(src)
	b.Overflows += v
	return b.cfg.Bus.AddAccum(src)
}

// AppendDelta records the layer's minors changes: the post digest and the
// full contents of every counter line the journal saw touched, sorted for
// determinism.
func (b *baseline) AppendDelta(dst []byte) []byte {
	dst = canon.AppendU64(dst, b.minorsDig[0])
	dst = canon.AppendU64(dst, b.minorsDig[1])
	sortU64(b.touchedLi)
	dst = canon.AppendU64(dst, uint64(len(b.touchedLi)))
	for _, li := range b.touchedLi {
		dst = canon.AppendU64(dst, li)
		line := b.minors[li]
		for j := 0; j < integrity.Arity; j += 8 {
			var w uint64
			for k := 7; k >= 0; k-- {
				w = w<<8 | uint64(line[j+k])
			}
			dst = canon.AppendU64(dst, w)
		}
	}
	return dst
}

// ApplyDelta installs a recorded layer's minors changes. Valid only when
// the engine's pre-layer state matched the recording's (the memo layer
// guarantees it by exact canon comparison).
func (b *baseline) ApplyDelta(src []byte) []byte {
	b.minorsDig[0], src = canon.U64(src)
	b.minorsDig[1], src = canon.U64(src)
	var n uint64
	n, src = canon.U64(src)
	for i := uint64(0); i < n; i++ {
		var li uint64
		li, src = canon.U64(src)
		line := b.minors[li]
		if line == nil {
			line = new([integrity.Arity]uint8)
			b.minors[li] = line
		}
		for j := 0; j < integrity.Arity; j += 8 {
			var w uint64
			w, src = canon.U64(src)
			for k := 0; k < 8; k++ {
				line[j+k] = uint8(w)
				w >>= 8
			}
		}
	}
	return src
}

// sortU64 is an allocation-free insertion sort for the short slices the
// canons order (walk MSHRs, per-layer touched lines).
func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
