package memprot

import (
	"fmt"
	"testing"

	"tnpu/internal/dram"
)

// BenchmarkReadBlock measures the per-block engine path: a dense sequential
// read stream pushed through ReadBlock one block at a time, per scheme.
func BenchmarkReadBlock(b *testing.B) {
	const blocks = 4096
	for _, scheme := range AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := New(scheme, DefaultConfig(smallBus()))
				if err != nil {
					b.Fatal(err)
				}
				w := dram.NewIssueWindow(16)
				r := uint64(0)
				for blk := uint64(0); blk < blocks; blk++ {
					busFree, _ := e.ReadBlock(r, blk*dram.BlockBytes, 1)
					if gate := w.Note(busFree); gate > r+1 {
						r = gate
					} else {
						r++
					}
				}
			}
			b.SetBytes(blocks * dram.BlockBytes)
		})
	}
}

// BenchmarkReadRun measures the same dense stream through the batched
// ReadRun path; the ratio to BenchmarkReadBlock is the engine-layer speedup
// of the run-length fast path.
func BenchmarkReadRun(b *testing.B) {
	const blocks = 4096
	for _, scheme := range AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := New(scheme, DefaultConfig(smallBus()))
				if err != nil {
					b.Fatal(err)
				}
				re, ok := e.(RunEngine)
				if !ok {
					b.Fatalf("%v engine does not implement RunEngine", scheme)
				}
				w := dram.NewIssueWindow(16)
				re.ReadRun(0, 0, 1, blocks, w)
			}
			b.SetBytes(blocks * dram.BlockBytes)
		})
	}
}

// BenchmarkReadRunHot measures the steady-state batched read path on a
// reused engine — the configuration the NPU machine loop actually runs,
// where the streak fast path must not allocate. Run with -benchmem: the
// pinned expectation (see TestBatchedRunNoAllocs) is 0 allocs/op.
func BenchmarkReadRunHot(b *testing.B) {
	const blocks = 4096
	for _, scheme := range AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			e, err := New(scheme, DefaultConfig(smallBus()))
			if err != nil {
				b.Fatal(err)
			}
			re := e.(RunEngine)
			w := dram.NewIssueWindow(16)
			r, _ := re.ReadRun(0, 0, 1, blocks, w) // warm caches and buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _ = re.ReadRun(r, 0, 1, blocks, w)
			}
			b.SetBytes(blocks * dram.BlockBytes)
		})
	}
}

// BenchmarkWriteRunHot is BenchmarkReadRunHot's write-side counterpart.
func BenchmarkWriteRunHot(b *testing.B) {
	const blocks = 4096
	for _, scheme := range AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			e, err := New(scheme, DefaultConfig(smallBus()))
			if err != nil {
				b.Fatal(err)
			}
			re := e.(RunEngine)
			w := dram.NewIssueWindow(16)
			r, _ := re.WriteRun(0, 0, 1, blocks, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _ = re.WriteRun(r, 0, 1, blocks, w)
			}
			b.SetBytes(blocks * dram.BlockBytes)
		})
	}
}

// TestBatchedRunNoAllocs pins the zero-allocation property of the batched
// hot path: after one warmup run (which sizes the engine-owned streak
// buffers and the minor-counter map), steady-state ReadRun/WriteRun must
// not allocate for any scheme.
func TestBatchedRunNoAllocs(t *testing.T) {
	const blocks = 4096
	for _, scheme := range AllSchemes() {
		e, err := New(scheme, DefaultConfig(smallBus()))
		if err != nil {
			t.Fatal(err)
		}
		re := e.(RunEngine)
		w := dram.NewIssueWindow(16)
		var r uint64
		step := func() {
			r, _ = re.ReadRun(r, 0, 1, blocks, w)
			r, _ = re.WriteRun(r, 0, 1, blocks, w)
		}
		step() // warmup
		if avg := testing.AllocsPerRun(20, step); avg != 0 {
			t.Errorf("%v: batched hot path allocates %.1f times per run, want 0", scheme, avg)
		}
	}
}

// BenchmarkWriteRun is ReadRun's write-side counterpart (exercises the
// counter RMW and minor-bump batching in the baseline).
func BenchmarkWriteRun(b *testing.B) {
	const blocks = 4096
	for _, scheme := range AllSchemes() {
		for _, batched := range []bool{false, true} {
			path := "perblock"
			if batched {
				path = "batched"
			}
			b.Run(fmt.Sprintf("%s/%s", scheme, path), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e, err := New(scheme, DefaultConfig(smallBus()))
					if err != nil {
						b.Fatal(err)
					}
					w := dram.NewIssueWindow(16)
					if batched {
						e.(RunEngine).WriteRun(0, 0, 1, blocks, w)
					} else {
						runPerBlock(e, false, 0, 0, 1, blocks, w)
					}
				}
				b.SetBytes(blocks * dram.BlockBytes)
			})
		}
	}
}
