package memprot

import (
	"tnpu/internal/dram"
)

// This file gives each engine a cheap, sound upper bound on how far bus
// time can advance while it serves an n-block run — the arithmetic behind
// multi-NPU horizon-bounded streak arbitration (DESIGN.md §6f). A machine
// may burst a whole run between two arbitration scans only if every block
// of the run would still have been issued before any other machine became
// ready; the bound makes that provable without simulating.
//
// Soundness argument (data-flow induction): every time the engine computes
// during a serve is built from max() over existing times plus transfer
// cycles, DRAM latency on serialized fetch chains, and per-block issue
// steps. Maintain the invariant that every time in the system (channel
// horizons, remembered gap ends, issue-window slots, walk MSHRs, the
// issue cursor) is at most a running bound B. Each operation then yields a
// result at most B plus its own cost, so
//
//	B_final <= max(sources) + sum(all increments)
//
// where the increments are summed globally — no credit is taken for
// channel parallelism or cache hits, making the bound loose (every access
// is assumed to miss, every victim dirty) but unconditionally sound:
//
//   - transfers: each charges at most ceil-per-transfer cycles at the
//     single-channel rate, so all of them together cost at most
//     WorstChannelCycles(total bytes) + one rounding cycle per transfer;
//   - latency chains: each serialized ReadAt that feeds a subsequent bus
//     charge (the baseline tree walk) injects Bus.Latency() once;
//   - issue stepping: the DMA loop advances the cursor by at least one
//     cycle per block.
//
// Crypto pipeline latencies (OTP/XTS/MAC) feed only dataAt — never a bus
// charge or the issue cursor — so they are excluded. The npu.Machine
// re-checks the bound against the actually reached issue time after every
// burst and panics on violation, and FuzzMultiVsBlock hunts for inputs
// that break it.

// RunBounder is implemented by engines whose run service admits the
// closed-form time bound above. RunBoundBase returns the engine-side
// sources of the bound (bus horizon plus any engine-held times);
// RunBoundIncr returns the summed increments for an n-block run at addr —
// pure O(1) arithmetic, ok=false when it would overflow. RunBurstSafe may
// inspect engine state in O(covered metadata lines) and is consulted only
// after the arithmetic bound already fits under the horizon: it rejects
// runs whose service can charge bursts the increment model excludes
// (baseline minor-counter overflow re-encryption).
type RunBounder interface {
	RunBoundBase() uint64
	RunBoundIncr(addr uint64, n int, write bool) (incr uint64, ok bool)
	RunBurstSafe(addr uint64, n int, write bool) bool
}

// flatRunBound covers the counter-less engines (unsecure, encrypt-only):
// n data transfers, no metadata, no latency chains.
//
//tnpu:noalloc //tnpu:pure
func flatRunBound(bus *dram.Bus, n int) (uint64, bool) {
	un := uint64(n)
	wcc, ok := bus.WorstChannelCycles(un * dram.BlockBytes)
	if !ok {
		return 0, false
	}
	// + n rounding cycles (one per transfer) + n issue steps.
	return wcc + 2*un, true
}

//tnpu:pure
func (u *unsecure) RunBoundBase() uint64 { return u.cfg.Bus.Now() }

//tnpu:noalloc //tnpu:pure
func (u *unsecure) RunBoundIncr(addr uint64, n int, write bool) (uint64, bool) {
	return flatRunBound(u.cfg.Bus, n)
}

//tnpu:pure
func (u *unsecure) RunBurstSafe(addr uint64, n int, write bool) bool { return true }

//tnpu:pure
func (e *encryptOnly) RunBoundBase() uint64 { return e.cfg.Bus.Now() }

//tnpu:noalloc //tnpu:pure
func (e *encryptOnly) RunBoundIncr(addr uint64, n int, write bool) (uint64, bool) {
	return flatRunBound(e.cfg.Bus, n)
}

//tnpu:pure
func (e *encryptOnly) RunBurstSafe(addr uint64, n int, write bool) bool { return true }

//tnpu:pure
func (t *treeless) RunBoundBase() uint64 { return t.cfg.Bus.Now() }

// RunBoundIncr: n data transfers plus at most two transfers per covered
// MAC line (dirty-victim writeback + fetch). Every treeless run charge is
// presented at the issue-cursor time — the MAC fetch's DRAM latency feeds
// only dataAt — so no latency-chain term appears.
//
//tnpu:noalloc //tnpu:pure
func (t *treeless) RunBoundIncr(addr uint64, n int, write bool) (uint64, bool) {
	transfers := uint64(n) + 2*uint64(macLineCount(addr, t.cfg.MACSlotBytes, n))
	wcc, ok := t.cfg.Bus.WorstChannelCycles(transfers * dram.BlockBytes)
	if !ok {
		return 0, false
	}
	return wcc + transfers + uint64(n), true
}

//tnpu:pure
func (t *treeless) RunBurstSafe(addr uint64, n int, write bool) bool { return true }

// RunBoundBase folds in the walk MSHRs: a counter miss early in the run
// can queue behind a walk still in flight from before the horizon was
// computed.
//
//tnpu:noalloc //tnpu:pure
func (b *baseline) RunBoundBase() uint64 {
	base := b.cfg.Bus.Now()
	for _, f := range b.walkFree {
		if f > base {
			base = f
		}
	}
	return base
}

// RunBoundIncr assumes every covered counter line misses and walks the
// full tree with a dirty victim at every level, every MAC line misses
// dirty, and every walk fetch serializes behind the previous one:
//
//   - per counter line: victim writeback + its touchParent cascade (at
//     most one hash transfer per level), the walk's counter fetch plus per
//     level one hash writeback + cascade + one parent fetch, and the
//     next-line prefetch with its own dirty eviction — counted whether or
//     not the prefetch ablation is on;
//   - per MAC line: writeback + fetch (read fill or write RMW);
//   - latency: the walk chain serializes at most Levels+1 DRAM reads per
//     counter line, each injecting Bus.Latency() into later charges.
//
// Minor-counter overflow re-encryption bursts are NOT modeled here;
// RunBurstSafe rejects write runs with a pending overflow instead.
//
//tnpu:noalloc //tnpu:pure
func (b *baseline) RunBoundIncr(addr uint64, n int, write bool) (uint64, bool) {
	firstLine, _ := b.geo.CounterIndex(addr / dram.BlockBytes)
	lastLine, _ := b.geo.CounterIndex(addr/dram.BlockBytes + uint64(n) - 1)
	ctrLines := lastLine - firstLine + 1
	lv := uint64(b.geo.Levels())
	perLine := (1 + lv) + (1 + lv*(2+lv)) + (2 + lv)
	macLines := uint64(macLineCount(addr, b.cfg.MACSlotBytes, n))

	transfers := uint64(n) + 2*macLines + ctrLines*perLine
	wcc, ok := b.cfg.Bus.WorstChannelCycles(transfers * dram.BlockBytes)
	if !ok {
		return 0, false
	}
	latency := ctrLines * (lv + 1) * b.cfg.Bus.Latency()
	return wcc + transfers + uint64(n) + latency, true
}

// RunBurstSafe rejects write runs that would wrap a 7-bit minor counter:
// the re-encryption burst (Arity x 2 blocks) is far outside RunBoundIncr's
// increment model. The overflowPending scan is O(covered counter lines),
// which is why it runs only after the arithmetic bound has already passed.
//
//tnpu:pure
func (b *baseline) RunBurstSafe(addr uint64, n int, write bool) bool {
	return !write || !b.overflowPending(addr, n)
}
