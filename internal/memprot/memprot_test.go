package memprot

import (
	"testing"

	"tnpu/internal/dram"
	"tnpu/internal/stats"
)

// smallBus mirrors the Small NPU memory interface (4 B/cycle, 100-cycle
// latency).
func smallBus() *dram.Bus {
	return dram.NewBus(dram.Config{
		FreqHz:               2_750_000_000,
		BandwidthBytesPerSec: 11_000_000_000,
		LatencyCycles:        100,
	})
}

func newEngine(t *testing.T, s Scheme) Engine {
	t.Helper()
	e, err := New(s, DefaultConfig(smallBus()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSchemeStrings(t *testing.T) {
	if Unsecure.String() != "unsecure" || Baseline.String() != "baseline" || TreeLess.String() != "tnpu" {
		t.Error("scheme names wrong")
	}
	if len(Schemes()) != 3 {
		t.Error("want 3 schemes")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(smallBus()).Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig(smallBus())
	bad.Bus = nil
	if _, err := New(Unsecure, bad); err == nil {
		t.Error("nil bus accepted")
	}
	bad2 := DefaultConfig(smallBus())
	bad2.CounterCacheBytes = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero cache accepted")
	}
}

func TestUnsecureTiming(t *testing.T) {
	e := newEngine(t, Unsecure)
	busFree, dataAt := e.ReadBlock(0, 0, 0)
	if busFree != 16 { // 64B at 4 B/cycle
		t.Errorf("read busFree = %d, want 16", busFree)
	}
	if dataAt != 116 { // + 100 latency
		t.Errorf("read dataAt = %d, want 116", dataAt)
	}
	busFree, dataAt = e.WriteBlock(0, 64, 0)
	if dataAt != busFree {
		t.Error("write should complete at bus time (no latency)")
	}
	if e.Traffic().Total() != 128 {
		t.Errorf("traffic = %d, want 128", e.Traffic().Total())
	}
	if got := e.VersionFetch(5, VTableSlot(1, 0), false); got != 5 {
		t.Errorf("unsecure VersionFetch = %d, want passthrough", got)
	}
}

func TestBaselineCounterHitVsMiss(t *testing.T) {
	e := newEngine(t, Baseline)
	// First read of a region: counter miss -> tree walk (serialized
	// fetches), so dataAt is far beyond the unsecure 116+crypto.
	_, coldAt := e.ReadBlock(0, 0, 0)
	// Second read of a neighbouring block shares the counter line (SC-64
	// covers 4KB) and the MAC line: pure hit path.
	_, hotAt := e.ReadBlock(coldAt, 64, 0)
	coldLat, hotLat := coldAt, hotAt-coldAt
	if coldLat <= hotLat {
		t.Errorf("cold read latency (%d) should exceed hot read latency (%d)", coldLat, hotLat)
	}
	cs := e.CounterStats()
	if cs.Lookups != 2 || cs.Misses != 1 {
		t.Errorf("counter stats = %+v, want 2 lookups / 1 miss", *cs)
	}
}

func TestBaselineSequentialStreamMetadataRatio(t *testing.T) {
	e := newEngine(t, Baseline)
	// Stream 1MB sequentially: counters miss once per 4KB, MACs once per
	// 512B; tree nodes (hash) are rare (one L1 node covers 256KB).
	const blocks = 16384 // 1MB
	var ready uint64
	for i := 0; i < blocks; i++ {
		ready, _ = e.ReadBlock(ready, uint64(i)*64, 0)
	}
	tr := e.Traffic()
	data := tr.Class(stats.Data)
	if data != blocks*64 {
		t.Fatalf("data traffic = %d", data)
	}
	ctr := tr.Class(stats.Counter)
	if want := uint64(blocks/64) * 64; ctr != want {
		t.Errorf("counter traffic = %d, want %d (1 line per 4KB)", ctr, want)
	}
	mac := tr.Class(stats.MAC)
	if want := uint64(blocks/8) * 64; mac != want {
		t.Errorf("mac traffic = %d, want %d (1 line per 512B)", mac, want)
	}
	if cs := e.CounterStats(); cs.MissRate() > 0.02 {
		t.Errorf("sequential counter miss rate = %v, want <2%%", cs.MissRate())
	}
}

func TestBaselineScatteredAccessThrashes(t *testing.T) {
	e := newEngine(t, Baseline)
	// Touch one block per 4KB page over 64MB: every access needs a new
	// counter line; the 4KB counter cache (64 lines) thrashes.
	var ready uint64
	const accesses = 2048
	for i := 0; i < accesses; i++ {
		addr := uint64(i) * 4096 * 8 // stride 32KB over 64MB
		ready, _ = e.ReadBlock(ready, addr, 0)
	}
	if mr := e.CounterStats().MissRate(); mr < 0.95 {
		t.Errorf("scattered counter miss rate = %v, want ~1", mr)
	}
	// Hash (tree) traffic must appear: cold walks fetch inner nodes.
	if e.Traffic().Class(stats.Hash) == 0 {
		t.Error("tree walk generated no hash traffic")
	}
}

func TestBaselineWriteCounterRMW(t *testing.T) {
	e := newEngine(t, Baseline)
	// A write to a cold region must fetch its counter line (RMW).
	e.WriteBlock(0, 0, 0)
	if e.Traffic().Read(stats.Counter) == 0 {
		t.Error("cold write should fetch counter line")
	}
	// The block-oriented baseline MEE read-modify-writes MAC lines on
	// write misses (it has no tile semantics to write-combine).
	if e.Traffic().Read(stats.MAC) == 0 {
		t.Error("baseline write miss should RMW the MAC line")
	}
	// The tree-less engine write-combines whole tile writes instead.
	tl := newEngine(t, TreeLess)
	tl.WriteBlock(0, 0, 1)
	if tl.Traffic().Read(stats.MAC) != 0 {
		t.Error("tree-less tile writes should write-validate MAC lines")
	}
}

func TestBaselineDirtyCounterWriteback(t *testing.T) {
	e := newEngine(t, Baseline)
	// Dirty enough counter lines to force evictions: write one block per
	// 4KB over far more pages than the counter cache holds.
	var ready uint64
	for i := 0; i < 1024; i++ {
		ready, _ = e.WriteBlock(ready, uint64(i)*4096*64, 0)
	}
	if e.Traffic().Write(stats.Counter) == 0 {
		t.Error("no counter writebacks despite thrashing dirty lines")
	}
	if e.Traffic().Write(stats.Hash) == 0 {
		// Parent updates cascade into hash-line writebacks eventually.
		e.Flush(ready)
		if e.Traffic().Write(stats.Hash) == 0 {
			t.Error("no hash writebacks even after flush")
		}
	}
}

func TestBaselineFlushDrains(t *testing.T) {
	e := newEngine(t, Baseline)
	end, _ := e.WriteBlock(0, 0, 0)
	before := e.Traffic().Total()
	e.Flush(end)
	if e.Traffic().Total() <= before {
		t.Error("flush of dirty metadata should add writeback traffic")
	}
}

func TestTreelessNoCounterTraffic(t *testing.T) {
	e := newEngine(t, TreeLess)
	var ready uint64
	for i := 0; i < 4096; i++ {
		ready, _ = e.ReadBlock(ready, uint64(i)*64, 0)
	}
	tr := e.Traffic()
	if tr.Class(stats.Counter) != 0 || tr.Class(stats.Hash) != 0 {
		t.Errorf("tree-less NPU reads produced counter/hash traffic: %s", tr)
	}
	if want := uint64(4096/8) * 64; tr.Class(stats.MAC) != want {
		t.Errorf("mac traffic = %d, want %d", tr.Class(stats.MAC), want)
	}
}

func TestTreelessReadLatencyIncludesXTS(t *testing.T) {
	cfg := DefaultConfig(smallBus())
	e, err := New(TreeLess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the MAC line first so the second read is the pure hit path.
	e.ReadBlock(0, 0, 0)
	busFree, dataAt := e.ReadBlock(1000, 64, 0)
	want := busFree + cfg.Bus.Latency() + cfg.XTSCycles + cfg.MACCycles
	if dataAt != want {
		t.Errorf("hit-path dataAt = %d, want %d", dataAt, want)
	}
}

func TestTreelessVersionFetchCachesTable(t *testing.T) {
	e := newEngine(t, TreeLess)
	slot := VTableSlot(3, 0)
	// Version fetches are non-blocking (the CPU prefetches the table and
	// posts updates), but cold accesses generate protected-region traffic.
	if got := e.VersionFetch(0, slot, false); got != 0 {
		t.Errorf("version fetch must not gate issue: got %d", got)
	}
	coldTraffic := e.Traffic().Class(stats.Version)
	if coldTraffic == 0 {
		t.Error("cold version fetch generated no traffic")
	}
	e.VersionFetch(1000, slot, false)
	if e.Traffic().Class(stats.Version) != coldTraffic {
		t.Error("hot version fetch should not re-fetch")
	}
}

func TestVTableSlotDisjoint(t *testing.T) {
	a := VTableSlot(1, 0)
	b := VTableSlot(1, 1)
	c := VTableSlot(2, 0)
	if a == b || a == c || b == c {
		t.Error("version slots must be distinct")
	}
	if a < VTableBase {
		t.Error("slot below table base")
	}
}

func TestTreelessCheaperThanBaselineOnScatteredReads(t *testing.T) {
	// The paper's core claim at engine level: for low-spatial-locality
	// access (embedding-style), the tree-less engine finishes earlier and
	// moves fewer bytes than the tree-based baseline.
	base := newEngine(t, Baseline)
	tnpu := newEngine(t, TreeLess)
	run := func(e Engine) (uint64, uint64) {
		var ready, last uint64
		// 30-block rows at scattered addresses, like embedding gathers.
		for row := 0; row < 200; row++ {
			addr := (uint64(row*7919) % 50000) * 4096
			for b := 0; b < 30; b++ {
				var dataAt uint64
				ready, dataAt = e.ReadBlock(ready, addr+uint64(b)*64, 0)
				if dataAt > last {
					last = dataAt
				}
			}
		}
		return last, e.Traffic().Total()
	}
	bTime, bBytes := run(base)
	tTime, tBytes := run(tnpu)
	if tTime >= bTime {
		t.Errorf("tree-less scattered time %d not better than baseline %d", tTime, bTime)
	}
	if tBytes >= bBytes {
		t.Errorf("tree-less traffic %d not lower than baseline %d", tBytes, bBytes)
	}
}

func TestSchemesShareBusContention(t *testing.T) {
	// Two engines on one bus: traffic from one delays the other.
	bus := smallBus()
	cfg := DefaultConfig(bus)
	a, err := New(Unsecure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Unsecure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.ReadBlock(0, 0, 0)
	busFree, _ := b.ReadBlock(0, 0, 0)
	if busFree != 32 {
		t.Errorf("second engine's block should queue: busFree = %d, want 32", busFree)
	}
}

func TestNewUnknownScheme(t *testing.T) {
	if _, err := New(Scheme(42), DefaultConfig(smallBus())); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestEncryptOnlyScheme(t *testing.T) {
	e := newEngine(t, EncryptOnly)
	if e.Scheme() != EncryptOnly || EncryptOnly.String() != "encrypt-only" {
		t.Fatal("scheme identity wrong")
	}
	busFree, dataAt := e.ReadBlock(0, 0, 0)
	cfg := DefaultConfig(smallBus())
	if dataAt != busFree+100+cfg.XTSCycles {
		t.Errorf("encrypt-only read dataAt = %d", dataAt)
	}
	e.WriteBlock(0, 64, 0)
	// Confidentiality only: zero metadata traffic of any kind.
	if e.Traffic().Metadata() != 0 {
		t.Errorf("encrypt-only generated metadata traffic: %s", e.Traffic())
	}
	if got := e.VersionFetch(9, 0, true); got != 9 {
		t.Error("encrypt-only VersionFetch must be a no-op")
	}
	e.Flush(0)
	if len(AllSchemes()) != 4 {
		t.Error("AllSchemes should include encrypt-only")
	}
}

func TestSplitCounterOverflowCost(t *testing.T) {
	e := newEngine(t, Baseline).(*baseline)
	// 127 writes to one block: no overflow yet.
	var ready uint64
	for i := 0; i < 127; i++ {
		ready, _ = e.WriteBlock(ready, 0, 0)
	}
	if e.Overflows != 0 {
		t.Fatalf("premature overflow after 127 writes")
	}
	before := e.Traffic().Total()
	ready, _ = e.WriteBlock(ready, 0, 0) // 128th write wraps the minor
	if e.Overflows != 1 {
		t.Fatalf("overflow not triggered on minor wrap")
	}
	// The wrap re-encrypts the 4KB region: a 64-block read+write burst.
	if delta := e.Traffic().Total() - before; delta < 64*128 {
		t.Errorf("overflow burst only %d bytes", delta)
	}
	// Sibling slots were reset: another 127 writes to a neighbour are free.
	for i := 0; i < 127; i++ {
		ready, _ = e.WriteBlock(ready, 64, 0)
	}
	if e.Overflows != 1 {
		t.Errorf("sibling writes should restart from reset minors")
	}
}

func TestCounterPrefetch(t *testing.T) {
	cfg := DefaultConfig(smallBus())
	cfg.CounterPrefetch = true
	e, err := New(Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First miss prefetches the next line, so streaming the next 4KB page
	// hits where the plain engine would miss.
	e.ReadBlock(0, 0, 0)
	before := e.CounterStats().Misses
	e.ReadBlock(1000, 4096, 0) // next counter line: prefetched
	if e.CounterStats().Misses != before {
		t.Errorf("prefetched line missed anyway")
	}
	// Prefetch consumed counter-read traffic for the extra line.
	if e.Traffic().Read(stats.Counter) < 2*64 {
		t.Errorf("prefetch traffic missing: %d", e.Traffic().Read(stats.Counter))
	}
}

// TestPrefetchKeepsDemandStatsClean asserts the CounterPrefetch ablation
// cannot pollute the Figure 5 demand miss rate: the same access stream
// with prefetch on performs the same number of demand lookups, with the
// speculative fills visible only under Prefetches.
func TestPrefetchKeepsDemandStatsClean(t *testing.T) {
	run := func(prefetch bool) stats.CacheStats {
		cfg := DefaultConfig(smallBus())
		cfg.CounterPrefetch = prefetch
		e, err := New(Baseline, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ready := uint64(0)
		for addr := uint64(0); addr < 8*4096; addr += 64 {
			_, ready = e.ReadBlock(ready, addr, 0)
		}
		return *e.CounterStats()
	}
	off := run(false)
	on := run(true)
	if on.Lookups != off.Lookups {
		t.Errorf("prefetch changed demand lookups: %d -> %d", off.Lookups, on.Lookups)
	}
	if on.Prefetches == 0 {
		t.Error("prefetch run recorded no prefetch fills")
	}
	if off.Prefetches != 0 {
		t.Errorf("prefetch-off run recorded %d prefetch fills", off.Prefetches)
	}
	if on.Misses >= off.Misses {
		t.Errorf("prefetch did not reduce demand misses: %d -> %d", off.Misses, on.Misses)
	}
}
