package secmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newMem(t *testing.T) *TreelessMemory {
	t.Helper()
	m, err := NewTreelessMemory(testKey32, testKey16)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadYourWrite(t *testing.T) {
	m := newMem(t)
	pt := mkBlock(1)
	m.WriteBlock(0x1000, pt, 7)
	got, err := m.ReadBlock(0x1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("read-your-write mismatch")
	}
}

func TestWrongVersionDetected(t *testing.T) {
	m := newMem(t)
	m.WriteBlock(0, mkBlock(1), 7)
	if _, err := m.ReadBlock(0, 8); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("stale/future version must fail integrity, got %v", err)
	}
}

func TestReplayAttackDetected(t *testing.T) {
	m := newMem(t)
	addr := uint64(0x2000)
	// Version 1 data written; attacker snapshots bus.
	m.WriteBlock(addr, mkBlock(1), 1)
	ct, mac, ok := m.Snapshot(addr)
	if !ok {
		t.Fatal("snapshot failed")
	}
	// Legitimate update to version 2.
	m.WriteBlock(addr, mkBlock(2), 2)
	// Attacker replays the old (ciphertext, MAC) pair — both are
	// internally consistent, only the version disagrees.
	m.Restore(addr, ct, mac)
	if _, err := m.ReadBlock(addr, 2); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replayed stale block must be detected, got %v", err)
	}
	// Sanity: the stale pair still verifies under its own old version —
	// the version number is what provides freshness.
	if _, err := m.ReadBlock(addr, 1); err != nil {
		t.Fatalf("stale pair should be self-consistent at version 1: %v", err)
	}
}

func TestTamperDetected(t *testing.T) {
	m := newMem(t)
	m.WriteBlock(0, mkBlock(1), 1)
	if err := m.Corrupt(0, 13); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBlock(0, 1); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("bit flip must be detected, got %v", err)
	}
}

func TestRelocationDetected(t *testing.T) {
	m := newMem(t)
	m.WriteBlock(0x000, mkBlock(1), 1)
	m.WriteBlock(0x40, mkBlock(2), 1)
	if err := m.Relocate(0x000, 0x40); err != nil { // splice valid block to another address
		t.Fatal(err)
	}
	if _, err := m.ReadBlock(0x40, 1); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("spliced block must be detected, got %v", err)
	}
}

func TestMissingBlock(t *testing.T) {
	m := newMem(t)
	if _, err := m.ReadBlock(0x40, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("absent block read must fail, got %v", err)
	}
}

func TestMultiBlockWriteRead(t *testing.T) {
	m := newMem(t)
	data := make([]byte, 300) // 4.7 blocks -> padded to 5
	for i := range data {
		data[i] = byte(i * 3)
	}
	m.Write(0x4000, data, 9)
	if m.Blocks() != 5 {
		t.Fatalf("resident blocks = %d, want 5", m.Blocks())
	}
	got, err := m.Read(0x4000, len(data), 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestMultiBlockPartialTamper(t *testing.T) {
	m := newMem(t)
	data := make([]byte, 256)
	m.Write(0, data, 1)
	if err := m.Corrupt(128, 0); err != nil { // third block
		t.Fatal(err)
	}
	if _, err := m.Read(0, 256, 1); !errors.Is(err, ErrIntegrity) {
		t.Fatal("tamper in any covered block must fail the whole read")
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := newMem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.WriteBlock(1, mkBlock(0), 0)
}

func TestAttackOnAbsentBlockErrors(t *testing.T) {
	m := newMem(t)
	if err := m.Corrupt(0x40, 0); !errors.Is(err, ErrAbsentBlock) {
		t.Fatalf("corrupt of absent block: got %v, want ErrAbsentBlock", err)
	}
	if err := m.CorruptMAC(0x40, 0); !errors.Is(err, ErrAbsentBlock) {
		t.Fatalf("corrupt-mac of absent block: got %v, want ErrAbsentBlock", err)
	}
	if err := m.Relocate(0x40, 0x80); !errors.Is(err, ErrAbsentBlock) {
		t.Fatalf("relocate of absent block: got %v, want ErrAbsentBlock", err)
	}
}

func TestMACTamperDetected(t *testing.T) {
	m := newMem(t)
	m.WriteBlock(0, mkBlock(1), 1)
	if err := m.CorruptMAC(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBlock(0, 1); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("MAC bit flip must be detected, got %v", err)
	}
}

func TestIntegrityErrorCarriesContext(t *testing.T) {
	m := newMem(t)
	m.WriteBlock(0x1c0, mkBlock(1), 4)
	_, err := m.ReadBlock(0x1c0, 5)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("want typed *IntegrityError, got %T (%v)", err, err)
	}
	if ie.Addr != 0x1c0 || ie.Version != 5 {
		t.Fatalf("error context addr=%#x version=%d, want 0x1c0/5", ie.Addr, ie.Version)
	}
}

// Property: for arbitrary payloads and versions, writes followed by reads
// with the matching version succeed and reproduce the payload; any other
// version fails.
func TestTreelessRoundTripProperty(t *testing.T) {
	m, err := NewTreelessMemory(testKey32, testKey16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, addrRaw uint16, ver uint8) bool {
		if len(payload) == 0 {
			return true
		}
		addr := uint64(addrRaw) * BlockBytes
		m.Write(addr, payload, uint64(ver))
		got, err := m.Read(addr, len(payload), uint64(ver))
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		_, err = m.Read(addr, len(payload), uint64(ver)+1)
		return errors.Is(err, ErrIntegrity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
