package secmem

import (
	"errors"
	"fmt"
)

// ErrIntegrity is the sentinel every verification failure matches via
// errors.Is: the data was tampered with, relocated, or replayed from a
// stale version.
var ErrIntegrity = errors.New("secmem: integrity violation (MAC mismatch)")

// IntegrityError is the typed verification failure returned by the
// protected-memory read paths. It carries the faulting block address and
// the version the reader expected, so harnesses (and the adversarial
// campaign in internal/attack) can attribute a detection to a specific
// injection instead of string-matching error text.
//
// errors.Is(err, ErrIntegrity) matches every IntegrityError.
type IntegrityError struct {
	// Addr is the 64B-aligned block address that failed verification.
	Addr uint64
	// Version is the version number the reader supplied.
	Version uint64
	// Reason distinguishes the failure ("missing block", "MAC mismatch").
	Reason string
}

// Error renders the failure with its block context.
func (e *IntegrityError) Error() string {
	return fmt.Sprintf("%v: block %#x version %d: %s", ErrIntegrity, e.Addr, e.Version, e.Reason)
}

// Unwrap ties the typed error to the ErrIntegrity sentinel.
func (e *IntegrityError) Unwrap() error { return ErrIntegrity }

// ErrAbsentBlock is returned by attacker-surface operations (Corrupt,
// CorruptMAC, Relocate) aimed at an address holding no block: there is
// nothing on the bus to capture or flip.
var ErrAbsentBlock = errors.New("secmem: no block at target address")
