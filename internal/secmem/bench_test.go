package secmem

import "testing"

// Micro-benchmarks of the functional crypto layer: the real per-64B-block
// costs a software implementation of the two schemes would pay.

func BenchmarkCTRApply(b *testing.B) {
	e := newCTR(b)
	block := mkBlock(1)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		e.Apply(uint64(i)*BlockBytes, uint64(i), block)
	}
}

func BenchmarkXTSEncrypt(b *testing.B) {
	e := newXTS(b)
	block := mkBlock(1)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		e.Encrypt(uint64(i)*BlockBytes, block)
	}
}

func BenchmarkMACGenerate(b *testing.B) {
	m := NewMACEngine(testKey16)
	block := mkBlock(1)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		m.MAC(block, uint64(i)*BlockBytes, uint64(i))
	}
}

func BenchmarkTreelessWriteRead(b *testing.B) {
	mem, err := NewTreelessMemory(testKey32, testKey16)
	if err != nil {
		b.Fatal(err)
	}
	block := mkBlock(1)
	b.SetBytes(2 * BlockBytes)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%1024) * BlockBytes
		mem.WriteBlock(addr, block, uint64(i))
		if _, err := mem.ReadBlock(addr, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
