// Package secmem provides the functional cryptography used by both memory
// protection schemes in TNPU:
//
//   - Counter-mode (CTR) one-time-pad encryption, used by the tree-based
//     baseline (Fig. 1): OTP = AES_K(address ‖ counter), C = P ⊕ OTP.
//   - AES-XTS, used by the tree-less scheme for the NPU memory region
//     (Sec. IV-C), matching Intel TME-style counter-less encryption.
//   - 8-byte truncated HMAC-SHA256 MACs keyed over (data, address,
//     version), the integrity primitive of the tree-less scheme.
//
// Everything operates on 64-byte memory blocks — the protection granularity
// used throughout the paper. These are real cryptographic operations (Go
// stdlib AES/SHA-256), so the security-property tests exercise the same
// checks the proposed hardware performs, not mocks.
package secmem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
)

// BlockBytes is the protected memory block size.
const BlockBytes = 64

// MACBytes is the per-block MAC size (8B per 64B block, Sec. IV-C).
const MACBytes = 8

// aesBlock is the AES cipher block size.
const aesBlock = 16

// CTREngine implements counter-mode encryption with a per-block counter,
// as used by the baseline tree-based scheme. Encryption and decryption are
// the same XOR operation.
type CTREngine struct {
	block cipher.Block
}

// NewCTREngine creates a counter-mode engine from a 16/24/32-byte AES key.
func NewCTREngine(key []byte) (*CTREngine, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secmem: ctr key: %w", err)
	}
	return &CTREngine{block: b}, nil
}

// Pad writes the 64-byte one-time pad for (addr, counter) into out. The pad
// is four AES blocks of AES_K(addr ‖ counter ‖ chunkIndex), so every
// (address, counter) pair yields a unique pad — the property that makes
// counter reuse detectable and pad reuse impossible while counters advance.
func (e *CTREngine) Pad(addr, counter uint64, out *[BlockBytes]byte) {
	var seed [aesBlock]byte
	binary.LittleEndian.PutUint64(seed[0:8], addr)
	for i := 0; i < BlockBytes/aesBlock; i++ {
		binary.LittleEndian.PutUint64(seed[8:16], counter<<2|uint64(i))
		e.block.Encrypt(out[i*aesBlock:(i+1)*aesBlock], seed[:])
	}
}

// Apply XORs the pad for (addr, counter) into the 64-byte data block,
// performing encryption or decryption in place on the returned copy.
func (e *CTREngine) Apply(addr, counter uint64, data []byte) []byte {
	if len(data) != BlockBytes {
		panic(fmt.Sprintf("secmem: CTR block must be %dB, got %d", BlockBytes, len(data)))
	}
	var pad [BlockBytes]byte
	e.Pad(addr, counter, &pad)
	out := make([]byte, BlockBytes)
	for i := range out {
		out[i] = data[i] ^ pad[i]
	}
	return out
}

// XTSEngine implements AES-XTS over 64-byte blocks: the counter-less
// encryption the tree-less scheme uses for the bulk NPU memory. The tweak
// is derived from the block address, so identical plaintext at different
// addresses yields different ciphertext, with no per-block counter state.
type XTSEngine struct {
	data  cipher.Block // K1: data encryption
	tweak cipher.Block // K2: tweak encryption
}

// NewXTSEngine creates an XTS engine from a 32-byte key (split into two
// 16-byte AES-128 keys) or a 64-byte key (two AES-256 keys).
func NewXTSEngine(key []byte) (*XTSEngine, error) {
	if len(key) != 32 && len(key) != 64 {
		return nil, fmt.Errorf("secmem: xts key must be 32 or 64 bytes, got %d", len(key))
	}
	half := len(key) / 2
	k1, err := aes.NewCipher(key[:half])
	if err != nil {
		return nil, fmt.Errorf("secmem: xts data key: %w", err)
	}
	k2, err := aes.NewCipher(key[half:])
	if err != nil {
		return nil, fmt.Errorf("secmem: xts tweak key: %w", err)
	}
	return &XTSEngine{data: k1, tweak: k2}, nil
}

// mulAlpha multiplies a 16-byte value by α (x) in GF(2^128) with the XTS
// primitive polynomial x^128 + x^7 + x^2 + x + 1, little-endian bit order
// as specified by IEEE 1619.
func mulAlpha(t *[aesBlock]byte) {
	carry := byte(0)
	for i := 0; i < aesBlock; i++ {
		next := t[i] >> 7
		t[i] = t[i]<<1 | carry
		carry = next
	}
	if carry != 0 {
		t[0] ^= 0x87
	}
}

// tweakFor computes the initial tweak T = AES_K2(blockAddr) for the 64-byte
// block at addr.
func (e *XTSEngine) tweakFor(addr uint64) [aesBlock]byte {
	var sector, t [aesBlock]byte
	binary.LittleEndian.PutUint64(sector[:8], addr/BlockBytes)
	e.tweak.Encrypt(t[:], sector[:])
	return t
}

// Encrypt encrypts a 64-byte block located at addr.
func (e *XTSEngine) Encrypt(addr uint64, plaintext []byte) []byte {
	return e.apply(addr, plaintext, true)
}

// Decrypt decrypts a 64-byte block located at addr.
func (e *XTSEngine) Decrypt(addr uint64, ciphertext []byte) []byte {
	return e.apply(addr, ciphertext, false)
}

func (e *XTSEngine) apply(addr uint64, data []byte, encrypt bool) []byte {
	if len(data) != BlockBytes {
		panic(fmt.Sprintf("secmem: XTS block must be %dB, got %d", BlockBytes, len(data)))
	}
	t := e.tweakFor(addr)
	out := make([]byte, BlockBytes)
	var buf [aesBlock]byte
	for i := 0; i < BlockBytes/aesBlock; i++ {
		chunk := data[i*aesBlock : (i+1)*aesBlock]
		for j := 0; j < aesBlock; j++ {
			buf[j] = chunk[j] ^ t[j]
		}
		if encrypt {
			e.data.Encrypt(buf[:], buf[:])
		} else {
			e.data.Decrypt(buf[:], buf[:])
		}
		for j := 0; j < aesBlock; j++ {
			out[i*aesBlock+j] = buf[j] ^ t[j]
		}
		mulAlpha(&t)
	}
	return out
}

// MACEngine computes the per-block MACs of the tree-less scheme: an 8-byte
// truncation of HMAC-SHA256 over (block content ‖ block address ‖ version
// number), exactly the three inputs of Fig. 12. A mismatch on verify means
// at least one of the three was forged: tampered data, relocated block, or
// replayed (stale-version) data.
//
// The engine holds one resettable HMAC state, so a MAC costs two SHA-256
// block compressions instead of re-deriving the keyed inner/outer pads from
// scratch per call. A MACEngine is therefore NOT safe for concurrent use;
// callers that MAC from multiple goroutines (e.g. the attack campaign
// runner) must create one engine per goroutine.
//
//tnpu:per-goroutine
type MACEngine struct {
	key []byte
	h   hash.Hash // resettable HMAC-SHA256 state keyed on key
	sum [sha256.Size]byte
}

// NewMACEngine creates a MAC engine; the key is copied.
func NewMACEngine(key []byte) *MACEngine {
	k := make([]byte, len(key))
	copy(k, key)
	return &MACEngine{key: k, h: hmac.New(sha256.New, k)}
}

// MAC returns the 8-byte MAC for a 64-byte block.
func (m *MACEngine) MAC(data []byte, addr, version uint64) [MACBytes]byte {
	if len(data) != BlockBytes {
		panic(fmt.Sprintf("secmem: MAC block must be %dB, got %d", BlockBytes, len(data)))
	}
	m.h.Reset()
	m.h.Write(data)
	var meta [16]byte
	binary.LittleEndian.PutUint64(meta[0:8], addr)
	binary.LittleEndian.PutUint64(meta[8:16], version)
	m.h.Write(meta[:])
	var out [MACBytes]byte
	copy(out[:], m.h.Sum(m.sum[:0]))
	return out
}

// Verify recomputes the MAC and compares in constant time.
func (m *MACEngine) Verify(data []byte, addr, version uint64, mac [MACBytes]byte) bool {
	want := m.MAC(data, addr, version)
	return hmac.Equal(want[:], mac[:])
}

// HashNode computes the 8-byte integrity-tree node hash over a child node's
// 64-byte content and its address, used by the baseline counter tree.
func (m *MACEngine) HashNode(child []byte, addr uint64) [MACBytes]byte {
	return m.MAC(child, addr, ^uint64(0)) // distinct domain from data MACs
}
