package secmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	testKey16 = []byte("0123456789abcdef")
	testKey32 = []byte("0123456789abcdef0123456789abcdef")
)

func mkBlock(seed byte) []byte {
	b := make([]byte, BlockBytes)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// newCTR / newXTS are test setup: a constructor failure on a valid key
// is a harness bug, not the property under test.
func newCTR(tb testing.TB) *CTREngine {
	tb.Helper()
	e, err := NewCTREngine(testKey16)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func newXTS(tb testing.TB) *XTSEngine {
	tb.Helper()
	e, err := NewXTSEngine(testKey32)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func TestCTRRoundTrip(t *testing.T) {
	e, err := NewCTREngine(testKey16)
	if err != nil {
		t.Fatal(err)
	}
	pt := mkBlock(7)
	ct := e.Apply(0x1000, 5, pt)
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := e.Apply(0x1000, 5, ct)
	if !bytes.Equal(back, pt) {
		t.Fatal("CTR round trip failed")
	}
}

func TestCTRPadUniqueness(t *testing.T) {
	e := newCTR(t)
	var p1, p2, p3 [BlockBytes]byte
	e.Pad(0x1000, 1, &p1)
	e.Pad(0x1000, 2, &p2) // counter changed
	e.Pad(0x1040, 1, &p3) // address changed
	if p1 == p2 {
		t.Error("pad reuse across counters")
	}
	if p1 == p3 {
		t.Error("pad reuse across addresses")
	}
}

func TestCTRWrongCounterGarbles(t *testing.T) {
	e := newCTR(t)
	pt := mkBlock(3)
	ct := e.Apply(0, 10, pt)
	if bytes.Equal(e.Apply(0, 11, ct), pt) {
		t.Fatal("decryption with wrong counter must not recover plaintext")
	}
}

func TestCTRBadKey(t *testing.T) {
	if _, err := NewCTREngine([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestCTRBadBlockSizePanics(t *testing.T) {
	e := newCTR(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Apply(0, 0, make([]byte, 10))
}

func TestXTSRoundTrip(t *testing.T) {
	e, err := NewXTSEngine(testKey32)
	if err != nil {
		t.Fatal(err)
	}
	pt := mkBlock(9)
	ct := e.Encrypt(0x40, pt)
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	if !bytes.Equal(e.Decrypt(0x40, ct), pt) {
		t.Fatal("XTS round trip failed")
	}
}

func TestXTSAddressTweak(t *testing.T) {
	e := newXTS(t)
	pt := mkBlock(1)
	c1 := e.Encrypt(0, pt)
	c2 := e.Encrypt(64, pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("same plaintext at different addresses must differ (tweak)")
	}
	// Decrypting at the wrong address garbles.
	if bytes.Equal(e.Decrypt(64, c1), pt) {
		t.Fatal("ciphertext moved to another address must not decrypt")
	}
}

func TestXTSDeterministicPerAddress(t *testing.T) {
	// XTS has no counter: same (addr, plaintext) gives same ciphertext.
	// This is exactly why the tree-less scheme needs versioned MACs for
	// replay protection rather than relying on encryption alone.
	e := newXTS(t)
	pt := mkBlock(5)
	if !bytes.Equal(e.Encrypt(0, pt), e.Encrypt(0, pt)) {
		t.Fatal("XTS must be deterministic for fixed (addr, plaintext)")
	}
}

func TestXTSKeySizes(t *testing.T) {
	if _, err := NewXTSEngine(make([]byte, 64)); err != nil {
		t.Errorf("64B key rejected: %v", err)
	}
	if _, err := NewXTSEngine(make([]byte, 48)); err == nil {
		t.Error("48B key accepted")
	}
}

func TestMulAlphaCarry(t *testing.T) {
	// 1 shifted left 128 times wraps to the reduction polynomial 0x87.
	var tw [16]byte
	tw[15] = 0x80
	mulAlpha(&tw)
	if tw[0] != 0x87 {
		t.Errorf("carry reduction byte = %#x, want 0x87", tw[0])
	}
	for i := 1; i < 16; i++ {
		if tw[i] != 0 {
			t.Errorf("byte %d = %#x, want 0", i, tw[i])
		}
	}
	// Simple doubling without carry.
	tw = [16]byte{1}
	mulAlpha(&tw)
	if tw[0] != 2 {
		t.Errorf("doubling: got %#x, want 2", tw[0])
	}
}

func TestMACDetectsEachInput(t *testing.T) {
	m := NewMACEngine(testKey16)
	data := mkBlock(4)
	mac := m.MAC(data, 0x80, 3)

	if !m.Verify(data, 0x80, 3, mac) {
		t.Fatal("valid MAC rejected")
	}
	tampered := mkBlock(4)
	tampered[0] ^= 1
	if m.Verify(tampered, 0x80, 3, mac) {
		t.Error("tampered data accepted")
	}
	if m.Verify(data, 0xC0, 3, mac) {
		t.Error("relocated block accepted")
	}
	if m.Verify(data, 0x80, 2, mac) {
		t.Error("stale version accepted (replay)")
	}
}

func TestHashNodeDomainSeparation(t *testing.T) {
	m := NewMACEngine(testKey16)
	data := mkBlock(0)
	if m.HashNode(data, 0x80) == m.MAC(data, 0x80, 0) {
		t.Fatal("tree hash must not collide with version-0 data MAC")
	}
}

// Property: CTR and XTS round-trip for arbitrary blocks and addresses.
func TestRoundTripProperty(t *testing.T) {
	ctr := newCTR(t)
	xts := newXTS(t)
	f := func(seed [BlockBytes]byte, addrRaw uint32, counter uint16) bool {
		addr := uint64(addrRaw) &^ (BlockBytes - 1)
		pt := seed[:]
		if !bytes.Equal(ctr.Apply(addr, uint64(counter), ctr.Apply(addr, uint64(counter), pt)), pt) {
			return false
		}
		return bytes.Equal(xts.Decrypt(addr, xts.Encrypt(addr, pt)), pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MAC verification accepts the genuine triple and rejects any
// single-field perturbation.
func TestMACProperty(t *testing.T) {
	m := NewMACEngine(testKey32)
	f := func(seed [BlockBytes]byte, addrRaw uint32, ver uint16, flip uint16) bool {
		addr := uint64(addrRaw) &^ (BlockBytes - 1)
		mac := m.MAC(seed[:], addr, uint64(ver))
		if !m.Verify(seed[:], addr, uint64(ver), mac) {
			return false
		}
		mut := seed
		mut[flip%BlockBytes] ^= 1 << (flip % 8)
		if flip%8 == 0 && mut == seed { // degenerate: xor with 1 always changes, keep for clarity
			return true
		}
		return !m.Verify(mut[:], addr, uint64(ver), mac) &&
			!m.Verify(seed[:], addr+BlockBytes, uint64(ver), mac) &&
			!m.Verify(seed[:], addr, uint64(ver)+1, mac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMACStateReuse pins the reused-HMAC-state optimisation: an engine that
// has already produced MACs (interleaved with Verify and HashNode calls)
// returns byte-identical MACs to a freshly constructed engine for the same
// inputs, and calls are insensitive to their ordering.
func TestMACStateReuse(t *testing.T) {
	reused := NewMACEngine(testKey32)
	inputs := []struct {
		seed    byte
		addr, v uint64
	}{
		{1, 0x0, 0}, {2, 0x40, 7}, {3, 0x1000, 1 << 40}, {1, 0x0, 0},
		{9, 0xdeadbe00, ^uint64(0) - 1}, {2, 0x40, 7},
	}
	var first [][MACBytes]byte
	for _, in := range inputs {
		blk := mkBlock(in.seed)
		mac := reused.MAC(blk, in.addr, in.v)
		first = append(first, mac)
		if !reused.Verify(blk, in.addr, in.v, mac) {
			t.Fatalf("reused engine rejects its own MAC for seed %d", in.seed)
		}
		reused.HashNode(blk, in.addr) // interleave the other entry point
	}
	for i, in := range inputs {
		fresh := NewMACEngine(testKey32)
		if got := fresh.MAC(mkBlock(in.seed), in.addr, in.v); got != first[i] {
			t.Errorf("input %d: fresh engine MAC %x != reused engine MAC %x", i, got, first[i])
		}
		if got := reused.MAC(mkBlock(in.seed), in.addr, in.v); got != first[i] {
			t.Errorf("input %d: re-MAC on reused engine %x != first pass %x", i, got, first[i])
		}
	}
}
