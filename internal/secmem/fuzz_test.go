package secmem

import (
	"bytes"
	"testing"
)

// FuzzTreelessRoundTrip drives the protected-memory write/read path with
// arbitrary payloads, addresses, and versions: round trips must always
// succeed under the matching version and always fail under any other.
func FuzzTreelessRoundTrip(f *testing.F) {
	f.Add([]byte("seed payload"), uint16(3), uint64(1))
	f.Add([]byte{}, uint16(0), uint64(0))
	f.Add(bytes.Repeat([]byte{0xA5}, 200), uint16(9), uint64(1<<40))
	mem, err := NewTreelessMemory(testKey32, testKey16)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, payload []byte, addrRaw uint16, version uint64) {
		if len(payload) == 0 {
			return
		}
		addr := uint64(addrRaw) * BlockBytes
		mem.Write(addr, payload, version)
		got, err := mem.Read(addr, len(payload), version)
		if err != nil {
			t.Fatalf("read-your-write failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch")
		}
		if _, err := mem.Read(addr, len(payload), version+1); err == nil {
			t.Fatal("wrong version accepted")
		}
	})
}

// FuzzXTSRoundTrip checks the XTS implementation against arbitrary blocks.
func FuzzXTSRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"))
	e, err := NewXTSEngine(testKey32)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, addrRaw uint32, data []byte) {
		if len(data) < BlockBytes {
			return
		}
		block := data[:BlockBytes]
		addr := uint64(addrRaw) &^ (BlockBytes - 1)
		ct := e.Encrypt(addr, block)
		if bytes.Equal(ct, block) {
			// Astronomically unlikely for a correct cipher.
			t.Fatal("ciphertext equals plaintext")
		}
		if !bytes.Equal(e.Decrypt(addr, ct), block) {
			t.Fatal("round trip failed")
		}
	})
}
