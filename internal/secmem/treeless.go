package secmem

import (
	"fmt"
)

// snapshot is one block's externally visible state — what a physical
// attacker on the DRAM bus can observe and replace.
type snapshot struct {
	ct  [BlockBytes]byte
	mac [MACBytes]byte
}

// TreelessMemory is the functional model of the TNPU tree-less protected
// DRAM region: AES-XTS ciphertext plus an 8-byte versioned MAC per 64-byte
// block. There are no counters and no integrity tree; replay protection
// comes entirely from the version number the reader supplies, which lives
// in the fully protected enclave region (Sec. IV-C).
//
// The zero value is unusable; construct with NewTreelessMemory. Not safe
// for concurrent use: the hardware it models serializes block operations
// at the memory-controller security engine.
//
//tnpu:per-goroutine
type TreelessMemory struct {
	xts    *XTSEngine
	mac    *MACEngine
	blocks map[uint64]snapshot
}

// NewTreelessMemory creates a protected region using the given XTS key
// (32 or 64 bytes) and MAC key.
func NewTreelessMemory(xtsKey, macKey []byte) (*TreelessMemory, error) {
	xts, err := NewXTSEngine(xtsKey)
	if err != nil {
		return nil, err
	}
	return &TreelessMemory{
		xts:    xts,
		mac:    NewMACEngine(macKey),
		blocks: make(map[uint64]snapshot),
	}, nil
}

func checkAligned(addr uint64) {
	if addr%BlockBytes != 0 {
		panic(fmt.Sprintf("secmem: block address %#x not %dB aligned", addr, BlockBytes))
	}
}

// WriteBlock encrypts a 64-byte plaintext block and stores its ciphertext
// and version-keyed MAC, modelling the mvout path of Fig. 12(a).
func (m *TreelessMemory) WriteBlock(addr uint64, plaintext []byte, version uint64) {
	checkAligned(addr)
	if len(plaintext) != BlockBytes {
		panic(fmt.Sprintf("secmem: write block must be %dB, got %d", BlockBytes, len(plaintext)))
	}
	var s snapshot
	copy(s.ct[:], m.xts.Encrypt(addr, plaintext))
	s.mac = m.mac.MAC(s.ct[:], addr, version)
	m.blocks[addr] = s
}

// ReadBlock fetches, MAC-verifies (against the expected version) and
// decrypts a block, modelling the mvin path of Fig. 12(b). A missing block
// or any mismatch of (content, address, version) returns ErrIntegrity.
func (m *TreelessMemory) ReadBlock(addr, version uint64) ([]byte, error) {
	checkAligned(addr)
	s, ok := m.blocks[addr]
	if !ok {
		return nil, &IntegrityError{Addr: addr, Version: version, Reason: "missing block"}
	}
	if !m.mac.Verify(s.ct[:], addr, version, s.mac) {
		return nil, &IntegrityError{Addr: addr, Version: version, Reason: "MAC mismatch"}
	}
	return m.xts.Decrypt(addr, s.ct[:]), nil
}

// Write stores an arbitrary-length buffer starting at a block-aligned
// address, zero-padding the final partial block. All blocks carry the same
// version, as all blocks of a tensor/tile written by one mvout do.
func (m *TreelessMemory) Write(addr uint64, data []byte, version uint64) {
	checkAligned(addr)
	var block [BlockBytes]byte
	for off := 0; off < len(data); off += BlockBytes {
		n := copy(block[:], data[off:])
		for i := n; i < BlockBytes; i++ {
			block[i] = 0
		}
		m.WriteBlock(addr+uint64(off), block[:], version)
	}
}

// Read fetches size bytes starting at a block-aligned address, verifying
// every covered block against version.
func (m *TreelessMemory) Read(addr uint64, size int, version uint64) ([]byte, error) {
	checkAligned(addr)
	out := make([]byte, 0, size)
	for off := 0; off < size; off += BlockBytes {
		b, err := m.ReadBlock(addr+uint64(off), version)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out[:size], nil
}

// --- Physical-attacker surface (used by security tests and examples) ---

// Snapshot returns the raw ciphertext and MAC of a block as visible on the
// memory bus, and whether the block exists. This is what a bus-snooping
// attacker captures.
func (m *TreelessMemory) Snapshot(addr uint64) (ct [BlockBytes]byte, mac [MACBytes]byte, ok bool) {
	checkAligned(addr)
	s, ok := m.blocks[addr]
	return s.ct, s.mac, ok
}

// Restore overwrites a block's raw ciphertext and MAC — a replay attack
// replacing current data with a previously captured snapshot.
func (m *TreelessMemory) Restore(addr uint64, ct [BlockBytes]byte, mac [MACBytes]byte) {
	checkAligned(addr)
	m.blocks[addr] = snapshot{ct: ct, mac: mac}
}

// Corrupt flips a single bit of a block's stored ciphertext — a tampering
// attack on DRAM contents. Targeting an absent block returns
// ErrAbsentBlock.
func (m *TreelessMemory) Corrupt(addr uint64, bit uint) error {
	checkAligned(addr)
	s, ok := m.blocks[addr]
	if !ok {
		return fmt.Errorf("%w: corrupt of %#x", ErrAbsentBlock, addr)
	}
	s.ct[bit/8%BlockBytes] ^= 1 << (bit % 8)
	m.blocks[addr] = s
	return nil
}

// CorruptMAC flips a single bit of a block's stored MAC — tampering with
// the integrity metadata itself rather than the ciphertext.
func (m *TreelessMemory) CorruptMAC(addr uint64, bit uint) error {
	checkAligned(addr)
	s, ok := m.blocks[addr]
	if !ok {
		return fmt.Errorf("%w: corrupt-mac of %#x", ErrAbsentBlock, addr)
	}
	s.mac[bit/8%MACBytes] ^= 1 << (bit % 8)
	m.blocks[addr] = s
	return nil
}

// Relocate copies the raw (ciphertext, MAC) of src over dst — a splicing
// attack moving valid data to a different address. Relocating an absent
// block returns ErrAbsentBlock.
func (m *TreelessMemory) Relocate(src, dst uint64) error {
	checkAligned(src)
	checkAligned(dst)
	s, ok := m.blocks[src]
	if !ok {
		return fmt.Errorf("%w: relocate of %#x", ErrAbsentBlock, src)
	}
	m.blocks[dst] = s
	return nil
}

// Blocks returns the number of resident blocks (for tests).
func (m *TreelessMemory) Blocks() int { return len(m.blocks) }
