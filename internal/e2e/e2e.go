// Package e2e models the end-to-end latency of Sec. V-D: from the arrival
// of (already securely transferred) sensor data to the return of the
// inference result to the CPU enclave. On top of the NPU execution itself
// it charges the CPU-side phases that also cross the protected memory:
//
//  1. initialization — the enclave streams model parameters and the input
//     into the NPU region through the uncached ts_write_block path
//     (Sec. IV-C), block by block under fresh versions;
//  2. NPU inference — the compiled trace on the simulator;
//  3. output return — the enclave reads the result tensor back through
//     ts_read_block.
//
// The paper evaluates conservatively with the parameter load charged to a
// single request; Amortized reports the recurring part (input + inference
// + output) for the many-requests-per-loaded-model case the paper
// discusses.
package e2e

import (
	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
	"tnpu/internal/stats"
)

// Result breaks the end-to-end latency into its phases.
type Result struct {
	Scheme memprot.Scheme
	// InitCycles covers the parameter + input ts_write streaming.
	InitCycles uint64
	// RunCycles is the NPU inference span (end of init to last retire).
	RunCycles uint64
	// OutputCycles covers the CPU reading back the result tensor.
	OutputCycles uint64
	// Total is the full sensor-to-result latency.
	Total   uint64
	Traffic stats.Traffic
}

// Amortized is the steady-state per-request latency once parameters are
// resident (init paid once across many requests).
func (r Result) Amortized() uint64 { return r.RunCycles + r.OutputCycles }

// isParameter aliases the compiler's naming convention for the data the
// CPU initializes (shared with internal/core and internal/attack).
func isParameter(name string) bool { return compiler.IsParameter(name) }

// Run executes the full end-to-end flow for one request on one NPU.
func Run(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
	if err != nil {
		return Result{}, err
	}
	res := Result{Scheme: scheme}

	// Phase 1: the CPU streams parameters through ts_write_block. One
	// version-table update per tensor, then block-granular writes.
	var t uint64
	for _, ten := range prog.Tensors {
		if !isParameter(ten.Name) {
			continue
		}
		t = eng.VersionFetch(t, memprot.VTableSlot(uint32(ten.ID), 0), true)
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			busFree, _ := eng.WriteBlock(t, ten.Addr+blk*dram.BlockBytes, 1)
			t = busFree
		}
	}
	res.InitCycles = t

	// Phase 2: NPU inference. The machine's requests queue behind the
	// initialization traffic on the shared bus.
	m := npu.NewMachine(prog, eng)
	m.Run()
	runEnd := m.Cycles()
	if runEnd < res.InitCycles {
		runEnd = res.InitCycles
	}
	res.RunCycles = runEnd - res.InitCycles

	// Phase 3: the CPU fetches the final output tensor via ts_read_block.
	out := prog.Tensors[len(prog.Tensors)-1]
	issue := eng.VersionFetch(runEnd, memprot.VTableSlot(uint32(out.ID), 0), false)
	done := issue
	for blk := uint64(0); blk < out.Blocks(); blk++ {
		busFree, dataAt := eng.ReadBlock(issue, out.Addr+blk*dram.BlockBytes, 1)
		issue = busFree
		if dataAt > done {
			done = dataAt
		}
	}
	res.OutputCycles = done - runEnd
	res.Total = done
	t = done
	eng.Flush(t)
	res.Traffic = *eng.Traffic()
	return res, nil
}
