package e2e

import (
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/npu"
)

func compileFor(t *testing.T, short string, cfg npu.Config) *compiler.Program {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(m, cfg.CompilerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPhasesAddUp(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	r, err := Run(prog, memprot.TreeLess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InitCycles == 0 || r.RunCycles == 0 || r.OutputCycles == 0 {
		t.Fatalf("empty phase: %+v", r)
	}
	if r.Total != r.InitCycles+r.RunCycles+r.OutputCycles {
		t.Fatalf("phases don't add up: %+v", r)
	}
	if r.Amortized() != r.RunCycles+r.OutputCycles {
		t.Fatal("amortized latency wrong")
	}
}

func TestInitCoversParameters(t *testing.T) {
	// The init phase must stream at least the parameter bytes.
	cfg := npu.SmallNPU()
	m, _ := model.ByShort("alex")
	prog := compileFor(t, "alex", cfg)
	r, err := Run(prog, memprot.Unsecure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := npu.SmallNPU().Mem
	minCycles := m.WeightBytes() * bus.FreqHz / bus.BandwidthBytesPerSec
	if r.InitCycles < minCycles {
		t.Errorf("init %d cycles below bandwidth bound %d", r.InitCycles, minCycles)
	}
}

func TestEndToEndOrdering(t *testing.T) {
	// Fig. 17: unsecure < tnpu < baseline end-to-end.
	cfg := npu.SmallNPU()
	for _, short := range []string{"goo", "sent", "res"} {
		prog := compileFor(t, short, cfg)
		var totals [3]uint64
		for i, s := range memprot.Schemes() {
			r, err := Run(prog, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			totals[i] = r.Total
		}
		if !(totals[0] < totals[2] && totals[2] < totals[1]) {
			t.Errorf("%s: e2e ordering violated: %v", short, totals)
		}
	}
}

func TestEndToEndOverheadBelowNPUOnly(t *testing.T) {
	// The paper's observation: end-to-end overheads (14.1% baseline /
	// 6.4% TNPU) are lower than NPU-only overheads because the
	// initialization streaming is comparatively protection-friendly.
	cfg := npu.SmallNPU()
	prog := compileFor(t, "sent", cfg)

	npuOnly := func(s memprot.Scheme) float64 {
		r, _ := npu.Run(prog, s, cfg)
		return float64(r.Cycles)
	}
	e2eTotal := func(s memprot.Scheme) float64 {
		r, _ := Run(prog, s, cfg)
		return float64(r.Total)
	}
	npuOver := npuOnly(memprot.Baseline) / npuOnly(memprot.Unsecure)
	e2eOver := e2eTotal(memprot.Baseline) / e2eTotal(memprot.Unsecure)
	if e2eOver >= npuOver {
		t.Errorf("e2e overhead %.3f not below NPU-only %.3f", e2eOver, npuOver)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := npu.LargeNPU()
	prog := compileFor(t, "agz", cfg)
	a, _ := Run(prog, memprot.Baseline, cfg)
	b, _ := Run(prog, memprot.Baseline, cfg)
	if a.Total != b.Total {
		t.Error("e2e run not deterministic")
	}
}

func TestBadConfig(t *testing.T) {
	prog := compileFor(t, "df", npu.SmallNPU())
	bad := npu.SmallNPU()
	bad.Mem.BandwidthBytesPerSec = 0
	if _, err := Run(prog, memprot.Unsecure, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestTrafficIncludesInit(t *testing.T) {
	cfg := npu.SmallNPU()
	m, _ := model.ByShort("df")
	prog := compileFor(t, "df", cfg)
	rE2E, _ := Run(prog, memprot.Unsecure, cfg)
	rNPU, _ := npu.Run(prog, memprot.Unsecure, cfg)
	extra := rE2E.Traffic.Total() - rNPU.Traffic.Total()
	if extra < m.WeightBytes() {
		t.Errorf("e2e extra traffic %d below parameter bytes %d", extra, m.WeightBytes())
	}
}
