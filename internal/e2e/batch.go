package e2e

import (
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
	"tnpu/internal/stats"
)

// BatchResult summarizes a steady-state inference service: the paper notes
// that a loaded model serves many requests, amortizing the parameter
// initialization (Sec. V-D). RunBatch loads parameters once and then
// serves `requests` back-to-back inferences, each with a fresh input
// (streamed through ts_write under a bumped version) and an output read.
type BatchResult struct {
	Scheme   memprot.Scheme
	Requests int
	// InitCycles is the one-time parameter load.
	InitCycles uint64
	// TotalCycles is the full span including init.
	TotalCycles uint64
	// PerRequestCycles is the steady-state amortized latency.
	PerRequestCycles uint64
	Traffic          stats.Traffic
}

// Throughput returns inferences per second at the given clock.
func (r BatchResult) Throughput(freqHz uint64) float64 {
	if r.PerRequestCycles == 0 {
		return 0
	}
	return float64(freqHz) / float64(r.PerRequestCycles)
}

// RunBatch serves `requests` inferences on one NPU with parameters loaded
// once.
func RunBatch(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config, requests int) (BatchResult, error) {
	if requests <= 0 {
		return BatchResult{}, fmt.Errorf("e2e: requests must be positive, got %d", requests)
	}
	if err := cfg.Validate(); err != nil {
		return BatchResult{}, err
	}
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
	if err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Scheme: scheme, Requests: requests}

	// One-time parameter load (weights only; the input reloads per
	// request below).
	var t uint64
	for _, ten := range prog.Tensors {
		if !compiler.IsWeight(ten.Name) {
			continue
		}
		t = eng.VersionFetch(t, memprot.VTableSlot(uint32(ten.ID), 0), true)
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			busFree, _ := eng.WriteBlock(t, ten.Addr+blk*dram.BlockBytes, 1)
			t = busFree
		}
	}
	res.InitCycles = t

	input := prog.Tensors[0]
	out := prog.Tensors[len(prog.Tensors)-1]
	end := t
	for req := 0; req < requests; req++ {
		// Fresh input for this request. The real software bumps the input
		// version per request; the trace's embedded version-1 reads model
		// the per-request state equivalently because each request's
		// machine is independent.
		issue := eng.VersionFetch(end, memprot.VTableSlot(uint32(input.ID), 0), true)
		for blk := uint64(0); blk < input.Blocks(); blk++ {
			busFree, _ := eng.WriteBlock(issue, input.Addr+blk*dram.BlockBytes, 1)
			issue = busFree
		}
		m := npu.NewMachine(prog, eng)
		m.Run()
		runEnd := m.Cycles()
		if runEnd < issue {
			runEnd = issue
		}
		issue = eng.VersionFetch(runEnd, memprot.VTableSlot(uint32(out.ID), 0), false)
		done := issue
		for blk := uint64(0); blk < out.Blocks(); blk++ {
			busFree, dataAt := eng.ReadBlock(issue, out.Addr+blk*dram.BlockBytes, 1)
			issue = busFree
			if dataAt > done {
				done = dataAt
			}
		}
		end = done
	}
	res.TotalCycles = end
	res.PerRequestCycles = (end - res.InitCycles) / uint64(requests)
	eng.Flush(end)
	res.Traffic = *eng.Traffic()
	return res, nil
}
