package e2e

import (
	"testing"

	"tnpu/internal/memprot"
	"tnpu/internal/npu"
)

func TestBatchAmortizesInit(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	one, err := RunBatch(prog, memprot.TreeLess, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunBatch(prog, memprot.TreeLess, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if many.InitCycles != one.InitCycles {
		t.Errorf("init should be identical: %d vs %d", many.InitCycles, one.InitCycles)
	}
	// Total-per-request including init shrinks toward the steady state.
	perReqOne := one.TotalCycles
	perReqMany := many.TotalCycles / 8
	if perReqMany >= perReqOne {
		t.Errorf("amortization missing: 1-req %d vs per-req-of-8 %d", perReqOne, perReqMany)
	}
	if many.PerRequestCycles == 0 || many.Requests != 8 {
		t.Fatalf("bad result: %+v", many)
	}
}

func TestBatchSteadyStateOverheadBelowColdStart(t *testing.T) {
	// The paper's amortization argument: the steady-state TNPU overhead
	// (init excluded) matches the NPU-only figure, below the cold-start
	// end-to-end number.
	cfg := npu.SmallNPU()
	prog := compileFor(t, "alex", cfg)
	over := func(s memprot.Scheme) float64 {
		u, err := RunBatch(prog, memprot.Unsecure, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		v, err := RunBatch(prog, s, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		return float64(v.PerRequestCycles) / float64(u.PerRequestCycles)
	}
	base := over(memprot.Baseline)
	tl := over(memprot.TreeLess)
	if !(1 < tl && tl < base) {
		t.Errorf("steady-state ordering violated: tnpu=%.3f baseline=%.3f", tl, base)
	}
}

func TestBatchThroughput(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	r, err := RunBatch(prog, memprot.TreeLess, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	tput := r.Throughput(cfg.Mem.FreqHz)
	if tput <= 0 || tput > 1e6 {
		t.Errorf("implausible throughput %v inf/s", tput)
	}
	if (BatchResult{}).Throughput(1e9) != 0 {
		t.Error("zero result should give zero throughput")
	}
}

func TestBatchErrors(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	if _, err := RunBatch(prog, memprot.Unsecure, cfg, 0); err == nil {
		t.Error("zero requests accepted")
	}
	bad := cfg
	bad.Mem.FreqHz = 0
	if _, err := RunBatch(prog, memprot.Unsecure, bad, 1); err == nil {
		t.Error("bad config accepted")
	}
}
