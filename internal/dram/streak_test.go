package dram

import (
	"math/rand"
	"testing"
)

// refChargeData is the per-block reference a RunCursor data charge stands
// in for: one transfer at the issue time, noted in the window.
func refChargeData(b *Bus, w *IssueWindow, r, addr uint64) (busFree, nextR uint64) {
	busFree = b.TransferAt(r, addr, BlockBytes)
	gate := w.Note(busFree)
	nextR = r + 1
	if gate > nextR {
		nextR = gate
	}
	return busFree, nextR
}

// TestRunCursorMatchesReference drives random mixed charge sequences —
// window-gated data blocks, data spans, and metadata charges presented at
// the current issue time — through a RunCursor on one bus and the per-block
// reference on a twin, interleaved with loose transfers between runs to
// perturb remainders, gaps, and window state. After every Commit the two
// buses and issue windows must agree exactly, as must every returned time.
func TestRunCursorMatchesReference(t *testing.T) {
	awkwardCfg := Config{FreqHz: 3_000_000_000, BandwidthBytesPerSec: 7_000_000_000, LatencyCycles: 10}
	for ci, cfg := range []Config{smallCfg, largeCfg, awkwardCfg} {
		rng := rand.New(rand.NewSource(int64(ci) + 7))
		fast := NewBus(cfg)
		ref := NewBus(cfg)
		wFast := NewIssueWindow(16)
		wRef := NewIssueWindow(16)
		var clock uint64
		runs := 0
		for step := 0; step < 300; step++ {
			clock += uint64(rng.Intn(400))
			if rng.Intn(3) == 0 { // loose transfer: open gaps, shift remainders
				addr := uint64(rng.Intn(1 << 20))
				bytes := uint64(rng.Intn(700))
				fast.TransferAt(clock, addr, bytes)
				ref.TransferAt(clock, addr, bytes)
				continue
			}
			var cur RunCursor
			budget := 1 + rng.Intn(200)
			if !fast.BeginRun(&cur, wFast, clock, budget) {
				continue
			}
			runs++
			rF, rR := clock, clock
			addr := uint64(rng.Intn(1<<20)) &^ (BlockBytes - 1)
			left := budget
			for left > 0 {
				switch rng.Intn(3) {
				case 0: // single gated data block
					fFree, fNext := cur.ChargeData(wFast, rF)
					rFree, rNext := refChargeData(ref, wRef, rR, addr)
					if fFree != rFree || fNext != rNext {
						t.Fatalf("cfg %d step %d: ChargeData = (%d,%d), ref (%d,%d)", ci, step, fFree, fNext, rFree, rNext)
					}
					rF, rR = fNext, rNext
					left--
				case 1: // metadata charge(s) at the current issue time
					k := 1 + rng.Intn(minTest(3, left))
					fAt := cur.Charge(k)
					var rAt uint64
					for j := 0; j < k; j++ {
						rAt = ref.TransferAt(rR, addr, BlockBytes)
					}
					if fAt != rAt {
						t.Fatalf("cfg %d step %d: Charge(%d) = %d, ref %d", ci, step, k, fAt, rAt)
					}
					left -= k
				default: // data span crossing prologue/short/long regimes
					k := 1 + rng.Intn(minTest(40, left))
					fFree, fIssue, fNext := cur.ChargeDataSpan(wFast, rF, k)
					var rFree, rIssue uint64
					for j := 0; j < k; j++ {
						rIssue = rR
						rFree, rR = refChargeData(ref, wRef, rR, addr)
					}
					if fFree != rFree || fIssue != rIssue || fNext != rR {
						t.Fatalf("cfg %d step %d: ChargeDataSpan(%d) = (%d,%d,%d), ref (%d,%d,%d)",
							ci, step, k, fFree, fIssue, fNext, rFree, rIssue, rR)
					}
					rF = fNext
					left -= k
				}
				addr += BlockBytes
			}
			if got := cur.Horizon(); got != ref.chans[0].busyUntil {
				t.Fatalf("cfg %d step %d: Horizon = %d, ref busyUntil %d", ci, step, got, ref.chans[0].busyUntil)
			}
			cur.Commit()
			if !equalStates(snapshot(fast), snapshot(ref)) {
				t.Fatalf("cfg %d step %d: bus state diverged after Commit:\nfast: %+v\nref:  %+v",
					ci, step, snapshot(fast), snapshot(ref))
			}
			if wFast.idx != wRef.idx {
				t.Fatalf("cfg %d step %d: window idx diverged", ci, step)
			}
			for i := range wFast.slots {
				if wFast.slots[i] != wRef.slots[i] {
					t.Fatalf("cfg %d step %d: window slot %d diverged: %d vs %d", ci, step, i, wFast.slots[i], wRef.slots[i])
				}
			}
		}
		if runs == 0 {
			t.Fatalf("cfg %d: BeginRun never succeeded; test exercised nothing", ci)
		}
	}
}

// TestRunCursorGapAtBegin pins the one gap a committed run may record: the
// idle window between the channel horizon and a later ready time, exactly
// as the reference's first transfer records it.
func TestRunCursorGapAtBegin(t *testing.T) {
	fast := NewBus(smallCfg)
	ref := NewBus(smallCfg)
	wF := NewIssueWindow(16)
	wR := NewIssueWindow(16)
	fast.TransferAt(0, 0, 64)
	ref.TransferAt(0, 0, 64)
	var cur RunCursor
	ready := uint64(10_000) // far past the horizon: the run opens on a gap
	if !fast.BeginRun(&cur, wF, ready, 32) {
		t.Fatal("BeginRun rejected a plain idle bus")
	}
	rF, rR := ready, ready
	for i := 0; i < 20; i++ {
		_, rF = cur.ChargeData(wF, rF)
		_, rR = refChargeData(ref, wR, rR, uint64(i)*BlockBytes)
	}
	cur.Commit()
	if !equalStates(snapshot(fast), snapshot(ref)) {
		t.Fatalf("state diverged:\nfast: %+v\nref:  %+v", snapshot(fast), snapshot(ref))
	}
	// The recorded gap must be backfillable afterwards, same as the reference.
	if f, r := fast.TransferAt(20, 1<<19, 64), ref.TransferAt(20, 1<<19, 64); f != r {
		t.Fatalf("post-run backfill diverged: %d vs %d", f, r)
	}
	if !equalStates(snapshot(fast), snapshot(ref)) {
		t.Fatal("state diverged after backfill")
	}
}

// TestRunCursorEmptyCommit pins Commit as a strict no-op when nothing was
// charged: the reference would not have touched the bus, so neither may the
// cursor (no gap record, no horizon move).
func TestRunCursorEmptyCommit(t *testing.T) {
	bus := NewBus(smallCfg)
	w := NewIssueWindow(16)
	bus.TransferAt(0, 0, 64)
	before := snapshot(bus)
	var cur RunCursor
	if !bus.BeginRun(&cur, w, 5_000, 8) {
		t.Fatal("BeginRun rejected a plain idle bus")
	}
	cur.Commit()
	if !equalStates(before, snapshot(bus)) {
		t.Fatalf("empty Commit changed bus state:\nbefore: %+v\nafter:  %+v", before, snapshot(bus))
	}
}

// TestBeginRunRejections pins the gate conditions: multi-channel buses and
// windows holding in-flight completions past the start horizon must fall
// back to the per-block path.
func TestBeginRunRejections(t *testing.T) {
	var cur RunCursor
	multi := NewBus(cfgWithChannels(smallCfg, 2))
	if multi.BeginRun(&cur, NewIssueWindow(16), 0, 8) {
		t.Fatal("BeginRun accepted a multi-channel bus")
	}
	single := NewBus(smallCfg)
	w := NewIssueWindow(16)
	w.Note(1 << 40) // a slot far past any reachable horizon
	if single.BeginRun(&cur, w, 0, 8) {
		t.Fatal("BeginRun accepted a window slot past the start horizon")
	}
	if single.BeginRun(&cur, NewIssueWindow(16), 0, 0) {
		t.Fatal("BeginRun accepted a zero-block budget")
	}
}

func minTest(a, b int) int {
	if a < b {
		return a
	}
	return b
}
