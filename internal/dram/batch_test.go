package dram

import (
	"math/rand"
	"testing"
)

// busState snapshots every observable and internal field of a bus so the
// batched entry points can be checked for exact state equivalence against
// the per-block reference.
type busState struct {
	bytesMoved, busyCycles, now uint64
	chans                       []channel
}

func snapshot(b *Bus) busState {
	s := busState{bytesMoved: b.BytesMoved(), busyCycles: b.BusyCycles(), now: b.Now()}
	for i := range b.chans {
		c := b.chans[i]
		c.gaps = append([]gap(nil), c.gaps...)
		s.chans = append(s.chans, c)
	}
	return s
}

func equalStates(a, b busState) bool {
	if a.bytesMoved != b.bytesMoved || a.busyCycles != b.busyCycles || a.now != b.now || len(a.chans) != len(b.chans) {
		return false
	}
	for i := range a.chans {
		x, y := a.chans[i], b.chans[i]
		if x.num != y.num || x.den != y.den || x.busyUntil != y.busyUntil ||
			x.rem != y.rem || x.bytesMoved != y.bytesMoved || x.busyCycles != y.busyCycles {
			return false
		}
		if len(x.gaps) != len(y.gaps) {
			return false
		}
		for j := range x.gaps {
			if x.gaps[j] != y.gaps[j] {
				return false
			}
		}
	}
	return true
}

// refStreamRun is the literal per-block reference loop StreamRun documents.
func refStreamRun(b *Bus, ready, addr uint64, n int, w *IssueWindow) (nextReady, maxBusFree, lastIssue uint64) {
	r := ready
	for i := 0; i < n; i++ {
		busFree := b.TransferAt(r, addr+uint64(i)*BlockBytes, BlockBytes)
		if busFree > maxBusFree {
			maxBusFree = busFree
		}
		lastIssue = r
		gate := w.Note(busFree)
		r++
		if gate > r {
			r = gate
		}
	}
	return r, maxBusFree, lastIssue
}

// cfgWithChannels builds a test config with c channels.
func cfgWithChannels(base Config, c int) Config {
	base.Channels = c
	return base
}

// TestCyclesForBytesMultiChannel pins the fix for the multi-channel
// conversion bug: CyclesForBytes answers for the whole interface, so a
// 4-channel bus with the same aggregate bandwidth must report the same
// cost as a single-channel one (the old code used the per-channel rate,
// overstating the cost by the channel count).
func TestCyclesForBytesMultiChannel(t *testing.T) {
	single := NewBus(largeCfg)
	quad := NewBus(cfgWithChannels(largeCfg, 4))
	for _, bytes := range []uint64{0, 1, 21, 22, 64, 64 * 63, 1 << 20} {
		if got, want := quad.CyclesForBytes(bytes), single.CyclesForBytes(bytes); got != want {
			t.Errorf("CyclesForBytes(%d): 4-channel = %d, 1-channel = %d; aggregate bandwidth is identical", bytes, got, want)
		}
	}
	if c := quad.CyclesForBytes(64); c != 3 { // ceil(64/22), not ceil(64/5.5)
		t.Errorf("4-channel CyclesForBytes(64) = %d, want 3", c)
	}
}

// TestIssueWindow pins the ring semantics: Note returns the clear time of
// the request issued depth ago, zero while filling.
func TestIssueWindow(t *testing.T) {
	w := NewIssueWindow(3)
	if w.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", w.Depth())
	}
	for i, in := range []uint64{10, 20, 30, 40, 50} {
		want := uint64(0)
		if i >= 2 {
			want = uint64(i-2+1) * 10 // clear time noted 3 calls ago... gate is slots[idx] after write
		}
		if got := w.Note(in); got != want {
			t.Errorf("Note #%d: gate = %d, want %d", i, got, want)
		}
	}
}

func TestIssueWindowBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for depth 0")
		}
	}()
	NewIssueWindow(0)
}

// TestStreamRunMatchesReference drives randomized interleavings of
// StreamRun and loose single transfers on twin buses — one using the
// batched entry, one the reference loop — and requires identical returned
// times and identical full bus state after every operation. Covers the
// closed form (long dense runs), every fallback (short runs, multi-channel,
// backfillable gaps), and window-state handoff between runs.
func TestStreamRunMatchesReference(t *testing.T) {
	for _, channels := range []int{1, 2, 4} {
		for _, cfg := range []Config{smallCfg, largeCfg} {
			cfg := cfgWithChannels(cfg, channels)
			rng := rand.New(rand.NewSource(int64(channels)*1000 + int64(cfg.FreqHz%997)))
			fast := NewBus(cfg)
			ref := NewBus(cfg)
			wFast := NewIssueWindow(16)
			wRef := NewIssueWindow(16)
			var clock uint64
			for step := 0; step < 400; step++ {
				clock += uint64(rng.Intn(200))
				switch rng.Intn(4) {
				case 0: // loose transfer to open gaps / perturb remainders
					addr := uint64(rng.Intn(1 << 20))
					bytes := uint64(rng.Intn(500))
					fast.TransferAt(clock, addr, bytes)
					ref.TransferAt(clock, addr, bytes)
				default: // streamed run, length spanning both regimes
					addr := uint64(rng.Intn(1<<20)) &^ (BlockBytes - 1)
					n := 1 + rng.Intn(120)
					fn, fm, fl := fast.StreamRun(clock, addr, n, wFast)
					rn, rm, rl := refStreamRun(ref, clock, addr, n, wRef)
					if fn != rn || fm != rm || fl != rl {
						t.Fatalf("step %d (ch=%d n=%d): StreamRun = (%d,%d,%d), reference = (%d,%d,%d)",
							step, channels, n, fn, fm, fl, rn, rm, rl)
					}
				}
				if !equalStates(snapshot(fast), snapshot(ref)) {
					t.Fatalf("step %d (ch=%d): bus state diverged:\nfast: %+v\nref:  %+v",
						step, channels, snapshot(fast), snapshot(ref))
				}
				for i := range wFast.slots {
					if wFast.slots[i] != wRef.slots[i] || wFast.idx != wRef.idx {
						t.Fatalf("step %d: issue window diverged: %+v vs %+v", step, wFast, wRef)
					}
				}
			}
		}
	}
}

// TestTransferRunAtMatchesReference checks the same-ready batched entry
// against nBlocks individual TransferAt calls, over random gap patterns
// and channel counts.
func TestTransferRunAtMatchesReference(t *testing.T) {
	for _, channels := range []int{1, 2, 3, 4} {
		cfg := cfgWithChannels(smallCfg, channels)
		rng := rand.New(rand.NewSource(int64(channels)))
		fast := NewBus(cfg)
		ref := NewBus(cfg)
		var clock uint64
		for step := 0; step < 300; step++ {
			clock += uint64(rng.Intn(300))
			if rng.Intn(3) == 0 {
				addr := uint64(rng.Intn(1 << 20))
				bytes := uint64(rng.Intn(1000))
				fast.TransferAt(clock, addr, bytes)
				ref.TransferAt(clock, addr, bytes)
				continue
			}
			addr := uint64(rng.Intn(1<<20)) &^ (BlockBytes - 1)
			n := 1 + rng.Intn(100)
			fd := fast.TransferRunAt(clock, addr, n)
			var rd uint64
			for i := 0; i < n; i++ {
				rd = ref.TransferAt(clock, addr+uint64(i)*BlockBytes, BlockBytes)
			}
			if fd != rd {
				t.Fatalf("step %d (ch=%d n=%d): done = %d, reference = %d", step, channels, n, fd, rd)
			}
			if !equalStates(snapshot(fast), snapshot(ref)) {
				t.Fatalf("step %d (ch=%d): bus state diverged", step, channels)
			}
		}
	}
}

// TestBatchRemainderCarry pins the telescoping identity directly: a long
// batched run must leave the channel with exactly the remainder and busy
// cycles that per-block service accumulates, on a rate whose per-block cost
// is fractional (small config: 64B = 16 cycles exactly, so use 7 bytes per
// 3 cycles to exercise the remainder).
func TestBatchRemainderCarry(t *testing.T) {
	cfg := Config{FreqHz: 3_000_000_000, BandwidthBytesPerSec: 7_000_000_000, LatencyCycles: 0}
	fast := NewBus(cfg)
	ref := NewBus(cfg)
	// Prime a nonzero starting remainder on both.
	fast.Transfer(0, 5)
	ref.Transfer(0, 5)
	const n = 1000
	w1, w2 := NewIssueWindow(16), NewIssueWindow(16)
	fast.StreamRun(0, 0, n, w1)
	refStreamRun(ref, 0, 0, n, w2)
	if fast.chans[0].rem != ref.chans[0].rem {
		t.Errorf("remainder after batched run = %d, per-block = %d", fast.chans[0].rem, ref.chans[0].rem)
	}
	if fast.BusyCycles() != ref.BusyCycles() {
		t.Errorf("busy cycles = %d, per-block = %d", fast.BusyCycles(), ref.BusyCycles())
	}
	if fast.Now() != ref.Now() {
		t.Errorf("horizon = %d, per-block = %d", fast.Now(), ref.Now())
	}
}

// TestBatchGapHandling pins two gap behaviours of the closed form: a run
// that could backfill a remembered gap must fall back (and split the gap
// exactly as per-block service does), and a run starting beyond the horizon
// records the skipped idle window as a new gap — including when the gap
// list is at capacity and the oldest entry must be evicted.
func TestBatchGapHandling(t *testing.T) {
	mk := func() (*Bus, *Bus, *IssueWindow, *IssueWindow) {
		return NewBus(smallCfg), NewBus(smallCfg), NewIssueWindow(16), NewIssueWindow(16)
	}

	t.Run("backfillable-gap-falls-back", func(t *testing.T) {
		fast, ref, w1, w2 := mk()
		for _, b := range []*Bus{fast, ref} {
			b.Transfer(0, 64)    // busy [0,16)
			b.Transfer(5000, 64) // gap [16,5000)
		}
		// Ready inside the gap: blocks must backfill it, so the closed form
		// is invalid and both paths must still agree exactly.
		fn, fm, fl := fast.StreamRun(100, 0, 40, w1)
		rn, rm, rl := refStreamRun(ref, 100, 0, 40, w2)
		if fn != rn || fm != rm || fl != rl || !equalStates(snapshot(fast), snapshot(ref)) {
			t.Fatalf("gap backfill run diverged: (%d,%d,%d) vs (%d,%d,%d)", fn, fm, fl, rn, rm, rl)
		}
	})

	t.Run("new-gap-at-capacity", func(t *testing.T) {
		fast, ref, w1, w2 := mk()
		// Fill the gap list to maxGaps with unusably small (1-cycle) gaps:
		// each pair of transfers leaves a gap too short for a 16-cycle block.
		for _, b := range []*Bus{fast, ref} {
			var at uint64
			for i := 0; i < maxGaps; i++ {
				at = b.Now() + 1 // leave exactly one idle cycle
				b.Transfer(at, 64)
			}
			if got := len(b.chans[0].gaps); got != maxGaps {
				t.Fatalf("setup: gap list has %d entries, want %d", got, maxGaps)
			}
		}
		// A far-future run must evict the oldest gap to record the new one,
		// identically on both paths.
		start := fast.Now() + 10_000
		fast.StreamRun(start, 0, 50, w1)
		refStreamRun(ref, start, 0, 50, w2)
		if !equalStates(snapshot(fast), snapshot(ref)) {
			t.Fatal("gap eviction at capacity diverged between batched and per-block paths")
		}
		gaps := fast.chans[0].gaps
		if len(gaps) != maxGaps {
			t.Fatalf("gap list has %d entries after eviction, want %d", len(gaps), maxGaps)
		}
		if last := gaps[len(gaps)-1]; last.end != start {
			t.Errorf("newest gap ends at %d, want run start %d", last.end, start)
		}
	})
}
