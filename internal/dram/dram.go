// Package dram models the off-chip memory interface as the paper does
// (Sec. V-A): a simple bandwidth-capped bus with a fixed access latency
// (100 cycles, after NeuMMU). The bus is the shared, serializing resource:
// every 64B beat — tensor data or security metadata — occupies it for
// bytes/bandwidth cycles, so metadata traffic directly steals bandwidth
// from tensor transfers. Multiple NPUs share one Bus, which yields the
// round-robin bandwidth sharing used in the scalability study (Sec. V-C).
package dram

import (
	"fmt"
)

// BlockBytes is the memory block (cache line) granularity used throughout
// the protection schemes: MACs, counters, and transfers are all managed in
// 64-byte units.
const BlockBytes = 64

// Config describes one memory interface.
type Config struct {
	// FreqHz is the clock the simulator counts cycles in (processor and
	// memory share a clock in the paper's Table II).
	FreqHz uint64
	// BandwidthBytesPerSec is the peak aggregate DRAM bandwidth.
	BandwidthBytesPerSec uint64
	// LatencyCycles is the fixed DRAM access latency applied to the first
	// beat of a transfer and to serialized metadata fetches.
	LatencyCycles uint64
	// Channels splits the bandwidth across independent channels with
	// block-interleaved addressing (Table II lists 4). The default (0/1)
	// models the aggregate as one bus — a good approximation for
	// streaming; >1 lets metadata fetches overlap data on other channels
	// and is exposed as an ablation.
	Channels int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.FreqHz == 0 || c.BandwidthBytesPerSec == 0 {
		return fmt.Errorf("dram: frequency and bandwidth must be positive, got %+v", c)
	}
	return nil
}

// CyclesPerByte returns the rational bus occupancy per byte (num/den).
func (c Config) CyclesPerByte() (num, den uint64) {
	g := gcd(c.FreqHz, c.BandwidthBytesPerSec)
	return c.FreqHz / g, c.BandwidthBytesPerSec / g
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Bus is a work-conserving memory bus. Callers present a ready time; the
// bus charges bytes at the configured bandwidth, serving at the earliest
// opportunity — including idle gaps left behind when a dependency chain
// (e.g. a serialized tree walk) arrived with a future ready time. The gap
// backfill models a memory controller whose request queue keeps the bus
// busy with other clients' requests during such stalls. Sub-cycle
// remainders are carried exactly so long streams are charged the true
// rational cost.
type Bus struct {
	latency uint64
	// aggNum/aggDen is the aggregate (whole-interface) cycles-per-byte
	// rational, before the bandwidth is split across channels.
	aggNum, aggDen uint64 //tnpu:canonskip derived from Config at construction, immutable
	chans          []channel
}

// channel is one independently scheduled slice of the bandwidth.
type channel struct {
	num, den   uint64
	busyUntil  uint64
	rem        uint64 // carried numerator remainder, < den
	bytesMoved uint64
	busyCycles uint64
	// gaps are idle [start,end) windows behind busyUntil, newest last,
	// bounded to keep Transfer O(1) amortized.
	gaps []gap
	// maxGapEnd is an upper bound on the end of every remembered gap
	// (never below the true maximum, so requests with ready >= maxGapEnd
	// can skip the gap scan: any such request starts at or after every
	// gap's end and cannot fit inside one).
	maxGapEnd uint64
}

type gap struct{ start, end uint64 }

// maxGaps bounds the remembered idle windows; older gaps are forgotten
// (slightly pessimistic, never optimistic).
const maxGaps = 64

// NewBus constructs a bus from cfg. It panics on invalid configuration
// because configs are compile-time constants in this simulator.
func NewBus(cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Channels
	if n < 1 {
		n = 1
	}
	num, den := cfg.CyclesPerByte()
	g := gcd(num*uint64(n), den)
	b := &Bus{latency: cfg.LatencyCycles, aggNum: num, aggDen: den, chans: make([]channel, n)}
	for i := range b.chans {
		// Each channel serves 1/n of the bandwidth: n x the cycles/byte.
		b.chans[i] = channel{num: num * uint64(n) / g, den: den / g}
	}
	return b
}

// route maps a block address to its interleaved channel.
func (b *Bus) route(addr uint64) *channel {
	return &b.chans[(addr/BlockBytes)%uint64(len(b.chans))]
}

// Latency returns the fixed DRAM access latency in cycles.
//
//tnpu:pure
func (b *Bus) Latency() uint64 { return b.latency }

// Transfer occupies the bus for bytes starting no earlier than ready, and
// returns the cycle at which the last byte has crossed the bus. It does NOT
// include DRAM access latency; callers add Latency() where an access is on
// a dependence chain (first beat of a read, serialized metadata fetch).
// Requests whose ready time precedes the bus horizon are backfilled into
// remembered idle gaps when they fit. Transfer serves from the channel
// owning address 0; multi-channel callers use TransferAt.
func (b *Bus) Transfer(ready, bytes uint64) (done uint64) {
	return b.chans[0].transfer(ready, bytes)
}

// TransferAt is the address-routed Transfer for multi-channel interfaces.
func (b *Bus) TransferAt(ready, addr, bytes uint64) (done uint64) {
	return b.route(addr).transfer(ready, bytes)
}

// ReadAt is the address-routed Read.
func (b *Bus) ReadAt(ready, addr, bytes uint64) (dataAt uint64) {
	return b.route(addr).transfer(ready, bytes) + b.latency
}

func (c *channel) transfer(ready, bytes uint64) (done uint64) {
	if bytes == 0 {
		// A zero-length transfer never occupies the bus: it completes at
		// ready without advancing the horizon, opening a phantom idle gap,
		// or disturbing the carried remainder.
		return ready
	}
	ticks := bytes*c.num + c.rem
	cycles := ticks / c.den
	c.rem = ticks % c.den
	c.bytesMoved += bytes
	c.busyCycles += cycles

	// Try to serve inside an idle gap. Skipped outright when ready is past
	// every gap's end — such a request starts after every gap closes and
	// cannot fit inside one (a zero-cycle transfer can still land exactly
	// at a gap's end, hence <=).
	if ready <= c.maxGapEnd {
		for i := range c.gaps {
			g := &c.gaps[i]
			start := ready
			if g.start > start {
				start = g.start
			}
			if start+cycles <= g.end {
				end := start + cycles
				switch {
				case start == g.start && end == g.end:
					c.gaps = append(c.gaps[:i], c.gaps[i+1:]...)
				case start == g.start:
					g.start = end
				case end == g.end:
					g.end = start
				default:
					// Split: keep the earlier half here, append the later.
					later := gap{end, g.end}
					g.end = start
					if len(c.gaps) < maxGaps {
						c.gaps = append(c.gaps, later)
					}
				}
				return end
			}
		}
	}

	start := ready
	if c.busyUntil > start {
		start = c.busyUntil
	} else if start > c.busyUntil {
		// Record the idle window we are skipping over.
		c.recordGap(c.busyUntil, start)
	}
	c.busyUntil = start + cycles
	return c.busyUntil
}

// recordGap remembers the idle window [start, end), evicting the oldest
// entry at capacity and maintaining the gap-end upper bound.
func (c *channel) recordGap(start, end uint64) {
	if len(c.gaps) == maxGaps {
		c.gaps = c.gaps[1:]
	}
	c.gaps = append(c.gaps, gap{start, end})
	if end > c.maxGapEnd {
		c.maxGapEnd = end
	}
}

// Read models a latency-bound read: the bus is occupied as in Transfer and
// the completion time additionally includes the DRAM access latency, i.e.
// when the data is usable by dependent work.
func (b *Bus) Read(ready, bytes uint64) (dataAt uint64) {
	return b.Transfer(ready, bytes) + b.latency
}

// Now returns the bus's latest channel horizon.
//
//tnpu:pure
func (b *Bus) Now() uint64 {
	var max uint64
	for i := range b.chans {
		if b.chans[i].busyUntil > max {
			max = b.chans[i].busyUntil
		}
	}
	return max
}

// BytesMoved returns the cumulative bytes served across channels.
func (b *Bus) BytesMoved() uint64 {
	var sum uint64
	for i := range b.chans {
		sum += b.chans[i].bytesMoved
	}
	return sum
}

// BusyCycles returns cycles the channels spent transferring.
func (b *Bus) BusyCycles() uint64 {
	var sum uint64
	for i := range b.chans {
		sum += b.chans[i].busyCycles
	}
	return sum
}

// Channels returns the channel count.
func (b *Bus) Channels() int { return len(b.chans) }

// Utilization returns busy/(horizon*channels), or 0 before any traffic.
func (b *Bus) Utilization() float64 {
	now := b.Now()
	if now == 0 {
		return 0
	}
	return float64(b.BusyCycles()) / (float64(now) * float64(len(b.chans)))
}

// CyclesForBytes returns the pure aggregate-bandwidth cost of moving
// bytes, rounded up, without touching bus state. It uses the whole
// interface's rate: on an n-channel bus each channel serves 1/n of the
// bandwidth, so quoting channel 0's per-channel rate would overstate the
// cost by a factor of n.
func (b *Bus) CyclesForBytes(bytes uint64) uint64 {
	return (bytes*b.aggNum + b.aggDen - 1) / b.aggDen
}

// WorstChannelCycles returns an upper bound on the bus cycles any one
// channel needs to move bytes, rounded up: the single-channel rate (n x
// the aggregate cycles/byte on an n-channel bus), as if every byte routed
// to the same channel. ok=false when the multiplication would overflow;
// callers treating this as a safety bound must then refuse the shortcut.
//
//tnpu:noalloc //tnpu:pure
func (b *Bus) WorstChannelCycles(bytes uint64) (cycles uint64, ok bool) {
	num, den := b.chans[0].num, b.chans[0].den
	if num != 0 && bytes > (1<<62)/num {
		return 0, false
	}
	return (bytes*num + den - 1) / den, true
}
