package dram

import (
	"path/filepath"
	"testing"

	"tnpu/internal/certcheck"
)

// TestCanonCertificatesMatchDRAM cross-checks the committed canoncover
// certification artifact against the live Bus and IssueWindow structs:
// new fields must be serialized by the canonical-state channels or carry
// a //tnpu:canonskip waiver, and the artifact must be regenerated.
func TestCanonCertificatesMatchDRAM(t *testing.T) {
	certs := certcheck.Load(t, filepath.Join("..", "..", "testdata", "canoncover.json"))
	certcheck.FieldsMatch(t, certs, "tnpu/internal/dram.Bus", Bus{})
	certcheck.FieldsMatch(t, certs, "tnpu/internal/dram.IssueWindow", IssueWindow{})
}
