package dram

import (
	"fmt"

	"tnpu/internal/canon"
)

// This file canonicalizes bus and issue-window state for layer-signature
// memoization (DESIGN.md §6e). All absolute cycle times are encoded relative
// to a caller-supplied base (the machine's DMA-ready time at the layer
// boundary) with wrapping subtraction: the simulation is time-shift
// invariant — every bus decision compares times or takes maxima — so two
// states that differ only by a uniform shift canonicalize identically and a
// memoized layer recorded at one absolute time replays exactly at another.

// AppendCanon appends the bus's behavioural state: configuration (latency,
// per-channel rate) plus every channel's horizon, carried remainder, and
// remembered idle gaps, base-relative. Byte/cycle accumulators are handled
// by AppendAccum/AddAccum.
func (b *Bus) AppendCanon(dst []byte, base uint64) []byte {
	dst = canon.AppendU64(dst, b.latency)
	dst = canon.AppendU64(dst, uint64(len(b.chans)))
	for i := range b.chans {
		c := &b.chans[i]
		dst = canon.AppendU64(dst, c.num)
		dst = canon.AppendU64(dst, c.den)
		dst = canon.AppendU64(dst, c.busyUntil-base)
		dst = canon.AppendU64(dst, c.rem)
		dst = canon.AppendU64(dst, c.maxGapEnd-base)
		dst = canon.AppendU64(dst, uint64(len(c.gaps)))
		for _, g := range c.gaps {
			dst = canon.AppendU64(dst, g.start-base)
			dst = canon.AppendU64(dst, g.end-base)
		}
	}
	return dst
}

// RestoreCanon rebuilds the bus's behavioural state from an AppendCanon
// blob, shifting times by base, and returns the remaining bytes. The
// receiver's configuration must match the blob's.
func (b *Bus) RestoreCanon(src []byte, base uint64) []byte {
	var lat, nch uint64
	lat, src = canon.U64(src)
	nch, src = canon.U64(src)
	if lat != b.latency || int(nch) != len(b.chans) {
		panic(fmt.Sprintf("dram: canon bus config (latency=%d chans=%d) does not match (latency=%d chans=%d)",
			lat, nch, b.latency, len(b.chans)))
	}
	for i := range b.chans {
		c := &b.chans[i]
		var num, den, v, ng uint64
		num, src = canon.U64(src)
		den, src = canon.U64(src)
		if num != c.num || den != c.den {
			panic(fmt.Sprintf("dram: canon channel rate %d/%d does not match %d/%d", num, den, c.num, c.den))
		}
		v, src = canon.U64(src)
		c.busyUntil = v + base
		c.rem, src = canon.U64(src)
		v, src = canon.U64(src)
		c.maxGapEnd = v + base
		ng, src = canon.U64(src)
		c.gaps = c.gaps[:0]
		for k := uint64(0); k < ng; k++ {
			var s, e uint64
			s, src = canon.U64(src)
			e, src = canon.U64(src)
			c.gaps = append(c.gaps, gap{s + base, e + base})
		}
	}
	return src
}

// AppendAccum appends the per-channel byte and busy-cycle accumulators.
func (b *Bus) AppendAccum(dst []byte) []byte {
	for i := range b.chans {
		dst = canon.AppendU64(dst, b.chans[i].bytesMoved)
		dst = canon.AppendU64(dst, b.chans[i].busyCycles)
	}
	return dst
}

// AddAccum adds an accumulator delta blob into the bus's counters and
// returns the remaining bytes.
func (b *Bus) AddAccum(src []byte) []byte {
	for i := range b.chans {
		var v uint64
		v, src = canon.U64(src)
		b.chans[i].bytesMoved += v
		v, src = canon.U64(src)
		b.chans[i].busyCycles += v
	}
	return src
}

// AppendCanon appends the window's slots base-relative in ring order from
// the cursor, so two windows holding the same outstanding clear times
// canonicalize identically regardless of cursor rotation.
func (w *IssueWindow) AppendCanon(dst []byte, base uint64) []byte {
	dst = canon.AppendU64(dst, uint64(len(w.slots)))
	pos := w.idx
	for range w.slots {
		dst = canon.AppendU64(dst, w.slots[pos]-base)
		pos++
		if pos == len(w.slots) {
			pos = 0
		}
	}
	return dst
}

// RestoreCanon rebuilds the window from an AppendCanon blob (cursor reset
// to zero — rotation is behaviourally irrelevant) and returns the rest.
func (w *IssueWindow) RestoreCanon(src []byte, base uint64) []byte {
	var depth uint64
	depth, src = canon.U64(src)
	if int(depth) != len(w.slots) {
		panic(fmt.Sprintf("dram: canon window depth %d does not match %d", depth, len(w.slots)))
	}
	w.idx = 0
	for i := range w.slots {
		var v uint64
		v, src = canon.U64(src)
		w.slots[i] = v + base
	}
	return src
}
