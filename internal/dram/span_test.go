package dram

import (
	"math/rand"
	"testing"
)

// TestSpanCursorMatchesReference drives random mixed charge sequences —
// data spans, periodic uniform stretches, and metadata charges presented at
// the current issue time — through a SpanCursor on one bus and the
// per-block reference on a twin. After every Commit the two buses and
// issue windows must agree exactly, as must every returned time. This is
// the pin for the O(1)-per-span deferral: the SpanCursor never writes the
// window during the run, so any bookkeeping error shows up as a diverged
// gate, horizon, or final ring.
func TestSpanCursorMatchesReference(t *testing.T) {
	awkwardCfg := Config{FreqHz: 3_000_000_000, BandwidthBytesPerSec: 7_000_000_000, LatencyCycles: 10}
	for ci, cfg := range []Config{smallCfg, largeCfg, awkwardCfg} {
		for _, depth := range []int{1, 2, 16} {
			rng := rand.New(rand.NewSource(int64(ci)*31 + int64(depth)))
			fast := NewBus(cfg)
			ref := NewBus(cfg)
			wFast := NewIssueWindow(depth)
			wRef := NewIssueWindow(depth)
			var clock uint64
			runs, periodics := 0, 0
			var sc SpanCursor
			for step := 0; step < 300; step++ {
				clock += uint64(rng.Intn(400))
				if rng.Intn(4) == 0 { // loose transfer: open gaps, shift remainders
					addr := uint64(rng.Intn(1 << 20))
					bytes := uint64(rng.Intn(700))
					fast.TransferAt(clock, addr, bytes)
					ref.TransferAt(clock, addr, bytes)
					continue
				}
				budget := 1 + rng.Intn(400)
				if !fast.BeginSpanRun(&sc, wFast, clock, budget) {
					continue
				}
				runs++
				rF, rR := clock, clock
				addr := uint64(rng.Intn(1<<20)) &^ (BlockBytes - 1)
				left := budget
				for left > 0 {
					switch rng.Intn(3) {
					case 0: // metadata charge(s) at the current issue time
						k := 1 + rng.Intn(minTest(3, left))
						fAt := sc.Meta(k)
						var rAt uint64
						for j := 0; j < k; j++ {
							rAt = ref.TransferAt(rR, addr, BlockBytes)
						}
						if fAt != rAt {
							t.Fatalf("cfg %d depth %d step %d: Meta(%d) = %d, ref %d", ci, depth, step, k, fAt, rAt)
						}
						left -= k
					case 1: // periodic uniform stretch [lead meta, m data, trail meta]
						m := 1 + rng.Intn(4)
						lead := rng.Intn(2)
						trail := rng.Intn(3)
						maxP := left / (m + lead + trail + 1)
						if maxP < 1 {
							continue
						}
						periods := 1 + rng.Intn(minTest(8, maxP))
						fFree, fIssue, fNext, ok := sc.DataPeriodic(rF, periods, m, lead, trail)
						if !ok {
							// Still in the window prologue; the fallback (plain
							// Data/Meta) is exercised by the other cases.
							continue
						}
						periodics++
						var rFree, rIssue uint64
						for p := 0; p < periods; p++ {
							for j := 0; j < lead; j++ {
								ref.TransferAt(rR, addr, BlockBytes)
							}
							for j := 0; j < m; j++ {
								rIssue = rR
								rFree, rR = refChargeData(ref, wRef, rR, addr)
							}
							for j := 0; j < trail; j++ {
								ref.TransferAt(rR, addr, BlockBytes)
							}
						}
						if fFree != rFree || fIssue != rIssue || fNext != rR {
							t.Fatalf("cfg %d depth %d step %d: DataPeriodic(%d,%d,%d,%d) = (%d,%d,%d), ref (%d,%d,%d)",
								ci, depth, step, periods, m, lead, trail, fFree, fIssue, fNext, rFree, rIssue, rR)
						}
						rF = fNext
						left -= periods * (m + lead + trail)
					default: // data span crossing prologue/short/long regimes
						k := 1 + rng.Intn(minTest(3*depth+4, left))
						fFree, fIssue, fNext := sc.Data(rF, k)
						var rFree, rIssue uint64
						for j := 0; j < k; j++ {
							rIssue = rR
							rFree, rR = refChargeData(ref, wRef, rR, addr)
						}
						if fFree != rFree || fIssue != rIssue || fNext != rR {
							t.Fatalf("cfg %d depth %d step %d: Data(%d) = (%d,%d,%d), ref (%d,%d,%d)",
								ci, depth, step, k, fFree, fIssue, fNext, rFree, rIssue, rR)
						}
						rF = fNext
						left -= k
					}
					addr += BlockBytes
				}
				if got := sc.Horizon(); got != ref.chans[0].busyUntil {
					t.Fatalf("cfg %d depth %d step %d: Horizon = %d, ref busyUntil %d", ci, depth, step, got, ref.chans[0].busyUntil)
				}
				sc.Commit()
				if !equalStates(snapshot(fast), snapshot(ref)) {
					t.Fatalf("cfg %d depth %d step %d: bus state diverged after Commit:\nfast: %+v\nref:  %+v",
						ci, depth, step, snapshot(fast), snapshot(ref))
				}
				if wFast.idx != wRef.idx {
					t.Fatalf("cfg %d depth %d step %d: window idx diverged: %d vs %d", ci, depth, step, wFast.idx, wRef.idx)
				}
				for i := range wFast.slots {
					if wFast.slots[i] != wRef.slots[i] {
						t.Fatalf("cfg %d depth %d step %d: window slot %d diverged: %d vs %d",
							ci, depth, step, i, wFast.slots[i], wRef.slots[i])
					}
				}
			}
			if runs == 0 {
				t.Fatalf("cfg %d depth %d: BeginSpanRun never succeeded; test exercised nothing", ci, depth)
			}
			if depth >= 2 && periodics == 0 {
				t.Fatalf("cfg %d depth %d: DataPeriodic never ran; test exercised nothing", ci, depth)
			}
		}
	}
}

// TestSpanCursorEmptyCommit pins Commit as a strict no-op when nothing was
// charged, matching RunCursor.
func TestSpanCursorEmptyCommit(t *testing.T) {
	bus := NewBus(smallCfg)
	w := NewIssueWindow(16)
	bus.TransferAt(0, 0, 64)
	before := snapshot(bus)
	var sc SpanCursor
	if !bus.BeginSpanRun(&sc, w, 5_000, 8) {
		t.Fatal("BeginSpanRun rejected a plain idle bus")
	}
	sc.Commit()
	if !equalStates(before, snapshot(bus)) {
		t.Fatalf("empty Commit changed bus state:\nbefore: %+v\nafter:  %+v", before, snapshot(bus))
	}
}

// TestSpanCursorShortRun pins the all-prologue regime: fewer data blocks
// than the window depth leave the ring exactly as the per-block loop would
// (written by the prologue itself, untouched by Commit).
func TestSpanCursorShortRun(t *testing.T) {
	fast := NewBus(smallCfg)
	ref := NewBus(smallCfg)
	wF := NewIssueWindow(16)
	wR := NewIssueWindow(16)
	var sc SpanCursor
	if !fast.BeginSpanRun(&sc, wF, 100, 32) {
		t.Fatal("BeginSpanRun rejected a plain idle bus")
	}
	rF, rR := uint64(100), uint64(100)
	_, _, rF = sc.Data(rF, 5)
	sc.Meta(2)
	for j := 0; j < 5; j++ {
		_, rR = refChargeData(ref, wR, rR, uint64(j)*BlockBytes)
	}
	ref.TransferAt(rR, 0, BlockBytes)
	ref.TransferAt(rR, 0, BlockBytes)
	_, _, rF = sc.Data(rF, 4)
	for j := 0; j < 4; j++ {
		_, rR = refChargeData(ref, wR, rR, uint64(j)*BlockBytes)
	}
	if rF != rR {
		t.Fatalf("issue time diverged: %d vs %d", rF, rR)
	}
	sc.Commit()
	if !equalStates(snapshot(fast), snapshot(ref)) {
		t.Fatalf("bus state diverged:\nfast: %+v\nref:  %+v", snapshot(fast), snapshot(ref))
	}
	if wF.idx != wR.idx {
		t.Fatalf("window idx diverged: %d vs %d", wF.idx, wR.idx)
	}
	for i := range wF.slots {
		if wF.slots[i] != wR.slots[i] {
			t.Fatalf("window slot %d diverged: %d vs %d", i, wF.slots[i], wR.slots[i])
		}
	}
}
