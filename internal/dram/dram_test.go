package dram

import (
	"testing"
	"testing/quick"
)

// smallCfg mirrors the paper's Small NPU memory interface: 2.75 GHz clock,
// 11 GB/s -> 4 bytes per cycle.
var smallCfg = Config{FreqHz: 2_750_000_000, BandwidthBytesPerSec: 11_000_000_000, LatencyCycles: 100}

// largeCfg mirrors the Large NPU: 1 GHz, 22 GB/s -> 22 bytes per cycle.
var largeCfg = Config{FreqHz: 1_000_000_000, BandwidthBytesPerSec: 22_000_000_000, LatencyCycles: 100}

func TestCyclesPerByte(t *testing.T) {
	num, den := smallCfg.CyclesPerByte()
	if num != 1 || den != 4 {
		t.Errorf("small cycles/byte = %d/%d, want 1/4", num, den)
	}
	num, den = largeCfg.CyclesPerByte()
	if num != 1 || den != 22 {
		t.Errorf("large cycles/byte = %d/%d, want 1/22", num, den)
	}
}

func TestValidate(t *testing.T) {
	if err := smallCfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
}

func TestNewBusPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus(Config{})
}

func TestTransferBandwidth(t *testing.T) {
	b := NewBus(smallCfg)
	// 64B at 4 B/cycle = 16 cycles.
	if done := b.Transfer(0, 64); done != 16 {
		t.Errorf("64B transfer done at %d, want 16", done)
	}
	// Back-to-back: next transfer starts at 16.
	if done := b.Transfer(0, 64); done != 32 {
		t.Errorf("second transfer done at %d, want 32", done)
	}
	// Idle gap honoured.
	if done := b.Transfer(100, 4); done != 101 {
		t.Errorf("gapped transfer done at %d, want 101", done)
	}
}

func TestReadAddsLatency(t *testing.T) {
	b := NewBus(smallCfg)
	if at := b.Read(0, 64); at != 116 {
		t.Errorf("read data available at %d, want 116", at)
	}
	// Bus itself is only occupied for the 16 transfer cycles.
	if b.Now() != 16 {
		t.Errorf("bus horizon = %d, want 16", b.Now())
	}
}

func TestSubCycleRemainderExact(t *testing.T) {
	b := NewBus(largeCfg) // 1/22 cycles per byte
	// 22 transfers of 64B = 1408 bytes = exactly 64 cycles; per-transfer
	// rounding must not accumulate error.
	var done uint64
	for i := 0; i < 22; i++ {
		done = b.Transfer(0, 64)
	}
	if done != 64 {
		t.Errorf("22x64B at 22B/cycle done at %d, want 64", done)
	}
}

func TestAccounting(t *testing.T) {
	b := NewBus(smallCfg)
	b.Transfer(0, 128)
	b.Transfer(1000, 64)
	if b.BytesMoved() != 192 {
		t.Errorf("bytes moved = %d, want 192", b.BytesMoved())
	}
	if b.BusyCycles() != 48 {
		t.Errorf("busy cycles = %d, want 48", b.BusyCycles())
	}
	if u := b.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization out of range: %v", u)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	b := NewBus(smallCfg)
	if b.Utilization() != 0 {
		t.Error("fresh bus should report zero utilization")
	}
}

func TestCyclesForBytes(t *testing.T) {
	b := NewBus(largeCfg)
	if c := b.CyclesForBytes(64); c != 3 { // 64/22 = 2.9 -> 3
		t.Errorf("CyclesForBytes(64) = %d, want 3", c)
	}
	if c := b.CyclesForBytes(0); c != 0 {
		t.Errorf("CyclesForBytes(0) = %d, want 0", c)
	}
}

// Property: a transfer never completes before its ready time plus its own
// bandwidth cost (gap backfill may complete it before LATER-ready
// requests, but never before it could physically start).
func TestCompletionBoundProperty(t *testing.T) {
	f := func(reqs []struct {
		Ready uint16
		Bytes uint16
	}) bool {
		b := NewBus(smallCfg)
		for _, r := range reqs {
			done := b.Transfer(uint64(r.Ready), uint64(r.Bytes))
			if done < uint64(r.Ready)+uint64(r.Bytes)/4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Gap backfill: a late-arriving request with an early ready time is served
// in an idle window instead of queueing at the horizon.
func TestGapBackfill(t *testing.T) {
	b := NewBus(smallCfg)
	b.Transfer(0, 64)    // busy [0,16)
	b.Transfer(1000, 64) // busy [1000,1016), gap [16,1000)
	if done := b.Transfer(20, 64); done != 36 {
		t.Errorf("backfilled transfer done at %d, want 36", done)
	}
	// The used part of the gap is gone; the rest remains usable.
	if done := b.Transfer(0, 64); done != 52 {
		t.Errorf("second backfill done at %d, want 52", done)
	}
}

// Property: total busy cycles equal the exact rational cost of total bytes
// within one cycle (remainder carrying loses nothing).
func TestExactBandwidthProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		b := NewBus(largeCfg)
		var total uint64
		for _, s := range sizes {
			b.Transfer(0, uint64(s))
			total += uint64(s)
		}
		exact := total / 22 // floor of total/22
		return b.BusyCycles() == exact || b.BusyCycles() == exact+1 || (total%22 != 0 && b.BusyCycles() == exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSharedBusSerializesClients(t *testing.T) {
	// Two logical clients interleaving: each gets roughly half the
	// effective bandwidth, i.e. completing 2x64B takes as long as a single
	// client moving 128B.
	b := NewBus(smallCfg)
	d1 := b.Transfer(0, 64) // client A
	d2 := b.Transfer(0, 64) // client B queued behind A
	if d1 != 16 || d2 != 32 {
		t.Errorf("interleaved completions = %d,%d want 16,32", d1, d2)
	}
}

func TestMultiChannelRouting(t *testing.T) {
	cfg := smallCfg
	cfg.Channels = 4
	b := NewBus(cfg)
	if b.Channels() != 4 {
		t.Fatalf("channels = %d", b.Channels())
	}
	// Per-channel bandwidth is a quarter: 64B at 1 B/cycle = 64 cycles.
	if done := b.TransferAt(0, 0, 64); done != 64 {
		t.Errorf("single-channel 64B done at %d, want 64", done)
	}
	// A block on another channel proceeds in parallel.
	if done := b.TransferAt(0, 64, 64); done != 64 {
		t.Errorf("parallel channel done at %d, want 64", done)
	}
	// Same channel serializes.
	if done := b.TransferAt(0, 4*64, 64); done != 128 {
		t.Errorf("same-channel second block done at %d, want 128", done)
	}
	if b.BytesMoved() != 3*64 {
		t.Errorf("bytes moved = %d", b.BytesMoved())
	}
}

func TestMultiChannelAggregateBandwidth(t *testing.T) {
	// Interleaved sequential blocks achieve the aggregate bandwidth: 4
	// channels x 16 blocks of 64B = 4KB at 4 B/cycle aggregate = 1024
	// cycles.
	cfg := smallCfg
	cfg.Channels = 4
	b := NewBus(cfg)
	var last uint64
	for i := uint64(0); i < 64; i++ {
		done := b.TransferAt(0, i*64, 64)
		if done > last {
			last = done
		}
	}
	if last != 1024 {
		t.Errorf("64 interleaved blocks done at %d, want 1024", last)
	}
	if u := b.Utilization(); u < 0.99 || u > 1.01 {
		t.Errorf("utilization = %v, want ~1", u)
	}
}

func TestSingleChannelCompat(t *testing.T) {
	// Channels<=1 must behave exactly like the legacy single bus.
	a := NewBus(smallCfg)
	cfg := smallCfg
	cfg.Channels = 1
	c := NewBus(cfg)
	for i := uint64(0); i < 10; i++ {
		if a.TransferAt(0, i*64, 64) != c.TransferAt(0, i*64, 64) {
			t.Fatal("channels=1 diverges from default")
		}
	}
	if a.Transfer(0, 64) != c.TransferAt(0, 0, 64) {
		t.Fatal("legacy Transfer diverges from TransferAt on channel 0")
	}
}

// Zero-length transfers are pure no-ops: they complete at their ready
// time without advancing the horizon, opening a phantom idle gap, or
// touching the accounting counters.
func TestZeroLengthTransfer(t *testing.T) {
	b := NewBus(smallCfg)
	if done := b.Transfer(500, 0); done != 500 {
		t.Errorf("zero-byte transfer done at %d, want 500", done)
	}
	if b.Now() != 0 {
		t.Errorf("zero-byte transfer moved the horizon to %d", b.Now())
	}
	if b.BytesMoved() != 0 || b.BusyCycles() != 0 {
		t.Errorf("zero-byte transfer counted: %dB, %d cycles", b.BytesMoved(), b.BusyCycles())
	}
	// No phantom gap [0,500): a real transfer still starts at cycle 0.
	if done := b.Transfer(0, 64); done != 16 {
		t.Errorf("transfer after zero-byte no-op done at %d, want 16", done)
	}
	// A zero-byte read is latency only.
	if at := b.Read(1000, 0); at != 1000+smallCfg.LatencyCycles {
		t.Errorf("zero-byte read data at %d, want %d", at, 1000+smallCfg.LatencyCycles)
	}
}

// A zero-length transfer must not flush the carried sub-cycle remainder:
// 11B + 0B + 11B on the 22 B/cycle bus is exactly one busy cycle.
func TestZeroLengthPreservesRemainder(t *testing.T) {
	b := NewBus(largeCfg)
	b.Transfer(0, 11)
	b.Transfer(0, 0)
	if done := b.Transfer(0, 11); done != 1 {
		t.Errorf("11B+0B+11B done at %d, want 1", done)
	}
	if b.BusyCycles() != 1 {
		t.Errorf("busy cycles = %d, want 1", b.BusyCycles())
	}
}

// Back-to-back bursts chained on their own completion times cost exactly
// the same as one contiguous stream — remainder carrying never double
// charges across the seams.
func TestBackToBackBurstExact(t *testing.T) {
	b := NewBus(largeCfg) // 1/22 cycles per byte
	var done uint64
	for i := 0; i < 11; i++ {
		done = b.Transfer(done, 64) // each burst ready when the last finished
	}
	if done != 32 { // 704 bytes / 22 B/cycle = exactly 32 cycles
		t.Errorf("11 chained 64B bursts done at %d, want 32", done)
	}
	if b.BusyCycles() != 32 {
		t.Errorf("busy cycles = %d, want 32", b.BusyCycles())
	}
}

// ReadAt routes by address and adds the access latency on top of the
// channel's transfer completion.
func TestReadAtLatency(t *testing.T) {
	cfg := smallCfg
	cfg.Channels = 4
	b := NewBus(cfg)
	// Per-channel bandwidth is 1 B/cycle: 64B transfer + 100 latency.
	if at := b.ReadAt(0, 64, 64); at != 164 {
		t.Errorf("ReadAt data at %d, want 164", at)
	}
	// Channel 1 is now busy; channel 0 is untouched.
	if at := b.ReadAt(0, 0, 64); at != 164 {
		t.Errorf("ReadAt on idle channel data at %d, want 164", at)
	}
	if at := b.ReadAt(0, 64+4*64, 64); at != 228 {
		t.Errorf("ReadAt on busy channel data at %d, want 228", at)
	}
}

// The bandwidth cap holds for a single huge burst: a megabyte at
// 4 B/cycle is exactly 2^18 cycles with no overflow or rounding slack.
func TestLargeBurstBandwidthCap(t *testing.T) {
	b := NewBus(smallCfg)
	const bytes = 1 << 20
	if done := b.Transfer(0, bytes); done != bytes/4 {
		t.Errorf("1MiB burst done at %d, want %d", done, bytes/4)
	}
	if b.Utilization() != 1 {
		t.Errorf("saturated bus utilization = %v, want 1", b.Utilization())
	}
}
