package dram

// This file lifts the streak fast path from per-block to per-span cost: a
// SpanCursor is a RunCursor that defers the issue-window bookkeeping. The
// RunCursor's ChargeDataSpan is exact but still O(span) — every data block
// writes its clear time into the window ring so later gates can read it.
// The SpanCursor exploits that past the window prologue every gate is an
// in-run data clear, which is pure arithmetic: the clear of the run's j-th
// charge is
//
//	C(j) = clear0 + j*q + (j*rr + rem0) / den
//
// (remainder telescoping), so instead of materializing clears in the ring
// it remembers, per span, how data-block indices map to charge indices and
// answers gate queries from the formula. The window ring is written once,
// at Commit, with the clears of the final depth data blocks — the only
// entries the reference loop would leave behind.
//
// Two identities carry the equivalence (DESIGN.md section 6e):
//
//   - Generalized two-term collapse. Past the prologue, for ANY
//     interleaving of data spans and metadata charges, the per-block issue
//     recursion r_i = max(r_{i-1}+1, D(g_i - depth)) unrolls across span
//     boundaries to
//     lastIssue = max(r0 + k - 1, D(gEnd - 1 - depth))
//     nextR     = max(lastIssue + 1, D(gEnd - depth))
//     because consecutive data clears differ by at least one cycle (the
//     per-block cost floor q >= 1 verified at BeginRun; interleaved
//     metadata only widens the difference). D(g) is the clear time of the
//     g-th data block, i.e. C at its charge index.
//   - Charge-index bookkeeping. D(g) needs the charge index of data block
//     g, which depends on how data and metadata interleaved. Gate queries
//     only ever reach back depth data blocks, so a short FIFO of span
//     records — first data index, charge index, period shape — answers
//     them in O(1) amortized.
type SpanCursor struct {
	cur    RunCursor
	w      *IssueWindow
	idx0   int    // w.idx at Begin
	clear0 uint64 // horizon at Begin (C(0))
	rem0   uint64 // carried remainder at Begin
	g      uint64 // data blocks charged so far
	j      uint64 // total charges (blocks) so far
	fifo   []spanRec
	head   int // ring index of the oldest record
	cnt    int // live records
	look   int // monotone query cursor, offset from head
}

// spanRec maps a contiguous range of data-block indices to charge indices.
// The range holds n data blocks grouped in periods of m, each period
// preceded by lead and followed by trail metadata charges; a plain span is
// the single-period case (m == n, lead == trail == 0).
type spanRec struct {
	g     uint64 // first data block index covered
	j     uint64 // charges before the record's first period
	n     uint32 // total data blocks covered
	m     uint32 // data blocks per period
	lead  uint32 // metadata charges before each period's data
	trail uint32 // metadata charges after each period's data
}

// BeginSpanRun validates the append invariant exactly as BeginRun and
// primes sc for span-deferred charging. On false no state was touched.
// It is the admission predicate of the streak fast paths. //tnpu:guard
// The cursor's record FIFO is retained across runs, so a long-lived
// engine-owned SpanCursor allocates only on first use (or a deeper
// window).
func (b *Bus) BeginSpanRun(sc *SpanCursor, w *IssueWindow, ready uint64, maxBlocks int) bool {
	if !b.BeginRun(&sc.cur, w, ready, maxBlocks) {
		return false
	}
	sc.w = w
	sc.idx0 = w.idx
	sc.clear0 = sc.cur.clear
	sc.rem0 = sc.cur.remAcc
	sc.g, sc.j = 0, 0
	sc.head, sc.cnt, sc.look = 0, 0, 0
	// Retained records all intersect the trailing depth data blocks, and
	// records are disjoint with at least one block each, so depth+2 slots
	// never overflow (one partial head record, depth covered blocks, the
	// incoming record).
	if need := len(w.slots) + 2; cap(sc.fifo) < need {
		sc.fifo = make([]spanRec, need) //tnpu:allocok
	}
	sc.fifo = sc.fifo[:cap(sc.fifo)]
	return true
}

// clearAt is C(j): the channel horizon after the run's first j charges.
// Exact by remainder telescoping; overflow is excluded by the batchable
// check at BeginRun (j never exceeds maxBlocks).
func (sc *SpanCursor) clearAt(j uint64) uint64 {
	return sc.clear0 + j*sc.cur.q + (j*sc.cur.rr+sc.rem0)/sc.cur.den
}

// push records a data range, dropping records that can no longer be
// queried (entirely below the gate window after this record lands).
func (sc *SpanCursor) push(rec spanRec) {
	depth := uint64(len(sc.w.slots))
	if end := rec.g + uint64(rec.n); end > depth {
		// The oldest query after this record lands is for data block
		// end-1-depth, so records whose last block is below that may drop.
		min := end - depth
		for sc.cnt > 0 {
			h := &sc.fifo[sc.head]
			if h.g+uint64(h.n) >= min {
				break
			}
			sc.head++
			if sc.head == len(sc.fifo) {
				sc.head = 0
			}
			sc.cnt--
			if sc.look > 0 {
				sc.look--
			}
		}
	}
	p := sc.head + sc.cnt
	if p >= len(sc.fifo) {
		p -= len(sc.fifo)
	}
	sc.fifo[p] = rec
	sc.cnt++
}

// dataClear is D(g): the clear time of the g-th data block (0-indexed).
// Queries are non-decreasing across calls, so a persistent cursor walks
// the FIFO in O(1) amortized; a backward query resets it (never happens on
// the hot path).
func (sc *SpanCursor) dataClear(g uint64) uint64 {
	for {
		p := sc.head + sc.look
		if p >= len(sc.fifo) {
			p -= len(sc.fifo)
		}
		rec := &sc.fifo[p]
		if g < rec.g {
			if sc.look == 0 {
				panic("dram: SpanCursor gate query below retained records")
			}
			sc.look = 0
			continue
		}
		if off := g - rec.g; off < uint64(rec.n) {
			period, o := off/uint64(rec.m), off%uint64(rec.m)
			j := rec.j + period*uint64(rec.m+rec.lead+rec.trail) + uint64(rec.lead) + o + 1
			return sc.clearAt(j)
		}
		sc.look++
		if sc.look >= sc.cnt {
			panic("dram: SpanCursor gate query above recorded data blocks")
		}
	}
}

// Meta appends k metadata block charges at the horizon, returning the new
// horizon — identical to RunCursor.Charge.
func (sc *SpanCursor) Meta(k int) uint64 {
	sc.j += uint64(k)
	return sc.cur.Charge(k)
}

// Data appends k issue-window-gated data blocks presented starting at
// issue time r and returns the last block's clear time, its issue time,
// and the next issue time — the ChargeDataSpan contract, in O(1) past the
// window prologue (prologue blocks take the exact per-block update, whose
// gates come from pre-run ring entries).
func (sc *SpanCursor) Data(r uint64, k int) (lastFree, lastIssue, nextR uint64) {
	depth := len(sc.w.slots)
	if sc.g < uint64(depth) {
		pre := depth - int(sc.g)
		if pre > k {
			pre = k
		}
		sc.push(spanRec{g: sc.g, j: sc.j, n: uint32(pre), m: uint32(pre)})
		for i := 0; i < pre; i++ {
			lastIssue = r
			lastFree, r = sc.cur.ChargeData(sc.w, r)
		}
		sc.g += uint64(pre)
		sc.j += uint64(pre)
		if k -= pre; k == 0 {
			return lastFree, lastIssue, r
		}
	}
	sc.push(spanRec{g: sc.g, j: sc.j, n: uint32(k), m: uint32(k)})
	lastFree = sc.cur.Charge(k)
	sc.g += uint64(k)
	sc.j += uint64(k)
	lastIssue = r + uint64(k-1)
	if gl := sc.dataClear(sc.g - 1 - uint64(depth)); gl > lastIssue {
		lastIssue = gl
	}
	nextR = lastIssue + 1
	if ng := sc.dataClear(sc.g - uint64(depth)); ng > nextR {
		nextR = ng
	}
	return lastFree, lastIssue, nextR
}

// DataPeriodic appends `periods` repetitions of [lead metadata charges,
// m data blocks, trail metadata charges] in O(1) — the uniform-stretch
// collapse the protection engines use once a cold cache sweep has entered
// steady-state turnover (every line misses with the same writeback
// pattern). r is the issue time entering the first period's data span.
// Returns the FINAL period's last data-block clear, its issue time, and
// the next issue time; the horizon after the final trailing metadata is
// Horizon(). ok is false — with no state touched — when the cursor is
// still in its window prologue, where per-block gates are not yet
// arithmetic.
func (sc *SpanCursor) DataPeriodic(r uint64, periods, m, lead, trail int) (lastFree, lastIssue, nextR uint64, ok bool) {
	depth := uint64(len(sc.w.slots))
	if sc.g < depth || periods <= 0 || m <= 0 {
		return 0, 0, 0, false
	}
	totalData := uint64(periods) * uint64(m)
	sc.push(spanRec{g: sc.g, j: sc.j, n: uint32(totalData), m: uint32(m), lead: uint32(lead), trail: uint32(trail)})
	sc.cur.Charge(periods * (m + lead + trail))
	sc.g += totalData
	sc.j += uint64(periods) * uint64(m+lead+trail)
	lastFree = sc.dataClear(sc.g - 1)
	lastIssue = r + totalData - 1
	if gl := sc.dataClear(sc.g - 1 - depth); gl > lastIssue {
		lastIssue = gl
	}
	nextR = lastIssue + 1
	if ng := sc.dataClear(sc.g - depth); ng > nextR {
		nextR = ng
	}
	return lastFree, lastIssue, nextR, true
}

// Horizon returns the clear time of the cursor's last charge.
func (sc *SpanCursor) Horizon() uint64 { return sc.cur.Horizon() }

// Blocks returns the number of blocks charged so far.
func (sc *SpanCursor) Blocks() int { return sc.cur.Blocks() }

// Data blocks charged so far (window-gated ones).
func (sc *SpanCursor) DataBlocks() uint64 { return sc.g }

// Commit materializes the deferred window state — the ring holds the
// clears of the final depth data blocks at the positions the reference
// loop would have written them — and commits the channel aggregate.
func (sc *SpanCursor) Commit() {
	depth := len(sc.w.slots)
	if sc.g >= uint64(depth) {
		// Prologue blocks among the final depth were already written by
		// ChargeData; rewriting them from the formula is a no-op by the
		// telescoping identity.
		start := sc.g - uint64(depth)
		sc.look = 0
		for t := 0; t < depth; t++ {
			gg := start + uint64(t)
			sc.w.slots[(sc.idx0+int(gg))%depth] = sc.dataClear(gg)
		}
		sc.w.idx = (sc.idx0 + int(sc.g)) % depth
	}
	sc.cur.Commit()
}
