package dram

// This file extends the batched fast path across metadata-line streaks: a
// RunCursor lets a protection engine charge an arbitrary interleaving of
// data blocks (issue-window gated) and metadata blocks (writebacks, line
// fetches, tree-walk reads) against one channel in append-only closed form,
// committing the aggregate channel update once at the end. It generalizes
// StreamRun — which only handles pure data runs — to the secure schemes'
// mixed charge sequences, resting on the same two identities (remainder
// telescoping and horizon monotonicity) plus one new invariant proven at
// BeginRun:
//
//   Append invariant. With a single channel, a per-block cost floor of at
//   least one cycle, no remembered idle gap that can hold a minimum-cost
//   block, and every issue-window slot at or below the start horizon
//   start0 = max(ready, busyUntil), every charge of the run is presented
//   at or below the current horizon and therefore appends: by induction
//   the i-th data block's issue time r_i satisfies r_i <= clear(i) (its
//   gate is either a pre-run slot <= start0 or an earlier block's clear,
//   and consecutive data clears differ by >= 1 cycle), and metadata
//   charges are presented at the issue time of an already-charged data
//   boundary. The reference loop would thus never record a mid-run gap
//   nor backfill one, so skipping both reproduces its channel state
//   exactly.

// RunCursor accumulates one streak's charges against a single channel.
// Between BeginRun and Commit the caller must route every bus charge
// through the cursor; Commit then writes the telescoped aggregate back as
// if each charge had gone through channel.transfer individually.
type RunCursor struct {
	ch     *channel
	ready0 uint64 // presented ready time of the first charge
	b0     uint64 // channel horizon at BeginRun
	q      uint64 // whole cycles per block: BlockBytes*num/den (>= 1)
	rr     uint64 // per-block remainder numerator: BlockBytes*num%den
	den    uint64
	remAcc uint64 // carried remainder numerator, < den
	clear  uint64 // horizon after the charges so far (start0 before any)
	blocks uint64 // total blocks charged
	data   int    // data blocks charged (window-gated ones)
}

// BeginRun validates the append invariant for a streak of at most
// maxBlocks block charges presented at or after ready, and primes cur.
// On false no state was touched and the caller must use the per-block or
// per-line path. maxBlocks only bounds overflow, so a generous upper
// bound (data plus worst-case metadata) is fine.
func (b *Bus) BeginRun(cur *RunCursor, w *IssueWindow, ready uint64, maxBlocks int) bool {
	if len(b.chans) != 1 || maxBlocks <= 0 {
		return false
	}
	c := &b.chans[0]
	if !c.batchable(ready, uint64(maxBlocks)) {
		return false
	}
	start0 := c.busyUntil
	if ready > start0 {
		start0 = ready
	}
	// Window slots hold clear times of past transfers on this channel, so
	// they never exceed the horizon; the explicit check keeps the append
	// proof local rather than resting on every caller's history.
	for _, s := range w.slots {
		if s > start0 {
			return false
		}
	}
	*cur = RunCursor{
		ch:     c,
		ready0: ready,
		b0:     c.busyUntil,
		q:      BlockBytes * c.num / c.den,
		rr:     BlockBytes * c.num % c.den,
		den:    c.den,
		remAcc: c.rem,
		clear:  start0,
	}
	return true
}

// Charge appends k block transfers at the horizon and returns the new
// horizon (the clear time of the last of the k blocks). Used for metadata
// charges, whose presented ready time — the current boundary's issue time —
// is at or below the horizon by the append invariant and therefore never
// affects channel state.
func (cur *RunCursor) Charge(k int) uint64 {
	if k == 1 {
		cur.remAcc += cur.rr
		cur.clear += cur.q
		if cur.remAcc >= cur.den {
			cur.remAcc -= cur.den
			cur.clear++
		}
		cur.blocks++
		return cur.clear
	}
	t := uint64(k)*cur.rr + cur.remAcc
	cur.clear += uint64(k)*cur.q + t/cur.den
	cur.remAcc = t % cur.den
	cur.blocks += uint64(k)
	return cur.clear
}

// ChargeData appends one issue-window-gated data block presented at issue
// time r: the block's clear time enters the window (exactly as the
// reference loop's w.Note(busFree)) and the returned next issue time
// applies the max(gate, r+1) update. Division-free.
func (cur *RunCursor) ChargeData(w *IssueWindow, r uint64) (busFree, nextR uint64) {
	cur.remAcc += cur.rr
	cur.clear += cur.q
	if cur.remAcc >= cur.den {
		cur.remAcc -= cur.den
		cur.clear++
	}
	cur.blocks++
	cur.data++
	w.slots[w.idx] = cur.clear
	w.idx++
	if w.idx == len(w.slots) {
		w.idx = 0
	}
	gate := w.slots[w.idx]
	nextR = r + 1
	if gate > nextR {
		nextR = gate
	}
	return cur.clear, nextR
}

// ChargeDataSpan appends k consecutive data blocks, the all-hit span fast
// path: once the streak is past its issue-window prologue (every gate comes
// from an in-streak data block, so consecutive gates differ by >= 1 cycle),
// the unrolled per-block max collapses to two terms exactly as in
// streamClosed, and the whole span costs one division regardless of k.
// Returns the last block's clear time, its issue time, and the next issue
// time — the values the secure schemes' covered-block timing formulas need.
func (cur *RunCursor) ChargeDataSpan(w *IssueWindow, r uint64, k int) (lastFree, lastIssue, nextR uint64) {
	depth := len(w.slots)
	// Prologue blocks (gates from pre-streak slots, which need not be
	// monotone) take the exact per-block update.
	if pre := depth - cur.data; pre > 0 {
		if pre > k {
			pre = k
		}
		for j := 0; j < pre; j++ {
			lastIssue = r
			lastFree, r = cur.ChargeData(w, r)
		}
		if k -= pre; k == 0 {
			return lastFree, lastIssue, r
		}
	}
	// Past the prologue every gate is an in-streak data clear, and
	// consecutive data clears differ by >= 1 cycle even across metadata
	// interleavings, so the unrolled per-block max collapses to two terms
	// for ANY span length: r_{k-1} = max(r + k - 1, gateLast) with gateLast
	// the clear of the data block issued depth before the span's last.
	if k < depth {
		// That block predates the span; its clear is live in the ring at the
		// position the span's last write will land on.
		gateLast := w.slots[(w.idx+k-1)%depth]
		cJ, remJ := cur.clear, cur.remAcc
		pos := w.idx
		for j := 0; j < k; j++ {
			remJ += cur.rr
			cJ += cur.q
			if remJ >= cur.den {
				remJ -= cur.den
				cJ++
			}
			w.slots[pos] = cJ
			pos++
			if pos == depth {
				pos = 0
			}
		}
		w.idx = pos
		cur.clear = cJ
		cur.remAcc = remJ
		cur.blocks += uint64(k)
		cur.data += k
		lastIssue = r + uint64(k-1)
		if gateLast > lastIssue {
			lastIssue = gateLast
		}
		nextR = lastIssue + 1
		if g := w.slots[pos]; g > nextR {
			nextR = g
		}
		return cJ, lastIssue, nextR
	}
	// Long spans: jump the charge state over the first k-depth blocks with
	// one division, then walk the final depth blocks incrementally, writing
	// their clears into the window ring at the positions the per-block loop
	// would have used.
	cJ, remJ := cur.clear, cur.remAcc
	var gateLast uint64 // clear of the data block depth before the last span block
	if jump := k - depth; jump > 0 {
		t := uint64(jump)*cur.rr + remJ
		cJ += uint64(jump)*cur.q + t/cur.den
		remJ = t % cur.den
		gateLast = cJ // == clearAt(k-depth-1)
	} else {
		// k == depth: that block predates the span; its clear is the slot the
		// per-block loop wrote most recently.
		gateLast = w.slots[(w.idx+depth-1)%depth]
	}
	pos := (w.idx + k - depth) % depth
	var nextGate uint64 // clearAt(k-depth), the gate for the block after the span
	for j := 0; j < depth; j++ {
		remJ += cur.rr
		cJ += cur.q
		if remJ >= cur.den {
			remJ -= cur.den
			cJ++
		}
		if j == 0 {
			nextGate = cJ
		}
		w.slots[pos] = cJ
		pos++
		if pos == depth {
			pos = 0
		}
	}
	w.idx = (w.idx + k) % depth
	cur.clear = cJ
	cur.remAcc = remJ
	cur.blocks += uint64(k)
	cur.data += k
	// Two-term collapse: r_{k-1} = max(gateLast, r + k - 1); the gate for
	// the following block is clearAt(k-depth).
	lastIssue = r + uint64(k-1)
	if gateLast > lastIssue {
		lastIssue = gateLast
	}
	nextR = lastIssue + 1
	if nextGate > nextR {
		nextR = nextGate
	}
	return cJ, lastIssue, nextR
}

// Horizon returns the clear time of the cursor's last charge (the start
// horizon before any charge).
func (cur *RunCursor) Horizon() uint64 { return cur.clear }

// Blocks returns the number of blocks charged so far.
func (cur *RunCursor) Blocks() int { return int(cur.blocks) }

// Commit writes the accumulated charges back to the channel as one
// telescoped aggregate — byte, busy-cycle, remainder, gap, and horizon
// state identical to per-block service. A cursor with no charges commits
// as a no-op (the reference would not have touched the bus either).
func (cur *RunCursor) Commit() {
	if cur.blocks == 0 {
		return
	}
	c := cur.ch
	c.rem = cur.remAcc
	c.bytesMoved += cur.blocks * BlockBytes
	start0 := cur.b0
	if cur.ready0 > start0 {
		start0 = cur.ready0
		// The first charge skipped over an idle window, as in the reference.
		c.recordGap(cur.b0, cur.ready0)
	}
	c.busyCycles += cur.clear - start0
	c.busyUntil = cur.clear
	cur.blocks = 0
	cur.ch = nil
}
