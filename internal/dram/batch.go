package dram

// This file is the run-length batched fast path of the bus model. Both
// entry points are defined by exact equivalence to a per-block reference
// loop — same bus state (busyUntil, remainder, gaps, byte/cycle counters),
// same returned times — and fall back to literally running that loop
// whenever a closed form cannot be proven safe (multi-channel routing, a
// remembered idle gap a block could backfill, short runs, pathological
// rates). The closed forms rest on two exact identities:
//
//   - Remainder telescoping: the carried sub-cycle remainder makes n
//     per-block charges sum to one aggregate charge,
//     sum_i (B*num+rem_i)/den  ==  (n*B*num + rem_0) / den.
//   - Horizon monotonicity: once no remembered gap can hold a minimum-cost
//     block at the first ready time, no later (larger) ready time can fit
//     one either, so every block appends at the horizon.

// IssueWindow models a DMA engine's bounded outstanding-request window:
// request i may issue only once request i-depth has cleared its channel.
// The per-block and batched execution paths share one window instance so
// both see identical issue gating.
type IssueWindow struct {
	slots []uint64
	idx   int
}

// NewIssueWindow returns a window allowing depth outstanding requests.
func NewIssueWindow(depth int) *IssueWindow {
	if depth <= 0 {
		panic("dram: issue window depth must be positive")
	}
	return &IssueWindow{slots: make([]uint64, depth)}
}

// Note records a request's channel-clear time and returns the gate for the
// next request: the clear time of the request issued depth ago (zero while
// the window is still filling).
func (w *IssueWindow) Note(busFree uint64) uint64 {
	w.slots[w.idx] = busFree
	w.idx++
	if w.idx == len(w.slots) {
		w.idx = 0
	}
	return w.slots[w.idx]
}

// Depth returns the window's outstanding-request bound.
func (w *IssueWindow) Depth() int { return len(w.slots) }

// MaxSlot returns the latest channel-clear time held in the window — an
// upper bound on every gate the window can hand back before new requests
// overwrite its slots.
//
//tnpu:noalloc
func (w *IssueWindow) MaxSlot() uint64 {
	var max uint64
	for _, s := range w.slots {
		if s > max {
			max = s
		}
	}
	return max
}

// StreamRun issues n consecutive BlockBytes transfers starting at addr,
// gated by the issue window exactly as the per-block DMA loop does:
//
//	for i := 0; i < n; i++ {
//	    busFree := b.TransferAt(ready, addr+uint64(i)*BlockBytes, BlockBytes)
//	    lastIssue = ready
//	    if gate := w.Note(busFree); gate > ready+1 { ready = gate } else { ready++ }
//	}
//
// It returns the next issue-ready time, the maximum channel-clear time over
// the run, and the issue time of the last block. Bus and window state after
// the call are identical to the reference loop's; on a single channel the
// common dense-stream case completes in O(window depth) instead of O(n).
func (b *Bus) StreamRun(ready, addr uint64, n int, w *IssueWindow) (nextReady, maxBusFree, lastIssue uint64) {
	if n <= 0 {
		return ready, 0, ready
	}
	if len(b.chans) == 1 {
		if nr, mb, li, ok := b.chans[0].streamClosed(ready, n, w); ok {
			return nr, mb, li
		}
	}
	r := ready
	for i := 0; i < n; i++ {
		busFree := b.route(addr+uint64(i)*BlockBytes).transfer(r, BlockBytes)
		if busFree > maxBusFree {
			maxBusFree = busFree
		}
		lastIssue = r
		gate := w.Note(busFree)
		r++
		if gate > r {
			r = gate
		}
	}
	return r, maxBusFree, lastIssue
}

// streamClosed is the single-channel closed form of StreamRun. ok=false
// means no state was touched and the caller must run the reference loop.
func (c *channel) streamClosed(ready uint64, n int, w *IssueWindow) (nextReady, maxBusFree, lastIssue uint64, ok bool) {
	depth := len(w.slots)
	if !c.batchable(ready, uint64(n)) {
		return 0, 0, 0, false
	}
	b0 := c.busyUntil
	start0 := b0
	if ready > start0 {
		start0 = ready
	}
	rem0 := c.rem
	// busFreeAt(i) is the channel-clear time of block i under appending
	// service: the telescoped sum of the first i+1 per-block charges.
	busFreeAt := func(i int) uint64 {
		return start0 + (uint64(i+1)*BlockBytes*c.num+rem0)/c.den
	}
	// Prologue: while gates still come from pre-run window entries, verify
	// each issue time stays at or below the bus horizon — otherwise the
	// per-block loop would open an idle gap mid-run and the closed form is
	// invalid. Block i's gate is the pre-run slot the ring hands back,
	// slots[(idx+i)%depth], untouched until write i catches up with it.
	r := ready
	pro := depth
	if n < pro {
		pro = n
	}
	// Division-free lower bound on busFreeAt(i-1): block costs are at least
	// cLo cycles each (batchable verified cLo >= 1), so busFreeAt(i-1) >=
	// busFreeAt(0) + (i-1)*cLo. The exact division only runs when the cheap
	// bound cannot already prove r in range.
	f0 := busFreeAt(0)
	cLo := BlockBytes * c.num / c.den
	pos := w.idx
	for i := 1; i < pro; i++ {
		pos++
		if pos == depth {
			pos = 0
		}
		gate := w.slots[pos]
		r++
		if gate > r {
			r = gate
		}
		if r > f0+uint64(i-1)*cLo && r > busFreeAt(i-1) {
			return 0, 0, 0, false
		}
	}
	if n > depth {
		// Saturated regime: for i >= depth the gate is busFreeAt(i-depth), so
		// r_i = max(busFreeAt(i-depth), r_{i-1}+1). Because consecutive
		// busFreeAt values differ by at least one cycle (batchable checked the
		// per-block cost floor >= 1), the unrolled max collapses to two terms
		// and r_i <= busFreeAt(i-1) holds inductively — no gap is ever opened.
		rLast := busFreeAt(n - 1 - depth)
		if alt := r + uint64(n-depth); alt > rLast {
			rLast = alt
		}
		lastIssue = rLast
		nextReady = busFreeAt(n - depth)
		if rLast+1 > nextReady {
			nextReady = rLast + 1
		}
	} else {
		// Short run: every gate came from a pre-run window entry, so the
		// prologue computed the final issue time directly. The gate for the
		// block after the run is the slot the ring lands on: still a pre-run
		// entry when n < depth, block 0's own clear time when n == depth.
		lastIssue = r
		gate := busFreeAt(0)
		if n < depth {
			gate = w.slots[(w.idx+n)%depth]
		}
		nextReady = r + 1
		if gate > nextReady {
			nextReady = gate
		}
	}
	// Commit channel state: one telescoped charge for all n blocks.
	ticks := uint64(n)*BlockBytes*c.num + rem0
	cycles := ticks / c.den
	c.rem = ticks % c.den
	c.bytesMoved += uint64(n) * BlockBytes
	c.busyCycles += cycles
	if ready > b0 {
		// Block 0 skipped over an idle window, as in the reference loop.
		c.recordGap(b0, ready)
	}
	c.busyUntil = start0 + cycles
	// The window now holds the clear times of the last min(n, depth) blocks,
	// at the ring positions the reference loop would have written them to.
	lo := n - depth
	if lo < 0 {
		lo = 0
	}
	pos = (w.idx + lo) % depth
	for k := lo; k < n; k++ {
		w.slots[pos] = busFreeAt(k)
		pos++
		if pos == depth {
			pos = 0
		}
	}
	w.idx = (w.idx + n) % depth
	return nextReady, busFreeAt(n - 1), lastIssue, true
}

// batchable reports whether n consecutive block transfers at or after ready
// can be served in closed form on this channel: the arithmetic cannot
// overflow, the per-block cost floor is at least one cycle, and no
// remembered idle gap could hold a minimum-cost block (gap fitting only
// gets harder as ready grows, so checking the floor at the earliest ready
// covers every block of the run).
func (c *channel) batchable(ready, n uint64) bool {
	if (n+1)*BlockBytes > (1<<62)/c.num {
		return false
	}
	cLo := BlockBytes * c.num / c.den
	if cLo == 0 {
		return false
	}
	if ready >= c.maxGapEnd {
		// Every gap closes at or before ready, and cLo >= 1, so no block
		// of the run can start inside one.
		return true
	}
	for _, g := range c.gaps {
		s := g.start
		if ready > s {
			s = ready
		}
		if s+cLo <= g.end {
			return false
		}
	}
	return true
}

// TransferRunAt occupies the bus for nBlocks consecutive BlockBytes
// transfers, all presented at the same ready time — exactly equivalent to
// nBlocks TransferAt calls on consecutive block addresses — and returns the
// completion time of the last block. Channel-interleaved addressing is
// honoured; each channel's share is charged in closed form with exact
// rational remainder carry when possible, falling back to per-block
// service otherwise.
func (b *Bus) TransferRunAt(ready, addr uint64, nBlocks int) (done uint64) {
	if nBlocks <= 0 {
		return ready
	}
	n := uint64(nBlocks)
	nc := uint64(len(b.chans))
	first := addr / BlockBytes
	lastChan := (first + n - 1) % nc
	for k := uint64(0); k < nc && k < n; k++ {
		ch := &b.chans[(first+k)%nc]
		cnt := (n - k + nc - 1) / nc
		d := ch.sameReadyRun(ready, cnt)
		if (first+k)%nc == lastChan {
			done = d
		}
	}
	return done
}

// sameReadyRun charges m block transfers presented at one ready time.
func (c *channel) sameReadyRun(ready, m uint64) (lastDone uint64) {
	if m == 0 {
		return ready
	}
	if !c.batchable(ready, m) {
		for i := uint64(0); i < m; i++ {
			lastDone = c.transfer(ready, BlockBytes)
		}
		return lastDone
	}
	b0 := c.busyUntil
	start := b0
	if ready > start {
		start = ready
	}
	ticks := m*BlockBytes*c.num + c.rem
	cycles := ticks / c.den
	c.rem = ticks % c.den
	c.bytesMoved += m * BlockBytes
	c.busyCycles += cycles
	if ready > b0 {
		c.recordGap(b0, ready)
	}
	c.busyUntil = start + cycles
	return c.busyUntil
}
