package npu

import (
	"bytes"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/stats"
)

func newBus(cfg Config) *dram.Bus { return dram.NewBus(cfg.Mem) }

func compileFor(t *testing.T, short string, cfg Config) *compiler.Program {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(m, cfg.CompilerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigs(t *testing.T) {
	for _, cfg := range []Config{SmallNPU(), LargeNPU()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if SmallNPU().Array.PEs() != 1024 || LargeNPU().Array.PEs() != 2025 {
		t.Error("PE counts do not match Table II")
	}
	bad := SmallNPU()
	bad.SPM.CapacityBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	r1, err := Run(prog, memprot.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(prog, memprot.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Traffic.Total() != r2.Traffic.Total() {
		t.Fatalf("non-deterministic: %v vs %v", r1.Cycles, r2.Cycles)
	}
}

func TestSchemeOrdering(t *testing.T) {
	// The paper's headline (Fig. 14): unsecure < tnpu < baseline in
	// execution time, for every model on both NPUs.
	for _, cfg := range []Config{SmallNPU(), LargeNPU()} {
		for _, short := range []string{"goo", "res", "sent", "tf", "ncf"} {
			prog := compileFor(t, short, cfg)
			var cycles [3]uint64
			for i, s := range memprot.Schemes() {
				r, err := Run(prog, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cycles[i] = r.Cycles
			}
			if !(cycles[0] < cycles[2] && cycles[2] < cycles[1]) {
				t.Errorf("%s/%s: ordering violated: unsecure=%d baseline=%d tnpu=%d",
					cfg.Name, short, cycles[0], cycles[1], cycles[2])
			}
		}
	}
}

func TestTrafficOrdering(t *testing.T) {
	// Fig. 15: tnpu moves less metadata than baseline, more than unsecure.
	cfg := SmallNPU()
	prog := compileFor(t, "res", cfg)
	var traffic [3]uint64
	for i, s := range memprot.Schemes() {
		r, err := Run(prog, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		traffic[i] = r.Traffic.Total()
	}
	if !(traffic[0] < traffic[2] && traffic[2] < traffic[1]) {
		t.Errorf("traffic ordering violated: %v", traffic)
	}
}

func TestComputeInvariantAcrossSchemes(t *testing.T) {
	// Protection changes memory behaviour, never the computation.
	cfg := SmallNPU()
	prog := compileFor(t, "alex", cfg)
	var compute [3]uint64
	for i, s := range memprot.Schemes() {
		r, _ := Run(prog, s, cfg)
		compute[i] = r.Compute
	}
	if compute[0] != compute[1] || compute[1] != compute[2] {
		t.Errorf("compute cycles differ across schemes: %v", compute)
	}
}

func TestEmbeddingModelsHaveHighCounterMissRates(t *testing.T) {
	// Fig. 5's key contrast: sent/tf counter-cache miss rates stand out
	// against the dense CNNs.
	cfg := SmallNPU()
	missOf := func(short string) float64 {
		r, err := Run(compileFor(t, short, cfg), memprot.Baseline, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Counter.MissRate()
	}
	goo, sent, tf := missOf("goo"), missOf("sent"), missOf("tf")
	if sent < 2*goo || tf < 1.5*goo {
		t.Errorf("embedding workloads not miss-dominated: goo=%.3f sent=%.3f tf=%.3f", goo, sent, tf)
	}
}

func TestBaselineSlowdownInPaperRange(t *testing.T) {
	// Geometric-mean overheads must land in the paper's regime:
	// baseline ~21%, TNPU ~9% (Small NPU), with generous tolerance for
	// our reconstructed workloads.
	cfg := SmallNPU()
	var base, tnpu []float64
	for _, m := range model.All() {
		prog, err := compiler.Compile(m, cfg.CompilerConfig())
		if err != nil {
			t.Fatal(err)
		}
		var cyc [3]uint64
		for i, s := range memprot.Schemes() {
			r, _ := Run(prog, s, cfg)
			cyc[i] = r.Cycles
		}
		base = append(base, float64(cyc[1])/float64(cyc[0]))
		tnpu = append(tnpu, float64(cyc[2])/float64(cyc[0]))
	}
	bAvg, tAvg := stats.Mean(base), stats.Mean(tnpu)
	if bAvg < 1.10 || bAvg > 1.40 {
		t.Errorf("baseline mean overhead %.3f outside the paper regime (~1.21)", bAvg)
	}
	if tAvg < 1.03 || tAvg > 1.20 {
		t.Errorf("tnpu mean overhead %.3f outside the paper regime (~1.09)", tAvg)
	}
	if tAvg >= bAvg {
		t.Error("tnpu does not beat baseline on average")
	}
}

func TestMachineStepInterface(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	eng, err := memprot.New(memprot.Unsecure, memprot.DefaultConfig(newBus(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, eng)
	steps := 0
	var lastReady uint64
	for {
		ready, ok := m.NextReady()
		if !ok {
			break
		}
		if ready < lastReady {
			// Ready times within one machine may only move forward.
			t.Fatalf("ready time went backwards: %d -> %d", lastReady, ready)
		}
		lastReady = ready
		m.ServeBlock()
		steps++
	}
	if steps == 0 || uint64(steps) != m.BlocksMoved() {
		t.Fatalf("steps %d vs blocks %d", steps, m.BlocksMoved())
	}
	if m.Cycles() == 0 {
		t.Fatal("no cycles recorded")
	}
}

func TestVersionFetchesHappen(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	r, err := Run(prog, memprot.TreeLess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Traffic.Class(stats.Version) == 0 {
		t.Error("tree-less run recorded no version-table traffic")
	}
	if r.VersionTablePeakBytes == 0 {
		t.Error("no version-table storage recorded")
	}
}

func TestLargeNPUFasterThanSmall(t *testing.T) {
	small, large := SmallNPU(), LargeNPU()
	ps := compileFor(t, "res", small)
	pl := compileFor(t, "res", large)
	rs, _ := Run(ps, memprot.Unsecure, small)
	rl, _ := Run(pl, memprot.Unsecure, large)
	// Large NPU has 2x PEs and 2x bandwidth but runs at 1GHz vs 2.75GHz;
	// in wall-clock terms it must not be slower per cycle-time-adjusted
	// unit. Compare transferred blocks instead: both move similar data.
	if rl.Cycles == 0 || rs.Cycles == 0 {
		t.Fatal("empty runs")
	}
	wallSmall := float64(rs.Cycles) / 2.75e9
	wallLarge := float64(rl.Cycles) / 1e9
	if wallLarge > 2*wallSmall {
		t.Errorf("large NPU implausibly slow: %.3fms vs %.3fms", wallLarge*1e3, wallSmall*1e3)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	prog := compileFor(t, "df", SmallNPU())
	bad := SmallNPU()
	bad.Mem.FreqHz = 0
	if _, err := Run(prog, memprot.Unsecure, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestBlocksMatchTraffic(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "agz", cfg)
	eng, err := memprot.New(memprot.Unsecure, memprot.DefaultConfig(newBus(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, eng)
	m.Run()
	if got := eng.Traffic().Class(stats.Data); got != m.BlocksMoved()*64 {
		t.Errorf("data traffic %d != blocks*64 %d", got, m.BlocksMoved()*64)
	}
}

func TestUtilizationAndLayerSpans(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	eng, err := memprot.New(memprot.Unsecure, memprot.DefaultConfig(newBus(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, eng)
	m.Run()
	if u := m.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization out of range: %v", u)
	}
	spans := m.LayerSpans()
	if len(spans) == 0 {
		t.Fatal("no layer spans")
	}
	// Layer completion times are monotone (layers depend on producers).
	var prev uint64
	for li, end := range spans {
		if end < prev {
			t.Fatalf("layer %d completed at %d before layer %d at %d", li, end, li-1, prev)
		}
		prev = end
	}
	if spans[len(spans)-1] != m.Cycles() {
		t.Fatalf("last layer span %d != machine cycles %d", spans[len(spans)-1], m.Cycles())
	}
}

func TestProtectionLowersUtilization(t *testing.T) {
	// Same compute over longer wall clock: utilization must drop under
	// the baseline protection relative to unsecure.
	cfg := SmallNPU()
	prog := compileFor(t, "res", cfg)
	u, _ := Run(prog, memprot.Unsecure, cfg)
	b, _ := Run(prog, memprot.Baseline, cfg)
	if b.Utilization >= u.Utilization {
		t.Errorf("baseline utilization %.4f not below unsecure %.4f", b.Utilization, u.Utilization)
	}
}

func TestLoadedProgramRunsIdentically(t *testing.T) {
	// A serialized program replays to the exact same cycle count as the
	// freshly compiled one.
	cfg := SmallNPU()
	orig := compileFor(t, "df", cfg)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := compiler.ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(orig, memprot.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(loaded, memprot.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Traffic.Total() != b.Traffic.Total() {
		t.Fatalf("loaded program diverges: %d/%d vs %d/%d",
			a.Cycles, a.Traffic.Total(), b.Cycles, b.Traffic.Total())
	}
}

func TestIOMMUTranslation(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	plain, err := Run(prog, memprot.Unsecure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TLBEntries = 32
	cfg.TLBWalkCycles = 300
	walked, err := Run(prog, memprot.Unsecure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if walked.Cycles <= plain.Cycles {
		t.Errorf("translation added no cost: %d vs %d", walked.Cycles, plain.Cycles)
	}
	// A huge TLB reduces the cost back toward the untranslated run: only
	// compulsory misses remain.
	cfg.TLBEntries = 4096
	big, err := Run(prog, memprot.Unsecure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Cycles > walked.Cycles {
		t.Errorf("larger TLB slower: %d vs %d", big.Cycles, walked.Cycles)
	}

	eng, err := memprot.New(memprot.Unsecure, memprot.DefaultConfig(newBus(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, eng)
	m.EnableTranslation(32, 300)
	m.Run()
	if m.TLBMisses == 0 {
		t.Error("no TLB misses recorded")
	}
}
