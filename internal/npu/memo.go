package npu

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"tnpu/internal/canon"
	"tnpu/internal/compiler"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
)

// This file implements layer-signature memoization (DESIGN.md §6e): the
// experiment harness re-executes the same model layers hundreds of times —
// across sweep points, batch sizes, and NPU counts — and almost all of
// those executions start from a machine+engine state the simulator has
// seen before. A LayerMemo caches, per (program, layer, state-signature),
// the layer's complete effect: the behavioural end state (canon bytes) and
// the accumulator deltas (cycles, traffic, cache statistics), so a
// recurring layer replays in O(state) instead of O(blocks).
//
// Correctness rests on two properties. First, keys compare the *exact*
// pre-state bytes (the 64-bit hash only buckets them), so a replay happens
// only from a state byte-identical to the recording's — modulo a uniform
// time shift, which the models are invariant under (every timing decision
// is a max/compare; canon encodes times relative to the layer-entry DMA
// clock). Second, accumulators ride as wrapping deltas, never absolute
// values, so replaying into a run with different history stays exact.

// LayerMemo is a concurrency-safe cache of layer execution deltas, shared
// by every machine a Runner builds. The zero value is not usable; call
// NewLayerMemo.
type LayerMemo struct {
	mu      sync.RWMutex
	entries map[memoKey][]*memoEntry
	liveIn  map[*compiler.Program][][]int32
	bytes   int
	hits    uint64
	misses  uint64
}

// memoBudgetBytes bounds retained blob memory; once past it, new layers
// run live without storing (lookups still hit existing entries).
const memoBudgetBytes = 512 << 20

// memoKey buckets entries by program identity (programs are compiled once
// and shared, so pointer identity is program identity), layer index, and a
// hash of the canonical pre-state bytes.
type memoKey struct {
	prog  *compiler.Program
	layer int32
	hash  uint64
}

type memoEntry struct {
	pre  []byte // canonical machine+engine state at layer entry
	post []byte // canonical state at layer exit, plus engine delta
	acc  []byte // wrapping accumulator deltas across the layer
}

// NewLayerMemo returns an empty memo cache.
func NewLayerMemo() *LayerMemo {
	return &LayerMemo{
		entries: make(map[memoKey][]*memoEntry),
		liveIn:  make(map[*compiler.Program][][]int32),
	}
}

// Hits and Misses report lookup outcomes (for tests and logging).
func (lm *LayerMemo) Hits() uint64 {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	return lm.hits
}

// Misses reports the number of layer executions that ran live.
func (lm *LayerMemo) Misses() uint64 {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	return lm.misses
}

// lookup returns the entry whose pre-state bytes equal pre, or nil.
func (lm *LayerMemo) lookup(key memoKey, pre []byte) *memoEntry {
	lm.mu.RLock()
	bucket := lm.entries[key]
	var found *memoEntry
	for _, e := range bucket {
		if bytes.Equal(e.pre, pre) {
			found = e
			break
		}
	}
	lm.mu.RUnlock()
	lm.mu.Lock()
	if found != nil {
		lm.hits++
	} else {
		lm.misses++
	}
	lm.mu.Unlock()
	return found
}

// store adds an entry unless the byte budget is exhausted or a concurrent
// recorder beat us to the same pre-state.
func (lm *LayerMemo) store(key memoKey, e *memoEntry) {
	sz := len(e.pre) + len(e.post) + len(e.acc)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if lm.bytes+sz > memoBudgetBytes {
		return
	}
	for _, old := range lm.entries[key] {
		if bytes.Equal(old.pre, e.pre) {
			return
		}
	}
	lm.entries[key] = append(lm.entries[key], e)
	lm.bytes += sz
}

// liveIns returns, per layer, the sorted instruction indices outside the
// layer whose completion times the layer's dependencies read — the only
// done[] entries that belong in the layer's state signature.
func (lm *LayerMemo) liveIns(prog *compiler.Program) [][]int32 {
	lm.mu.RLock()
	out, ok := lm.liveIn[prog]
	lm.mu.RUnlock()
	if ok {
		return out
	}
	out = make([][]int32, len(prog.LayerFirst))
	for li := range prog.LayerFirst {
		first, last := prog.LayerFirst[li], prog.LayerLast[li]
		seen := make(map[int32]struct{})
		var list []int32
		for idx := first; idx <= last; idx++ {
			for _, d := range prog.Trace.Instrs[idx].Deps {
				if d < first {
					if _, dup := seen[d]; !dup {
						seen[d] = struct{}{}
						list = append(list, d)
					}
				}
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[li] = list
	}
	lm.mu.Lock()
	if prior, ok := lm.liveIn[prog]; ok {
		out = prior
	} else {
		lm.liveIn[prog] = out
	}
	lm.mu.Unlock()
	return out
}

// hashBlob is FNV-1a over 8-byte words (canon blobs are u64-aligned).
func hashBlob(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for ; len(b) >= 8; b = b[8:] {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 1099511628211
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// layersContiguous reports whether the program's layer table tiles the
// instruction trace exactly — the precondition for driving execution
// layer-by-layer.
func layersContiguous(p *compiler.Program) bool {
	n := len(p.LayerFirst)
	if n == 0 || p.LayerFirst[0] != 0 {
		return false
	}
	for li := 1; li < n; li++ {
		if p.LayerFirst[li] != p.LayerLast[li-1]+1 {
			return false
		}
	}
	return p.LayerLast[n-1] == int32(len(p.Trace.Instrs))-1
}

// RunMemoized drives the machine to completion like Run, consulting memo
// before executing each layer and recording layers it runs live. It
// requires a machine on a freshly constructed engine (the engine arms its
// memoization bookkeeping at the first layer boundary and panics if it has
// already served traffic). Falls back to Run when memoization cannot
// apply: nil memo, per-block path, IOMMU enabled, an engine without layer
// canonicalization, or a layer table that does not tile the trace.
func (m *Machine) RunMemoized(memo *LayerMemo) {
	ls, isLS := m.eng.(memprot.LayerState)
	if memo == nil || !m.batched || m.iotlb != nil || !isLS || !layersContiguous(m.prog) {
		m.Run()
		return
	}
	live := memo.liveIns(m.prog)
	for li := range m.prog.LayerFirst {
		first, last := int(m.prog.LayerFirst[li]), int(m.prog.LayerLast[li])
		ls.BeginLayer()
		base := m.dmaFree
		m.canonBuf = m.appendPre(m.canonBuf[:0], ls, live[li], base)
		pre := m.canonBuf
		key := memoKey{m.prog, int32(li), hashBlob(pre)}
		if e := memo.lookup(key, pre); e != nil {
			m.replayLayer(e, ls, base, first, last)
			continue
		}
		m.accBuf = m.appendAcc(m.accBuf[:0], ls)
		nAcc := len(m.accBuf)
		m.runLayer(last)
		m.accBuf = m.appendAcc(m.accBuf, ls)
		after := m.accBuf[nAcc:]
		acc := make([]byte, len(after))
		for i := 0; i < len(after); i += 8 {
			binary.LittleEndian.PutUint64(acc[i:],
				binary.LittleEndian.Uint64(after[i:])-binary.LittleEndian.Uint64(m.accBuf[i:]))
		}
		memo.store(key, &memoEntry{
			pre:  append([]byte(nil), pre...),
			post: m.appendPost(nil, ls, base, first, last),
			acc:  acc,
		})
	}
}

// runLayer executes instructions up to and including index last, exactly
// as Run would: computes retire in order on the PE array, DMA
// instructions issue and serve to completion. Unlike NextReady it stops at
// the layer boundary instead of running ahead to the next DMA.
func (m *Machine) runLayer(last int) {
	for m.pos <= last {
		in := &m.prog.Trace.Instrs[m.pos]
		switch in.Op {
		case isa.OpCompute, isa.OpPreload:
			start := max64(m.peFree, m.depsDone(in))
			end := start + in.Cycles
			m.peFree = end
			m.computeBusy += in.Cycles
			m.retire(m.pos, end)
			m.pos++
		case isa.OpMvIn, isa.OpMvOut:
			m.startDMA(m.pos, in)
			m.pos++
			m.ServeRun()
		default:
			panic(fmt.Sprintf("npu: unknown op %v", in.Op))
		}
	}
}

// appendPre canonicalizes the machine+engine state a layer's execution
// depends on: PE clock, DMA issue window, the completion times of
// out-of-layer dependencies, the context's address/slot relocation, and
// the engine. All times relative to base.
func (m *Machine) appendPre(dst []byte, ls memprot.LayerState, live []int32, base uint64) []byte {
	dst = canon.AppendU64(dst, m.peFree-base)
	dst = m.window.AppendCanon(dst, base)
	dst = canon.AppendU64(dst, uint64(len(live)))
	for _, d := range live {
		dst = canon.AppendU64(dst, m.done[d]-base)
	}
	dst = canon.AppendU64(dst, m.dataOffset)
	dst = canon.AppendU64(dst, m.slotOffset)
	return ls.AppendCanon(dst, base)
}

// appendPost canonicalizes the machine+engine state after the layer ran:
// clocks, window, every done[] entry the layer retired, the engine's end
// state, and the engine's journaled delta.
func (m *Machine) appendPost(dst []byte, ls memprot.LayerState, base uint64, first, last int) []byte {
	dst = canon.AppendU64(dst, m.peFree-base)
	dst = canon.AppendU64(dst, m.dmaFree-base)
	dst = m.window.AppendCanon(dst, base)
	for idx := first; idx <= last; idx++ {
		dst = canon.AppendU64(dst, m.done[idx]-base)
	}
	dst = ls.AppendCanon(dst, base)
	return ls.AppendDelta(dst)
}

// appendAcc snapshots every monotone accumulator a layer advances.
func (m *Machine) appendAcc(dst []byte, ls memprot.LayerState) []byte {
	dst = canon.AppendU64(dst, m.computeBusy)
	dst = canon.AppendU64(dst, m.blocksMoved)
	dst = canon.AppendU64(dst, m.blocksRead)
	dst = canon.AppendU64(dst, m.blocksWritten)
	dst = canon.AppendU64(dst, m.runsServed)
	return ls.AppendAccum(dst)
}

// replayLayer installs a recorded layer's end state and accumulator
// deltas. lastDone is recomputed from the restored retire times rather
// than restored (it is a running maximum over the whole run, not part of
// the layer's state signature).
func (m *Machine) replayLayer(e *memoEntry, ls memprot.LayerState, base uint64, first, last int) {
	src := e.post
	var v uint64
	v, src = canon.U64(src)
	m.peFree = v + base
	v, src = canon.U64(src)
	m.dmaFree = v + base
	src = m.window.RestoreCanon(src, base)
	for idx := first; idx <= last; idx++ {
		v, src = canon.U64(src)
		m.done[idx] = v + base
		if m.done[idx] > m.lastDone {
			m.lastDone = m.done[idx]
		}
	}
	src = ls.RestoreCanon(src, base)
	src = ls.ApplyDelta(src)
	if len(src) != 0 {
		panic("npu: trailing bytes in memo post blob")
	}
	src = e.acc
	v, src = canon.U64(src)
	m.computeBusy += v
	v, src = canon.U64(src)
	m.blocksMoved += v
	v, src = canon.U64(src)
	m.blocksRead += v
	v, src = canon.U64(src)
	m.blocksWritten += v
	v, src = canon.U64(src)
	m.runsServed += v
	src = ls.AddAccum(src)
	if len(src) != 0 {
		panic("npu: trailing bytes in memo accumulator blob")
	}
	m.pos = last + 1
}
