package npu

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"tnpu/internal/canon"
	"tnpu/internal/compiler"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
	"tnpu/internal/npu/memostore"
)

// This file implements layer-signature memoization (DESIGN.md §6e/§6g):
// the experiment harness re-executes the same model layers hundreds of
// times — across sweep points, batch sizes, and NPU counts — and almost
// all of those executions start from a machine+engine state the simulator
// has seen before. A LayerMemo caches, per (program, layer,
// state-signature), the layer's complete effect: the behavioural end
// state (canon bytes) and the accumulator deltas (cycles, traffic, cache
// statistics), so a recurring layer replays in O(state) instead of
// O(blocks).
//
// Correctness rests on two properties. First, keys compare the *exact*
// pre-state bytes (the 64-bit hash only buckets them), so a replay happens
// only from a state byte-identical to the recording's — modulo a uniform
// time shift, which the models are invariant under (every timing decision
// is a max/compare; canon encodes times relative to the layer-entry DMA
// clock). Second, accumulators ride as wrapping deltas, never absolute
// values, so replaying into a run with different history stays exact.
//
// With a memostore attached (DESIGN.md §6g) the memo also survives the
// process: entries are persisted content-addressed under
// sha256(salt | program signature | layer | pre-state bytes), loaded back
// on an in-memory miss, and verified byte-exact against the probing
// pre-state before replay. The salt carries the simulator code version,
// so a code bump strands stale entries instead of replaying them. Disk
// I/O happens only on a miss (one read) or a fresh recording (one write,
// after any waiting replayers have been released); the replay hot path
// never touches the store.

// LayerMemo is a concurrency-safe cache of layer execution deltas, shared
// by every machine a Runner builds. The zero value is not usable; call
// NewLayerMemo.
type LayerMemo struct {
	mu      sync.Mutex
	entries map[memoKey][]*memoEntry
	liveIn  map[*compiler.Program][][]int32
	sigs    map[*compiler.Program]string
	flights map[memoKey]*memoFlight
	bytes   int
	budget  int

	// LRU list over every stored entry; head is most recently used.
	lruHead *memoEntry
	lruTail *memoEntry

	// store persists entries across processes; salt (the simulator code
	// version) is part of every disk key. Both are set once via
	// AttachStore before the memo's first run.
	store *memostore.Store
	salt  string

	hits       uint64
	misses     uint64
	flightHits uint64
	diskHits   uint64
	records    uint64
	evictions  uint64
}

// memoBudgetBytes bounds retained blob memory; past it, the least
// recently used entries are evicted (reloadable from the store if one is
// attached, re-recorded otherwise).
const memoBudgetBytes = 512 << 20

// memoKey buckets entries by program identity (programs are compiled once
// and shared, so pointer identity is program identity), layer index, and a
// hash of the canonical pre-state bytes.
type memoKey struct {
	prog  *compiler.Program
	layer int32
	hash  uint64
}

type memoEntry struct {
	pre  []byte // canonical machine+engine state at layer entry
	post []byte // canonical state at layer exit, plus engine delta
	acc  []byte // wrapping accumulator deltas across the layer

	// LRU bookkeeping, all guarded by LayerMemo.mu.
	key        memoKey
	prev, next *memoEntry
}

func (e *memoEntry) size() int { return len(e.pre) + len(e.post) + len(e.acc) }

// memoFlight is one in-progress recording of a (key, pre-state) pair;
// concurrent machines that miss on the same signature wait on done and
// replay the recorded entry instead of recording it redundantly.
type memoFlight struct {
	done chan struct{}
	pre  []byte
	e    *memoEntry // set before done closes; nil if the recorder bailed
}

// NewLayerMemo returns an empty memo cache.
func NewLayerMemo() *LayerMemo {
	return &LayerMemo{
		entries: make(map[memoKey][]*memoEntry),
		liveIn:  make(map[*compiler.Program][][]int32),
		sigs:    make(map[*compiler.Program]string),
		flights: make(map[memoKey]*memoFlight),
		budget:  memoBudgetBytes,
	}
}

// AttachStore wires a persistent backing store under the memo. The salt
// (the simulator code version) becomes part of every disk key, so entries
// written by a different code version are stranded, never replayed. Must
// be called before the memo's first RunMemoized, like the rest of the
// harness configuration.
func (lm *LayerMemo) AttachStore(st *memostore.Store, salt string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.store = st
	lm.salt = salt
}

// SetBudgetBytes overrides the in-memory byte budget (tests exercise
// eviction without synthesizing half a gigabyte of entries).
func (lm *LayerMemo) SetBudgetBytes(n int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if n > 0 {
		lm.budget = n
	}
}

// MemoStats is a snapshot of the memo's lookup and storage counters.
type MemoStats struct {
	// Hits replayed from an in-memory entry.
	Hits uint64
	// Misses ran a layer live (and recorded it).
	Misses uint64
	// FlightHits waited for a concurrent recorder and replayed its entry.
	FlightHits uint64
	// DiskHits replayed from an entry loaded off the persistent store.
	DiskHits uint64
	// Records is the number of distinct entries recorded this process.
	Records uint64
	// Evictions is the number of entries dropped to stay under budget.
	Evictions uint64
	// Bytes is the current in-memory blob volume.
	Bytes int
	// Store is the persistent store's own counters (zero if detached).
	Store memostore.Stats
}

// Stats snapshots the memo counters.
func (lm *LayerMemo) Stats() MemoStats {
	lm.mu.Lock()
	st := MemoStats{
		Hits:       lm.hits,
		Misses:     lm.misses,
		FlightHits: lm.flightHits,
		DiskHits:   lm.diskHits,
		Records:    lm.records,
		Evictions:  lm.evictions,
		Bytes:      lm.bytes,
	}
	store := lm.store
	lm.mu.Unlock()
	st.Store = store.Stats()
	return st
}

// Hits reports in-memory replay hits (for tests and logging).
func (lm *LayerMemo) Hits() uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.hits
}

// Misses reports the number of layer executions that ran live.
func (lm *LayerMemo) Misses() uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.misses
}

// --- LRU list (all under mu) -------------------------------------------

func (lm *LayerMemo) lruPushFront(e *memoEntry) {
	e.prev, e.next = nil, lm.lruHead
	if lm.lruHead != nil {
		lm.lruHead.prev = e
	}
	lm.lruHead = e
	if lm.lruTail == nil {
		lm.lruTail = e
	}
}

func (lm *LayerMemo) lruRemove(e *memoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		lm.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		lm.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (lm *LayerMemo) lruTouch(e *memoEntry) {
	if lm.lruHead == e {
		return
	}
	lm.lruRemove(e)
	lm.lruPushFront(e)
}

// evictLocked drops one entry from the memory cache (its disk copy, if
// any, stays; a later miss reloads it instead of re-recording).
func (lm *LayerMemo) evictLocked(e *memoEntry) {
	lm.lruRemove(e)
	bucket := lm.entries[e.key]
	for i, old := range bucket {
		if old == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(lm.entries, e.key)
	} else {
		lm.entries[e.key] = bucket
	}
	lm.bytes -= e.size()
	lm.evictions++
}

// insertLocked adds e under key (deduplicating against a concurrent
// recorder of the same pre-state) and evicts from the LRU tail until the
// budget holds again. A single entry larger than the whole budget is kept
// alone — the budget is a steady-state bound, not a hard admission test.
// Returns the canonical entry and whether e itself was inserted.
func (lm *LayerMemo) insertLocked(key memoKey, e *memoEntry) (*memoEntry, bool) {
	for _, old := range lm.entries[key] {
		if bytes.Equal(old.pre, e.pre) {
			lm.lruTouch(old)
			return old, false
		}
	}
	e.key = key
	lm.entries[key] = append(lm.entries[key], e)
	lm.bytes += e.size()
	lm.lruPushFront(e)
	for lm.bytes > lm.budget && lm.lruTail != nil && lm.lruTail != e {
		lm.evictLocked(lm.lruTail)
	}
	return e, true
}

// lookup returns the entry whose pre-state bytes equal pre, or nil.
func (lm *LayerMemo) lookup(key memoKey, pre []byte) *memoEntry {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, e := range lm.entries[key] {
		if bytes.Equal(e.pre, pre) {
			lm.hits++
			lm.lruTouch(e)
			return e
		}
	}
	return nil
}

// record inserts a freshly recorded entry, counting the live execution.
// Returns the canonical entry and whether it is new (a concurrent
// recorder of the same pre-state may have won the insert).
func (lm *LayerMemo) record(key memoKey, e *memoEntry) (*memoEntry, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.misses++
	got, fresh := lm.insertLocked(key, e)
	if fresh {
		lm.records++
	}
	return got, fresh
}

// claim resolves a lookup miss under the record-once discipline: a late
// in-memory hit returns the entry; an in-flight recording of the same
// pre-state returns its flight to wait on; otherwise the caller becomes
// the recorder and must release the returned flight when done. The
// (nil, nil, false) return — a flight exists for the key but a different
// pre-state (a 64-bit bucket collision) — tells the caller to record live
// without flight bookkeeping.
func (lm *LayerMemo) claim(key memoKey, pre []byte) (*memoEntry, *memoFlight, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, e := range lm.entries[key] {
		if bytes.Equal(e.pre, pre) {
			lm.hits++
			lm.lruTouch(e)
			return e, nil, false
		}
	}
	if fl, ok := lm.flights[key]; ok {
		if bytes.Equal(fl.pre, pre) {
			return nil, fl, false
		}
		return nil, nil, false
	}
	fl := &memoFlight{done: make(chan struct{}), pre: append([]byte(nil), pre...)}
	lm.flights[key] = fl
	return nil, fl, true
}

// release publishes the recorder's entry to flight waiters and retires
// the flight.
func (lm *LayerMemo) release(key memoKey, fl *memoFlight, e *memoEntry) {
	lm.mu.Lock()
	if lm.flights[key] == fl {
		delete(lm.flights, key)
	}
	lm.mu.Unlock()
	fl.e = e
	close(fl.done)
}

func (lm *LayerMemo) noteFlightHit() {
	lm.mu.Lock()
	lm.flightHits++
	lm.mu.Unlock()
}

// storeConfig snapshots the persistence wiring for one run.
func (lm *LayerMemo) storeConfig() (*memostore.Store, string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.store, lm.salt
}

// --- persistence -------------------------------------------------------

// progSig returns (computing once per program) a content hash of
// everything a memo entry's validity depends on in the program: the full
// instruction trace, the layer table, and the memory extent. Unlike the
// in-memory key's pointer identity it is stable across processes, so it
// anchors the disk keys.
func (lm *LayerMemo) progSig(p *compiler.Program) string {
	lm.mu.Lock()
	sig, ok := lm.sigs[p]
	lm.mu.Unlock()
	if ok {
		return sig
	}
	sig = computeProgSig(p)
	lm.mu.Lock()
	if prior, ok := lm.sigs[p]; ok {
		sig = prior
	} else {
		lm.sigs[p] = sig
	}
	lm.mu.Unlock()
	return sig
}

func computeProgSig(p *compiler.Program) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:]) //tnpu:errok (sha256 never fails)
	}
	w(uint64(len(p.Trace.Instrs)))
	for i := range p.Trace.Instrs {
		in := &p.Trace.Instrs[i]
		w(uint64(in.Op))
		w(uint64(in.Tensor))
		w(uint64(in.Tile))
		w(in.Version)
		w(in.Cycles)
		w(uint64(in.Layer))
		w(uint64(len(in.Segments)))
		for _, s := range in.Segments {
			w(s.Addr)
			w(s.Bytes)
		}
		w(uint64(len(in.Deps)))
		for _, d := range in.Deps {
			w(uint64(d))
		}
	}
	w(uint64(len(p.LayerFirst)))
	for i := range p.LayerFirst {
		w(uint64(p.LayerFirst[i]))
		w(uint64(p.LayerLast[i]))
	}
	w(p.MemoryTop)
	return hex.EncodeToString(h.Sum(nil))
}

// diskKey content-addresses one layer memo entry: the salt (code
// version), the program signature, the layer index, and the exact
// pre-state bytes. Parts are length-prefixed so distinct part lists
// cannot collide by concatenation.
func diskKey(salt, sig string, layer int32, pre []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "layer|%d:%s|%d:%s|%d|%d:", len(salt), salt, len(sig), sig, layer, len(pre))
	h.Write(pre) //tnpu:errok (sha256 never fails)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeMemoBody frames an entry for the store: three length-prefixed
// canon blobs (pre, post, acc).
func encodeMemoBody(e *memoEntry) []byte {
	out := make([]byte, 0, 24+e.size())
	for _, blob := range [][]byte{e.pre, e.post, e.acc} {
		out = canon.AppendU64(out, uint64(len(blob)))
		out = append(out, blob...)
	}
	return out
}

// decodeMemoBody reverses encodeMemoBody without panicking: the store's
// checksum already rejects torn bytes, so a malformed body means a stale
// format and is simply refused.
func decodeMemoBody(body []byte) (pre, post, acc []byte, ok bool) {
	next := func(b []byte) ([]byte, []byte, bool) {
		if len(b) < 8 {
			return nil, nil, false
		}
		n := binary.LittleEndian.Uint64(b)
		b = b[8:]
		if uint64(len(b)) < n {
			return nil, nil, false
		}
		return b[:n:n], b[n:], true
	}
	var rest []byte
	if pre, rest, ok = next(body); !ok {
		return nil, nil, nil, false
	}
	if post, rest, ok = next(rest); !ok {
		return nil, nil, nil, false
	}
	if acc, rest, ok = next(rest); !ok || len(rest) != 0 {
		return nil, nil, nil, false
	}
	return pre, post, acc, true
}

// loadFromDisk tries the persistent store for a signature the memory
// cache missed. The decoded pre-state must byte-match the probe (the
// SHA-256 key makes a mismatch all but impossible; the check keeps a
// corrupted-but-checksummed entry from ever replaying).
func (lm *LayerMemo) loadFromDisk(st *memostore.Store, salt, sig string, key memoKey, pre []byte) *memoEntry {
	dk := diskKey(salt, sig, key.layer, pre)
	body, ok := st.Load(dk)
	if !ok {
		return nil
	}
	dpre, post, acc, ok := decodeMemoBody(body)
	if !ok || !bytes.Equal(dpre, pre) {
		st.Delete(dk)
		return nil
	}
	e := &memoEntry{pre: dpre, post: post, acc: acc}
	lm.mu.Lock()
	e, _ = lm.insertLocked(key, e)
	lm.diskHits++
	lm.mu.Unlock()
	return e
}

// liveIns returns, per layer, the sorted instruction indices outside the
// layer whose completion times the layer's dependencies read — the only
// done[] entries that belong in the layer's state signature.
func (lm *LayerMemo) liveIns(prog *compiler.Program) [][]int32 {
	lm.mu.Lock()
	out, ok := lm.liveIn[prog]
	lm.mu.Unlock()
	if ok {
		return out
	}
	out = make([][]int32, len(prog.LayerFirst))
	for li := range prog.LayerFirst {
		first, last := prog.LayerFirst[li], prog.LayerLast[li]
		seen := make(map[int32]struct{})
		var list []int32
		for idx := first; idx <= last; idx++ {
			for _, d := range prog.Trace.Instrs[idx].Deps {
				if d < first {
					if _, dup := seen[d]; !dup {
						seen[d] = struct{}{}
						list = append(list, d)
					}
				}
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[li] = list
	}
	lm.mu.Lock()
	if prior, ok := lm.liveIn[prog]; ok {
		out = prior
	} else {
		lm.liveIn[prog] = out
	}
	lm.mu.Unlock()
	return out
}

// hashBlob is FNV-1a over 8-byte words (canon blobs are u64-aligned).
func hashBlob(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for ; len(b) >= 8; b = b[8:] {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 1099511628211
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// layersContiguous reports whether the program's layer table tiles the
// instruction trace exactly — the precondition for driving execution
// layer-by-layer.
func layersContiguous(p *compiler.Program) bool {
	n := len(p.LayerFirst)
	if n == 0 || p.LayerFirst[0] != 0 {
		return false
	}
	for li := 1; li < n; li++ {
		if p.LayerFirst[li] != p.LayerLast[li-1]+1 {
			return false
		}
	}
	return p.LayerLast[n-1] == int32(len(p.Trace.Instrs))-1
}

// RunMemoized drives the machine to completion like Run, consulting memo
// before executing each layer and recording layers it runs live. It
// requires a machine on a freshly constructed engine (the engine arms its
// memoization bookkeeping at the first layer boundary and panics if it has
// already served traffic). Falls back to Run when memoization cannot
// apply: nil memo, per-block path, IOMMU enabled, an engine without layer
// canonicalization, or a layer table that does not tile the trace.
//
// Lookup escalates in cost: the in-memory cache, then the persistent
// store (if attached), then the record-once flight table — a concurrent
// recording of the same signature is waited on and replayed, never
// duplicated — and only then a live recording. The recorded entry is
// published to waiters before it is persisted, so disk latency is never
// on another machine's critical path.
func (m *Machine) RunMemoized(memo *LayerMemo) {
	ls, isLS := m.eng.(memprot.LayerState)
	if memo == nil || !m.batched || m.iotlb != nil || !isLS || !layersContiguous(m.prog) {
		m.Run()
		return
	}
	live := memo.liveIns(m.prog)
	st, salt := memo.storeConfig()
	sig := ""
	if st != nil {
		sig = memo.progSig(m.prog)
	}
	for li := range m.prog.LayerFirst {
		first, last := int(m.prog.LayerFirst[li]), int(m.prog.LayerLast[li])
		ls.BeginLayer()
		base := m.dmaFree
		m.canonBuf = m.appendPre(m.canonBuf[:0], ls, live[li], base)
		pre := m.canonBuf
		key := memoKey{m.prog, int32(li), hashBlob(pre)}
		if e := memo.lookup(key, pre); e != nil {
			m.replayLayer(e, ls, base, first, last)
			continue
		}
		if st != nil {
			if e := memo.loadFromDisk(st, salt, sig, key, pre); e != nil {
				m.replayLayer(e, ls, base, first, last)
				continue
			}
		}
		e, fl, leader := memo.claim(key, pre)
		if e != nil {
			m.replayLayer(e, ls, base, first, last)
			continue
		}
		if fl != nil && !leader {
			<-fl.done
			if fl.e != nil {
				memo.noteFlightHit()
				m.replayLayer(fl.e, ls, base, first, last)
				continue
			}
			// The recorder bailed; fall through and record live.
		}
		rec := m.recordLayer(ls, base, first, last, pre)
		got, fresh := memo.record(key, rec)
		if leader {
			memo.release(key, fl, got)
		}
		if st != nil && fresh {
			st.Save(diskKey(salt, sig, key.layer, pre), encodeMemoBody(got))
		}
	}
}

// recordLayer runs one layer live and captures its effect as a memo
// entry: the end-state canon plus wrapping accumulator deltas.
func (m *Machine) recordLayer(ls memprot.LayerState, base uint64, first, last int, pre []byte) *memoEntry {
	m.accBuf = m.appendAcc(m.accBuf[:0], ls)
	nAcc := len(m.accBuf)
	m.runLayer(last)
	m.accBuf = m.appendAcc(m.accBuf, ls)
	after := m.accBuf[nAcc:]
	acc := make([]byte, len(after))
	for i := 0; i < len(after); i += 8 {
		binary.LittleEndian.PutUint64(acc[i:],
			binary.LittleEndian.Uint64(after[i:])-binary.LittleEndian.Uint64(m.accBuf[i:]))
	}
	return &memoEntry{
		pre:  append([]byte(nil), pre...),
		post: m.appendPost(nil, ls, base, first, last),
		acc:  acc,
	}
}

// runLayer executes instructions up to and including index last, exactly
// as Run would: computes retire in order on the PE array, DMA
// instructions issue and serve to completion. Unlike NextReady it stops at
// the layer boundary instead of running ahead to the next DMA.
func (m *Machine) runLayer(last int) {
	for m.pos <= last {
		in := &m.prog.Trace.Instrs[m.pos]
		switch in.Op {
		case isa.OpCompute, isa.OpPreload:
			start := max64(m.peFree, m.depsDone(in))
			end := start + in.Cycles
			m.peFree = end
			m.computeBusy += in.Cycles
			m.retire(m.pos, end)
			m.pos++
		case isa.OpMvIn, isa.OpMvOut:
			m.startDMA(m.pos, in)
			m.pos++
			m.ServeRun()
		default:
			panic(fmt.Sprintf("npu: unknown op %v", in.Op))
		}
	}
}

// appendPre canonicalizes the machine+engine state a layer's execution
// depends on: PE clock, DMA issue window, the completion times of
// out-of-layer dependencies, the context's address/slot relocation, and
// the engine. All times relative to base.
func (m *Machine) appendPre(dst []byte, ls memprot.LayerState, live []int32, base uint64) []byte {
	dst = canon.AppendU64(dst, m.peFree-base)
	dst = m.window.AppendCanon(dst, base)
	dst = canon.AppendU64(dst, uint64(len(live)))
	for _, d := range live {
		dst = canon.AppendU64(dst, m.done[d]-base)
	}
	dst = canon.AppendU64(dst, m.dataOffset)
	dst = canon.AppendU64(dst, m.slotOffset)
	return ls.AppendCanon(dst, base)
}

// appendPost canonicalizes the machine+engine state after the layer ran:
// clocks, window, every done[] entry the layer retired, the engine's end
// state, and the engine's journaled delta.
func (m *Machine) appendPost(dst []byte, ls memprot.LayerState, base uint64, first, last int) []byte {
	dst = canon.AppendU64(dst, m.peFree-base)
	dst = canon.AppendU64(dst, m.dmaFree-base)
	dst = m.window.AppendCanon(dst, base)
	for idx := first; idx <= last; idx++ {
		dst = canon.AppendU64(dst, m.done[idx]-base)
	}
	dst = ls.AppendCanon(dst, base)
	return ls.AppendDelta(dst)
}

// appendAcc snapshots every monotone accumulator a layer advances.
func (m *Machine) appendAcc(dst []byte, ls memprot.LayerState) []byte {
	dst = canon.AppendU64(dst, m.computeBusy)
	dst = canon.AppendU64(dst, m.blocksMoved)
	dst = canon.AppendU64(dst, m.blocksRead)
	dst = canon.AppendU64(dst, m.blocksWritten)
	dst = canon.AppendU64(dst, m.runsServed)
	return ls.AppendAccum(dst)
}

// replayLayer installs a recorded layer's end state and accumulator
// deltas. lastDone is recomputed from the restored retire times rather
// than restored (it is a running maximum over the whole run, not part of
// the layer's state signature).
func (m *Machine) replayLayer(e *memoEntry, ls memprot.LayerState, base uint64, first, last int) {
	src := e.post
	var v uint64
	v, src = canon.U64(src)
	m.peFree = v + base
	v, src = canon.U64(src)
	m.dmaFree = v + base
	src = m.window.RestoreCanon(src, base)
	for idx := first; idx <= last; idx++ {
		v, src = canon.U64(src)
		m.done[idx] = v + base
		if m.done[idx] > m.lastDone {
			m.lastDone = m.done[idx]
		}
	}
	src = ls.RestoreCanon(src, base)
	src = ls.ApplyDelta(src)
	if len(src) != 0 {
		panic("npu: trailing bytes in memo post blob")
	}
	src = e.acc
	v, src = canon.U64(src)
	m.computeBusy += v
	v, src = canon.U64(src)
	m.blocksMoved += v
	v, src = canon.U64(src)
	m.blocksRead += v
	v, src = canon.U64(src)
	m.blocksWritten += v
	v, src = canon.U64(src)
	m.runsServed += v
	src = ls.AddAccum(src)
	if len(src) != 0 {
		panic("npu: trailing bytes in memo accumulator blob")
	}
	m.pos = last + 1
}
