package npu

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/stats"
	"tnpu/internal/tensor"
)

// pathState captures every observable of one simulation — timing, traffic,
// cache statistics, per-layer spans, and raw bus counters — so the batched
// and per-block paths can be compared for exact equality.
type pathState struct {
	Cycles, Compute, Blocks   uint64
	Spans                     []uint64
	Traffic                   stats.Traffic
	Counter, Hash, MAC        stats.CacheStats
	BusBytes, BusBusy, BusNow uint64
	TLBMisses                 uint64
}

func runPath(t testing.TB, prog *compiler.Program, scheme memprot.Scheme, cfg Config, mutate func(*memprot.Config), batched bool) pathState {
	t.Helper()
	bus := dram.NewBus(cfg.Mem)
	mpCfg := memprot.DefaultConfig(bus)
	if mutate != nil {
		mutate(&mpCfg)
	}
	eng, err := memprot.New(scheme, mpCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, eng)
	if cfg.TLBEntries > 0 {
		m.EnableTranslation(cfg.TLBEntries, cfg.TLBWalkCycles)
	}
	m.SetBatched(batched)
	if m.Batched() != batched {
		t.Fatalf("scheme %v: requested batched=%v, machine reports %v", scheme, batched, m.Batched())
	}
	m.Run()
	eng.Flush(m.Cycles())
	return pathState{
		Cycles:    m.Cycles(),
		Compute:   m.ComputeBusy(),
		Blocks:    m.BlocksMoved(),
		Spans:     m.LayerSpans(),
		Traffic:   *eng.Traffic(),
		Counter:   *eng.CounterStats(),
		Hash:      *eng.HashStats(),
		MAC:       *eng.MACStats(),
		BusBytes:  bus.BytesMoved(),
		BusBusy:   bus.BusyCycles(),
		BusNow:    bus.Now(),
		TLBMisses: m.TLBMisses,
	}
}

// diffPaths fails the test when the two execution paths disagree on any
// observable.
func diffPaths(t *testing.T, prog *compiler.Program, scheme memprot.Scheme, cfg Config, mutate func(*memprot.Config)) {
	t.Helper()
	per := runPath(t, prog, scheme, cfg, mutate, false)
	bat := runPath(t, prog, scheme, cfg, mutate, true)
	if !reflect.DeepEqual(per, bat) {
		t.Errorf("batched path diverges from per-block reference:\n  per-block: %+v\n  batched:   %+v", per, bat)
	}
}

// equivalenceModels returns the workload set for the differential suite:
// every model normally, a pathology-covering subset under -short (dense
// conv, embedding gathers, LSTM).
func equivalenceModels(t *testing.T) []string {
	if testing.Short() {
		return []string{"res", "sent", "ds2"}
	}
	return model.ShortNames()
}

// TestBatchedEquivalence pins the tentpole guarantee: for every workload,
// NPU class, and protection scheme, the batched fast path is cycle- and
// stats-identical to the per-block reference.
func TestBatchedEquivalence(t *testing.T) {
	var mu sync.Mutex
	progs := map[string]*compiler.Program{}
	compile := func(t *testing.T, short string, cfg Config) *compiler.Program {
		mu.Lock()
		defer mu.Unlock()
		key := cfg.Name + "/" + short
		if p, ok := progs[key]; ok {
			return p
		}
		p := compileFor(t, short, cfg)
		progs[key] = p
		return p
	}
	for _, cfg := range []Config{SmallNPU(), LargeNPU()} {
		for _, short := range equivalenceModels(t) {
			for _, scheme := range memprot.AllSchemes() {
				cfg, short, scheme := cfg, short, scheme
				t.Run(fmt.Sprintf("%s/%s/%s", cfg.Name, short, scheme), func(t *testing.T) {
					t.Parallel()
					diffPaths(t, compile(t, short, cfg), scheme, cfg, nil)
				})
			}
		}
	}
}

// TestBatchedEquivalenceAblations covers the configurations the ablation
// benches sweep: multi-channel buses, non-default MAC slot sizes (including
// one that does not divide the 64B line), SGX-like tree arity, counter
// prefetch, a single-MSHR walker, an IOMMU, and a degenerate one-line
// counter cache (which must force the baseline's safe fallback).
func TestBatchedEquivalenceAblations(t *testing.T) {
	base := SmallNPU()
	prog := compileFor(t, "df", base)
	variants := []struct {
		name   string
		cfg    func() Config
		mutate func(*memprot.Config)
	}{
		{"channels4", func() Config { c := base; c.Mem.Channels = 4; return c }, nil},
		{"channels3", func() Config { c := base; c.Mem.Channels = 3; return c }, nil},
		{"macslot4", func() Config { return base }, func(c *memprot.Config) { c.MACSlotBytes = 4 }},
		{"macslot16", func() Config { return base }, func(c *memprot.Config) { c.MACSlotBytes = 16 }},
		{"macslot24-nondividing", func() Config { return base }, func(c *memprot.Config) { c.MACSlotBytes = 24 }},
		{"arity8", func() Config { return base }, func(c *memprot.Config) { c.TreeArity = 8 }},
		{"prefetch", func() Config { return base }, func(c *memprot.Config) { c.CounterPrefetch = true }},
		{"prefetch-1line-counter", func() Config { return base }, func(c *memprot.Config) {
			c.CounterPrefetch = true
			c.CounterCacheBytes = 64
		}},
		{"mshr1", func() Config { return base }, func(c *memprot.Config) { c.WalkMSHRs = 1 }},
		{"iommu", func() Config { c := base; c.TLBEntries = 16; c.TLBWalkCycles = 200; return c }, nil},
		{"zero-latency", func() Config { c := base; c.Mem.LatencyCycles = 0; return c }, nil},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			cfg := v.cfg()
			p := prog
			if cfg.Mem.Channels != base.Mem.Channels { // program is config-independent for Mem changes
				p = prog
			}
			for _, scheme := range memprot.AllSchemes() {
				diffPaths(t, p, scheme, cfg, v.mutate)
			}
		})
	}
}

// TestBatchedDefault confirms the fast path is the default execution path
// for stock engines and that ForcePerBlock overrides it globally.
func TestBatchedDefault(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(memprot.TreeLess, memprot.DefaultConfig(bus))
	if err != nil {
		t.Fatal(err)
	}
	if m := NewMachine(prog, eng); !m.Batched() {
		t.Error("batched path is not the default")
	}
	ForcePerBlock(true)
	m := NewMachine(prog, eng)
	ForcePerBlock(false)
	if m.Batched() {
		t.Error("ForcePerBlock(true) did not select the per-block path")
	}
}

// fuzzByte reads configuration bytes off the fuzz input, defaulting to 0
// once exhausted.
type fuzzReader struct {
	data []byte
	pos  int
}

func (f *fuzzReader) byte() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

func (f *fuzzReader) u16() uint64 { return uint64(f.byte())<<8 | uint64(f.byte()) }

// buildFuzzProgram derives a small but structurally rich synthetic program
// from fuzz bytes: mixed mvin/mvout/compute instructions, 1–4 segments
// each with unaligned addresses and sizes, versions, backward deps, and
// boundary-hunting ops — a counter-hammer that rewrites one range until a
// minor counter wraps, a near-wrap op that stops exactly at/before/after
// the 7-bit edge, capacity-edge working sets that fill a metadata cache to
// the line, and dirty-fill ops that leave victims pending for later
// instructions. The trace is split into 1–4 contiguous layers so edge
// state crosses memoized layer boundaries.
func buildFuzzProgram(f *fuzzReader) *compiler.Program {
	var tr isa.Trace
	nInstr := 2 + int(f.byte()%10)
	for i := 0; i < nInstr; i++ {
		var in isa.Instr
		switch f.byte() % 11 {
		case 0, 1:
			in.Op = isa.OpMvIn
		case 2:
			in.Op = isa.OpMvOut
		case 3:
			in.Op = isa.OpCompute
			in.Cycles = 1 + f.u16()
		case 4:
			// Near-overflow: rewrite one aligned range 126/127/128 times, so
			// a minor counter ends the instruction one short of, exactly at,
			// or one past the 7-bit wrap — the analytic precondition's edge.
			in.Op = isa.OpMvOut
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			span := isa.Segment{Addr: f.u16() * 64, Bytes: (1 + f.u16()%64) * dram.BlockBytes}
			rep := 126 + int(f.byte()%3)
			for j := 0; j < rep; j++ {
				in.Segments = append(in.Segments, span)
			}
		case 5:
			// Capacity edge: one read whose metadata working set lands
			// exactly at, one line under, or one line over a metadata-cache
			// capacity (MAC cache: 8KB/8B slots = 1024 blocks; counter
			// cache: 4KB at arity 64 = 4096 blocks — both scaled by the
			// fuzzed slot/arity/capacity draws, so the exact edge moves).
			in.Op = isa.OpMvIn
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			blocks := []uint64{1024, 1016, 1032, 4096, 4088, 4104}[f.byte()%6]
			in.Segments = append(in.Segments, isa.Segment{Addr: f.u16() * 64, Bytes: blocks * dram.BlockBytes})
		case 6:
			// Dirty fill: write a cache-sized span so every metadata line
			// sits dirty, leaving victim writebacks pending for whatever the
			// following instructions (often in the next layer) touch.
			in.Op = isa.OpMvOut
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			blocks := []uint64{1024, 4096}[f.byte()%2]
			in.Segments = append(in.Segments, isa.Segment{Addr: f.u16() * 64, Bytes: blocks * dram.BlockBytes})
		default:
			// Hammer: one mvout whose segments rewrite the same 48-block
			// range far past the 7-bit minor-counter limit. The lone
			// half-range head-start segment puts the tail blocks one bump
			// ahead, so the first wrap lands mid-run (block 24 of 48), not
			// on a run boundary — exercising the overflowPending guard and
			// the re-encryption burst inside the reference fallback.
			in.Op = isa.OpMvOut
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			const half = 24 * dram.BlockBytes
			base := f.u16() * 64
			in.Segments = append(in.Segments, isa.Segment{Addr: base + half, Bytes: half})
			rep := 130 + int(f.byte()%40) // always past the 128-write wrap
			for j := 0; j < rep; j++ {
				in.Segments = append(in.Segments, isa.Segment{Addr: base, Bytes: 2 * half})
			}
		}
		if in.IsDMA() && len(in.Segments) == 0 {
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			nSeg := 1 + int(f.byte()%4)
			for s := 0; s < nSeg; s++ {
				in.Segments = append(in.Segments, isa.Segment{
					Addr:  f.u16() * 37, // unaligned, spread over ~2.4MB
					Bytes: 1 + f.u16()%8192,
				})
			}
		}
		if i > 0 && f.byte()%2 == 0 {
			in.Deps = append(in.Deps, int32(int(f.byte())%i))
		}
		tr.Append(in)
	}
	if err := tr.Validate(); err != nil {
		panic(err) // construction above must always be valid
	}
	// Tile the trace into 1–4 contiguous layers so dirty lines, pending
	// victims, and near-wrap counters carry across memoized boundaries.
	n := len(tr.Instrs)
	nLayers := 1 + int(f.byte())%4
	if nLayers > n {
		nLayers = n
	}
	prog := &compiler.Program{Trace: tr}
	first := 0
	for li := 0; li < nLayers; li++ {
		last := first + (n-first)/(nLayers-li) - 1
		prog.LayerFirst = append(prog.LayerFirst, int32(first))
		prog.LayerLast = append(prog.LayerLast, int32(last))
		first = last + 1
	}
	return prog
}

// FuzzBatchedVsPerBlock drives random traces, memory geometries, and
// protection parameters through both execution paths and requires exact
// agreement on every observable.
func FuzzBatchedVsPerBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{0xff, 0x80, 0x41, 0x00, 0x13, 0x37, 0xca, 0xfe, 0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{3, 3, 3, 3, 200, 200, 200, 200, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fuzzReader{data: data}
		mem := dram.Config{
			FreqHz:               []uint64{1_000_000_000, 2_750_000_000, 3_000_000_000}[fr.byte()%3],
			BandwidthBytesPerSec: []uint64{7_000_000_000, 11_000_000_000, 22_000_000_000}[fr.byte()%3],
			LatencyCycles:        []uint64{0, 10, 100}[fr.byte()%3],
			Channels:             int(fr.byte()%4) + 1,
		}
		scheme := memprot.AllSchemes()[fr.byte()%4]
		// Draw the protection knobs once: mutate runs twice (once per path)
		// and must apply the identical configuration both times.
		slot := []uint64{4, 8, 16, 24, 64}[fr.byte()%5]
		arity := []uint64{8, 64}[fr.byte()%2]
		mshrs := 1 + int(fr.byte()%2)
		prefetch := fr.byte()%2 == 0
		ctrBytes := []int{64, 256, 4 << 10}[fr.byte()%3]
		mutate := func(c *memprot.Config) {
			c.MACSlotBytes = slot
			c.TreeArity = arity
			c.WalkMSHRs = mshrs
			c.CounterPrefetch = prefetch
			c.CounterCacheBytes = ctrBytes
		}
		prog := buildFuzzProgram(fr)
		cfg := SmallNPU()
		cfg.Mem = mem
		per := runPath(t, prog, scheme, cfg, mutate, false)
		bat := runPath(t, prog, scheme, cfg, mutate, true)
		if !reflect.DeepEqual(per, bat) {
			t.Fatalf("divergence (scheme %v, mem %+v):\n  per-block: %+v\n  batched:   %+v", scheme, mem, per, bat)
		}
		// Memoized legs: the recording pass and a replay from the warm memo
		// must also agree with the per-block reference exactly.
		memo := NewLayerMemo()
		rec := runMemoPath(t, prog, scheme, cfg, mutate, memo)
		if !reflect.DeepEqual(per, rec) {
			t.Fatalf("memo recording divergence (scheme %v, mem %+v):\n  per-block: %+v\n  recording: %+v", scheme, mem, per, rec)
		}
		rep := runMemoPath(t, prog, scheme, cfg, mutate, memo)
		if !reflect.DeepEqual(per, rep) {
			t.Fatalf("memo replay divergence (scheme %v, mem %+v):\n  per-block: %+v\n  replay:    %+v", scheme, mem, per, rep)
		}
	})
}

// BenchmarkMachineRun measures a full dense-workload simulation per scheme
// on three paths: the per-block reference, the streak path (batched, no
// memo), and the production path (batched + layer memo, which replays the
// whole run from cache after the first iteration — the harness's steady
// state). BENCH_PR6.json records the batched/per-block ratio.
func BenchmarkMachineRun(b *testing.B) {
	for _, cfg := range []Config{SmallNPU(), LargeNPU()} {
		m, err := model.ByShort("res")
		if err != nil {
			b.Fatal(err)
		}
		prog, err := compiler.Compile(m, cfg.CompilerConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, scheme := range memprot.AllSchemes() {
			for _, path := range []string{"perblock", "streak", "batched"} {
				path := path
				b.Run(fmt.Sprintf("%s/res/%s/%s", cfg.Name, scheme, path), func(b *testing.B) {
					var memo *LayerMemo
					if path == "batched" {
						memo = NewLayerMemo()
					}
					for i := 0; i < b.N; i++ {
						bus := dram.NewBus(cfg.Mem)
						eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
						if err != nil {
							b.Fatal(err)
						}
						mach := NewMachine(prog, eng)
						switch path {
						case "perblock":
							mach.SetBatched(false)
							mach.Run()
						case "streak":
							mach.Run()
						case "batched":
							mach.RunMemoized(memo)
						}
						eng.Flush(mach.Cycles())
					}
				})
			}
		}
	}
}
