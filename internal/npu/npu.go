// Package npu is the cycle-accounting NPU simulator: it executes a
// compiled instruction trace on two in-order functional units — a DMA
// engine that moves 64B blocks through a memory-protection engine, and the
// systolic PE array — connected by the compiler's dependency edges. The
// block-granular design lets several NPUs interleave fairly on one shared
// bus and one shared security engine (the Sec. V-C scalability setup).
package npu

import (
	"fmt"
	"sync/atomic"

	"tnpu/internal/cache"
	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
	"tnpu/internal/spm"
	"tnpu/internal/stats"
	"tnpu/internal/systolic"
)

// Config is one NPU's hardware description (Table II).
type Config struct {
	Name  string //tnpu:canonskip display label, never read by the timing model
	Array systolic.Array
	SPM   spm.SPM
	Mem   dram.Config

	// TLBEntries enables the IOMMU model (Fig. 11): each mvin/mvout
	// translates the 4KB pages its segments touch through a TLB of this
	// many entries; misses pay TLBWalkCycles for the page walk plus the
	// EEPCM validation. Zero disables translation modelling (the paper
	// folds it into the 100-cycle DRAM figure, after NeuMMU).
	TLBEntries    int
	TLBWalkCycles uint64
}

// SmallNPU returns the Samsung Exynos 990-class configuration.
func SmallNPU() Config {
	return Config{
		Name:  "small",
		Array: systolic.Array{Rows: 32, Cols: 32},
		SPM:   spm.SPM{CapacityBytes: 480 << 10},
		Mem: dram.Config{
			FreqHz:               2_750_000_000,
			BandwidthBytesPerSec: 11_000_000_000,
			LatencyCycles:        100,
		},
	}
}

// LargeNPU returns the ARM Ethos-N77-class configuration.
func LargeNPU() Config {
	return Config{
		Name:  "large",
		Array: systolic.Array{Rows: 45, Cols: 45},
		SPM:   spm.SPM{CapacityBytes: 1 << 20},
		Mem: dram.Config{
			FreqHz:               1_000_000_000,
			BandwidthBytesPerSec: 22_000_000_000,
			LatencyCycles:        100,
		},
	}
}

// CompilerConfig derives the compiler view of this NPU.
func (c Config) CompilerConfig() compiler.Config {
	return compiler.Config{Array: c.Array, SPM: c.SPM}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Array.Validate(); err != nil {
		return err
	}
	if err := c.SPM.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// Machine executes one program against a protection engine. It exposes a
// block-granular stepping interface so a multi-NPU scheduler can interleave
// machines on shared memory; Run drives a single machine to completion.
type Machine struct {
	prog *compiler.Program
	eng  memprot.Engine

	done    []uint64
	pos     int
	dmaFree uint64
	peFree  uint64

	// Active DMA instruction cursor.
	active    int
	segIdx    int
	blockAddr uint64
	segEnd    uint64
	issueAt   uint64
	maxDataAt uint64

	// window is the DMA engine's outstanding-request window: block i may
	// issue once block i-dmaOutstanding has cleared its channel, so
	// transfers pipeline across memory channels without modelling an
	// unbounded request queue. Shared by the per-block and batched paths
	// so both see identical issue gating.
	window *dram.IssueWindow

	// runEng is non-nil when the engine supports the batched fast path;
	// batched selects it (the default when available). bounder is non-nil
	// when the engine additionally admits the closed-form run time bound
	// that lets a multi-NPU arbiter burst whole runs below an interaction
	// horizon (ServeRunUntil).
	runEng  memprot.RunEngine
	bounder memprot.RunBounder
	batched bool

	// iotlb, when non-nil, models the per-instruction IOMMU translation.
	iotlb      *cache.Cache
	walkCycles uint64
	TLBMisses  uint64

	computeBusy uint64
	lastDone    uint64
	blocksMoved uint64

	// Per-NPU attribution counters (multi-NPU QoS stats): blocks served by
	// direction, and how many engine-level run bursts served them. Blocks
	// counts are execution-path invariant; runsServed is observability only
	// (it differs between the per-block reference and the batched path).
	blocksRead    uint64
	blocksWritten uint64
	runsServed    uint64

	dataOffset uint64
	slotOffset uint64

	// canonBuf/accBuf are reused scratch for layer-memoization blobs
	// (memo.go), so a memoized run's boundary checks allocate only when a
	// layer is recorded.
	canonBuf []byte
	accBuf   []byte
}

// dmaOutstanding is the DMA engine's maximum outstanding block requests.
const dmaOutstanding = 16

// NewMachine prepares a machine; the engine may be shared across machines.
func NewMachine(prog *compiler.Program, eng memprot.Engine) *Machine {
	return NewMachineAt(prog, eng, 0, 0)
}

// NewMachineAt prepares a machine whose NPU context lives at a distinct
// physical base: dataOffset relocates every tensor address and slotOffset
// relocates the context's version-table slots. Multi-NPU systems give each
// NPU its own region so shared metadata caches see true (conflicting)
// working sets rather than accidentally shared lines.
func NewMachineAt(prog *compiler.Program, eng memprot.Engine, dataOffset, slotOffset uint64) *Machine {
	m := &Machine{
		prog:       prog,
		eng:        eng,
		done:       make([]uint64, len(prog.Trace.Instrs)),
		active:     -1,
		dataOffset: dataOffset,
		slotOffset: slotOffset,
		window:     dram.NewIssueWindow(dmaOutstanding),
	}
	m.runEng, _ = eng.(memprot.RunEngine)
	m.bounder, _ = eng.(memprot.RunBounder)
	m.batched = m.runEng != nil && !forcePerBlock.Load()
	return m
}

// forcePerBlock disables the batched fast path for every subsequently
// constructed machine; tnpu-bench -perblock uses it for A/B timing.
var forcePerBlock atomic.Bool

// ForcePerBlock globally selects the per-block reference path for machines
// constructed after the call.
func ForcePerBlock(on bool) { forcePerBlock.Store(on) }

// SetBatched selects this machine's execution path (no-op force-off when
// the engine lacks the batched interface). Both paths are cycle- and
// stats-identical; per-block exists as the differential reference and for
// block-granular multi-NPU interleave.
func (m *Machine) SetBatched(on bool) { m.batched = on && m.runEng != nil }

// Batched reports whether the machine will serve runs via the fast path.
func (m *Machine) Batched() bool { return m.batched }

func (m *Machine) depsDone(in *isa.Instr) uint64 {
	var t uint64
	for _, d := range in.Deps {
		if m.done[d] > t {
			t = m.done[d]
		}
	}
	return t
}

// retire completes an instruction, tracking the machine's finish time.
func (m *Machine) retire(idx int, at uint64) {
	m.done[idx] = at
	if at > m.lastDone {
		m.lastDone = at
	}
}

// NextReady advances through compute instructions (which need no bus) and
// returns the issue-ready time of the next memory block, or ok=false when
// the trace is exhausted.
func (m *Machine) NextReady() (ready uint64, ok bool) {
	for m.active < 0 {
		if m.pos >= len(m.prog.Trace.Instrs) {
			return 0, false
		}
		in := &m.prog.Trace.Instrs[m.pos]
		switch in.Op {
		case isa.OpCompute, isa.OpPreload:
			start := max64(m.peFree, m.depsDone(in))
			end := start + in.Cycles
			m.peFree = end
			m.computeBusy += in.Cycles
			m.retire(m.pos, end)
			m.pos++
		case isa.OpMvIn, isa.OpMvOut:
			m.startDMA(m.pos, in)
			m.pos++
		default:
			panic(fmt.Sprintf("npu: unknown op %v", in.Op))
		}
	}
	return m.issueAt, true
}

// EnableTranslation attaches an IOMMU model to the machine.
func (m *Machine) EnableTranslation(entries int, walkCycles uint64) {
	m.iotlb = cache.New("iotlb", entries*4096, 4096, 4)
	m.walkCycles = walkCycles
}

// translate runs the instruction's pages through the IOMMU (Fig. 11):
// each TLB miss performs a page walk and EEPCM validation, serializing
// the instruction's start.
func (m *Machine) translate(start uint64, in *isa.Instr) uint64 {
	if m.iotlb == nil {
		return start
	}
	for _, seg := range in.Segments {
		first := (seg.Addr + m.dataOffset) &^ 4095
		for page := first; page < seg.Addr+m.dataOffset+seg.Bytes; page += 4096 {
			if res := m.iotlb.Access(page, false); !res.Hit {
				m.TLBMisses++
				start += m.walkCycles
			}
		}
	}
	return start
}

// startDMA begins a memory instruction: the IOMMU validates the covered
// pages, the software fetches the version number from the fully protected
// region (Sec. IV-C), then the DMA engine streams the covered 64B blocks.
func (m *Machine) startDMA(idx int, in *isa.Instr) {
	start := max64(m.dmaFree, m.depsDone(in))
	start = m.translate(start, in)
	slot := memprot.VTableSlot(uint32(in.Tensor), in.Tile) + m.slotOffset
	start = m.eng.VersionFetch(start, slot, in.Op == isa.OpMvOut)
	m.active = idx
	m.segIdx = 0
	m.issueAt = start
	m.maxDataAt = start
	m.loadSegment()
}

// noteIssue records a block's channel-clear time and returns when the DMA
// may issue its next request (the slot of the request dmaOutstanding ago).
func (m *Machine) noteIssue(busFree uint64) uint64 {
	return m.window.Note(busFree)
}

// loadSegment positions the block cursor at the current segment.
func (m *Machine) loadSegment() {
	seg := m.prog.Trace.Instrs[m.active].Segments[m.segIdx]
	m.blockAddr = seg.Addr &^ (dram.BlockBytes - 1)
	m.segEnd = seg.Addr + seg.Bytes
}

// ServeBlock pushes one block through the protection engine. Callers must
// have obtained a ready time from NextReady first.
func (m *Machine) ServeBlock() {
	in := &m.prog.Trace.Instrs[m.active]
	var busFree, dataAt uint64
	if in.Op == isa.OpMvIn {
		busFree, dataAt = m.eng.ReadBlock(m.issueAt, m.blockAddr+m.dataOffset, in.Version)
		m.blocksRead++
	} else {
		busFree, dataAt = m.eng.WriteBlock(m.issueAt, m.blockAddr+m.dataOffset, in.Version)
		m.blocksWritten++
	}
	m.blocksMoved++
	next := m.noteIssue(busFree)
	if next < m.issueAt+1 {
		next = m.issueAt + 1
	}
	m.issueAt = next
	if dataAt > m.maxDataAt {
		m.maxDataAt = dataAt
	}

	m.blockAddr += dram.BlockBytes
	if m.blockAddr < m.segEnd {
		return
	}
	m.segIdx++
	if m.segIdx < len(in.Segments) {
		m.loadSegment()
		return
	}
	// Instruction complete: data validity gates dependents; the DMA
	// engine itself is free once its issue window allows the next
	// instruction's first block.
	m.retire(m.active, m.maxDataAt)
	m.dmaFree = m.issueAt
	m.active = -1
}

// ServeRun serves every remaining block of the active DMA instruction —
// whole runs per segment, bounded only by segment ends and the DMA issue
// window (the engines iterate metadata-line streaks internally) — and
// retires it. Callers must have obtained a ready time from NextReady
// first. When the engine lacks the batched interface (or
// SetBatched(false)), it steps the per-block reference path to the same
// end state.
func (m *Machine) ServeRun() {
	if !m.batched {
		for m.active >= 0 {
			m.ServeBlock()
		}
		return
	}
	in := &m.prog.Trace.Instrs[m.active]
	for {
		n := int((m.segEnd - m.blockAddr + dram.BlockBytes - 1) / dram.BlockBytes)
		var next, dataAt uint64
		if in.Op == isa.OpMvIn {
			next, dataAt = m.runEng.ReadRun(m.issueAt, m.blockAddr+m.dataOffset, in.Version, n, m.window)
			m.blocksRead += uint64(n)
		} else {
			next, dataAt = m.runEng.WriteRun(m.issueAt, m.blockAddr+m.dataOffset, in.Version, n, m.window)
			m.blocksWritten += uint64(n)
		}
		m.runsServed++
		m.blocksMoved += uint64(n)
		m.issueAt = next
		if dataAt > m.maxDataAt {
			m.maxDataAt = dataAt
		}
		m.segIdx++
		if m.segIdx >= len(in.Segments) {
			break
		}
		m.loadSegment()
	}
	m.retire(m.active, m.maxDataAt)
	m.dmaFree = m.issueAt
	m.active = -1
}

// ServeRunUntil serves the active DMA instruction up to the interaction
// horizon: the earliest cycle at which any other machine sharing the bus
// could become issue-ready. It bursts whole runs through the batched path
// whenever the engine's closed-form time bound proves every block of the
// remaining instruction would issue strictly below the horizon, and steps
// the per-block reference otherwise — so serving order is exactly what
// block-granular arbitration would have produced. Callers must have
// obtained a ready time from NextReady first; at least one block is always
// served (the caller selected this machine, so it wins the tie even when
// its ready time equals the horizon). On return either the instruction
// retired or issueAt >= horizon and another machine may be ready.
func (m *Machine) ServeRunUntil(horizon uint64) {
	if m.batched && horizon == ^uint64(0) {
		// No other machine has pending work: the whole instruction is
		// uncontended, exactly the single-NPU case.
		m.ServeRun()
		return
	}
	// Within one serve window the burst budget (horizon minus the bound
	// base) only shrinks as blocks are served, so a failed bound attempt
	// mostly predicts the next one failing too — but the remaining run also
	// shrinks, so a later attempt can succeed. Exponential backoff between
	// attempts keeps the contended (lockstep) regime at O(1) amortized
	// bound arithmetic per block while still finding late-fitting bursts.
	tryBurst := m.batched && m.bounder != nil
	skip, backoff := uint64(0), uint64(1)
	for {
		if tryBurst && m.issueAt < horizon {
			if skip == 0 {
				if m.tryRunBelow(horizon) {
					return
				}
				backoff *= 2
				skip = backoff
			} else {
				skip--
			}
		}
		m.ServeBlock()
		if m.active < 0 || m.issueAt >= horizon {
			return
		}
	}
}

// tryRunBelow bursts the rest of the active instruction iff the engine's
// run bound proves the final issue time stays strictly below the horizon.
// The bound's increments are summed across all remaining segments with an
// early exit once the budget is exhausted, so a failed attempt in a
// contended window costs O(1) arithmetic in the common case. After a
// successful burst the actually reached issue time is checked against the
// bound: a violation means the bound model is unsound for this engine and
// the simulation can no longer claim equivalence, so it panics.
//
//tnpu:noalloc
func (m *Machine) tryRunBelow(horizon uint64) bool {
	in := &m.prog.Trace.Instrs[m.active]
	write := in.Op != isa.OpMvIn
	base := max64(m.issueAt, m.window.MaxSlot())
	if b := m.bounder.RunBoundBase(); b > base {
		base = b
	}
	if base >= horizon {
		return false
	}
	budget := horizon - base
	var total uint64
	addr, end := m.blockAddr, m.segEnd
	for si := m.segIdx; ; {
		n := int((end - addr + dram.BlockBytes - 1) / dram.BlockBytes)
		incr, ok := m.bounder.RunBoundIncr(addr+m.dataOffset, n, write)
		if !ok || incr >= budget-total {
			return false
		}
		total += incr
		if si++; si >= len(in.Segments) {
			break
		}
		seg := in.Segments[si]
		addr, end = seg.Addr&^(dram.BlockBytes-1), seg.Addr+seg.Bytes
	}
	// The arithmetic bound fits under the horizon; now consult the
	// (possibly state-scanning) burst guard for each remaining run.
	addr, end = m.blockAddr, m.segEnd
	for si := m.segIdx; ; {
		n := int((end - addr + dram.BlockBytes - 1) / dram.BlockBytes)
		if !m.bounder.RunBurstSafe(addr+m.dataOffset, n, write) {
			return false
		}
		if si++; si >= len(in.Segments) {
			break
		}
		seg := in.Segments[si]
		addr, end = seg.Addr&^(dram.BlockBytes-1), seg.Addr+seg.Bytes
	}
	m.ServeRun()
	if m.issueAt > base+total {
		panic("npu: run burst exceeded its closed-form horizon bound") //tnpu:allocok (invariant violation; never reached in steady state)
	}
	return true
}

// Run drives the machine to completion (single-NPU operation).
func (m *Machine) Run() {
	for {
		if _, ok := m.NextReady(); !ok {
			return
		}
		m.ServeRun()
	}
}

// Cycles returns the completion time of the last retired instruction.
func (m *Machine) Cycles() uint64 { return m.lastDone }

// ComputeBusy returns total PE-array busy cycles.
func (m *Machine) ComputeBusy() uint64 { return m.computeBusy }

// BlocksMoved returns the number of 64B blocks the DMA transferred.
func (m *Machine) BlocksMoved() uint64 { return m.blocksMoved }

// BlocksRead returns the blocks served on the read (mvin) path.
func (m *Machine) BlocksRead() uint64 { return m.blocksRead }

// BlocksWritten returns the blocks served on the write (mvout) path.
func (m *Machine) BlocksWritten() uint64 { return m.blocksWritten }

// RunsServed returns how many engine-level run bursts served this
// machine's blocks — zero on the per-block reference path.
func (m *Machine) RunsServed() uint64 { return m.runsServed }

// Utilization returns the PE array's busy fraction over the whole run —
// the number protection overhead eats into (an unsecure-equal compute
// time over a longer wall clock).
func (m *Machine) Utilization() float64 {
	if m.lastDone == 0 {
		return 0
	}
	return float64(m.computeBusy) / float64(m.lastDone)
}

// LayerSpans returns, per model layer, the cycle at which its last
// instruction retired — the per-layer breakdown behind the paper's
// observation that embedding layers dominate sent/tf.
func (m *Machine) LayerSpans() []uint64 {
	spans := make([]uint64, len(m.prog.LayerLast))
	for li, last := range m.prog.LayerLast {
		var end uint64
		for idx := m.prog.LayerFirst[li]; idx <= last; idx++ {
			if m.done[idx] > end {
				end = m.done[idx]
			}
		}
		spans[li] = end
	}
	return spans
}

// Result summarizes one simulation.
type Result struct {
	Scheme  memprot.Scheme
	Cycles  uint64
	Compute uint64
	// Utilization is the PE array busy fraction.
	Utilization float64
	Traffic     stats.Traffic
	Counter     stats.CacheStats
	Hash        stats.CacheStats
	MAC         stats.CacheStats
	// VersionTablePeakBytes is the Sec. IV-D storage metric.
	VersionTablePeakBytes int
}

// Run compiles nothing: it executes an already-compiled program under the
// given scheme on a fresh bus/engine and returns the summary.
func Run(prog *compiler.Program, scheme memprot.Scheme, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
	if err != nil {
		return Result{}, err
	}
	m := NewMachine(prog, eng)
	if cfg.TLBEntries > 0 {
		m.EnableTranslation(cfg.TLBEntries, cfg.TLBWalkCycles)
	}
	m.Run()
	eng.Flush(m.Cycles())
	return Result{
		Scheme:                scheme,
		Cycles:                m.Cycles(),
		Compute:               m.ComputeBusy(),
		Utilization:           m.Utilization(),
		Traffic:               *eng.Traffic(),
		Counter:               *eng.CounterStats(),
		Hash:                  *eng.HashStats(),
		MAC:                   *eng.MACStats(),
		VersionTablePeakBytes: prog.Table.PeakStorageBytes(),
	}, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
