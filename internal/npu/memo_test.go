package npu

import (
	"fmt"
	"reflect"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
	"tnpu/internal/tensor"
)

// runMemoPath executes a program through RunMemoized against the given
// shared memo, on an otherwise fresh bus/engine/machine, and captures the
// same observables as runPath.
func runMemoPath(t testing.TB, prog *compiler.Program, scheme memprot.Scheme, cfg Config, mutate func(*memprot.Config), memo *LayerMemo) pathState {
	t.Helper()
	bus := dram.NewBus(cfg.Mem)
	mpCfg := memprot.DefaultConfig(bus)
	if mutate != nil {
		mutate(&mpCfg)
	}
	eng, err := memprot.New(scheme, mpCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, eng)
	m.RunMemoized(memo)
	eng.Flush(m.Cycles())
	return pathState{
		Cycles:   m.Cycles(),
		Compute:  m.ComputeBusy(),
		Blocks:   m.BlocksMoved(),
		Spans:    m.LayerSpans(),
		Traffic:  *eng.Traffic(),
		Counter:  *eng.CounterStats(),
		Hash:     *eng.HashStats(),
		MAC:      *eng.MACStats(),
		BusBytes: bus.BytesMoved(),
		BusBusy:  bus.BusyCycles(),
		BusNow:   bus.Now(),
	}
}

// diffMemo pins the memoization guarantee: a recording pass (cold memo)
// and a replaying pass (warm memo) must both be bit-identical to the
// per-block reference on every observable.
func diffMemo(t *testing.T, prog *compiler.Program, scheme memprot.Scheme, cfg Config, mutate func(*memprot.Config)) {
	t.Helper()
	per := runPath(t, prog, scheme, cfg, mutate, false)
	memo := NewLayerMemo()
	rec := runMemoPath(t, prog, scheme, cfg, mutate, memo)
	if !reflect.DeepEqual(per, rec) {
		t.Errorf("memoized recording run diverges from per-block reference:\n  per-block: %+v\n  recording: %+v", per, rec)
	}
	rep := runMemoPath(t, prog, scheme, cfg, mutate, memo)
	if !reflect.DeepEqual(per, rep) {
		t.Errorf("memoized replay diverges from per-block reference:\n  per-block: %+v\n  replay:    %+v", per, rep)
	}
	layers := uint64(len(prog.LayerFirst))
	if memo.Hits() < layers {
		t.Errorf("replay pass hit %d memo entries, want at least the %d layers of the program", memo.Hits(), layers)
	}
}

// TestMemoizedEquivalence runs the full workload matrix through the
// memoization layer: record and replay must match the per-block reference
// exactly, and the second run must be served from the memo.
func TestMemoizedEquivalence(t *testing.T) {
	for _, cfg := range []Config{SmallNPU(), LargeNPU()} {
		for _, short := range equivalenceModels(t) {
			cfg, short := cfg, short
			t.Run(fmt.Sprintf("%s/%s", cfg.Name, short), func(t *testing.T) {
				t.Parallel()
				prog := compileFor(t, short, cfg)
				for _, scheme := range memprot.AllSchemes() {
					diffMemo(t, prog, scheme, cfg, nil)
				}
			})
		}
	}
}

// TestMemoSharedAcrossConfigs pins the signature's configuration salt: one
// memo shared between runs under different protection parameters must
// never cross-replay (results stay equal to each config's own reference).
func TestMemoSharedAcrossConfigs(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	memo := NewLayerMemo()
	mutations := []func(*memprot.Config){
		nil,
		func(c *memprot.Config) { c.MACSlotBytes = 16 },
		func(c *memprot.Config) { c.TreeArity = 8 },
		func(c *memprot.Config) { c.WalkMSHRs = 1 },
	}
	for i, mutate := range mutations {
		per := runPath(t, prog, memprot.Baseline, cfg, mutate, false)
		got := runMemoPath(t, prog, memprot.Baseline, cfg, mutate, memo)
		if !reflect.DeepEqual(per, got) {
			t.Errorf("mutation %d: shared memo corrupted the result:\n  want %+v\n  got  %+v", i, per, got)
		}
	}
}

// boundaryProgram builds a two-layer program around mvin/mvout segment
// lists: layer 0 holds the warm-up instructions, layer 1 the probe, so
// state (dirty metadata lines, minor counts, bus horizon) carries across a
// memoized layer boundary.
func boundaryProgram(t *testing.T, warm, probe []isa.Instr) *compiler.Program {
	t.Helper()
	var tr isa.Trace
	for _, in := range warm {
		tr.Append(in)
	}
	for _, in := range probe {
		tr.Append(in)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return &compiler.Program{
		Trace:      tr,
		LayerFirst: []int32{0, int32(len(warm))},
		LayerLast:  []int32{int32(len(warm) - 1), int32(len(tr.Instrs) - 1)},
	}
}

func mv(op isa.Op, tile int, segs ...isa.Segment) isa.Instr {
	return isa.Instr{Op: op, Tensor: tensor.ID(1), Tile: tile, Version: 1, Segments: segs}
}

// rewrites returns an mvout whose segments rewrite the same range n times.
func rewrites(addr, bytes uint64, n int) isa.Instr {
	in := mv(isa.OpMvOut, 0)
	for i := 0; i < n; i++ {
		in.Segments = append(in.Segments, isa.Segment{Addr: addr, Bytes: bytes})
	}
	return in
}

// TestClosedFormBoundary drives table-driven cases where the analytic
// preconditions *almost* hold — one counter bump short of a minor-counter
// wrap, a working set exactly at metadata-cache capacity, dirty victims
// pending from the previous layer — and requires the batched and memoized
// paths to stay bit-identical to the per-block reference on both sides of
// each boundary. Capacities with the default config: the 8KB MAC cache
// covers 1024 data blocks at 8B slots; the 4KB counter cache covers 4096
// blocks at arity 64.
func TestClosedFormBoundary(t *testing.T) {
	const blk = dram.BlockBytes
	const macCap = 1024 * blk // data bytes whose MAC lines exactly fill the MAC cache
	const ctrCap = 4096 * blk // data bytes whose counter lines exactly fill the counter cache
	span := isa.Segment{Addr: 0, Bytes: 48 * blk}
	cases := []struct {
		name  string
		warm  []isa.Instr
		probe []isa.Instr
	}{
		{"counter-one-short-of-wrap",
			[]isa.Instr{rewrites(span.Addr, span.Bytes, 126)},
			[]isa.Instr{rewrites(span.Addr, span.Bytes, 1)}}, // counts reach 127: still analytic
		{"counter-wraps-mid-layer",
			[]isa.Instr{rewrites(span.Addr, span.Bytes, 127)},
			[]isa.Instr{rewrites(span.Addr, span.Bytes, 1)}}, // 128th bump: overflow burst in probe layer
		{"working-set-at-mac-capacity",
			[]isa.Instr{mv(isa.OpMvIn, 0, isa.Segment{Addr: 0, Bytes: macCap})},
			[]isa.Instr{mv(isa.OpMvIn, 1, isa.Segment{Addr: 0, Bytes: macCap})}}, // second pass all-hit
		{"working-set-one-line-past-mac-capacity",
			[]isa.Instr{mv(isa.OpMvIn, 0, isa.Segment{Addr: 0, Bytes: macCap + 8*blk})},
			[]isa.Instr{mv(isa.OpMvIn, 1, isa.Segment{Addr: 0, Bytes: macCap + 8*blk})}}, // self-evicting
		{"working-set-at-counter-capacity",
			[]isa.Instr{mv(isa.OpMvIn, 0, isa.Segment{Addr: 0, Bytes: ctrCap})},
			[]isa.Instr{mv(isa.OpMvIn, 1, isa.Segment{Addr: 0, Bytes: ctrCap})}},
		{"dirty-victims-carry-across-layers",
			[]isa.Instr{mv(isa.OpMvOut, 0, isa.Segment{Addr: 0, Bytes: macCap})},
			[]isa.Instr{mv(isa.OpMvIn, 1, isa.Segment{Addr: 2 * macCap, Bytes: macCap})}}, // every miss evicts dirty
		// A run starting mid-counter-line leaves a partial first line that
		// the chunk-stretch boundary probes cannot see; the repeat pass is
		// all-hit, so the stretch must charge (reads) or price (writes) the
		// partial line exactly as the per-block model does.
		{"misaligned-run-start-partial-counter-line",
			[]isa.Instr{mv(isa.OpMvIn, 0, isa.Segment{Addr: 8 * blk, Bytes: macCap})},
			[]isa.Instr{mv(isa.OpMvIn, 1, isa.Segment{Addr: 8 * blk, Bytes: macCap})}},
		{"misaligned-run-start-write",
			[]isa.Instr{mv(isa.OpMvOut, 0, isa.Segment{Addr: 8 * blk, Bytes: macCap})},
			[]isa.Instr{mv(isa.OpMvOut, 1, isa.Segment{Addr: 8 * blk, Bytes: macCap})}},
	}
	cfg := SmallNPU()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			prog := boundaryProgram(t, tc.warm, tc.probe)
			for _, scheme := range memprot.AllSchemes() {
				diffPaths(t, prog, scheme, cfg, nil)
				diffMemo(t, prog, scheme, cfg, nil)
			}
		})
	}
}
