package memostore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestSaveThenLoad(t *testing.T) {
	st := newStore(t)
	body := []byte("layer memo body bytes")
	if !st.Save(key("a"), body) {
		t.Fatal("Save failed")
	}
	got, ok := st.Load(key("a"))
	if !ok || string(got) != string(body) {
		t.Fatalf("Load = %q, %v; want body back", got, ok)
	}
	if _, ok := st.Load(key("absent")); ok {
		t.Fatal("Load of absent key reported a hit")
	}
	s := st.Stats()
	if s.Saves != 1 || s.Hits != 1 || s.Loads != 2 || s.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 save, 1 hit, 2 loads", s)
	}
	if s.SavedBytes != uint64(len(body)) || s.LoadedBytes != uint64(len(body)) {
		t.Errorf("byte counters = %+v, want %d each way", s, len(body))
	}
}

// entryPath exposes where a key's entry lives, for corruption tests.
func entryPath(st *Store, k string) string { return filepath.Join(st.Dir(), k+".memo") }

// TestCorruptEntryModes mirrors the serve.Store corruption suite: every
// way an entry can rot on disk must read as a miss, count as corrupt, and
// leave the file deleted so a fresh recording replaces it.
func TestCorruptEntryModes(t *testing.T) {
	body := []byte("0123456789abcdef0123456789abcdef")
	corrupt := []struct {
		name   string
		mangle func(raw []byte) []byte
	}{
		{"truncated-body", func(raw []byte) []byte { return raw[:len(raw)-5] }},
		{"truncated-header", func(raw []byte) []byte { return raw[:8] }},
		{"flipped-checksum-byte", func(raw []byte) []byte {
			// Byte 10 sits inside the hex checksum field of the header.
			out := append([]byte(nil), raw...)
			if out[10] == 'a' {
				out[10] = 'b'
			} else {
				out[10] = 'a'
			}
			return out
		}},
		{"flipped-body-byte", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0xff
			return out
		}},
		{"format-version-bump", func(raw []byte) []byte {
			// A future format writes a different magic; this store must
			// strand it, not guess at its framing.
			return append([]byte("TNPUMEMO2"), raw[len(entryMagic):]...)
		}},
		{"empty-file", func([]byte) []byte { return nil }},
	}
	for i, tc := range corrupt {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			st := newStore(t)
			k := key(fmt.Sprintf("entry-%d", i))
			if !st.Save(k, body) {
				t.Fatal("Save failed")
			}
			raw, err := os.ReadFile(entryPath(st, k))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entryPath(st, k), tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Load(k); ok {
				t.Fatalf("Load of corrupted entry returned %q", got)
			}
			if st.Stats().Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Stats().Corrupt)
			}
			if _, err := os.Stat(entryPath(st, k)); !os.IsNotExist(err) {
				t.Error("corrupted entry not deleted")
			}
			// Re-recording must succeed and serve again.
			if !st.Save(k, body) {
				t.Fatal("re-Save after corruption failed")
			}
			if got, ok := st.Load(k); !ok || string(got) != string(body) {
				t.Fatalf("re-recorded entry: Load = %q, %v", got, ok)
			}
		})
	}
}

// TestTwoProcessWriterRace mirrors the serve.Store writer-race test at the
// memostore's level: two stores over one directory (two processes) saving
// and loading the same key concurrently must never surface a torn or
// partial entry — every load is a miss or the exact body.
func TestTwoProcessWriterRace(t *testing.T) {
	dir := t.TempDir()
	a, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("contended")
	body := make([]byte, 64<<10)
	for i := range body {
		body[i] = byte(i)
	}

	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	for _, st := range []*Store{a, b} {
		st := st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				st.Save(k, body)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			got, ok := a.Load(k)
			if !ok {
				continue
			}
			if len(got) != len(body) {
				errc <- fmt.Errorf("round %d: loaded %d bytes, want %d", i, len(got), len(body))
				return
			}
			for j := range got {
				if got[j] != body[j] {
					errc <- fmt.Errorf("round %d: torn entry at byte %d", i, j)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if s := a.Stats(); s.Corrupt != 0 {
		t.Errorf("writer race produced %d corrupt reads; atomic rename should prevent any", s.Corrupt)
	}
	// No temp litter: every .tmp-memo-* file must be renamed or removed.
	matches, err := filepath.Glob(filepath.Join(dir, ".tmp-memo-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("leftover temp files after race: %v", matches)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	st := newStore(t)
	bad := []string{
		"",
		"short",
		"../../../../etc/passwd",
		key("x") + "0",                 // too long
		"zz" + key("x")[2:],            // not hex
		"TNPUMEMO1 0000000000000000 0", // framing junk
	}
	for _, k := range bad {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true", k)
		}
		if st.Save(k, []byte("body")) {
			t.Errorf("Save(%q) accepted an invalid key", k)
		}
		if _, ok := st.Load(k); ok {
			t.Errorf("Load(%q) hit on an invalid key", k)
		}
	}
	if s := st.Stats(); s.Errors == 0 {
		t.Error("invalid keys not counted as errors")
	}
	if !ValidKey(key("good")) {
		t.Error("ValidKey rejected a hex sha256 digest")
	}
}

func TestNilStoreNoOps(t *testing.T) {
	var st *Store
	if st.Dir() != "" {
		t.Error("nil store has a dir")
	}
	if _, ok := st.Load(key("a")); ok {
		t.Error("nil store load hit")
	}
	if st.Save(key("a"), []byte("b")) {
		t.Error("nil store save succeeded")
	}
	st.Delete(key("a"))
	if s := st.Stats(); s != (Stats{}) {
		t.Errorf("nil store stats = %+v, want zero", s)
	}
}

func TestDeleteRemovesEntry(t *testing.T) {
	st := newStore(t)
	k := key("doomed")
	st.Save(k, []byte("body"))
	st.Delete(k)
	if _, ok := st.Load(k); ok {
		t.Error("entry survived Delete")
	}
	st.Delete(k) // deleting an absent entry is fine
}
