// Package memostore is the disk layer under the simulator's memo caches
// (DESIGN.md §6g): a content-addressed store of recorded simulation
// effects — layer memo entries, whole-run results — that survives process
// restarts, so a cold harness replays what an earlier process recorded
// instead of re-deriving it.
//
// The store follows the same discipline as the serving layer's result
// cache (internal/serve.Store): keys are hex SHA-256 digests (safe as
// file names, collision-free by construction), entries are framed with a
// versioned magic plus a body checksum, writes go through a temp file and
// an atomic rename (concurrent writers of one key race safely — the
// contents are identical by construction, either rename wins), and a
// corrupt or truncated entry is deleted and reported as a miss so the
// caller simply re-records it. Callers bake the simulator code version
// into every key, so a code bump strands stale entries rather than
// serving them.
//
// Unlike serve.Store there is no compute callback and no singleflight
// here: the memo layers above own the record path (and their own
// record-once scheduling); the store is plain Load/Save.
package memostore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// entryMagic heads every memo entry; the version suffix is the entry
// *format* version, bumped if the framing changes, independent of the
// simulator code version that is part of every key.
const entryMagic = "TNPUMEMO1"

// Store is a disk-backed content-addressed memo store. A nil *Store is a
// valid no-op store: Load always misses and Save drops the body, so the
// memo layers wire it unconditionally.
type Store struct {
	dir string

	loads       atomic.Uint64
	hits        atomic.Uint64
	corrupt     atomic.Uint64
	saves       atomic.Uint64
	errors      atomic.Uint64
	loadedBytes atomic.Uint64
	savedBytes  atomic.Uint64
}

// New opens (creating if needed) a memo directory.
func New(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("memostore: directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memostore: memo dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the memo directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path maps a key to its entry file. Keys are validated hex digests, so
// they are safe as file names and cannot traverse out of the directory.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".memo")
}

// ValidKey accepts only hex SHA-256 digests.
func ValidKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil
}

// Load returns the body stored under key, or (nil, false) on a miss. A
// corrupted or truncated entry — bad magic, checksum mismatch, short
// body — is deleted and reported as a miss, so the caller re-records.
func (s *Store) Load(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.loads.Add(1)
	if !ValidKey(key) {
		s.errors.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false
	}
	if err != nil {
		s.errors.Add(1)
		return nil, false
	}
	body, ok := decodeEntry(raw)
	if !ok {
		s.corrupt.Add(1)
		// Remove the bad entry so a fresh recording can take its place;
		// ignore the error (another process may have raced the removal
		// or already replaced it).
		os.Remove(s.path(key)) //tnpu:errok
		return nil, false
	}
	s.hits.Add(1)
	s.loadedBytes.Add(uint64(len(body)))
	return body, true
}

// Save persists body under key via temp file + atomic rename, so a reader
// never observes a partially written entry and concurrent writers of one
// key cannot interleave. Failures are counted, not fatal: the recorded
// result is still good in memory even if persisting it failed (disk full,
// read-only directory).
func (s *Store) Save(key string, body []byte) bool {
	if s == nil {
		return false
	}
	if !ValidKey(key) {
		s.errors.Add(1)
		return false
	}
	if err := s.write(key, body); err != nil {
		s.errors.Add(1)
		return false
	}
	s.saves.Add(1)
	s.savedBytes.Add(uint64(len(body)))
	return true
}

// Delete removes key's entry if present (used when a decoded body fails
// the caller's own validation — checksum-valid bytes in a stale shape).
func (s *Store) Delete(key string) {
	if s == nil || !ValidKey(key) {
		return
	}
	os.Remove(s.path(key)) //tnpu:errok (already gone is fine)
}

func (s *Store) write(key string, body []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-memo-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //tnpu:errok (no-op after a successful rename)
	w := bufio.NewWriter(tmp)
	sum := sha256.Sum256(body)
	fmt.Fprintf(w, "%s %s %d\n", entryMagic, hex.EncodeToString(sum[:]), len(body))
	w.Write(body) //tnpu:errok (flush below surfaces the error)
	if err := w.Flush(); err != nil {
		tmp.Close() //tnpu:errok
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(key))
}

// decodeEntry validates framing: magic, body checksum, exact length.
func decodeEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := bytes.Fields(raw[:nl])
	if len(fields) != 3 || string(fields[0]) != entryMagic {
		return nil, false
	}
	n, err := strconv.Atoi(string(fields[2]))
	if err != nil || n < 0 {
		return nil, false
	}
	body := raw[nl+1:]
	if len(body) != n {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(fields[1]) {
		return nil, false
	}
	return body, true
}

// Stats is a snapshot of the store counters.
type Stats struct {
	// Loads is total Load calls.
	Loads uint64 `json:"loads"`
	// Hits served a valid on-disk entry.
	Hits uint64 `json:"hits"`
	// Corrupt entries were rejected and deleted (then re-recorded).
	Corrupt uint64 `json:"corrupt"`
	// Saves persisted a fresh entry.
	Saves uint64 `json:"saves"`
	// Errors counts invalid keys, read failures, and write failures.
	Errors uint64 `json:"errors"`
	// LoadedBytes is the body volume read this process.
	LoadedBytes uint64 `json:"loaded_bytes"`
	// SavedBytes is the body volume written this process.
	SavedBytes uint64 `json:"saved_bytes"`
}

// Stats snapshots the counters (zero for a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Loads:       s.loads.Load(),
		Hits:        s.hits.Load(),
		Corrupt:     s.corrupt.Load(),
		Saves:       s.saves.Load(),
		Errors:      s.errors.Load(),
		LoadedBytes: s.loadedBytes.Load(),
		SavedBytes:  s.savedBytes.Load(),
	}
}
