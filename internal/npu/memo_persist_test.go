package npu

import (
	"reflect"
	"sync"
	"testing"

	"tnpu/internal/memprot"
	"tnpu/internal/npu/memostore"
)

func newTestStore(t *testing.T, dir string) *memostore.Store {
	t.Helper()
	st, err := memostore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMemoPersistRoundTrip pins the tentpole guarantee (DESIGN.md §6g):
// a run replayed entirely from disk-loaded memo entries — a fresh
// LayerMemo in a "new process" over the directory an earlier memo
// recorded into — is cycle-, traffic-, and stats-identical to both the
// per-block reference and the fresh recording, for all four schemes.
func TestMemoPersistRoundTrip(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	dir := t.TempDir()
	layers := uint64(len(prog.LayerFirst))

	for _, scheme := range memprot.AllSchemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			per := runPath(t, prog, scheme, cfg, nil, false)

			recorder := NewLayerMemo()
			recorder.AttachStore(newTestStore(t, dir), "vtest")
			rec := runMemoPath(t, prog, scheme, cfg, nil, recorder)
			if !reflect.DeepEqual(per, rec) {
				t.Fatalf("recording run diverges from per-block reference:\n  per-block: %+v\n  recording: %+v", per, rec)
			}
			if s := recorder.Stats(); s.Store.Saves < layers {
				t.Fatalf("recording run persisted %d entries, want at least the %d layers", s.Store.Saves, layers)
			}

			// A fresh memo over the same directory stands in for a new
			// process: nothing in memory, everything on disk.
			replayer := NewLayerMemo()
			replayer.AttachStore(newTestStore(t, dir), "vtest")
			rep := runMemoPath(t, prog, scheme, cfg, nil, replayer)
			if !reflect.DeepEqual(per, rep) {
				t.Errorf("disk-replayed run diverges from per-block reference:\n  per-block: %+v\n  replay:    %+v", per, rep)
			}
			s := replayer.Stats()
			if s.DiskHits < layers {
				t.Errorf("disk replay loaded %d entries, want at least the %d layers", s.DiskHits, layers)
			}
			if s.Records != 0 {
				t.Errorf("disk replay re-recorded %d entries, want 0 (everything should load)", s.Records)
			}
		})
	}
}

// TestMemoVersionStranding pins the salt keying: entries recorded under
// one code-version salt must be invisible to a memo attached with a
// different salt (stranded, re-recorded), and visible again to the
// original salt.
func TestMemoVersionStranding(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)
	dir := t.TempDir()

	recorder := NewLayerMemo()
	recorder.AttachStore(newTestStore(t, dir), "v1")
	want := runMemoPath(t, prog, memprot.TreeLess, cfg, nil, recorder)

	bumped := NewLayerMemo()
	bumped.AttachStore(newTestStore(t, dir), "v2")
	got := runMemoPath(t, prog, memprot.TreeLess, cfg, nil, bumped)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("bumped-salt run diverges: want %+v got %+v", want, got)
	}
	if s := bumped.Stats(); s.DiskHits != 0 || s.Records == 0 {
		t.Errorf("salt v2 over v1 entries: disk hits=%d records=%d, want 0 hits and fresh records", s.DiskHits, s.Records)
	}

	same := NewLayerMemo()
	same.AttachStore(newTestStore(t, dir), "v1")
	runMemoPath(t, prog, memprot.TreeLess, cfg, nil, same)
	if s := same.Stats(); s.DiskHits == 0 || s.Records != 0 {
		t.Errorf("salt v1 over v1 entries: disk hits=%d records=%d, want disk hits and no records", s.DiskHits, s.Records)
	}
}

// synthEntry builds one distinct synthetic memo entry of the given size
// (split across pre/post/acc is irrelevant to the budget accounting).
func synthEntry(i, size int) (memoKey, *memoEntry) {
	pre := make([]byte, size)
	pre[0] = byte(i)
	pre[1] = byte(i >> 8)
	key := memoKey{layer: int32(i), hash: hashBlob(pre)}
	return key, &memoEntry{pre: pre, post: []byte{}, acc: []byte{}}
}

// TestMemoBudgetEviction fills a LayerMemo past its (overridden) budget
// with synthetic entries and pins the eviction discipline: least recently
// used entries leave first, the byte/eviction counters stay exact, and
// recently touched entries survive.
func TestMemoBudgetEviction(t *testing.T) {
	lm := NewLayerMemo()
	const entrySize = 1024
	lm.SetBudgetBytes(4 * entrySize)

	keys := make([]memoKey, 8)
	pres := make([][]byte, 8)
	for i := 0; i < 4; i++ {
		k, e := synthEntry(i, entrySize)
		keys[i], pres[i] = k, e.pre
		if _, fresh := lm.record(k, e); !fresh {
			t.Fatalf("entry %d: not recorded fresh", i)
		}
	}
	if s := lm.Stats(); s.Evictions != 0 || s.Bytes != 4*entrySize {
		t.Fatalf("at budget: evictions=%d bytes=%d, want 0 and %d", s.Evictions, s.Bytes, 4*entrySize)
	}

	// Touch entry 0 so it is the most recently used; entry 1 becomes the
	// LRU victim of the next insert.
	if lm.lookup(keys[0], pres[0]) == nil {
		t.Fatal("entry 0 missing before eviction")
	}
	k4, e4 := synthEntry(4, entrySize)
	keys[4], pres[4] = k4, e4.pre
	lm.record(k4, e4)

	s := lm.Stats()
	if s.Evictions != 1 {
		t.Fatalf("after fifth insert: evictions=%d, want 1", s.Evictions)
	}
	if s.Bytes != 4*entrySize {
		t.Fatalf("after fifth insert: bytes=%d, want %d", s.Bytes, 4*entrySize)
	}
	if lm.lookup(keys[1], pres[1]) != nil {
		t.Error("entry 1 (LRU) survived eviction")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if lm.lookup(keys[i], pres[i]) == nil {
			t.Errorf("entry %d evicted out of LRU order", i)
		}
	}

	// An entry bigger than the whole budget is admitted alone (the budget
	// is a steady-state bound): everything else is evicted, and the next
	// normal insert evicts it in turn.
	kBig, eBig := synthEntry(5, 5*entrySize)
	lm.record(kBig, eBig)
	if got := lm.Stats().Bytes; got != 5*entrySize {
		t.Errorf("oversized entry: bytes=%d, want %d", got, 5*entrySize)
	}
	if lm.lookup(kBig, eBig.pre) == nil {
		t.Error("oversized entry not admitted")
	}
}

// TestMemoEvictedEntryReloadsFromDisk pins the persistence/eviction
// composition (satellite of DESIGN.md §6g): under a budget too small to
// hold a run's entries, a second pass reloads evicted entries from the
// attached store instead of re-recording them.
func TestMemoEvictedEntryReloadsFromDisk(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)

	memo := NewLayerMemo()
	memo.AttachStore(newTestStore(t, t.TempDir()), "vtest")
	memo.SetBudgetBytes(1 << 14) // far below one run's entry volume

	per := runPath(t, prog, memprot.TreeLess, cfg, nil, false)
	rec := runMemoPath(t, prog, memprot.TreeLess, cfg, nil, memo)
	if !reflect.DeepEqual(per, rec) {
		t.Fatalf("recording run under tiny budget diverges:\n  per-block: %+v\n  recording: %+v", per, rec)
	}
	s0 := memo.Stats()
	if s0.Evictions == 0 {
		t.Fatalf("tiny budget (%d bytes) caused no evictions; test premise broken", 1<<14)
	}

	rep := runMemoPath(t, prog, memprot.TreeLess, cfg, nil, memo)
	if !reflect.DeepEqual(per, rep) {
		t.Errorf("replay after evictions diverges:\n  per-block: %+v\n  replay:    %+v", per, rep)
	}
	s1 := memo.Stats()
	if s1.Records != s0.Records {
		t.Errorf("second pass re-recorded %d entries, want 0 (evicted entries must reload from disk)", s1.Records-s0.Records)
	}
	if s1.DiskHits == s0.DiskHits {
		t.Error("second pass loaded nothing from disk despite evictions")
	}
}

// TestMemoRecordOnce pins the record-once flight discipline: many
// machines running the same program concurrently against one cold memo
// must record each distinct layer signature exactly once — waiters replay
// the leader's entry instead of recording redundantly.
func TestMemoRecordOnce(t *testing.T) {
	cfg := SmallNPU()
	prog := compileFor(t, "df", cfg)

	seq := NewLayerMemo()
	runMemoPath(t, prog, memprot.TreeLess, cfg, nil, seq)
	wantRecords := seq.Stats().Records

	memo := NewLayerMemo()
	const workers = 8
	states := make([]pathState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			states[w] = runMemoPath(t, prog, memprot.TreeLess, cfg, nil, memo)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(states[0], states[w]) {
			t.Fatalf("concurrent run %d diverges from run 0", w)
		}
	}
	s := memo.Stats()
	if s.Records != wantRecords {
		t.Errorf("concurrent cold runs recorded %d entries, sequential run records %d", s.Records, wantRecords)
	}
	if s.Misses != s.Records {
		t.Errorf("live executions (%d) exceed recordings (%d): redundant concurrent recording", s.Misses, s.Records)
	}
	wantLookups := uint64(workers) * uint64(len(prog.LayerFirst))
	if total := s.Hits + s.FlightHits + s.Misses; total != wantLookups {
		t.Errorf("lookup accounting: hits %d + flight hits %d + misses %d = %d, want %d layer executions",
			s.Hits, s.FlightHits, s.Misses, total, wantLookups)
	}
}

// TestMemoDiskKeyDistinct spot-checks the disk key derivation: salt,
// program signature, layer, and pre-state each move the key.
func TestMemoDiskKeyDistinct(t *testing.T) {
	pre := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	base := diskKey("v1", "sig", 0, pre)
	if !memostore.ValidKey(base) {
		t.Fatalf("diskKey %q is not a valid store key", base)
	}
	variants := map[string]string{
		"salt":  diskKey("v2", "sig", 0, pre),
		"sig":   diskKey("v1", "gis", 0, pre),
		"layer": diskKey("v1", "sig", 1, pre),
		"pre":   diskKey("v1", "sig", 0, []byte{8, 7, 6, 5, 4, 3, 2, 1}),
	}
	for what, k := range variants { //tnpu:orderfree — each variant checked independently
		if k == base {
			t.Errorf("changing %s did not change the disk key", what)
		}
	}
	for i, p := range prefixAmbiguityPairs() {
		if diskKey(p[0], p[1], 0, pre) == diskKey(p[2], p[3], 0, pre) {
			t.Errorf("pair %d: length-prefixing failed, %q|%q collides with %q|%q", i, p[0], p[1], p[2], p[3])
		}
	}
}

// prefixAmbiguityPairs are (saltA, sigA, saltB, sigB) tuples whose naive
// concatenations collide.
func prefixAmbiguityPairs() [][4]string {
	return [][4]string{
		{"ab", "c", "a", "bc"},
		{"", "ab", "ab", ""},
	}
}
