package plot

import (
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:      "Figure 14 (small)",
		Categories: []string{"goo", "res", "sent"},
		Series: []Series{
			{Label: "baseline", Values: []float64{1.15, 1.18, 1.48}},
			{Label: "tnpu", Values: []float64{1.11, 1.12, 1.19}},
		},
		RefLine: 1.0,
		YLabel:  "normalized execution time",
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "Figure 14", "baseline", "tnpu", "goo", "sent", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One rect per (series, category) plus background and legend swatches.
	if got := strings.Count(svg, "<rect"); got != 1+6+2 {
		t.Errorf("rect count = %d, want 9", got)
	}
	// Tooltips carry the values.
	if !strings.Contains(svg, "1.480") {
		t.Error("bar value tooltip missing")
	}
}

func TestValidation(t *testing.T) {
	c := sample()
	c.Series[0].Values = c.Series[0].Values[:2]
	if _, err := c.SVG(); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := (&Chart{Title: "x"}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestNiceMax(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.9, 1}, {1.01, 1.2}, {1.4, 1.5}, {3.6, 4}, {8, 10}, {0, 1},
	}
	for _, c := range cases {
		if got := niceMax(c.in); got != c.want {
			t.Errorf("niceMax(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b&"c"`); got != "a&lt;b&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

func TestNoRefLine(t *testing.T) {
	c := sample()
	c.RefLine = 0
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "stroke-dasharray") {
		t.Error("reference line drawn despite RefLine=0")
	}
}
