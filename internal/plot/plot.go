// Package plot renders the experiment harness's figures as standalone SVG
// grouped bar charts (stdlib only), so the reproduced evaluation can be
// eyeballed against the paper's plots. The renderer is deliberately
// minimal: grouped vertical bars, a y-axis with ticks, a reference line
// at 1.0 (the unsecure normalization), and a legend.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one legend entry: a bar per category.
type Series struct {
	Label  string
	Values []float64
}

// Chart describes one grouped bar chart.
type Chart struct {
	Title      string
	Categories []string
	Series     []Series
	// RefLine draws a horizontal reference (0 disables). Normalized
	// figures use 1.0.
	RefLine float64
	// YLabel annotates the y-axis.
	YLabel string
}

// Validate reports structural problems.
func (c *Chart) Validate() error {
	if len(c.Categories) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("plot: empty chart %q", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("plot: series %q has %d values for %d categories", s.Label, len(s.Values), len(c.Categories))
		}
	}
	return nil
}

// palette holds fill colors per series (cycled).
var palette = []string{"#4878a8", "#d1605e", "#6aa56e", "#e49444", "#8566a9", "#a57c5b"}

const (
	chartW   = 960
	chartH   = 360
	marginL  = 64
	marginR  = 16
	marginT  = 40
	marginB  = 56
	legendDY = 16
)

// niceMax rounds up to a pleasant axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 7.5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	maxV := c.RefLine
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	top := niceMax(maxV * 1.05)

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	y := func(v float64) float64 { return marginT + plotH*(1-v/top) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", chartW, chartH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, escape(c.Title))

	// Axis + ticks.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n", marginL, y(0), chartW-marginR, y(0))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`+"\n", marginL, marginT, marginL, y(0))
	for i := 0; i <= 5; i++ {
		v := top * float64(i) / 5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y(v), chartW-marginR, y(v))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.2f</text>`+"\n", marginL-6, y(v)+4, v)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			marginT+int(plotH)/2, marginT+int(plotH)/2, escape(c.YLabel))
	}

	// Bars.
	groups := len(c.Categories)
	groupW := plotW / float64(groups)
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, cat := range c.Categories {
		gx := float64(marginL) + groupW*float64(gi)
		for si, s := range c.Series {
			v := s.Values[gi]
			x := gx + groupW*0.1 + barW*float64(si)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.3f</title></rect>`+"\n",
				x, y(v), barW, y(0)-y(v), palette[si%len(palette)], escape(s.Label), escape(cat), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, y(0)+16, escape(cat))
	}

	// Reference line above the bars.
	if c.RefLine > 0 {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333" stroke-dasharray="5,4"/>`+"\n",
			marginL, y(c.RefLine), chartW-marginR, y(c.RefLine))
	}

	// Legend.
	lx := marginL
	ly := chartH - 14
	for si, s := range c.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+16, ly, escape(s.Label))
		lx += 16 + 8*len(s.Label) + 24
	}
	_ = legendDY
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ClassSeries is one figure series tagged with the NPU class it belongs
// to, the shape the experiment harness's figures decompose into.
type ClassSeries struct {
	Class  string
	Label  string
	Values []float64
}

// ClassChart pairs a rendered chart with the class it covers.
type ClassChart struct {
	Class string
	Chart Chart
}

// ClassCharts splits class-tagged series into one grouped bar chart per
// class (one chart per NPU class keeps the figures readable), preserving
// first-seen class order. Shared by cmd/tnpu-plot and the tnpu-serve SVG
// artifact endpoint so both render figures identically.
func ClassCharts(id, title string, categories []string, series []ClassSeries, refLine float64, yLabel string) []ClassChart {
	var out []ClassChart
	idx := make(map[string]int)
	for _, s := range series {
		i, ok := idx[s.Class]
		if !ok {
			i = len(out)
			idx[s.Class] = i
			out = append(out, ClassChart{Class: s.Class, Chart: Chart{
				Title:      fmt.Sprintf("%s — %s NPU (%s)", id, s.Class, title),
				Categories: categories,
				RefLine:    refLine,
				YLabel:     yLabel,
			}})
		}
		out[i].Chart.Series = append(out[i].Chart.Series, Series{Label: s.Label, Values: s.Values})
	}
	return out
}
