// Package canon provides the byte encoding shared by every layer-state
// canonicalizer in the simulator (see DESIGN.md §6e). Values are fixed-width
// little-endian u64 so encodings are positional: two states are equal exactly
// when their canon byte strings are equal, with no delimiters to confuse.
package canon

import "encoding/binary"

// AppendU64 appends v to dst in little-endian order and returns the
// extended slice.
func AppendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// U64 decodes the leading u64 from src and returns it with the remaining
// bytes. Panics if src is short: canon blobs are produced and consumed by
// the same code paths, so truncation is a programming error, not input.
func U64(src []byte) (uint64, []byte) {
	if len(src) < 8 {
		panic("canon: truncated blob")
	}
	return binary.LittleEndian.Uint64(src), src[8:]
}
