// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (Sec. V), producing the same rows/series the
// paper reports. Results are normalized exactly as in the paper — to the
// unsecure configuration with the same NPU count — so shapes are directly
// comparable even though absolute cycles come from our simulator.
package exp

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tnpu/internal/attack"
	"tnpu/internal/compiler"
	"tnpu/internal/e2e"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/multinpu"
	"tnpu/internal/npu"
	"tnpu/internal/npu/memostore"
)

// Class selects one of the two Table II NPU configurations.
type Class int

// The two evaluated NPU classes.
const (
	Small Class = iota
	Large
)

// String names the class as in the figures.
func (c Class) String() string {
	if c == Small {
		return "small"
	}
	return "large"
}

// Config returns the hardware configuration for the class.
func (c Class) Config() npu.Config {
	if c == Small {
		return npu.SmallNPU()
	}
	return npu.LargeNPU()
}

// Classes lists both classes in paper order.
func Classes() []Class { return []Class{Small, Large} }

// Runner caches compiled programs and simulation results so the figure
// generators can share work. It is safe for concurrent use: every
// (model, class, scheme, count) cell is computed exactly once no matter
// how many goroutines ask for it (singleflight memoization), and the
// figure/sweep generators fan their independent cells out across a
// bounded worker pool while keeping output deterministic — a parallel
// run is byte-identical to a sequential one.
type Runner struct {
	// Models restricts the workload set (defaults to all 14; tests use
	// subsets). Must be set before the first figure/sweep call: the
	// runner freezes its configuration at first use and panics on a
	// later mutation.
	Models []string

	// Schemes restricts which protection schemes the performance
	// artifacts simulate (nil or empty = all). Unsecure runs that serve
	// only as the normalization denominator are not filtered; disabling
	// a measured scheme drops its series (and any headline metric that
	// needs it) entirely. Must be set before the first figure/sweep call
	// (enforced like Models).
	Schemes []memprot.Scheme

	// Workers bounds how many simulation cells run concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces sequential evaluation.
	// Must be set before the first figure/sweep call (enforced like
	// Models).
	Workers int

	// Progress, when non-nil, receives one line per completed cell
	// (typically os.Stderr). Must be set before the first call
	// (enforced like Models).
	Progress io.Writer

	mu      sync.Mutex
	progs   map[progKey]*cell[*compiler.Program]
	runs    map[runKey]*cell[multinpu.Result]
	mixed   map[mixedKey]*cell[multinpu.Result]
	e2es    map[e2eKey]*cell[e2e.Result]
	attacks map[attackKey]*cell[*attack.Report]

	sweepRuns map[sweepRunKey]*cell[uint64]

	// memo replays recurring (layer, state-signature) executions across
	// cells: sweep points, NPU counts, and classes re-run the same layers
	// from identical engine states far more often than not. Shared by
	// every single-NPU machine the runner builds; safe under the worker
	// pool.
	memo *npu.LayerMemo

	// multiCache memoizes whole multi-NPU results by (scheme, config,
	// program tuple). The singleflight maps above already collapse repeat
	// requests for the same cell, so within one runner this mostly pays
	// off when a homogeneous Run and a same-tuple RunMixed meet — but it
	// also makes the cache observable (MultiCacheStats) and gives serve a
	// warm in-memory layer under its disk cache.
	multiCache *multinpu.RunCache

	// cellStore, when attached via SetMemoDir, persists whole-run cell
	// results (and, through the layer memo, recorded layer entries)
	// across processes. Set once before first use, like Models; a nil
	// store is a valid no-op (see memostore).
	cellStore *memostore.Store

	freezeOnce sync.Once
	frozen     frozenConfig
	used       atomic.Bool

	log RunLog
}

// frozenConfig snapshots the runner's public knobs at first use so later
// mutations — which would silently skew already-memoized cells — fail fast.
type frozenConfig struct {
	models   []string
	schemes  []memprot.Scheme
	workers  int
	progress io.Writer
}

// freeze captures Models/Schemes/Workers/Progress at the runner's first
// computation and panics if any of them changed afterwards — the
// documented "must be set before the first figure/sweep call" contract,
// enforced instead of trusted.
func (r *Runner) freeze() {
	r.used.Store(true)
	r.freezeOnce.Do(func() {
		r.frozen = frozenConfig{
			models:   append([]string(nil), r.Models...),
			schemes:  append([]memprot.Scheme(nil), r.Schemes...),
			workers:  r.Workers,
			progress: r.Progress,
		}
	})
	f := &r.frozen
	changed := len(r.Models) != len(f.models) || len(r.Schemes) != len(f.schemes) ||
		r.Workers != f.workers || r.Progress != f.progress
	for i := 0; !changed && i < len(f.models); i++ {
		changed = r.Models[i] != f.models[i]
	}
	for i := 0; !changed && i < len(f.schemes); i++ {
		changed = r.Schemes[i] != f.schemes[i]
	}
	if changed {
		panic("exp: Runner Models/Schemes/Workers/Progress mutated after first use; set them before the first figure/sweep call")
	}
}

// progKey caches compiled programs per distinct compiler view. Figures
// (fixed Table II classes) and sweeps (arbitrary configurations) share one
// cache: the bandwidth and latency sweeps vary only bus parameters, so all
// their points — and any figure cell with the same compiler view — share
// one compiled program. Sharing the *compiler.Program pointer is also what
// lets the layer memo replay across harness entry points: memo keys carry
// program identity, so a figure run and a sweep point at the same
// configuration replay each other's layers.
type progKey struct {
	short string
	cfg   compiler.Config
}

type runKey struct {
	short  string
	class  Class
	scheme memprot.Scheme
	count  int
}

// mixedKey identifies one mixed-tenancy cell: an ordered workload tuple
// (order matters — it fixes which context region each program occupies)
// under one class and scheme.
type mixedKey struct {
	shorts string // comma-joined model shorts, in NPU order
	class  Class
	scheme memprot.Scheme
}

type e2eKey struct {
	short  string
	class  Class
	scheme memprot.Scheme
}

// cell is one singleflight slot: the first goroutine to claim a key
// computes it while later arrivals block on done and share the result.
type cell[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// compute memoizes fn under k in m: exactly one caller runs fn, everyone
// gets its result. Fresh computations are timed into the runner's RunLog.
func compute[K comparable, V any](r *Runner, m map[K]*cell[V], k K, kind, label string, fn func() (V, error)) (V, error) {
	r.freeze()
	r.mu.Lock()
	if c, ok := m[k]; ok {
		r.mu.Unlock()
		r.log.noteHit()
		<-c.done
		return c.val, c.err
	}
	c := &cell[V]{done: make(chan struct{})}
	m[k] = c
	r.mu.Unlock()

	start := time.Now()
	c.val, c.err = fn()
	r.log.note(kind, label, time.Since(start), r.Progress)
	close(c.done)
	return c.val, c.err
}

// NewRunner creates a runner over the given workloads (nil = all 14).
func NewRunner(models ...string) *Runner {
	if len(models) == 0 {
		models = model.ShortNames()
	}
	return &Runner{
		Models:     models,
		progs:      make(map[progKey]*cell[*compiler.Program]),
		runs:       make(map[runKey]*cell[multinpu.Result]),
		mixed:      make(map[mixedKey]*cell[multinpu.Result]),
		e2es:       make(map[e2eKey]*cell[e2e.Result]),
		attacks:    make(map[attackKey]*cell[*attack.Report]),
		sweepRuns:  make(map[sweepRunKey]*cell[uint64]),
		memo:       npu.NewLayerMemo(),
		multiCache: multinpu.NewRunCache(),
	}
}

// ParseSchemes resolves a comma-separated scheme list ("baseline,tnpu")
// against the memprot scheme names, for the -schemes CLI filter.
func ParseSchemes(csv string) ([]memprot.Scheme, error) {
	var out []memprot.Scheme
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range memprot.AllSchemes() {
			if s.String() == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, 0, len(memprot.AllSchemes()))
			for _, s := range memprot.AllSchemes() {
				valid = append(valid, s.String())
			}
			return nil, fmt.Errorf("exp: unknown scheme %q (valid: %s)", name, strings.Join(valid, ","))
		}
	}
	if len(out) == 0 && strings.TrimSpace(csv) != "" {
		valid := make([]string, 0, len(memprot.AllSchemes()))
		for _, s := range memprot.AllSchemes() {
			valid = append(valid, s.String())
		}
		return nil, fmt.Errorf("exp: scheme filter %q selects no schemes (valid: %s)", csv, strings.Join(valid, ","))
	}
	return out, nil
}

// SchemeEnabled reports whether the runner's scheme filter admits s.
func (r *Runner) SchemeEnabled(s memprot.Scheme) bool {
	if len(r.Schemes) == 0 {
		return true
	}
	for _, e := range r.Schemes {
		if e == s {
			return true
		}
	}
	return false
}

// schemeSubset filters a generator's natural scheme list down to the
// enabled set, preserving the generator's order.
func (r *Runner) schemeSubset(want ...memprot.Scheme) []memprot.Scheme {
	out := make([]memprot.Scheme, 0, len(want))
	for _, s := range want {
		if r.SchemeEnabled(s) {
			out = append(out, s)
		}
	}
	return out
}

// ImprovementAvailable reports whether the scheme filter admits both
// schemes the headline Improvement metric compares.
func (r *Runner) ImprovementAvailable() bool {
	return r.SchemeEnabled(memprot.Baseline) && r.SchemeEnabled(memprot.TreeLess)
}

// Log exposes the runner's instrumentation record: per-cell wall times,
// completion counts, and compile-vs-simulate totals.
func (r *Runner) Log() *RunLog { return &r.log }

// MemoStats reports the shared layer memo's lookup outcomes — how many
// layer executions replayed from cache versus ran live.
func (r *Runner) MemoStats() (hits, misses uint64) {
	return r.memo.Hits(), r.memo.Misses()
}

// Program compiles (once) a model for a class.
func (r *Runner) Program(short string, class Class) (*compiler.Program, error) {
	return r.program(short, class.Config().CompilerConfig())
}

// program compiles (once) a model for an arbitrary compiler view — the
// shared cache behind Program and the sweep points.
func (r *Runner) program(short string, cfg compiler.Config) (*compiler.Program, error) {
	k := progKey{short, cfg}
	label := fmt.Sprintf("%s spm=%dKB", short, cfg.SPM.CapacityBytes>>10)
	return compute(r, r.progs, k, "compile", label, func() (*compiler.Program, error) {
		m, err := model.ByShort(short)
		if err != nil {
			return nil, err
		}
		return compiler.Compile(m, cfg)
	})
}

// Run simulates (once) a model under a scheme with count NPUs.
func (r *Runner) Run(short string, class Class, scheme memprot.Scheme, count int) (multinpu.Result, error) {
	k := runKey{short, class, scheme, count}
	label := fmt.Sprintf("%s/%s/%s x%d", short, class, scheme, count)
	return compute(r, r.runs, k, "simulate", label, func() (multinpu.Result, error) {
		return persisted(r, runCellKey(short, class.Config(), scheme, count), appendRunResult, decodeRunResult, func() (multinpu.Result, error) {
			p, err := r.Program(short, class)
			if err != nil {
				return multinpu.Result{}, err
			}
			res, err := multinpu.RunCached(p, scheme, class.Config(), count, r.memo, r.multiCache)
			if err != nil {
				return multinpu.Result{}, fmt.Errorf("exp: %s/%s/%s x%d: %w", short, class, scheme, count, err)
			}
			return res, nil
		})
	})
}

// RunMixed simulates (once) a mixed-tenancy cell: one program per NPU, in
// order, under a shared bus and protection engine. The tuple is a cell
// like any other — singleflighted in memory and addressable by serve's
// disk cache.
func (r *Runner) RunMixed(shorts []string, class Class, scheme memprot.Scheme) (multinpu.Result, error) {
	joined := strings.Join(shorts, ",")
	k := mixedKey{joined, class, scheme}
	label := fmt.Sprintf("mixed[%s]/%s/%s", joined, class, scheme)
	return compute(r, r.mixed, k, "simulate", label, func() (multinpu.Result, error) {
		if len(shorts) == 0 {
			return multinpu.Result{}, fmt.Errorf("exp: mixed-tenancy run needs at least one model")
		}
		return persisted(r, mixedCellKey(shorts, class.Config(), scheme), appendRunResult, decodeRunResult, func() (multinpu.Result, error) {
			progs := make([]*compiler.Program, len(shorts))
			for i, short := range shorts {
				p, err := r.Program(short, class)
				if err != nil {
					return multinpu.Result{}, err
				}
				progs[i] = p
			}
			res, err := multinpu.RunMixedCached(progs, scheme, class.Config(), r.memo, r.multiCache)
			if err != nil {
				return multinpu.Result{}, fmt.Errorf("exp: mixed[%s]/%s/%s: %w", joined, class, scheme, err)
			}
			return res, nil
		})
	})
}

// MultiCacheStats reports the shared joint-run cache's lookup outcomes.
func (r *Runner) MultiCacheStats() (hits, misses uint64) {
	return r.multiCache.Stats()
}

// EndToEnd simulates (once) the Sec. V-D flow.
func (r *Runner) EndToEnd(short string, class Class, scheme memprot.Scheme) (e2e.Result, error) {
	k := e2eKey{short, class, scheme}
	label := fmt.Sprintf("%s/%s/%s e2e", short, class, scheme)
	return compute(r, r.e2es, k, "e2e", label, func() (e2e.Result, error) {
		return persisted(r, e2eCellKey(short, class.Config(), scheme), appendE2EResult, decodeE2EResult, func() (e2e.Result, error) {
			p, err := r.Program(short, class)
			if err != nil {
				return e2e.Result{}, err
			}
			return e2e.Run(p, scheme, class.Config())
		})
	})
}

// normalized returns scheme cycles / unsecure cycles for one cell.
func (r *Runner) normalized(short string, class Class, scheme memprot.Scheme, count int) (float64, error) {
	base, err := r.Run(short, class, memprot.Unsecure, count)
	if err != nil {
		return 0, err
	}
	v, err := r.Run(short, class, scheme, count)
	if err != nil {
		return 0, err
	}
	if base.Cycles == 0 {
		return 0, fmt.Errorf("exp: %s/%s x%d: unsecure run took zero cycles, cannot normalize", short, class, count)
	}
	return float64(v.Cycles) / float64(base.Cycles), nil
}
