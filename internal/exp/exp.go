// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (Sec. V), producing the same rows/series the
// paper reports. Results are normalized exactly as in the paper — to the
// unsecure configuration with the same NPU count — so shapes are directly
// comparable even though absolute cycles come from our simulator.
package exp

import (
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/e2e"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/multinpu"
	"tnpu/internal/npu"
)

// Class selects one of the two Table II NPU configurations.
type Class int

// The two evaluated NPU classes.
const (
	Small Class = iota
	Large
)

// String names the class as in the figures.
func (c Class) String() string {
	if c == Small {
		return "small"
	}
	return "large"
}

// Config returns the hardware configuration for the class.
func (c Class) Config() npu.Config {
	if c == Small {
		return npu.SmallNPU()
	}
	return npu.LargeNPU()
}

// Classes lists both classes in paper order.
func Classes() []Class { return []Class{Small, Large} }

// Runner caches compiled programs and simulation results so the figure
// generators can share work. Not safe for concurrent use.
type Runner struct {
	// Models restricts the workload set (defaults to all 14; tests use
	// subsets).
	Models []string

	progs map[progKey]*compiler.Program
	runs  map[runKey]multinpu.Result
	e2es  map[e2eKey]e2e.Result
}

type progKey struct {
	short string
	class Class
}

type runKey struct {
	short  string
	class  Class
	scheme memprot.Scheme
	count  int
}

type e2eKey struct {
	short  string
	class  Class
	scheme memprot.Scheme
}

// NewRunner creates a runner over the given workloads (nil = all 14).
func NewRunner(models ...string) *Runner {
	if len(models) == 0 {
		models = model.ShortNames()
	}
	return &Runner{
		Models: models,
		progs:  make(map[progKey]*compiler.Program),
		runs:   make(map[runKey]multinpu.Result),
		e2es:   make(map[e2eKey]e2e.Result),
	}
}

// Program compiles (once) a model for a class.
func (r *Runner) Program(short string, class Class) (*compiler.Program, error) {
	k := progKey{short, class}
	if p, ok := r.progs[k]; ok {
		return p, nil
	}
	m, err := model.ByShort(short)
	if err != nil {
		return nil, err
	}
	p, err := compiler.Compile(m, class.Config().CompilerConfig())
	if err != nil {
		return nil, err
	}
	r.progs[k] = p
	return p, nil
}

// Run simulates (once) a model under a scheme with count NPUs.
func (r *Runner) Run(short string, class Class, scheme memprot.Scheme, count int) (multinpu.Result, error) {
	k := runKey{short, class, scheme, count}
	if res, ok := r.runs[k]; ok {
		return res, nil
	}
	p, err := r.Program(short, class)
	if err != nil {
		return multinpu.Result{}, err
	}
	res, err := multinpu.Run(p, scheme, class.Config(), count)
	if err != nil {
		return multinpu.Result{}, fmt.Errorf("exp: %s/%s/%s x%d: %w", short, class, scheme, count, err)
	}
	r.runs[k] = res
	return res, nil
}

// EndToEnd simulates (once) the Sec. V-D flow.
func (r *Runner) EndToEnd(short string, class Class, scheme memprot.Scheme) (e2e.Result, error) {
	k := e2eKey{short, class, scheme}
	if res, ok := r.e2es[k]; ok {
		return res, nil
	}
	p, err := r.Program(short, class)
	if err != nil {
		return e2e.Result{}, err
	}
	res, err := e2e.Run(p, scheme, class.Config())
	if err != nil {
		return e2e.Result{}, err
	}
	r.e2es[k] = res
	return res, nil
}

// normalized returns scheme cycles / unsecure cycles for one cell.
func (r *Runner) normalized(short string, class Class, scheme memprot.Scheme, count int) (float64, error) {
	base, err := r.Run(short, class, memprot.Unsecure, count)
	if err != nil {
		return 0, err
	}
	v, err := r.Run(short, class, scheme, count)
	if err != nil {
		return 0, err
	}
	return float64(v.Cycles) / float64(base.Cycles), nil
}
