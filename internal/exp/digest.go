// Content-addressing for harness results. The service layer
// (internal/serve) persists simulation results on disk keyed by what they
// are a pure function of: the hardware configuration, the workload, the
// protection scheme, and the simulator's code version. Digests are built
// field-by-field — never by reflection or %+v — so a new result-affecting
// configuration knob must be added here deliberately, and forgetting to
// do so is caught by TestConfigDigestCoversAllFields.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"tnpu/internal/memprot"
	"tnpu/internal/npu"
)

// CodeVersion identifies the simulator revision for content addressing.
// Any change that can alter simulation output (timing model, compiler,
// protection engines, figure definitions) must bump it: cached entries
// written under an older version become unreachable (their digests no
// longer match) rather than silently stale.
const CodeVersion = "tnpu-sim-7"

// ConfigDigest returns a stable hex digest of everything in an NPU
// hardware configuration that a simulation result depends on. Every
// npu.Config field is rendered explicitly: two configs digest equal iff
// the simulator would treat them identically.
//
//tnpu:digestcover npu.Config
func ConfigDigest(cfg npu.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "array=%dx%d|flow=%d|spm=%d|freq=%d|bw=%d|lat=%d|ch=%d|tlb=%d|walk=%d",
		cfg.Array.Rows, cfg.Array.Cols, cfg.Array.Flow,
		cfg.SPM.CapacityBytes,
		cfg.Mem.FreqHz, cfg.Mem.BandwidthBytesPerSec, cfg.Mem.LatencyCycles, cfg.Mem.Channels,
		cfg.TLBEntries, cfg.TLBWalkCycles)
	return hex.EncodeToString(h.Sum(nil))
}

// CellKey identifies one simulation cell — the unit the figure grids, the
// sweeps, and the service requests all decompose into.
type CellKey struct {
	Model  string
	Class  Class
	Scheme memprot.Scheme
	Count  int
}

// Digest content-addresses the cell under a code version: equal digests
// mean the cached result is interchangeable with a fresh computation.
func (k CellKey) Digest(codeVersion string) string {
	return Digest(codeVersion, "cell", k.Model, ConfigDigest(k.Class.Config()),
		k.Scheme.String(), fmt.Sprintf("x%d", k.Count))
}

// Digest hashes a code version plus an ordered list of key parts into one
// content address. Parts are length-prefixed so no two distinct part
// lists can collide by concatenation ("ab","c" vs "a","bc").
func Digest(codeVersion string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v=%d:%s", len(codeVersion), codeVersion)
	for _, p := range parts {
		fmt.Fprintf(h, "|%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestParams canonicalizes a parameter map into ordered key=value parts
// for Digest, so handlers can address artifacts without worrying about
// query-parameter order.
func DigestParams(codeVersion, kind string, params map[string]string) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, 1+len(keys))
	parts = append(parts, kind)
	for _, k := range keys {
		parts = append(parts, k+"="+params[k])
	}
	return Digest(codeVersion, parts...)
}
