package exp

import (
	"io"
	"testing"

	"tnpu/internal/memprot"
)

// TestRunnerConfigFrozen pins the enforcement of the "set before the first
// figure/sweep call" contract: mutating any public knob after the runner
// has computed a cell must panic instead of silently skewing later cells.
func TestRunnerConfigFrozen(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Runner)
	}{
		{"Models", func(r *Runner) { r.Models = append(r.Models, "agz") }},
		{"Schemes", func(r *Runner) { r.Schemes = []memprot.Scheme{memprot.Baseline} }},
		{"Workers", func(r *Runner) { r.Workers = 7 }},
		{"Progress", func(r *Runner) { r.Progress = io.Discard }},
	}
	for _, tc := range mutations {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner("df")
			r.Workers = 2 // before first use: allowed
			if _, err := r.Run("df", Small, memprot.Unsecure, 1); err != nil {
				t.Fatal(err)
			}
			tc.mutate(r)
			defer func() {
				if recover() == nil {
					t.Errorf("%s mutated after first use without panic", tc.name)
				}
			}()
			r.Run("df", Small, memprot.Baseline, 1) //nolint:errcheck // must panic first
		})
	}
}

// TestRunnerConfigFrozenOnForEach covers the second enforcement point: the
// worker pool itself (figure generators fan out through forEach without
// necessarily touching a compute cell first).
func TestRunnerConfigFrozenOnForEach(t *testing.T) {
	r := NewRunner("df")
	if _, _, _, err := r.VersionStorage(Small); err != nil {
		t.Fatal(err)
	}
	r.Workers = 3
	defer func() {
		if recover() == nil {
			t.Error("Workers mutated after first forEach without panic")
		}
	}()
	r.VersionStorage(Small) //nolint:errcheck // must panic first
}

// TestImprovementNoModels pins the headline metric's empty-set behavior:
// an explicit error, not the NaN that 0/0 used to produce.
func TestImprovementNoModels(t *testing.T) {
	r := NewRunner("df")
	r.Models = nil
	if _, err := r.Improvement(Small, 1); err == nil {
		t.Error("Improvement with no models returned no error (previously NaN)")
	}
}

// TestMemoReplaysAcrossEntryPoints pins the cross-harness layer memo: a
// figure cell and a sweep point at the same hardware configuration share
// one compiled program, so the sweep's default point replays the layers the
// figure recorded — and a parallel runner (memo record/replay interleaving
// under the worker pool; run under -race in CI) must stay byte-identical
// to a sequential one.
func TestMemoReplaysAcrossEntryPoints(t *testing.T) {
	seq := NewRunner("df")
	seq.Workers = 1
	par := NewRunner("df")
	par.Workers = 4

	type out struct{ fig, sweep string }
	run := func(r *Runner) out {
		f, err := r.Figure14()
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.BandwidthSweep("df")
		if err != nil {
			t.Fatal(err)
		}
		return out{f.String(), s.String()}
	}
	so, po := run(seq), run(par)
	if so != po {
		t.Errorf("parallel memoized harness differs from sequential:\n--- sequential\n%s%s--- parallel\n%s%s",
			so.fig, so.sweep, po.fig, po.sweep)
	}
	for _, r := range []*Runner{seq, par} {
		if hits, _ := r.MemoStats(); hits == 0 {
			t.Error("no memo hits: the sweep's default point did not replay the figure's layers")
		}
	}
}
