// Adversarial detection campaigns in the experiment harness: the same
// memoized-cell machinery as the figures, but the artifact is the paper's
// detection matrix rather than a performance series.
package exp

import (
	"fmt"

	"tnpu/internal/attack"
)

type attackKey struct {
	short string
	class Class
}

// DetectionCampaign runs (once) the fault-injection sweep for one model:
// every attack kind x every victim traffic class the workload exposes x
// every protection scheme, classified against the detection matrix.
func (r *Runner) DetectionCampaign(short string, class Class) (*attack.Report, error) {
	k := attackKey{short, class}
	label := fmt.Sprintf("%s/%s attack", short, class)
	return compute(r, r.attacks, k, "attack", label, func() (*attack.Report, error) {
		prog, err := r.Program(short, class)
		if err != nil {
			return nil, err
		}
		targets := attack.AvailableTargets(prog)
		if len(targets) == 0 {
			return nil, fmt.Errorf("exp: %s exposes no attackable traffic class", short)
		}
		return attack.Campaign{Targets: targets, Workers: r.workers()}.Run(short, prog)
	})
}

// DetectionMatrix sweeps the campaign over every runner model. The
// returned reports are in model order; the error is the first campaign
// that could not run (matrix violations are reported per-Report, not
// here, so a violation still yields the full evidence).
func (r *Runner) DetectionMatrix(class Class) ([]*attack.Report, error) {
	reps := make([]*attack.Report, len(r.Models))
	err := r.forEach(len(r.Models), func(i int) error {
		rep, err := r.DetectionCampaign(r.Models[i], class)
		if err != nil {
			return err
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reps, nil
}
