package exp

import (
	"path/filepath"
	"testing"

	"tnpu/internal/certcheck"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
)

// TestConfigDigestCoversAllFields cross-checks the canoncover digest
// certificate against the live shape of npu.Config: tnpu-vet's
// digest-coverage proof (the digestcover marker on ConfigDigest)
// certifies the exact leaf paths the digest renders
// (testdata/canoncover.json), and this test reflects over npu.Config to
// confirm those paths — plus the canonskip-waived Name label — are
// still every leaf the struct has. Adding a configuration knob without
// updating ConfigDigest fails tnpu-vet; adding one without
// regenerating the artifact fails here.
func TestConfigDigestCoversAllFields(t *testing.T) {
	certs := certcheck.Load(t, filepath.Join("..", "..", "testdata", "canoncover.json"))
	certcheck.LeafPathsMatch(t, certs, "tnpu/internal/npu.Config", npu.Config{})
}

// TestConfigDigestSensitivity checks every simulated field perturbs the
// digest and the display-only Name does not.
func TestConfigDigestSensitivity(t *testing.T) {
	base := npu.SmallNPU()
	ref := ConfigDigest(base)
	if ConfigDigest(base) != ref {
		t.Fatal("digest not deterministic")
	}
	renamed := base
	renamed.Name = "other"
	if ConfigDigest(renamed) != ref {
		t.Error("Name is display-only and must not change the digest")
	}
	perturb := []func(*npu.Config){
		func(c *npu.Config) { c.Array.Rows++ },
		func(c *npu.Config) { c.Array.Cols++ },
		func(c *npu.Config) { c.Array.Flow++ },
		func(c *npu.Config) { c.SPM.CapacityBytes++ },
		func(c *npu.Config) { c.Mem.FreqHz++ },
		func(c *npu.Config) { c.Mem.BandwidthBytesPerSec++ },
		func(c *npu.Config) { c.Mem.LatencyCycles++ },
		func(c *npu.Config) { c.Mem.Channels++ },
		func(c *npu.Config) { c.TLBEntries++ },
		func(c *npu.Config) { c.TLBWalkCycles++ },
	}
	for i, f := range perturb {
		cfg := base
		f(&cfg)
		if ConfigDigest(cfg) == ref {
			t.Errorf("perturbation %d did not change the digest", i)
		}
	}
}

func TestCellKeyDigest(t *testing.T) {
	base := CellKey{Model: "df", Class: Small, Scheme: memprot.TreeLess, Count: 1}
	ref := base.Digest(CodeVersion)
	if base.Digest(CodeVersion) != ref {
		t.Fatal("cell digest not deterministic")
	}
	variants := []CellKey{
		{Model: "res", Class: Small, Scheme: memprot.TreeLess, Count: 1},
		{Model: "df", Class: Large, Scheme: memprot.TreeLess, Count: 1},
		{Model: "df", Class: Small, Scheme: memprot.Baseline, Count: 1},
		{Model: "df", Class: Small, Scheme: memprot.TreeLess, Count: 2},
	}
	for i, v := range variants {
		if v.Digest(CodeVersion) == ref {
			t.Errorf("variant %d collided with the base cell", i)
		}
	}
	if base.Digest("other-version") == ref {
		t.Error("code-version bump must invalidate the digest")
	}
}

func TestDigestConcatenationSafety(t *testing.T) {
	if Digest("v", "ab", "c") == Digest("v", "a", "bc") {
		t.Error("part boundaries must be digested (length-prefixed), not concatenated")
	}
	if Digest("v", "a") == Digest("va") {
		t.Error("version and parts must not concatenate")
	}
}

func TestDigestParamsOrderIndependent(t *testing.T) {
	a := DigestParams("v", "figure", map[string]string{"id": "fig14", "models": "df,res"})
	b := DigestParams("v", "figure", map[string]string{"models": "df,res", "id": "fig14"})
	if a != b {
		t.Error("param digest must not depend on map construction order")
	}
	c := DigestParams("v", "figure", map[string]string{"id": "fig15", "models": "df,res"})
	if a == c {
		t.Error("distinct params must digest differently")
	}
}
