// Worker pool and run observability for the experiment harness.
//
// Every figure series, sweep table, and headline metric is a grid of
// independent simulation cells (each owns its dram.Bus and
// memprot.Engine), so the harness fans them out across a bounded pool.
// Results land in index-addressed slots, which makes parallel output
// byte-identical to the sequential order regardless of scheduling; the
// singleflight memoization in exp.go guarantees each cell is still
// computed exactly once when series share cells (every figure divides by
// the same unsecure runs).
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// workers resolves the effective parallelism.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach evaluates fn(0..n-1) across the runner's worker budget. fn must
// write its result into an index-addressed slot owned by the caller so
// output order never depends on goroutine scheduling. The returned error
// is the lowest-index failure — the same one a sequential loop surfaces.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	r.freeze()
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CellTime records one computed cell: a compile, a multi-NPU simulation,
// an end-to-end run, or an adversarial detection campaign.
type CellTime struct {
	Kind  string // "compile", "simulate", "e2e", or "attack"
	Label string // e.g. "sent/small/baseline x3"
	Wall  time.Duration
}

// RunLog aggregates the runner's observability counters. All methods are
// safe for concurrent use; cells appear in completion order.
type RunLog struct {
	mu     sync.Mutex
	cells  []CellTime
	byKind map[string]time.Duration

	// cacheHits counts singleflight-cache lookups that were served from
	// an already-computed (or in-flight) cell instead of computing fresh.
	cacheHits atomic.Uint64
}

// noteHit records one memoized cell lookup.
func (l *RunLog) noteHit() { l.cacheHits.Add(1) }

// CacheHits reports how many cell lookups were served from the runner's
// in-memory singleflight cache rather than computed. Together with
// CellsDone (fresh computations) it quantifies how much the harness's
// memoization collapses a figure/sweep grid.
func (l *RunLog) CacheHits() uint64 { return l.cacheHits.Load() }

// note records one freshly computed cell and, when progress is non-nil,
// emits a one-line status update.
func (l *RunLog) note(kind, label string, wall time.Duration, progress io.Writer) {
	l.mu.Lock()
	l.cells = append(l.cells, CellTime{Kind: kind, Label: label, Wall: wall})
	if l.byKind == nil {
		l.byKind = make(map[string]time.Duration)
	}
	l.byKind[kind] += wall
	n := len(l.cells)
	l.mu.Unlock()
	if progress != nil {
		fmt.Fprintf(progress, "[cell %3d] %-8s %-28s %s\n", n, kind, label, wall.Round(time.Millisecond))
	}
}

// CellsDone returns how many cells have been computed so far.
func (l *RunLog) CellsDone() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cells)
}

// Cells returns a copy of every recorded cell in completion order.
func (l *RunLog) Cells() []CellTime {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]CellTime, len(l.cells))
	copy(out, l.cells)
	return out
}

// TotalByKind returns the summed wall time of one cell kind
// ("compile", "simulate", "e2e", "attack").
func (l *RunLog) TotalByKind(kind string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byKind[kind]
}

// Slowest returns the n slowest cells, slowest first.
func (l *RunLog) Slowest(n int) []CellTime {
	cells := l.Cells()
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].Wall > cells[j].Wall })
	if n > len(cells) {
		n = len(cells)
	}
	return cells[:n]
}

// Summary renders a human-readable digest: totals per kind plus the
// slowest cells. The wall-clock work is summed across workers, so it
// exceeds elapsed time on a parallel run.
func (l *RunLog) Summary() string {
	cells := l.Cells()
	if len(cells) == 0 {
		return "run log: no cells computed\n"
	}
	var total time.Duration
	for _, c := range cells {
		total += c.Wall
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run log: %d cells, %s total work (compile %s, simulate %s, e2e %s, attack %s)\n",
		len(cells), total.Round(time.Millisecond),
		l.TotalByKind("compile").Round(time.Millisecond),
		l.TotalByKind("simulate").Round(time.Millisecond),
		l.TotalByKind("e2e").Round(time.Millisecond),
		l.TotalByKind("attack").Round(time.Millisecond))
	b.WriteString("slowest cells:\n")
	for _, c := range l.Slowest(5) {
		fmt.Fprintf(&b, "  %-28s %-8s %s\n", c.Label, c.Kind, c.Wall.Round(time.Millisecond))
	}
	return b.String()
}
