package exp

import (
	"strings"
	"testing"
)

func TestBandwidthSweep(t *testing.T) {
	s, err := BandwidthSweep("df")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.TNPU > p.Baseline {
			t.Errorf("%s: tnpu %.3f above baseline %.3f", p.Label, p.TNPU, p.Baseline)
		}
		if p.TNPU < 1 || p.Baseline < 1 {
			t.Errorf("%s: overhead below 1: %+v", p.Label, p)
		}
	}
	if !strings.Contains(s.String(), "bandwidth") {
		t.Error("rendering lost the sweep name")
	}
}

func TestSPMSweepShrinksTraffic(t *testing.T) {
	s, err := SPMSweep("df")
	if err != nil {
		t.Fatal(err)
	}
	// Larger scratchpads should not make the baseline's normalized
	// overhead dramatically worse (more on-chip reuse, fewer counters).
	first, last := s.Points[0].Baseline, s.Points[len(s.Points)-1].Baseline
	if last > first*1.15 {
		t.Errorf("baseline overhead grew with SPM: %.3f -> %.3f", first, last)
	}
}

func TestLatencySweepWidensGap(t *testing.T) {
	s, err := LatencySweep("sent")
	if err != nil {
		t.Fatal(err)
	}
	// The baseline pays DRAM latency per serialized walk level; TNPU does
	// not. The gap must grow monotonically-ish with latency.
	firstGap := s.Points[0].Baseline - s.Points[0].TNPU
	lastGap := s.Points[len(s.Points)-1].Baseline - s.Points[len(s.Points)-1].TNPU
	if lastGap <= firstGap {
		t.Errorf("gap did not widen with DRAM latency: %.3f -> %.3f", firstGap, lastGap)
	}
}

func TestSweepUnknownModel(t *testing.T) {
	if _, err := BandwidthSweep("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestLayerBreakdownEmbeddingDominates(t *testing.T) {
	shares, err := LayerBreakdown("sent", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) == 0 {
		t.Fatal("no layers")
	}
	// The embedding layer must account for the bulk of the baseline's
	// EXTRA time (the paper's sent/tf analysis).
	var embExtra, totalExtra int64
	for _, s := range shares {
		extra := int64(s.Baseline) - int64(s.Unsecure)
		totalExtra += extra
		if s.Layer == "embed" {
			embExtra += extra
		}
	}
	if totalExtra <= 0 {
		t.Fatal("no baseline overhead to attribute")
	}
	if embExtra*2 < totalExtra {
		t.Errorf("embedding layer holds only %d of %d extra cycles", embExtra, totalExtra)
	}
}
