package exp

import (
	"sort"
	"testing"

	"tnpu/internal/memprot"
)

// TestReproductionAcceptance is the repository's reproduction gate: it
// regenerates the paper's headline artifacts over the full 14-workload
// suite and asserts the documented bands of EXPERIMENTS.md. Run with
// -short to skip (it simulates ~170 configurations, ~30s).
func TestReproductionAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite acceptance run")
	}
	r := NewRunner()

	// --- Figure 14 bands (paper: small 1.211/1.090, large 1.173/1.086).
	f14, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range f14.Series {
		series[s.Class.String()+"/"+s.Label] = s
	}
	within := func(name string, lo, hi float64) Series {
		t.Helper()
		s, ok := series[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if m := s.Mean(); m < lo || m > hi {
			t.Errorf("%s mean %.3f outside accepted band [%.2f, %.2f]", name, m, lo, hi)
		}
		return s
	}
	smallBase := within("small/baseline", 1.14, 1.28)
	smallTNPU := within("small/tnpu", 1.07, 1.17)
	within("large/tnpu", 1.02, 1.12)
	if smallTNPU.Mean() >= smallBase.Mean() {
		t.Error("TNPU does not beat the baseline on Small")
	}

	// Per-model ordering: TNPU <= baseline everywhere, both classes.
	for _, class := range []string{"small", "large"} {
		base, tnpu := series[class+"/baseline"], series[class+"/tnpu"]
		for i, short := range base.Models {
			if tnpu.Values[i] > base.Values[i] {
				t.Errorf("%s/%s: tnpu %.3f above baseline %.3f", class, short, tnpu.Values[i], base.Values[i])
			}
		}
	}

	// sent and tf must sit among the three worst baseline models (Small).
	type mv struct {
		short string
		v     float64
	}
	ranked := make([]mv, len(smallBase.Models))
	for i := range smallBase.Models {
		ranked[i] = mv{smallBase.Models[i], smallBase.Values[i]}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	top := map[string]bool{ranked[0].short: true, ranked[1].short: true, ranked[2].short: true}
	if !top["sent"] {
		t.Errorf("sent not among the worst 3 baseline models: %v", ranked[:3])
	}

	// --- Figure 15 bands (paper: +23.3% / +12.3% on Small).
	f15, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f15.Series {
		if s.Class != Small {
			continue
		}
		switch s.Label {
		case "baseline":
			if m := s.Mean(); m < 1.18 || m > 1.28 {
				t.Errorf("small baseline traffic %.3f outside [1.18,1.28] (paper 1.233)", m)
			}
		case "tnpu":
			if m := s.Mean(); m < 1.11 || m > 1.18 {
				t.Errorf("small tnpu traffic %.3f outside [1.11,1.18] (paper 1.123)", m)
			}
		}
	}

	// --- Figure 5: embedding workloads dominate counter misses (Small).
	f5, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	small5 := f5.Series[0]
	idx := map[string]int{}
	for i, m := range small5.Models {
		idx[m] = i
	}
	if small5.Values[idx["sent"]] < 3*small5.Values[idx["goo"]] {
		t.Errorf("sent miss rate %.3f not well above goo %.3f", small5.Values[idx["sent"]], small5.Values[idx["goo"]])
	}

	// --- Figure 16: the baseline-vs-TNPU gap must not shrink with NPUs.
	i1, err := r.Improvement(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	i3, err := r.Improvement(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if i3 < i1-0.01 {
		t.Errorf("small improvement shrank with NPUs: %.3f -> %.3f", i1, i3)
	}

	// --- Figure 17: end-to-end overheads below NPU-only, TNPU ahead.
	f17, err := r.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(f17.Series); i += 2 {
		base, tnpu := f17.Series[i], f17.Series[i+1]
		if tnpu.Mean() >= base.Mean() {
			t.Errorf("e2e %s: tnpu %.3f not below baseline %.3f", base.Class, tnpu.Mean(), base.Mean())
		}
	}

	// --- Sec IV-D: KB-scale version tables.
	if _, avg, max, err := r.VersionStorage(Small); err != nil || avg > 4096 || max > 16384 {
		t.Errorf("version storage out of regime: avg=%v max=%v err=%v", avg, max, err)
	}
}

// TestEncryptOnlyIsLowerBound pins the ordering of all four schemes:
// unsecure < encrypt-only < tnpu < baseline in execution time.
func TestEncryptOnlyIsLowerBound(t *testing.T) {
	r := NewRunner("res")
	var cycles []uint64
	for _, s := range memprot.AllSchemes() {
		res, err := r.Run("res", Small, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, res.Cycles)
	}
	unsec, base, tnpu, enc := cycles[0], cycles[1], cycles[2], cycles[3]
	if !(unsec < enc && enc < tnpu && tnpu < base) {
		t.Errorf("scheme ordering violated: unsec=%d enc=%d tnpu=%d base=%d", unsec, enc, tnpu, base)
	}
}
