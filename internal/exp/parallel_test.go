package exp

import (
	"sort"
	"sync"
	"testing"

	"tnpu/internal/memprot"
)

// TestParallelOutputByteIdentical asserts the tentpole guarantee: a
// parallel runner renders exactly the same bytes as a sequential one, for
// figure series and for sweep tables.
func TestParallelOutputByteIdentical(t *testing.T) {
	seq := NewRunner("df", "agz")
	seq.Workers = 1
	par := NewRunner("df", "agz")
	par.Workers = 4

	sf, err := seq.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := par.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if sf.String() != pf.String() {
		t.Errorf("parallel Figure 14 differs from sequential:\n--- sequential\n%s--- parallel\n%s", sf.String(), pf.String())
	}

	gens := map[string]func(*Runner) (Sweep, error){
		"bandwidth": func(r *Runner) (Sweep, error) { return r.BandwidthSweep("df") },
		"latency":   func(r *Runner) (Sweep, error) { return r.LatencySweep("df") },
	}
	names := make([]string, 0, len(gens))
	for name := range gens {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gen := gens[name]
		ss, err := gen(seq)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := gen(par)
		if err != nil {
			t.Fatal(err)
		}
		if ss.String() != ps.String() {
			t.Errorf("parallel %s sweep differs from sequential:\n--- sequential\n%s--- parallel\n%s", name, ss.String(), ps.String())
		}
	}
}

// TestRunnerConcurrentAccess hammers one runner from many goroutines
// (run under -race in CI) and asserts singleflight semantics: consistent
// results and each distinct cell computed exactly once.
func TestRunnerConcurrentAccess(t *testing.T) {
	r := NewRunner("df", "agz")
	r.Workers = 4

	const goroutines = 8
	cycles := make([]uint64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := r.Program("agz", Small); err != nil {
				errs[g] = err
				return
			}
			res, err := r.Run("df", Small, memprot.Baseline, 1)
			if err != nil {
				errs[g] = err
				return
			}
			cycles[g] = res.Cycles
			if _, err := r.normalized("agz", Small, memprot.TreeLess, 1); err != nil {
				errs[g] = err
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if cycles[g] != cycles[0] {
			t.Fatalf("inconsistent cycles across goroutines: %d vs %d", cycles[g], cycles[0])
		}
	}
	// Exactly-once: 2 compiles (df, agz) + 3 simulations (df/baseline,
	// agz/unsecure, agz/tnpu), regardless of goroutine count.
	if got := len(r.progs); got != 2 {
		t.Errorf("compiled %d programs, want 2", got)
	}
	if got := len(r.runs); got != 3 {
		t.Errorf("simulated %d cells, want 3", got)
	}
	if got := r.Log().CellsDone(); got != 5 {
		t.Errorf("run log has %d cells, want 5 (2 compile + 3 simulate)", got)
	}
}

// TestConcurrentFigures drives whole figure generators from concurrent
// goroutines, the usage pattern of the parallel JSON/Markdown emitters.
func TestConcurrentFigures(t *testing.T) {
	r := NewRunner("df")
	r.Workers = 4
	gens := []func() (Figure, error){r.Figure4, r.Figure5, r.Figure14, r.Figure4, r.Figure5, r.Figure14}
	out := make([]Figure, len(gens))
	errs := make([]error, len(gens))
	var wg sync.WaitGroup
	for i := range gens {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = gens[i]()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if out[i].String() != out[i+3].String() {
			t.Errorf("figure %d not reproducible across goroutines", i)
		}
	}
}

// TestSweepReusesCompiledProgram pins the sweep compile cache: the
// bandwidth and latency sweeps vary only bus parameters, so together they
// must compile the model exactly once (the SPM sweep, which changes the
// compiler view per point, gets one program per capacity).
func TestSweepReusesCompiledProgram(t *testing.T) {
	r := NewRunner("df")
	if _, err := r.BandwidthSweep("df"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LatencySweep("df"); err != nil {
		t.Fatal(err)
	}
	if got := len(r.progs); got != 1 {
		t.Errorf("bandwidth+latency sweeps compiled %d programs, want 1", got)
	}
	if _, err := r.SPMSweep("df"); err != nil {
		t.Fatal(err)
	}
	// 128/256/1024/2048KB are new compiler views; 480KB is the Small
	// default already compiled.
	if got := len(r.progs); got != 5 {
		t.Errorf("after SPM sweep %d compiled programs, want 5", got)
	}
	// The three sweeps share the Small-default point (1x BW, 100-cycle
	// DRAM, 480KB SPM), so its three scheme cells are computed once:
	// (4+4+5) points x 3 schemes = 39 requests, minus 2x3 shared = 33.
	if got := len(r.sweepRuns); got != 33 {
		t.Errorf("sweep cells simulated %d times, want 33", got)
	}
}

// TestParallelErrorPropagation keeps the sequential error contract under
// the pool: an unknown model still surfaces as an error.
func TestParallelErrorPropagation(t *testing.T) {
	r := NewRunner("df", "nope", "agz")
	r.Workers = 4
	if _, err := r.Figure4(); err == nil {
		t.Error("unknown model accepted by parallel seriesOver")
	}
	if _, err := r.Improvement(Small, 1); err == nil {
		t.Error("unknown model accepted by parallel Improvement")
	}
	if _, _, _, err := r.VersionStorage(Small); err == nil {
		t.Error("unknown model accepted by parallel VersionStorage")
	}
}
