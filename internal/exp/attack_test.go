package exp

import (
	"strings"
	"testing"

	"tnpu/internal/memprot"
)

func TestDetectionCampaign(t *testing.T) {
	r := NewRunner("df")
	rep, err := r.DetectionCampaign("df", Small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "df" {
		t.Errorf("report model = %q, want df", rep.Model)
	}
	if err := rep.Matrix(); err != nil {
		t.Errorf("detection matrix violated:\n%v", err)
	}
	st := rep.Stats()
	for _, s := range []memprot.Scheme{memprot.Baseline, memprot.TreeLess} {
		if c := st[s].Coverage(); c != 1 {
			t.Errorf("%s coverage = %v, want 1", s, c)
		}
	}
	if c := st[memprot.Unsecure].Coverage(); c != 0 {
		t.Errorf("unsecure coverage = %v, want 0", c)
	}

	// Campaigns are memoized like every other cell.
	again, err := r.DetectionCampaign("df", Small)
	if err != nil {
		t.Fatal(err)
	}
	if again != rep {
		t.Error("second campaign was recomputed, want cached pointer")
	}
	if got := r.Log().TotalByKind("attack"); got == 0 {
		t.Error("RunLog records no attack time")
	}
	if !strings.Contains(r.Log().Summary(), "attack") {
		t.Errorf("RunLog summary omits attack kind:\n%s", r.Log().Summary())
	}
}

func TestDetectionMatrixAllModels(t *testing.T) {
	r := NewRunner("df", "agz")
	reps, err := r.DetectionMatrix(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}
	for i, short := range r.Models {
		if reps[i].Model != short {
			t.Errorf("report %d is %q, want %q (model order)", i, reps[i].Model, short)
		}
		if err := reps[i].Matrix(); err != nil {
			t.Errorf("%s: detection matrix violated:\n%v", short, err)
		}
	}
}
