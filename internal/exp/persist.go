// Whole-run memos (DESIGN.md §6g): with a persistent memo store attached,
// the runner serializes finished cell results — single/multi-NPU runs,
// mixed-tenancy tuples, end-to-end flows, sweep points — through the same
// memostore that backs the layer memo. Layer memos alone cannot make a
// cold process cheap: multi-NPU arbitration (counts 2–3) and the
// end-to-end flow never touch the layer memo, so their cells are
// persisted whole. Keys run through exp.Digest under CodeVersion plus a
// body-format tag, so both a simulator change and a framing change strand
// old entries. Bodies are canon-encoded (fixed-width little-endian u64),
// restored by accumulating into zero values; a body that fails structural
// validation is deleted and recomputed, mirroring the layer memo's
// discipline.
package exp

import (
	"encoding/binary"
	"fmt"

	"tnpu/internal/canon"
	"tnpu/internal/e2e"
	"tnpu/internal/memprot"
	"tnpu/internal/multinpu"
	"tnpu/internal/npu"
	"tnpu/internal/npu/memostore"
	"tnpu/internal/stats"
)

// cellMemoTag versions the persisted cell-result body format,
// independently of CodeVersion (which tracks simulation semantics).
const cellMemoTag = "cellmemo1"

// SetMemoDir attaches a persistent memo store under dir: layer memo
// entries and whole-run cell results recorded by this runner are written
// there and reloaded by later processes. Must be called before the first
// figure/sweep call, like the rest of the runner configuration (enforced:
// panics after first use). An empty dir is a no-op.
func (r *Runner) SetMemoDir(dir string) error {
	if dir == "" {
		return nil
	}
	if r.used.Load() {
		panic("exp: SetMemoDir after the runner's first use; attach the memo dir before the first figure/sweep call")
	}
	st, err := memostore.New(dir)
	if err != nil {
		return err
	}
	r.cellStore = st
	r.memo.AttachStore(st, CodeVersion)
	return nil
}

// MemoDir returns the attached persistent memo directory ("" if none).
func (r *Runner) MemoDir() string { return r.cellStore.Dir() }

// LayerMemoStats exposes the full layer-memo counter snapshot (including
// persistence outcomes); MemoStats keeps the compact hits/misses view.
func (r *Runner) LayerMemoStats() npu.MemoStats { return r.memo.Stats() }

// CellStoreStats reports the persistent store's counters (zero when no
// memo dir is attached). The counters aggregate layer-memo and whole-run
// traffic: both ride the same store.
func (r *Runner) CellStoreStats() memostore.Stats { return r.cellStore.Stats() }

// persisted wraps one cell computation with the whole-run memo: try the
// store under key, validate, fall back to fn, save what fn produced.
// Errors are never persisted.
func persisted[V any](r *Runner, key string, enc func([]byte, *V) []byte, dec func([]byte) (V, bool), fn func() (V, error)) (V, error) {
	st := r.cellStore
	if st == nil {
		return fn()
	}
	if body, ok := st.Load(key); ok {
		if v, ok := dec(body); ok {
			return v, nil
		}
		// Checksum-valid bytes in a stale shape: drop and recompute.
		st.Delete(key)
	}
	v, err := fn()
	if err != nil {
		return v, err
	}
	st.Save(key, enc(nil, &v))
	return v, nil
}

// Body sizes of the fixed-width stats tails, measured from the canon
// encoders themselves so the decoders' structural validation cannot drift
// from the encoding.
var (
	trafficAccumLen = len((&stats.Traffic{}).AppendAccum(nil))
	cacheAccumLen   = len((&stats.CacheStats{}).AppendAccum(nil))
)

// u64cursor is a non-panicking canon reader for persisted bodies: unlike
// in-process canon blobs, a disk body's shape is input (an older process
// may have framed it differently), so truncation must decode to "refuse",
// not panic.
type u64cursor struct {
	src []byte
	bad bool
}

func (c *u64cursor) u64() uint64 {
	if c.bad || len(c.src) < 8 {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.src)
	c.src = c.src[8:]
	return v
}

func (c *u64cursor) remaining(n int) bool { return !c.bad && len(c.src) == n }

func appendRunResult(dst []byte, res *multinpu.Result) []byte {
	dst = canon.AppendU64(dst, uint64(res.Scheme))
	dst = canon.AppendU64(dst, res.Cycles)
	dst = canon.AppendU64(dst, uint64(len(res.PerNPU)))
	for _, v := range res.PerNPU {
		dst = canon.AppendU64(dst, v)
	}
	dst = canon.AppendU64(dst, uint64(len(res.NPUs)))
	for i := range res.NPUs {
		n := &res.NPUs[i]
		dst = canon.AppendU64(dst, n.Cycles)
		dst = canon.AppendU64(dst, n.Blocks)
		dst = canon.AppendU64(dst, n.ReadBytes)
		dst = canon.AppendU64(dst, n.WriteBytes)
		dst = canon.AppendU64(dst, n.Runs)
	}
	dst = res.Traffic.AppendAccum(dst)
	dst = res.Counter.AppendAccum(dst)
	dst = res.Hash.AppendAccum(dst)
	return res.MAC.AppendAccum(dst)
}

func decodeRunResult(body []byte) (multinpu.Result, bool) {
	var res multinpu.Result
	c := &u64cursor{src: body}
	res.Scheme = memprot.Scheme(c.u64())
	res.Cycles = c.u64()
	n := c.u64()
	if c.bad || n > uint64(len(c.src))/8 {
		return multinpu.Result{}, false
	}
	res.PerNPU = make([]uint64, n)
	for i := range res.PerNPU {
		res.PerNPU[i] = c.u64()
	}
	n = c.u64()
	if c.bad || n > uint64(len(c.src))/(8*5) {
		return multinpu.Result{}, false
	}
	res.NPUs = make([]multinpu.NPUStats, n)
	for i := range res.NPUs {
		s := &res.NPUs[i]
		s.Cycles = c.u64()
		s.Blocks = c.u64()
		s.ReadBytes = c.u64()
		s.WriteBytes = c.u64()
		s.Runs = c.u64()
	}
	if !c.remaining(trafficAccumLen + 3*cacheAccumLen) {
		return multinpu.Result{}, false
	}
	rest := res.Traffic.AddAccum(c.src)
	rest = res.Counter.AddAccum(rest)
	rest = res.Hash.AddAccum(rest)
	rest = res.MAC.AddAccum(rest)
	if len(rest) != 0 {
		return multinpu.Result{}, false
	}
	return res, true
}

func appendE2EResult(dst []byte, res *e2e.Result) []byte {
	dst = canon.AppendU64(dst, uint64(res.Scheme))
	dst = canon.AppendU64(dst, res.InitCycles)
	dst = canon.AppendU64(dst, res.RunCycles)
	dst = canon.AppendU64(dst, res.OutputCycles)
	dst = canon.AppendU64(dst, res.Total)
	return res.Traffic.AppendAccum(dst)
}

func decodeE2EResult(body []byte) (e2e.Result, bool) {
	var res e2e.Result
	c := &u64cursor{src: body}
	res.Scheme = memprot.Scheme(c.u64())
	res.InitCycles = c.u64()
	res.RunCycles = c.u64()
	res.OutputCycles = c.u64()
	res.Total = c.u64()
	if !c.remaining(trafficAccumLen) {
		return e2e.Result{}, false
	}
	if rest := res.Traffic.AddAccum(c.src); len(rest) != 0 {
		return e2e.Result{}, false
	}
	return res, true
}

func appendCycles(dst []byte, v *uint64) []byte { return canon.AppendU64(dst, *v) }

func decodeCycles(body []byte) (uint64, bool) {
	if len(body) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(body), true
}

// Cell disk keys: one per persisted cell kind, each a Digest under
// CodeVersion + the body-format tag, so simulator changes and framing
// changes both strand old entries.

func runCellKey(short string, cfg npu.Config, scheme memprot.Scheme, count int) string {
	return Digest(CodeVersion, cellMemoTag, "run", short, ConfigDigest(cfg),
		scheme.String(), fmt.Sprintf("x%d", count))
}

func mixedCellKey(shorts []string, cfg npu.Config, scheme memprot.Scheme) string {
	parts := make([]string, 0, len(shorts)+4)
	parts = append(parts, cellMemoTag, "mixed", ConfigDigest(cfg), scheme.String())
	parts = append(parts, shorts...)
	return Digest(CodeVersion, parts...)
}

func e2eCellKey(short string, cfg npu.Config, scheme memprot.Scheme) string {
	return Digest(CodeVersion, cellMemoTag, "e2e", short, ConfigDigest(cfg), scheme.String())
}

func sweepCellKey(short string, cfg npu.Config, scheme memprot.Scheme) string {
	return Digest(CodeVersion, cellMemoTag, "sweeprun", short, ConfigDigest(cfg), scheme.String())
}
