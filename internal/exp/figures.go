package exp

import (
	"fmt"
	"strings"

	"tnpu/internal/hwcost"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/stats"
)

// Series is one figure's data: per-model values for one (class, label)
// line, plus the arithmetic mean the paper quotes.
type Series struct {
	Class  Class
	Label  string
	Models []string
	Values []float64
}

// Mean returns the arithmetic mean (the paper reports averages).
func (s Series) Mean() float64 { return stats.Mean(s.Values) }

// Figure is a titled collection of series with a table rendering.
type Figure struct {
	ID     string
	Title  string
	Series []Series
}

// String renders the figure as an aligned table with a mean column.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	header := append([]string{"series"}, f.Series[0].Models...)
	header = append(header, "mean")
	tb := stats.NewTable(header...)
	for _, s := range f.Series {
		row := []string{fmt.Sprintf("%s/%s", s.Class, s.Label)}
		for _, v := range s.Values {
			row = append(row, stats.F(v))
		}
		row = append(row, stats.F(s.Mean()))
		tb.AddRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}

// seriesOver builds one series by evaluating fn per model, fanning the
// models out across the runner's worker pool. Values land at their model's
// index, so the series is identical to a sequential build.
func (r *Runner) seriesOver(class Class, label string, fn func(short string) (float64, error)) (Series, error) {
	s := Series{Class: class, Label: label, Models: r.Models}
	s.Values = make([]float64, len(r.Models))
	err := r.forEach(len(r.Models), func(i int) error {
		v, err := fn(r.Models[i])
		if err != nil {
			return err
		}
		s.Values[i] = v
		return nil
	})
	if err != nil {
		return s, err
	}
	return s, nil
}

// AllFigures computes every figure of the evaluation, fanning the
// generators across the worker pool. Results come back in fixed paper
// order: Figure 4, 5, 14, 15, 16, 17.
func (r *Runner) AllFigures() ([]Figure, error) {
	gens := []func() (Figure, error){r.Figure4, r.Figure5, r.Figure14, r.Figure15, r.Figure16, r.Figure17}
	figs := make([]Figure, len(gens))
	err := r.forEach(len(gens), func(i int) error {
		f, err := gens[i]()
		figs[i] = f
		return err
	})
	return figs, err
}

// Figure4 reproduces the motivation figure: execution time of the
// tree-based baseline normalized to unsecure runs, both NPU classes.
func (r *Runner) Figure4() (Figure, error) {
	f := Figure{ID: "Figure 4", Title: "Tree-based protection overhead (normalized execution time)"}
	for _, class := range Classes() {
		for _, scheme := range r.schemeSubset(memprot.Baseline) {
			scheme := scheme
			s, err := r.seriesOver(class, scheme.String(), func(short string) (float64, error) {
				return r.normalized(short, class, scheme, 1)
			})
			if err != nil {
				return f, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// Figure5 reproduces the counter-cache miss-rate figure.
func (r *Runner) Figure5() (Figure, error) {
	f := Figure{ID: "Figure 5", Title: "Counter cache miss rates (tree-based baseline)"}
	if !r.SchemeEnabled(memprot.Baseline) {
		return f, nil
	}
	for _, class := range Classes() {
		s, err := r.seriesOver(class, "miss-rate", func(short string) (float64, error) {
			res, err := r.Run(short, class, memprot.Baseline, 1)
			if err != nil {
				return 0, err
			}
			return res.Counter.MissRate(), nil
		})
		if err != nil {
			return f, err
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Figure14 reproduces the headline result: execution times of unsecure,
// baseline, and TNPU, normalized to unsecure.
func (r *Runner) Figure14() (Figure, error) {
	f := Figure{ID: "Figure 14", Title: "Execution time normalized to unsecure (1 NPU)"}
	for _, class := range Classes() {
		for _, scheme := range r.schemeSubset(memprot.Baseline, memprot.TreeLess) {
			scheme := scheme
			s, err := r.seriesOver(class, scheme.String(), func(short string) (float64, error) {
				return r.normalized(short, class, scheme, 1)
			})
			if err != nil {
				return f, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// Figure15 reproduces the traffic figure: total data volume normalized to
// the unsecure run.
func (r *Runner) Figure15() (Figure, error) {
	f := Figure{ID: "Figure 15", Title: "Memory traffic normalized to unsecure"}
	for _, class := range Classes() {
		for _, scheme := range r.schemeSubset(memprot.Baseline, memprot.TreeLess) {
			scheme := scheme
			s, err := r.seriesOver(class, scheme.String(), func(short string) (float64, error) {
				u, err := r.Run(short, class, memprot.Unsecure, 1)
				if err != nil {
					return 0, err
				}
				v, err := r.Run(short, class, scheme, 1)
				if err != nil {
					return 0, err
				}
				if u.Traffic.Total() == 0 {
					return 0, fmt.Errorf("exp: %s/%s: unsecure run moved zero bytes, cannot normalize traffic", short, class)
				}
				return float64(v.Traffic.Total()) / float64(u.Traffic.Total()), nil
			})
			if err != nil {
				return f, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// Figure16 reproduces the scalability study: 1–3 NPUs, normalized to the
// unsecure run with the same NPU count.
func (r *Runner) Figure16() (Figure, error) {
	f := Figure{ID: "Figure 16", Title: "Execution time vs NPU count (normalized to same-count unsecure)"}
	for _, class := range Classes() {
		for count := 1; count <= 3; count++ {
			for _, scheme := range r.schemeSubset(memprot.Baseline, memprot.TreeLess) {
				scheme, count := scheme, count
				s, err := r.seriesOver(class, fmt.Sprintf("%s x%d", scheme, count), func(short string) (float64, error) {
					return r.normalized(short, class, scheme, count)
				})
				if err != nil {
					return f, err
				}
				f.Series = append(f.Series, s)
			}
		}
	}
	return f, nil
}

// Figure17 reproduces the end-to-end latency figure.
func (r *Runner) Figure17() (Figure, error) {
	f := Figure{ID: "Figure 17", Title: "End-to-end latency normalized to unsecure"}
	for _, class := range Classes() {
		for _, scheme := range r.schemeSubset(memprot.Baseline, memprot.TreeLess) {
			scheme := scheme
			s, err := r.seriesOver(class, scheme.String(), func(short string) (float64, error) {
				u, err := r.EndToEnd(short, class, memprot.Unsecure)
				if err != nil {
					return 0, err
				}
				v, err := r.EndToEnd(short, class, scheme)
				if err != nil {
					return 0, err
				}
				if u.Total == 0 {
					return 0, fmt.Errorf("exp: %s/%s: unsecure end-to-end run took zero cycles, cannot normalize", short, class)
				}
				return float64(v.Total) / float64(u.Total), nil
			})
			if err != nil {
				return f, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// Table3 reproduces the benchmark table: our computed footprints against
// the paper's.
func (r *Runner) Table3() string {
	tb := stats.NewTable("model", "footprint(ours)", "footprint(paper)", "ratio")
	for _, short := range r.Models {
		m, err := model.ByShort(short)
		if err != nil {
			continue
		}
		ours := float64(m.Footprint()) / (1 << 20)
		// A workload absent from Table III (or recorded as zero) has no
		// paper reference; print n/a instead of a 0.0MB cell and a +Inf
		// ratio.
		paperCell, ratio := "n/a", "n/a"
		if paper, ok := model.PaperFootprintsMB[short]; ok && paper > 0 {
			paperCell = fmt.Sprintf("%.1fMB", paper)
			ratio = stats.F(ours / paper)
		}
		tb.AddRow(short, fmt.Sprintf("%.1fMB", ours), paperCell, ratio)
	}
	return "Table III: benchmark memory footprints\n" + tb.String()
}

// VersionStorage reproduces the Sec. IV-D storage analysis: peak
// version-table bytes per workload, with average and maximum.
func (r *Runner) VersionStorage(class Class) (perModel map[string]int, avg float64, max int, err error) {
	peaks := make([]int, len(r.Models))
	err = r.forEach(len(r.Models), func(i int) error {
		p, err := r.Program(r.Models[i], class)
		if err != nil {
			return err
		}
		peaks[i] = p.Table.PeakStorageBytes()
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	perModel = make(map[string]int)
	sum := 0
	for i, short := range r.Models {
		perModel[short] = peaks[i]
		sum += peaks[i]
		if peaks[i] > max {
			max = peaks[i]
		}
	}
	return perModel, float64(sum) / float64(len(r.Models)), max, nil
}

// HardwareCost reproduces Sec. V-E.
func (r *Runner) HardwareCost() hwcost.Summary {
	return hwcost.Summarize(hwcost.TNPUEngine())
}

// Improvement returns the paper's headline metric: the mean reduction of
// execution time from baseline to TNPU at the given NPU count, per class
// ("improves the performance of the baseline by X%").
func (r *Runner) Improvement(class Class, count int) (float64, error) {
	if len(r.Models) == 0 {
		return 0, fmt.Errorf("exp: Improvement(%s, %d): runner has no models", class, count)
	}
	base := make([]float64, len(r.Models))
	tnpu := make([]float64, len(r.Models))
	err := r.forEach(len(r.Models), func(i int) error {
		b, err := r.normalized(r.Models[i], class, memprot.Baseline, count)
		if err != nil {
			return err
		}
		tn, err := r.normalized(r.Models[i], class, memprot.TreeLess, count)
		if err != nil {
			return err
		}
		base[i], tnpu[i] = b, tn
		return nil
	})
	if err != nil {
		return 0, err
	}
	mb := stats.Mean(base)
	if mb == 0 {
		return 0, fmt.Errorf("exp: Improvement(%s, %d): baseline mean is zero", class, count)
	}
	return 1 - stats.Mean(tnpu)/mb, nil
}
