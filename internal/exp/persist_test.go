package exp

import (
	"reflect"
	"testing"

	"tnpu/internal/memprot"
	"tnpu/internal/npu"
	"tnpu/internal/npu/memostore"
)

// buildArtifacts drives one runner through every persisted cell kind —
// multi-NPU runs (Figure16), end-to-end (Figure17), a mixed tuple, and a
// sweep — and returns the rendered artifacts for equality comparison.
func buildArtifacts(t *testing.T, r *Runner) []string {
	t.Helper()
	f16, err := r.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	f17, err := r.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := r.RunMixed([]string{"df", "df"}, Small, memprot.TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := r.LatencySweep("df")
	if err != nil {
		t.Fatal(err)
	}
	return []string{f16.String(), f17.String(), mixed.Traffic.String(), sw.String()}
}

// TestMemoDirRoundTrip pins the whole-run memo guarantee: a fresh runner
// (a "new process") over a directory an earlier runner recorded into
// reproduces every artifact byte-identically without simulating anything —
// every cell loads from the store, no layer is recorded.
func TestMemoDirRoundTrip(t *testing.T) {
	dir := t.TempDir()

	cold := NewRunner("df")
	if err := cold.SetMemoDir(dir); err != nil {
		t.Fatal(err)
	}
	want := buildArtifacts(t, cold)
	if s := cold.CellStoreStats(); s.Saves == 0 {
		t.Fatalf("cold runner persisted nothing: %+v", s)
	}

	warm := NewRunner("df")
	if err := warm.SetMemoDir(dir); err != nil {
		t.Fatal(err)
	}
	got := buildArtifacts(t, warm)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("memo-warm artifacts diverge from cold run:\n want %q\n got  %q", want, got)
	}
	s := warm.CellStoreStats()
	if s.Hits == 0 {
		t.Errorf("warm runner hit nothing on the store: %+v", s)
	}
	if lm := warm.LayerMemoStats(); lm.Records != 0 || lm.Misses != 0 {
		t.Errorf("warm runner simulated layers (records=%d misses=%d); every cell should load whole", lm.Records, lm.Misses)
	}
}

// TestMemoDirStaleBodyRecomputed pins the stale-shape path: a
// checksum-valid entry whose body no longer decodes (an old framing) is
// deleted and recomputed, never served.
func TestMemoDirStaleBodyRecomputed(t *testing.T) {
	dir := t.TempDir()
	cfg := Small.Config()
	key := sweepCellKey("df", cfg, memprot.TreeLess)

	st, err := memostore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Save(key, []byte("not a cycle count")) {
		t.Fatal("seeding stale entry failed")
	}

	r := NewRunner("df")
	if err := r.SetMemoDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := r.runPoint("df", cfg, memprot.TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRunner("df").runPoint("df", cfg, memprot.TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("stale entry leaked into the result: got %d, fresh run says %d", got, ref)
	}
	body, ok := st.Load(key)
	if !ok {
		t.Fatal("recomputed entry not re-persisted")
	}
	if v, ok := decodeCycles(body); !ok || v != ref {
		t.Errorf("re-persisted entry decodes to %d (ok=%v), want %d", v, ok, ref)
	}
}

// TestSetMemoDirAfterUsePanics enforces the attach-before-first-use
// contract, like the Models/Schemes/Workers freeze.
func TestSetMemoDirAfterUsePanics(t *testing.T) {
	r := NewRunner("df")
	if _, err := r.Program("df", Small); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetMemoDir after first use did not panic")
		}
	}()
	if err := r.SetMemoDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestCellKeysDistinct spot-checks the whole-run key derivations: kind,
// workload, configuration, scheme, count, and tuple order all move the
// key, and every key is store-valid.
func TestCellKeysDistinct(t *testing.T) {
	cfg := Small.Config()
	large := Large.Config()
	base := runCellKey("df", cfg, memprot.TreeLess, 1)
	if !memostore.ValidKey(base) {
		t.Fatalf("runCellKey %q is not store-valid", base)
	}
	distinct := map[string]string{
		"model":  runCellKey("res", cfg, memprot.TreeLess, 1),
		"config": runCellKey("df", large, memprot.TreeLess, 1),
		"scheme": runCellKey("df", cfg, memprot.Baseline, 1),
		"count":  runCellKey("df", cfg, memprot.TreeLess, 2),
		"kind":   sweepCellKey("df", cfg, memprot.TreeLess),
	}
	for what, k := range distinct { //tnpu:orderfree — each variant checked independently
		if k == base {
			t.Errorf("changing %s did not change the cell key", what)
		}
	}
	if mixedCellKey([]string{"df", "res"}, cfg, memprot.TreeLess) == mixedCellKey([]string{"res", "df"}, cfg, memprot.TreeLess) {
		t.Error("mixed tuple order does not move the key (order fixes context regions)")
	}
	if e2eCellKey("df", cfg, memprot.TreeLess) == runCellKey("df", cfg, memprot.TreeLess, 1) {
		t.Error("e2e and run cells share a key")
	}
}

// TestPersistedRunResultRoundTrip pins the multinpu.Result canon framing
// field-for-field through encode/decode.
func TestPersistedRunResultRoundTrip(t *testing.T) {
	r := NewRunner("df")
	res, err := r.Run("df", Small, memprot.Baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := decodeRunResult(appendRunResult(nil, &res))
	if !ok {
		t.Fatal("round-trip decode refused its own encoding")
	}
	if !reflect.DeepEqual(res, dec) {
		t.Errorf("run result round-trip mismatch:\n want %+v\n got  %+v", res, dec)
	}
	// Truncations at every prefix length must refuse, not panic.
	body := appendRunResult(nil, &res)
	for n := 0; n < len(body); n++ {
		if _, ok := decodeRunResult(body[:n]); ok {
			t.Fatalf("truncated body of %d/%d bytes decoded", n, len(body))
		}
	}
	e2eRes, err := r.EndToEnd("df", Small, memprot.TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	e2eDec, ok := decodeE2EResult(appendE2EResult(nil, &e2eRes))
	if !ok {
		t.Fatal("e2e round-trip decode refused its own encoding")
	}
	if !reflect.DeepEqual(e2eRes, e2eDec) {
		t.Errorf("e2e result round-trip mismatch:\n want %+v\n got  %+v", e2eRes, e2eDec)
	}
}

// TestMemoDirWarmStartUsesLayerStore covers the layer-memo persistence
// path through the runner (whole-run memos normally short-circuit it):
// a warm runner whose *cell* entries were stranded by a cell-format bump
// still replays layers from the store instead of re-recording them.
func TestMemoDirWarmStartUsesLayerStore(t *testing.T) {
	dir := t.TempDir()
	cold := NewRunner("df")
	if err := cold.SetMemoDir(dir); err != nil {
		t.Fatal(err)
	}
	cfg := Small.Config()
	want, err := cold.runPoint("df", cfg, memprot.TreeLess)
	if err != nil {
		t.Fatal(err)
	}

	// Strand the whole-run cell so the warm runner must simulate — its
	// layer lookups should then come off the persistent store.
	st, err := memostore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Delete(sweepCellKey("df", cfg, memprot.TreeLess))

	warm := NewRunner("df")
	if err := warm.SetMemoDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := warm.runPoint("df", cfg, memprot.TreeLess)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("layer-store replay run = %d cycles, cold run = %d", got, want)
	}
	lm := warm.LayerMemoStats()
	if lm.DiskHits == 0 {
		t.Errorf("warm simulation loaded no layers from the store: %+v", lm)
	}
	if lm.Records != 0 {
		t.Errorf("warm simulation re-recorded %d layers, want 0", lm.Records)
	}
	var _ npu.MemoStats = lm
}
