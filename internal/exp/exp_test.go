package exp

import (
	"strings"
	"testing"

	"tnpu/internal/memprot"
)

// testRunner uses a small, fast workload subset.
func testRunner() *Runner { return NewRunner("df", "agz", "sent") }

func TestClassString(t *testing.T) {
	if Small.String() != "small" || Large.String() != "large" {
		t.Error("class names wrong")
	}
	if Small.Config().Name != "small" || Large.Config().Name != "large" {
		t.Error("class configs wrong")
	}
	if len(Classes()) != 2 {
		t.Error("want 2 classes")
	}
}

func TestRunnerDefaultsToAllModels(t *testing.T) {
	if got := len(NewRunner().Models); got != 14 {
		t.Errorf("default runner has %d models, want 14", got)
	}
}

func TestRunCaching(t *testing.T) {
	r := testRunner()
	a, err := r.Run("df", Small, memprot.Baseline, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Run("df", Small, memprot.Baseline, 1)
	if a.Cycles != b.Cycles {
		t.Fatal("cache returned different result")
	}
	if len(r.runs) != 1 {
		t.Fatalf("expected 1 cached run, have %d", len(r.runs))
	}
}

func TestFigure4(t *testing.T) {
	r := testRunner()
	f, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("Figure 4 has %d series, want 2 (small/large)", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Values) != 3 {
			t.Fatalf("series %s/%s has %d values", s.Class, s.Label, len(s.Values))
		}
		for i, v := range s.Values {
			if v < 1 {
				t.Errorf("%s baseline overhead %s < 1: %v", s.Class, s.Models[i], v)
			}
		}
		if s.Mean() <= 1 {
			t.Errorf("mean overhead not above 1: %v", s.Mean())
		}
	}
	if !strings.Contains(f.String(), "Figure 4") {
		t.Error("rendering lost the title")
	}
}

func TestFigure5(t *testing.T) {
	r := testRunner()
	f, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		for i, v := range s.Values {
			if v < 0 || v > 1 {
				t.Errorf("miss rate out of range: %s=%v", s.Models[i], v)
			}
		}
	}
	// sent (index 2) must dominate df (index 0) on the Small NPU.
	small := f.Series[0]
	if small.Values[2] <= small.Values[0] {
		t.Errorf("sent miss rate %v not above df %v", small.Values[2], small.Values[0])
	}
}

func TestFigure14Ordering(t *testing.T) {
	r := testRunner()
	f, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 { // 2 classes x {baseline, tnpu}
		t.Fatalf("Figure 14 has %d series", len(f.Series))
	}
	// Per class: tnpu mean < baseline mean.
	for i := 0; i < len(f.Series); i += 2 {
		base, tnpu := f.Series[i], f.Series[i+1]
		if tnpu.Mean() >= base.Mean() {
			t.Errorf("%s: tnpu mean %.3f not below baseline %.3f", base.Class, tnpu.Mean(), base.Mean())
		}
	}
}

func TestFigure15TrafficBounds(t *testing.T) {
	r := testRunner()
	f, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		for i, v := range s.Values {
			if v <= 1 || v > 2 {
				t.Errorf("%s/%s %s traffic ratio implausible: %v", s.Class, s.Label, s.Models[i], v)
			}
		}
	}
}

func TestFigure16SeriesCount(t *testing.T) {
	r := NewRunner("df") // single model keeps the 3-NPU sweep fast
	f, err := r.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 12 { // 2 classes x 3 counts x 2 schemes
		t.Fatalf("Figure 16 has %d series, want 12", len(f.Series))
	}
}

func TestFigure17(t *testing.T) {
	r := testRunner()
	f, err := r.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(f.Series); i += 2 {
		base, tnpu := f.Series[i], f.Series[i+1]
		if tnpu.Mean() >= base.Mean() {
			t.Errorf("e2e %s: tnpu %.3f not below baseline %.3f", base.Class, tnpu.Mean(), base.Mean())
		}
	}
}

func TestTable3(t *testing.T) {
	out := testRunner().Table3()
	for _, want := range []string{"Table III", "df", "sent", "MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q", want)
		}
	}
}

func TestVersionStorage(t *testing.T) {
	per, avg, max, err := testRunner().VersionStorage(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 || avg <= 0 || max <= 0 {
		t.Fatalf("version storage: %v avg=%v max=%v", per, avg, max)
	}
	// Sec. IV-D regime: KB-scale, not MB.
	if max > 64<<10 {
		t.Errorf("max version storage %dB not KB-scale", max)
	}
}

func TestHardwareCost(t *testing.T) {
	s := testRunner().HardwareCost()
	if s.AreaMM2 <= 0 || s.PowerMW <= 0 {
		t.Fatal("empty hardware cost")
	}
}

func TestImprovement(t *testing.T) {
	r := testRunner()
	imp, err := r.Improvement(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if imp <= 0 || imp > 0.5 {
		t.Errorf("improvement %.3f outside plausible range", imp)
	}
}

func TestUnknownModelPropagates(t *testing.T) {
	r := NewRunner("nope")
	if _, err := r.Figure4(); err == nil {
		t.Error("unknown model accepted")
	}
}
