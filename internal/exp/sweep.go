package exp

import (
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/npu"
	"tnpu/internal/stats"
)

// SweepPoint is one configuration of a sensitivity sweep.
type SweepPoint struct {
	Label string
	// Normalized is scheme/unsecure at this configuration.
	Baseline, TNPU float64
}

// Sweep holds a one-dimensional sensitivity study: how the two protection
// schemes' overheads move as one hardware parameter scales. These go
// beyond the paper's fixed Table II points and probe where its conclusion
// (tree-less wins, and wins more when metadata pressure rises) holds.
type Sweep struct {
	Name   string
	Model  string
	Points []SweepPoint
}

// String renders the sweep as a table.
func (s Sweep) String() string {
	tb := stats.NewTable(s.Name, "baseline", "tnpu", "gap")
	for _, p := range s.Points {
		tb.AddRow(p.Label, stats.F(p.Baseline), stats.F(p.TNPU), stats.F(p.Baseline-p.TNPU))
	}
	return fmt.Sprintf("Sensitivity: %s on %q\n%s", s.Name, s.Model, tb.String())
}

// sweepPoint is one labelled hardware configuration of a sweep.
type sweepPoint struct {
	label string
	cfg   npu.Config
}

type sweepRunKey struct {
	short  string
	cfg    npu.Config
	scheme memprot.Scheme
}

// runPoint simulates (once) one (config, scheme) sweep cell, reusing the
// compiled program for the point's compiler config (shared with Program's
// figure cells, so the layer memo replays across figures and sweeps).
func (r *Runner) runPoint(short string, cfg npu.Config, scheme memprot.Scheme) (uint64, error) {
	k := sweepRunKey{short, cfg, scheme}
	label := fmt.Sprintf("%s/sweep/%s", short, scheme)
	return compute(r, r.sweepRuns, k, "simulate", label, func() (uint64, error) {
		return persisted(r, sweepCellKey(short, cfg, scheme), appendCycles, decodeCycles, func() (uint64, error) {
			prog, err := r.program(short, cfg.CompilerConfig())
			if err != nil {
				return 0, err
			}
			bus := dram.NewBus(cfg.Mem)
			eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
			if err != nil {
				return 0, err
			}
			mach := npu.NewMachine(prog, eng)
			mach.RunMemoized(r.memo)
			return mach.Cycles(), nil
		})
	})
}

// sweepOver evaluates all three schemes at each configuration, fanning the
// (point, scheme) grid across the worker pool; cells land at their grid
// index so the table is identical to a sequential build.
//
// Record-once cell ordering (DESIGN.md §6g): every sweep includes the
// class-default configuration as one of its points (1x bandwidth, 480KB
// SPM, 100-cycle DRAM are all the Small NPU's Table II values), and that
// point's layer recordings are exactly the ones the figure grids and the
// other sweeps replay. Those base cells run as a first wave, so by the
// time the replay-heavy fan-out starts, the shared signatures are already
// recorded (or flight-claimed) instead of being recorded redundantly by
// whichever workers reach them first.
func (r *Runner) sweepOver(name, short string, points []sweepPoint) (Sweep, error) {
	s := Sweep{Name: name, Model: short, Points: make([]SweepPoint, len(points))}
	schemes := []memprot.Scheme{memprot.Unsecure, memprot.Baseline, memprot.TreeLess}
	cycles := make([]uint64, len(points)*len(schemes))
	base := npu.SmallNPU()
	runWave := func(baseWave bool) error {
		return r.forEach(len(cycles), func(i int) error {
			p, scheme := points[i/len(schemes)], schemes[i%len(schemes)]
			if (p.cfg == base) != baseWave {
				return nil
			}
			c, err := r.runPoint(short, p.cfg, scheme)
			if err != nil {
				return err
			}
			cycles[i] = c
			return nil
		})
	}
	err := runWave(true)
	if err == nil {
		err = runWave(false)
	}
	if err != nil {
		return Sweep{Name: name, Model: short}, err
	}
	for i, p := range points {
		u, b, tl := cycles[i*3], cycles[i*3+1], cycles[i*3+2]
		if u == 0 {
			return Sweep{Name: name, Model: short}, fmt.Errorf("exp: sweep %q point %q: unsecure run took zero cycles, cannot normalize", name, p.label)
		}
		s.Points[i] = SweepPoint{
			Label:    p.label,
			Baseline: float64(b) / float64(u),
			TNPU:     float64(tl) / float64(u),
		}
	}
	return s, nil
}

// BandwidthSweep scales the Small NPU's memory bandwidth: the baseline's
// stall-bound pathologies worsen as the bus gets faster relative to the
// fixed DRAM latency; TNPU tracks the (shrinking) traffic overhead.
func (r *Runner) BandwidthSweep(short string) (Sweep, error) {
	var points []sweepPoint
	for _, mult := range []float64{0.5, 1, 2, 4} {
		cfg := npu.SmallNPU()
		// Sweep-axis configuration, not timing accounting: the multipliers
		// are exact binary fractions of a power-of-two base bandwidth, so
		// the float round-trip is lossless here.
		cfg.Mem.BandwidthBytesPerSec = uint64(float64(cfg.Mem.BandwidthBytesPerSec) * mult) //tnpu:unitok
		points = append(points, sweepPoint{fmt.Sprintf("%.1fx BW", mult), cfg})
	}
	return r.sweepOver("memory bandwidth", short, points)
}

// SPMSweep scales the scratchpad: bigger tiles mean fewer re-reads and
// fewer counter fetches (the paper's Large-vs-Small observation).
func (r *Runner) SPMSweep(short string) (Sweep, error) {
	var points []sweepPoint
	for _, kb := range []uint64{128, 256, 480, 1024, 2048} {
		cfg := npu.SmallNPU()
		cfg.SPM.CapacityBytes = kb << 10
		points = append(points, sweepPoint{fmt.Sprintf("%dKB SPM", kb), cfg})
	}
	return r.sweepOver("scratchpad capacity", short, points)
}

// LatencySweep scales the DRAM access latency, the cost every serialized
// counter-tree level pays and TNPU avoids.
func (r *Runner) LatencySweep(short string) (Sweep, error) {
	var points []sweepPoint
	for _, lat := range []uint64{50, 100, 200, 400} {
		cfg := npu.SmallNPU()
		cfg.Mem.LatencyCycles = lat
		points = append(points, sweepPoint{fmt.Sprintf("%d-cycle DRAM", lat), cfg})
	}
	return r.sweepOver("DRAM latency", short, points)
}

// NPUCountSweep is the scalability curve for one workload: normalized
// execution time at 1–3 NPUs, per scheme and class. It returns a Figure
// (class-tagged series over NPU-count categories) rather than a Sweep so
// the serving layer can render it with plot.ClassCharts like the paper
// figures; unlike Figure16 it covers one model at every measured scheme
// instead of every model at two schemes.
func (r *Runner) NPUCountSweep(short string) (Figure, error) {
	f := Figure{
		ID:    "npucount",
		Title: fmt.Sprintf("Execution time vs NPU count on %q (normalized to same-count unsecure)", short),
	}
	counts := []string{"1 NPU", "2 NPU", "3 NPU"}
	schemes := r.schemeSubset(memprot.Baseline, memprot.TreeLess, memprot.EncryptOnly)
	classes := Classes()
	values := make([]float64, len(classes)*len(schemes)*len(counts))
	err := r.forEach(len(values), func(i int) error {
		class := classes[i/(len(schemes)*len(counts))]
		scheme := schemes[i/len(counts)%len(schemes)]
		count := i%len(counts) + 1
		v, err := r.normalized(short, class, scheme, count)
		if err != nil {
			return err
		}
		values[i] = v
		return nil
	})
	if err != nil {
		return f, err
	}
	for ci, class := range classes {
		for si, scheme := range schemes {
			base := (ci*len(schemes) + si) * len(counts)
			f.Series = append(f.Series, Series{
				Class:  class,
				Label:  scheme.String(),
				Models: counts,
				Values: values[base : base+len(counts)],
			})
		}
	}
	return f, nil
}

// BandwidthSweep is the standalone form of Runner.BandwidthSweep.
func BandwidthSweep(short string) (Sweep, error) { return NewRunner(short).BandwidthSweep(short) }

// SPMSweep is the standalone form of Runner.SPMSweep.
func SPMSweep(short string) (Sweep, error) { return NewRunner(short).SPMSweep(short) }

// LatencySweep is the standalone form of Runner.LatencySweep.
func LatencySweep(short string) (Sweep, error) { return NewRunner(short).LatencySweep(short) }

// NPUCountSweep is the standalone form of Runner.NPUCountSweep.
func NPUCountSweep(short string) (Figure, error) { return NewRunner(short).NPUCountSweep(short) }

// LayerShare is one layer's slice of the execution under each scheme.
type LayerShare struct {
	Layer    string
	Unsecure uint64
	Baseline uint64
	TNPU     uint64
}

// LayerBreakdown attributes execution time to model layers under each
// scheme (successive differences of layer completion times): the analysis
// behind the paper's observation that the embedding layers are where
// sent/tf lose their time under the tree-based baseline.
func LayerBreakdown(short string, class Class) ([]LayerShare, error) {
	m, err := model.ByShort(short)
	if err != nil {
		return nil, err
	}
	cfg := class.Config()
	prog, err := compiler.Compile(m, cfg.CompilerConfig())
	if err != nil {
		return nil, err
	}
	spansFor := func(scheme memprot.Scheme) ([]uint64, error) {
		bus := dram.NewBus(cfg.Mem)
		eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
		if err != nil {
			return nil, err
		}
		mach := npu.NewMachine(prog, eng)
		mach.Run()
		ends := mach.LayerSpans()
		spans := make([]uint64, len(ends))
		var prev uint64
		for i, end := range ends {
			if end > prev {
				spans[i] = end - prev
				prev = end
			}
		}
		return spans, nil
	}
	u, err := spansFor(memprot.Unsecure)
	if err != nil {
		return nil, err
	}
	b, err := spansFor(memprot.Baseline)
	if err != nil {
		return nil, err
	}
	tl, err := spansFor(memprot.TreeLess)
	if err != nil {
		return nil, err
	}
	shares := make([]LayerShare, len(m.Layers))
	for i := range m.Layers {
		shares[i] = LayerShare{Layer: m.Layers[i].Name, Unsecure: u[i], Baseline: b[i], TNPU: tl[i]}
	}
	return shares, nil
}
