package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"tnpu/internal/exp"
	"tnpu/internal/memprot"
)

// newTestServer boots a service over a fresh cache directory with a small
// workload set, returning the server and its HTTP front end.
func newTestServer(t *testing.T, models ...string) (*Server, *httptest.Server) {
	t.Helper()
	if len(models) == 0 {
		models = []string{"df"}
	}
	s, err := New(Options{Models: models, CacheDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //tnpu:errok
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, body
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content-type %q", url, ct)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decode: %v (%s)", url, err, body)
	}
	return resp
}

func TestCellEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/api/cell?model=df&class=small&scheme=tnpu&count=1"

	var cell CellResult
	resp := getJSON(t, url, &cell)
	if got := resp.Header.Get("X-Tnpu-Cache"); got != string(SourceCompute) {
		t.Errorf("first fetch cache source = %q, want compute", got)
	}
	if cell.Model != "df" || cell.Class != "small" || cell.Scheme != "tnpu" || cell.Count != 1 {
		t.Errorf("cell identity: %+v", cell)
	}
	if cell.Cycles == 0 || cell.TrafficBytes == 0 || cell.Milliseconds <= 0 {
		t.Errorf("cell has empty results: %+v", cell)
	}
	if cell.Normalized < 1 {
		t.Errorf("protected run normalized %.3f < 1 vs unsecure", cell.Normalized)
	}

	// Served cycles must match a direct harness run — the service is a
	// cache in front of exp.Runner, not a different simulator.
	ref, err := exp.NewRunner("df").Run("df", exp.Small, memprot.TreeLess, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Cycles != ref.Cycles {
		t.Errorf("served cycles %d != direct harness cycles %d", cell.Cycles, ref.Cycles)
	}

	var again CellResult
	resp = getJSON(t, url, &again)
	if got := resp.Header.Get("X-Tnpu-Cache"); got != string(SourceDisk) {
		t.Errorf("second fetch cache source = %q, want disk", got)
	}
	if again != cell {
		t.Errorf("cached cell differs: %+v vs %+v", again, cell)
	}
}

func TestCellValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []string{
		"/api/cell?model=nope",
		"/api/cell?model=res",            // known model, but not served by this instance
		"/api/cell?model=df&class=tiny",  // unknown class
		"/api/cell?model=df&scheme=mgx",  // unknown scheme
		"/api/cell?model=df&count=0",     // below range
		"/api/cell?model=df&count=99",    // above range
		"/api/cell?model=df&count=three", // not a number
	}
	for _, path := range bad {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (%s)", path, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("GET %s: error body %q", path, body)
		}
	}
}

func TestFigureEndpointJSONAndSVG(t *testing.T) {
	_, ts := newTestServer(t)

	var doc figureDoc
	getJSON(t, ts.URL+"/api/figure/fig14", &doc)
	if doc.ID != "Figure 14" || len(doc.Series) == 0 {
		t.Fatalf("figure doc: %+v", doc)
	}
	classes := map[string]bool{}
	for _, s := range doc.Series {
		classes[s.Class] = true
		if len(s.Models) != 1 || s.Models[0] != "df" || len(s.Values) != 1 {
			t.Errorf("series shape: %+v", s)
		}
		if s.Values[0] < 1 {
			t.Errorf("%s/%s normalized %.3f < 1", s.Class, s.Label, s.Values[0])
		}
	}
	if !classes["small"] || !classes["large"] {
		t.Errorf("figure missing a class: %v", classes)
	}

	resp, body := get(t, ts.URL+"/api/figure/fig14?format=svg&class=large")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("svg status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content-type %q", ct)
	}
	svg := string(body)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "large NPU") {
		t.Errorf("svg body does not look like the large-class chart: %.120s", svg)
	}
	// The figure compute is shared between formats: the SVG render reuses
	// the content-addressed JSON entry.
	if got := resp.Header.Get("X-Tnpu-Cache"); got != string(SourceDisk) {
		t.Errorf("svg after json fetch: cache source %q, want disk", got)
	}

	resp, _ = get(t, ts.URL+"/api/figure/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/api/figure/fig14?format=pdf")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status %d, want 400", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var doc sweepDoc
	getJSON(t, ts.URL+"/api/sweep/bandwidth?model=df", &doc)
	if doc.Model != "df" || len(doc.Points) != 4 {
		t.Fatalf("bandwidth sweep doc: %+v", doc)
	}
	for _, p := range doc.Points {
		if p.Baseline < 1 || p.TNPU < 1 {
			t.Errorf("point %s: baseline %.3f tnpu %.3f below unsecure", p.Label, p.Baseline, p.TNPU)
		}
	}

	resp, _ := get(t, ts.URL+"/api/sweep/voltage?model=df")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/api/sweep/bandwidth?model=zzz")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model status %d, want 400", resp.StatusCode)
	}
}

func TestNPUCountSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var doc figureDoc
	resp := getJSON(t, ts.URL+"/api/sweep/npucount?model=df", &doc)
	if got := resp.Header.Get("X-Tnpu-Cache"); got != string(SourceCompute) {
		t.Errorf("first fetch cache source = %q, want compute", got)
	}
	// 2 classes x {baseline, tnpu, encrypt-only}, each over counts 1-3.
	if doc.ID != "npucount" || len(doc.Series) != 6 {
		t.Fatalf("npucount doc: id=%q series=%d", doc.ID, len(doc.Series))
	}
	for _, s := range doc.Series {
		if len(s.Models) != 3 || s.Models[0] != "1 NPU" || s.Models[2] != "3 NPU" {
			t.Errorf("series %s/%s categories: %v", s.Class, s.Label, s.Models)
		}
		for i, v := range s.Values {
			if v < 1 {
				t.Errorf("%s/%s at %s: normalized %.3f < 1", s.Class, s.Label, s.Models[i], v)
			}
		}
	}

	resp, body := get(t, ts.URL+"/api/sweep/npucount?model=df&format=svg&class=small")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("svg status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content-type %q", ct)
	}
	if got := resp.Header.Get("X-Tnpu-Cache"); got != string(SourceDisk) {
		t.Errorf("svg render cache source = %q, want disk (same JSON artifact)", got)
	}
	if svg := string(body); !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "small NPU") {
		t.Errorf("svg content: %.80s", svg)
	}

	resp, _ = get(t, ts.URL+"/api/sweep/npucount?model=zzz")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model status %d, want 400", resp.StatusCode)
	}
}

func TestMixedEndpoint(t *testing.T) {
	_, ts := newTestServer(t, "df", "res")

	var doc MixedResult
	getJSON(t, ts.URL+"/api/mixed?models=df,res&class=small&scheme=tnpu", &doc)
	if len(doc.Models) != 2 || doc.Models[0] != "df" || doc.Models[1] != "res" {
		t.Fatalf("mixed identity: %+v", doc.Models)
	}
	if len(doc.NPUs) != 2 {
		t.Fatalf("per-NPU attribution has %d entries, want 2", len(doc.NPUs))
	}
	var worst uint64
	for i, n := range doc.NPUs {
		if n.Model != doc.Models[i] {
			t.Errorf("npu %d attributed to %q, want %q", i, n.Model, doc.Models[i])
		}
		if n.Cycles == 0 || n.Blocks == 0 || n.ReadBytes == 0 {
			t.Errorf("npu %d has empty attribution: %+v", i, n)
		}
		if n.Cycles > worst {
			worst = n.Cycles
		}
	}
	if doc.Cycles != worst {
		t.Errorf("run cycles %d != slowest tenant %d", doc.Cycles, worst)
	}
	if doc.TrafficBytes == 0 || doc.MetadataBytes == 0 {
		t.Errorf("traffic empty: %+v", doc)
	}

	// The tuple is ordered: reversing it is a different artifact key (the
	// tenants swap context regions), not a cache hit.
	resp, _ := get(t, ts.URL+"/api/mixed?models=res,df&class=small&scheme=tnpu")
	if got := resp.Header.Get("X-Tnpu-Cache"); got != string(SourceCompute) {
		t.Errorf("reversed tuple cache source = %q, want compute", got)
	}

	for _, bad := range []string{
		"/api/mixed?models=&class=small",
		"/api/mixed?models=df,zzz&class=small",
		"/api/mixed?models=df,df,df,df,df&class=small",
	} {
		resp, _ := get(t, ts.URL+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts.URL+"/api/cell?model=df&class=small&scheme=baseline")
	get(t, ts.URL+"/api/cell?model=df&class=small&scheme=baseline") // disk hit

	var doc StatsDoc
	getJSON(t, ts.URL+"/stats", &doc)
	if doc.CodeVersion != exp.CodeVersion {
		t.Errorf("code version %q", doc.CodeVersion)
	}
	if doc.Store.Computes != 1 || doc.Store.DiskHits != 1 || doc.Store.Lookups != 2 {
		t.Errorf("store stats: %+v", doc.Store)
	}
	// The cell computed baseline + unsecure runs plus a compile: the
	// harness's own counters must be visible through the endpoint.
	if doc.Harness.CellsComputed < 3 {
		t.Errorf("harness cells computed = %d, want >= 3", doc.Harness.CellsComputed)
	}
	if doc.Memo.Hits+doc.Memo.Misses == 0 {
		t.Error("layer memo counters absent")
	}
	if doc.MultiCache.Hits+doc.MultiCache.Misses == 0 {
		t.Error("joint-run cache counters absent")
	}
	if doc.Queue.Capacity != 1024 || doc.Queue.Depth != 0 {
		t.Errorf("queue stats: %+v", doc.Queue)
	}
	if doc.Workers != 2 || len(doc.Models) != 1 {
		t.Errorf("identity stats: workers=%d models=%v", doc.Workers, doc.Models)
	}
	if doc.Runtime.HeapAllocBytes == 0 || doc.Runtime.Goroutines == 0 {
		t.Errorf("runtime stats empty: %+v", doc.Runtime)
	}
}

// TestEventsSSE subscribes to the progress stream and then triggers a
// fresh simulation: its completed-cell lines must arrive as SSE events.
func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //tnpu:errok
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// The hello event confirms the subscription before work starts.
	waitFor := func(want string) string {
		t.Helper()
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed waiting for %q", want)
				}
				if strings.HasPrefix(line, want) {
					return line
				}
			case <-ctx.Done():
				t.Fatalf("timed out waiting for %q", want)
			}
		}
	}
	waitFor("event: hello")

	go func() {
		resp, err := http.Get(ts.URL + "/api/cell?model=df&class=small&scheme=tnpu")
		if err == nil {
			resp.Body.Close() //tnpu:errok
		}
	}()
	waitFor("event: cell")
	data := waitFor("data: ")
	if !strings.Contains(data, "df") {
		t.Errorf("cell event payload %q does not name the model", data)
	}
}

func TestIndexModelsHealth(t *testing.T) {
	_, ts := newTestServer(t, "df", "agz")

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}

	var models []modelDoc
	getJSON(t, ts.URL+"/api/models", &models)
	if len(models) != 2 || models[0].Short != "df" || models[1].Short != "agz" {
		t.Errorf("models: %+v", models)
	}
	for _, m := range models {
		if m.Name == "" || m.FootprintMB <= 0 || m.Layers == 0 {
			t.Errorf("model metadata empty: %+v", m)
		}
	}

	resp, body = get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/api/figure") {
		t.Errorf("index: %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/nosuch")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", resp.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Models: []string{"zzz"}, CacheDir: t.TempDir()}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := New(Options{}); err == nil {
		t.Error("empty cache dir accepted")
	}
}

// TestQueueSheds pins the load-shedding contract: with a one-worker pool,
// one slot of queue capacity, and a compute that blocks, a second
// distinct-key job is rejected with errBusy rather than queued without
// bound.
func TestQueueSheds(t *testing.T) {
	s, err := New(Options{Models: []string{"df"}, CacheDir: t.TempDir(), Workers: 1, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := s.cached(testKey("slow"), func() ([]byte, error) {
			close(started)
			<-block
			return []byte("x"), nil
		})
		if err != nil {
			t.Errorf("admitted job failed: %v", err)
		}
	}()
	<-started
	if _, _, err := s.cached(testKey("shed"), func() ([]byte, error) { return []byte("y"), nil }); err != errBusy {
		t.Errorf("over-capacity job err = %v, want errBusy", err)
	}
	close(block)
	<-done
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

func ExampleServer() {
	// Typical embedding: boot the service over a persistent cache
	// directory and serve it like any http.Handler.
	dir, err := os.MkdirTemp("", "tnpu-serve-example-")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir) //tnpu:errok
	s, err := New(Options{Models: []string{"df"}, CacheDir: dir, Workers: 2})
	if err != nil {
		fmt.Println("boot:", err)
		return
	}
	_ = s.Handler() // http.ListenAndServe(":8080", s.Handler())
	fmt.Println("ready")
	// Output: ready
}
