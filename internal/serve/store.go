// Package serve wraps the experiment harness (exp.Runner) in a
// long-running simulation service: a bounded worker pool and job queue, a
// disk-backed content-addressed result cache with singleflight, SSE
// progress streaming, and HTTP handlers serving figures and simulation
// cells as JSON/SVG artifacts (DESIGN.md §8).
package serve

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"tnpu/internal/exp"
)

// Source classifies where a Store lookup's bytes came from.
type Source string

// Lookup outcomes, in decreasing cheapness.
const (
	// SourceDisk: a valid entry was read from the cache directory.
	SourceDisk Source = "disk"
	// SourceFlight: another request was already computing the same key;
	// this lookup waited for it (in-process singleflight).
	SourceFlight Source = "flight"
	// SourceCompute: this lookup ran the computation and stored it.
	SourceCompute Source = "compute"
)

// Store is a disk-backed content-addressed result cache. Keys are hex
// digests (exp.Digest over code version + logical cell identity), so an
// entry is valid for exactly as long as the code that produced it: a code
// version bump changes every digest and strands — rather than serves —
// stale results. Concurrent lookups of one key are singleflighted within
// the process; across processes the write protocol (temp file + atomic
// rename of a checksummed entry) makes concurrent writers race safely:
// both compute, both write, either rename wins, and the contents are
// identical by construction.
type Store struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*flight

	// StoreStats counters.
	lookups   atomic.Uint64
	diskHits  atomic.Uint64
	flights   atomic.Uint64
	computes  atomic.Uint64
	stores    atomic.Uint64
	corrupt   atomic.Uint64
	errors    atomic.Uint64
	diskBytes atomic.Uint64
}

// flight is one in-progress computation; latecomers block on done.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// NewStore opens (creating if needed) a cache directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: cache directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &Store{dir: dir, inflight: make(map[string]*flight)}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// entryMagic heads every cache entry; the version suffix is the entry
// *format* version (bumped if the framing changes), independent of the
// simulator code version that is part of the key.
const entryMagic = "TNPUCACHE1"

// path maps a key to its entry file. Keys are validated hex digests, so
// they are safe as file names and cannot traverse out of the directory.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".entry")
}

// validKey accepts only lowercase-hex digests of plausible length.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil
}

// Get serves key from cache if possible, otherwise runs compute (exactly
// once per key across concurrent callers) and persists the result. Errors
// are never cached: a failed computation is retried by the next lookup.
func (s *Store) Get(key string, compute func() ([]byte, error)) ([]byte, Source, error) {
	s.lookups.Add(1)
	if !validKey(key) {
		s.errors.Add(1)
		return nil, "", fmt.Errorf("serve: invalid cache key %q", key)
	}

	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.flights.Add(1)
		<-f.done
		return f.data, SourceFlight, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	src := SourceDisk
	f.data, f.err = s.read(key)
	if f.data == nil && f.err == nil {
		src = SourceCompute
		s.computes.Add(1)
		f.data, f.err = compute()
		if f.err == nil {
			if werr := s.write(key, f.data); werr != nil {
				// The result is good even if persisting it failed
				// (disk full, read-only cache); serve it and count
				// the store error.
				s.errors.Add(1)
			}
		}
	} else if f.data != nil {
		s.diskHits.Add(1)
	}
	if f.err != nil {
		s.errors.Add(1)
	}

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.data, src, f.err
}

// read returns the entry bytes for key, or (nil, nil) on a miss. A
// corrupted or truncated entry — bad magic, checksum mismatch, short
// body — is deleted and reported as a miss, so the caller recomputes.
func (s *Store) read(key string) ([]byte, error) {
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: cache read: %w", err)
	}
	body, ok := decodeEntry(raw)
	if !ok {
		s.corrupt.Add(1)
		// Remove the bad entry so the recomputed result can take its
		// place; ignore the error (another process may have raced the
		// removal or already replaced it).
		os.Remove(s.path(key)) //tnpu:errok
		return nil, nil
	}
	return body, nil
}

// write persists body under key via temp file + atomic rename, so a
// reader never observes a partially written entry and concurrent writers
// of one key cannot interleave.
func (s *Store) write(key string, body []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-entry-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //tnpu:errok (no-op after a successful rename)
	w := bufio.NewWriter(tmp)
	sum := sha256.Sum256(body)
	fmt.Fprintf(w, "%s %s %d\n", entryMagic, hex.EncodeToString(sum[:]), len(body))
	w.Write(body) //tnpu:errok (flush below surfaces the error)
	if err := w.Flush(); err != nil {
		tmp.Close() //tnpu:errok
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return err
	}
	s.stores.Add(1)
	s.diskBytes.Add(uint64(len(body)))
	return nil
}

// decodeEntry validates framing: magic, body checksum, exact length.
func decodeEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := bytes.Fields(raw[:nl])
	if len(fields) != 3 || string(fields[0]) != entryMagic {
		return nil, false
	}
	n, err := strconv.Atoi(string(fields[2]))
	if err != nil || n < 0 {
		return nil, false
	}
	body := raw[nl+1:]
	if len(body) != n {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(fields[1]) {
		return nil, false
	}
	return body, true
}

// StoreStats is a snapshot of the cache counters.
type StoreStats struct {
	// Lookups is total Get calls.
	Lookups uint64 `json:"lookups"`
	// DiskHits served a valid on-disk entry.
	DiskHits uint64 `json:"disk_hits"`
	// FlightHits waited on a concurrent computation of the same key.
	FlightHits uint64 `json:"flight_hits"`
	// Computes ran the computation (disk+flight both missed).
	Computes uint64 `json:"computes"`
	// Stores persisted a fresh entry.
	Stores uint64 `json:"stores"`
	// Corrupt entries were rejected (and recomputed).
	Corrupt uint64 `json:"corrupt"`
	// Errors counts failed lookups, computations, and store writes.
	Errors uint64 `json:"errors"`
	// StoredBytes is the body volume written this process.
	StoredBytes uint64 `json:"stored_bytes"`
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Lookups:     s.lookups.Load(),
		DiskHits:    s.diskHits.Load(),
		FlightHits:  s.flights.Load(),
		Computes:    s.computes.Load(),
		Stores:      s.stores.Load(),
		Corrupt:     s.corrupt.Load(),
		Errors:      s.errors.Load(),
		StoredBytes: s.diskBytes.Load(),
	}
}

// Hits is disk + flight hits: lookups that did not recompute.
func (st StoreStats) Hits() uint64 { return st.DiskHits + st.FlightHits }

// CellDigest addresses one simulation cell under the store's code-version
// scheme; kept here so handlers and tests share one spelling.
func CellDigest(codeVersion string, k exp.CellKey) string {
	return k.Digest(codeVersion)
}
